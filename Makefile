# Tier-1 verification: everything a change must keep green.
#   make tier1      vet + build + full test suite + race suite
#   make test       fast inner loop (build + tests, no race)
#   make bench      the paper-table benches
#   make bench-par  parallel-kernel / pooled-transfer benches (BENCH_PR1.json)

GO ?= go

.PHONY: tier1 vet build test race bench bench-par

tier1: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

bench-par:
	$(GO) test -run xxx -bench 'Parallel|Pooled|Unpooled' -benchmem .
