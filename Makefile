# Tier-1 verification: everything a change must keep green.
#   make tier1      vet + build + full test suite + race suite
#   make test       fast inner loop (build + tests, no race)
#   make bench      the paper-table benches
#   make bench-par  parallel-kernel / pooled-transfer benches (BENCH_PR1.json)
#   make bench-json regenerate BENCH_PR6.json from the codec benches
#   make bench-gate regenerate the codec benches to a temp file and diff
#                   the machine-independent metrics (allocs/op, B/op,
#                   x-compression, max-err) against the committed
#                   BENCH_PR6.json with a 10% tolerance
#   make fuzz-smoke 10s coverage-guided fuzz of the codec frame decoder
#                   (typed errors only, never a panic)
#   make chaos      race-enabled chaos suite: fixed-seed soak (50 steps
#                   under drops/timeouts/corruption/partition/crash)
#                   plus a short randomized-seed smoke
#   make brownout   race-enabled overload soak: fixed-seed slow-consumer
#                   brownout proving bounded step wall time, graded
#                   shaping/shedding, breaker recovery, zero credit leaks
#   make crashmatrix race-enabled recovery gate: kill the journaled run
#                   at every journal phase boundary, resume, and require
#                   bit-identical convergence to the golden run (commit
#                   digests, live results, final checkpoints) with zero
#                   credit/pinned-buffer leaks, plus the corrupt-
#                   checkpoint fallback cell
#   make tenants    race-enabled noisy-neighbor soak: three tenants on
#                   one scheduler while one misbehaves (endpoint-scoped
#                   slowdown + poison route), proving victim isolation,
#                   quarantine open/release, autoscaling, zero leaks
#   make fmt        gofmt gate: fails if any file needs reformatting
#   make doccheck   godoc lint (cmd/doccheck): every exported symbol in
#                   the public-surface packages must carry a doc comment
#   make configs    declarative-config gate (cmd/pipecheck): every
#                   examples/configs/*.json must strictly decode and
#                   validate, and the quickstart config must build and
#                   run end-to-end with every analysis producing its
#                   final result and zero pinned staging regions
#   make obs-check  end-to-end observability gate: builds s3dpipe, runs it
#                   with the live endpoint, and validates /metrics,
#                   /trace.json, /events.jsonl (submit/done reconciliation),
#                   and /debug/pprof via cmd/obscheck
#   make serve      end-to-end image-serving gate (cmd/servecheck): a
#                   short store-backed pipeline with live pollers, zero
#                   pooled-framebuffer leaks, digests stable across an
#                   independent re-run, every spec cell fetchable with
#                   correct conditional/immutable GET semantics, and a
#                   250-viewer fleet with zero errors under a p99 bound
#   make bench-json9 regenerate BENCH_PR9.json from the serve benches

GO ?= go

.PHONY: tier1 vet build test race bench bench-par bench-json bench-json9 bench-gate fuzz-smoke chaos brownout crashmatrix tenants fmt doccheck configs obs-check serve

tier1: fmt vet build test race doccheck

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

doccheck:
	$(GO) run ./cmd/doccheck ./internal/registry ./internal/core

configs:
	$(GO) run ./cmd/pipecheck -dir examples/configs
	$(GO) run ./cmd/pipecheck -run examples/configs/quickstart.json

obs-check:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/s3dpipe" ./cmd/s3dpipe && \
	$(GO) run ./cmd/obscheck -bin "$$tmp/s3dpipe"

serve:
	$(GO) run ./cmd/servecheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

bench-par:
	$(GO) test -run xxx -bench 'Codec|Parallel|Pooled|Unpooled' -benchmem .

bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_PR6.json

bench-json9:
	$(GO) run ./cmd/benchjson -bench Serve -benchtime 10x -o BENCH_PR9.json \
		-pr "Cinema-style image store + HTTP serving tier with load-generated latency benchmarks"

bench-gate:
	@tmp="$$(mktemp)"; trap 'rm -f "$$tmp"' EXIT; \
	$(GO) run ./cmd/benchjson -o "$$tmp" && \
	$(GO) run ./cmd/benchjson -diff BENCH_PR6.json "$$tmp"

fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/codec/

chaos:
	$(GO) test -race -run TestChaosSoak -count=1 -v ./internal/core/
	CHAOS_SMOKE=1 $(GO) test -race -run TestChaosSmoke -count=1 -v ./internal/core/

brownout:
	$(GO) test -race -run TestBrownoutSoak -count=1 -v ./internal/workload/

crashmatrix:
	$(GO) test -race -run TestCrashMatrix -count=1 -v ./internal/workload/

tenants:
	$(GO) test -race -run TestNoisyNeighborSoak -count=1 -v ./internal/workload/
