// Transfer-path codec benches: each BenchmarkCodec* reports the
// machine-independent byte economy of one codec on a representative
// payload alongside the usual timing numbers, so
// `go test -bench Codec -benchmem` regenerates the x-compression and
// max-err columns recorded in BENCH_PR6.json on any machine.
package insitu

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"insitu/internal/bufpool"
	"insitu/internal/codec"
	"insitu/internal/dart"
	"insitu/internal/grid"
	"insitu/internal/netsim"
)

// benchEvolve perturbs roughly one in eight samples of the field tail
// in place — the sparse, localized change a slowly advancing flame
// front writes between checkpoints.
func benchEvolve(rng *rand.Rand, p []byte, off int) {
	for i := off; i+8 <= len(p); i += 8 {
		if rng.Intn(8) != 0 {
			continue
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(p[i:]))
		v += 1e-6 * (rng.Float64() - 0.5)
		binary.LittleEndian.PutUint64(p[i:], math.Float64bits(v))
	}
}

// benchCheckpointPayload marshals rank 0's full-resolution block — the
// checkpoint-path payload shape.
func benchCheckpointPayload(b *testing.B) ([]byte, int) {
	benchSetup(b)
	block := benchField.Extract(benchDecomp.Block(0))
	payload := block.Marshal()
	off, ok := grid.FloatTailOffset(payload)
	if !ok {
		b.Fatal("checkpoint payload has no float tail")
	}
	return payload, off
}

// BenchmarkCodecDeltaCheckpoint measures steady-state delta encoding
// of consecutive checkpoint versions of one rank's block. The reported
// x-compression is raw/encoded over the timed loop; reconstruction is
// exact, so max-err is identically zero.
func BenchmarkCodecDeltaCheckpoint(b *testing.B) {
	payload, off := benchCheckpointPayload(b)
	reg := codec.NewRegistry()
	spec := codec.Spec{ID: codec.Delta}
	key := codec.Key("checkpoint", 0)
	rng := rand.New(rand.NewSource(1))
	// Prime the base store so the timed loop measures steady state.
	res, err := reg.Encode(spec, key, 0, payload, off)
	if err != nil {
		b.Fatal(err)
	}
	bufpool.Put(res.Frame)
	var raw, enc int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		benchEvolve(rng, payload, off)
		b.StartTimer()
		res, err := reg.Encode(spec, key, i+1, payload, off)
		if err != nil {
			b.Fatal(err)
		}
		raw += int64(len(payload))
		enc += int64(len(res.Frame))
		bufpool.Put(res.Frame)
	}
	if enc > 0 {
		b.ReportMetric(float64(raw)/float64(enc), "x-compression")
	}
	b.ReportMetric(0, "max-err")
}

// BenchmarkCodecQuantizeViz measures bounded-error quantization of the
// viz-path payload at the default error bound (1e-4 of the value
// range). Reports x-compression and the worst observed reconstruction
// error across the run.
func BenchmarkCodecQuantizeViz(b *testing.B) {
	payload, off := benchCheckpointPayload(b)
	reg := codec.NewRegistry()
	spec := codec.Spec{ID: codec.Quantize}
	key := codec.Key("viz", 0)
	var raw, enc int64
	maxErr := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := reg.Encode(spec, key, i, payload, off)
		if err != nil {
			b.Fatal(err)
		}
		raw += int64(len(payload))
		enc += int64(len(res.Frame))
		if res.MaxError > maxErr {
			maxErr = res.MaxError
		}
		bufpool.Put(res.Frame)
	}
	if enc > 0 {
		b.ReportMetric(float64(raw)/float64(enc), "x-compression")
	}
	b.ReportMetric(maxErr, "max-err")
}

// BenchmarkCodecFramedGet measures the steady-state DART pull path
// through a quantized frame: CRC verify, decode, pooled buffers in and
// out. After warm-up the loop runs allocation-free (compare allocs/op
// with BenchmarkPooledTransferGet, the identity reference).
func BenchmarkCodecFramedGet(b *testing.B) {
	payload, off := benchCheckpointPayload(b)
	fabric := dart.NewFabric(netsim.New(netsim.Gemini()))
	fabric.SetCodecs(codec.NewRegistry())
	prod := fabric.Register("sim")
	cons := fabric.Register("bucket")
	er, err := prod.RegisterMemEncoded(codec.Spec{ID: codec.Quantize}, codec.Key("viz", 0), 0, payload, off)
	if err != nil {
		b.Fatal(err)
	}
	if er.Codec != codec.Quantize {
		b.Fatalf("payload did not quantize: codec %v", er.Codec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, _, err := cons.Get(er.Handle)
		if err != nil {
			b.Fatal(err)
		}
		bufpool.Put(data)
	}
	b.ReportMetric(float64(er.RawSize)/float64(er.WireSize), "x-compression")
}
