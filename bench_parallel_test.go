// Parallel-kernel and pooled-transfer benches: each BenchmarkParallel*
// measures the worker-pool variant of an in-situ kernel and reports its
// speedup over a serial reference timed in the same process, so
// `go test -bench Parallel -benchmem` regenerates the numbers recorded
// in BENCH_PR1.json on any machine. On a single-CPU host the pool
// collapses to one worker and the speedup metric hovers around 1.0;
// the interesting readings need GOMAXPROCS >= 4.
package insitu

import (
	"testing"
	"time"

	"insitu/internal/bufpool"
	"insitu/internal/dart"
	"insitu/internal/grid"
	"insitu/internal/mergetree"
	"insitu/internal/netsim"
	"insitu/internal/stats"
)

// timeSerial measures one op of fn (repeated reps times) outside the
// benchmark timer, as the serial reference for the speedup metric.
func timeSerial(reps int, fn func()) time.Duration {
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(reps)
}

func reportSpeedup(b *testing.B, serial time.Duration) {
	b.Helper()
	par := b.Elapsed() / time.Duration(b.N)
	if par > 0 {
		b.ReportMetric(float64(serial)/float64(par), "speedup")
	}
}

// BenchmarkParallelRender compares the tile-parallel raycaster (row
// bands on the shared pool) against the single-worker path. Pixels are
// independent, so the framebuffer is bitwise identical at any width.
func BenchmarkParallelRender(b *testing.B) {
	benchSetup(b)
	serial := benchRenderer(b, benchGlobal, 0.4)
	serial.Workers = 1
	par := benchRenderer(b, benchGlobal, 0.4)
	par.Workers = 0 // GOMAXPROCS
	ref := timeSerial(3, func() { serial.RenderSerial(benchField) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.RenderSerial(benchField)
	}
	reportSpeedup(b, ref)
}

// BenchmarkParallelMergeTree compares the pool-driven per-rank local
// merge-subtree construction (LocalSubtrees) against the rank-by-rank
// serial loop over the same ghosted blocks.
func BenchmarkParallelMergeTree(b *testing.B) {
	benchSetup(b)
	blocks := make([]grid.Box, benchDecomp.Ranks())
	for r := range blocks {
		blocks[r] = benchDecomp.Block(r)
	}
	ref := timeSerial(1, func() {
		for r := 0; r < benchDecomp.Ranks(); r++ {
			if _, err := mergetree.LocalSubtree(benchGhosted[r], benchGlobal, blocks[r], r, mergetree.KeepSharedBoundary); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mergetree.LocalSubtrees(benchGhosted, benchGlobal, blocks, mergetree.KeepSharedBoundary); err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedup(b, ref)
}

// BenchmarkParallelStatsLearn compares the chunk-parallel single-pass
// moments accumulation against the serial UpdateBatch over the global
// temperature field (results agree to the last bit of the chunked
// reduction order, machine-independently).
func BenchmarkParallelStatsLearn(b *testing.B) {
	benchSetup(b)
	ref := timeSerial(10, func() {
		m := stats.NewModel()
		m.LearnField(benchField)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := stats.NewModel()
		m.LearnFieldParallel(benchField)
	}
	reportSpeedup(b, ref)
}

// BenchmarkParallelContingency compares chunk-parallel bivariate
// binning (integer counts: bitwise identical to serial) against the
// serial UpdateBatch.
func BenchmarkParallelContingency(b *testing.B) {
	benchSetup(b)
	mk := func() *stats.Contingency {
		tab, err := stats.NewContingency(0, 2.5, 16, 0, 0.3, 16)
		if err != nil {
			b.Fatal(err)
		}
		return tab
	}
	ref := timeSerial(10, func() {
		if err := mk().UpdateBatch(benchField.Data, benchOH.Data); err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mk().UpdateBatchParallel(benchField.Data, benchOH.Data); err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedup(b, ref)
}

// BenchmarkPooledTransferGet measures the steady-state DART pull path
// with the consumer returning buffers to the pool: after warm-up the
// loop runs allocation-free (compare allocs/op with
// BenchmarkUnpooledTransferGet).
func BenchmarkPooledTransferGet(b *testing.B) {
	fabric := dart.NewFabric(netsim.New(netsim.Gemini()))
	prod := fabric.Register("sim")
	cons := fabric.Register("bucket")
	payload := make([]byte, 1<<20)
	h := prod.RegisterMem(payload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, _, err := cons.Get(h)
		if err != nil {
			b.Fatal(err)
		}
		bufpool.Put(data)
	}
}

// BenchmarkUnpooledTransferGet is the pre-pool reference: a fresh
// destination buffer per pull through the same netsim choke point.
func BenchmarkUnpooledTransferGet(b *testing.B) {
	net := netsim.New(netsim.Gemini())
	payload := make([]byte, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := make([]byte, len(payload))
		net.TransferInto(dst, payload)
	}
}

// BenchmarkPooledFieldMarshal measures the zero-copy field encoding
// (AppendMarshal into a pooled, exactly presized buffer) against the
// historical bytes.Buffer path it replaced, whose cost survives as the
// allocation count of Marshal into a fresh slice.
func BenchmarkPooledFieldMarshal(b *testing.B) {
	benchSetup(b)
	block := benchField.Extract(benchDecomp.Block(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := bufpool.Get(block.MarshalSize())[:0]
		buf = block.AppendMarshal(buf)
		bufpool.Put(buf)
	}
}
