// Serving-tier benches: BenchmarkServe* load the image store and its
// HTTP tier with the deterministic viewer fleet and report the fleet's
// observed latency percentiles and bytes served alongside the usual
// timing numbers, so `go test -bench Serve` regenerates the serve-tier
// columns recorded in BENCH_PR9.json on any machine.
package insitu

import (
	"net/http/httptest"
	"testing"
	"time"

	"insitu/internal/imagestore"
	"insitu/internal/render"
	"insitu/internal/serve"
	"insitu/internal/workload"
)

// benchStoreFrame synthesizes one deterministic frame: the bench loads
// the serving path, not the renderer, so frames are cheap gradients.
func benchStoreFrame(step, cam int) *render.Image {
	im := render.NewImage(160, 120)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := float64((x*3+y*7+step*13+cam*29)%32) / 32
			im.Set(x, y, v, v/2, 1-v, v)
		}
	}
	return im
}

// benchServer builds a populated store and its serving tier.
func benchServer(b *testing.B, steps, cams int) *httptest.Server {
	b.Helper()
	st, err := imagestore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	for step := 1; step <= steps; step++ {
		for cam := 0; cam < cams; cam++ {
			if _, err := st.PutFrame("T.insitu", step, render.CameraName(cam), benchStoreFrame(step, cam)); err != nil {
				b.Fatal(err)
			}
		}
	}
	ts := httptest.NewServer(serve.New(st))
	b.Cleanup(ts.Close)
	return ts
}

// BenchmarkServeViewerWave measures one wave of the deterministic
// viewer fleet against a populated database: 32 concurrent pollers
// mixing hot latest.json polls with cold random spec reads, ETags
// remembered across requests. Reported p50/p99 are the fleet's
// end-to-end request latencies; bytes-served counts response bodies.
func BenchmarkServeViewerWave(b *testing.B) {
	ts := benchServer(b, 8, 2)
	cfg := workload.ViewerConfig{Viewers: 32, Requests: 25, HotFrac: 0.5}
	var p50, p99 time.Duration
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i) // a fresh cold-cache walk per wave
		stats, err := workload.RunViewers(ts.URL, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Errors != 0 {
			b.Fatalf("%d viewer errors", stats.Errors)
		}
		p50 += stats.P50
		p99 += stats.P99
		bytes += stats.Bytes
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(p50.Milliseconds())/n, "p50-ms")
	b.ReportMetric(float64(p99.Milliseconds())/n, "p99-ms")
	b.ReportMetric(float64(bytes)/n, "bytes-served")
}

// BenchmarkServeHotPoll measures the steady-state hot path alone: one
// client re-polling latest.json with its ETag, the per-request cost a
// dashboard's refresh loop pays when nothing changed (always a 304).
func BenchmarkServeHotPoll(b *testing.B) {
	ts := benchServer(b, 8, 2)
	cfg := workload.ViewerConfig{Viewers: 1, Requests: 100, HotFrac: 1.0, Seed: 1}
	b.ResetTimer()
	var reqs, notMod int64
	for i := 0; i < b.N; i++ {
		stats, err := workload.RunViewers(ts.URL, cfg)
		if err != nil {
			b.Fatal(err)
		}
		reqs += stats.Requests
		notMod += stats.NotModified
	}
	b.StopTimer()
	if reqs > 0 {
		b.ReportMetric(float64(notMod)/float64(reqs), "304-frac")
	}
}
