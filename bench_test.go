// Benchmark harness: one bench per table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls
// out. Custom metrics (bytes moved, peak resident vertices, makespan)
// are attached with b.ReportMetric so `go test -bench . -benchmem`
// regenerates the quantities the paper reports alongside ns/op.
package insitu

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"insitu/internal/bp"
	"insitu/internal/core"
	"insitu/internal/dart"
	"insitu/internal/dataspaces"
	"insitu/internal/grid"
	"insitu/internal/mergetree"
	"insitu/internal/netsim"
	"insitu/internal/render"
	"insitu/internal/sim"
	"insitu/internal/staging"
	"insitu/internal/stats"
	"insitu/internal/workload"
)

// benchField builds a steady-state flame field for the analysis-stage
// benches (one sim spin-up shared across benches via sync.Once).
var (
	benchOnce    sync.Once
	benchGlobal  grid.Box
	benchDecomp  *grid.Decomp
	benchGhosted []*grid.Field // per-rank ghosted temperature blocks
	benchField   *grid.Field   // stitched global temperature
	benchOH      *grid.Field   // stitched global OH
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		benchGlobal = grid.NewBox(48, 32, 16)
		cfg := sim.DefaultConfig(benchGlobal, 4, 2, 2)
		cfg.KernelRate = 1.0
		s, err := sim.New(cfg)
		if err != nil {
			panic(err)
		}
		benchDecomp = s.Decomp()
		benchGhosted = make([]*grid.Field, s.Ranks())
		benchField = grid.NewField("T", benchGlobal)
		benchOH = grid.NewField("Y_OH", benchGlobal)
		var mu sync.Mutex
		err = sim.RunAll(s, func(rk *sim.Rank) error {
			rk.RunSteps(15)
			g := rk.GhostedField("T").Clone()
			mu.Lock()
			benchGhosted[rk.Comm().ID()] = g
			benchField.Paste(rk.Field("T"))
			benchOH.Paste(rk.Field("Y_OH"))
			mu.Unlock()
			return nil
		})
		if err != nil {
			panic(err)
		}
	})
}

// --- Table I ------------------------------------------------------------

// BenchmarkTableI_SimStep4896 measures the per-step simulation cost of
// the 4896-core scenario (32 scaled ranks).
func BenchmarkTableI_SimStep4896(b *testing.B) {
	benchTableISim(b, workload.Scenario4896())
}

// BenchmarkTableI_SimStep9440 doubles the x split; per-step time
// should drop (the paper halves 16.85 s -> 8.42 s with real cores; on
// one CPU the drop reflects smaller blocks only).
func BenchmarkTableI_SimStep9440(b *testing.B) {
	benchTableISim(b, workload.Scenario9440())
}

func benchTableISim(b *testing.B, sc workload.Scenario) {
	cfg := sc.Sim
	cfg.SubSteps = 1 // keep bench iterations fast
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = sim.RunAll(s, func(rk *sim.Rank) error {
		for i := 0; i < b.N; i++ {
			rk.Step()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(sc.RawStepBytes()), "stateBytes")
}

// BenchmarkTableI_CheckpointWrite measures the file-per-process BP
// write of one timestep's full state.
func BenchmarkTableI_CheckpointWrite(b *testing.B) {
	benchSetup(b)
	dir := b.TempDir()
	fields := make([][]*grid.Field, benchDecomp.Ranks())
	for r := range fields {
		for _, name := range []string{"T", "u", "P"} {
			f := grid.NewField(name, benchDecomp.Block(r))
			f.Paste(benchField) // reuse temperature data for all vars
			fields[r] = append(fields[r], f)
		}
	}
	var total int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for r := range fields {
			n, err := bp.WriteFile(filepath.Join(dir, fmt.Sprintf("r%04d.bp", r)), fields[r])
			if err != nil {
				b.Fatal(err)
			}
			total += n
		}
	}
	b.ReportMetric(float64(total), "checkpointBytes")
}

// --- Table II: per-stage costs of the five analyses ---------------------

// BenchmarkTableII_StatsLearnInSitu is the in-situ learn stage over
// one rank's block (all 14 variables are proportional; one suffices
// for ns/point).
func BenchmarkTableII_StatsLearnInSitu(b *testing.B) {
	benchSetup(b)
	block := benchField.Extract(benchDecomp.Block(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := stats.NewModel()
		m.LearnField(block)
	}
}

// BenchmarkTableII_StatsDeriveInTransit is the hybrid variant's serial
// in-transit stage: aggregate all ranks' partial models and derive.
// Its cost is microscopic — the paper reports 0.01 s vs 1.69 s learn.
func BenchmarkTableII_StatsDeriveInTransit(b *testing.B) {
	benchSetup(b)
	var partials [][]byte
	var moved int
	for r := 0; r < benchDecomp.Ranks(); r++ {
		m := stats.NewModel()
		m.LearnField(benchField.Extract(benchDecomp.Block(r)))
		p := m.Marshal()
		moved += len(p)
		partials = append(partials, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := stats.AggregateSerial(partials)
		if err != nil {
			b.Fatal(err)
		}
		_ = g.DeriveAll()
	}
	b.ReportMetric(float64(moved), "movedBytes")
}

// BenchmarkTableII_TopologySubtreeInSitu is the per-rank in-situ merge
// subtree computation (the paper's 2.72 s row).
func BenchmarkTableII_TopologySubtreeInSitu(b *testing.B) {
	benchSetup(b)
	ghosted := benchGhosted[0]
	owned := benchDecomp.Block(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mergetree.LocalSubtree(ghosted, benchGlobal, owned, 0, mergetree.KeepSharedBoundary); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_TopologyGlueInTransit is the serial in-transit
// streaming aggregation (the paper's 119.81 s row — the stage that
// must be decoupled from the simulation by temporal multiplexing).
func BenchmarkTableII_TopologyGlueInTransit(b *testing.B) {
	benchSetup(b)
	subtrees, moved := benchSubtrees(b, mergetree.KeepSharedBoundary)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mergetree.Glue(subtrees, mergetree.GlueOptions{Evict: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(moved), "movedBytes")
}

func benchSubtrees(b *testing.B, policy mergetree.BoundaryPolicy) ([]*mergetree.Subtree, int) {
	b.Helper()
	var subtrees []*mergetree.Subtree
	moved := 0
	for r := 0; r < benchDecomp.Ranks(); r++ {
		st, err := mergetree.LocalSubtree(benchGhosted[r], benchGlobal, benchDecomp.Block(r), r, policy)
		if err != nil {
			b.Fatal(err)
		}
		moved += len(st.Marshal())
		subtrees = append(subtrees, st)
	}
	return subtrees, moved
}

// BenchmarkTableII_VizInSituBlock is one rank's full-resolution block
// render (the paper's 0.73 s row).
func BenchmarkTableII_VizInSituBlock(b *testing.B) {
	benchSetup(b)
	r := benchRenderer(b, benchGlobal, 0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RenderBlock(benchGhosted[0], benchDecomp.Block(0))
	}
}

// BenchmarkTableII_VizHybridDownsample is the hybrid in-situ stage
// (the paper's 0.08 s row: 8x down-sample only).
func BenchmarkTableII_VizHybridDownsample(b *testing.B) {
	benchSetup(b)
	var moved int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		moved = 0
		for r := 0; r < benchDecomp.Ranks(); r++ {
			_, n := render.DownsampleForTransit(benchGhosted[r], benchDecomp.Block(r), 8)
			moved += n
		}
	}
	b.ReportMetric(float64(moved), "movedBytes")
}

// BenchmarkTableII_VizHybridRenderInTransit is the serial in-transit
// render over the block lookup table (the paper's 5.06 s row).
func BenchmarkTableII_VizHybridRenderInTransit(b *testing.B) {
	benchSetup(b)
	bt := render.NewBlockTable()
	for r := 0; r < benchDecomp.Ranks(); r++ {
		p, _ := render.DownsampleForTransit(benchGhosted[r], benchDecomp.Block(r), 2)
		if err := bt.AddMarshalled(p); err != nil {
			b.Fatal(err)
		}
	}
	r := benchRenderer(b, bt.Bounds(), 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RenderTable(bt); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRenderer(b *testing.B, g grid.Box, step float64) *render.Renderer {
	b.Helper()
	r, err := render.NewRenderer(160, 120, render.HotMetal(0.3, 2.2),
		[3]float64{0.45, 0.3, 1}, [3]float64{0, 1, 0}, step, g)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// --- Figures -------------------------------------------------------------

// BenchmarkFig1_SegmentAndTrack is the per-step cost of the Fig. 1
// tracking analysis: threshold segmentation plus overlap matching.
func BenchmarkFig1_SegmentAndTrack(b *testing.B) {
	benchSetup(b)
	prev := mergetree.SegmentField(benchOH, benchGlobal, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := mergetree.SegmentField(benchOH, benchGlobal, 0.1)
		mergetree.Track(prev, next)
	}
}

// BenchmarkFig2_SerialReference is the post-processing baseline: a
// full-resolution serial render of the global field.
func BenchmarkFig2_SerialReference(b *testing.B) {
	benchSetup(b)
	r := benchRenderer(b, benchGlobal, 0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RenderSerial(benchField)
	}
}

// BenchmarkFig6_FullPipelineStep runs one end-to-end pipeline step
// with all five paper analyses attached — the whole of Fig. 6 in one
// number.
func BenchmarkFig6_FullPipelineStep(b *testing.B) {
	simCfg := sim.DefaultConfig(grid.NewBox(32, 24, 12), 2, 2, 2)
	p, err := core.NewPipeline(core.Config{Sim: simCfg, DSServers: 2, Buckets: 2, Net: netsim.Gemini()})
	if err != nil {
		b.Fatal(err)
	}
	topo := core.NewTopologyHybrid()
	p.Register(&core.StatsInSitu{})
	p.Register(&core.StatsHybrid{})
	p.Register(core.NewVizInSitu(64, 48))
	p.Register(core.NewVizHybrid(64, 48, 8))
	p.Register(topo)
	b.ResetTimer()
	rep, err := p.Run(b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rep.Net.BytesMoved)/float64(b.N), "movedBytes/step")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationPullVsPush compares the paper's pull-based FCFS
// bucket scheduling against naive round-robin push assignment under
// heterogeneous task durations: push stalls behind slow tasks, pull
// load-balances. The metric is makespan per task batch.
func BenchmarkAblationPullVsPush(b *testing.B) {
	const buckets = 4
	const tasks = 16
	// Each simulation step submits its analyses in a fixed order —
	// topology (slow), then statistics, visualization, autocorrelation
	// (fast). Blind round-robin assignment therefore lands every slow
	// topology task on the same bucket; the pull-based free-bucket
	// list spreads them by construction.
	dur := func(i int) time.Duration {
		if i%buckets == 0 {
			return 4 * time.Millisecond
		}
		return 500 * time.Microsecond
	}
	b.Run("pull", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			queue := make(chan int, tasks)
			for t := 0; t < tasks; t++ {
				queue <- t
			}
			close(queue)
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < buckets; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for t := range queue {
						time.Sleep(dur(t))
					}
				}()
			}
			wg.Wait()
			b.ReportMetric(float64(time.Since(start).Microseconds()), "makespan_us")
		}
	})
	b.Run("push", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			queues := make([]chan int, buckets)
			for w := range queues {
				queues[w] = make(chan int, tasks)
			}
			for t := 0; t < tasks; t++ {
				queues[t%buckets] <- t // assigned blind to bucket load
			}
			for _, q := range queues {
				close(q)
			}
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < buckets; w++ {
				wg.Add(1)
				go func(q chan int) {
					defer wg.Done()
					for t := range q {
						time.Sleep(dur(t))
					}
				}(queues[w])
			}
			wg.Wait()
			b.ReportMetric(float64(time.Since(start).Microseconds()), "makespan_us")
		}
	})
}

// BenchmarkAblationBuckets measures temporal multiplexing: steps/sec
// of a pipeline whose in-transit stage is slower than the simulation
// step, as a function of the bucket count. Below the multiplexing
// width ceil(T_intransit/T_step) the staging area is the bottleneck.
func BenchmarkAblationBuckets(b *testing.B) {
	for _, buckets := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("buckets=%d", buckets), func(b *testing.B) {
			fabric := dart.NewFabric(netsim.New(netsim.Gemini()))
			ds, err := dataspaces.New(fabric, 2)
			if err != nil {
				b.Fatal(err)
			}
			area, err := staging.New(fabric, ds, buckets)
			if err != nil {
				b.Fatal(err)
			}
			area.Handle("slow", func(task dataspaces.Task, data [][]byte) (any, error) {
				time.Sleep(2 * time.Millisecond) // in-transit ~4x the step time
				return nil, nil
			})
			area.Start()
			prod := fabric.Register("sim")
			payload := make([]byte, 1024)
			completed := make(chan struct{}, 1<<20)
			go func() {
				for range area.Results() {
					completed <- struct{}{}
				}
				close(completed)
			}()
			// Timed region: submit one task per simulated step, then
			// wait until every in-transit task completes, measuring
			// end-to-end throughput.
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				time.Sleep(500 * time.Microsecond) // the simulation step
				h := prod.RegisterMem(payload)
				ds.SubmitTask("slow", i, []dataspaces.Descriptor{{Name: "slow", Version: i, Handle: h}})
			}
			for i := 0; i < b.N; i++ {
				<-completed
			}
			b.StopTimer()
			ds.Close()
			area.Wait()
		})
	}
}

// BenchmarkAblationMsgPath reports the modeled transfer duration for
// message sizes straddling the SMSG/FMA/BTE crossovers, as DART
// selects mechanisms on Gemini.
func BenchmarkAblationMsgPath(b *testing.B) {
	net := netsim.New(netsim.Gemini())
	for _, size := range []int{256, 4 << 10, 256 << 10, 8 << 20} {
		buf := make([]byte, size)
		d, path := net.Cost(size)
		b.Run(fmt.Sprintf("%s_%dB", path, size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net.Transfer(buf)
			}
			b.ReportMetric(float64(d.Nanoseconds()), "modeled_ns")
		})
	}
}

// BenchmarkAblationDownsample sweeps the hybrid visualization's
// down-sampling factor: payload bytes fall cubically while the
// in-transit render stays cheap — the fidelity/movement trade of
// Fig. 2.
func BenchmarkAblationDownsample(b *testing.B) {
	benchSetup(b)
	for _, factor := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("factor=%d", factor), func(b *testing.B) {
			var moved int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				moved = 0
				bt := render.NewBlockTable()
				for r := 0; r < benchDecomp.Ranks(); r++ {
					p, n := render.DownsampleForTransit(benchGhosted[r], benchDecomp.Block(r), factor)
					moved += n
					if err := bt.AddMarshalled(p); err != nil {
						b.Fatal(err)
					}
				}
				rr := benchRenderer(b, bt.Bounds(), 0.4/float64(factor))
				if _, err := rr.RenderTable(bt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(moved), "movedBytes")
		})
	}
}

// BenchmarkAblationStreamingEviction contrasts the in-transit
// aggregation with and without eviction: identical trees, very
// different peak memory.
func BenchmarkAblationStreamingEviction(b *testing.B) {
	benchSetup(b)
	subtrees, _ := benchSubtrees(b, mergetree.KeepSharedBoundary)
	for _, evict := range []bool{false, true} {
		b.Run(fmt.Sprintf("evict=%v", evict), func(b *testing.B) {
			var peak int
			for i := 0; i < b.N; i++ {
				_, st, err := mergetree.Glue(subtrees, mergetree.GlueOptions{Evict: evict, SweepEvery: 512})
				if err != nil {
					b.Fatal(err)
				}
				peak = st.PeakLive
			}
			b.ReportMetric(float64(peak), "peakResidentVerts")
		})
	}
}

// BenchmarkAblationBoundaryPolicy reports the intermediate-data size
// under each boundary augmentation policy (correctness differs too:
// only KeepSharedBoundary reproduces the exact global tree — see the
// mergetree ablation tests).
func BenchmarkAblationBoundaryPolicy(b *testing.B) {
	benchSetup(b)
	for policy, name := range map[mergetree.BoundaryPolicy]string{
		mergetree.KeepSharedBoundary:           "sharedBoundary",
		mergetree.KeepCornersAndBoundaryMaxima: "cornersAndBoundaryMaxima",
		mergetree.KeepNone:                     "none",
	} {
		b.Run(name, func(b *testing.B) {
			var moved int
			for i := 0; i < b.N; i++ {
				_, moved = benchSubtrees(b, policy)
			}
			b.ReportMetric(float64(moved), "movedBytes")
		})
	}
}

// BenchmarkAblationHierarchicalGlue compares the serial in-transit
// aggregation with the parallel hierarchical (pairwise region merge)
// variant at several worker counts.
func BenchmarkAblationHierarchicalGlue(b *testing.B) {
	benchSetup(b)
	subtrees, _ := benchSubtrees(b, mergetree.KeepSharedBoundary)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := mergetree.Glue(subtrees, mergetree.GlueOptions{Evict: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("hierarchical-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mergetree.GlueHierarchical(subtrees, benchGlobal, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStreamingInTransit compares buffered vs streaming
// in-transit execution when transfers take real time (TimeScale
// stretches the modeled durations): streaming hides per-input compute
// behind the remaining transfers.
func BenchmarkAblationStreamingInTransit(b *testing.B) {
	const inputs = 4
	payload := make([]byte, 1<<20)
	run := func(b *testing.B, streamMode bool) {
		cfg := netsim.Gemini()
		cfg.TimeScale = 0.05  // ~3.5ms per 1MB pull
		cfg.SharedLink = true // bucket ingress: pulls arrive staggered
		fabric := dart.NewFabric(netsim.New(cfg))
		ds, err := dataspaces.New(fabric, 1)
		if err != nil {
			b.Fatal(err)
		}
		area, err := staging.New(fabric, ds, 1)
		if err != nil {
			b.Fatal(err)
		}
		work := func() { time.Sleep(2 * time.Millisecond) }
		if streamMode {
			area.HandleStream("x", func(task dataspaces.Task, in <-chan staging.StreamInput) (any, error) {
				for range in {
					work()
				}
				return nil, nil
			})
		} else {
			area.Handle("x", func(task dataspaces.Task, data [][]byte) (any, error) {
				for range data {
					work()
				}
				return nil, nil
			})
		}
		area.Start()
		prod := fabric.Register("sim")
		results := area.Results()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var descs []dataspaces.Descriptor
			for j := 0; j < inputs; j++ {
				descs = append(descs, dataspaces.Descriptor{
					Name: "x", Version: i, Rank: j, Handle: prod.RegisterMem(payload),
				})
			}
			if _, err := ds.SubmitTask("x", i, descs); err != nil {
				b.Fatal(err)
			}
			res := <-results
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
		b.StopTimer()
		ds.Close()
		area.Wait()
	}
	b.Run("buffered", func(b *testing.B) { run(b, false) })
	b.Run("streaming", func(b *testing.B) { run(b, true) })
}
