// Command benchjson runs the repo's codec benchmarks and records them
// as a machine-parseable JSON file (BENCH_PR6.json), or diffs two such
// files gating only on machine-independent metrics.
//
// Generate:
//
//	go run ./cmd/benchjson -o BENCH_PR6.json
//
// Gate (exit 1 on regression beyond tolerance):
//
//	go run ./cmd/benchjson -diff BENCH_PR6.json fresh.json
//
// The gate compares B/op, allocs/op and the custom bench metrics
// (x-compression, max-err) — numbers that reproduce on any machine.
// ns/op is machine-dependent and is recorded but never gated.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"insitu/internal/recovery"
)

// Bench is one parsed benchmark line.
type Bench struct {
	NsOp     float64            `json:"ns_op"`
	BOp      int64              `json:"B_op"`
	AllocsOp int64              `json:"allocs_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// File is the on-disk shape of a bench JSON file.
type File struct {
	PR          string            `json:"pr"`
	GeneratedBy string            `json:"generated_by"`
	Command     string            `json:"command"`
	Environment map[string]string `json:"environment"`
	Benchmarks  map[string]Bench  `json:"benchmarks"`
}

func main() {
	var (
		diff      = flag.Bool("diff", false, "diff mode: benchjson -diff old.json new.json")
		out       = flag.String("o", "BENCH_PR6.json", "output file (generate mode)")
		benchRe   = flag.String("bench", "Codec", "benchmark regex to run (generate mode)")
		benchtime = flag.String("benchtime", "200x", "go test -benchtime value (generate mode)")
		pr        = flag.String("pr", "Transfer-path codec layer: delta encoding + float quantization", "pr title recorded in the file")
		tol       = flag.Float64("tol", 0.10, "relative tolerance for gated metrics (diff mode)")
	)
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fatalf("diff mode needs exactly two files: benchjson -diff old.json new.json")
		}
		if errs := diffFiles(flag.Arg(0), flag.Arg(1), *tol); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "REGRESSION:", e)
			}
			os.Exit(1)
		}
		fmt.Println("bench gate: all machine-independent metrics within tolerance")
		return
	}

	if err := generate(*out, *benchRe, *benchtime, *pr); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

func generate(out, benchRe, benchtime, pr string) error {
	args := []string{"test", "-run", "xxx", "-bench", benchRe, "-benchmem", "-benchtime", benchtime, "."}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	f, err := parseBenchOutput(buf.Bytes())
	if err != nil {
		return err
	}
	f.PR = pr
	f.GeneratedBy = "cmd/benchjson"
	f.Command = "go " + strings.Join(args, " ")
	f.Environment["cpus"] = strconv.Itoa(runtime.NumCPU())
	f.Environment["gomaxprocs"] = strconv.Itoa(runtime.GOMAXPROCS(0))
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines matched %q", benchRe)
	}
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	// Atomic landing: a crash mid-write must not tear a baseline file a
	// later -diff run would gate against.
	if err := recovery.WriteFileAtomic(out, enc, 0o644); err != nil {
		return err
	}
	names := make([]string, 0, len(f.Benchmarks))
	for n := range f.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("wrote %s (%d benchmarks: %s)\n", out, len(names), strings.Join(names, ", "))
	return nil
}

// benchLine matches "BenchmarkName[-P] <N> <fields...>" where each
// field is "<value> <unit>".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func parseBenchOutput(out []byte) (*File, error) {
	f := &File{
		Environment: map[string]string{},
		Benchmarks:  map[string]Bench{},
	}
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				f.Environment[key] = strings.TrimSpace(v)
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Bench{Metrics: map[string]float64{}}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q: %w", m[1], fields[i], err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsOp = val
			case "B/op":
				b.BOp = int64(val)
			case "allocs/op":
				b.AllocsOp = int64(val)
			default:
				b.Metrics[unit] = val
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		f.Benchmarks[m[1]] = b
	}
	return f, sc.Err()
}

func loadFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// diffFiles gates new against old on machine-independent metrics only:
// allocs/op must not grow, B/op must stay within tolerance (plus a
// small absolute slack for pool-accounting jitter), x-compression must
// not shrink beyond tolerance, max-err must not grow beyond tolerance.
func diffFiles(oldPath, newPath string, tol float64) []string {
	oldF, err := loadFile(oldPath)
	if err != nil {
		return []string{err.Error()}
	}
	newF, err := loadFile(newPath)
	if err != nil {
		return []string{err.Error()}
	}
	var errs []string
	names := make([]string, 0, len(oldF.Benchmarks))
	for n := range oldF.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		o := oldF.Benchmarks[name]
		n, ok := newF.Benchmarks[name]
		if !ok {
			errs = append(errs, fmt.Sprintf("%s: missing from %s", name, newPath))
			continue
		}
		if n.AllocsOp > o.AllocsOp {
			errs = append(errs, fmt.Sprintf("%s: allocs/op %d -> %d", name, o.AllocsOp, n.AllocsOp))
		}
		// At zero allocs/op the residual B/op reading is sync.Pool
		// accounting jitter, not real allocation — gate B/op only when a
		// run actually allocates (with a small absolute slack on top of
		// the relative tolerance for amortization noise).
		if o.AllocsOp > 0 || n.AllocsOp > 0 {
			if limit := int64(float64(o.BOp)*(1+tol)) + 64; n.BOp > limit {
				errs = append(errs, fmt.Sprintf("%s: B/op %d -> %d (limit %d)", name, o.BOp, n.BOp, limit))
			}
		}
		for unit, ov := range o.Metrics {
			nv, ok := n.Metrics[unit]
			if !ok {
				errs = append(errs, fmt.Sprintf("%s: metric %q disappeared", name, unit))
				continue
			}
			switch unit {
			case "x-compression", "speedup":
				if nv < ov*(1-tol) {
					errs = append(errs, fmt.Sprintf("%s: %s %.3f -> %.3f", name, unit, ov, nv))
				}
			case "max-err":
				if nv > ov*(1+tol)+1e-12 {
					errs = append(errs, fmt.Sprintf("%s: %s %g -> %g", name, unit, ov, nv))
				}
			}
		}
	}
	return errs
}
