// Command doccheck is the godoc lint behind `make doccheck`: it parses
// the packages named on the command line and fails when any exported
// package-level symbol — function, method on an exported receiver,
// type, or const/var declaration — lacks a doc comment. It is the
// registry's ownership/lifecycle contract made enforceable: an
// analysis or config knob nobody documented is an analysis or config
// knob nobody can select from a pipeline config.
//
// Usage:
//
//	doccheck ./internal/registry ./internal/core
//
// Directories are walked non-recursively (each argument is one
// package directory, matching the go tool's ./pkg path form). Test
// files are skipped.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doccheck DIR [DIR...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	bad := 0
	for _, dir := range flag.Args() {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(1)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported symbol(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory and returns a sorted list of
// "file:line: symbol" strings for undocumented exported symbols.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: undocumented exported %s",
			filepath.Join(dir, filepath.Base(p.Filename)), p.Line, what))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, report)
				case *ast.GenDecl:
					checkGen(d, report)
				}
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// checkFunc flags exported functions and exported methods on exported
// receivers that carry no doc comment.
func checkFunc(d *ast.FuncDecl, report func(token.Pos, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "function " + d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return // method on an unexported type: not part of the API
		}
		kind = fmt.Sprintf("method %s.%s", recv, d.Name.Name)
	}
	report(d.Pos(), kind)
}

// checkGen flags exported types, consts, and vars. A doc comment on
// the enclosing declaration group covers every spec inside it, and a
// per-spec comment covers that spec alone — the same rule godoc uses.
func checkGen(d *ast.GenDecl, report func(token.Pos, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type "+s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(name.Pos(), "const/var "+name.Name)
				}
			}
		}
	}
}

// receiverName unwraps a method receiver type expression to its named
// type, tolerating pointers and generic instantiations.
func receiverName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.IndexExpr:
		return receiverName(t.X)
	case *ast.IndexListExpr:
		return receiverName(t.X)
	}
	return ""
}
