// Command experiments regenerates every table and figure of the
// paper's evaluation section at laptop scale:
//
//	experiments -table1   core allocations, data size, sim + I/O times
//	experiments -table2   per-analysis in-situ/movement/in-transit costs
//	experiments -fig1     feature tracking vs analysis cadence
//	experiments -fig2     in-situ vs hybrid rendering (writes PNGs)
//	experiments -fig3     merge-tree/segmentation correspondence
//	experiments -fig6     per-step timing breakdown
//	experiments -all      everything
//
// Published paper values are printed in brackets next to the measured
// ones; absolute times differ (this runs on one machine, not 4896
// Jaguar cores) but the shape — who is cheap, who is expensive, what
// moves how much data — reproduces.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"insitu/internal/grid"
	"insitu/internal/mergetree"
	"insitu/internal/render"
	"insitu/internal/sim"
	"insitu/internal/workload"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "reproduce Table I")
		table2 = flag.Bool("table2", false, "reproduce Table II")
		fig1   = flag.Bool("fig1", false, "reproduce the Fig. 1 tracking experiment")
		fig2   = flag.Bool("fig2", false, "reproduce the Fig. 2 rendering comparison")
		fig3   = flag.Bool("fig3", false, "reproduce the Fig. 3 merge-tree/segmentation example")
		fig6   = flag.Bool("fig6", false, "reproduce the Fig. 6 breakdown")
		all    = flag.Bool("all", false, "run everything")
		steps  = flag.Int("steps", 4, "simulation steps per measurement")
		outdir = flag.String("outdir", ".", "directory for generated files")
	)
	flag.Parse()
	if *all {
		*table1, *table2, *fig1, *fig2, *fig3, *fig6 = true, true, true, true, true, true
	}
	if !*table1 && !*table2 && !*fig1 && !*fig2 && !*fig3 && !*fig6 {
		flag.Usage()
		os.Exit(2)
	}
	if *table1 {
		runTable1(*steps, *outdir)
	}
	var t2 *workload.TableIIResult
	if *table2 || *fig6 {
		t2 = runTable2(*steps, *table2)
	}
	if *fig6 {
		fmt.Println("=== Figure 6: per-step timing breakdown (4896-core scenario) ===")
		fmt.Println(workload.FormatFig6(t2.Fig6Series()))
	}
	if *fig1 {
		runFig1(*steps)
	}
	if *fig2 {
		runFig2(*outdir)
	}
	if *fig3 {
		runFig3()
	}
}

// runFig3 reproduces the paper's Fig. 3: a 2-D function whose merge
// tree encodes the merging of contours as the isovalue is lowered,
// with branches corresponding to regions in the domain.
func runFig3() {
	fmt.Println("=== Figure 3: merge tree <-> segmentation correspondence (2-D example) ===")
	b := grid.NewBox(24, 12, 1)
	f := grid.NewField("h", b)
	// Two hills of different heights over a sloping plain.
	for idx := range f.Data {
		i, j, _ := b.Point(idx)
		x, y := float64(i), float64(j)
		h := 0.05 * (24 - x) / 24
		h += 1.0 * gauss(x, y, 6, 6, 2.6)
		h += 0.7 * gauss(x, y, 17, 5, 2.2)
		f.Data[idx] = h
	}
	tr := mergetree.FromField(f, b)
	branches := mergetree.BranchDecomposition(mergetree.Reduce(tr, func(n *mergetree.Node) bool { return false }))
	fmt.Printf("merge tree: %d maxima, %d saddles\n", len(tr.Maxima()), len(tr.Saddles()))
	for _, br := range branches {
		x, y, _ := grid.GlobalPoint(b, br.Max.ID)
		if br.Saddle != nil {
			fmt.Printf("  branch: max %.3f at (%d,%d) merges at saddle %.3f (persistence %.3f)\n",
				br.Max.Value, x, y, br.Saddle.Value, br.Persistence)
		} else {
			fmt.Printf("  branch: max %.3f at (%d,%d) — root branch (infinite persistence)\n",
				br.Max.Value, x, y)
		}
	}
	// The correspondence: sweep three isovalues, show the segmentation.
	for _, iso := range []float64{0.8, 0.5, 0.2} {
		seg := mergetree.Segment(tr, iso)
		feats := seg.Features(tr)
		fmt.Printf("\nisovalue %.2f: %d contour component(s)\n", iso, len(feats))
		printSegRow(f, seg, b)
	}
}

func gauss(x, y, cx, cy, s float64) float64 {
	dx, dy := x-cx, y-cy
	return mexp(-(dx*dx + dy*dy) / (2 * s * s))
}

func mexp(v float64) float64 { return math.Exp(v) }

// printSegRow draws the 2-D segmentation as ASCII, one glyph per
// component.
func printSegRow(f *grid.Field, seg *mergetree.Segmentation, b grid.Box) {
	glyphs := map[int64]byte{}
	next := byte('A')
	for j := b.Hi[1] - 1; j >= b.Lo[1]; j-- {
		line := make([]byte, 0, b.Hi[0])
		for i := b.Lo[0]; i < b.Hi[0]; i++ {
			id := grid.GlobalIndex(b, i, j, 0)
			label, ok := seg.Labels[id]
			if !ok {
				line = append(line, '.')
				continue
			}
			g, seen := glyphs[label]
			if !seen {
				g = next
				glyphs[label] = g
				next++
			}
			line = append(line, g)
		}
		fmt.Printf("  %s\n", line)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func runTable1(steps int, outdir string) {
	fmt.Println("=== Table I: core allocations, data sizes, timings ===")
	var rows []*workload.TableIRow
	for _, sc := range []workload.Scenario{workload.Scenario4896(), workload.Scenario9440()} {
		dir := filepath.Join(outdir, "checkpoints")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		row, err := workload.RunTableI(sc, steps, dir)
		if err != nil {
			fatal(err)
		}
		rows = append(rows, row)
		workload.CleanDir(dir)
	}
	fmt.Println(workload.FormatTableI(rows))
}

func runTable2(steps int, print bool) *workload.TableIIResult {
	res, err := workload.RunTableII(workload.Scenario4896(), steps, true)
	if err != nil {
		fatal(err)
	}
	if print {
		fmt.Println("=== Table II: analysis cost breakdown (4896-core scenario, paper values bracketed) ===")
		fmt.Println(res.Format())
	}
	return res
}

func runFig1(steps int) {
	fmt.Println("=== Figure 1: ignition-kernel tracking vs analysis cadence ===")
	cfg := sim.DefaultConfig(grid.NewBox(48, 24, 12), 2, 2, 1)
	cfg.KernelRate = 0.8
	n := steps * 10
	if n < 40 {
		n = 40
	}
	res, err := workload.RunFig1(cfg, n, 0.1, []int{1, 5, 10, 40})
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Format())
}

func runFig2(outdir string) {
	fmt.Println("=== Figure 2: in-situ full-resolution vs hybrid down-sampled rendering ===")
	g := grid.NewBox(64, 48, 24)
	cfg := sim.DefaultConfig(g, 2, 2, 1)
	s, err := sim.New(cfg)
	if err != nil {
		fatal(err)
	}
	// Advance the simulation serially on one goroutine per rank via
	// the workload Fig. 1 helper pattern: reuse RunTableI's machinery
	// indirectly by running the field stitcher here.
	field, err := stitchedField(s, 12, "T")
	if err != nil {
		fatal(err)
	}
	tf := render.HotMetal(0.3, 2.0)
	full, err := render.NewRenderer(480, 360, tf, [3]float64{0.45, 0.3, 1}, [3]float64{0, 1, 0}, 0.4, g)
	if err != nil {
		fatal(err)
	}
	img := full.RenderSerial(field)
	mustSave(img, filepath.Join(outdir, "fig2-insitu-full.png"))

	dc := s.Decomp()
	for _, factor := range []int{2, 8} {
		bt := render.NewBlockTable()
		for r := 0; r < dc.Ranks(); r++ {
			payload, _ := render.DownsampleForTransit(field, dc.Block(r), factor)
			if err := bt.AddMarshalled(payload); err != nil {
				fatal(err)
			}
		}
		hy, err := render.NewRenderer(480, 360, tf, full.Dir, full.Up, full.Step/float64(factor), bt.Bounds())
		if err != nil {
			fatal(err)
		}
		himg, err := hy.RenderTable(bt)
		if err != nil {
			fatal(err)
		}
		mustSave(himg, filepath.Join(outdir, fmt.Sprintf("fig2-hybrid-%dx.png", factor)))
		diff, _ := render.MeanAbsDiff(img, himg)
		fmt.Printf("hybrid %dx down-sampled: mean abs pixel difference %.5f, payload reduction ~%dx\n",
			factor, diff, factor*factor*factor)
	}
	fmt.Printf("images written to %s\n", outdir)
}

func stitchedField(s *sim.Sim, steps int, name string) (*grid.Field, error) {
	out := grid.NewField(name, s.Config().Global)
	var mu sync.Mutex
	err := sim.RunAll(s, func(rk *sim.Rank) error {
		rk.RunSteps(steps)
		f := rk.Field(name)
		mu.Lock()
		out.Paste(f)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func mustSave(img *render.Image, path string) {
	if err := img.SavePNG(path); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}
