// Command genckpt advances the S3D proxy and writes a file-per-process
// BP-lite checkpoint — the conventional post-processing input that
// cmd/mtree consumes:
//
//	genckpt -steps 10 -outdir /tmp/ckpt
//	mtree -var T -threshold 1.2 /tmp/ckpt/rank-*.bp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"insitu/internal/bp"
	"insitu/internal/grid"
	"insitu/internal/sim"
)

func main() {
	var (
		nx, ny, nz = flag.Int("nx", 48, "global grid x"), flag.Int("ny", 32, "global grid y"), flag.Int("nz", 12, "global grid z")
		px, py, pz = flag.Int("px", 2, "ranks in x"), flag.Int("py", 2, "ranks in y"), flag.Int("pz", 1, "ranks in z")
		steps      = flag.Int("steps", 10, "simulation steps before the checkpoint")
		outdir     = flag.String("outdir", ".", "output directory")
		seed       = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	cfg := sim.DefaultConfig(grid.NewBox(*nx, *ny, *nz), *px, *py, *pz)
	cfg.Seed = *seed
	s, err := sim.New(cfg)
	if err != nil {
		fail(err)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fail(err)
	}
	err = sim.RunAll(s, func(rk *sim.Rank) error {
		rk.RunSteps(*steps)
		var fields []*grid.Field
		for _, name := range sim.VarNames {
			fields = append(fields, rk.Field(name))
		}
		path := filepath.Join(*outdir, fmt.Sprintf("rank-%04d.bp", rk.Comm().ID()))
		n, err := bp.WriteFile(path, fields)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, n)
		return nil
	})
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "genckpt:", err)
	os.Exit(1)
}
