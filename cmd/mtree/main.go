// Command mtree computes the merge tree of a variable stored in a
// BP-lite checkpoint file, optionally simplifying by persistence and
// extracting superlevel-set features:
//
//	mtree -var T -simplify 0.1 -threshold 1.2 rank-0000.bp
//
// With several input files (one per rank) it exercises the hybrid
// pipeline offline: per-file subtrees are glued with the streaming
// in-transit algorithm, exactly as the live framework does.
package main

import (
	"flag"
	"fmt"
	"os"

	"insitu/internal/bp"
	"insitu/internal/grid"
	"insitu/internal/mergetree"
)

func main() {
	var (
		varName   = flag.String("var", "T", "variable to analyze")
		simplify  = flag.Float64("simplify", 0, "prune branches below this persistence")
		threshold = flag.Float64("threshold", 0, "extract features above this value (0 = off)")
		maxima    = flag.Int("print", 10, "print the top N maxima by persistence")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mtree [flags] file.bp [file.bp ...]")
		os.Exit(2)
	}

	fields := make([]*grid.Field, 0, flag.NArg())
	global := grid.Box{}
	for _, path := range flag.Args() {
		f, err := bp.ReadVar(path, *varName)
		if err != nil {
			fail(err)
		}
		fields = append(fields, f)
		global = global.Union(f.Box)
	}

	var tree *mergetree.Tree
	if len(fields) == 1 {
		tree = mergetree.FromField(fields[0], global)
		tree = mergetree.Reduce(tree, func(n *mergetree.Node) bool { return false })
	} else {
		// Multi-block: stitch the global field, then run the hybrid
		// decomposition offline — per-block boundary-augmented
		// subtrees glued by the streaming in-transit algorithm,
		// exactly as the live framework does. Each input file's box is
		// treated as one rank's owned block.
		stitched := grid.NewField(*varName, global)
		for _, f := range fields {
			stitched.Paste(f)
		}
		var subtrees []*mergetree.Subtree
		for i, f := range fields {
			ext := f.Box.Grow(1).Intersect(global)
			st, err := mergetree.LocalSubtree(stitched.Extract(ext), global, f.Box, i, mergetree.KeepSharedBoundary)
			if err != nil {
				fail(err)
			}
			subtrees = append(subtrees, st)
		}
		var stats mergetree.StreamStats
		var err error
		tree, stats, err = mergetree.Glue(subtrees, mergetree.GlueOptions{Evict: true})
		if err != nil {
			fail(err)
		}
		fmt.Printf("streamed %d vertices, peak resident %d, evicted %d\n",
			stats.Declared, stats.PeakLive, stats.Evicted)
		tree = mergetree.Reduce(tree, func(n *mergetree.Node) bool { return false })
	}

	if *simplify > 0 {
		tree = mergetree.Simplify(tree, *simplify)
	}
	fmt.Printf("variable %s over %v: %d nodes, %d maxima, %d saddles, %d roots\n",
		*varName, global, len(tree.Nodes), len(tree.Maxima()), len(tree.Saddles()), len(tree.Roots))

	branches := mergetree.BranchDecomposition(tree)
	n := *maxima
	if n > len(branches) {
		n = len(branches)
	}
	fmt.Printf("\ntop %d branches by persistence:\n", n)
	for i := 0; i < n; i++ {
		b := branches[i]
		x, y, z := grid.GlobalPoint(global, b.Max.ID)
		fmt.Printf("  max %.6g at (%d,%d,%d), persistence %.6g\n",
			b.Max.Value, x, y, z, b.Persistence)
	}

	if *threshold > 0 {
		seg := mergetree.Segment(tree, *threshold)
		feats := seg.Features(tree)
		fmt.Printf("\n%d features above %.6g:\n", len(feats), *threshold)
		for i, f := range feats {
			if i >= *maxima {
				fmt.Printf("  ... and %d more\n", len(feats)-i)
				break
			}
			x, y, z := grid.GlobalPoint(global, f.MaxID)
			fmt.Printf("  feature %d: %d retained vertices, peak %.6g at (%d,%d,%d)\n",
				i, f.Size, f.MaxValue, x, y, z)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mtree:", err)
	os.Exit(1)
}
