// Command obscheck is the CI gate for the observability endpoint: it
// launches a built s3dpipe binary with -obs and -hold, waits for the
// run to drain via /status, then validates every export the endpoint
// serves:
//
//   - /metrics contains the transfer, retry, credit, and admission
//     series and parses as Prometheus text exposition,
//   - /trace.json parses as Chrome trace-event JSON with a non-empty
//     traceEvents array,
//   - /events.jsonl parses line by line and its task lifecycle
//     reconciles: every task.submit id has exactly one task.done,
//   - /debug/pprof/ answers.
//
// It exits non-zero on the first violation. Usage:
//
//	obscheck -bin /path/to/s3dpipe
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"
)

func main() {
	bin := flag.String("bin", "", "path to the s3dpipe binary to drive")
	addr := flag.String("addr", "127.0.0.1:17710", "address the endpoint listens on")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	flag.Parse()
	if *bin == "" {
		fatal("obscheck: -bin is required")
	}

	cmd := exec.Command(*bin,
		"-nx", "16", "-ny", "8", "-nz", "8",
		"-px", "2", "-py", "1", "-pz", "1",
		"-steps", "3",
		"-obs", *addr, "-hold")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatal("obscheck: start %s: %v", *bin, err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	base := "http://" + *addr
	deadline := time.Now().Add(*timeout)
	waitDone(base, deadline)

	checkMetrics(base)
	checkTrace(base)
	checkEvents(base)
	checkPprof(base)
	fmt.Println("obscheck: all endpoint checks passed")
}

// waitDone polls /status until the pipeline reports the run drained.
func waitDone(base string, deadline time.Time) {
	for {
		if time.Now().After(deadline) {
			fatal("obscheck: run did not drain before the deadline")
		}
		body, err := get(base + "/status")
		if err == nil {
			var st struct {
				Done bool `json:"done"`
			}
			if json.Unmarshal(body, &st) == nil && st.Done {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// checkMetrics validates the Prometheus text dump: the required series
// are present and every non-comment line has a parseable shape.
func checkMetrics(base string) {
	body, err := get(base + "/metrics")
	if err != nil {
		fatal("obscheck: /metrics: %v", err)
	}
	text := string(body)
	for _, want := range []string{
		"dart_transfer_bytes_total",
		"dart_retries_total",
		"credits_available",
		"credits_total",
		"admission_decisions_total",
		"pipeline_tasks_submitted_total",
	} {
		if !strings.Contains(text, want) {
			fatal("obscheck: /metrics is missing series %q", want)
		}
	}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			fatal("obscheck: /metrics line %d not 'name value': %q", i+1, line)
		}
	}
	fmt.Println("obscheck: /metrics ok")
}

// checkTrace validates /trace.json as Chrome trace-event JSON.
func checkTrace(base string) {
	body, err := get(base + "/trace.json")
	if err != nil {
		fatal("obscheck: /trace.json: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		fatal("obscheck: /trace.json does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		fatal("obscheck: /trace.json has no events")
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "" {
			fatal("obscheck: /trace.json event %q has no phase", ev.Name)
		}
	}
	fmt.Printf("obscheck: /trace.json ok (%d events)\n", len(doc.TraceEvents))
}

// checkEvents validates /events.jsonl and reconciles the task
// lifecycle: every task.submit pairs with exactly one task.done.
func checkEvents(base string) {
	body, err := get(base + "/events.jsonl")
	if err != nil {
		fatal("obscheck: /events.jsonl: %v", err)
	}
	submits := map[string]int{}
	dones := map[string]int{}
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		n++
		var rec struct {
			Name  string            `json:"name"`
			Attrs map[string]string `json:"attrs"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			fatal("obscheck: /events.jsonl line %d does not parse: %v", n, err)
		}
		switch rec.Name {
		case "task.submit":
			submits[rec.Attrs["task"]]++
		case "task.done":
			dones[rec.Attrs["task"]]++
		}
	}
	if err := sc.Err(); err != nil {
		fatal("obscheck: /events.jsonl: %v", err)
	}
	if len(submits) == 0 {
		fatal("obscheck: /events.jsonl has no task.submit events")
	}
	for id, c := range submits {
		if c != 1 {
			fatal("obscheck: task %s submitted %d times", id, c)
		}
		if dones[id] != 1 {
			fatal("obscheck: task %s has %d terminal events, want exactly 1", id, dones[id])
		}
	}
	for id := range dones {
		if submits[id] == 0 {
			fatal("obscheck: task %s completed but was never submitted", id)
		}
	}
	fmt.Printf("obscheck: /events.jsonl ok (%d lines, %d tasks reconciled)\n", n, len(submits))
}

// checkPprof confirms the live profiling index answers.
func checkPprof(base string) {
	if _, err := get(base + "/debug/pprof/"); err != nil {
		fatal("obscheck: /debug/pprof/: %v", err)
	}
	fmt.Println("obscheck: /debug/pprof/ ok")
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
