// Command pipecheck is the configuration gate behind `make configs`:
// it validates declarative pipeline configs without running them, and
// optionally drives one config end-to-end as a smoke test.
//
//	pipecheck -dir examples/configs          # validate every *.json
//	pipecheck -run examples/configs/quickstart.json -steps 3
//	pipecheck -list                          # print the analysis catalog
//
// Validation uses registry.LoadConfig — strict decoding plus the full
// typed-error Validate pass — so a config that pipecheck accepts is a
// config s3dpipe -config will build. The -run smoke additionally
// checks the run leaks nothing (every pinned staging region drains).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"insitu/internal/core"
	"insitu/internal/registry"

	// Imported for its analysis registrations (the "poison" drill
	// route), so scenario configs naming it validate.
	_ "insitu/internal/workload"
)

func main() {
	var (
		dir   = flag.String("dir", "", "validate every *.json config under this directory")
		run   = flag.String("run", "", "build and run this config end-to-end as a smoke test")
		steps = flag.Int("steps", 0, "with -run: override the config's step count")
		list  = flag.Bool("list", false, "print the registered analysis catalog and exit")
	)
	flag.Parse()

	switch {
	case *list:
		listAnalyses()
	case *dir != "":
		validateDir(*dir)
	case *run != "":
		runConfig(*run, *steps)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// listAnalyses prints each registered analysis with its supported
// placements and one-line description.
func listAnalyses() {
	for _, name := range registry.Names() {
		info, _ := registry.Lookup(name)
		fmt.Printf("%-14s %v\n               %s\n", name, info.Placements, info.Doc)
	}
}

// validateDir loads every *.json under dir through the strict loader
// and reports per-file verdicts; any failure exits non-zero.
func validateDir(dir string) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		fail(err)
	}
	if len(paths) == 0 {
		fail(fmt.Errorf("no *.json configs under %s", dir))
	}
	sort.Strings(paths)
	bad := 0
	for _, path := range paths {
		cfg, err := registry.LoadConfig(path)
		if err != nil {
			fmt.Printf("FAIL %s\n     %v\n", path, err)
			bad++
			continue
		}
		fmt.Printf("ok   %s (%s: %d tenant(s), %d analyses)\n",
			path, cfg.Name, len(cfg.Tenants), countAnalyses(cfg))
	}
	if bad > 0 {
		fail(fmt.Errorf("%d config(s) failed validation", bad))
	}
}

// runConfig builds the config and runs it end-to-end, verifying the
// run completes and drains every pinned staging region.
func runConfig(path string, steps int) {
	cfg, err := registry.LoadConfig(path)
	if err != nil {
		fail(err)
	}
	b, err := registry.Build(cfg)
	if err != nil {
		fail(err)
	}
	defer b.Close()
	n := b.Steps(steps, 3)
	fmt.Printf("running %s (%s) for %d steps\n", path, cfg.Name, n)

	if b.Scheduler != nil {
		reps, err := b.Scheduler.Run(n)
		if err != nil {
			fail(err)
		}
		for _, t := range b.Tenants {
			rep := reps[t.Name]
			if rep == nil {
				fail(fmt.Errorf("tenant %q produced no report", t.Name))
			}
			fmt.Printf("  tenant %-12s %d analyses, worst step wall %v\n",
				t.Name, len(t.Analyses), rep.Metrics.MaxStepWall().Round(1e3))
		}
	} else {
		rep, err := b.Pipeline.Run(n)
		if err != nil {
			fail(err)
		}
		checkResults(b, rep, n)
		if pinned := b.Pipeline.PinnedRegions(); pinned != 0 {
			fail(fmt.Errorf("%d staging regions still pinned after the run", pinned))
		}
		fmt.Printf("  %d analyses, worst step wall %v, 0 pinned regions\n",
			len(b.Tenants[0].Analyses), rep.Metrics.MaxStepWall().Round(1e3))
	}
	fmt.Println("smoke ok")
}

// checkResults verifies every registered analysis produced a final
// result (the smoke's "did anything actually run" assertion).
func checkResults(b *registry.Built, rep *core.Report, steps int) {
	for _, a := range b.Tenants[0].Analyses {
		every := a.Every()
		if every < 1 {
			every = 1
		}
		last := steps - steps%every
		if last == 0 {
			continue
		}
		if rep.Result(a.Name(), last) == nil {
			fail(fmt.Errorf("analysis %q produced no result at step %d", a.Name(), last))
		}
	}
}

// countAnalyses totals the analyses across a config's tenants.
func countAnalyses(cfg *registry.Config) int {
	n := 0
	for _, t := range cfg.Tenants {
		n += len(t.Analyses)
	}
	return n
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pipecheck:", err)
	os.Exit(1)
}
