// Command s3dpipe is the thin launcher over the analysis registry: it
// turns a declarative pipeline config into a running hybrid
// in-situ/in-transit pipeline and prints the resulting Table II style
// cost breakdown. The preferred entry point is a config file:
//
//	s3dpipe -config examples/configs/quickstart.json
//
// The original ad-hoc flags still work and are converted into a
// generated legacy config (printable with -dump-config), so both paths
// construct pipelines through the identical registry.Build code:
//
//	s3dpipe -nx 64 -ny 48 -nz 16 -px 4 -py 4 -pz 2 -steps 10 \
//	        -stats hybrid -viz hybrid -topology -buckets 4
//
// See PIPELINES.md for the complete configuration reference.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"insitu/internal/core"
	"insitu/internal/obs"
	"insitu/internal/recovery"
	"insitu/internal/registry"
	"insitu/internal/render"
	"insitu/internal/serve"
	"insitu/internal/trace"
	"insitu/internal/workload"
)

func main() {
	var (
		configPath = flag.String("config", "", "declarative pipeline config file (JSON); supersedes the scenario flags below")
		dumpConfig = flag.Bool("dump-config", false, "print the effective pipeline config as JSON and exit without running")
		nx, ny, nz = flag.Int("nx", 56, "global grid x"), flag.Int("ny", 48, "global grid y"), flag.Int("nz", 16, "global grid z")
		px, py, pz = flag.Int("px", 4, "ranks in x"), flag.Int("py", 4, "ranks in y"), flag.Int("pz", 2, "ranks in z")
		steps      = flag.Int("steps", 5, "simulation steps")
		every      = flag.Int("every", 1, "analysis cadence in steps")
		substeps   = flag.Int("substeps", 1, "explicit sub-iterations per step (S3D-like cost)")
		buckets    = flag.Int("buckets", 4, "staging buckets (in-transit cores)")
		servers    = flag.Int("servers", 2, "DataSpaces service shards")
		statsMode  = flag.String("stats", "both", "descriptive statistics: off|insitu|hybrid|both")
		vizMode    = flag.String("viz", "both", "visualization: off|insitu|hybrid|both")
		topo       = flag.Bool("topology", true, "hybrid merge-tree topology")
		topoStream = flag.Bool("topology-streaming", false, "use the streaming in-transit topology variant")
		topoPar    = flag.Int("topology-workers", 0, ">1 switches to the parallel hierarchical glue")
		feat       = flag.Bool("featurestats", false, "hybrid feature-based statistics")
		autoc      = flag.Bool("autocorr", false, "hybrid temporal auto-correlation")
		conting    = flag.Bool("contingency", false, "hybrid contingency statistics (T vs OH)")
		assess     = flag.Bool("assess", false, "in-situ assess & test (outlier flags + normality test)")
		tracking   = flag.Bool("tracking", false, "hybrid feature tracking on the OH field")
		factor     = flag.Int("factor", 8, "hybrid visualization down-sampling factor")
		imgOut     = flag.String("images", "", "directory to write final-step renders to")
		seed       = flag.Int64("seed", 1, "simulation seed")
		timeline   = flag.Bool("timeline", false, "print the execution Gantt chart (temporal multiplexing)")
		overload   = flag.Bool("overload", false, "run the fixed-seed staging-brownout scenario and print the overload/resilience summary")
		tenants    = flag.Bool("tenants", false, "run the fixed-seed multi-tenant noisy-neighbor scenario and print the per-tenant fabric summary")
		obsAddr    = flag.String("obs", "", "serve the live observability endpoint (/metrics, /trace.json, /events.jsonl, /status, /debug/pprof) on this address, e.g. :6060")
		obsDump    = flag.String("obs-dump", "", "directory to write trace.json, events.jsonl, and metrics.prom to after the run")
		hold       = flag.Bool("hold", false, "with -obs: keep serving after the run until SIGINT/SIGTERM")
		journal    = flag.String("journal", "", "directory for the durable step journal and checkpoints (enables recovery)")
		resume     = flag.Bool("resume", false, "with -journal: continue an interrupted run from its last committed step")
		ckptEvery  = flag.Int("ckpt-every", 5, "with -journal: checkpoint cadence in steps")
		storeDir   = flag.String("store", "", "directory for the Cinema-style image database; rendered frames are filed there as the run goes")
		serveAddr  = flag.String("serve", "", "with -store: serve the image database over HTTP on this address, e.g. :8080 (viewer page, /db, /img, /latest.json)")
		cameras    = flag.Int("cameras", 0, "render each viz step from an orbit of N camera directions (the image database's camera axis; 0/1 = the single default view)")
	)
	flag.Parse()

	if *configPath != "" && (*overload || *tenants) {
		fail(fmt.Errorf("-config cannot be combined with the -overload/-tenants scenario flags; use the checked-in scenario configs instead"))
	}
	if *overload {
		runBrownout(*obsAddr, *obsDump, *hold)
		return
	}
	if *tenants {
		runTenants(*obsAddr, *obsDump, *hold)
		return
	}

	var cfg *registry.Config
	var err error
	if *configPath != "" {
		cfg, err = registry.LoadConfig(*configPath)
	} else {
		if *resume && *journal == "" {
			fail(fmt.Errorf("-resume requires -journal DIR"))
		}
		if *serveAddr != "" && *storeDir == "" {
			fail(fmt.Errorf("-serve requires -store DIR"))
		}
		cfg, err = registry.LegacyOptions{
			NX: *nx, NY: *ny, NZ: *nz,
			PX: *px, PY: *py, PZ: *pz,
			Steps: *steps, Every: *every, SubSteps: *substeps,
			Buckets: *buckets, Servers: *servers,
			StatsMode: *statsMode, VizMode: *vizMode,
			Topology: *topo, TopologyStreaming: *topoStream, TopologyWorkers: *topoPar,
			FeatureStats: *feat, AutoCorr: *autoc, Contingency: *conting,
			Assess: *assess, Tracking: *tracking,
			Factor: *factor, Cameras: *cameras, Seed: *seed,
			Journal: *journal, CkptEvery: *ckptEvery,
			StoreDir: *storeDir,
		}.Config()
	}
	if err != nil {
		fail(err)
	}
	if *dumpConfig {
		out, err := cfg.Marshal()
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(out)
		return
	}

	b, err := registry.Build(cfg)
	if err != nil {
		fail(err)
	}
	defer b.Close()

	runSteps := b.Steps(explicitSteps(), 5)
	if b.Scheduler != nil {
		runMulti(b, runSteps, *obsAddr, *obsDump, *hold)
		return
	}
	runSingle(b, runSteps, *resume, *timeline, *imgOut, *obsAddr, *obsDump, *hold, *serveAddr)
}

// explicitSteps returns the -steps value when the user set it on the
// command line, 0 otherwise — so a config's declared step count wins
// over the flag default but never over an explicit flag.
func explicitSteps() int {
	set := 0
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "steps" {
			fmt.Sscanf(f.Value.String(), "%d", &set)
		}
	})
	return set
}

// runSingle runs a single-tenant topology and prints the classic
// s3dpipe report: recovery summary, timeline, store info, the Table II
// cost breakdown, and the final-step topology/render artifacts.
func runSingle(b *registry.Built, steps int, resume, timeline bool, imgOut, obsAddr, obsDump string, hold bool, serveAddr string) {
	p := b.Pipeline
	t := &b.Config.Tenants[0]
	if resume && b.Config.Recovery == nil {
		fail(fmt.Errorf("-resume requires a recovery plane (-journal or a config recovery block)"))
	}

	var tl *trace.Timeline
	if timeline {
		tl = p.EnableTrace()
	}
	pl, stop := setupObs(p, obsAddr, obsDump)
	if b.Store != nil && pl != nil {
		b.Store.PublishTo(pl.Registry())
	}

	if serveAddr == "" && b.Config.Store != nil {
		serveAddr = b.Config.Store.Serve
	}
	if serveAddr != "" && b.Store == nil {
		fail(fmt.Errorf("serving requires an image store (-store DIR or a config store block)"))
	}
	// The serving tier starts before the run so live viewers can poll
	// latest.json while frames are still landing.
	var stopServe func()
	if serveAddr != "" {
		sv := serve.New(b.Store)
		if pl != nil {
			sv.PublishTo(pl.Registry())
		}
		ln, err := net.Listen("tcp", serveAddr)
		if err != nil {
			fail(err)
		}
		srv := &http.Server{Handler: sv}
		go srv.Serve(ln)
		fmt.Printf("image serving tier on http://%s/ (viewer page, /db/info.json, /latest.json)\n\n", ln.Addr())
		stopServe = func() { srv.Close() }
		defer stopServe()
	}

	fmt.Printf("s3dpipe: grid %dx%dx%d, %d simulation ranks, %d DataSpaces shards, %d buckets, %d steps\n\n",
		t.Sim.NX, t.Sim.NY, t.Sim.NZ, t.Sim.PX*t.Sim.PY*t.Sim.PZ,
		b.Config.Fabric.DSServers, b.Config.TransitBuckets(), steps)
	var rep *core.Report
	var err error
	if resume {
		rep, err = p.Resume(steps)
	} else {
		rep, err = p.Run(steps)
	}
	if err != nil {
		fail(err)
	}
	// Hold covers the serving tier too: with serving and -hold the
	// database stays browsable after the run until SIGINT/SIGTERM.
	defer finishObs(pl, stop, obsDump, hold && (obsAddr != "" || serveAddr != ""))

	if rec := rep.Recovery; rec != nil {
		fmt.Printf("recovery: %d commits, %d checkpoints, %d journal fsyncs\n",
			rec.Commits, rec.Checkpoints, rec.JournalFsyncs)
		if resume {
			fmt.Printf("resumed from step %d (checkpoint %d): %d tasks replayed in %.3fs\n",
				rec.ResumedFrom, rec.CheckpointStep, rec.ReplayedTasks, rec.ResumeSeconds)
		}
		for _, w := range rep.Warnings {
			fmt.Println("warning:", w)
		}
		fmt.Println()
	}

	if tl != nil {
		fmt.Println(tl.Gantt(100))
		util := tl.Utilization()
		fmt.Print("lane utilization:")
		for _, lane := range tl.Lanes() {
			fmt.Printf(" %s=%.0f%%", lane, 100*util[lane])
		}
		fmt.Println()
		fmt.Println()
	}

	if b.Store != nil {
		info := b.Store.Info()
		fmt.Printf("image store: %d frames in %d blobs (%.2f MB) under %s; vars %v, cams %v, latest step %d\n\n",
			info.Frames, info.Blobs, float64(info.Bytes)/1e6, b.Config.Store.Dir, info.Vars, info.Cams, info.LatestStep)
	}

	total, perStep, n := rep.Metrics.SimTime()
	fmt.Printf("simulation: %d steps, %v total, %v per step\n\n", n, total.Round(1e6), perStep.Round(1e6))
	fmt.Println(rep.Metrics.TableII())
	fmt.Printf("network: %d transfers, %.3f MB moved, %v modeled busy\n",
		rep.Net.Transfers, float64(rep.Net.BytesMoved)/1e6, rep.Net.ModeledBusy.Round(1e3))

	for _, a := range b.Tenants[0].Analyses {
		if a.Name() != "hybrid topology" {
			continue
		}
		if tr, ok := rep.Result(a.Name(), lastDue(steps, a.Every())).(*core.TopologyResult); ok && tr != nil {
			fmt.Printf("topology (final step): %d tree nodes resident of %d streamed (peak %d), %d maxima",
				len(tr.Tree.Nodes), tr.Stream.Declared, tr.Stream.PeakLive, len(tr.Tree.Maxima()))
			if len(tr.Features) > 0 {
				fmt.Printf(", %d features above threshold", len(tr.Features))
			}
			fmt.Println()
		}
	}

	if imgOut != "" {
		if err := os.MkdirAll(imgOut, 0o755); err != nil {
			fail(err)
		}
		saved := map[string]bool{}
		for _, a := range b.Tenants[0].Analyses {
			var file string
			switch a.(type) {
			case *core.VizInSitu:
				file = "insitu.png"
			case *core.VizHybrid:
				file = "hybrid.png"
			default:
				continue
			}
			if saved[file] {
				continue
			}
			if img, ok := rep.Result(a.Name(), lastDue(steps, a.Every())).(*render.Image); ok {
				save(img, filepath.Join(imgOut, file))
				saved[file] = true
			}
		}
	}
}

// runMulti runs a multi-tenant config topology and prints the
// per-tenant fabric summary — the generic sibling of the -tenants
// scenario output, driven entirely by the config's tenant list.
func runMulti(b *registry.Built, steps int, obsAddr, obsDump string, hold bool) {
	s := b.Scheduler
	fmt.Printf("s3dpipe: multi-tenant fabric %q, %d tenants, %d buckets, %d steps\n\n",
		b.Config.Name, len(b.Tenants), b.Config.TransitBuckets(), steps)

	var pl *obs.Plane
	var stop func()
	if obsAddr != "" || obsDump != "" {
		pl = s.EnableObs()
		if obsAddr != "" {
			ln, err := net.Listen("tcp", obsAddr)
			if err != nil {
				fail(err)
			}
			names := make([]string, 0, len(b.Tenants))
			for _, t := range b.Tenants {
				names = append(names, t.Name)
			}
			srv := &http.Server{Handler: obs.Handler(pl, func() any {
				return map[string]any{
					"tenants":        names,
					"active_buckets": s.Staging().ActiveBuckets(),
				}
			})}
			go srv.Serve(ln)
			fmt.Printf("observability endpoint on http://%s/\n\n", ln.Addr())
			stop = func() { srv.Close() }
		}
	}

	reps, err := s.Run(steps)
	if err != nil {
		// Analysis-route failures (e.g. a drill route's deliberate
		// crashes) leave the per-tenant reports usable; surface the
		// error and summarize what ran.
		fmt.Printf("run finished with analysis errors: %v\n\n", err)
	}
	defer finishObs(pl, stop, obsDump, hold && obsAddr != "")

	for _, t := range b.Tenants {
		rep := reps[t.Name]
		if rep == nil {
			continue
		}
		o := rep.Overload
		r := rep.Resilience
		fmt.Printf("tenant %s:\n", t.Name)
		fmt.Printf("  worst step wall      %v\n", rep.Metrics.MaxStepWall().Round(1e3))
		fmt.Printf("  steps shaped/shed    %d/%d\n", o.StepsShaped, o.StepsShed)
		fmt.Printf("  in-situ fallbacks    %d\n", o.StepsFallback)
		fmt.Printf("  breaker opens        %d\n", o.BreakerOpens)
		fmt.Printf("  retries/dead letters %d/%d\n", r.Retries, r.DeadLetters)
		for _, ep := range s.TenantEndpoints(t.Name) {
			st := ep.Stats()
			fmt.Printf("  endpoint %-16s %d retries, %d crc failures, %.3f MB moved\n",
				ep.Name(), st.Retries, st.ChecksumFailures, float64(ep.TransferBytes())/1e6)
		}
	}

	fmt.Println("\nshared fabric:")
	q := s.Quarantine()
	fmt.Printf("  quarantine           %d opens, %d releases\n", q.Opens(), q.Releases())
	if a := s.Autoscaler(); a != nil {
		fmt.Printf("  bucket pool          %d grows, %d shrinks, %d active\n",
			a.Grows(), a.Shrinks(), s.Staging().ActiveBuckets())
	}
	out, avail, total := s.Credits().Snapshot()
	fmt.Printf("  credits              %d/%d available, %d outstanding\n", avail, total, out)

	fmt.Println("\nrecovery:")
	for _, t := range b.Tenants {
		rep := reps[t.Name]
		if rep == nil {
			continue
		}
		for _, route := range t.Routes {
			lastDegraded := 0
			for step := 1; step <= steps; step++ {
				if _, ok := rep.Result(route, step).(core.Degraded); ok {
					lastDegraded = step
				}
			}
			if lastDegraded == 0 {
				fmt.Printf("  %s/%-28s never degraded\n", t.Name, route)
			} else {
				fmt.Printf("  %s/%-28s full hybrid again from step %d/%d\n",
					t.Name, route, lastDegraded+1, steps)
			}
		}
	}
}

// runBrownout runs the fixed-seed slow-consumer brownout (the same
// configuration the TestBrownoutSoak acceptance soak uses) and prints
// the overload-control summary: what was shaped, shed, or run in-situ,
// how the breakers cycled, and when each route recovered full hybrid.
func runBrownout(obsAddr, obsDump string, hold bool) {
	fmt.Printf("s3dpipe: staging brownout, %d steps, slowdown x%d over decisions [%d,%d), seed %d\n\n",
		workload.BrownoutSteps, workload.BrownoutFactor, workload.BrownoutFrom, workload.BrownoutUntil, workload.BrownoutSeed)
	p, routes, err := workload.NewBrownoutPipeline(true)
	if err != nil {
		fail(err)
	}
	pl, stop := setupObs(p, obsAddr, obsDump)
	rep, err := p.Run(workload.BrownoutSteps)
	if err != nil {
		fail(err)
	}
	defer finishObs(pl, stop, obsDump, hold && obsAddr != "")

	o := rep.Overload
	fmt.Println("overload control:")
	fmt.Printf("  credits denied       %d\n", o.CreditsDenied)
	fmt.Printf("  steps shaped         %d\n", o.StepsShaped)
	fmt.Printf("  steps shed           %d\n", o.StepsShed)
	fmt.Printf("  in-situ fallbacks    %d\n", o.StepsFallback)
	fmt.Printf("  breaker opens        %d\n", o.BreakerOpens)
	fmt.Printf("  breaker transitions  %d\n", o.BreakerTransitions)
	r := rep.Resilience
	fmt.Println("resilience:")
	fmt.Printf("  faults injected      %d\n", r.Faults)
	fmt.Printf("  retries              %d\n", r.Retries)
	fmt.Printf("  requeues             %d\n", r.Requeues)
	fmt.Printf("  dead letters         %d\n", r.DeadLetters)
	fmt.Printf("  degraded steps       %d\n", r.DegradedSteps)

	fmt.Println("\nrecovery:")
	for _, name := range routes {
		lastDegraded := 0
		for step := 1; step <= workload.BrownoutSteps; step++ {
			if _, ok := rep.Result(name, step).(core.Degraded); ok {
				lastDegraded = step
			}
		}
		if lastDegraded == 0 {
			fmt.Printf("  %-28s never degraded\n", name)
		} else {
			fmt.Printf("  %-28s full hybrid again from step %d/%d\n",
				name, lastDegraded+1, workload.BrownoutSteps)
		}
	}
	for name, st := range p.BreakerStates() {
		fmt.Printf("  %-28s breaker %v\n", name, st)
	}
	c := p.Credits()
	fmt.Printf("  credits drained: %d/%d available, %d outstanding\n",
		c.Available(), c.Total(), c.Outstanding())
	fmt.Printf("  worst step wall: %v\n", rep.Metrics.MaxStepWall().Round(1e3))
}

// runTenants runs the fixed-seed multi-tenant noisy-neighbor scenario
// (the same configuration the TestNoisyNeighborSoak acceptance soak
// uses) and prints the per-tenant fabric summary: how each tenant's
// admission plane behaved, what the quarantine did to the poison
// route, how the autoscaler moved the shared bucket pool, and what
// transfer noise each tenant's endpoints generated.
func runTenants(obsAddr, obsDump string, hold bool) {
	fmt.Printf("s3dpipe: multi-tenant fabric, %d steps, tenants %v + %s (noisy), slowdown x%d over decisions [%d,%d), seed %d\n\n",
		workload.TenantSteps, workload.TenantVictims, workload.TenantNoisy,
		workload.TenantSlowFactor, workload.TenantSlowFrom, workload.TenantSlowUntil, workload.TenantSeed)
	s, routes, err := workload.NewTenantScheduler(true)
	if err != nil {
		fail(err)
	}
	var pl *obs.Plane
	var stop func()
	if obsAddr != "" || obsDump != "" {
		pl = s.EnableObs()
		if obsAddr != "" {
			ln, err := net.Listen("tcp", obsAddr)
			if err != nil {
				fail(err)
			}
			srv := &http.Server{Handler: obs.Handler(pl, func() any {
				return map[string]any{
					"tenants":        append(append([]string(nil), workload.TenantVictims...), workload.TenantNoisy),
					"active_buckets": s.Staging().ActiveBuckets(),
				}
			})}
			go srv.Serve(ln)
			fmt.Printf("observability endpoint on http://%s/\n\n", ln.Addr())
			stop = func() { srv.Close() }
		}
	}
	reps, err := s.Run(workload.TenantSteps)
	if err != nil {
		// The poison route's early handler crashes are the scenario
		// working as designed; anything else is fatal.
		if !strings.Contains(err.Error(), "poison: handler crash") {
			fail(err)
		}
		fmt.Printf("expected poison-route failures: %v\n\n", err)
	}
	defer finishObs(pl, stop, obsDump, hold && obsAddr != "")

	names := append(append([]string(nil), workload.TenantVictims...), workload.TenantNoisy)
	for _, name := range names {
		rep := reps[name]
		o := rep.Overload
		r := rep.Resilience
		fmt.Printf("tenant %s:\n", name)
		fmt.Printf("  worst step wall      %v\n", rep.Metrics.MaxStepWall().Round(1e3))
		fmt.Printf("  steps shaped/shed    %d/%d\n", o.StepsShaped, o.StepsShed)
		fmt.Printf("  in-situ fallbacks    %d\n", o.StepsFallback)
		fmt.Printf("  breaker opens        %d\n", o.BreakerOpens)
		fmt.Printf("  retries/dead letters %d/%d\n", r.Retries, r.DeadLetters)
		for _, ep := range s.TenantEndpoints(name) {
			st := ep.Stats()
			fmt.Printf("  endpoint %-16s %d retries, %d crc failures, %.3f MB moved\n",
				ep.Name(), st.Retries, st.ChecksumFailures, float64(ep.TransferBytes())/1e6)
		}
	}

	fmt.Println("\nshared fabric:")
	q := s.Quarantine()
	fmt.Printf("  quarantine           %d opens, %d releases, %s/%s now %v\n",
		q.Opens(), q.Releases(), workload.TenantNoisy, workload.PoisonRouteName,
		q.State(workload.TenantNoisy, workload.PoisonRouteName))
	if a := s.Autoscaler(); a != nil {
		fmt.Printf("  bucket pool          %d grows, %d shrinks, %d active\n",
			a.Grows(), a.Shrinks(), s.Staging().ActiveBuckets())
	}
	out, avail, total := s.Credits().Snapshot()
	fmt.Printf("  credits              %d/%d available, %d outstanding\n", avail, total, out)

	fmt.Println("\nrecovery:")
	for _, name := range workload.TenantVictims {
		rep := reps[name]
		for _, route := range routes {
			lastDegraded := 0
			for step := 1; step <= workload.TenantSteps; step++ {
				if _, ok := rep.Result(route, step).(core.Degraded); ok {
					lastDegraded = step
				}
			}
			if lastDegraded == 0 {
				fmt.Printf("  %s/%-28s never degraded\n", name, route)
			} else {
				fmt.Printf("  %s/%-28s full hybrid again from step %d/%d\n",
					name, route, lastDegraded+1, workload.TenantSteps)
			}
		}
	}
}

// setupObs enables the observability plane when -obs or -obs-dump was
// given and, for -obs, starts the live HTTP endpoint. It returns the
// plane (nil when observability is off) and a server stop function
// (nil when no endpoint was started).
func setupObs(p *core.Pipeline, addr, dump string) (*obs.Plane, func()) {
	if addr == "" && dump == "" {
		return nil, nil
	}
	pl := p.EnableObs()
	if addr == "" {
		return pl, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	srv := &http.Server{Handler: obs.Handler(pl, func() any { return p.Status() })}
	go srv.Serve(ln)
	fmt.Printf("observability endpoint on http://%s/\n\n", ln.Addr())
	return pl, func() { srv.Close() }
}

// finishObs writes the post-run export files, optionally holds the
// live endpoint open until SIGINT/SIGTERM, and shuts the server down.
func finishObs(pl *obs.Plane, stop func(), dump string, hold bool) {
	if pl != nil && dump != "" {
		dumpObs(dump, pl)
	}
	if hold {
		fmt.Println("holding observability endpoint open; SIGINT/SIGTERM to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
		<-ch
	}
	if stop != nil {
		stop()
	}
}

// dumpObs writes trace.json, events.jsonl, and metrics.prom under dir.
// Each export is rendered in memory and landed with an atomic
// temp-file+rename, so a crash mid-dump never leaves a torn artifact
// where a previous run's good one stood.
func dumpObs(dir string, pl *obs.Plane) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	write := func(name string, render func(io.Writer) error) {
		path := filepath.Join(dir, name)
		var buf bytes.Buffer
		if err := render(&buf); err != nil {
			fail(err)
		}
		if err := recovery.WriteFileAtomic(path, buf.Bytes(), 0o644); err != nil {
			fail(err)
		}
		fmt.Println("wrote", path)
	}
	write("trace.json", func(w io.Writer) error { return obs.WriteChromeTrace(w, pl.Recorder()) })
	write("events.jsonl", func(w io.Writer) error { return obs.WriteJSONL(w, pl.Recorder()) })
	write("metrics.prom", func(w io.Writer) error { return pl.Registry().WritePrometheus(w) })
}

// lastDue returns the last step at which a cadence-every analysis ran.
func lastDue(steps, every int) int {
	if every < 1 {
		every = 1
	}
	return steps - steps%every
}

func save(img *render.Image, path string) {
	if err := img.SavePNG(path); err != nil {
		fail(err)
	}
	fmt.Println("wrote", path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "s3dpipe:", err)
	os.Exit(1)
}
