// Command servecheck is the CI gate for the Cinema-style image store
// and its HTTP serving tier. It runs the whole stack in-process:
//
//  1. serve an empty store and start background latest.json pollers —
//     live viewers attach before the run's first frame lands,
//  2. run a short pipeline (both viz modes, two orbit cameras) with
//     the store attached, asserting zero pooled-framebuffer leaks,
//  3. run the identical pipeline into a second store and assert every
//     spec maps to the same content digest — frame addresses are
//     stable across re-encodes and re-runs,
//  4. fetch every spec cell over HTTP (status, PNG magic, ETag =
//     store digest), revalidate it (304, zero body), and check the
//     immutable policy on the digest route,
//  5. drive a large deterministic viewer fleet and gate on zero
//     errors, conditional-GET traffic, and a generous p99 bound.
//
// It exits non-zero on the first violation. Usage: servecheck
package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"insitu/internal/core"
	"insitu/internal/grid"
	"insitu/internal/imagestore"
	"insitu/internal/netsim"
	"insitu/internal/render"
	"insitu/internal/serve"
	"insitu/internal/sim"
	"insitu/internal/workload"
)

const (
	steps   = 4
	cams    = 2
	viewers = 250
	reqs    = 40
	p99Max  = 2 * time.Second // generous: the gate runs on loaded CI machines
)

func main() {
	dir1, err := os.MkdirTemp("", "servecheck1-*")
	if err != nil {
		fatal("servecheck: %v", err)
	}
	defer os.RemoveAll(dir1)
	dir2, err := os.MkdirTemp("", "servecheck2-*")
	if err != nil {
		fatal("servecheck: %v", err)
	}
	defer os.RemoveAll(dir2)

	// 1. The serving tier is up, with live pollers, before any frame
	// exists: a run must be watchable from step one.
	st1, err := imagestore.Open(dir1)
	if err != nil {
		fatal("servecheck: open store: %v", err)
	}
	sv := serve.New(st1)
	ts := httptest.NewServer(sv)
	defer ts.Close()
	stopLive := make(chan struct{})
	var live sync.WaitGroup
	sawLatest := false
	live.Add(1)
	go func() {
		defer live.Done()
		for {
			select {
			case <-stopLive:
				return
			case <-time.After(5 * time.Millisecond):
				resp, err := http.Get(ts.URL + "/latest.json")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == 200 {
						sawLatest = true
					}
				}
			}
		}
	}()

	// 2. The run, with the pool ledger bracketing it.
	before := render.ImagesOutstanding()
	runPipeline(st1)
	if after := render.ImagesOutstanding(); after != before {
		fatal("servecheck: frame leak: %d pooled images outstanding after the run (was %d)", after, before)
	}
	close(stopLive)
	live.Wait()
	if !sawLatest {
		fatal("servecheck: live pollers never saw latest.json answer 200 during the run")
	}
	fmt.Println("servecheck: run complete, zero pooled-framebuffer leaks, live polling worked")

	// 3. Determinism: the identical run must produce identical digests
	// for every spec cell.
	st2, err := imagestore.Open(dir2)
	if err != nil {
		fatal("servecheck: open second store: %v", err)
	}
	runPipeline(st2)
	info1, info2 := st1.Info(), st2.Info()
	if len(info1.Specs) == 0 || len(info1.Specs) != len(info2.Specs) {
		fatal("servecheck: spec sets differ across re-runs: %d vs %d", len(info1.Specs), len(info2.Specs))
	}
	wantSpecs := 2 * steps * cams // two viz vars x steps x cameras
	if len(info1.Specs) != wantSpecs {
		fatal("servecheck: %d spec cells, want %d", len(info1.Specs), wantSpecs)
	}
	for _, key := range info1.Specs {
		sp, err := imagestore.ParseSpec(key)
		if err != nil {
			fatal("servecheck: %v", err)
		}
		d1, ok1 := st1.Digest(sp)
		d2, ok2 := st2.Digest(sp)
		if !ok1 || !ok2 || d1 != d2 {
			fatal("servecheck: digest for %s not stable across re-runs: %q vs %q", key, d1, d2)
		}
	}
	st2.Close()
	fmt.Printf("servecheck: %d spec cells, digests identical across an independent re-run\n", len(info1.Specs))

	// 4. Every cell is fetchable over HTTP with correct cache semantics.
	for _, key := range info1.Specs {
		sp, _ := imagestore.ParseSpec(key)
		digest, _ := st1.Digest(sp)
		url := ts.URL + "/db/" + key
		resp, body := get(url, "")
		if resp.StatusCode != 200 {
			fatal("servecheck: %s: status %d", key, resp.StatusCode)
		}
		if !bytes.HasPrefix(body, []byte{0x89, 'P', 'N', 'G'}) {
			fatal("servecheck: %s: body is not a PNG", key)
		}
		etag := resp.Header.Get("ETag")
		if etag != `"`+digest+`"` {
			fatal("servecheck: %s: ETag %s does not match store digest %s", key, etag, digest)
		}
		if resp2, body2 := get(url, etag); resp2.StatusCode != 304 || len(body2) != 0 {
			fatal("servecheck: %s: revalidation gave %d with %d body bytes, want bare 304", key, resp2.StatusCode, len(body2))
		}
		imm, body3 := get(ts.URL+"/img/"+digest, `"`+digest+`"`)
		if imm.StatusCode != 304 || len(body3) != 0 {
			fatal("servecheck: /img/%s: immutable revalidation gave %d with %d bytes", digest[:12], imm.StatusCode, len(body3))
		}
	}
	fmt.Println("servecheck: every spec cell fetchable; conditional and immutable GET semantics hold")

	// 5. The viewer fleet.
	t0 := time.Now()
	stats, err := workload.RunViewers(ts.URL, workload.ViewerConfig{
		Viewers: viewers, Requests: reqs, Seed: 20120101, HotFrac: 0.5,
	})
	if err != nil {
		fatal("servecheck: viewer fleet: %v", err)
	}
	fmt.Printf("servecheck: %d viewers x %d requests in %v: %s\n",
		viewers, reqs, time.Since(t0).Round(time.Millisecond), stats)
	if stats.Errors != 0 {
		fatal("servecheck: %d viewer errors under load", stats.Errors)
	}
	if stats.NotModified == 0 {
		fatal("servecheck: fleet produced no 304s; conditional polling is broken")
	}
	if stats.P99 > p99Max {
		fatal("servecheck: p99 %v exceeds the %v bound", stats.P99, p99Max)
	}
	ss := sv.Stats()
	if ss.Errors != 0 {
		fatal("servecheck: serving tier counted %d error responses", ss.Errors)
	}
	st1.Close()
	fmt.Println("servecheck: OK")
}

// runPipeline executes the gate's fixed pipeline into the given store:
// both visualization modes, two orbit cameras, fixed seed.
func runPipeline(st *imagestore.Store) {
	simCfg := sim.DefaultConfig(grid.NewBox(16, 8, 8), 2, 1, 1)
	simCfg.Seed = 7
	cfg := core.Config{Sim: simCfg, DSServers: 2, Buckets: 2, Net: netsim.Gemini(), Store: st}
	p, err := core.NewPipeline(cfg)
	if err != nil {
		fatal("servecheck: %v", err)
	}
	vizIS := core.NewVizInSitu(48, 32)
	vizIS.Cameras = cams
	vizHy := core.NewVizHybrid(48, 32, 2)
	vizHy.Cameras = cams
	p.Register(vizIS)
	p.Register(vizHy)
	if _, err := p.Run(steps); err != nil {
		fatal("servecheck: pipeline run: %v", err)
	}
}

func get(url, etag string) (*http.Response, []byte) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		fatal("servecheck: %v", err)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal("servecheck: get %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fatal("servecheck: read %s: %v", url, err)
	}
	return resp, body
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
