// Package insitu is a Go reproduction of "Combining In-situ and
// In-transit Processing to Enable Extreme-Scale Scientific Analysis"
// (Bennett et al., SC 2012): a hybrid concurrent-analysis framework in
// which analysis algorithms split into a massively parallel in-situ
// stage on the simulation's compute ranks and a small-scale or serial
// in-transit stage on staging buckets, connected by an asynchronous
// RDMA-style transport (DART) and a pull-based FCFS task scheduler
// (DataSpaces), with successive timesteps temporally multiplexed
// across buckets.
//
// See README.md for the architecture overview, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for
// the paper-vs-measured comparison. The root package holds the
// benchmark harness (bench_test.go) that regenerates every table and
// figure of the paper's evaluation.
package insitu
