// Ignition-kernel tracking: the paper's Fig. 1 scenario.
//
// Ignition kernels in a lifted flame live ~10 simulation steps.
// Conventional post-processing saves every ~400th step, so these
// events vanish between outputs. This example runs the proxy flame,
// analyzes the OH field (the ignition marker) at every step via
// merge-tree segmentation, and contrasts feature tracking at cadence 1
// (every step, enabled by the hybrid framework) with cadence 40 (a
// scaled-down stand-in for conventional I/O cadences).
//
//	go run ./examples/ignition-tracking
package main

import (
	"fmt"
	"log"

	"insitu/internal/core"
	"insitu/internal/grid"
	"insitu/internal/netsim"
	"insitu/internal/sim"
	"insitu/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig(grid.NewBox(48, 24, 12), 2, 2, 1)
	cfg.KernelRate = 0.7 // a few events per lifetime window
	cfg.Seed = 7

	const steps = 80
	const ohThreshold = 0.1

	fmt.Printf("running %d steps of the lifted-flame proxy (kernel lifetime %d steps)...\n\n",
		steps, cfg.KernelLifetime)
	res, err := workload.RunFig1(cfg, steps, ohThreshold, []int{1, 5, 10, 40})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Format())

	r1 := res.Rows[0]
	r40 := res.Rows[len(res.Rows)-1]
	fmt.Println("interpretation:")
	fmt.Printf("  at cadence 1 the analysis saw %d of %d ignition events and tracked a feature\n",
		r1.KernelsCaptured, r1.KernelsTotal)
	fmt.Printf("  across %d consecutive outputs via voxel overlap;\n", r1.LongestChain)
	fmt.Printf("  at cadence 40 only %d of %d events were observed at all, and consecutive\n",
		r40.KernelsCaptured, r40.KernelsTotal)
	fmt.Printf("  outputs share %.2f overlap matches on average — the connectivity\n", r40.MeanMatches)
	fmt.Println("  indicators of Fig. 1 are lost, exactly as the paper describes.")

	// Part 2: the same tracking running live through the hybrid
	// pipeline (core.TrackingHybrid): in-situ local overlaps, in-transit
	// global resolution, steps joined afterwards.
	fmt.Println("\nlive pipeline tracking (hybrid feature tracking analysis):")
	p, err := core.NewPipeline(core.Config{Sim: cfg, DSServers: 2, Buckets: 2, Net: netsim.Gemini()})
	if err != nil {
		log.Fatal(err)
	}
	track := &core.TrackingHybrid{Threshold: ohThreshold}
	p.Register(track)
	const liveSteps = 25
	rep, err := p.Run(liveSteps)
	if err != nil {
		log.Fatal(err)
	}
	for s := 2; s <= liveSteps; s += 6 {
		prev := rep.Result(track.Name(), s-1).(*core.TrackingStepResult)
		cur := rep.Result(track.Name(), s).(*core.TrackingStepResult)
		matches, err := core.JoinTracking(prev, cur)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  step %2d -> %2d: %d features, %d overlap matches\n",
			s-1, s, len(cur.Features), len(matches))
	}
}
