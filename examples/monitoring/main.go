// Monitoring: the concurrent-analysis advantages the paper's §V lists
// — "computational steering, on-the-fly visualization, and feature
// tracking" — combined into a live run monitor.
//
// Every step, the pipeline derives global statistics in-transit,
// assesses the temperature field for σ-outliers (candidate ignition
// kernels), tracks OH features across steps, and renders an
// auto-ranged frame whose transfer function steers itself to the
// evolving data. The console output is what a scientist would watch
// while the simulation runs.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"

	"insitu/internal/core"
	"insitu/internal/grid"
	"insitu/internal/netsim"
	"insitu/internal/render"
	"insitu/internal/sim"
	"insitu/internal/stats"
)

func main() {
	simCfg := sim.DefaultConfig(grid.NewBox(40, 24, 12), 2, 2, 1)
	simCfg.KernelRate = 0.9
	p, err := core.NewPipeline(core.Config{
		Sim: simCfg, DSServers: 2, Buckets: 3, Net: netsim.Gemini(),
	})
	if err != nil {
		log.Fatal(err)
	}

	statsH := &core.StatsHybrid{Vars: []string{"T", "Y_OH"}}
	assess := &core.AssessTestInSitu{Sigma: 3}
	track := &core.TrackingHybrid{Threshold: 0.05}
	viz := core.NewVizHybrid(240, 160, 2)
	viz.AutoRange = true
	tl := p.EnableTrace()

	p.Register(statsH)
	p.Register(assess)
	p.Register(track)
	p.Register(viz)

	const steps = 20
	fmt.Printf("monitoring %d steps of the lifted-flame proxy...\n\n", steps)
	rep, err := p.Run(steps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%5s %10s %10s %10s %10s %10s\n",
		"step", "T max", "T mean", "outliers", "features", "tracked")
	var prevTrack *core.TrackingStepResult
	for s := 1; s <= steps; s++ {
		derived := rep.Result(statsH.Name(), s).(map[string]stats.Derived)
		at := rep.Result(assess.Name(), s).(*core.AssessTestResult)
		tr := rep.Result(track.Name(), s).(*core.TrackingStepResult)
		tracked := 0
		if prevTrack != nil {
			if ms, err := core.JoinTracking(prevTrack, tr); err == nil {
				tracked = len(ms)
			}
		}
		prevTrack = tr
		fmt.Printf("%5d %10.3f %10.3f %10d %10d %10d\n",
			s, derived["T"].Max, derived["T"].Mean, at.Extremes, len(tr.Features), tracked)
	}

	// The final auto-ranged frame.
	if img, ok := rep.Result(viz.Name(), steps).(*render.Image); ok {
		if err := img.SavePNG("monitor-final.png"); err == nil {
			fmt.Println("\nwrote monitor-final.png (auto-ranged transfer function)")
		}
	}

	// Feature lineage over the whole run: kernel inception,
	// dissipation, merges and splits.
	if g, err := core.BuildTrackGraph(rep, track, steps); err == nil {
		fmt.Printf("\nfeature lineage: %s\n", g.Summarize(true).Format())
	}

	// The run's execution timeline: simulation vs staging buckets.
	fmt.Println()
	fmt.Println(tl.Gantt(90))
}
