// Quickstart: the smallest complete use of the hybrid framework.
//
// It runs the S3D proxy on 8 ranks for 5 steps with two analyses
// attached — hybrid descriptive statistics (learn in-situ, derive
// in-transit) and hybrid merge-tree topology — then prints the derived
// temperature statistics, the extracted features, and the Table II
// style cost breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"insitu/internal/core"
	"insitu/internal/grid"
	"insitu/internal/netsim"
	"insitu/internal/sim"
	"insitu/internal/stats"
)

func main() {
	// 1. Describe the simulation: a 32x24x12 lifted-jet proxy
	//    decomposed over 2x2x2 = 8 ranks.
	simCfg := sim.DefaultConfig(grid.NewBox(32, 24, 12), 2, 2, 2)

	// 2. Build the pipeline: DataSpaces shards + staging buckets form
	//    the secondary resource.
	p, err := core.NewPipeline(core.Config{
		Sim:       simCfg,
		DSServers: 2,
		Buckets:   2,
		Net:       netsim.Gemini(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Register analyses. Hybrid analyses split into an in-situ
	//    stage (per rank, data-parallel) and an in-transit stage
	//    (serial, on a staging bucket).
	p.Register(&core.StatsHybrid{})
	topo := core.NewTopologyHybrid()
	topo.SimplifyEps = 0.05      // prune low-persistence noise
	topo.FeatureThreshold = 1.05 // extract hot features
	p.Register(topo)

	// 4. Run. The call returns when the simulation is done and every
	//    in-transit task has drained.
	const steps = 5
	rep, err := p.Run(steps)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Consume results.
	derived := rep.Result("hybrid descriptive statistics", steps).(map[string]stats.Derived)
	t := derived["T"]
	fmt.Printf("temperature after %d steps: n=%d range=[%.3f, %.3f] mean=%.3f stddev=%.3f\n",
		steps, t.N, t.Min, t.Max, t.Mean, t.StdDev)

	tr := rep.Result("hybrid topology", steps).(*core.TopologyResult)
	fmt.Printf("merge tree: %d maxima after simplification, %d features above %.2f\n",
		len(tr.Tree.Maxima()), len(tr.Features), topo.FeatureThreshold)
	fmt.Printf("streaming aggregation: %d vertices streamed, peak resident %d\n\n",
		tr.Stream.Declared, tr.Stream.PeakLive)

	fmt.Println(rep.Metrics.TableII())
}
