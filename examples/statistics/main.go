// Statistics: the four-stage Learn / Derive / Assess / Test pattern of
// the paper's Fig. 4, in both deployment modes.
//
// Learn is the only stage that communicates. The fully in-situ variant
// allreduces partial models so every rank holds the consistent global
// model; the hybrid variant ships each rank's partial model (a few
// hundred bytes) to a serial in-transit stage that aggregates and
// derives. Assess and test then run against the derived model: here we
// standardize the temperature field, flag extreme values, and run the
// Jarque–Bera normality test.
//
//	go run ./examples/statistics
package main

import (
	"fmt"
	"log"
	"sync"

	"insitu/internal/grid"
	"insitu/internal/sim"
	"insitu/internal/stats"
)

func main() {
	cfg := sim.DefaultConfig(grid.NewBox(40, 28, 12), 2, 2, 1)
	cfg.KernelRate = 1.0
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const steps = 15
	var mu sync.Mutex
	var partials [][]byte           // hybrid path: marshalled per-rank models
	var insituModels []*stats.Model // in-situ path: one consistent model per rank
	var localData = map[int][]float64{}

	err = sim.RunAll(s, func(rk *sim.Rank) error {
		rk.RunSteps(steps)

		// LEARN (in-situ, per rank, no communication yet).
		local := stats.NewModel()
		for _, v := range []string{"T", "Y_H2", "Y_OH"} {
			local.LearnField(rk.Field(v))
		}

		// Fully in-situ deployment: allreduce to a consistent global
		// model on every rank; derive locally.
		global := stats.ParallelLearn(rk.Comm(), local)

		// Hybrid deployment: ship the partial model instead.
		mu.Lock()
		insituModels = append(insituModels, global)
		partials = append(partials, local.Marshal())
		localData[rk.Comm().ID()] = rk.Field("T").Data
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// DERIVE in-transit (hybrid): a single serial aggregation.
	hybridModel, err := stats.AggregateSerial(partials)
	if err != nil {
		log.Fatal(err)
	}
	hybrid := stats.Derive(hybridModel.Var("T"))
	insitu := stats.Derive(insituModels[0].Var("T"))

	fmt.Println("derived temperature statistics (both deployments must agree):")
	fmt.Printf("  %-8s %12s %12s %12s %12s %12s\n", "", "n", "mean", "stddev", "skewness", "kurtosis")
	fmt.Printf("  %-8s %12d %12.5f %12.5f %12.5f %12.5f\n",
		"in-situ", insitu.N, insitu.Mean, insitu.StdDev, insitu.Skewness, insitu.Kurtosis)
	fmt.Printf("  %-8s %12d %12.5f %12.5f %12.5f %12.5f\n\n",
		"hybrid", hybrid.N, hybrid.Mean, hybrid.StdDev, hybrid.Skewness, hybrid.Kurtosis)

	hybridBytes := 0
	for _, p := range partials {
		hybridBytes += len(p)
	}
	raw := hybrid.N * 8 * 3
	fmt.Printf("hybrid learn moved %d bytes; the raw data is %d bytes (%.0fx reduction)\n\n",
		hybridBytes, raw, float64(raw)/float64(hybridBytes))

	// ASSESS: standardize rank 0's block against the global model and
	// flag observations beyond 3 sigma (candidate ignition kernels).
	assessed := stats.Assess(localData[0], hybrid, 3)
	extremes := 0
	for _, a := range assessed {
		if a.Extreme {
			extremes++
		}
	}
	fmt.Printf("assess: %d of %d rank-0 temperatures beyond 3 sigma of the global model\n",
		extremes, len(assessed))

	// TEST: Jarque–Bera normality.
	jb := stats.JarqueBera(hybrid)
	verdict := "not rejected"
	if jb.Reject {
		verdict = "rejected"
	}
	fmt.Printf("test:   Jarque–Bera statistic %.1f -> normality %s (flame temperatures are\n", jb.Statistic, verdict)
	fmt.Println("        bimodal fuel/coflow mixtures, so rejection is the expected physics)")
}
