// Volume rendering: the paper's Fig. 2 comparison.
//
// Two visualization algorithms render the temperature field of the
// same simulation state:
//
//  1. fully in-situ — every rank ray-casts its full-resolution block
//     and partial images composite in visibility order (highest
//     quality, runs on the simulation's cores);
//  2. hybrid — every rank down-samples its block in-situ (at every
//     8th point, as in the paper), and a single serial in-transit
//     stage assembles the block lookup table and renders.
//
// The example writes both images (plus a 2x hybrid for comparison) and
// reports the pixel difference and payload reduction.
//
//	go run ./examples/volume-rendering
package main

import (
	"fmt"
	"log"
	"sync"

	"insitu/internal/grid"
	"insitu/internal/render"
	"insitu/internal/sim"
)

func main() {
	g := grid.NewBox(96, 64, 32)
	cfg := sim.DefaultConfig(g, 4, 2, 2)
	cfg.KernelRate = 1.0
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Advance the flame and keep each rank's ghosted temperature
	// block (what the in-situ renderer reads) plus the stitched
	// global field (the post-processing reference).
	const steps = 25
	dc := s.Decomp()
	ghosted := make([]*grid.Field, s.Ranks())
	global := grid.NewField("T", g)
	var mu sync.Mutex
	err = sim.RunAll(s, func(rk *sim.Rank) error {
		rk.RunSteps(steps)
		f := rk.GhostedField("T").Clone()
		own := rk.Field("T")
		mu.Lock()
		ghosted[rk.Comm().ID()] = f
		global.Paste(own)
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	tf := render.HotMetal(0.3, 2.2)
	dir := [3]float64{0.45, 0.3, 1}
	r, err := render.NewRenderer(640, 480, tf, dir, [3]float64{0, 1, 0}, 0.4, g)
	if err != nil {
		log.Fatal(err)
	}

	// (1) Fully in-situ: per-block renders + ordered compositing.
	insitu, err := r.RenderInSitu(dc, ghosted)
	if err != nil {
		log.Fatal(err)
	}
	must(insitu.SavePNG("insitu-full.png"))
	fmt.Println("wrote insitu-full.png (full-resolution in-situ render)")

	// (2) Hybrid at 8x (the paper's factor) and 2x.
	for _, factor := range []int{8, 2} {
		bt := render.NewBlockTable()
		var payload int
		for rank := 0; rank < dc.Ranks(); rank++ {
			p, n := render.DownsampleForTransit(ghosted[rank], dc.Block(rank), factor)
			payload += n
			if err := bt.AddMarshalled(p); err != nil {
				log.Fatal(err)
			}
		}
		hr, err := render.NewRenderer(640, 480, tf, dir, [3]float64{0, 1, 0},
			r.Step/float64(factor), bt.Bounds())
		if err != nil {
			log.Fatal(err)
		}
		img, err := hr.RenderTable(bt)
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("hybrid-%dx.png", factor)
		must(img.SavePNG(name))
		diff, _ := render.MeanAbsDiff(insitu, img)
		raw := global.Bytes()
		fmt.Printf("wrote %s: moved %.3f MB of %.3f MB raw (%.0fx reduction), mean pixel diff %.4f\n",
			name, float64(payload)/1e6, float64(raw)/1e6, float64(raw)/float64(payload), diff)
	}

	fmt.Println("\nas in Fig. 2: the down-sampled hybrid images preserve the flame's")
	fmt.Println("structure for monitoring, at a small fraction of the data movement.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
