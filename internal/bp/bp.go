// Package bp implements a BP-lite checkpoint format: single-file-per-
// process binary output like the ADIOS/BP configuration the paper's
// Table I measures ("data read/write is done on a single-file-per-
// process basis, which achieves near peak I/O bandwidths"). Files hold
// a magic header, a variable count, and the concatenated field
// payloads, with a variable index in the footer for selective reads.
//
// The package also carries the Lustre I/O model used to regenerate
// Table I's read/write rows: aggregate bandwidth is capped by the
// filesystem's object storage targets, so the modeled time depends on
// total volume, not on the number of writers.
package bp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"insitu/internal/bufpool"
	"insitu/internal/grid"
	"insitu/internal/recovery"
)

// magic identifies BP-lite files.
var magic = [4]byte{'B', 'P', 'L', 'T'}

// Format versions. Version 2 adds a CRC32 of each variable's payload
// to its index entry, verified on every read; version 1 files (no
// per-record CRC) are still readable.
const (
	version1 = 1
	version  = 2
)

// ErrCorruptCheckpoint is returned when a variable's payload fails its
// recorded CRC32 — the on-disk analogue of the transport's in-flight
// CRC framing. Structural damage (torn index, bad magic) also wraps
// it, so callers can treat any bit-flipped checkpoint uniformly.
var ErrCorruptCheckpoint = errors.New("bp: corrupt checkpoint")

// WriteFile writes the fields to path and returns the byte count. The
// whole file is packed into one pool-recycled buffer sized exactly up
// front — each field marshals straight into its final position with no
// intermediate per-field allocations — so repeated checkpoints reuse
// one buffer instead of regrowing a bytes.Buffer every step. The file
// lands via atomic temp-file+rename: a crash mid-checkpoint leaves the
// previous file (or nothing), never a truncated one.
func WriteFile(path string, fields []*grid.Field) (int64, error) {
	total := 12 // magic + version + nvars
	for _, f := range fields {
		total += f.MarshalSize()      // payload
		total += 4 + len(f.Name) + 20 // index entry (incl. CRC32)
	}
	total += 8 + 4 // footer offset + trailing magic
	buf := bufpool.Get(total)[:0]
	defer bufpool.Put(buf)
	buf = append(buf, magic[:]...)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], version)
	buf = append(buf, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(fields)))
	buf = append(buf, b4[:]...)
	// Payloads, recording offsets and payload CRCs for the footer
	// index.
	type entry struct {
		name   string
		offset uint64
		length uint64
		sum    uint32
	}
	index := make([]entry, 0, len(fields))
	for _, f := range fields {
		off := len(buf)
		buf = f.AppendMarshal(buf)
		index = append(index, entry{
			name:   f.Name,
			offset: uint64(off),
			length: uint64(len(buf) - off),
			sum:    crc32.ChecksumIEEE(buf[off:]),
		})
	}
	// Footer: per-variable (nameLen, name, offset, length, crc32),
	// then the footer offset and magic again for validity checking.
	footerOff := uint64(len(buf))
	var b8 [8]byte
	for _, e := range index {
		binary.LittleEndian.PutUint32(b4[:], uint32(len(e.name)))
		buf = append(buf, b4[:]...)
		buf = append(buf, e.name...)
		binary.LittleEndian.PutUint64(b8[:], e.offset)
		buf = append(buf, b8[:]...)
		binary.LittleEndian.PutUint64(b8[:], e.length)
		buf = append(buf, b8[:]...)
		binary.LittleEndian.PutUint32(b4[:], e.sum)
		buf = append(buf, b4[:]...)
	}
	binary.LittleEndian.PutUint64(b8[:], footerOff)
	buf = append(buf, b8[:]...)
	buf = append(buf, magic[:]...)
	if err := recovery.WriteFileAtomic(path, buf, 0o644); err != nil {
		return 0, fmt.Errorf("bp: write %s: %w", path, err)
	}
	return int64(len(buf)), nil
}

// idxEntry locates one variable's payload; sum is its CRC32 (version 2
// files only, hasSum false for version 1).
type idxEntry struct {
	off, length uint64
	sum         uint32
	hasSum      bool
}

// readIndex parses the footer and returns name -> payload location.
func readIndex(data []byte) (map[string]idxEntry, []string, error) {
	if len(data) < 12+12 || !bytes.Equal(data[:4], magic[:]) {
		return nil, nil, fmt.Errorf("%w: not a BP-lite file", ErrCorruptCheckpoint)
	}
	if !bytes.Equal(data[len(data)-4:], magic[:]) {
		return nil, nil, fmt.Errorf("%w: truncated file (footer magic missing)", ErrCorruptCheckpoint)
	}
	v := binary.LittleEndian.Uint32(data[4:8])
	if v != version1 && v != version {
		return nil, nil, fmt.Errorf("bp: unsupported version %d", v)
	}
	entrySize := 16
	if v == version {
		entrySize = 20
	}
	nvars := int(binary.LittleEndian.Uint32(data[8:12]))
	footerOff := binary.LittleEndian.Uint64(data[len(data)-12 : len(data)-4])
	if footerOff > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: bad footer offset", ErrCorruptCheckpoint)
	}
	idx := make(map[string]idxEntry, nvars)
	var order []string
	p := data[footerOff : len(data)-12]
	for vi := 0; vi < nvars; vi++ {
		if len(p) < 4 {
			return nil, nil, fmt.Errorf("%w: truncated index entry %d", ErrCorruptCheckpoint, vi)
		}
		nameLen := int(binary.LittleEndian.Uint32(p[:4]))
		p = p[4:]
		if len(p) < nameLen+entrySize {
			return nil, nil, fmt.Errorf("%w: truncated index entry %d", ErrCorruptCheckpoint, vi)
		}
		name := string(p[:nameLen])
		p = p[nameLen:]
		e := idxEntry{
			off:    binary.LittleEndian.Uint64(p[:8]),
			length: binary.LittleEndian.Uint64(p[8:16]),
		}
		if v == version {
			e.sum = binary.LittleEndian.Uint32(p[16:20])
			e.hasSum = true
		}
		p = p[entrySize:]
		if e.off+e.length > uint64(len(data)) {
			return nil, nil, fmt.Errorf("%w: variable %q extends past end of file", ErrCorruptCheckpoint, name)
		}
		idx[name] = e
		order = append(order, name)
	}
	return idx, order, nil
}

// payload returns a variable's verified byte range: version 2 entries
// are checked against their recorded CRC32 first.
func payload(data []byte, name string, e idxEntry) ([]byte, error) {
	b := data[e.off : e.off+e.length]
	if e.hasSum && crc32.ChecksumIEEE(b) != e.sum {
		return nil, fmt.Errorf("%w: variable %q CRC mismatch", ErrCorruptCheckpoint, name)
	}
	return b, nil
}

// ReadFile loads every field from a BP-lite file, verifying each
// variable's CRC32.
func ReadFile(path string) ([]*grid.Field, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bp: read %s: %w", path, err)
	}
	idx, order, err := readIndex(data)
	if err != nil {
		return nil, fmt.Errorf("bp: %s: %w", path, err)
	}
	var out []*grid.Field
	for _, name := range order {
		b, err := payload(data, name, idx[name])
		if err != nil {
			return nil, fmt.Errorf("bp: %s: %w", path, err)
		}
		f, err := grid.UnmarshalField(b)
		if err != nil {
			return nil, fmt.Errorf("bp: %s variable %q: %w", path, name, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// ReadVar loads a single variable by name, touching only its byte
// range after the index — the selective-read capability BP provides —
// and verifying that range's CRC32.
func ReadVar(path, name string) (*grid.Field, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bp: read %s: %w", path, err)
	}
	idx, _, err := readIndex(data)
	if err != nil {
		return nil, fmt.Errorf("bp: %s: %w", path, err)
	}
	e, ok := idx[name]
	if !ok {
		return nil, fmt.Errorf("bp: %s: variable %q not found", path, name)
	}
	b, err := payload(data, name, e)
	if err != nil {
		return nil, fmt.Errorf("bp: %s: %w", path, err)
	}
	return grid.UnmarshalField(b)
}

// IOModel models a parallel filesystem whose aggregate bandwidth is
// capped by its object storage targets (Lustre OSTs in the paper).
type IOModel struct {
	ReadBandwidth  float64 // aggregate bytes/s
	WriteBandwidth float64 // aggregate bytes/s
	PerFileLatency time.Duration
	// Files opened concurrently; per-file latency amortizes across
	// this many simultaneous opens.
	ParallelFiles int
}

// JaguarLustre returns the model calibrated to the paper's Table I:
// 98.5 GB read in 6.56 s (~15 GB/s) and written in 3.28 s (~30 GB/s),
// independent of core count because the OSTs are the bottleneck.
func JaguarLustre() IOModel {
	return IOModel{
		ReadBandwidth:  15.0e9,
		WriteBandwidth: 30.0e9,
		PerFileLatency: 2 * time.Millisecond,
		ParallelFiles:  512,
	}
}

// ReadTime returns the modeled wall time to read totalBytes spread
// over nfiles files.
func (m IOModel) ReadTime(totalBytes int64, nfiles int) time.Duration {
	return m.ioTime(totalBytes, nfiles, m.ReadBandwidth)
}

// WriteTime returns the modeled wall time to write totalBytes spread
// over nfiles files.
func (m IOModel) WriteTime(totalBytes int64, nfiles int) time.Duration {
	return m.ioTime(totalBytes, nfiles, m.WriteBandwidth)
}

func (m IOModel) ioTime(totalBytes int64, nfiles int, bw float64) time.Duration {
	if bw <= 0 {
		return 0
	}
	d := time.Duration(float64(totalBytes) / bw * float64(time.Second))
	pf := m.ParallelFiles
	if pf < 1 {
		pf = 1
	}
	waves := (nfiles + pf - 1) / pf
	return d + time.Duration(waves)*m.PerFileLatency
}
