package bp

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"insitu/internal/grid"
)

func sampleFields(rng *rand.Rand) []*grid.Field {
	b := grid.Box{Lo: [3]int{2, 0, 1}, Hi: [3]int{8, 5, 4}}
	names := []string{"T", "Y_H2", "Y_OH"}
	var out []*grid.Field
	for _, n := range names {
		f := grid.NewField(n, b)
		for i := range f.Data {
			f.Data[i] = rng.NormFloat64()
		}
		out = append(out, f)
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rank0.bp")
	fields := sampleFields(rand.New(rand.NewSource(2)))
	n, err := WriteFile(path, fields)
	if err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(path); fi.Size() != n {
		t.Fatalf("reported %d bytes, file has %d", n, fi.Size())
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fields) {
		t.Fatalf("want %d fields, got %d", len(fields), len(got))
	}
	for i, f := range fields {
		g := got[i]
		if g.Name != f.Name || g.Box != f.Box {
			t.Fatalf("field %d header mismatch", i)
		}
		for j := range f.Data {
			if g.Data[j] != f.Data[j] {
				t.Fatalf("field %s data mismatch at %d", f.Name, j)
			}
		}
	}
}

func TestReadVar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rank0.bp")
	fields := sampleFields(rand.New(rand.NewSource(3)))
	if _, err := WriteFile(path, fields); err != nil {
		t.Fatal(err)
	}
	f, err := ReadVar(path, "Y_OH")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "Y_OH" || f.Data[0] != fields[2].Data[0] {
		t.Fatal("selective read returned wrong variable")
	}
	if _, err := ReadVar(path, "missing"); err == nil {
		t.Fatal("missing variable must error")
	}
}

func TestCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.bp")
	if err := os.WriteFile(path, []byte("not a bp file at all........"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("garbage must error")
	}
	// Truncated real file.
	good := filepath.Join(dir, "good.bp")
	if _, err := WriteFile(good, sampleFields(rand.New(rand.NewSource(4)))); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(good)
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("truncated file must error")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.bp")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestEmptyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.bp")
	if _, err := WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file should load 0 fields, got %d", len(got))
	}
}

// TestIOModelMatchesTableI checks the Lustre model reproduces the
// paper's I/O rows: 98.5 GB at both core counts gives ~6.56 s reads
// and ~3.28 s writes, independent of the file count.
func TestIOModelMatchesTableI(t *testing.T) {
	m := JaguarLustre()
	total := int64(98.5e9)
	for _, nfiles := range []int{4480, 8960} {
		r := m.ReadTime(total, nfiles)
		w := m.WriteTime(total, nfiles)
		if r < 6300*time.Millisecond || r > 6900*time.Millisecond {
			t.Fatalf("nfiles=%d: read time %v outside Table I's ~6.56 s", nfiles, r)
		}
		if w < 3100*time.Millisecond || w > 3500*time.Millisecond {
			t.Fatalf("nfiles=%d: write time %v outside Table I's ~3.28 s", nfiles, w)
		}
	}
	// I/O time must be (nearly) independent of the writer count — the
	// OSTs are the bottleneck.
	r1 := m.ReadTime(total, 4480)
	r2 := m.ReadTime(total, 8960)
	diff := r2 - r1
	if diff < 0 {
		diff = -diff
	}
	if diff > 100*time.Millisecond {
		t.Fatalf("read time should not depend on file count: %v vs %v", r1, r2)
	}
}

func TestIOModelDegenerate(t *testing.T) {
	var m IOModel // zero bandwidths
	if m.ReadTime(1e9, 10) != 0 || m.WriteTime(1e9, 10) != 0 {
		t.Fatal("zero-bandwidth model must return 0")
	}
	m2 := IOModel{ReadBandwidth: 1e9, WriteBandwidth: 1e9, PerFileLatency: time.Millisecond}
	// ParallelFiles unset defaults to serial waves.
	if m2.ReadTime(0, 3) != 3*time.Millisecond {
		t.Fatalf("per-file latency waves wrong: %v", m2.ReadTime(0, 3))
	}
}

// TestBitFlipCaught verifies the per-variable CRC32: flipping one bit
// inside a payload is caught on both read paths with the typed
// ErrCorruptCheckpoint, while index/footer structure stays intact.
func TestBitFlipCaught(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rank0.bp")
	fields := sampleFields(rand.New(rand.NewSource(5)))
	if _, err := WriteFile(path, fields); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit well inside the first payload (past the header).
	data[64] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("ReadFile on bit-flipped payload: err = %v, want ErrCorruptCheckpoint", err)
	}
	if _, err := ReadVar(path, fields[0].Name); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("ReadVar on bit-flipped payload: err = %v, want ErrCorruptCheckpoint", err)
	}
	// Unaffected variables still read cleanly via the selective path.
	if _, err := ReadVar(path, fields[2].Name); err != nil {
		t.Fatalf("ReadVar on intact variable: %v", err)
	}
}

// TestReadVersion1 keeps backward compatibility: a hand-built version-1
// file (16-byte index entries, no CRC) still loads.
func TestReadVersion1(t *testing.T) {
	f := sampleFields(rand.New(rand.NewSource(6)))[0]
	var buf []byte
	buf = append(buf, magic[:]...)
	var b4 [4]byte
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b4[:], version1)
	buf = append(buf, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], 1)
	buf = append(buf, b4[:]...)
	off := len(buf)
	buf = f.AppendMarshal(buf)
	footerOff := len(buf)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(f.Name)))
	buf = append(buf, b4[:]...)
	buf = append(buf, f.Name...)
	binary.LittleEndian.PutUint64(b8[:], uint64(off))
	buf = append(buf, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], uint64(footerOff-off))
	buf = append(buf, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], uint64(footerOff))
	buf = append(buf, b8[:]...)
	buf = append(buf, magic[:]...)

	dir := t.TempDir()
	path := filepath.Join(dir, "v1.bp")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != f.Name || got[0].Data[3] != f.Data[3] {
		t.Fatal("version-1 file did not round-trip")
	}
}
