// Package bufpool is the size-classed, sync.Pool-backed byte-buffer
// pool threaded through the hybrid framework's transfer path: field
// and model marshaling, BP packing, DART Get/Put staging copies, and
// the staging buckets' input fills. Every hop of the in-situ →
// in-transit path used to allocate a fresh buffer per timestep; with
// the pool, steady-state timesteps recycle the same few buffers.
//
// Ownership rule (documented in DESIGN.md): a buffer obtained from
// Get is owned by the caller until it is handed to Put, after which it
// must not be touched. Put never requires a Get-obtained buffer —
// foreign slices are adopted into the matching size class — and Get
// returns buffers with arbitrary contents, so callers must fully
// overwrite the range they use.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Size classes are powers of two from 1<<minShift up to 1<<maxShift.
// Requests above the largest class are allocated directly and dropped
// on Put (they would pin too much memory in the pool).
const (
	minShift = 8  // 256 B
	maxShift = 26 // 64 MiB
)

var (
	classes [maxShift - minShift + 1]sync.Pool

	gets   atomic.Int64 // total Get calls
	misses atomic.Int64 // Gets served by a fresh allocation
)

// classFor returns the class index whose buffers have capacity >= n,
// or -1 when n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minShift {
		return 0
	}
	s := bits.Len(uint(n - 1)) // ceil(log2(n))
	if s > maxShift {
		return -1
	}
	return s - minShift
}

// Get returns a buffer of length n with arbitrary contents. The
// capacity may exceed n. Small and huge requests are still served;
// only classes within [256 B, 64 MiB] actually recycle.
func Get(n int) []byte {
	gets.Add(1)
	c := classFor(n)
	if c < 0 {
		misses.Add(1)
		return make([]byte, n)
	}
	if v := classes[c].Get(); v != nil {
		w := v.(*buf)
		b := w.b
		w.b = nil
		wrapPool.Put(w)
		return b[:n]
	}
	misses.Add(1)
	return make([]byte, n, 1<<(c+minShift))
}

// buf wraps a slice so pooled values are pointer-shaped (avoids an
// allocation per Put from interface conversion of a slice header).
type buf struct{ b []byte }

var wrapPool = sync.Pool{New: func() any { return new(buf) }}

// Put returns a buffer to the pool. The buffer is placed in the
// largest class it can fully serve; buffers smaller than the smallest
// class or larger than the largest are dropped. The caller must not
// use b afterwards.
func Put(b []byte) {
	c := cap(b)
	if c < 1<<minShift {
		return
	}
	s := bits.Len(uint(c)) - 1 // floor(log2(cap))
	if s > maxShift {
		s = maxShift
	}
	w := wrapPool.Get().(*buf)
	w.b = b[:0:c]
	classes[s-minShift].Put(w)
}

// Stats reports cumulative Get calls and how many were served by a
// fresh allocation, for tests asserting the pool actually recycles.
func Stats() (getCalls, missCount int64) {
	return gets.Load(), misses.Load()
}
