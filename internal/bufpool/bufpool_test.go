package bufpool

import (
	"sync"
	"testing"
)

func TestGetLengthAndClassCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 4096, 5000, 1 << 20} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len %d", n, len(b))
		}
		Put(b)
	}
}

func TestRecycleRoundTrip(t *testing.T) {
	b := Get(10_000)
	for i := range b {
		b[i] = 0xAB
	}
	Put(b)
	// The recycled buffer may come back on the next Get of the same
	// class. We cannot assert identity (sync.Pool may drop), but a
	// reuse must never hand the same backing array to two live
	// buffers, which the race stress test below exercises.
	c := Get(10_000)
	if len(c) != 10_000 {
		t.Fatalf("len %d", len(c))
	}
	Put(c)
}

func TestHugeAndTinyDoNotPanic(t *testing.T) {
	huge := Get(1 << 28) // above the largest class: plain allocation
	if len(huge) != 1<<28 {
		t.Fatal("huge get wrong length")
	}
	Put(huge) // dropped, must not panic
	tiny := Get(3)
	Put(tiny[:0])
}

func TestForeignBufferAdoption(t *testing.T) {
	// Put of a slice that never came from Get must be accepted.
	Put(make([]byte, 100))  // below smallest class: dropped
	Put(make([]byte, 4096)) // adopted
	b := Get(4096)
	if len(b) != 4096 {
		t.Fatal("adopted class broken")
	}
	Put(b)
}

// TestConcurrentDistinctBuffers hammers Get/Put from many goroutines
// and checks (under -race and by value stamping) that no two live
// buffers alias.
func TestConcurrentDistinctBuffers(t *testing.T) {
	const workers = 8
	const rounds = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stamp byte) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				b := Get(1024)
				for i := range b {
					b[i] = stamp
				}
				for i := range b {
					if b[i] != stamp {
						t.Errorf("buffer corrupted: got %x want %x", b[i], stamp)
						return
					}
				}
				Put(b)
			}
		}(byte(w))
	}
	wg.Wait()
}

func TestStatsMove(t *testing.T) {
	g0, _ := Stats()
	Put(Get(512))
	g1, _ := Stats()
	if g1 <= g0 {
		t.Fatal("Stats gets did not advance")
	}
}
