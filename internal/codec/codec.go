// Package codec is the transfer-path encoder/decoder layer applied at
// the DART framing boundary. A producer encodes an intermediate
// payload into a self-describing frame before registering it for
// remote pull; the consumer-side Get decodes transparently after CRC32
// verification, so corruption is always caught on the encoded bytes
// before any decoder runs. Because netsim derives modeled transfer
// latency from the registered (encoded) length, every byte a codec
// removes is a proportional modeled-latency win — the bandwidth
// economy the paper's in-transit placement is built around.
//
// Four codecs ship:
//
//   - Identity: no frame at all; the raw payload is registered
//     unchanged, byte-for-byte identical to the pre-codec transport.
//   - Delta: XOR against the previous timestep's payload (resident in
//     the registry's base store), byte-plane shuffled and zero-run
//     length encoded. Exact reconstruction; falls back to a
//     self-contained literal frame when no usable base exists.
//   - Quantize: bounded-error bit packing of the payload's float64
//     tail under a per-field max-error knob; bytes before the tail
//     travel verbatim. Falls back to literal on non-finite values.
//   - Subsample: every Stride-th float of the tail travels now
//     (decode reconstructs by sample-and-hold); the exact payload is
//     retained as a refinement block applied on demand.
//
// All scratch, frame, and decode buffers come from internal/bufpool so
// the steady-state encode/decode path allocates nothing.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"insitu/internal/bufpool"
)

// ID names a codec in the frame header.
type ID uint8

const (
	// Identity ships raw bytes with no frame.
	Identity ID = iota
	// Delta encodes against the previous version's payload.
	Delta
	// Quantize bit-packs the float64 tail under an error bound.
	Quantize
	// Subsample ships a coarse float tail; refinement is on demand.
	Subsample

	// NumIDs is the number of codec IDs, for per-codec instrument
	// arrays.
	NumIDs = 4
)

// String implements fmt.Stringer.
func (id ID) String() string {
	switch id {
	case Identity:
		return "identity"
	case Delta:
		return "delta"
	case Quantize:
		return "quantize"
	case Subsample:
		return "subsample"
	}
	return fmt.Sprintf("codec(%d)", uint8(id))
}

// Spec selects a codec and its tuning for one analysis route.
type Spec struct {
	ID ID
	// MaxError is Quantize's absolute reconstruction-error bound per
	// float. Zero selects DefaultRelError times the payload's value
	// range, recomputed per payload.
	MaxError float64
	// Stride is Subsample's keep-every-Nth stride (default
	// DefaultStride).
	Stride int
}

const (
	// DefaultRelError is Quantize's default error bound as a fraction
	// of the payload's value range (~13 bits per float).
	DefaultRelError = 1e-4
	// DefaultStride is Subsample's default coarsening stride.
	DefaultStride = 4
	// baseRetention bounds how many versions per key the base and
	// refinement stores retain — enough to cover every task the transit
	// tier can hold in flight, small enough not to hoard buffers.
	baseRetention = 32
)

// Typed frame errors. The frame decoder returns these (wrapped) and
// never panics, whatever bytes arrive.
var (
	// ErrBadFrame is returned for a frame too short for its header or
	// with the wrong magic or version.
	ErrBadFrame = errors.New("codec: malformed frame")
	// ErrUnknownCodec is returned for a codec ID no decoder claims.
	ErrUnknownCodec = errors.New("codec: unknown codec id")
	// ErrTruncated is returned when the frame body ends before the
	// encoding it declares.
	ErrTruncated = errors.New("codec: truncated frame")
	// ErrSizeMismatch is returned when decoding produces a different
	// byte count than the header's raw size.
	ErrSizeMismatch = errors.New("codec: raw-size mismatch")
	// ErrBadMeta is returned when a codec's metadata block is
	// internally inconsistent.
	ErrBadMeta = errors.New("codec: malformed codec metadata")
	// ErrNoBase is returned when a delta frame's base version is no
	// longer resident in the registry.
	ErrNoBase = errors.New("codec: delta base unavailable")
	// ErrNoRefinement is returned by ApplyRefinement when no refinement
	// block is retained for the key/version.
	ErrNoRefinement = errors.New("codec: refinement unavailable")
	// ErrBadInput is returned by Encode for an impossible float-tail
	// offset or payload shape.
	ErrBadInput = errors.New("codec: bad encode input")
)

// Frame layout (little-endian):
//
//	[0:2]   magic 0xDC 0xF0
//	[2]     frame version (frameVersion)
//	[3]     codec ID
//	[4:8]   raw (decoded) size, uint32
//	[8:12]  codec metadata length, uint32
//	[12:..] codec metadata, then the encoded body
const (
	magic0       = 0xDC
	magic1       = 0xF0
	frameVersion = 1
	headerSize   = 12
)

// Key builds the base-store key for one producer stream: an analysis
// route on one rank. Precompute it once per route — building it per
// step would allocate on the hot path.
func Key(name string, rank int) string {
	return name + "/" + strconv.Itoa(rank)
}

// Result is one successful encode.
type Result struct {
	// Frame is the encoded frame, drawn from bufpool; nil means the
	// codec chose identity and the caller registers the raw payload
	// unchanged. Ownership of a non-nil Frame passes to the caller.
	Frame []byte
	// MaxError bounds the reconstruction error this encoding
	// introduced (0 for Delta, Identity, and literal fallbacks).
	MaxError float64
}

// Registry holds the codec state shared between producers and
// consumers: the previous-version base store delta encodes against and
// the refinement blocks Subsample retains. One registry is shared by
// the DataSpaces service and the DART fabric of a pipeline.
type Registry struct {
	bases   store
	refines store
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		bases:   store{m: make(map[string][]storeEntry)},
		refines: store{m: make(map[string][]storeEntry)},
	}
}

// Encode encodes raw under spec for the producer stream key at the
// given version. floatOff is the byte offset of the payload's float64
// tail (used by Quantize and Subsample; pass 0 when unknown — Delta
// ignores it). The raw slice is only read; the caller keeps ownership.
func (r *Registry) Encode(spec Spec, key string, version int, raw []byte, floatOff int) (Result, error) {
	switch spec.ID {
	case Identity:
		return Result{}, nil
	case Delta:
		return r.encodeDelta(key, version, raw), nil
	case Quantize:
		return encodeQuantize(spec, raw, floatOff)
	case Subsample:
		return r.encodeSubsample(spec, key, version, raw, floatOff)
	}
	return Result{}, fmt.Errorf("%w: %d", ErrUnknownCodec, spec.ID)
}

// Decode reconstructs the raw payload from a frame. The returned
// buffer comes from bufpool and is owned by the caller; the frame is
// only read. Malformed frames return typed errors, never panic.
func (r *Registry) Decode(frame []byte) ([]byte, ID, error) {
	id, rawSize, meta, body, err := splitFrame(frame)
	if err != nil {
		return nil, 0, err
	}
	var raw []byte
	switch id {
	case Delta:
		raw, err = r.decodeDelta(rawSize, meta, body)
	case Quantize:
		raw, err = decodeQuantize(rawSize, meta, body)
	case Subsample:
		raw, err = decodeSubsample(rawSize, meta, body)
	default:
		return nil, 0, fmt.Errorf("%w: %d", ErrUnknownCodec, id)
	}
	if err != nil {
		return nil, id, err
	}
	return raw, id, nil
}

// Inspect parses a frame header without decoding, returning the codec
// ID and declared raw size.
func Inspect(frame []byte) (ID, int, error) {
	id, rawSize, _, _, err := splitFrame(frame)
	return id, rawSize, err
}

// SeedBase retains raw as the base payload for (key, version) — the
// resume path's re-anchoring of the delta codec: after a restart the
// in-memory base store is empty, so the pipeline recomputes the last
// committed step's payload from restored simulation state and seeds it
// here, letting the first live step delta-encode against it instead of
// falling back to a literal frame. The raw slice is copied; the caller
// keeps ownership.
func (r *Registry) SeedBase(key string, version int, raw []byte) {
	r.bases.put(key, version, raw)
}

// PrevVersion invokes fn with the retained payload for (key, version),
// returning false when it is not resident. The slice is only valid
// inside fn — the registry may recycle it afterwards. This is the
// previous-version lookup the delta codec builds on, exposed for the
// coordination layer.
func (r *Registry) PrevVersion(key string, version int, fn func(raw []byte)) bool {
	return r.bases.with(key, version, fn)
}

// ApplyRefinement exactly reconstructs a subsampled payload in place:
// approx must be the decoder's sample-and-hold output for (key,
// version), and is overwritten with the retained exact payload — the
// on-demand refinement transfer of the subsample-then-refine scheme.
func (r *Registry) ApplyRefinement(key string, version int, approx []byte) error {
	mismatch := false
	ok := r.refines.with(key, version, func(exact []byte) {
		if len(exact) != len(approx) {
			mismatch = true
			return
		}
		copy(approx, exact)
	})
	if !ok {
		return fmt.Errorf("%w: %s@%d", ErrNoRefinement, key, version)
	}
	if mismatch {
		return fmt.Errorf("%w: refinement size differs from payload", ErrSizeMismatch)
	}
	return nil
}

// splitFrame validates the header and returns (id, rawSize, meta,
// body).
func splitFrame(frame []byte) (ID, int, []byte, []byte, error) {
	if len(frame) < headerSize {
		return 0, 0, nil, nil, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(frame))
	}
	if frame[0] != magic0 || frame[1] != magic1 {
		return 0, 0, nil, nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if frame[2] != frameVersion {
		return 0, 0, nil, nil, fmt.Errorf("%w: version %d", ErrBadFrame, frame[2])
	}
	id := ID(frame[3])
	rawSize := int(binary.LittleEndian.Uint32(frame[4:8]))
	metaLen := int(binary.LittleEndian.Uint32(frame[8:12]))
	if metaLen < 0 || metaLen > len(frame)-headerSize {
		return 0, 0, nil, nil, fmt.Errorf("%w: meta %d bytes beyond frame", ErrTruncated, metaLen)
	}
	meta := frame[headerSize : headerSize+metaLen]
	body := frame[headerSize+metaLen:]
	return id, rawSize, meta, body, nil
}

// newFrame draws a frame buffer sized for metaLen+bodyCap and writes
// the header; the body cursor starts at headerSize+metaLen.
func newFrame(id ID, rawSize, metaLen, bodyCap int) []byte {
	f := bufpool.Get(headerSize + metaLen + bodyCap)
	f[0], f[1], f[2], f[3] = magic0, magic1, frameVersion, byte(id)
	binary.LittleEndian.PutUint32(f[4:8], uint32(rawSize))
	binary.LittleEndian.PutUint32(f[8:12], uint32(metaLen))
	return f
}

// checkTail validates a float-tail offset against a payload.
func checkTail(raw []byte, floatOff int) (count int, err error) {
	if floatOff < 0 || floatOff > len(raw) || (len(raw)-floatOff)%8 != 0 {
		return 0, fmt.Errorf("%w: float tail at %d of %d bytes", ErrBadInput, floatOff, len(raw))
	}
	return (len(raw) - floatOff) / 8, nil
}

// storeEntry is one retained payload version.
type storeEntry struct {
	version int
	buf     []byte
}

// store is a keyed ring of retained payload copies (bufpool-backed).
// Readers borrow entries under the lock via with, so eviction can
// safely recycle buffers.
type store struct {
	mu sync.Mutex
	m  map[string][]storeEntry
}

// put retains a copy of raw as (key, version), evicting the oldest
// entry beyond the retention window.
func (s *store) put(key string, version int, raw []byte) {
	cp := bufpool.Get(len(raw))
	copy(cp, raw)
	s.mu.Lock()
	entries := append(s.m[key], storeEntry{version: version, buf: cp})
	var evicted []byte
	if len(entries) > baseRetention {
		evicted = entries[0].buf
		copy(entries, entries[1:])
		entries = entries[:len(entries)-1]
	}
	s.m[key] = entries
	s.mu.Unlock()
	if evicted != nil {
		bufpool.Put(evicted)
	}
}

// with invokes fn with the retained payload for (key, version) under
// the store lock, returning whether it was resident.
func (s *store) with(key string, version int, fn func(raw []byte)) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.m[key]
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].version == version {
			fn(entries[i].buf)
			return true
		}
	}
	return false
}
