package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// fieldLike builds a payload shaped like a grid.Field marshal: a small
// opaque header followed by a float64 tail.
func fieldLike(rng *rand.Rand, header, count int, gen func(i int) float64) []byte {
	p := make([]byte, header+8*count)
	rng.Read(p[:header])
	for i := 0; i < count; i++ {
		binary.LittleEndian.PutUint64(p[header+8*i:], math.Float64bits(gen(i)))
	}
	return p
}

// evolve perturbs a payload's float tail like one simulation timestep
// with a localized feature: roughly every eighth value moves slightly,
// the rest are untouched.
func evolve(rng *rand.Rand, p []byte, header int) []byte {
	q := append([]byte(nil), p...)
	for off := header; off < len(q); off += 8 {
		if rng.Intn(8) != 0 {
			continue
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(q[off:]))
		v += 1e-6 * (rng.Float64() - 0.5)
		binary.LittleEndian.PutUint64(q[off:], math.Float64bits(v))
	}
	return q
}

func decodeOK(t *testing.T, r *Registry, res Result, wantID ID) []byte {
	t.Helper()
	id, rawSize, err := Inspect(res.Frame)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if id != wantID {
		t.Fatalf("frame codec = %v, want %v", id, wantID)
	}
	raw, id2, err := r.Decode(res.Frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if id2 != wantID || len(raw) != rawSize {
		t.Fatalf("decode returned id %v size %d, want %v %d", id2, len(raw), wantID, rawSize)
	}
	return raw
}

// TestDeltaRoundTripExact: delta reconstruction is bit-exact across a
// sequence of smoothly evolving versions, and the steady-state frames
// are much smaller than the raw payloads.
func TestDeltaRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRegistry()
	key := Key("viz", 0)
	p := fieldLike(rng, 76, 4096, func(i int) float64 {
		return math.Sin(float64(i) / 50)
	})
	var wire, raw int
	for v := 1; v <= 10; v++ {
		res, err := r.Encode(Spec{ID: Delta}, key, v, p, 0)
		if err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
		got := decodeOK(t, r, res, Delta)
		if !bytes.Equal(got, p) {
			t.Fatalf("v%d: delta round trip not bit-exact", v)
		}
		if res.MaxError != 0 {
			t.Fatalf("v%d: delta reported max error %g, want 0", v, res.MaxError)
		}
		if v > 1 {
			wire += len(res.Frame)
			raw += len(p)
		} else if len(res.Frame) < len(p) {
			// Version 1 has no base: a literal frame, slightly larger
			// than raw.
			t.Fatalf("v1 must be literal, frame %d < raw %d", len(res.Frame), len(p))
		}
		p = evolve(rng, p, 76)
	}
	ratio := float64(raw) / float64(wire)
	t.Logf("delta steady-state compression: %.2fx (%d -> %d bytes)", ratio, raw, wire)
	if ratio < 3 {
		t.Fatalf("delta compression %.2fx on sparse evolution, want >= 3x", ratio)
	}
}

// TestDeltaIdenticalPayloadCollapses: an unchanged payload XORs to all
// zeros and the frame collapses to a few dozen bytes.
func TestDeltaIdenticalPayloadCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := NewRegistry()
	key := Key("ckpt", 3)
	p := fieldLike(rng, 20, 8192, func(i int) float64 { return float64(i) })
	if _, err := r.Encode(Spec{ID: Delta}, key, 1, p, 0); err != nil {
		t.Fatal(err)
	}
	res, err := r.Encode(Spec{ID: Delta}, key, 2, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frame) > 128 {
		t.Fatalf("identical payload framed to %d bytes, want tiny", len(res.Frame))
	}
	if got := decodeOK(t, r, res, Delta); !bytes.Equal(got, p) {
		t.Fatal("round trip broken")
	}
}

// TestDeltaRandomPayloadsStayLiteral: incompressible random bytes must
// not inflate — the encoder falls back to a literal frame.
func TestDeltaRandomPayloadsStayLiteral(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewRegistry()
	key := Key("rand", 0)
	for v := 1; v <= 3; v++ {
		p := make([]byte, 4096)
		rng.Read(p)
		res, err := r.Encode(Spec{ID: Delta}, key, v, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Frame) > len(p)+headerSize+deltaMetaLen(key)+16 {
			t.Fatalf("random payload inflated to %d bytes from %d", len(res.Frame), len(p))
		}
		if got := decodeOK(t, r, res, Delta); !bytes.Equal(got, p) {
			t.Fatalf("v%d: round trip broken", v)
		}
	}
}

// TestDeltaSizeChangeFallsBackToLiteral: a payload whose size differs
// from its base (a shaped step) still round-trips via literal mode.
func TestDeltaSizeChangeFallsBackToLiteral(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := NewRegistry()
	key := Key("viz", 1)
	p1 := fieldLike(rng, 12, 1000, func(i int) float64 { return float64(i) })
	p2 := fieldLike(rng, 12, 125, func(i int) float64 { return float64(i) })
	if _, err := r.Encode(Spec{ID: Delta}, key, 1, p1, 0); err != nil {
		t.Fatal(err)
	}
	res, err := r.Encode(Spec{ID: Delta}, key, 2, p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeOK(t, r, res, Delta); !bytes.Equal(got, p2) {
		t.Fatal("size-changed payload must round trip via literal mode")
	}
}

// TestDeltaEvictedBase: decoding a frame whose base fell out of the
// retention window returns ErrNoBase, typed.
func TestDeltaEvictedBase(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := NewRegistry()
	key := Key("old", 0)
	p := fieldLike(rng, 8, 512, func(i int) float64 { return float64(i) })
	if _, err := r.Encode(Spec{ID: Delta}, key, 1, p, 0); err != nil {
		t.Fatal(err)
	}
	res, err := r.Encode(Spec{ID: Delta}, key, 2, evolve(rng, p, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), res.Frame...)
	// Push the base (version 1) out of the ring.
	for v := 3; v < 3+2*baseRetention; v++ {
		p = evolve(rng, p, 8)
		if _, err := r.Encode(Spec{ID: Delta}, key, v, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := r.Decode(frame); !errors.Is(err, ErrNoBase) {
		t.Fatalf("decode with evicted base: %v, want ErrNoBase", err)
	}
}

// TestQuantizeErrorBound: on randomized fields, quantize reconstruction
// error stays within the configured bound and the packed frame is at
// least 3x smaller than raw.
func TestQuantizeErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := NewRegistry()
	for trial := 0; trial < 20; trial++ {
		header := 4 + rng.Intn(64)
		count := 256 + rng.Intn(4096)
		scale := math.Pow(10, float64(rng.Intn(7)-3))
		p := fieldLike(rng, header, count, func(i int) float64 {
			return scale * (rng.Float64()*2 - 1)
		})
		bound := scale * math.Pow(10, float64(-1-rng.Intn(4)))
		res, err := r.Encode(Spec{ID: Quantize, MaxError: bound}, "q", trial, p, header)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.MaxError > bound {
			t.Fatalf("trial %d: reported max error %g exceeds bound %g", trial, res.MaxError, bound)
		}
		got := decodeOK(t, r, res, Quantize)
		if !bytes.Equal(got[:header], p[:header]) {
			t.Fatalf("trial %d: header bytes not verbatim", trial)
		}
		worst := 0.0
		for i := 0; i < count; i++ {
			a := math.Float64frombits(binary.LittleEndian.Uint64(p[header+8*i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(got[header+8*i:]))
			if e := math.Abs(a - b); e > worst {
				worst = e
			}
		}
		if worst > bound {
			t.Fatalf("trial %d: actual error %g exceeds bound %g", trial, worst, bound)
		}
		if worst > res.MaxError {
			t.Fatalf("trial %d: actual error %g exceeds reported %g", trial, worst, res.MaxError)
		}
		if ratio := float64(len(p)) / float64(len(res.Frame)); ratio < 1.5 {
			t.Fatalf("trial %d: quantize ratio %.2fx (bound %g over scale %g)", trial, ratio, bound, scale)
		}
	}
}

// TestQuantizeDefaultBound: the default relative bound packs to ~13
// bits per value, comfortably over 3x.
func TestQuantizeDefaultBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewRegistry()
	p := fieldLike(rng, 76, 8192, func(i int) float64 { return rng.NormFloat64() })
	res, err := r.Encode(Spec{ID: Quantize}, "q", 1, p, 76)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(p)) / float64(len(res.Frame))
	t.Logf("default quantize: %.2fx (%d -> %d bytes), max err %g", ratio, len(p), len(res.Frame), res.MaxError)
	if ratio < 3 {
		t.Fatalf("default quantize ratio %.2fx, want >= 3x", ratio)
	}
	got := decodeOK(t, r, res, Quantize)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 8192; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(p[76+8*i:]))
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	bound := DefaultRelError * (hi - lo)
	for i := 0; i < 8192; i++ {
		a := math.Float64frombits(binary.LittleEndian.Uint64(p[76+8*i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(got[76+8*i:]))
		if math.Abs(a-b) > bound {
			t.Fatalf("value %d: error %g over default bound %g", i, math.Abs(a-b), bound)
		}
	}
}

// TestQuantizeNonFiniteFallsBackLiteral: NaN/Inf payloads round-trip
// bit-exactly through the literal fallback.
func TestQuantizeNonFiniteFallsBackLiteral(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := NewRegistry()
	p := fieldLike(rng, 16, 128, func(i int) float64 {
		if i == 77 {
			return math.NaN()
		}
		return float64(i)
	})
	res, err := r.Encode(Spec{ID: Quantize}, "q", 1, p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxError != 0 {
		t.Fatalf("literal fallback reported error %g", res.MaxError)
	}
	if got := decodeOK(t, r, res, Quantize); !bytes.Equal(got, p) {
		t.Fatal("literal fallback not bit-exact")
	}
}

// TestQuantizeConstantField: a constant tail packs to one bit per
// value with zero error.
func TestQuantizeConstantField(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := NewRegistry()
	p := fieldLike(rng, 8, 1024, func(int) float64 { return 3.25 })
	res, err := r.Encode(Spec{ID: Quantize}, "q", 1, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxError != 0 {
		t.Fatalf("constant field error %g, want 0", res.MaxError)
	}
	if got := decodeOK(t, r, res, Quantize); !bytes.Equal(got, p) {
		t.Fatal("constant field must reconstruct exactly")
	}
}

// TestSubsampleRefine: the coarse frame reconstructs by sample-and-
// hold within the reported error, and ApplyRefinement restores the
// exact payload on demand.
func TestSubsampleRefine(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	r := NewRegistry()
	key := Key("viz", 2)
	p := fieldLike(rng, 76, 4000, func(i int) float64 { return math.Cos(float64(i) / 30) })
	res, err := r.Encode(Spec{ID: Subsample, Stride: 4}, key, 7, p, 76)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(p)) / float64(len(res.Frame)); ratio < 3 {
		t.Fatalf("stride-4 subsample ratio %.2fx, want >= 3x", ratio)
	}
	got := decodeOK(t, r, res, Subsample)
	worst := 0.0
	for i := 0; i < 4000; i++ {
		a := math.Float64frombits(binary.LittleEndian.Uint64(p[76+8*i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(got[76+8*i:]))
		if e := math.Abs(a - b); e > worst {
			worst = e
		}
	}
	if worst > res.MaxError {
		t.Fatalf("sample-and-hold error %g exceeds reported %g", worst, res.MaxError)
	}
	if err := r.ApplyRefinement(key, 7, got); err != nil {
		t.Fatalf("refine: %v", err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("refined payload must be bit-exact")
	}
	if err := r.ApplyRefinement(key, 99, got); !errors.Is(err, ErrNoRefinement) {
		t.Fatalf("missing refinement: %v, want ErrNoRefinement", err)
	}
}

// TestIdentitySpecReturnsNoFrame: the identity spec encodes to a nil
// frame, telling the transport to register raw bytes unchanged.
func TestIdentitySpecReturnsNoFrame(t *testing.T) {
	r := NewRegistry()
	res, err := r.Encode(Spec{}, "k", 1, []byte{1, 2, 3}, 0)
	if err != nil || res.Frame != nil {
		t.Fatalf("identity encode = (%v, %v), want nil frame", res.Frame, err)
	}
}

// TestDecodeTypedErrors: the malformed-frame taxonomy returns the
// right sentinel for each defect, never panicking.
func TestDecodeTypedErrors(t *testing.T) {
	r := NewRegistry()
	p := fieldLike(rand.New(rand.NewSource(11)), 16, 64, func(i int) float64 { return float64(i) })
	res, err := r.Encode(Spec{ID: Quantize}, "k", 1, p, 16)
	if err != nil {
		t.Fatal(err)
	}
	good := append([]byte(nil), res.Frame...)

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"short", func(f []byte) []byte { return f[:4] }, ErrBadFrame},
		{"magic", func(f []byte) []byte { f[0] = 0; return f }, ErrBadFrame},
		{"version", func(f []byte) []byte { f[2] = 9; return f }, ErrBadFrame},
		{"codec-id", func(f []byte) []byte { f[3] = 200; return f }, ErrUnknownCodec},
		{"meta-overrun", func(f []byte) []byte {
			binary.LittleEndian.PutUint32(f[8:12], uint32(len(f)))
			return f
		}, ErrTruncated},
		{"truncated-body", func(f []byte) []byte { return f[:len(f)-3] }, ErrTruncated},
		{"raw-size", func(f []byte) []byte {
			binary.LittleEndian.PutUint32(f[4:8], uint32(len(p)+8))
			return f
		}, ErrTruncated},
	}
	for _, tc := range cases {
		f := tc.mut(append([]byte(nil), good...))
		if _, _, err := r.Decode(f); !errors.Is(err, tc.want) {
			t.Errorf("%s: decode = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestStoreRetention: the base store keeps the newest baseRetention
// versions per key and recycles evicted buffers.
func TestStoreRetention(t *testing.T) {
	s := store{m: make(map[string][]storeEntry)}
	for v := 1; v <= baseRetention+5; v++ {
		s.put("k", v, []byte{byte(v)})
	}
	if s.with("k", 1, func([]byte) {}) {
		t.Fatal("version 1 must be evicted")
	}
	ok := s.with("k", baseRetention+5, func(b []byte) {
		if b[0] != byte(baseRetention+5) {
			t.Fatal("wrong payload retained")
		}
	})
	if !ok {
		t.Fatal("newest version must be resident")
	}
	if len(s.m["k"]) != baseRetention {
		t.Fatalf("retained %d entries, want %d", len(s.m["k"]), baseRetention)
	}
}

// TestRLEZeroRoundTrip exercises the run-length layer directly on
// pathological shapes: all zeros, no zeros, alternating runs.
func TestRLEZeroRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	shapes := [][]byte{
		make([]byte, 1000),
		func() []byte { b := make([]byte, 1000); rng.Read(b); return b }(),
		func() []byte {
			b := make([]byte, 1000)
			for i := range b {
				if i/7%2 == 0 {
					b[i] = byte(i)
				}
			}
			return b
		}(),
		{},
		{0},
		{1},
	}
	for i, src := range shapes {
		dst := make([]byte, len(src)+2*len(src)/3+64)
		n, ok := rleEncodeZero(dst, src)
		if !ok {
			continue // inflation fallback is exercised elsewhere
		}
		out := make([]byte, len(src))
		if err := rleDecodeZero(out, dst[:n]); err != nil {
			t.Fatalf("shape %d: decode: %v", i, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("shape %d: round trip broken", i)
		}
	}
}
