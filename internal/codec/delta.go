package codec

import (
	"encoding/binary"
	"fmt"

	"insitu/internal/bufpool"
)

// The delta codec encodes a payload against the previous version of
// the same producer stream (analysis route × rank), which the registry
// retains in its base store. The transform is three cheap passes:
//
//  1. XOR against the base — successive timesteps of a smoothly
//     evolving field agree in their float64 sign/exponent/high-mantissa
//     bytes, so the XOR is mostly zeros in the high byte lanes.
//  2. Byte-plane shuffle (stride-8 transpose, the Blosc/HDF5 shuffle
//     trick) — the mostly-zero high-byte lanes of every float are
//     gathered into long contiguous zero runs.
//  3. Zero-run RLE — alternating (zero-run, literal-run) tokens with
//     varint lengths.
//
// Reconstruction is bit-exact. When no usable base exists (first
// version, evicted base, or a shaped payload whose size changed) or
// the transform does not actually shrink the payload, the frame
// carries the payload verbatim in literal mode and stays
// self-contained.
//
// Delta metadata:
//
//	[0]    mode: 0 literal, 1 xor+shuffle+rle
//	[1:9]  base version, int64 (-1 in literal mode)
//	[9:11] key length, uint16
//	[11:]  key bytes
const (
	deltaLiteral = 0
	deltaXOR     = 1
)

func deltaMetaLen(key string) int { return 1 + 8 + 2 + len(key) }

func putDeltaMeta(meta []byte, mode byte, baseVersion int64, key string) {
	meta[0] = mode
	binary.LittleEndian.PutUint64(meta[1:9], uint64(baseVersion))
	binary.LittleEndian.PutUint16(meta[9:11], uint16(len(key)))
	copy(meta[11:], key)
}

func parseDeltaMeta(meta []byte) (mode byte, baseVersion int64, key []byte, err error) {
	if len(meta) < 11 {
		return 0, 0, nil, fmt.Errorf("%w: delta meta %d bytes", ErrBadMeta, len(meta))
	}
	mode = meta[0]
	if mode != deltaLiteral && mode != deltaXOR {
		return 0, 0, nil, fmt.Errorf("%w: delta mode %d", ErrBadMeta, mode)
	}
	baseVersion = int64(binary.LittleEndian.Uint64(meta[1:9]))
	keyLen := int(binary.LittleEndian.Uint16(meta[9:11]))
	if len(meta) != 11+keyLen {
		return 0, 0, nil, fmt.Errorf("%w: delta key %d bytes in %d-byte meta", ErrBadMeta, keyLen, len(meta))
	}
	return mode, baseVersion, meta[11:], nil
}

// encodeDelta never fails: absent or mismatched bases degrade to
// literal mode. The raw payload is always retained as the base for the
// next version — the producer is sequential per stream, so the base is
// resident before any consumer can decode against it.
func (r *Registry) encodeDelta(key string, version int, raw []byte) Result {
	n := len(raw)
	metaLen := deltaMetaLen(key)
	frame := newFrame(Delta, n, metaLen, n)
	bodyOff := headerSize + metaLen

	mode := byte(deltaLiteral)
	baseVersion := int64(-1)
	encLen := 0
	if n >= 8 {
		sh := bufpool.Get(n)
		haveBase := false
		r.bases.with(key, version-1, func(base []byte) {
			if len(base) != n {
				return
			}
			xorShuffle(sh, raw, base)
			haveBase = true
		})
		if haveBase {
			if m, ok := rleEncodeZero(frame[bodyOff:bodyOff+n], sh); ok {
				mode = deltaXOR
				baseVersion = int64(version - 1)
				encLen = m
			}
		}
		bufpool.Put(sh)
	}
	if mode == deltaLiteral {
		copy(frame[bodyOff:], raw)
		encLen = n
	}
	putDeltaMeta(frame[headerSize:bodyOff], mode, baseVersion, key)
	r.bases.put(key, version, raw)
	return Result{Frame: frame[:bodyOff+encLen]}
}

func (r *Registry) decodeDelta(rawSize int, meta, body []byte) ([]byte, error) {
	mode, baseVersion, key, err := parseDeltaMeta(meta)
	if err != nil {
		return nil, err
	}
	if mode == deltaLiteral {
		if len(body) != rawSize {
			return nil, fmt.Errorf("%w: literal body %d bytes, raw size %d", ErrSizeMismatch, len(body), rawSize)
		}
		raw := bufpool.Get(rawSize)
		copy(raw, body)
		return raw, nil
	}
	sh := bufpool.Get(rawSize)
	if err := rleDecodeZero(sh, body); err != nil {
		bufpool.Put(sh)
		return nil, err
	}
	raw := bufpool.Get(rawSize)
	reconstructed := false
	r.bases.with(string(key), int(baseVersion), func(base []byte) {
		if len(base) != rawSize {
			return
		}
		unshuffleXOR(raw, sh, base)
		reconstructed = true
	})
	bufpool.Put(sh)
	if !reconstructed {
		bufpool.Put(raw)
		return nil, fmt.Errorf("%w: %s@%d", ErrNoBase, key, baseVersion)
	}
	return raw, nil
}

// xorShuffle writes the byte-plane-shuffled XOR of a and b into dst:
// plane p of every 8-byte word is gathered contiguously, tail bytes
// (len not divisible by 8) follow verbatim.
func xorShuffle(dst, a, b []byte) {
	w := len(a) / 8
	for p := 0; p < 8; p++ {
		lane := dst[p*w : (p+1)*w]
		for i := range lane {
			lane[i] = a[i*8+p] ^ b[i*8+p]
		}
	}
	for i := 8 * w; i < len(a); i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// unshuffleXOR inverts xorShuffle: dst = unshuffle(enc) XOR base.
func unshuffleXOR(dst, enc, base []byte) {
	w := len(dst) / 8
	for p := 0; p < 8; p++ {
		lane := enc[p*w : (p+1)*w]
		for i := range lane {
			dst[i*8+p] = lane[i] ^ base[i*8+p]
		}
	}
	for i := 8 * w; i < len(dst); i++ {
		dst[i] = enc[i] ^ base[i]
	}
}

// rleEncodeZero writes alternating (zero-run, literal-run) tokens —
// each a uvarint length, literals followed by their bytes — into dst.
// It reports the encoded length and whether src fit within len(dst)
// (when it does not, the caller uses literal mode instead).
func rleEncodeZero(dst, src []byte) (int, bool) {
	out := 0
	i := 0
	for i < len(src) {
		z := i
		for z < len(src) && src[z] == 0 {
			z++
		}
		// Literal run: up to (not including) the next zero run worth
		// encoding. Lone zeros inside literals are cheaper kept literal
		// than paying two fresh varints, so a literal run only breaks at
		// a run of >= 4 zeros or the end of input.
		l := z
		for l < len(src) {
			if src[l] == 0 {
				zl := l + 1
				for zl < len(src) && src[zl] == 0 {
					zl++
				}
				if zl-l >= 4 {
					break
				}
				l = zl
			} else {
				l++
			}
		}
		if out+2*binary.MaxVarintLen32+(l-z) > len(dst) {
			return 0, false
		}
		out += binary.PutUvarint(dst[out:], uint64(z-i))
		out += binary.PutUvarint(dst[out:], uint64(l-z))
		copy(dst[out:], src[z:l])
		out += l - z
		i = l
	}
	return out, true
}

// rleDecodeZero reconstructs exactly len(dst) bytes from rleEncodeZero
// output, failing with typed errors on any inconsistency.
func rleDecodeZero(dst, src []byte) error {
	out := 0
	i := 0
	for i < len(src) {
		z, n := binary.Uvarint(src[i:])
		if n <= 0 {
			return fmt.Errorf("%w: bad zero-run varint", ErrTruncated)
		}
		i += n
		l, n := binary.Uvarint(src[i:])
		if n <= 0 {
			return fmt.Errorf("%w: bad literal-run varint", ErrTruncated)
		}
		i += n
		if z > uint64(len(dst)-out) || l > uint64(len(dst)-out)-z {
			return fmt.Errorf("%w: runs overflow raw size", ErrSizeMismatch)
		}
		zero := dst[out : out+int(z)]
		for j := range zero {
			zero[j] = 0
		}
		out += int(z)
		if int(l) > len(src)-i {
			return fmt.Errorf("%w: literal run past frame end", ErrTruncated)
		}
		copy(dst[out:], src[i:i+int(l)])
		out += int(l)
		i += int(l)
	}
	if out != len(dst) {
		return fmt.Errorf("%w: decoded %d of %d bytes", ErrSizeMismatch, out, len(dst))
	}
	return nil
}
