package codec

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// FuzzDecodeFrame asserts the frame decoder's contract on arbitrary
// bytes: it returns one of the typed codec errors or succeeds — it
// never panics, and a successful decode returns exactly the declared
// raw size.
func FuzzDecodeFrame(f *testing.F) {
	rng := rand.New(rand.NewSource(99))
	r := NewRegistry()
	payload := fieldLike(rng, 20, 64, func(i int) float64 { return math.Sqrt(float64(i)) })

	// Seed with one valid frame per codec...
	if _, err := r.Encode(Spec{ID: Delta}, "fz", 1, payload, 0); err != nil {
		f.Fatal(err)
	}
	dl, err := r.Encode(Spec{ID: Delta}, "fz", 2, payload, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), dl.Frame...))
	qz, err := r.Encode(Spec{ID: Quantize}, "fz", 1, payload, 20)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), qz.Frame...))
	ss, err := r.Encode(Spec{ID: Subsample}, "fz", 1, payload, 20)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), ss.Frame...))

	// ...and with the malformed shapes the typed errors name.
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1})
	f.Add([]byte{0, 0, frameVersion, 1, 0, 0, 0, 0, 0, 0, 0, 0})            // bad magic
	f.Add([]byte{magic0, magic1, 9, 1, 0, 0, 0, 0, 0, 0, 0, 0})             // bad version
	f.Add([]byte{magic0, magic1, frameVersion, 77, 0, 0, 0, 0, 0, 0, 0, 0}) // unknown codec
	trunc := append([]byte(nil), qz.Frame[:len(qz.Frame)-5]...)
	f.Add(trunc)
	wrongRaw := append([]byte(nil), dl.Frame...)
	binary.LittleEndian.PutUint32(wrongRaw[4:8], 1<<30)
	f.Add(wrongRaw)
	overMeta := append([]byte(nil), ss.Frame...)
	binary.LittleEndian.PutUint32(overMeta[8:12], uint32(len(overMeta)))
	f.Add(overMeta)

	typed := []error{
		ErrBadFrame, ErrUnknownCodec, ErrTruncated,
		ErrSizeMismatch, ErrBadMeta, ErrNoBase,
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		raw, _, err := reg(t).Decode(frame)
		if err != nil {
			for _, sentinel := range typed {
				if errors.Is(err, sentinel) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		_, rawSize, ierr := Inspect(frame)
		if ierr != nil {
			t.Fatalf("decode succeeded but Inspect failed: %v", ierr)
		}
		if len(raw) != rawSize {
			t.Fatalf("decode returned %d bytes, header declares %d", len(raw), rawSize)
		}
	})
}

// reg rebuilds the registry state the seed frames reference, so
// fuzzing can reach the base-resident delta decode path too.
func reg(t *testing.T) *Registry {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	r := NewRegistry()
	payload := fieldLike(rng, 20, 64, func(i int) float64 { return math.Sqrt(float64(i)) })
	if _, err := r.Encode(Spec{ID: Delta}, "fz", 1, payload, 0); err != nil {
		t.Fatal(err)
	}
	return r
}
