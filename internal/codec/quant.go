package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"insitu/internal/bufpool"
)

// The quantize codec bit-packs the float64 tail of a payload under an
// absolute max-error bound: values are mapped onto a uniform grid of
// 2^bits levels spanning the payload's [min, max], with bits chosen as
// the smallest width whose half-step quantization error satisfies the
// bound. Bytes before the float tail (marshal headers: name, box,
// count) travel verbatim. Payloads containing non-finite values, or
// needing more than 32 bits per value, fall back to a literal frame so
// the error bound is honored unconditionally (a literal frame has
// error 0).
//
// Quantize metadata:
//
//	[0]     mode: 0 literal, 1 packed
//	[1:5]   float-tail offset, uint32
//	[5]     bits per value (1..32)
//	[6:14]  grid origin (min value), float64
//	[14:22] grid step, float64
//
// in packed mode; literal mode carries only [0].
const (
	quantLiteral = 0
	quantPacked  = 1

	quantMetaLen = 1 + 4 + 1 + 8 + 8
	maxQuantBits = 32
)

func encodeQuantize(spec Spec, raw []byte, floatOff int) (Result, error) {
	count, err := checkTail(raw, floatOff)
	if err != nil {
		return Result{}, err
	}
	if count == 0 {
		return quantLiteralFrame(raw), nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	finite := true
	for i := 0; i < count; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(raw[floatOff+8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			finite = false
			break
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !finite {
		return quantLiteralFrame(raw), nil
	}
	rng := hi - lo
	maxErr := spec.MaxError
	if maxErr <= 0 {
		maxErr = DefaultRelError * rng
	}
	bits := 1
	for bits <= maxQuantBits {
		levels := float64(uint64(1)<<uint(bits) - 1)
		if rng == 0 || rng/levels/2 <= maxErr {
			break
		}
		bits++
	}
	if bits > maxQuantBits {
		return quantLiteralFrame(raw), nil
	}
	levels := uint64(1)<<uint(bits) - 1
	step := 0.0
	if rng > 0 {
		step = rng / float64(levels)
	}

	packedLen := (count*bits + 7) / 8
	frame := newFrame(Quantize, len(raw), quantMetaLen, floatOff+packedLen)
	meta := frame[headerSize : headerSize+quantMetaLen]
	meta[0] = quantPacked
	binary.LittleEndian.PutUint32(meta[1:5], uint32(floatOff))
	meta[5] = byte(bits)
	binary.LittleEndian.PutUint64(meta[6:14], math.Float64bits(lo))
	binary.LittleEndian.PutUint64(meta[14:22], math.Float64bits(step))
	body := frame[headerSize+quantMetaLen:]
	copy(body, raw[:floatOff])

	// Bit-pack LSB-first through a 64-bit accumulator, tracking the
	// actual worst-case reconstruction error for the metrics surface.
	pk := body[floatOff:]
	for i := range pk {
		pk[i] = 0
	}
	var acc uint64
	accBits := 0
	out := 0
	actualErr := 0.0
	for i := 0; i < count; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(raw[floatOff+8*i:]))
		var q uint64
		if step > 0 {
			q = uint64(math.Round((v - lo) / step))
			if q > levels {
				q = levels
			}
		}
		if e := math.Abs(v - (lo + float64(q)*step)); e > actualErr {
			actualErr = e
		}
		acc |= q << uint(accBits)
		accBits += bits
		for accBits >= 8 {
			pk[out] = byte(acc)
			out++
			acc >>= 8
			accBits -= 8
		}
	}
	if accBits > 0 {
		pk[out] = byte(acc)
		out++
	}
	return Result{Frame: frame[:headerSize+quantMetaLen+floatOff+out], MaxError: actualErr}, nil
}

// quantLiteralFrame wraps raw verbatim in a quantize frame (error 0).
func quantLiteralFrame(raw []byte) Result {
	frame := newFrame(Quantize, len(raw), 1, len(raw))
	frame[headerSize] = quantLiteral
	copy(frame[headerSize+1:], raw)
	return Result{Frame: frame}
}

func decodeQuantize(rawSize int, meta, body []byte) ([]byte, error) {
	if len(meta) < 1 {
		return nil, fmt.Errorf("%w: empty quantize meta", ErrBadMeta)
	}
	switch meta[0] {
	case quantLiteral:
		if len(body) != rawSize {
			return nil, fmt.Errorf("%w: literal body %d bytes, raw size %d", ErrSizeMismatch, len(body), rawSize)
		}
		raw := bufpool.Get(rawSize)
		copy(raw, body)
		return raw, nil
	case quantPacked:
	default:
		return nil, fmt.Errorf("%w: quantize mode %d", ErrBadMeta, meta[0])
	}
	if len(meta) != quantMetaLen {
		return nil, fmt.Errorf("%w: quantize meta %d bytes", ErrBadMeta, len(meta))
	}
	floatOff := int(binary.LittleEndian.Uint32(meta[1:5]))
	bits := int(meta[5])
	lo := math.Float64frombits(binary.LittleEndian.Uint64(meta[6:14]))
	step := math.Float64frombits(binary.LittleEndian.Uint64(meta[14:22]))
	if bits < 1 || bits > maxQuantBits {
		return nil, fmt.Errorf("%w: %d bits per value", ErrBadMeta, bits)
	}
	if floatOff < 0 || floatOff > rawSize || (rawSize-floatOff)%8 != 0 {
		return nil, fmt.Errorf("%w: float tail at %d of raw %d", ErrBadMeta, floatOff, rawSize)
	}
	count := (rawSize - floatOff) / 8
	packedLen := (count*bits + 7) / 8
	if len(body) != floatOff+packedLen {
		return nil, fmt.Errorf("%w: packed body %d bytes, want %d", ErrTruncated, len(body), floatOff+packedLen)
	}
	raw := bufpool.Get(rawSize)
	copy(raw, body[:floatOff])
	pk := body[floatOff:]
	mask := uint64(1)<<uint(bits) - 1
	var acc uint64
	accBits := 0
	in := 0
	for i := 0; i < count; i++ {
		for accBits < bits {
			acc |= uint64(pk[in]) << uint(accBits)
			in++
			accBits += 8
		}
		q := acc & mask
		acc >>= uint(bits)
		accBits -= bits
		v := lo + float64(q)*step
		binary.LittleEndian.PutUint64(raw[floatOff+8*i:], math.Float64bits(v))
	}
	return raw, nil
}
