package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"insitu/internal/bufpool"
)

// The subsample codec ships a coarse version of the float tail now —
// every Stride-th value, reconstructed by sample-and-hold — and
// retains the exact payload as a refinement block the consumer can
// request on demand (Registry.ApplyRefinement), modeling the paper's
// progressive coarse-grid-first transfer: the time-critical pull moves
// 1/Stride of the floats, and full fidelity arrives only when an
// analysis actually asks for it. The encode reports the sample-and-
// hold reconstruction error so the fidelity loss is observable.
//
// Subsample metadata:
//
//	[0]    stride (1..255)
//	[1:5]  float-tail offset, uint32
//	[5:7]  key length, uint16
//	[7:]   key bytes
func subMetaLen(key string) int { return 1 + 4 + 2 + len(key) }

func (r *Registry) encodeSubsample(spec Spec, key string, version int, raw []byte, floatOff int) (Result, error) {
	count, err := checkTail(raw, floatOff)
	if err != nil {
		return Result{}, err
	}
	stride := spec.Stride
	if stride <= 0 {
		stride = DefaultStride
	}
	if stride > 255 {
		stride = 255
	}
	if count == 0 || stride == 1 {
		// Nothing to coarsen: ship raw unframed.
		return Result{}, nil
	}
	coarse := (count + stride - 1) / stride
	metaLen := subMetaLen(key)
	frame := newFrame(Subsample, len(raw), metaLen, floatOff+8*coarse)
	meta := frame[headerSize : headerSize+metaLen]
	meta[0] = byte(stride)
	binary.LittleEndian.PutUint32(meta[1:5], uint32(floatOff))
	binary.LittleEndian.PutUint16(meta[5:7], uint16(len(key)))
	copy(meta[7:], key)
	body := frame[headerSize+metaLen:]
	copy(body, raw[:floatOff])
	maxErr := 0.0
	for i := 0; i < count; i++ {
		anchor := (i / stride) * stride
		word := binary.LittleEndian.Uint64(raw[floatOff+8*i:])
		if i == anchor {
			binary.LittleEndian.PutUint64(body[floatOff+8*(i/stride):], word)
			continue
		}
		held := binary.LittleEndian.Uint64(raw[floatOff+8*anchor:])
		e := math.Abs(math.Float64frombits(word) - math.Float64frombits(held))
		if e > maxErr || math.IsNaN(e) {
			maxErr = e
		}
	}
	r.refines.put(key, version, raw)
	return Result{Frame: frame[:headerSize+metaLen+floatOff+8*coarse], MaxError: maxErr}, nil
}

func decodeSubsample(rawSize int, meta, body []byte) ([]byte, error) {
	if len(meta) < 7 {
		return nil, fmt.Errorf("%w: subsample meta %d bytes", ErrBadMeta, len(meta))
	}
	stride := int(meta[0])
	floatOff := int(binary.LittleEndian.Uint32(meta[1:5]))
	keyLen := int(binary.LittleEndian.Uint16(meta[5:7]))
	if len(meta) != 7+keyLen {
		return nil, fmt.Errorf("%w: subsample key %d bytes in %d-byte meta", ErrBadMeta, keyLen, len(meta))
	}
	if stride < 2 {
		return nil, fmt.Errorf("%w: subsample stride %d", ErrBadMeta, stride)
	}
	if floatOff < 0 || floatOff > rawSize || (rawSize-floatOff)%8 != 0 {
		return nil, fmt.Errorf("%w: float tail at %d of raw %d", ErrBadMeta, floatOff, rawSize)
	}
	count := (rawSize - floatOff) / 8
	coarse := (count + stride - 1) / stride
	if len(body) != floatOff+8*coarse {
		return nil, fmt.Errorf("%w: coarse body %d bytes, want %d", ErrTruncated, len(body), floatOff+8*coarse)
	}
	raw := bufpool.Get(rawSize)
	copy(raw, body[:floatOff])
	for i := 0; i < count; i++ {
		word := binary.LittleEndian.Uint64(body[floatOff+8*(i/stride):])
		binary.LittleEndian.PutUint64(raw[floatOff+8*i:], word)
	}
	return raw, nil
}
