// Package comm provides an in-process SPMD message-passing runtime.
// It stands in for MPI on the primary compute resource: ranks are
// goroutines, point-to-point messages travel over matched channels, and
// collectives (barrier, reduce, allreduce, gather, broadcast) are built
// as deterministic binomial trees so that floating-point reductions are
// reproducible run to run.
//
// The in-situ stages of every analysis in the paper need only
// rank-local data plus collectives; this package supplies exactly that
// interface, so algorithm code is written as it would be against MPI.
package comm

import (
	"fmt"
	"sync"
)

// message is an in-flight point-to-point payload.
type message struct {
	from int
	tag  int
	data any
}

// World is a communicator spanning a fixed set of ranks.
type World struct {
	size int
	// mail[r] holds pending messages addressed to rank r.
	mail []*mailbox
}

// mailbox queues messages for one rank with (source, tag) matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	closed  bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// NewWorld creates a communicator with n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		panic("comm: world size must be >= 1")
	}
	w := &World{size: n, mail: make([]*mailbox, n)}
	for i := range w.mail {
		w.mail[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Rank is the per-goroutine handle for one SPMD process.
type Rank struct {
	w  *World
	id int
}

// Rank returns the handle for rank id; normally obtained inside Run.
func (w *World) Rank(id int) *Rank {
	if id < 0 || id >= w.size {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", id, w.size))
	}
	return &Rank{w: w, id: id}
}

// Run executes fn concurrently on every rank of a fresh world and
// blocks until all ranks return. It is the moral equivalent of
// mpirun -np n.
func Run(n int, fn func(r *Rank)) *World {
	w := NewWorld(n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(id int) {
			defer wg.Done()
			fn(w.Rank(id))
		}(i)
	}
	wg.Wait()
	return w
}

// ID returns this rank's number in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.size }

// Send delivers data to rank `to` with the given tag. Sends are
// buffered and never block (the mailbox grows as needed), matching
// MPI's buffered-send semantics used by the in-situ stages.
func (r *Rank) Send(to, tag int, data any) {
	if to < 0 || to >= r.w.size {
		panic(fmt.Sprintf("comm: send to invalid rank %d", to))
	}
	mb := r.w.mail[to]
	mb.mu.Lock()
	mb.pending = append(mb.pending, message{from: r.id, tag: tag, data: data})
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// Recv blocks until a message with matching source and tag arrives and
// returns its payload. Pass AnySource / AnyTag to wildcard-match; the
// actual source is returned.
func (r *Rank) Recv(from, tag int) (data any, source int) {
	mb := r.w.mail[r.id]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.pending {
			if (from == AnySource || m.from == from) && (tag == AnyTag || m.tag == tag) {
				mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
				return m.data, m.from
			}
		}
		mb.cond.Wait()
	}
}

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Internal tags reserved for collectives; user tags should be >= 0
// and < tagCollBase.
const (
	tagCollBase = 1 << 20
	tagBarrier  = tagCollBase + iota
	tagReduce
	tagBcast
	tagGather
	tagAllToAll
)

// Barrier blocks until every rank in the world has entered it. It is
// implemented as a reduce-to-root followed by a broadcast along a
// binomial tree, giving O(log n) depth.
func (r *Rank) Barrier() {
	r.reduceUp(tagBarrier, nil, func(a, b any) any { return nil })
	r.bcastDown(tagBarrier, nil)
}

// Reduce combines the per-rank values with op on a deterministic
// binomial tree and returns the result on rank root (nil elsewhere).
// op must be associative; child results are always combined in
// increasing-rank order so the evaluation tree is fixed.
func (r *Rank) Reduce(root int, value any, op func(a, b any) any) any {
	// Rotate ranks so root behaves as rank 0.
	v := r.reduceUpRooted(tagReduce, root, value, op)
	if r.id == root {
		return v
	}
	return nil
}

// Allreduce combines per-rank values with op and returns the combined
// result on every rank.
func (r *Rank) Allreduce(value any, op func(a, b any) any) any {
	v := r.reduceUpRooted(tagReduce, 0, value, op)
	return r.bcastDownRooted(tagBcast, 0, v)
}

// Broadcast sends root's value to every rank and returns it.
func (r *Rank) Broadcast(root int, value any) any {
	return r.bcastDownRooted(tagBcast, root, value)
}

// rankVal carries a value labelled with its originating rank through
// the gather tree.
type rankVal struct {
	rank int
	val  any
}

// Gather collects each rank's value on root, ordered by rank. Non-root
// ranks return nil.
func (r *Rank) Gather(root int, value any) []any {
	combined := r.reduceUpRooted(tagGather, root, []rankVal{{r.id, value}}, func(a, b any) any {
		return append(append([]rankVal{}, a.([]rankVal)...), b.([]rankVal)...)
	})
	if r.id == root {
		pairs := combined.([]rankVal)
		out := make([]any, r.w.size)
		for _, p := range pairs {
			out[p.rank] = p.val
		}
		return out
	}
	return nil
}

// AllGather collects each rank's value on every rank, ordered by rank.
func (r *Rank) AllGather(value any) []any {
	g := r.Gather(0, value)
	res := r.Broadcast(0, g)
	return res.([]any)
}

// AllToAll delivers send[j] from this rank to rank j and returns the
// slice of values received, indexed by source rank. len(send) must
// equal the world size.
func (r *Rank) AllToAll(send []any) []any {
	if len(send) != r.w.size {
		panic(fmt.Sprintf("comm: AllToAll send length %d != world size %d", len(send), r.w.size))
	}
	for j := 0; j < r.w.size; j++ {
		if j == r.id {
			continue
		}
		r.Send(j, tagAllToAll, send[j])
	}
	recv := make([]any, r.w.size)
	recv[r.id] = send[r.id]
	for n := 0; n < r.w.size-1; n++ {
		data, src := r.Recv(AnySource, tagAllToAll)
		recv[src] = data
	}
	r.Barrier()
	return recv
}

// relRank maps the absolute rank to a position in a tree rooted at
// `root` (root becomes 0).
func relRank(id, root, size int) int  { return (id - root + size) % size }
func absRank(rel, root, size int) int { return (rel + root) % size }

// reduceUpRooted performs a binomial-tree reduction toward root and
// returns the combined value on root (partial values elsewhere).
func (r *Rank) reduceUpRooted(tag, root int, value any, op func(a, b any) any) any {
	size := r.w.size
	rel := relRank(r.id, root, size)
	// Collect from children rel + 2^k while they exist. Children are
	// received in increasing-offset order for determinism.
	for k := 1; k < size; k <<= 1 {
		if rel&k != 0 {
			// This node sends to its parent and is done.
			parent := absRank(rel&^k, root, size)
			r.Send(parent, tag, value)
			return value
		}
		childRel := rel | k
		if childRel < size {
			data, _ := r.Recv(absRank(childRel, root, size), tag)
			value = op(value, data)
		}
	}
	return value
}

// reduceUp is reduceUpRooted with root 0 (used by Barrier).
func (r *Rank) reduceUp(tag int, value any, op func(a, b any) any) any {
	return r.reduceUpRooted(tag, 0, value, op)
}

// bcastDownRooted distributes root's value along the binomial tree and
// returns it on every rank.
func (r *Rank) bcastDownRooted(tag, root int, value any) any {
	size := r.w.size
	rel := relRank(r.id, root, size)
	// Find the highest power-of-two bit <= size to know the fan-out.
	top := 1
	for top < size {
		top <<= 1
	}
	if rel != 0 {
		// Receive from parent: clear the lowest set bit.
		parent := absRank(rel&(rel-1), root, size)
		value, _ = r.Recv(parent, tag)
	}
	// Forward to children: set bits above the lowest set bit of rel.
	low := top
	if rel != 0 {
		low = rel & (-rel)
	}
	for k := low >> 1; k >= 1; k >>= 1 {
		childRel := rel | k
		if childRel != rel && childRel < size {
			r.Send(absRank(childRel, root, size), tag, value)
		}
	}
	return value
}

// bcastDown is bcastDownRooted with root 0.
func (r *Rank) bcastDown(tag int, value any) any {
	return r.bcastDownRooted(tag, 0, value)
}
