package comm

import (
	"sync/atomic"
	"testing"
)

// worldSizes exercises power-of-two and awkward sizes.
var worldSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestSendRecv(t *testing.T) {
	Run(2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 5, "hello")
		} else {
			data, src := r.Recv(0, 5)
			if data.(string) != "hello" || src != 0 {
				t.Errorf("recv got %v from %d", data, src)
			}
		}
	})
}

func TestRecvTagMatching(t *testing.T) {
	Run(2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, "first")
			r.Send(1, 2, "second")
		} else {
			// Receive out of order by tag.
			d2, _ := r.Recv(0, 2)
			d1, _ := r.Recv(0, 1)
			if d1.(string) != "first" || d2.(string) != "second" {
				t.Errorf("tag matching broken: %v %v", d1, d2)
			}
		}
	})
}

func TestRecvWildcard(t *testing.T) {
	Run(3, func(r *Rank) {
		if r.ID() != 0 {
			r.Send(0, 9, r.ID())
			return
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			data, src := r.Recv(AnySource, AnyTag)
			if data.(int) != src {
				t.Errorf("payload should equal source")
			}
			seen[src] = true
		}
		if !seen[1] || !seen[2] {
			t.Errorf("missing sources: %v", seen)
		}
	})
}

func TestBarrier(t *testing.T) {
	for _, n := range worldSizes {
		var before, after atomic.Int32
		Run(n, func(r *Rank) {
			before.Add(1)
			r.Barrier()
			if got := before.Load(); got != int32(n) {
				t.Errorf("n=%d: rank %d passed barrier with only %d arrivals", n, r.ID(), got)
			}
			after.Add(1)
		})
		if after.Load() != int32(n) {
			t.Fatalf("n=%d: not all ranks exited", n)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, n := range worldSizes {
		want := n * (n - 1) / 2
		Run(n, func(r *Rank) {
			got := r.Allreduce(r.ID(), func(a, b any) any { return a.(int) + b.(int) })
			if got.(int) != want {
				t.Errorf("n=%d rank %d: allreduce sum want %d, got %v", n, r.ID(), want, got)
			}
		})
	}
}

func TestReduceToNonZeroRoot(t *testing.T) {
	for _, n := range worldSizes {
		root := n - 1
		want := n * (n - 1) / 2
		Run(n, func(r *Rank) {
			got := r.Reduce(root, r.ID(), func(a, b any) any { return a.(int) + b.(int) })
			if r.ID() == root {
				if got.(int) != want {
					t.Errorf("n=%d: reduce at root want %d, got %v", n, want, got)
				}
			} else if got != nil {
				t.Errorf("non-root rank %d received %v", r.ID(), got)
			}
		})
	}
}

func TestBroadcast(t *testing.T) {
	for _, n := range worldSizes {
		for _, root := range []int{0, n / 2, n - 1} {
			Run(n, func(r *Rank) {
				var val any
				if r.ID() == root {
					val = "payload"
				}
				got := r.Broadcast(root, val)
				if got.(string) != "payload" {
					t.Errorf("n=%d root=%d rank %d: broadcast got %v", n, root, r.ID(), got)
				}
			})
		}
	}
}

func TestGatherOrdering(t *testing.T) {
	for _, n := range worldSizes {
		for _, root := range []int{0, n - 1} {
			Run(n, func(r *Rank) {
				got := r.Gather(root, 10*r.ID())
				if r.ID() != root {
					if got != nil {
						t.Errorf("non-root got %v", got)
					}
					return
				}
				if len(got) != n {
					t.Errorf("gather length %d, want %d", len(got), n)
					return
				}
				for i, v := range got {
					if v.(int) != 10*i {
						t.Errorf("n=%d: gather[%d] = %v, want %d", n, i, v, 10*i)
					}
				}
			})
		}
	}
}

func TestAllGather(t *testing.T) {
	Run(5, func(r *Rank) {
		got := r.AllGather(r.ID() * r.ID())
		for i, v := range got {
			if v.(int) != i*i {
				t.Errorf("allgather[%d] = %v", i, v)
			}
		}
	})
}

func TestAllToAll(t *testing.T) {
	n := 4
	Run(n, func(r *Rank) {
		send := make([]any, n)
		for j := range send {
			send[j] = r.ID()*100 + j
		}
		recv := r.AllToAll(send)
		for src, v := range recv {
			if v.(int) != src*100+r.ID() {
				t.Errorf("rank %d: recv[%d] = %v, want %d", r.ID(), src, v, src*100+r.ID())
			}
		}
	})
}

// TestAllreduceDeterminism checks the reduction tree is fixed: a
// non-commutative operation must give identical results across
// repeats.
func TestAllreduceDeterminism(t *testing.T) {
	concat := func(a, b any) any { return a.(string) + b.(string) }
	var first string
	for trial := 0; trial < 5; trial++ {
		var results [8]string
		Run(8, func(r *Rank) {
			results[r.ID()] = r.Allreduce(string(rune('a'+r.ID())), concat).(string)
		})
		for i := 1; i < 8; i++ {
			if results[i] != results[0] {
				t.Fatalf("allreduce inconsistent across ranks: %q vs %q", results[i], results[0])
			}
		}
		if trial == 0 {
			first = results[0]
		} else if results[0] != first {
			t.Fatalf("allreduce nondeterministic across runs: %q vs %q", results[0], first)
		}
	}
}

func TestConsecutiveCollectives(t *testing.T) {
	// Back-to-back collectives must not cross-match messages.
	Run(6, func(r *Rank) {
		for i := 0; i < 20; i++ {
			sum := r.Allreduce(1, func(a, b any) any { return a.(int) + b.(int) })
			if sum.(int) != 6 {
				t.Errorf("iteration %d: sum %v", i, sum)
				return
			}
			r.Barrier()
		}
	})
}

func TestWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size world must panic")
		}
	}()
	NewWorld(0)
}

func TestSendInvalidRank(t *testing.T) {
	w := NewWorld(1)
	defer func() {
		if recover() == nil {
			t.Fatal("send to invalid rank must panic")
		}
	}()
	w.Rank(0).Send(3, 0, nil)
}
