package comm_test

import (
	"fmt"

	"insitu/internal/comm"
)

// An SPMD program: every rank contributes its id, the allreduce gives
// every rank the same sum — the pattern the fully in-situ statistics
// learn stage uses.
func ExampleRun() {
	results := make([]int, 4)
	comm.Run(4, func(r *comm.Rank) {
		sum := r.Allreduce(r.ID(), func(a, b any) any { return a.(int) + b.(int) })
		results[r.ID()] = sum.(int)
	})
	fmt.Println(results)
	// Output:
	// [6 6 6 6]
}
