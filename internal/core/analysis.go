// Package core implements the paper's hybrid in-situ/in-transit
// analysis framework: analyses are decomposed into a massively
// parallel in-situ stage running on the simulation ranks and a
// small-scale or serial in-transit stage running on staging buckets,
// connected by the DART transport and the DataSpaces scheduler, with
// successive timesteps temporally multiplexed across buckets.
//
// The package also provides the paper's three reformulated analyses
// (descriptive statistics, merge-tree topology, volume rendering) in
// both fully in-situ and hybrid variants, plus the auto-correlative
// statistics extension sketched in its conclusion.
package core

import (
	"insitu/internal/comm"
	"insitu/internal/grid"
	"insitu/internal/sim"
	"insitu/internal/staging"
)

// Ctx is the per-rank, per-step context handed to in-situ stages.
type Ctx struct {
	Comm   *comm.Rank
	Sim    *sim.Rank
	Step   int
	Global grid.Box
	Owned  grid.Box
	Decomp *grid.Decomp
	// State persists per rank across steps, for analyses that
	// accumulate (for example temporal autocorrelation ring buffers).
	State map[string]any
}

// Analysis is the common contract: a name (which also keys descriptors
// and tasks in DataSpaces) and a cadence in steps. The paper's runs
// analyze every step in the benchmarks, every ~10th in production.
type Analysis interface {
	Name() string
	Every() int
}

// InSituAnalysis completes entirely on the primary resource. Its
// result (returned by rank 0; other ranks may return nil) is stored in
// the run report. The stage may use collectives through ctx.Comm.
type InSituAnalysis interface {
	Analysis
	RunInSitu(ctx *Ctx) (any, error)
}

// HybridAnalysis is split: InSituStage runs per rank and returns the
// intermediate payload to stage (orders of magnitude smaller than the
// raw block); InTransit runs once per step on a staging bucket over
// all ranks' payloads, ordered by rank.
type HybridAnalysis interface {
	Analysis
	InSituStage(ctx *Ctx) ([]byte, error)
	InTransit(step int, payloads [][]byte) (any, error)
}

// StreamInput is one payload delivered to a streaming in-transit
// stage in arrival order.
type StreamInput = staging.StreamInput

// StreamingHybridAnalysis is a hybrid analysis whose in-transit stage
// consumes payloads as their transfers complete instead of waiting for
// the full set — the paper's proposed streaming improvement, hiding
// in-transit compute behind data movement. When an analysis implements
// both InTransit and InTransitStream, the streaming stage is used.
type StreamingHybridAnalysis interface {
	Analysis
	InSituStage(ctx *Ctx) ([]byte, error)
	InTransitStream(step int, inputs <-chan StreamInput) (any, error)
}

// hybridStage is the producer-side contract shared by both hybrid
// kinds.
type hybridStage interface {
	Analysis
	InSituStage(ctx *Ctx) ([]byte, error)
}

// ShapedStage is an optional extension of hybrid analyses: the
// admission ladder's "shaped" rung asks the in-situ stage for a
// reduced intermediate payload (a coarser downsample, fewer bins, a
// truncated feature set) instead of abandoning the transit path
// entirely. Level is the shaping intensity, 1 being the ladder's
// single shaped rung; higher levels mean coarser payloads. Analyses
// that do not implement ShapedStage skip the rung: the ladder maps
// shaped straight to the in-situ fallback for them.
type ShapedStage interface {
	InSituStageShaped(ctx *Ctx, level int) ([]byte, error)
}

// QuantizableStage is an optional extension of hybrid analyses whose
// intermediate payload carries a float64 tail the lossy transfer-path
// codecs (quantize, subsample) can transform. PayloadFloatTail locates
// the tail within one payload the stage produced, returning ok false
// when this particular payload has no transformable tail (the codec
// layer then uses an exact encoding instead). Analyses that do not
// implement QuantizableStage skip the ladder's quantized rung.
type QuantizableStage interface {
	PayloadFloatTail(payload []byte) (int, bool)
}

// InSituFallback is an optional extension of hybrid analyses: when the
// pipeline decides the transit path is unhealthy (partition detected by
// the health probe, or a task dead-lettered), it runs RunFallback —
// the fully in-situ reformulation of the same analysis — on the
// simulation ranks instead of blocking on staging. The step's stored
// result is then a Degraded value wrapping the fallback output.
type InSituFallback interface {
	RunFallback(ctx *Ctx) (any, error)
}

// Degraded is the stored result of a hybrid analysis step that could
// not use the transit path. Value holds the in-situ fallback's output
// (nil when the analysis provides no fallback, or when the step was
// dead-lettered after the data had already left the ranks).
type Degraded struct {
	Reason string
	Value  any
}

// due reports whether an analysis runs at a step (steps are 1-based;
// cadence n means steps n, 2n, ...).
func due(a Analysis, step int) bool {
	n := a.Every()
	if n <= 0 {
		n = 1
	}
	return step%n == 0
}
