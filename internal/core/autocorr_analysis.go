package core

import (
	"fmt"

	"insitu/internal/stats"
)

// AutoCorrHybrid implements the hybrid auto-correlative statistical
// technique the paper's conclusion proposes as future work: each rank
// keeps a ring buffer of its recent local snapshots and updates
// per-lag covariance accumulators in-situ; the (tiny) accumulators
// move to the staging area where a serial stage combines them into
// global temporal autocorrelations.
type AutoCorrHybrid struct {
	// Var is the variable whose temporal autocorrelation is tracked
	// (default "T").
	Var string
	// Lags in steps (default {1, 5, 10} — bracketing the ignition-
	// kernel lifetime).
	Lags   []int
	EveryN int
}

// Name implements Analysis.
func (a *AutoCorrHybrid) Name() string { return "hybrid auto-correlation" }

// Every implements Analysis.
func (a *AutoCorrHybrid) Every() int { return a.EveryN }

func (a *AutoCorrHybrid) lags() []int {
	if len(a.Lags) > 0 {
		return a.Lags
	}
	return []int{1, 5, 10}
}

const autoCorrStateKey = "autocorr"

// InSituStage implements HybridAnalysis: push the current snapshot
// into the per-rank correlator and ship the accumulators.
func (a *AutoCorrHybrid) InSituStage(ctx *Ctx) ([]byte, error) {
	name := a.Var
	if name == "" {
		name = "T"
	}
	f := ctx.Sim.Field(name)
	if f == nil {
		return nil, fmt.Errorf("autocorr: unknown variable %q", name)
	}
	ac, ok := ctx.State[autoCorrStateKey].(*stats.AutoCorrelator)
	if !ok {
		var err error
		ac, err = stats.NewAutoCorrelator(a.lags()...)
		if err != nil {
			return nil, err
		}
		ctx.State[autoCorrStateKey] = ac
	}
	ac.Push(f.Data)
	return ac.Marshal(), nil
}

// AutoCorrResult is the in-transit output: the global per-lag
// autocorrelation estimates.
type AutoCorrResult struct {
	Lags []int
	Corr []float64
	N    int64 // paired observations behind the lag-0 estimate
}

// InTransit implements HybridAnalysis: combine the ranks' accumulators
// and report the correlations.
func (a *AutoCorrHybrid) InTransit(step int, payloads [][]byte) (any, error) {
	var global *stats.AutoCorrelator
	for i, p := range payloads {
		ac, err := stats.UnmarshalAutoCorrelator(p)
		if err != nil {
			return nil, fmt.Errorf("autocorr: payload %d: %w", i, err)
		}
		if global == nil {
			global = ac
			continue
		}
		if err := global.Combine(ac); err != nil {
			return nil, err
		}
	}
	if global == nil {
		return nil, fmt.Errorf("autocorr: no payloads")
	}
	res := &AutoCorrResult{Lags: global.Lags, Corr: global.Corr()}
	if len(global.Lags) > 0 {
		res.N = global.Acc(0).N
	}
	return res, nil
}
