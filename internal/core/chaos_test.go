package core

import (
	"math"
	"os"
	"testing"
	"time"

	"insitu/internal/codec"
	"insitu/internal/faults"
	"insitu/internal/stats"
)

// chaosSteps is the soak length: at least 50 pipeline steps under
// active fault injection.
const chaosSteps = 50

// runChaos drives a full hybrid pipeline through a fault storm —
// random drops, timeouts and corruptions, one link-partition window
// cutting off both staging buckets, and one bucket crash — and checks
// the robustness contract: the run terminates (no deadlock), every
// step's result is either correct or explicitly Degraded, every
// injected corruption is caught by the checksum framing, and nothing
// leaks. Sequence-level seed determinism is asserted directly in the
// faults package tests; here the same seed re-runs the same schedule.
func runChaos(t *testing.T, seed int64, steps int) {
	t.Helper()
	simCfg := testSimConfig(2, 1, 1)
	cfg := DefaultConfig(simCfg)
	cfg.DSServers = 2
	cfg.Buckets = 2
	cfg.StepBudget = 200 * time.Millisecond
	// The soak runs with delta framing on: corruption must be caught on
	// the encoded bytes, before any decoder sees them.
	cfg.Codecs = map[string]codec.Spec{"*": {ID: codec.Delta}}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Buckets register first, so endpoints 0 and 1 are the staging
	// buckets; the partition window cuts both off, which the step
	// probe must detect and answer with in-situ fallbacks.
	// The partition window is placed in decision-index space relative
	// to the run length: each step costs at least one probe decision
	// plus the task pulls, so [steps, steps+40) opens partway through
	// any run and closes well before the drain.
	inj := faults.New(faults.Config{
		Seed:    seed,
		Default: faults.Rates{Drop: 0.05, Timeout: 0.03, Corrupt: 0.05},
		Partitions: []faults.Window{
			{From: steps, Until: steps + 40, Endpoints: []int{0, 1}},
		},
	})
	p.Network().SetFaults(inj)

	sa := &StatsHybrid{Vars: []string{"T"}, EveryN: 1}
	p.Register(sa)

	// One deterministic bucket crash: the closed kill channel fires at
	// bucket 0's first task assignment, requeueing the task and
	// respawning the bucket.
	p.Staging().CrashBucket(0)

	type outcome struct {
		rep *Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := p.Run(steps)
		done <- outcome{rep, err}
	}()
	var rep *Report
	select {
	case oc := <-done:
		if oc.err != nil {
			t.Fatalf("chaos run failed hard: %v", oc.err)
		}
		rep = oc.rep
	case <-time.After(120 * time.Second):
		t.Fatal("chaos run deadlocked")
	}

	// Every step must be accounted for: a correct result or an
	// explicit Degraded marker — never silently missing.
	npts := int64(simCfg.Global.Size())
	checkDerived := func(step int, v any) {
		m, ok := v.(map[string]stats.Derived)
		if !ok {
			t.Errorf("step %d: unexpected result type %T", step, v)
			return
		}
		d := m["T"]
		if d.N != npts {
			t.Errorf("step %d: derived over %d points, want %d", step, d.N, npts)
		}
		if math.IsNaN(d.Mean) || math.IsInf(d.Mean, 0) {
			t.Errorf("step %d: non-finite mean %v", step, d.Mean)
		}
	}
	degraded := 0
	for s := 1; s <= steps; s++ {
		v := rep.Result(sa.Name(), s)
		if v == nil {
			t.Errorf("step %d: result silently lost", s)
			continue
		}
		if dg, ok := v.(Degraded); ok {
			degraded++
			if dg.Reason == "" {
				t.Errorf("step %d: Degraded without a reason", s)
			}
			// Dead-lettered steps carry no value; fallback steps carry
			// the full in-situ reduction.
			if dg.Value != nil {
				checkDerived(s, dg.Value)
			}
			continue
		}
		checkDerived(s, v)
	}

	res := rep.Resilience
	counts := inj.CounterMap()
	t.Logf("seed %d: faults=%+v injected=%v degraded=%d", seed, res, counts, degraded)

	// The partition window must have forced at least one degraded step,
	// and the scheduled bucket crash must have been absorbed.
	if res.DegradedSteps == 0 || degraded == 0 {
		t.Error("partition window produced no degraded steps")
	}
	if int64(degraded) > res.DegradedSteps {
		t.Errorf("stored %d degraded markers but counted %d degraded steps", degraded, res.DegradedSteps)
	}
	if res.Crashes < 1 {
		t.Errorf("bucket crash not recorded: %+v", res)
	}
	if res.Faults == 0 || res.Retries == 0 {
		t.Errorf("fault storm did not exercise the retry path: %+v", res)
	}

	// Checksum framing must catch 100% of injected corruptions: no
	// corrupted payload is ever delivered to a handler.
	if res.ChecksumFailures != counts["corrupt"] {
		t.Errorf("caught %d corruptions, injector produced %d", res.ChecksumFailures, counts["corrupt"])
	}

	// No pinned-region leaks: requeues re-pull before release,
	// dead-letters release explicitly, successes release normally.
	if n := p.PinnedRegions(); n != 0 {
		t.Errorf("%d intermediate regions still pinned after drain", n)
	}

	// The codec layer was live under the storm: payloads were framed
	// and every delivered result above decoded correctly.
	if rep.Codec.RawBytes == 0 {
		t.Error("delta framing recorded no registrations")
	}
	t.Logf("codec economy under chaos: %+v ratio=%.2f", rep.Codec, rep.Codec.Ratio())
}

// TestDegradedFallback: with the staging buckets partitioned for the
// whole run, every step's probe fails and every hybrid step must run
// its in-situ fallback — producing full-quality Degraded results with
// no task ever submitted and nothing pinned or lost.
func TestDegradedFallback(t *testing.T) {
	simCfg := testSimConfig(2, 1, 1)
	cfg := DefaultConfig(simCfg)
	cfg.DSServers = 2
	cfg.Buckets = 2
	cfg.StepBudget = 50 * time.Millisecond
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Network().SetFaults(faults.New(faults.Config{
		Seed:       7,
		Partitions: []faults.Window{{From: 0, Until: 1 << 30, Endpoints: []int{0, 1}}},
	}))
	sa := &StatsHybrid{Vars: []string{"T"}, EveryN: 1}
	p.Register(sa)
	const steps = 4
	rep, err := p.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	npts := int64(simCfg.Global.Size())
	for s := 1; s <= steps; s++ {
		dg, ok := rep.Result(sa.Name(), s).(Degraded)
		if !ok {
			t.Fatalf("step %d: want Degraded, got %T", s, rep.Result(sa.Name(), s))
		}
		m, ok := dg.Value.(map[string]stats.Derived)
		if !ok || m["T"].N != npts {
			t.Fatalf("step %d: fallback value wrong: %+v", s, dg.Value)
		}
	}
	if rep.Resilience.DegradedSteps != steps {
		t.Fatalf("degraded steps = %d, want %d", rep.Resilience.DegradedSteps, steps)
	}
	if got := rep.Metrics.Total(sa.Name()).MoveBytes; got != 0 {
		t.Fatalf("degraded run moved %d intermediate bytes, want 0", got)
	}
	if n := p.PinnedRegions(); n != 0 {
		t.Fatalf("%d regions pinned after fully degraded run", n)
	}
}

// TestChaosSoak is the fixed-seed soak: >= 50 steps under drops,
// timeouts, corruption, one partition window and one bucket crash.
func TestChaosSoak(t *testing.T) {
	runChaos(t, 42, chaosSteps)
}

// TestChaosSmoke is the short randomized-seed smoke run (make chaos):
// a fresh seed each invocation hunts schedule-dependent bugs the fixed
// seed cannot reach. Skipped unless CHAOS_SMOKE is set so the regular
// test suite stays deterministic.
func TestChaosSmoke(t *testing.T) {
	if os.Getenv("CHAOS_SMOKE") == "" {
		t.Skip("set CHAOS_SMOKE=1 to run the randomized-seed chaos smoke")
	}
	seed := time.Now().UnixNano()
	runChaos(t, seed, 12)
}
