package core

import (
	"reflect"
	"testing"

	"insitu/internal/codec"
	"insitu/internal/render"
)

// runCodecPipeline runs a 2x2-rank hybrid viz+stats pipeline with the
// given codec config and returns the report. The viz route stages at
// full resolution (factor 1) so the payload's float tail dominates the
// marshal header; kernelRate damps the sim's random ignition kernels
// so consecutive timesteps stay close (the regime delta exploits).
func runCodecPipeline(t *testing.T, codecs map[string]codec.Spec, steps int, kernelRate float64) *Report {
	t.Helper()
	simCfg := testSimConfig(2, 2, 1)
	simCfg.KernelRate = kernelRate
	cfg := DefaultConfig(simCfg)
	cfg.Codecs = codecs
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Register(NewVizHybrid(16, 12, 1))
	p.Register(&StatsHybrid{Vars: []string{"T"}, EveryN: 1})
	rep, err := p.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	if n := p.PinnedRegions(); n != 0 {
		t.Fatalf("%d regions pinned after drain", n)
	}
	return rep
}

// TestCodecIdentityMatchesLegacyPath: an explicit identity codec
// config reproduces the no-config pipeline exactly — same results,
// same bytes on the wire — so the codec layer is a strict no-op until
// a codec is selected.
func TestCodecIdentityMatchesLegacyPath(t *testing.T) {
	const steps = 3
	plain := runCodecPipeline(t, nil, steps, 0.6)
	ident := runCodecPipeline(t, map[string]codec.Spec{"*": {ID: codec.Identity}}, steps, 0.6)
	if plain.Net.BytesMoved != ident.Net.BytesMoved {
		t.Fatalf("identity codec moved %d wire bytes, legacy moved %d",
			ident.Net.BytesMoved, plain.Net.BytesMoved)
	}
	if !reflect.DeepEqual(plain.Results, ident.Results) {
		t.Fatal("identity codec changed analysis results")
	}
	if ident.Codec.RawBytes != ident.Codec.EncodedBytes {
		t.Fatalf("identity must pin raw bytes unchanged: %+v", ident.Codec)
	}
}

// TestCodecDeltaExact: delta framing on every route reproduces the
// plain run's results bit-for-bit (the codec is exact) while moving
// fewer bytes over the interconnect.
func TestCodecDeltaExact(t *testing.T) {
	const steps = 4
	plain := runCodecPipeline(t, nil, steps, 0.05)
	delta := runCodecPipeline(t, map[string]codec.Spec{"*": {ID: codec.Delta}}, steps, 0.05)
	if !reflect.DeepEqual(plain.Results, delta.Results) {
		t.Fatal("delta-framed run must produce identical results")
	}
	if delta.Codec.MaxError != 0 {
		t.Fatalf("delta recorded max error %g, want 0", delta.Codec.MaxError)
	}
	if delta.Codec.RawBytes == 0 || delta.Codec.EncodedBytes >= delta.Codec.RawBytes {
		t.Fatalf("delta produced no byte economy: %+v", delta.Codec)
	}
	if delta.Net.BytesMoved >= plain.Net.BytesMoved {
		t.Fatalf("delta moved %d wire bytes, plain moved %d — encoded frames must shrink traffic",
			delta.Net.BytesMoved, plain.Net.BytesMoved)
	}
	t.Logf("delta: wire %d -> %d bytes, codec ratio %.2fx",
		plain.Net.BytesMoved, delta.Net.BytesMoved, delta.Codec.Ratio())
}

// TestCodecQuantizeVizPath: quantizing the viz route cuts its
// bytes-on-wire by >= 3x at a bounded, recorded reconstruction error,
// and every step still renders a real image on the transit path.
func TestCodecQuantizeVizPath(t *testing.T) {
	const steps = 4
	plain := runCodecPipeline(t, nil, steps, 0.6)
	quant := runCodecPipeline(t, map[string]codec.Spec{
		"hybrid visualization": {ID: codec.Quantize},
	}, steps, 0.6)
	for s := 1; s <= steps; s++ {
		if _, ok := quant.Result("hybrid visualization", s).(*render.Image); !ok {
			t.Fatalf("step %d: quantized viz did not render on the transit path: %T",
				s, quant.Result("hybrid visualization", s))
		}
	}
	// Stats results are untouched (that route stayed identity).
	if !reflect.DeepEqual(plain.Results["hybrid statistics"], quant.Results["hybrid statistics"]) {
		t.Fatal("quantizing the viz route must not perturb the stats route")
	}
	if r := quant.Codec.Ratio(); r < 3 {
		t.Fatalf("quantized viz ratio %.2fx, want >= 3x", r)
	}
	if quant.Codec.MaxError <= 0 {
		t.Fatal("quantize must record its bounded reconstruction error")
	}
	if quant.Net.BytesMoved >= plain.Net.BytesMoved {
		t.Fatalf("quantize moved %d wire bytes, plain moved %d",
			quant.Net.BytesMoved, plain.Net.BytesMoved)
	}
	t.Logf("quantize: wire %d -> %d bytes, ratio %.2fx, max err %g",
		plain.Net.BytesMoved, quant.Net.BytesMoved, quant.Codec.Ratio(), quant.Codec.MaxError)
}
