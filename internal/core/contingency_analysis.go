package core

import (
	"fmt"

	"insitu/internal/stats"
)

// ContingencyHybrid computes a bivariate contingency table between two
// simulation variables in the hybrid decomposition: per-rank tables
// in-situ (no communication), cellwise combination and the
// information-theoretic derive (entropies, mutual information,
// chi-squared independence test) in-transit. It deploys the parallel
// contingency statistics of Pébay, Thompson & Bennett (CLUSTER 2010),
// part of the statistics toolkit the paper's §III builds on.
type ContingencyHybrid struct {
	// VarX and VarY are the paired variables (defaults "T", "Y_OH").
	VarX, VarY string
	// XBins x YBins cells over [XRange, YRange) (defaults 16x16 over
	// the proxy's physical ranges).
	XBins, YBins   int
	XRange, YRange [2]float64
	EveryN         int
}

// Name implements Analysis.
func (c *ContingencyHybrid) Name() string { return "hybrid contingency statistics" }

// Every implements Analysis.
func (c *ContingencyHybrid) Every() int { return c.EveryN }

func (c *ContingencyHybrid) params() (string, string, int, int, [2]float64, [2]float64) {
	vx, vy := c.VarX, c.VarY
	if vx == "" {
		vx = "T"
	}
	if vy == "" {
		vy = "Y_OH"
	}
	xb, yb := c.XBins, c.YBins
	if xb < 1 {
		xb = 16
	}
	if yb < 1 {
		yb = 16
	}
	xr, yr := c.XRange, c.YRange
	if xr == ([2]float64{}) {
		xr = [2]float64{0, 2.5}
	}
	if yr == ([2]float64{}) {
		yr = [2]float64{0, 0.3}
	}
	return vx, vy, xb, yb, xr, yr
}

// InSituStage implements HybridAnalysis: the communication-free learn.
func (c *ContingencyHybrid) InSituStage(ctx *Ctx) ([]byte, error) {
	vx, vy, xb, yb, xr, yr := c.params()
	fx := ctx.Sim.Field(vx)
	fy := ctx.Sim.Field(vy)
	if fx == nil || fy == nil {
		return nil, fmt.Errorf("contingency: unknown variable %q or %q", vx, vy)
	}
	tab, err := stats.NewContingency(xr[0], xr[1], xb, yr[0], yr[1], yb)
	if err != nil {
		return nil, err
	}
	if err := tab.UpdateBatchParallel(fx.Data, fy.Data); err != nil {
		return nil, err
	}
	return tab.Marshal(), nil
}

// ContingencyResult is the in-transit output.
type ContingencyResult struct {
	VarX, VarY string
	Derived    stats.ContingencyDerived
	Table      *stats.Contingency
}

// InTransit implements HybridAnalysis: combine and derive, serially.
func (c *ContingencyHybrid) InTransit(step int, payloads [][]byte) (any, error) {
	var global *stats.Contingency
	for i, p := range payloads {
		tab, err := stats.UnmarshalContingency(p)
		if err != nil {
			return nil, fmt.Errorf("contingency: payload %d: %w", i, err)
		}
		if global == nil {
			global = tab
			continue
		}
		if err := global.Combine(tab); err != nil {
			return nil, err
		}
	}
	if global == nil {
		return nil, fmt.Errorf("contingency: no payloads")
	}
	vx, vy, _, _, _, _ := c.params()
	return &ContingencyResult{VarX: vx, VarY: vy, Derived: global.Derive(), Table: global}, nil
}
