package core

import (
	"math"
	"testing"

	"insitu/internal/grid"
	"insitu/internal/mergetree"
	"insitu/internal/render"
	"insitu/internal/stats"
)

// TestStreamingTopologyMatchesBuffered: the streaming in-transit
// variant must produce exactly the same global tree as the buffered
// one, and both must match the serial reference.
func TestStreamingTopologyMatchesBuffered(t *testing.T) {
	const steps = 3
	simCfg := testSimConfig(2, 2, 2)

	run := func(a Analysis) *TopologyResult {
		p, err := NewPipeline(DefaultConfig(simCfg))
		if err != nil {
			t.Fatal(err)
		}
		p.Register(a)
		rep, err := p.Run(steps)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Result(a.Name(), steps).(*TopologyResult)
	}
	buffered := run(NewTopologyHybrid())
	streaming := run(NewTopologyStreaming())

	reduce := func(tr *mergetree.Tree) *mergetree.Tree {
		return mergetree.Reduce(tr, func(n *mergetree.Node) bool { return false })
	}
	if !mergetree.Equal(reduce(buffered.Tree), reduce(streaming.Tree)) {
		t.Fatal("streaming in-transit stage produced a different tree")
	}
	want := globalFields(t, simCfg, steps, []string{"T"})["T"]
	serial := reduce(mergetree.FromField(want, simCfg.Global))
	if !mergetree.Equal(serial, reduce(streaming.Tree)) {
		t.Fatal("streaming tree differs from serial reference")
	}
	if streaming.Stream.Declared == 0 {
		t.Fatal("streaming stats missing")
	}
}

// TestStreamingOverlapsMovement: with transfers stretched into real
// time, the streaming handler finishes soon after the last transfer,
// while the buffered handler only *starts* then. We assert the
// streaming task's total span is well below pull+compute serialized.
func TestStreamingOverlapsMovement(t *testing.T) {
	// This behaviour is exercised at the staging layer where timing is
	// controllable; see staging's TestStreamingHandlerOverlap. Here we
	// just confirm the pipeline wires a streaming handler end to end
	// with results intact (done above) and that the buffered path is
	// untouched by the new registration logic.
	simCfg := testSimConfig(2, 1, 1)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Register(NewTopologyStreaming())
	p.Register(&StatsHybrid{})
	rep, err := p.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result("hybrid topology (streaming)", 2) == nil ||
		rep.Result("hybrid descriptive statistics", 2) == nil {
		t.Fatal("mixed streaming/buffered registration lost results")
	}
	b := rep.Metrics.Total("hybrid topology (streaming)")
	if b.MoveBytes == 0 || b.InTransit <= 0 {
		t.Fatalf("streaming task accounting missing: %+v", b)
	}
}

// TestContingencyHybridPipeline validates the contingency analysis
// end to end: T and OH in a flame are strongly dependent, T and a
// constant-range velocity component much less so.
func TestContingencyHybridPipeline(t *testing.T) {
	const steps = 3
	simCfg := testSimConfig(2, 2, 1)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Register(&ContingencyHybrid{}) // T vs Y_OH
	rep, err := p.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Result("hybrid contingency statistics", steps).(*ContingencyResult)
	if res.VarX != "T" || res.VarY != "Y_OH" {
		t.Fatalf("default variables wrong: %+v", res)
	}
	d := res.Derived
	if d.N != int64(simCfg.Global.Size()) {
		t.Fatalf("table covers %d points, want %d", d.N, simCfg.Global.Size())
	}
	if d.HX <= 0 || d.HXY <= 0 {
		t.Fatalf("entropies must be positive: %+v", d)
	}
	if d.MutualInfo < 0 || d.MutualInfo > math.Min(d.HX, d.HY)+1e-9 {
		t.Fatalf("MI out of bounds: %+v", d)
	}
	// The hybrid result must equal a serial table over the global
	// fields.
	gf := globalFields(t, simCfg, steps, []string{"T", "Y_OH"})
	ref, _ := stats.NewContingency(0, 2.5, 16, 0, 0.3, 16)
	if err := ref.UpdateBatch(gf["T"].Data, gf["Y_OH"].Data); err != nil {
		t.Fatal(err)
	}
	for i := range ref.Counts {
		if ref.Counts[i] != res.Table.Counts[i] {
			t.Fatalf("hybrid table differs from serial at cell %d", i)
		}
	}
}

// TestContingencyUnknownVariable surfaces configuration errors.
func TestContingencyUnknownVariable(t *testing.T) {
	simCfg := testSimConfig(2, 1, 1)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Register(&ContingencyHybrid{VarX: "nope"})
	if _, err := p.Run(1); err == nil {
		t.Fatal("unknown variable must error")
	}
}

// TestFeatureStatsPipelineMatchesSerial drives the feature-based
// statistics extension through the full pipeline and checks the
// result against a serial computation over the global fields.
func TestFeatureStatsPipelineMatchesSerial(t *testing.T) {
	const steps = 3
	const threshold = 0.7
	simCfg := testSimConfig(2, 2, 1)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Register(&FeatureStatsHybrid{Threshold: threshold})
	rep, err := p.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Result("hybrid feature-based statistics", steps).([]mergetree.FeatureStat)
	if len(got) == 0 {
		t.Fatal("no features found; threshold too high for this run")
	}
	gf := globalFields(t, simCfg, steps, []string{"T", "Y_OH"})
	seg := mergetree.SegmentField(gf["T"], simCfg.Global, threshold)
	perLabel := map[int64]*stats.Moments{}
	for id, label := range seg.Labels {
		m, ok := perLabel[label]
		if !ok {
			m = stats.NewMoments()
			perLabel[label] = m
		}
		i, j, k := grid.GlobalPoint(simCfg.Global, id)
		m.Update(gf["Y_OH"].At(i, j, k))
	}
	if len(got) != len(perLabel) {
		t.Fatalf("feature count: pipeline %d vs serial %d", len(got), len(perLabel))
	}
	totalN := int64(0)
	for _, fs := range got {
		totalN += fs.Stats.N
	}
	want := int64(len(seg.Labels))
	if totalN != want {
		t.Fatalf("feature stats cover %d voxels, serial segmentation has %d", totalN, want)
	}
}

// TestAssessTestInSitu completes Fig. 4's four stages in the pipeline:
// learn, derive, assess (outlier flags), test (Jarque–Bera).
func TestAssessTestInSitu(t *testing.T) {
	const steps = 3
	simCfg := testSimConfig(2, 2, 1)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Register(&AssessTestInSitu{})
	rep, err := p.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Result("in-situ assess & test", steps).(*AssessTestResult)
	if res.Var != "T" || res.Assessed != int64(simCfg.Global.Size()) {
		t.Fatalf("assessment coverage wrong: %+v", res)
	}
	if res.Extremes < 0 || res.Extremes > res.Assessed {
		t.Fatalf("extreme count out of range: %+v", res)
	}
	if res.Test.Statistic <= 0 {
		t.Fatalf("test statistic missing: %+v", res)
	}
	// Flame temperatures are bimodal: normality must be rejected.
	if !res.Test.Reject {
		t.Fatalf("normality unexpectedly not rejected: %+v", res.Test)
	}
}

// TestPipelineRunsOnce: the pipeline is one-shot by design.
func TestPipelineRunsOnce(t *testing.T) {
	p, err := NewPipeline(DefaultConfig(testSimConfig(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(1); err == nil {
		t.Fatal("second Run must be rejected")
	}
}

// TestPipelineTrace: the execution timeline records simulation steps
// and per-bucket task spans.
func TestPipelineTrace(t *testing.T) {
	simCfg := testSimConfig(2, 1, 1)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Register(&StatsHybrid{})
	tl := p.EnableTrace()
	if _, err := p.Run(3); err != nil {
		t.Fatal(err)
	}
	lanes := tl.Lanes()
	if len(lanes) < 2 || lanes[0] != "sim" {
		t.Fatalf("timeline lanes wrong: %v", lanes)
	}
	simSpans := 0
	taskSpans := 0
	for _, s := range tl.Spans() {
		if s.Lane == "sim" {
			simSpans++
		} else {
			taskSpans++
		}
	}
	if simSpans != 3 || taskSpans != 3 {
		t.Fatalf("want 3 sim + 3 task spans, got %d + %d", simSpans, taskSpans)
	}
	if tl.Gantt(60) == "" {
		t.Fatal("gantt rendering empty")
	}
}

// TestVizAutoRange: the steered transfer function adapts to the data,
// so an auto-ranged render differs from the fixed-window default and
// remains a valid image.
func TestVizAutoRange(t *testing.T) {
	simCfg := testSimConfig(2, 2, 1)
	run := func(auto bool) any {
		p, err := NewPipeline(DefaultConfig(simCfg))
		if err != nil {
			t.Fatal(err)
		}
		v := NewVizHybrid(16, 12, 2)
		v.AutoRange = auto
		p.Register(v)
		rep, err := p.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Result(v.Name(), 2)
	}
	fixed := run(false).(*render.Image)
	adaptive := run(true).(*render.Image)
	diff, err := render.MeanAbsDiff(fixed, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if diff == 0 {
		t.Fatal("auto-ranged transfer function had no effect")
	}
	for _, v := range adaptive.Pix {
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("adaptive render out of range: %g", v)
		}
	}
}
