package core

import (
	"encoding/binary"
	"fmt"

	"insitu/internal/mergetree"
)

// FeatureStatsHybrid combines the merge-tree computation with the
// statistics engine into feature-based statistics — the analysis the
// paper's conclusion proposes building on this framework: descriptive
// statistics of CondVar conditioned on the superlevel-set features of
// SegVar (for example, OH statistics per ignition kernel).
//
// The in-situ stage ships the rank's reduced subtree together with its
// per-local-component partial moments; the in-transit stage glues the
// global tree, resolves each local component to its global feature,
// and combines the moments.
type FeatureStatsHybrid struct {
	// SegVar defines the features (default "T").
	SegVar string
	// CondVar is the variable summarized per feature (default "Y_OH").
	CondVar string
	// Threshold is the superlevel-set threshold defining features.
	Threshold float64
	EveryN    int
	// Policy is the boundary augmentation (default KeepSharedBoundary).
	Policy mergetree.BoundaryPolicy
}

// Name implements Analysis.
func (f *FeatureStatsHybrid) Name() string { return "hybrid feature-based statistics" }

// Every implements Analysis.
func (f *FeatureStatsHybrid) Every() int { return f.EveryN }

func (f *FeatureStatsHybrid) segVar() string {
	if f.SegVar == "" {
		return "T"
	}
	return f.SegVar
}

func (f *FeatureStatsHybrid) condVar() string {
	if f.CondVar == "" {
		return "Y_OH"
	}
	return f.CondVar
}

// InSituStage implements HybridAnalysis.
func (f *FeatureStatsHybrid) InSituStage(ctx *Ctx) ([]byte, error) {
	segF := ctx.Sim.GhostedField(f.segVar())
	condF := ctx.Sim.GhostedField(f.condVar())
	if segF == nil || condF == nil {
		return nil, fmt.Errorf("featurestats: unknown variable %q or %q", f.segVar(), f.condVar())
	}
	st, err := mergetree.LocalSubtree(segF, ctx.Global, ctx.Owned, ctx.Comm.ID(), f.Policy)
	if err != nil {
		return nil, err
	}
	partials, err := mergetree.LocalFeatureStats(segF, condF, ctx.Global, ctx.Owned, f.Threshold)
	if err != nil {
		return nil, err
	}
	sub := st.Marshal()
	par := mergetree.MarshalFeaturePartials(partials)
	out := make([]byte, 4, 4+len(sub)+len(par))
	binary.LittleEndian.PutUint32(out, uint32(len(sub)))
	out = append(out, sub...)
	out = append(out, par...)
	return out, nil
}

// InTransit implements HybridAnalysis.
func (f *FeatureStatsHybrid) InTransit(step int, payloads [][]byte) (any, error) {
	subtrees := make([]*mergetree.Subtree, 0, len(payloads))
	partials := make([][]mergetree.FeaturePartial, 0, len(payloads))
	for i, p := range payloads {
		if len(p) < 4 {
			return nil, fmt.Errorf("featurestats: payload %d too short", i)
		}
		subLen := int(binary.LittleEndian.Uint32(p[:4]))
		if len(p) < 4+subLen {
			return nil, fmt.Errorf("featurestats: payload %d truncated", i)
		}
		st, err := mergetree.UnmarshalSubtree(p[4 : 4+subLen])
		if err != nil {
			return nil, fmt.Errorf("featurestats: payload %d subtree: %w", i, err)
		}
		ps, err := mergetree.UnmarshalFeaturePartials(p[4+subLen:])
		if err != nil {
			return nil, fmt.Errorf("featurestats: payload %d partials: %w", i, err)
		}
		subtrees = append(subtrees, st)
		partials = append(partials, ps)
	}
	tree, _, err := mergetree.Glue(subtrees, mergetree.GlueOptions{Evict: true})
	if err != nil {
		return nil, err
	}
	return mergetree.GlobalFeatureStats(tree, f.Threshold, partials)
}
