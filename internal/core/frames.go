package core

import (
	"fmt"

	"insitu/internal/render"
)

// FrameSink receives rendered frames as a run produces them — the
// pipeline's hook into the Cinema-style image database. It is
// implemented by *imagestore.Store; core depends only on this interface
// so the pipeline builds without the store and a nil sink keeps the
// legacy in-memory result path byte for byte.
//
// PutFrame must be safe for concurrent use: the simulation loop (rank 0
// in-situ results) and the drain goroutine (in-transit results) both
// persist frames.
type FrameSink interface {
	PutFrame(variable string, step int, cam string, img *render.Image) (string, error)
}

// FrameRef is what replaces a raw framebuffer in Report.Results when a
// FrameSink is attached: the Cinema spec the frame was filed under plus
// its content digest. The pixels live in the store; the run's working
// set no longer accumulates framebuffers.
type FrameRef struct {
	Var    string
	Step   int
	Cam    string
	Digest string
}

// Spec returns the frame's store key, "var/step/cam".
func (f FrameRef) Spec() string {
	return fmt.Sprintf("%s/%d/%s", f.Var, f.Step, f.Cam)
}

// FrameAnalysis marks an analysis whose results are rendered frames
// (*render.Image or *render.FrameSet) and names the store variable they
// are filed under. Analyses that do not implement it pass through the
// frame hook untouched.
type FrameAnalysis interface {
	FrameVar() string
}

// persistFrames routes one analysis result through the configured
// FrameSink: frames are encoded and filed under their Cinema spec, the
// pooled framebuffers are recycled exactly once, and the stored output
// becomes a FrameRef (or []FrameRef for a multi-camera set). Non-frame
// results — and every result when no sink is configured — pass through
// unchanged. Degraded wrappers are persisted by their inner value and
// rewrapped, so a shaped or fallback frame still reaches the store.
//
// On a store error the original output is returned untouched and
// nothing is recycled: the frame stays live in Results rather than
// risking a recycled buffer someone still references.
func (p *Pipeline) persistFrames(name string, step int, out any) any {
	if p.cfg.Store == nil {
		return out
	}
	variable, ok := p.frameVars[name]
	if !ok {
		return out
	}
	switch v := out.(type) {
	case *render.Image:
		cam := render.CameraName(0)
		digest, err := p.cfg.Store.PutFrame(variable, step, cam, v)
		if err != nil {
			p.recordErr(fmt.Errorf("core: store frame %s step %d: %w", name, step, err))
			return out
		}
		render.PutImage(v)
		return FrameRef{Var: variable, Step: step, Cam: cam, Digest: digest}
	case *render.FrameSet:
		refs := make([]FrameRef, 0, len(v.Frames))
		for _, fr := range v.Frames {
			digest, err := p.cfg.Store.PutFrame(variable, step, fr.Cam, fr.Img)
			if err != nil {
				p.recordErr(fmt.Errorf("core: store frame %s step %d %s: %w", name, step, fr.Cam, err))
				return out
			}
			refs = append(refs, FrameRef{Var: variable, Step: step, Cam: fr.Cam, Digest: digest})
		}
		// Recycle only after every frame persisted: the early-return
		// error path above must leave the whole set alive.
		for _, fr := range v.Frames {
			render.PutImage(fr.Img)
		}
		return refs
	case Degraded:
		if v.Value == nil {
			return out
		}
		v.Value = p.persistFrames(name, step, v.Value)
		return v
	}
	return out
}
