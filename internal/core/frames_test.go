package core

import (
	"fmt"
	"sync"
	"testing"

	"insitu/internal/render"
)

// memSink is an in-memory FrameSink: it encodes each frame (so digests
// are real) but keeps only the digest, mimicking the store's ownership
// contract — the sink never retains the *render.Image.
type memSink struct {
	mu     sync.Mutex
	frames map[string]string // "var/step/cam" -> digest
	fail   bool
}

func newMemSink() *memSink { return &memSink{frames: map[string]string{}} }

func (m *memSink) PutFrame(variable string, step int, cam string, img *render.Image) (string, error) {
	if m.fail {
		return "", fmt.Errorf("memSink: injected failure")
	}
	png, err := img.PNG()
	if err != nil {
		return "", err
	}
	digest := fmt.Sprintf("%x-%d", len(png), step)
	m.mu.Lock()
	m.frames[fmt.Sprintf("%s/%d/%s", variable, step, cam)] = digest
	m.mu.Unlock()
	return digest, nil
}

// TestFrameLifecycleNoLeak is the viz frame lifecycle regression gate:
// with a FrameSink attached, every pooled framebuffer a run produces —
// in-situ composites, gathered partials, in-transit renders, both
// single- and multi-camera — must be recycled exactly once. The pool
// ledger's delta across the run is the proof.
func TestFrameLifecycleNoLeak(t *testing.T) {
	const steps, cams = 3, 2
	sink := newMemSink()
	cfg := DefaultConfig(testSimConfig(2, 2, 1))
	cfg.Store = sink
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vizIS := NewVizInSitu(16, 12)
	vizIS.Cameras = cams
	vizHy := NewVizHybrid(16, 12, 2)
	vizHy.Cameras = cams
	p.Register(vizIS)
	p.Register(vizHy)

	before := render.ImagesOutstanding()
	rep, err := p.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	if after := render.ImagesOutstanding(); after != before {
		t.Fatalf("frame leak: %d pooled images outstanding after the run (was %d)", after, before)
	}

	// Results must hold FrameRefs, not framebuffers, and the sink must
	// hold every spec cell: vars × steps × cameras.
	for _, a := range []Analysis{vizIS, vizHy} {
		for step := 1; step <= steps; step++ {
			out := rep.Result(a.Name(), step)
			refs, ok := out.([]FrameRef)
			if !ok {
				t.Fatalf("%s step %d: result is %T, want []FrameRef", a.Name(), step, out)
			}
			if len(refs) != cams {
				t.Fatalf("%s step %d: %d refs, want %d", a.Name(), step, len(refs), cams)
			}
			for _, ref := range refs {
				if got := sink.frames[ref.Spec()]; got != ref.Digest {
					t.Fatalf("ref %v not backed by the sink (got %q)", ref, got)
				}
			}
		}
	}
	if len(sink.frames) != 2*steps*cams {
		t.Fatalf("sink holds %d frames, want %d", len(sink.frames), 2*steps*cams)
	}
}

// TestFrameLifecycleSingleCamera: Cameras unset must keep the legacy
// single-image result shape — routed through the sink as cam00 — and
// still leak nothing.
func TestFrameLifecycleSingleCamera(t *testing.T) {
	sink := newMemSink()
	cfg := DefaultConfig(testSimConfig(2, 1, 1))
	cfg.Store = sink
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Register(NewVizInSitu(16, 12))
	before := render.ImagesOutstanding()
	rep, err := p.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if after := render.ImagesOutstanding(); after != before {
		t.Fatalf("frame leak: outstanding went %d -> %d", before, after)
	}
	out := rep.Result("in-situ visualization", 2)
	ref, ok := out.(FrameRef)
	if !ok {
		t.Fatalf("result is %T, want FrameRef", out)
	}
	if ref.Cam != render.CameraName(0) || ref.Var != "T.insitu" {
		t.Fatalf("unexpected ref %+v", ref)
	}
	if sink.frames[ref.Spec()] != ref.Digest {
		t.Fatal("ref not backed by the sink")
	}
}

// TestNoSinkKeepsRawResults: without a FrameSink the result path is
// unchanged — raw framebuffers in Results, exactly as before the store
// existed.
func TestNoSinkKeepsRawResults(t *testing.T) {
	p, err := NewPipeline(DefaultConfig(testSimConfig(2, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	p.Register(NewVizInSitu(16, 12))
	rep, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Result("in-situ visualization", 1).(*render.Image); !ok {
		t.Fatalf("result is %T, want *render.Image", rep.Result("in-situ visualization", 1))
	}
}

// TestSinkErrorKeepsFrameAlive: a failing sink must leave the original
// framebuffer in Results (never recycled) and surface the error.
func TestSinkErrorKeepsFrameAlive(t *testing.T) {
	sink := newMemSink()
	sink.fail = true
	cfg := DefaultConfig(testSimConfig(2, 1, 1))
	cfg.Store = sink
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Register(NewVizInSitu(16, 12))
	rep, err := p.Run(1)
	if err == nil {
		t.Fatal("expected the sink failure to surface")
	}
	img, ok := rep.Result("in-situ visualization", 1).(*render.Image)
	if !ok || len(img.Pix) == 0 {
		t.Fatalf("failed persist must keep the raw frame, got %T", rep.Result("in-situ visualization", 1))
	}
}
