package core

import (
	"testing"

	"insitu/internal/mergetree"
	"insitu/internal/render"
)

// TestLinkedViews runs two simultaneous hybrid visualization instances
// with different variables and view directions — the paper's "multiple
// instances of each visualization mode ... enabling scientists to
// explore different aspects of simulation and analysis data in
// linked-views".
func TestLinkedViews(t *testing.T) {
	const steps = 2
	simCfg := testSimConfig(2, 2, 1)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	front := NewVizHybrid(16, 12, 2)
	front.Tag = "temperature-front"
	side := NewVizHybrid(16, 12, 2)
	side.Tag = "OH-side"
	side.Var = "Y_OH"
	side.Dir = [3]float64{1, 0.1, 0}
	side.TF = render.HotMetal(0, 0.25)
	p.Register(front)
	p.Register(side)

	rep, err := p.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Result(front.Name(), steps)
	b := rep.Result(side.Name(), steps)
	if a == nil || b == nil {
		t.Fatal("one of the linked views produced no image")
	}
	if front.Name() == side.Name() {
		t.Fatal("tags must disambiguate instance names")
	}
	imgA, imgB := a.(*render.Image), b.(*render.Image)
	same := true
	for i := range imgA.Pix {
		if imgA.Pix[i] != imgB.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different variables/views must yield different images")
	}
}

// TestPipelineReleasesPinnedMemory: after a run drains, every
// intermediate region registered by the in-situ stages must have been
// released — the simulation's scratch-space constraint from §III.
func TestPipelineReleasesPinnedMemory(t *testing.T) {
	simCfg := testSimConfig(2, 2, 1)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Register(&StatsHybrid{})
	p.Register(NewTopologyHybrid())
	p.Register(NewVizHybrid(16, 12, 2))
	if _, err := p.Run(4); err != nil {
		t.Fatal(err)
	}
	if n := p.PinnedRegions(); n != 0 {
		t.Fatalf("%d intermediate regions still pinned after drain", n)
	}
}

// TestTopologyParallelWorkers: the Workers>1 hierarchical in-transit
// variant must match the serial glue through the full pipeline.
func TestTopologyParallelWorkers(t *testing.T) {
	const steps = 2
	simCfg := testSimConfig(2, 2, 2)
	run := func(workers int) *TopologyResult {
		p, err := NewPipeline(DefaultConfig(simCfg))
		if err != nil {
			t.Fatal(err)
		}
		topo := NewTopologyHybrid()
		topo.Workers = workers
		p.Register(topo)
		rep, err := p.Run(steps)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Result(topo.Name(), steps).(*TopologyResult)
	}
	serial := run(0)
	parallel := run(4)
	reduce := func(tr *mergetree.Tree) *mergetree.Tree {
		return mergetree.Reduce(tr, func(n *mergetree.Node) bool { return false })
	}
	if !mergetree.Equal(reduce(serial.Tree), reduce(parallel.Tree)) {
		t.Fatal("parallel hierarchical glue differs from serial through the pipeline")
	}
}
