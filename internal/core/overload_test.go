package core

import (
	"strings"
	"testing"
	"time"

	"insitu/internal/overload"
)

// slowTransitAnalysis is a hybrid analysis whose in-transit stage
// deliberately dawdles, so the single bucket stays busy and the
// bounded task queue fills.
type slowTransitAnalysis struct {
	delay time.Duration
}

func (s *slowTransitAnalysis) Name() string { return "slow transit" }
func (s *slowTransitAnalysis) Every() int   { return 1 }

func (s *slowTransitAnalysis) InSituStage(ctx *Ctx) ([]byte, error) {
	return []byte{byte(ctx.Step), byte(ctx.Comm.ID())}, nil
}

func (s *slowTransitAnalysis) InTransit(step int, payloads [][]byte) (any, error) {
	time.Sleep(s.delay)
	return step, nil
}

// TestShedAtSubmitRecyclesInputs is the pooled-buffer ownership
// regression test for the shed path: when rank 0 has already produced
// and pinned every rank's intermediate payload and the bounded task
// queue then refuses the submission, the step must shed — recycling
// each pinned region exactly once (PinnedRegions drains to zero, no
// double-put panic under -race) and carrying an explicit shed marker.
// The credit account must also drain: credits held by refused steps
// are returned at the shed, not leaked.
func TestShedAtSubmitRecyclesInputs(t *testing.T) {
	cfg := DefaultConfig(testSimConfig(2, 1, 1))
	cfg.Buckets = 1
	cfg.DSServers = 1
	// A queue bound of 1 with a big credit override guarantees the
	// admission pass keeps granting credits while the queue is already
	// full, forcing the submit-time ErrQueueFull shed path (rather than
	// the credit floor hiding it).
	cfg.Overload = &overload.Config{
		QueueBound: 1,
		Credits:    64,
		// Keep the breaker and ladder out of the way: this test is about
		// submit-time backpressure only.
		Breaker: overload.BreakerConfig{FailureThreshold: 1 << 20, Cooldown: time.Hour},
		Ladder: overload.LadderConfig{
			QueueHigh: 1 << 20, QueueLow: 1 << 19,
			DegradeAfter: 1 << 20, RecoverAfter: 1,
		},
	}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Register(&slowTransitAnalysis{delay: 20 * time.Millisecond})

	const steps = 8
	rep, err := p.Run(steps)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if got := p.PinnedRegions(); got != 0 {
		t.Fatalf("shed path leaked %d pinned regions", got)
	}
	shed := 0
	for step := 1; step <= steps; step++ {
		switch out := rep.Result("slow transit", step).(type) {
		case Degraded:
			if !strings.HasPrefix(out.Reason, "shed:") {
				t.Fatalf("step %d degraded without a shed reason: %q", step, out.Reason)
			}
			shed++
		case int:
			if out != step {
				t.Fatalf("step %d wrong transit result %d", step, out)
			}
		default:
			t.Fatalf("step %d missing result (%T)", step, out)
		}
	}
	if shed == 0 {
		t.Fatal("a 1-deep queue with a slow bucket must shed at least one step")
	}
	if rep.Overload.StepsShed != int64(shed) {
		t.Fatalf("StepsShed = %d, want %d", rep.Overload.StepsShed, shed)
	}
	c := p.Credits()
	if c == nil {
		t.Fatal("overload pipeline must expose its credit account")
	}
	if c.Outstanding() != 0 || c.Available() != c.Total() {
		t.Fatalf("credits leaked: outstanding=%d avail=%d total=%d",
			c.Outstanding(), c.Available(), c.Total())
	}
}

// TestOverloadLadderShedsViaCredits: with a tiny credit supply and no
// queue headroom, the admission pass floors routes at the in-situ rung
// the moment credits run dry — before any payload is produced — and
// recovers once the tier drains. Uses an analysis with an in-situ
// fallback so floored steps still yield a value.
func TestOverloadCreditFloorFallsBackInSitu(t *testing.T) {
	cfg := DefaultConfig(testSimConfig(2, 1, 1))
	cfg.Buckets = 1
	cfg.DSServers = 1
	cfg.Overload = &overload.Config{
		QueueBound: 1,
		Credits:    1, // one task in flight, ever
		Breaker:    overload.BreakerConfig{FailureThreshold: 1 << 20, Cooldown: time.Hour},
		Ladder: overload.LadderConfig{
			QueueHigh: 1 << 20, QueueLow: 1 << 19,
			DegradeAfter: 1 << 20, RecoverAfter: 1,
		},
	}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVizHybrid(24, 18, 8)
	v.Var = "T"
	p.Register(&slowTransitAnalysis{delay: 15 * time.Millisecond})
	p.Register(v)

	rep, err := p.Run(6)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if rep.Overload.CreditsDenied == 0 {
		t.Fatal("a 1-credit account under steady submission must deny some acquisitions")
	}
	if got := p.PinnedRegions(); got != 0 {
		t.Fatalf("%d pinned regions leaked", got)
	}
	c := p.Credits()
	if c.Outstanding() != 0 || c.Available() != c.Total() {
		t.Fatalf("credits leaked: outstanding=%d avail=%d total=%d",
			c.Outstanding(), c.Available(), c.Total())
	}
	// Every viz step must have an outcome: a frame, or a Degraded
	// marker whose reason names the ladder rung.
	for step := 1; step <= 6; step++ {
		out := rep.Result(v.Name(), step)
		if out == nil {
			t.Fatalf("viz step %d has no stored result", step)
		}
	}
}
