package core

import (
	"fmt"
	"sync"
	"time"

	"insitu/internal/bufpool"
	"insitu/internal/comm"
	"insitu/internal/dart"
	"insitu/internal/dataspaces"
	"insitu/internal/metrics"
	"insitu/internal/netsim"
	"insitu/internal/sim"
	"insitu/internal/staging"
	"insitu/internal/trace"
)

// Config sizes the secondary resource, mirroring the paper's Table I
// core allocations (simulation/in-situ cores come from the sim
// decomposition; DataSpaces-service cores and in-transit cores are
// configured here).
type Config struct {
	Sim       sim.Config
	DSServers int // DataSpaces service shards
	Buckets   int // in-transit staging buckets
	Net       netsim.Config
	// StepBudget bounds each step's hybrid transit path. When set,
	// rank 0 probes staging health within the budget before submitting
	// hybrid work — a failed probe degrades the step to the analyses'
	// in-situ fallbacks — and every submitted task carries the budget
	// as its data-movement deadline. Zero disables probing and
	// deadlines: steps never degrade on time.
	StepBudget time.Duration
	// MaxTaskAttempts bounds how many times a task is handed to a
	// bucket before it is dead-lettered (0 = staging default of 3).
	MaxTaskAttempts int
}

// DefaultConfig mirrors the paper's resource ratios at laptop scale.
func DefaultConfig(simCfg sim.Config) Config {
	return Config{Sim: simCfg, DSServers: 4, Buckets: 4, Net: netsim.Gemini()}
}

// Pipeline wires the simulation, the transport and coordination
// layers, the staging area, and the registered analyses into one
// runnable system (the paper's Fig. 5).
type Pipeline struct {
	cfg Config

	sim    *sim.Sim
	net    *netsim.Network
	fabric *dart.Fabric
	ds     *dataspaces.Service
	area   *staging.Area
	col    *metrics.Collector

	analyses []Analysis

	mu      sync.Mutex
	results map[string]map[int]any // analysis -> step -> output
	runErrs []error
	eps     map[int]*dart.Endpoint // endpoint id -> endpoint (for release)
	ran     bool
	tl      *trace.Timeline

	// Drain accounting: the queue closes once the simulation has
	// finished AND every successfully submitted task has produced its
	// one final Result (requeued attempts emit nothing until the task
	// completes or dead-letters). This replaces an upfront expected
	// count, which cannot anticipate degraded steps or requeues.
	submitted int64
	completed int64
	simDone   bool
}

// NewPipeline validates the configuration and builds all subsystems.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.DSServers < 1 {
		return nil, fmt.Errorf("core: need at least one DataSpaces server")
	}
	if cfg.Buckets < 1 {
		return nil, fmt.Errorf("core: need at least one staging bucket")
	}
	s, err := sim.New(cfg.Sim)
	if err != nil {
		return nil, err
	}
	net := netsim.New(cfg.Net)
	fabric := dart.NewFabric(net)
	ds, err := dataspaces.New(fabric, cfg.DSServers)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:     cfg,
		sim:     s,
		net:     net,
		fabric:  fabric,
		ds:      ds,
		col:     metrics.NewCollector(),
		results: make(map[string]map[int]any),
		eps:     make(map[int]*dart.Endpoint),
	}
	// Pooled buffers are safe here because every in-transit handler in
	// core decodes its payloads into private structures (Unmarshal*)
	// and retains no input slice past its return.
	opts := []staging.Option{staging.WithRelease(p.releaseHandle), staging.WithPooledBuffers()}
	if cfg.MaxTaskAttempts > 0 {
		opts = append(opts, staging.WithMaxAttempts(cfg.MaxTaskAttempts))
	}
	area, err := staging.New(fabric, ds, cfg.Buckets, opts...)
	if err != nil {
		return nil, err
	}
	p.area = area
	return p, nil
}

// Staging returns the staging area, exposing bucket crash injection
// and resilience counters to chaos tests.
func (p *Pipeline) Staging() *staging.Area { return p.area }

// Register adds an analysis; all registrations must happen before Run.
func (p *Pipeline) Register(a Analysis) {
	p.analyses = append(p.analyses, a)
}

// Sim returns the simulation description.
func (p *Pipeline) Sim() *sim.Sim { return p.sim }

// Metrics returns the run's metrics collector.
func (p *Pipeline) Metrics() *metrics.Collector { return p.col }

// Network returns the simulated interconnect, for byte accounting.
func (p *Pipeline) Network() *netsim.Network { return p.net }

// EnableTrace attaches an execution timeline: simulation steps and
// per-bucket in-transit tasks are recorded as spans, so the temporal
// multiplexing can be rendered as a Gantt chart after the run. Call
// before Run.
func (p *Pipeline) EnableTrace() *trace.Timeline {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tl == nil {
		p.tl = trace.New()
	}
	return p.tl
}

// PinnedRegions returns the number of intermediate-data regions still
// pinned on the simulation ranks' endpoints. After Run has drained,
// a leak-free pipeline reports zero: every payload was released once
// its staging bucket pulled it.
func (p *Pipeline) PinnedRegions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, ep := range p.eps {
		total += ep.Regions()
	}
	return total
}

// releaseHandle frees a pinned intermediate region once the staging
// bucket has pulled it and recycles the producer's marshal buffer, so
// steady-state timesteps reuse the same intermediate-data buffers
// instead of allocating fresh ones. Safe because in-situ stages build
// each payload from scratch and never touch it after RegisterMem.
func (p *Pipeline) releaseHandle(d dataspaces.Descriptor) {
	p.mu.Lock()
	ep := p.eps[d.Handle.Endpoint]
	p.mu.Unlock()
	if ep != nil {
		if buf, err := ep.Reclaim(d.Handle); err == nil {
			bufpool.Put(buf)
		}
	}
}

func (p *Pipeline) recordErr(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.runErrs = append(p.runErrs, err)
}

func (p *Pipeline) storeResult(name string, step int, out any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.results[name]
	if !ok {
		m = make(map[int]any)
		p.results[name] = m
	}
	m[step] = out
}

// Report is the outcome of a pipeline run.
type Report struct {
	Steps      int
	Results    map[string]map[int]any // analysis -> step -> output
	Metrics    *metrics.Collector
	Net        netsim.Stats
	Resilience metrics.Resilience
	Errs       []error
}

// Result returns the stored output of an analysis at a step.
func (r *Report) Result(analysis string, step int) any {
	m, ok := r.Results[analysis]
	if !ok {
		return nil
	}
	return m[step]
}

// Run executes the full pipeline for the given number of steps and
// blocks until the simulation has finished and every in-transit task
// has drained. Steps are numbered 1..steps.
func (p *Pipeline) Run(steps int) (*Report, error) {
	if steps < 1 {
		return nil, fmt.Errorf("core: steps must be >= 1")
	}
	p.mu.Lock()
	if p.ran {
		p.mu.Unlock()
		return nil, fmt.Errorf("core: a pipeline runs once; build a new one to run again")
	}
	p.ran = true
	p.mu.Unlock()

	// Install staging handlers. Streaming stages take precedence when
	// an analysis implements both kinds.
	for _, a := range p.analyses {
		if sh, ok := a.(StreamingHybridAnalysis); ok {
			shh := sh
			p.area.HandleStream(sh.Name(), func(task dataspaces.Task, in <-chan staging.StreamInput) (any, error) {
				return shh.InTransitStream(task.Step, in)
			})
			continue
		}
		if h, ok := a.(HybridAnalysis); ok {
			hh := h
			p.area.Handle(h.Name(), func(task dataspaces.Task, data [][]byte) (any, error) {
				return hh.InTransit(task.Step, data)
			})
		}
	}
	p.area.Start()

	// Drain results concurrently with the simulation.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for res := range p.area.Results() {
			if p.tl != nil {
				p.tl.Add(fmt.Sprintf("bucket-%d", res.Bucket),
					fmt.Sprintf("%s@%d", res.Task.Analysis, res.Task.Step),
					res.Start, res.End)
			}
			switch {
			case res.DeadLetter:
				// The task's data already left the ranks, so no in-situ
				// fallback is possible; the step is explicitly degraded
				// rather than silently missing or a hard failure.
				p.storeResult(res.Task.Analysis, res.Task.Step,
					Degraded{Reason: res.Err.Error()})
				p.col.AddDegradedStep()
				if p.tl != nil {
					p.tl.Mark(fmt.Sprintf("bucket-%d", res.Bucket),
						fmt.Sprintf("dead-letter %s@%d", res.Task.Analysis, res.Task.Step), res.End)
				}
			case res.Err != nil:
				p.recordErr(fmt.Errorf("core: in-transit %s step %d: %w",
					res.Task.Analysis, res.Task.Step, res.Err))
			default:
				p.storeResult(res.Task.Analysis, res.Task.Step, res.Output)
			}
			// The serialized (sum) modeled pull time is the right
			// "data movement time": a single bucket's ingress link
			// admits one RDMA stream's worth of bandwidth at a time.
			p.col.RecordTransit(res.Task.Analysis, res.MoveModeledSum, res.MoveWall,
				res.BytesMoved, res.ComputeWall)
			p.mu.Lock()
			p.completed++
			p.mu.Unlock()
			p.maybeCloseDS()
		}
	}()

	// The SPMD simulation + in-situ loop.
	comm.Run(p.sim.Ranks(), func(r *comm.Rank) {
		if err := p.rankLoop(r, steps); err != nil {
			p.recordErr(err)
		}
	})

	p.mu.Lock()
	p.simDone = true
	p.mu.Unlock()
	p.maybeCloseDS()
	p.area.Wait()
	<-drained

	p.col.RecordResilience(p.resilience())

	p.mu.Lock()
	defer p.mu.Unlock()
	rep := &Report{
		Steps:      steps,
		Results:    p.results,
		Metrics:    p.col,
		Net:        p.net.Stats(),
		Resilience: p.col.Resilience(),
		Errs:       append([]error{}, p.runErrs...),
	}
	if len(rep.Errs) > 0 {
		return rep, rep.Errs[0]
	}
	return rep, nil
}

// maybeCloseDS closes the task queue once the simulation has finished
// and every submitted task has drained to its final Result. Close is
// idempotent, so racing calls are harmless.
func (p *Pipeline) maybeCloseDS() {
	p.mu.Lock()
	done := p.simDone && p.completed == p.submitted
	p.mu.Unlock()
	if done {
		p.ds.Close()
	}
}

// resilience snapshots the failure counters across all layers.
func (p *Pipeline) resilience() metrics.Resilience {
	fs := p.fabric.Stats()
	as := p.area.Resilience()
	return metrics.Resilience{
		Faults:           p.net.Stats().Faulted,
		Retries:          fs.Retries,
		ChecksumFailures: fs.ChecksumFailures,
		Requeues:         as.Requeues,
		Crashes:          as.Crashes,
		DeadLetters:      as.DeadLetters,
	}
}

// rankLoop is one rank's simulation + in-situ schedule.
func (p *Pipeline) rankLoop(r *comm.Rank, steps int) error {
	rk, err := p.sim.NewRank(r)
	if err != nil {
		return err
	}
	ep := p.fabric.Register(fmt.Sprintf("sim-%d", r.ID()))
	p.mu.Lock()
	p.eps[ep.ID()] = ep
	p.mu.Unlock()

	ctx := &Ctx{
		Comm:   r,
		Sim:    rk,
		Global: p.cfg.Sim.Global,
		Owned:  rk.OwnedBox(),
		Decomp: p.sim.Decomp(),
		State:  make(map[string]any),
	}

	for step := 1; step <= steps; step++ {
		t0 := time.Now()
		rk.Step()
		p.col.RecordSimStep(step, time.Since(t0))
		if p.tl != nil && r.ID() == 0 {
			p.tl.Add("sim", fmt.Sprintf("step %d", step), t0, time.Now())
		}
		ctx.Step = step

		// Transit-health check: when a step budget is configured and
		// hybrid work is due, rank 0 probes the staging area within the
		// budget and broadcasts the verdict, so every rank takes the
		// same branch (the in-situ fallbacks use collectives).
		degradeReason := ""
		if p.cfg.StepBudget > 0 && p.hybridDue(step) {
			if r.ID() == 0 {
				if err := p.probeTransit(ep); err != nil {
					degradeReason = fmt.Sprintf("transit probe: %v", err)
					p.col.AddDegradedStep()
					if p.tl != nil {
						p.tl.Mark("sim", fmt.Sprintf("degraded@%d", step), time.Now())
					}
				}
			}
			degradeReason = r.Broadcast(0, degradeReason).(string)
		}

		// Analysis errors are recorded but never abort the rank: a rank
		// that stops stepping would deadlock the others' collectives,
		// so the loop always keeps participating.
		anyHybrid := false
		for _, a := range p.analyses {
			if !due(a, step) {
				continue
			}
			switch an := a.(type) {
			case InSituAnalysis:
				t := time.Now()
				out, err := an.RunInSitu(ctx)
				p.col.RecordInSitu(an.Name(), step, time.Since(t))
				if err != nil {
					p.recordErr(fmt.Errorf("core: in-situ %s step %d rank %d: %w", an.Name(), step, r.ID(), err))
					continue
				}
				if r.ID() == 0 && out != nil {
					p.storeResult(an.Name(), step, out)
				}
			case hybridStage:
				if degradeReason != "" {
					p.runFallback(ctx, r, an, step, degradeReason)
					continue
				}
				anyHybrid = true
				t := time.Now()
				payload, err := an.InSituStage(ctx)
				p.col.RecordInSitu(an.Name(), step, time.Since(t))
				if err != nil {
					p.recordErr(fmt.Errorf("core: in-situ stage %s step %d rank %d: %w", an.Name(), step, r.ID(), err))
					continue
				}
				h := ep.RegisterMem(payload)
				p.ds.Put(dataspaces.Descriptor{
					Name:    an.Name(),
					Version: step,
					Box:     rk.OwnedBox(),
					Rank:    r.ID(),
					Handle:  h,
				})
			default:
				p.recordErr(fmt.Errorf("core: analysis %s implements neither InSituAnalysis nor HybridAnalysis", a.Name()))
			}
		}

		// Data-ready: once every rank has registered its block, rank 0
		// creates the in-transit task(s) for this step.
		if anyHybrid {
			r.Barrier()
			if r.ID() == 0 {
				var deadline time.Time
				if p.cfg.StepBudget > 0 {
					deadline = time.Now().Add(p.cfg.StepBudget)
				}
				for _, a := range p.analyses {
					if _, ok := a.(hybridStage); !ok || !due(a, step) {
						continue
					}
					inputs := p.ds.Query(a.Name(), step)
					sortByRank(inputs)
					if _, err := p.ds.SubmitTaskDeadline(a.Name(), step, inputs, deadline); err != nil {
						p.recordErr(fmt.Errorf("core: submit %s step %d: %w", a.Name(), step, err))
					} else {
						p.mu.Lock()
						p.submitted++
						p.mu.Unlock()
					}
					p.ds.Remove(a.Name(), step)
				}
			}
		}
	}
	return nil
}

// hybridDue reports whether any hybrid analysis runs at this step.
func (p *Pipeline) hybridDue(step int) bool {
	for _, a := range p.analyses {
		if _, ok := a.(hybridStage); ok && due(a, step) {
			return true
		}
	}
	return false
}

// probeTransit pulls the staging area's tiny probe region under the
// step budget. A healthy path answers in microseconds; a partitioned
// or saturated one fails (after DART's retries), which degrades the
// step before any intermediate data is produced or pinned.
func (p *Pipeline) probeTransit(ep *dart.Endpoint) error {
	data, _, err := ep.GetDeadline(p.area.ProbeHandle(), time.Now().Add(p.cfg.StepBudget))
	if err == nil {
		bufpool.Put(data)
	}
	return err
}

// runFallback executes one degraded hybrid analysis step fully
// in-situ. Analyses without a fallback still get an explicit Degraded
// marker so the step is never silently lost.
func (p *Pipeline) runFallback(ctx *Ctx, r *comm.Rank, an hybridStage, step int, reason string) {
	var out any
	var err error
	fb, hasFB := an.(InSituFallback)
	t := time.Now()
	if hasFB {
		out, err = fb.RunFallback(ctx)
	}
	p.col.RecordInSitu(an.Name(), step, time.Since(t))
	if err != nil {
		p.recordErr(fmt.Errorf("core: in-situ fallback %s step %d rank %d: %w", an.Name(), step, r.ID(), err))
		return
	}
	if r.ID() == 0 {
		p.storeResult(an.Name(), step, Degraded{Reason: reason, Value: out})
	}
}

// sortByRank orders descriptors by producing rank so in-transit
// payload slices are deterministic.
func sortByRank(ds []dataspaces.Descriptor) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Rank < ds[j-1].Rank; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
