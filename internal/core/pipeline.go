package core

import (
	"fmt"
	"sync"
	"time"

	"insitu/internal/bufpool"
	"insitu/internal/comm"
	"insitu/internal/dart"
	"insitu/internal/dataspaces"
	"insitu/internal/metrics"
	"insitu/internal/netsim"
	"insitu/internal/sim"
	"insitu/internal/staging"
	"insitu/internal/trace"
)

// Config sizes the secondary resource, mirroring the paper's Table I
// core allocations (simulation/in-situ cores come from the sim
// decomposition; DataSpaces-service cores and in-transit cores are
// configured here).
type Config struct {
	Sim       sim.Config
	DSServers int // DataSpaces service shards
	Buckets   int // in-transit staging buckets
	Net       netsim.Config
}

// DefaultConfig mirrors the paper's resource ratios at laptop scale.
func DefaultConfig(simCfg sim.Config) Config {
	return Config{Sim: simCfg, DSServers: 4, Buckets: 4, Net: netsim.Gemini()}
}

// Pipeline wires the simulation, the transport and coordination
// layers, the staging area, and the registered analyses into one
// runnable system (the paper's Fig. 5).
type Pipeline struct {
	cfg Config

	sim    *sim.Sim
	net    *netsim.Network
	fabric *dart.Fabric
	ds     *dataspaces.Service
	area   *staging.Area
	col    *metrics.Collector

	analyses []Analysis

	mu       sync.Mutex
	results  map[string]map[int]any // analysis -> step -> output
	runErrs  []error
	eps      map[int]*dart.Endpoint // endpoint id -> endpoint (for release)
	expected int
	ran      bool
	tl       *trace.Timeline
}

// NewPipeline validates the configuration and builds all subsystems.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.DSServers < 1 {
		return nil, fmt.Errorf("core: need at least one DataSpaces server")
	}
	if cfg.Buckets < 1 {
		return nil, fmt.Errorf("core: need at least one staging bucket")
	}
	s, err := sim.New(cfg.Sim)
	if err != nil {
		return nil, err
	}
	net := netsim.New(cfg.Net)
	fabric := dart.NewFabric(net)
	ds, err := dataspaces.New(fabric, cfg.DSServers)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:     cfg,
		sim:     s,
		net:     net,
		fabric:  fabric,
		ds:      ds,
		col:     metrics.NewCollector(),
		results: make(map[string]map[int]any),
		eps:     make(map[int]*dart.Endpoint),
	}
	// Pooled buffers are safe here because every in-transit handler in
	// core decodes its payloads into private structures (Unmarshal*)
	// and retains no input slice past its return.
	area, err := staging.New(fabric, ds, cfg.Buckets,
		staging.WithRelease(p.releaseHandle), staging.WithPooledBuffers())
	if err != nil {
		return nil, err
	}
	p.area = area
	return p, nil
}

// Register adds an analysis; all registrations must happen before Run.
func (p *Pipeline) Register(a Analysis) {
	p.analyses = append(p.analyses, a)
}

// Sim returns the simulation description.
func (p *Pipeline) Sim() *sim.Sim { return p.sim }

// Metrics returns the run's metrics collector.
func (p *Pipeline) Metrics() *metrics.Collector { return p.col }

// Network returns the simulated interconnect, for byte accounting.
func (p *Pipeline) Network() *netsim.Network { return p.net }

// EnableTrace attaches an execution timeline: simulation steps and
// per-bucket in-transit tasks are recorded as spans, so the temporal
// multiplexing can be rendered as a Gantt chart after the run. Call
// before Run.
func (p *Pipeline) EnableTrace() *trace.Timeline {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tl == nil {
		p.tl = trace.New()
	}
	return p.tl
}

// PinnedRegions returns the number of intermediate-data regions still
// pinned on the simulation ranks' endpoints. After Run has drained,
// a leak-free pipeline reports zero: every payload was released once
// its staging bucket pulled it.
func (p *Pipeline) PinnedRegions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, ep := range p.eps {
		total += ep.Regions()
	}
	return total
}

// releaseHandle frees a pinned intermediate region once the staging
// bucket has pulled it and recycles the producer's marshal buffer, so
// steady-state timesteps reuse the same intermediate-data buffers
// instead of allocating fresh ones. Safe because in-situ stages build
// each payload from scratch and never touch it after RegisterMem.
func (p *Pipeline) releaseHandle(d dataspaces.Descriptor) {
	p.mu.Lock()
	ep := p.eps[d.Handle.Endpoint]
	p.mu.Unlock()
	if ep != nil {
		if buf, err := ep.Reclaim(d.Handle); err == nil {
			bufpool.Put(buf)
		}
	}
}

func (p *Pipeline) recordErr(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.runErrs = append(p.runErrs, err)
}

func (p *Pipeline) storeResult(name string, step int, out any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.results[name]
	if !ok {
		m = make(map[int]any)
		p.results[name] = m
	}
	m[step] = out
}

// Report is the outcome of a pipeline run.
type Report struct {
	Steps   int
	Results map[string]map[int]any // analysis -> step -> output
	Metrics *metrics.Collector
	Net     netsim.Stats
	Errs    []error
}

// Result returns the stored output of an analysis at a step.
func (r *Report) Result(analysis string, step int) any {
	m, ok := r.Results[analysis]
	if !ok {
		return nil
	}
	return m[step]
}

// Run executes the full pipeline for the given number of steps and
// blocks until the simulation has finished and every in-transit task
// has drained. Steps are numbered 1..steps.
func (p *Pipeline) Run(steps int) (*Report, error) {
	if steps < 1 {
		return nil, fmt.Errorf("core: steps must be >= 1")
	}
	p.mu.Lock()
	if p.ran {
		p.mu.Unlock()
		return nil, fmt.Errorf("core: a pipeline runs once; build a new one to run again")
	}
	p.ran = true
	p.mu.Unlock()
	// Count expected in-transit tasks so the drain knows when to stop.
	p.expected = 0
	for _, a := range p.analyses {
		if _, ok := a.(hybridStage); !ok {
			continue
		}
		for s := 1; s <= steps; s++ {
			if due(a, s) {
				p.expected++
			}
		}
	}

	// Install staging handlers. Streaming stages take precedence when
	// an analysis implements both kinds.
	for _, a := range p.analyses {
		if sh, ok := a.(StreamingHybridAnalysis); ok {
			shh := sh
			p.area.HandleStream(sh.Name(), func(task dataspaces.Task, in <-chan staging.StreamInput) (any, error) {
				return shh.InTransitStream(task.Step, in)
			})
			continue
		}
		if h, ok := a.(HybridAnalysis); ok {
			hh := h
			p.area.Handle(h.Name(), func(task dataspaces.Task, data [][]byte) (any, error) {
				return hh.InTransit(task.Step, data)
			})
		}
	}
	p.area.Start()

	// Drain results concurrently with the simulation.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		remaining := p.expected
		for res := range p.area.Results() {
			if p.tl != nil {
				p.tl.Add(fmt.Sprintf("bucket-%d", res.Bucket),
					fmt.Sprintf("%s@%d", res.Task.Analysis, res.Task.Step),
					res.Start, res.End)
			}
			if res.Err != nil {
				p.recordErr(fmt.Errorf("core: in-transit %s step %d: %w",
					res.Task.Analysis, res.Task.Step, res.Err))
			} else {
				p.storeResult(res.Task.Analysis, res.Task.Step, res.Output)
			}
			// The serialized (sum) modeled pull time is the right
			// "data movement time": a single bucket's ingress link
			// admits one RDMA stream's worth of bandwidth at a time.
			p.col.RecordTransit(res.Task.Analysis, res.MoveModeledSum, res.MoveWall,
				res.BytesMoved, res.ComputeWall)
			remaining--
			if remaining == 0 {
				p.ds.Close()
			}
		}
	}()
	if p.expected == 0 {
		p.ds.Close()
	}

	// The SPMD simulation + in-situ loop.
	comm.Run(p.sim.Ranks(), func(r *comm.Rank) {
		if err := p.rankLoop(r, steps); err != nil {
			p.recordErr(err)
		}
	})

	// If any rank failed to submit its share of tasks, the drain
	// goroutine would wait forever; close the queue so everything
	// unblocks (in-flight tasks still finish).
	p.mu.Lock()
	aborted := len(p.runErrs) > 0
	p.mu.Unlock()
	if aborted {
		p.ds.Close()
	}
	p.area.Wait()
	<-drained

	p.mu.Lock()
	defer p.mu.Unlock()
	rep := &Report{
		Steps:   steps,
		Results: p.results,
		Metrics: p.col,
		Net:     p.net.Stats(),
		Errs:    append([]error{}, p.runErrs...),
	}
	if len(rep.Errs) > 0 {
		return rep, rep.Errs[0]
	}
	return rep, nil
}

// rankLoop is one rank's simulation + in-situ schedule.
func (p *Pipeline) rankLoop(r *comm.Rank, steps int) error {
	rk, err := p.sim.NewRank(r)
	if err != nil {
		return err
	}
	ep := p.fabric.Register(fmt.Sprintf("sim-%d", r.ID()))
	p.mu.Lock()
	p.eps[ep.ID()] = ep
	p.mu.Unlock()

	ctx := &Ctx{
		Comm:   r,
		Sim:    rk,
		Global: p.cfg.Sim.Global,
		Owned:  rk.OwnedBox(),
		Decomp: p.sim.Decomp(),
		State:  make(map[string]any),
	}

	for step := 1; step <= steps; step++ {
		t0 := time.Now()
		rk.Step()
		p.col.RecordSimStep(step, time.Since(t0))
		if p.tl != nil && r.ID() == 0 {
			p.tl.Add("sim", fmt.Sprintf("step %d", step), t0, time.Now())
		}
		ctx.Step = step

		// Analysis errors are recorded but never abort the rank: a rank
		// that stops stepping would deadlock the others' collectives,
		// so the loop always keeps participating.
		anyHybrid := false
		for _, a := range p.analyses {
			if !due(a, step) {
				continue
			}
			switch an := a.(type) {
			case InSituAnalysis:
				t := time.Now()
				out, err := an.RunInSitu(ctx)
				p.col.RecordInSitu(an.Name(), step, time.Since(t))
				if err != nil {
					p.recordErr(fmt.Errorf("core: in-situ %s step %d rank %d: %w", an.Name(), step, r.ID(), err))
					continue
				}
				if r.ID() == 0 && out != nil {
					p.storeResult(an.Name(), step, out)
				}
			case hybridStage:
				anyHybrid = true
				t := time.Now()
				payload, err := an.InSituStage(ctx)
				p.col.RecordInSitu(an.Name(), step, time.Since(t))
				if err != nil {
					p.recordErr(fmt.Errorf("core: in-situ stage %s step %d rank %d: %w", an.Name(), step, r.ID(), err))
					continue
				}
				h := ep.RegisterMem(payload)
				p.ds.Put(dataspaces.Descriptor{
					Name:    an.Name(),
					Version: step,
					Box:     rk.OwnedBox(),
					Rank:    r.ID(),
					Handle:  h,
				})
			default:
				p.recordErr(fmt.Errorf("core: analysis %s implements neither InSituAnalysis nor HybridAnalysis", a.Name()))
			}
		}

		// Data-ready: once every rank has registered its block, rank 0
		// creates the in-transit task(s) for this step.
		if anyHybrid {
			r.Barrier()
			if r.ID() == 0 {
				for _, a := range p.analyses {
					if _, ok := a.(hybridStage); !ok || !due(a, step) {
						continue
					}
					inputs := p.ds.Query(a.Name(), step)
					sortByRank(inputs)
					if _, err := p.ds.SubmitTask(a.Name(), step, inputs); err != nil {
						p.recordErr(fmt.Errorf("core: submit %s step %d: %w", a.Name(), step, err))
					}
					p.ds.Remove(a.Name(), step)
				}
			}
		}
	}
	return nil
}

// sortByRank orders descriptors by producing rank so in-transit
// payload slices are deterministic.
func sortByRank(ds []dataspaces.Descriptor) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Rank < ds[j-1].Rank; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
