package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/bufpool"
	"insitu/internal/codec"
	"insitu/internal/comm"
	"insitu/internal/dart"
	"insitu/internal/dataspaces"
	"insitu/internal/metrics"
	"insitu/internal/netsim"
	"insitu/internal/obs"
	"insitu/internal/overload"
	"insitu/internal/recovery"
	"insitu/internal/sim"
	"insitu/internal/staging"
	"insitu/internal/trace"
)

// Config sizes the secondary resource, mirroring the paper's Table I
// core allocations (simulation/in-situ cores come from the sim
// decomposition; DataSpaces-service cores and in-transit cores are
// configured here).
type Config struct {
	Sim       sim.Config
	DSServers int // DataSpaces service shards
	Buckets   int // in-transit staging buckets
	Net       netsim.Config
	// StepBudget bounds each step's hybrid transit path. When set,
	// rank 0 probes staging health within the budget before submitting
	// hybrid work — a failed probe degrades the step to the analyses'
	// in-situ fallbacks — and every submitted task carries the budget
	// as its data-movement deadline. Zero disables probing and
	// deadlines: steps never degrade on time.
	StepBudget time.Duration
	// MaxTaskAttempts bounds how many times a task is handed to a
	// bucket before it is dead-lettered (0 = staging default of 3).
	MaxTaskAttempts int
	// Overload, when non-nil, enables the graded overload-control
	// plane: credit-based admission, a per-analysis-route circuit
	// breaker, and the admission ladder (full → delta → quantized →
	// shaped → in-situ → shed) replace the single StepBudget probe as
	// the degradation trigger. Nil keeps the legacy binary
	// probe-and-fallback behavior.
	Overload *overload.Config
	// Codecs selects the default transfer-path codec per hybrid route:
	// the key is an analysis name, with "*" as the fallback for routes
	// not named. Unlisted routes (and a nil map) use the identity
	// codec, which registers raw payloads byte-for-byte as before. The
	// admission ladder's delta/quantized rungs override the configured
	// spec for the steps they govern.
	Codecs map[string]codec.Spec
	// Recovery, when non-nil, enables durable run recovery: a
	// write-ahead step journal, periodic bp checkpoints, and a Resume
	// path that continues a crashed run bit-identically from its last
	// committed step. Nil keeps the journal-free behavior byte for
	// byte.
	Recovery *RecoveryConfig
	// Store, when non-nil, files every rendered frame a FrameAnalysis
	// produces into the Cinema-style image database as the run goes:
	// Report.Results holds FrameRefs instead of raw framebuffers, and
	// the pooled image buffers are recycled once their pixels are
	// encoded. Nil keeps the in-memory result path byte for byte.
	Store FrameSink
}

// DefaultConfig mirrors the paper's resource ratios at laptop scale.
func DefaultConfig(simCfg sim.Config) Config {
	return Config{Sim: simCfg, DSServers: 4, Buckets: 4, Net: netsim.Gemini()}
}

// Pipeline wires the simulation, the transport and coordination
// layers, the staging area, and the registered analyses into one
// runnable system (the paper's Fig. 5).
type Pipeline struct {
	cfg Config

	sim    *sim.Sim
	net    *netsim.Network
	fabric *dart.Fabric
	ds     *dataspaces.Service
	area   *staging.Area
	col    *metrics.Collector
	codecs *codec.Registry

	analyses []Analysis

	// frameVars maps a FrameAnalysis name to its store variable.
	// Written only by Register (before Run), read by persistFrames.
	frameVars map[string]string

	// Overload-control plane (nil/empty when Config.Overload is nil).
	ov     *overload.Config
	est    *overload.Estimator
	routes map[string]*routeState

	// Recovery plane (nil when Config.Recovery is nil).
	rec *recState

	// Multi-tenant plane (zero/nil outside a Scheduler). tenant is the
	// pipeline's tenant name, sched the owning scheduler, preEps the
	// rank endpoints the scheduler pre-registered (rank id → endpoint),
	// quar the shared poison-route quarantine, and curLevel the worst
	// ladder level of the latest admission pass, exported for the
	// autoscaler. A tenant-less pipeline (tenant == "", sched == nil)
	// behaves byte-for-byte as before.
	tenant   string
	sched    *Scheduler
	preEps   map[int]*dart.Endpoint
	quar     *overload.Quarantine
	weight   int
	curLevel atomic.Int64

	mu      sync.Mutex
	results map[string]map[int]any // analysis -> step -> output
	runErrs []error
	warns   []error
	eps     map[int]*dart.Endpoint // endpoint id -> endpoint (for release)
	ran     bool
	tl      *trace.Timeline

	// Observability plane (nil until EnableObs/EnableTrace). admitCtr
	// holds the pre-resolved admission counters, one per ladder level.
	plane    *obs.Plane
	admitCtr map[overload.Level]*obs.Counter

	// Drain accounting: the queue closes once the simulation has
	// finished AND every successfully submitted task has produced its
	// one final Result (requeued attempts emit nothing until the task
	// completes or dead-letters). This replaces an upfront expected
	// count, which cannot anticipate degraded steps or requeues.
	submitted int64
	completed int64
	simDone   bool
}

// routeState is one hybrid analysis route's overload-control state:
// its circuit breaker, its admission ladder, and the last ladder level
// marked on the trace (rank-0 admission only).
type routeState struct {
	breaker   *overload.Breaker
	ladder    *overload.Ladder
	lastLevel overload.Level
}

// admitDecision is rank 0's per-analysis admission verdict for one
// step, broadcast so every rank takes the same branch (the in-situ
// fallbacks use collectives). Probe marks the single task a quarantined
// route is allowed to send while half-open.
type admitDecision struct {
	Name     string
	Level    overload.Level
	Reason   string
	Credited bool
	Probe    bool
}

// NewPipeline validates the configuration and builds all subsystems.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.DSServers < 1 {
		return nil, fmt.Errorf("core: need at least one DataSpaces server")
	}
	if cfg.Buckets < 1 {
		return nil, fmt.Errorf("core: need at least one staging bucket")
	}
	s, err := sim.New(cfg.Sim)
	if err != nil {
		return nil, err
	}
	net := netsim.New(cfg.Net)
	fabric := dart.NewFabric(net)
	ds, err := dataspaces.New(fabric, cfg.DSServers)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:       cfg,
		sim:       s,
		net:       net,
		fabric:    fabric,
		ds:        ds,
		col:       metrics.NewCollector(),
		codecs:    codec.NewRegistry(),
		results:   make(map[string]map[int]any),
		eps:       make(map[int]*dart.Endpoint),
		frameVars: make(map[string]string),
	}
	// The registry is attached unconditionally: with no Codecs config
	// every registration resolves to the identity spec, which pins raw
	// bytes exactly as RegisterMem did.
	ds.SetCodecs(p.codecs)
	if cfg.Overload != nil {
		ov := cfg.Overload.WithDefaults()
		p.ov = &ov
		p.est = overload.NewEstimator(ov.LatencyAlpha, ov.QueueAlpha)
		p.routes = make(map[string]*routeState)
	}
	if cfg.Recovery != nil {
		if cfg.Recovery.Dir == "" {
			return nil, fmt.Errorf("core: Recovery.Dir must be set")
		}
		j, err := recovery.Open(cfg.Recovery.Dir)
		if err != nil {
			return nil, err
		}
		every := cfg.Recovery.Every
		if every <= 0 {
			every = 5
		}
		p.rec = &recState{j: j, every: every, kill: cfg.Recovery.Kill, nextCommit: 1}
	}
	// Pooled buffers are safe here because every in-transit handler in
	// core decodes its payloads into private structures (Unmarshal*)
	// and retains no input slice past its return.
	opts := []staging.Option{staging.WithRelease(p.releaseHandle), staging.WithPooledBuffers()}
	if cfg.MaxTaskAttempts > 0 {
		opts = append(opts, staging.WithMaxAttempts(cfg.MaxTaskAttempts))
	}
	area, err := staging.New(fabric, ds, cfg.Buckets, opts...)
	if err != nil {
		return nil, err
	}
	p.area = area
	return p, nil
}

// Staging returns the staging area, exposing bucket crash injection
// and resilience counters to chaos tests.
func (p *Pipeline) Staging() *staging.Area { return p.area }

// Register adds an analysis; all registrations must happen before Run.
func (p *Pipeline) Register(a Analysis) {
	p.analyses = append(p.analyses, a)
	if fa, ok := a.(FrameAnalysis); ok {
		p.frameVars[a.Name()] = fa.FrameVar()
	}
}

// Sim returns the simulation description.
func (p *Pipeline) Sim() *sim.Sim { return p.sim }

// Metrics returns the run's metrics collector.
func (p *Pipeline) Metrics() *metrics.Collector { return p.col }

// Network returns the simulated interconnect, for byte accounting.
func (p *Pipeline) Network() *netsim.Network { return p.net }

// EnableTrace attaches an execution timeline: simulation steps and
// per-bucket in-transit tasks are recorded as spans, so the temporal
// multiplexing can be rendered as a Gantt chart after the run. It is a
// legacy view over the full observability plane — EnableTrace enables
// EnableObs and returns the plane's timeline. Call before Run.
func (p *Pipeline) EnableTrace() *trace.Timeline {
	p.EnableObs()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tl
}

// EnableObs attaches the observability plane: one span recorder shared
// by the legacy timeline, the DART transport, the task lifecycle, and
// the admission plane, plus a metrics registry every subsystem
// publishes into. Idempotent; call before Run. The returned plane's
// exporters (Chrome trace, JSONL, Prometheus text) and the obs.Handler
// HTTP endpoint render it live or after the run.
func (p *Pipeline) EnableObs() *obs.Plane {
	p.mu.Lock()
	if p.plane != nil {
		pl := p.plane
		p.mu.Unlock()
		return pl
	}
	pl := obs.NewPlane()
	p.plane = pl
	p.tl = trace.Over(pl.Recorder())
	p.mu.Unlock()

	// Registration happens outside p.mu: several of the functions below
	// take p.mu when sampled, so holding it here would invert the lock
	// order against a concurrent scrape.
	p.fabric.SetPlane(pl)
	p.ds.SetPlane(pl)
	p.area.SetPlane(pl)
	reg := pl.Registry()
	p.col.PublishTo(reg)
	// Admission counters are registered for every ladder level up front
	// — even runs without overload control expose the same families.
	admitCtr := make(map[overload.Level]*obs.Counter, 6)
	for _, lv := range []overload.Level{
		overload.LevelFull, overload.LevelDelta, overload.LevelQuantized,
		overload.LevelShaped, overload.LevelInSitu, overload.LevelShed,
	} {
		admitCtr[lv] = reg.Counter("admission_decisions_total",
			"admission ladder verdicts by level", obs.Str("level", lv.String()))
	}
	p.mu.Lock()
	p.admitCtr = admitCtr
	p.mu.Unlock()
	reg.CounterFunc("net_transfers_total", "transfers accounted on the simulated interconnect",
		func() float64 { return float64(p.net.Stats().Transfers) })
	reg.CounterFunc("net_bytes_moved_total", "bytes moved over the simulated interconnect",
		func() float64 { return float64(p.net.Stats().BytesMoved) })
	reg.CounterFunc("net_faults_total", "transfer attempts perturbed by the fault injector",
		func() float64 { return float64(p.net.Stats().Faulted) })
	reg.CounterFunc("breaker_opens_total", "circuit-breaker trips across hybrid routes",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			var n int64
			for _, rs := range p.routes {
				n += rs.breaker.Opens()
			}
			return float64(n)
		})
	reg.CounterFunc("breaker_transitions_total", "circuit-breaker state transitions across hybrid routes",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			var n int64
			for _, rs := range p.routes {
				n += rs.breaker.Transitions()
			}
			return float64(n)
		})
	reg.CounterFunc("pipeline_tasks_submitted_total", "in-transit tasks successfully submitted",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(p.submitted)
		})
	reg.CounterFunc("pipeline_tasks_completed_total", "in-transit tasks drained to a final result",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(p.completed)
		})
	// Recovery families are registered unconditionally (zero without a
	// journal) so scrapes see a stable schema across configurations.
	reg.CounterFunc("recovery_replayed_tasks_total", "resubmissions of journaled-but-uncommitted tasks after resume",
		func() float64 {
			if p.rec == nil {
				return 0
			}
			return float64(p.rec.replayed.Load())
		})
	reg.CounterFunc("recovery_commits_total", "step commit records appended to the journal",
		func() float64 {
			if p.rec == nil {
				return 0
			}
			return float64(p.rec.commits.Load())
		})
	reg.CounterFunc("recovery_checkpoints_total", "checkpoint records appended to the journal",
		func() float64 {
			if p.rec == nil {
				return 0
			}
			return float64(p.rec.ckpts.Load())
		})
	reg.CounterFunc("recovery_journal_fsyncs_total", "fsync calls issued by the step journal",
		func() float64 {
			if p.rec == nil {
				return 0
			}
			return float64(p.rec.j.Fsyncs())
		})
	reg.GaugeFunc("recovery_resume_seconds", "wall time from Resume to the first live step",
		func() float64 {
			if p.rec == nil {
				return 0
			}
			p.rec.mu.Lock()
			defer p.rec.mu.Unlock()
			return p.rec.resumeSeconds
		})
	return pl
}

// Obs returns the observability plane, or nil if EnableObs was not
// called.
func (p *Pipeline) Obs() *obs.Plane {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.plane
}

// Status snapshots the pipeline's live state for the /status endpoint:
// drain accounting, queue and bucket occupancy, breaker positions,
// the credit account, and the resilience counters. Safe to call from
// any goroutine while Run is in flight.
func (p *Pipeline) Status() map[string]any {
	p.mu.Lock()
	submitted, completed, simDone := p.submitted, p.completed, p.simDone
	p.mu.Unlock()
	st := map[string]any{
		"submitted":    submitted,
		"completed":    completed,
		"sim_done":     simDone,
		"done":         simDone && submitted == completed,
		"queue_depth":  p.ds.QueueDepth(),
		"free_buckets": p.ds.FreeBuckets(),
		"resilience":   p.resilience(),
	}
	if cs := p.fabric.CodecStats(); cs.RawBytes > 0 {
		st["codec"] = map[string]any{
			"raw_bytes":     cs.RawBytes,
			"encoded_bytes": cs.EncodedBytes,
			"ratio":         cs.Ratio(),
			"max_error":     cs.MaxError,
		}
	}
	if br := p.BreakerStates(); len(br) > 0 {
		m := make(map[string]string, len(br))
		for name, s := range br {
			m[name] = s.String()
		}
		st["breakers"] = m
	}
	if c := p.ds.Credits(); c != nil {
		st["credits"] = map[string]any{
			"total":       c.Total(),
			"available":   c.Available(),
			"outstanding": c.Outstanding(),
			"denied":      c.Denied(),
		}
	}
	return st
}

// PinnedRegions returns the number of intermediate-data regions still
// pinned on the simulation ranks' endpoints. After Run has drained,
// a leak-free pipeline reports zero: every payload was released once
// its staging bucket pulled it.
func (p *Pipeline) PinnedRegions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, ep := range p.eps {
		total += ep.Regions()
	}
	return total
}

// releaseHandle frees a pinned intermediate region once the staging
// bucket has pulled it and recycles the producer's marshal buffer, so
// steady-state timesteps reuse the same intermediate-data buffers
// instead of allocating fresh ones. Safe because in-situ stages build
// each payload from scratch and never touch it after RegisterMem.
func (p *Pipeline) releaseHandle(d dataspaces.Descriptor) {
	p.mu.Lock()
	ep := p.eps[d.Handle.Endpoint]
	p.mu.Unlock()
	if ep != nil {
		if buf, err := ep.Reclaim(d.Handle); err == nil {
			bufpool.Put(buf)
		}
	}
}

func (p *Pipeline) recordErr(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.runErrs = append(p.runErrs, err)
}

func (p *Pipeline) storeResult(name string, step int, out any) {
	// Frames leave the process here: encoded into the image store and
	// replaced by references before the result map ever sees them.
	// persistFrames runs outside p.mu (the store has its own lock).
	out = p.persistFrames(name, step, out)
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.results[name]
	if !ok {
		m = make(map[int]any)
		p.results[name] = m
	}
	m[step] = out
}

// Report is the outcome of a pipeline run.
type Report struct {
	Steps      int
	Results    map[string]map[int]any // analysis -> step -> output
	Metrics    *metrics.Collector
	Net        netsim.Stats
	Resilience metrics.Resilience
	Overload   metrics.Overload
	Codec      dart.CodecStats
	Recovery   *RecoveryReport // nil unless Config.Recovery was set
	Warnings   []error         // non-fatal conditions (e.g. checkpoint fallback)
	Errs       []error
}

// Result returns the stored output of an analysis at a step.
func (r *Report) Result(analysis string, step int) any {
	m, ok := r.Results[analysis]
	if !ok {
		return nil
	}
	return m[step]
}

// Run executes the full pipeline for the given number of steps and
// blocks until the simulation has finished and every in-transit task
// has drained. Steps are numbered 1..steps. With recovery enabled,
// Run requires an empty journal (a fresh run); use Resume to continue
// an interrupted one.
func (p *Pipeline) Run(steps int) (*Report, error) {
	if p.rec != nil && len(p.rec.j.Records()) > 0 {
		return nil, fmt.Errorf("core: journal %s is not empty; use Resume to continue the interrupted run", p.rec.j.Dir())
	}
	return p.run(steps, false)
}

// Resume continues an interrupted recovery-enabled run: simulation
// state is rehydrated from the newest intact checkpoint at or below
// the last committed step, the gap is replayed silently, transfer-path
// codec base state is re-seeded, and live stepping restarts at the
// first uncommitted step — producing results bit-identical to the run
// that never crashed. Already committed tasks are never resubmitted;
// journaled-but-uncommitted ones are replayed exactly once.
func (p *Pipeline) Resume(steps int) (*Report, error) {
	if p.rec == nil {
		return nil, fmt.Errorf("core: Resume requires Config.Recovery")
	}
	return p.run(steps, true)
}

func (p *Pipeline) run(steps int, resume bool) (*Report, error) {
	if steps < 1 {
		return nil, fmt.Errorf("core: steps must be >= 1")
	}
	if p.sched != nil {
		return nil, fmt.Errorf("core: tenant %q belongs to a scheduler; call Scheduler.Run", p.tenant)
	}
	p.mu.Lock()
	if p.ran {
		p.mu.Unlock()
		return nil, fmt.Errorf("core: a pipeline runs once; build a new one to run again")
	}
	p.ran = true
	p.mu.Unlock()

	if p.rec != nil {
		p.rec.resume = resume
		p.rec.t0 = time.Now()
		if resume {
			if err := p.planResume(steps); err != nil {
				return nil, err
			}
		}
	}

	// Overload control: bound the task queue, size the credit account
	// to the most work the transit tier can hold (buckets draining plus
	// a full queue), reserve a floor per hybrid analysis, and give each
	// route its breaker and ladder.
	if p.ov != nil {
		p.ds.SetQueueBound(p.ov.QueueBound)
		reservations := make(map[string]int)
		for _, name := range p.buildRoutes() {
			reservations[name] = p.ov.Reserve
		}
		total := p.ov.Credits
		if total <= 0 {
			total = p.cfg.Buckets + p.ov.QueueBound
		}
		// Reservations only make sense when the supply can cover them
		// with headroom to spare; a tiny account degrades to one shared
		// pool rather than failing or starving every route.
		if p.ov.Reserve*len(reservations) >= total {
			reservations = nil
		}
		if err := p.ds.EnableCredits(total, reservations); err != nil {
			return nil, err
		}
	}

	// Install staging handlers and start the buckets.
	p.installHandlers()
	p.area.Start()

	// Drain results concurrently with the simulation.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for res := range p.area.Results() {
			p.handleResult(res)
		}
	}()

	// The SPMD simulation + in-situ loop.
	comm.Run(p.sim.Ranks(), func(r *comm.Rank) {
		if err := p.rankLoop(r, steps); err != nil {
			p.recordErr(err)
		}
	})

	p.mu.Lock()
	p.simDone = true
	p.mu.Unlock()
	p.maybeCloseDS()
	p.area.Wait()
	<-drained

	return p.finishReport(steps)
}

// finishReport folds the run's counters into the collector and builds
// the final Report. Called once per pipeline, after its simulation has
// finished and the drain has delivered every final result.
func (p *Pipeline) finishReport(steps int) (*Report, error) {
	p.col.RecordResilience(p.resilience())
	if p.ov != nil {
		var o metrics.Overload
		if c := p.ds.Credits(); c != nil {
			o.CreditsDenied = c.Denied()
		}
		for _, rs := range p.routes {
			o.BreakerOpens += rs.breaker.Opens()
			o.BreakerTransitions += rs.breaker.Transitions()
		}
		p.col.RecordOverload(o)
	}

	var recRep *RecoveryReport
	if p.rec != nil {
		recRep = p.rec.report()
		if p.rec.j.Killed() {
			// The injected crash is the run's outcome: everything after
			// the kill point is non-durable and Resume will redo it.
			p.recordErr(fmt.Errorf("core: injected crash: %w", recovery.ErrKilled))
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	rep := &Report{
		Steps:      steps,
		Results:    p.results,
		Metrics:    p.col,
		Net:        p.net.Stats(),
		Resilience: p.col.Resilience(),
		Overload:   p.col.Overload(),
		Codec:      p.fabric.CodecStats(),
		Recovery:   recRep,
		Warnings:   append([]error{}, p.warns...),
		Errs:       append([]error{}, p.runErrs...),
	}
	if len(rep.Errs) > 0 {
		return rep, rep.Errs[0]
	}
	return rep, nil
}

// installHandlers registers the analyses' in-transit handlers on the
// staging area under this pipeline's tenant ("" outside a scheduler).
// Streaming stages take precedence when an analysis implements both
// kinds.
func (p *Pipeline) installHandlers() {
	for _, a := range p.analyses {
		if sh, ok := a.(StreamingHybridAnalysis); ok {
			shh := sh
			p.area.HandleStreamT(p.tenant, sh.Name(), func(task dataspaces.Task, in <-chan staging.StreamInput) (any, error) {
				return shh.InTransitStream(task.Step, in)
			})
			continue
		}
		if h, ok := a.(HybridAnalysis); ok {
			hh := h
			p.area.HandleT(p.tenant, h.Name(), func(task dataspaces.Task, data [][]byte) (any, error) {
				return hh.InTransit(task.Step, data)
			})
		}
	}
}

// handleResult folds one final in-transit result into the pipeline:
// trace spans, breaker/quarantine bookkeeping, result storage, transit
// metrics, and drain accounting. Exactly one goroutine per pipeline
// calls it — the pipeline's own drain loop, or the scheduler's shared
// one dispatching by tenant.
func (p *Pipeline) handleResult(res staging.Result) {
	if p.tl != nil {
		p.tl.Add(fmt.Sprintf("bucket-%d", res.Bucket),
			fmt.Sprintf("%s@%d", res.Task.Analysis, res.Task.Step),
			res.Start, res.End)
	}
	p.observeResult(res)
	if p.quar != nil {
		if res.Task.Probe {
			p.quar.RecordProbe(p.tenant, res.Task.Analysis, res.Err == nil)
		} else {
			p.quar.Settle(p.tenant, res.Task.Analysis, res.Err == nil)
		}
	}
	switch {
	case res.DeadLetter:
		// The task's data already left the ranks, so no in-situ
		// fallback is possible; the step is explicitly degraded
		// rather than silently missing or a hard failure.
		p.storeResult(res.Task.Analysis, res.Task.Step,
			Degraded{Reason: res.Err.Error()})
		p.col.AddDegradedStep()
		if p.tl != nil {
			p.tl.Mark(fmt.Sprintf("bucket-%d", res.Bucket),
				fmt.Sprintf("dead-letter %s@%d", res.Task.Analysis, res.Task.Step), res.End)
		}
	case res.Err != nil:
		p.recordErr(fmt.Errorf("core: in-transit %s step %d: %w",
			res.Task.Analysis, res.Task.Step, res.Err))
	case res.Task.Shaped > 0:
		// A shaped step completed on the transit path, but at
		// reduced fidelity: mark it so consumers can tell it from
		// a full-quality result.
		p.storeResult(res.Task.Analysis, res.Task.Step, Degraded{
			Reason: fmt.Sprintf("shaped: coarser payload (level %d)", res.Task.Shaped),
			Value:  res.Output,
		})
	default:
		p.storeResult(res.Task.Analysis, res.Task.Step, res.Output)
	}
	// The serialized (sum) modeled pull time is the right
	// "data movement time": a single bucket's ingress link
	// admits one RDMA stream's worth of bandwidth at a time.
	p.col.RecordTransit(res.Task.Analysis, res.MoveModeledSum, res.MoveWall,
		res.BytesMoved, res.ComputeWall)
	p.mu.Lock()
	p.completed++
	p.mu.Unlock()
	p.maybeCommitSteps()
	p.maybeCloseDS()
}

// maybeCloseDS closes the task queue once the simulation has finished
// and every submitted task has drained to its final Result. Close is
// idempotent, so racing calls are harmless. Under a scheduler, the
// queue is shared: the close decision aggregates every tenant.
func (p *Pipeline) maybeCloseDS() {
	if p.sched != nil {
		p.sched.maybeClose()
		return
	}
	p.mu.Lock()
	done := p.simDone && p.completed == p.submitted
	p.mu.Unlock()
	if done {
		p.ds.Close()
	}
}

// buildRoutes gives every hybrid analysis its breaker and ladder and
// returns the route names, in registration order. Requires p.ov.
func (p *Pipeline) buildRoutes() []string {
	var names []string
	for _, a := range p.analyses {
		if _, ok := a.(hybridStage); ok {
			names = append(names, a.Name())
			// Route insertion is p.mu-guarded because scrape-time
			// metric functions iterate p.routes concurrently.
			p.mu.Lock()
			p.routes[a.Name()] = &routeState{
				breaker: overload.NewBreaker(p.ov.Breaker),
				ladder:  overload.NewLadder(p.ov.Ladder),
			}
			p.mu.Unlock()
		}
	}
	return names
}

// resilience snapshots the failure counters across all layers. Under a
// scheduler the transport counters come from the tenant's own rank
// endpoints (owner-attributed), while queue/bucket counters stay
// fabric-wide: buckets are shared, so requeues and crashes are not a
// per-tenant quantity.
func (p *Pipeline) resilience() metrics.Resilience {
	fs := p.fabric.Stats()
	if p.tenant != "" {
		var retries, crc int64
		p.mu.Lock()
		for _, ep := range p.eps {
			s := ep.Stats()
			retries += s.Retries
			crc += s.ChecksumFailures
		}
		p.mu.Unlock()
		fs.Retries, fs.ChecksumFailures = retries, crc
	}
	as := p.area.Resilience()
	return metrics.Resilience{
		Faults:           p.net.Stats().Faulted,
		Retries:          fs.Retries,
		ChecksumFailures: fs.ChecksumFailures,
		Requeues:         as.Requeues,
		Crashes:          as.Crashes,
		DeadLetters:      as.DeadLetters,
	}
}

// observeResult feeds one final in-transit result into the route's
// breaker and the shared latency estimator. Only the drain goroutine
// calls it. Task outcomes move a breaker out of Closed only — a stale
// in-flight result cannot flip a route the prober is recovering.
func (p *Pipeline) observeResult(res staging.Result) {
	if p.ov == nil {
		return
	}
	rs := p.routes[res.Task.Analysis]
	if rs == nil {
		return
	}
	now := time.Now()
	prev := rs.breaker.State()
	if res.Err != nil {
		rs.breaker.RecordFailure(now)
	} else {
		lat := res.End.Sub(res.Start)
		rs.breaker.RecordSuccess(now, lat)
		p.est.ObserveLatency(lat)
	}
	p.markBreaker(res.Task.Analysis, prev, rs.breaker.State(), res.Task.Step)
}

// markBreaker records a route's breaker transition on the trace and,
// when the plane is attached, as an admission-category event.
func (p *Pipeline) markBreaker(name string, prev, cur overload.BreakerState, step int) {
	if prev == cur {
		return
	}
	if p.tl != nil {
		p.tl.Mark("overload", fmt.Sprintf("%s breaker %s→%s@%d", name, prev, cur, step), time.Now())
	}
	if p.plane != nil {
		attrs := []obs.Attr{
			obs.Str("analysis", name),
			obs.Str("from", prev.String()),
			obs.Str("to", cur.String()),
			obs.Int("step", step),
		}
		if p.tenant != "" {
			attrs = append(attrs, obs.Str("tenant", p.tenant))
		}
		p.plane.Recorder().Event(0, obs.CatAdmit, "overload", "breaker.transition", time.Now(), attrs...)
	}
}

// observeAdmit records one admission verdict: the per-level counter
// plus an admission event carrying the ladder's reasoning.
func (p *Pipeline) observeAdmit(step int, d admitDecision) {
	if p.plane == nil {
		return
	}
	if c := p.admitCtr[d.Level]; c != nil {
		c.Inc()
	}
	attrs := []obs.Attr{
		obs.Str("analysis", d.Name),
		obs.Str("level", d.Level.String()),
		obs.Int("step", step),
		obs.Bool("credited", d.Credited),
		obs.Str("reason", d.Reason),
	}
	if p.tenant != "" {
		attrs = append(attrs, obs.Str("tenant", p.tenant))
	}
	p.plane.Recorder().Event(0, obs.CatAdmit, "overload", "admit", time.Now(), attrs...)
}

// probeRoute runs the half-open health probe: a tiny Get against the
// staging area's probe region. The verdict uses the *modeled* transfer
// duration against ProbeLatencyMax, so a browned-out tier — slow but
// delivering — fails the probe even though the wall time of a 16-byte
// pull is negligible either way. The wall time is additionally bounded
// by a real deadline so a stalled fabric cannot block admission.
func (p *Pipeline) probeRoute(ep *dart.Endpoint) bool {
	deadline := time.Now().Add(p.ov.ProbeLatencyMax + 50*time.Millisecond)
	data, modeled, err := ep.GetDeadline(p.area.ProbeHandle(), deadline)
	if err != nil {
		return false
	}
	bufpool.Put(data)
	return modeled <= p.ov.ProbeLatencyMax
}

// admitStep is rank 0's admission pass for one step: for every hybrid
// analysis due, consult the route's breaker (running the half-open
// probe when asked), fold the pressure signals into the admission
// ladder, and acquire a transit credit for levels that will submit.
// A route that cannot get a credit floors at the in-situ rung for the
// step — admission never blocks and never over-commits the tier.
func (p *Pipeline) admitStep(ep *dart.Endpoint, step int) []admitDecision {
	var out []admitDecision
	stepMax := overload.LevelFull
	credits := p.ds.Credits()
	p.est.ObserveQueue(float64(p.queueDepth()))
	for _, a := range p.analyses {
		an, ok := a.(hybridStage)
		if !ok || !due(a, step) {
			continue
		}
		name := an.Name()
		// Quarantine outranks the breaker: a poisoned (tenant, analysis)
		// route fails in the handler, not in transit, so transit-health
		// probing cannot clear it. A rejected route floors at the
		// in-situ rung without touching breaker, ladder, or credits; a
		// half-open route sends exactly one full-fidelity probe task.
		if p.quar != nil {
			switch p.quar.Allow(p.tenant, name) {
			case overload.QReject:
				d := admitDecision{Name: name, Level: overload.LevelInSitu,
					Reason: "in-situ: route quarantined"}
				p.observeAdmit(step, d)
				out = append(out, d)
				stepMax = maxLevel(stepMax, d.Level)
				continue
			case overload.QProbe:
				d := admitDecision{Name: name, Level: overload.LevelFull,
					Reason: "full: quarantine half-open probe", Probe: true}
				if credits != nil && !credits.Acquire(p.creditAccount(name)) {
					// No capacity to probe with: the attempt is spent, the
					// route stays quarantined until the next probe window.
					p.quar.RecordProbe(p.tenant, name, false)
					d = admitDecision{Name: name, Level: overload.LevelInSitu,
						Reason: "in-situ: quarantine probe denied credit"}
				} else if credits != nil {
					d.Credited = true
				}
				p.observeAdmit(step, d)
				out = append(out, d)
				stepMax = maxLevel(stepMax, d.Level)
				continue
			}
		}
		rs := p.routes[name]
		now := time.Now()
		prev := rs.breaker.State()
		if rs.breaker.Allow(now) == overload.Probe {
			ok := p.probeRoute(ep)
			rs.breaker.RecordProbe(time.Now(), ok)
		}
		cur := rs.breaker.State()
		p.markBreaker(name, prev, cur, step)

		sig := overload.Signals{
			BreakerOpen:      cur != overload.Closed,
			CreditsExhausted: credits.Exhausted(p.creditAccount(name)),
			QueueDepth:       p.est.Queue(),
			Latency:          p.est.Latency(),
		}
		level := rs.ladder.Observe(sig)
		reason := fmt.Sprintf("%s: breaker %s, queue %.1f, latency %s",
			level, cur, sig.QueueDepth, sig.Latency.Round(time.Microsecond))
		// Analyses whose payload exposes no float tail skip the
		// quantized rung (the delta rung applies to every route: delta
		// frames are exact and self-contained).
		if level == overload.LevelQuantized {
			if _, quantizes := a.(QuantizableStage); !quantizes {
				level = overload.LevelShaped
				reason = "shaped: no quantizable stage; " + reason
			}
		}
		// Analyses without a shaped stage skip that rung.
		if level == overload.LevelShaped {
			if _, shapes := a.(ShapedStage); !shapes {
				level = overload.LevelInSitu
				reason = "in-situ: no shaped stage; " + reason
			}
		}
		credited := false
		if level <= overload.LevelShaped {
			if credits.Acquire(p.creditAccount(name)) {
				credited = true
			} else {
				level = overload.LevelInSitu
				reason = "in-situ: no transit credit; " + reason
			}
		}
		if p.tl != nil && level != rs.lastLevel {
			p.tl.Mark("overload", fmt.Sprintf("%s ladder %s→%s@%d", name, rs.lastLevel, level, step), time.Now())
		}
		rs.lastLevel = level
		d := admitDecision{Name: name, Level: level, Reason: reason, Credited: credited}
		p.observeAdmit(step, d)
		out = append(out, d)
		stepMax = maxLevel(stepMax, level)
	}
	// The worst level of this pass is the tenant's pressure signal for
	// the scheduler's autoscaler (atomic: the drain goroutine reads it).
	p.curLevel.Store(int64(stepMax))
	return out
}

// maxLevel returns the more degraded of two ladder levels.
func maxLevel(a, b overload.Level) overload.Level {
	if b > a {
		return b
	}
	return a
}

// creditAccount maps a route to its flow-control account: under a
// scheduler every route of a tenant draws from the tenant's account
// (the bulkhead); standalone pipelines keep per-analysis accounts.
func (p *Pipeline) creditAccount(name string) string {
	if p.tenant != "" {
		return p.tenant
	}
	return name
}

// queueDepth is the pipeline's own backlog: its tenant queue under a
// scheduler, the global queue otherwise.
func (p *Pipeline) queueDepth() int {
	if p.tenant != "" {
		return p.ds.QueueDepthT(p.tenant)
	}
	return p.ds.QueueDepth()
}

// Credits returns the transit tier's credit account (nil unless
// overload control is enabled).
func (p *Pipeline) Credits() *dataspaces.Credits { return p.ds.Credits() }

// BreakerStates returns each hybrid route's current breaker position
// (empty unless overload control is enabled).
func (p *Pipeline) BreakerStates() map[string]overload.BreakerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]overload.BreakerState, len(p.routes))
	for name, rs := range p.routes {
		out[name] = rs.breaker.State()
	}
	return out
}

// rankLoop is one rank's simulation + in-situ schedule.
func (p *Pipeline) rankLoop(r *comm.Rank, steps int) error {
	rk, err := p.sim.NewRank(r)
	if err != nil {
		return err
	}
	ep := p.preEps[r.ID()]
	if ep == nil {
		ep = p.fabric.Register(fmt.Sprintf("sim-%d", r.ID()))
	}
	p.mu.Lock()
	p.eps[ep.ID()] = ep
	p.mu.Unlock()

	ctx := &Ctx{
		Comm:   r,
		Sim:    rk,
		Global: p.cfg.Sim.Global,
		Owned:  rk.OwnedBox(),
		Decomp: p.sim.Decomp(),
		State:  make(map[string]any),
	}

	// Per-route codec keys (analysis × rank — one producer stream
	// each), precomputed so the hot loop does not build strings. Under
	// a scheduler the key is tenant-qualified: the codec registry is
	// shared, and two tenants running the same analysis must not chain
	// their delta streams.
	codecKeys := make(map[string]string, len(p.analyses))
	for _, a := range p.analyses {
		if _, ok := a.(hybridStage); ok {
			route := a.Name()
			if p.tenant != "" {
				route = p.tenant + "/" + a.Name()
			}
			codecKeys[a.Name()] = codec.Key(route, r.ID())
		}
	}

	// Resume: rehydrate simulation state from the restored checkpoint,
	// replay the gap up to the last committed step silently (committed
	// steps' tasks are deduped, so nothing is re-submitted), re-seed the
	// delta codec's base state with the payloads the committed boundary
	// step produced, and start live stepping just past the commit line.
	start := 1
	if p.rec != nil && p.rec.resume {
		if p.rec.ckptStep > 0 {
			if err := rk.Restore(p.rec.ckptStep, p.rec.ckptFields[r.ID()]); err != nil {
				return fmt.Errorf("core: resume restore rank %d: %w", r.ID(), err)
			}
		}
		for s := p.rec.ckptStep + 1; s <= p.rec.resumeFrom; s++ {
			rk.Step()
		}
		if p.rec.resumeFrom >= 1 {
			ctx.Step = p.rec.resumeFrom
			for _, a := range p.analyses {
				an, ok := a.(hybridStage)
				if !ok || !due(a, p.rec.resumeFrom) {
					continue
				}
				payload, err := an.InSituStage(ctx)
				if err != nil {
					p.recordErr(fmt.Errorf("core: resume reseed %s rank %d: %w", a.Name(), r.ID(), err))
					continue
				}
				p.codecs.SeedBase(codecKeys[a.Name()], p.rec.resumeFrom, payload)
				bufpool.Put(payload)
			}
		}
		start = p.rec.resumeFrom + 1
		if r.ID() == 0 {
			p.rec.markResumed()
		}
	}

	for step := start; step <= steps; step++ {
		// Journal phase boundary: a kill injected here (or left behind
		// by the drain goroutine's post-commit boundary) stops every
		// rank together before the step runs — ranks never diverge on
		// collectives.
		if p.rec != nil {
			if r.ID() == 0 {
				p.recKill(recovery.PhasePreAdmit, step)
			}
			if r.Broadcast(0, p.rec.isKilled()).(bool) {
				return nil
			}
			if r.ID() == 0 {
				if err := p.rec.j.Append(recovery.Record{Kind: recovery.KindAdmit, Step: step}); err != nil && !errors.Is(err, recovery.ErrKilled) {
					p.recordErr(fmt.Errorf("core: journal admit step %d: %w", step, err))
				}
			}
		}
		stepStart := time.Now()
		rk.Step()
		p.col.RecordSimStep(step, time.Since(stepStart))
		if p.tl != nil && r.ID() == 0 {
			p.tl.Add("sim", fmt.Sprintf("step %d", step), stepStart, time.Now())
		}
		ctx.Step = step

		// Admission. With overload control enabled, rank 0 runs the
		// breaker + ladder admission pass and broadcasts the verdicts so
		// every rank takes the same branch (the in-situ fallbacks use
		// collectives). Without it, the legacy transit-health check
		// applies: when a step budget is configured and hybrid work is
		// due, rank 0 probes the staging area within the budget and a
		// failed probe degrades the whole step to in-situ fallbacks.
		var decisions map[string]admitDecision
		degradeReason := ""
		if p.ov != nil {
			if p.hybridDue(step) {
				var decs []admitDecision
				if r.ID() == 0 {
					decs = p.admitStep(ep, step)
				}
				decs = r.Broadcast(0, decs).([]admitDecision)
				decisions = make(map[string]admitDecision, len(decs))
				for _, d := range decs {
					decisions[d.Name] = d
				}
			}
		} else if p.cfg.StepBudget > 0 && p.hybridDue(step) {
			if r.ID() == 0 {
				if err := p.probeTransit(ep); err != nil {
					degradeReason = fmt.Sprintf("transit probe: %v", err)
					p.col.AddDegradedStep()
					if p.tl != nil {
						p.tl.Mark("sim", fmt.Sprintf("degraded@%d", step), time.Now())
					}
				}
			}
			degradeReason = r.Broadcast(0, degradeReason).(string)
		}

		// Analysis errors are recorded but never abort the rank: a rank
		// that stops stepping would deadlock the others' collectives,
		// so the loop always keeps participating.
		anyHybrid := false
		for _, a := range p.analyses {
			if !due(a, step) {
				continue
			}
			switch an := a.(type) {
			case InSituAnalysis:
				t := time.Now()
				out, err := an.RunInSitu(ctx)
				p.col.RecordInSitu(an.Name(), step, time.Since(t))
				if err != nil {
					p.recordErr(fmt.Errorf("core: in-situ %s step %d rank %d: %w", an.Name(), step, r.ID(), err))
					continue
				}
				if r.ID() == 0 && out != nil {
					p.storeResult(an.Name(), step, out)
				}
			case hybridStage:
				if degradeReason != "" {
					p.runFallback(ctx, r, an, step, degradeReason)
					continue
				}
				shaped := 0
				if dec, ok := decisions[an.Name()]; ok {
					switch dec.Level {
					case overload.LevelShed:
						// Shed: no work at all this step, only an explicit
						// marker so the step is never silently missing.
						if r.ID() == 0 {
							p.storeResult(an.Name(), step, Degraded{Reason: dec.Reason})
							p.col.AddShedStep()
						}
						continue
					case overload.LevelInSitu:
						if r.ID() == 0 {
							p.col.AddOverloadFallback()
							p.col.AddDegradedStep()
						}
						p.runFallback(ctx, r, an, step, dec.Reason)
						continue
					case overload.LevelShaped:
						shaped = 1
						if r.ID() == 0 {
							p.col.AddShapedStep()
						}
					case overload.LevelDelta:
						if r.ID() == 0 {
							p.col.AddDeltaStep()
						}
					case overload.LevelQuantized:
						if r.ID() == 0 {
							p.col.AddQuantizedStep()
						}
					}
				}
				anyHybrid = true
				t := time.Now()
				var payload []byte
				var err error
				if shaped > 0 {
					payload, err = an.(ShapedStage).InSituStageShaped(ctx, shaped)
				} else {
					payload, err = an.InSituStage(ctx)
				}
				p.col.RecordInSitu(an.Name(), step, time.Since(t))
				if err != nil {
					p.recordErr(fmt.Errorf("core: in-situ stage %s step %d rank %d: %w", an.Name(), step, r.ID(), err))
					continue
				}
				spec := p.codecSpec(an.Name())
				if dec, ok := decisions[an.Name()]; ok {
					spec = ladderSpec(dec.Level, spec)
				}
				h, err := p.registerPayload(ep, an, spec, codecKeys[an.Name()], step, payload)
				if err != nil {
					p.recordErr(fmt.Errorf("core: register %s step %d rank %d: %w", an.Name(), step, r.ID(), err))
					continue
				}
				p.ds.Put(dataspaces.Descriptor{
					Tenant:  p.tenant,
					Name:    an.Name(),
					Version: step,
					Box:     rk.OwnedBox(),
					Rank:    r.ID(),
					Handle:  h,
				})
			default:
				p.recordErr(fmt.Errorf("core: analysis %s implements neither InSituAnalysis nor HybridAnalysis", a.Name()))
			}
		}

		// Data-ready: once every rank has registered its block, rank 0
		// creates the in-transit task(s) for this step.
		if anyHybrid {
			r.Barrier()
			if r.ID() == 0 {
				var deadline time.Time
				if p.cfg.StepBudget > 0 {
					deadline = time.Now().Add(p.cfg.StepBudget)
				}
				for _, a := range p.analyses {
					if _, ok := a.(hybridStage); !ok || !due(a, step) {
						continue
					}
					dec, admitted := decisions[a.Name()]
					if admitted && dec.Level > overload.LevelShaped {
						continue // shed or fell back in-situ: nothing staged
					}
					inputs := p.ds.QueryT(p.tenant, a.Name(), step)
					sortByRank(inputs)
					spec := dataspaces.TaskSpec{
						Tenant: p.tenant, Analysis: a.Name(), Step: step, Inputs: inputs, Deadline: deadline,
					}
					if admitted {
						if dec.Level == overload.LevelShaped {
							spec.Shaped = 1
						}
						spec.Credited = dec.Credited
						spec.Probe = dec.Probe
					}
					if _, err := p.ds.SubmitSpec(spec); err != nil {
						if errors.Is(err, dataspaces.ErrDuplicateTask) {
							// Already durably submitted and committed in a
							// previous life: release the pinned inputs and
							// the credit exactly once, store nothing.
							p.skipDuplicate(a.Name(), inputs, dec)
						} else {
							p.shedSubmitted(a.Name(), step, inputs, dec, err)
						}
					} else {
						p.mu.Lock()
						p.submitted++
						p.mu.Unlock()
						if p.rec != nil {
							if p.rec.countReplay(a.Name(), step) {
								p.rec.replayed.Add(1)
							}
							if err := p.rec.j.Append(recovery.Record{Kind: recovery.KindSubmit, Step: step, Analysis: a.Name()}); err != nil && !errors.Is(err, recovery.ErrKilled) {
								p.recordErr(fmt.Errorf("core: journal submit %s step %d: %w", a.Name(), step, err))
							}
							p.recKill(recovery.PhaseMidSubmit, step)
						}
					}
					p.ds.RemoveT(p.tenant, a.Name(), step)
				}
			}
		}
		// Checkpoint cadence and the commit cursor: the checkpoint is a
		// collective write (every rank's bp file, then one journal
		// record); the commit advance is rank 0's alone and also fires
		// from the drain goroutine as in-transit results land.
		if p.rec != nil {
			if step%p.rec.every == 0 {
				p.writeCheckpoint(r, rk, step)
			}
			if r.ID() == 0 {
				p.noteStepped(step)
			}
		}
		p.col.RecordStepWall(step, time.Since(stepStart))
	}
	return nil
}

// codecSpec resolves the configured transfer-path codec for a route:
// the route's own entry, then the "*" fallback, then identity.
func (p *Pipeline) codecSpec(name string) codec.Spec {
	if s, ok := p.cfg.Codecs[name]; ok {
		return s
	}
	if s, ok := p.cfg.Codecs["*"]; ok {
		return s
	}
	return codec.Spec{}
}

// ladderSpec maps an admission level onto the codec spec for the step:
// the delta and quantized rungs override the configured codec, other
// levels keep it. A quantized rung inherits the route's configured
// error bound when the config already selects quantize.
func ladderSpec(level overload.Level, cfg codec.Spec) codec.Spec {
	switch level {
	case overload.LevelDelta:
		return codec.Spec{ID: codec.Delta}
	case overload.LevelQuantized:
		q := codec.Spec{ID: codec.Quantize}
		if cfg.ID == codec.Quantize {
			q.MaxError = cfg.MaxError
		}
		return q
	}
	return cfg
}

// registerPayload encodes one intermediate payload under spec and pins
// the result for the staging tier to pull. Lossy codecs need the
// payload's float-tail offset from the analysis; when the analysis
// cannot provide one for this payload, the spec downgrades to delta —
// exact and self-contained — rather than reinterpreting opaque bytes
// as floats. When the encode produced a frame, the producer's marshal
// buffer is recycled immediately (the frame is what stays pinned);
// identity registrations keep the payload pinned exactly as before.
func (p *Pipeline) registerPayload(ep *dart.Endpoint, an hybridStage, spec codec.Spec, key string, step int, payload []byte) (dart.MemHandle, error) {
	floatOff := 0
	if spec.ID == codec.Quantize || spec.ID == codec.Subsample {
		off := -1
		if qa, ok := an.(QuantizableStage); ok {
			if o, ok2 := qa.PayloadFloatTail(payload); ok2 {
				off = o
			}
		}
		if off < 0 {
			spec = codec.Spec{ID: codec.Delta}
		} else {
			floatOff = off
		}
	}
	er, err := ep.RegisterMemEncoded(spec, key, step, payload, floatOff)
	if err != nil {
		return dart.MemHandle{}, err
	}
	if er.Codec != codec.Identity {
		bufpool.Put(payload)
	}
	return er.Handle, nil
}

// shedSubmitted disposes of a step whose intermediate payloads were
// already produced and pinned when submission failed: the transit tier
// refused the task (bounded queue full) or the service was gone. The
// pinned regions are reclaimed and their buffers recycled exactly once
// — the same linear-ownership rule as the dead-letter path — the
// flow-control credit is returned, and the step is stored as an
// explicit shed marker instead of leaking regions and vanishing.
func (p *Pipeline) shedSubmitted(name string, step int, inputs []dataspaces.Descriptor, dec admitDecision, cause error) {
	for _, in := range inputs {
		p.releaseHandle(in)
	}
	if dec.Credited {
		if c := p.ds.Credits(); c != nil {
			c.Release(p.creditAccount(name))
		}
	}
	// A credited quarantine probe that never reached the queue is a
	// failed probe: the route stays quarantined until the next window.
	if dec.Probe && p.quar != nil {
		p.quar.RecordProbe(p.tenant, name, false)
	}
	p.storeResult(name, step, Degraded{Reason: fmt.Sprintf("shed: %v", cause)})
	p.col.AddShedStep()
	if p.tl != nil {
		p.tl.Mark("overload", fmt.Sprintf("%s shed at submit@%d", name, step), time.Now())
	}
	if !errors.Is(cause, dataspaces.ErrQueueFull) && !errors.Is(cause, overload.ErrQuarantined) {
		// Backpressure and the quarantine guard are expected; anything
		// else is a real error too.
		p.recordErr(fmt.Errorf("core: submit %s step %d: %w", name, step, cause))
	}
}

// hybridDue reports whether any hybrid analysis runs at this step.
func (p *Pipeline) hybridDue(step int) bool {
	for _, a := range p.analyses {
		if _, ok := a.(hybridStage); ok && due(a, step) {
			return true
		}
	}
	return false
}

// probeTransit pulls the staging area's tiny probe region under the
// step budget. A healthy path answers in microseconds; a partitioned
// or saturated one fails (after DART's retries), which degrades the
// step before any intermediate data is produced or pinned.
func (p *Pipeline) probeTransit(ep *dart.Endpoint) error {
	data, _, err := ep.GetDeadline(p.area.ProbeHandle(), time.Now().Add(p.cfg.StepBudget))
	if err == nil {
		bufpool.Put(data)
	}
	return err
}

// runFallback executes one degraded hybrid analysis step fully
// in-situ. Analyses without a fallback still get an explicit Degraded
// marker so the step is never silently lost.
func (p *Pipeline) runFallback(ctx *Ctx, r *comm.Rank, an hybridStage, step int, reason string) {
	var out any
	var err error
	fb, hasFB := an.(InSituFallback)
	t := time.Now()
	if hasFB {
		out, err = fb.RunFallback(ctx)
	}
	p.col.RecordInSitu(an.Name(), step, time.Since(t))
	if err != nil {
		p.recordErr(fmt.Errorf("core: in-situ fallback %s step %d rank %d: %w", an.Name(), step, r.ID(), err))
		return
	}
	if r.ID() == 0 {
		p.storeResult(an.Name(), step, Degraded{Reason: reason, Value: out})
	}
}

// sortByRank orders descriptors by producing rank so in-transit
// payload slices are deterministic.
func sortByRank(ds []dataspaces.Descriptor) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Rank < ds[j-1].Rank; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
