package core

import (
	"errors"
	"math"
	"testing"

	"insitu/internal/comm"
	"insitu/internal/grid"
	"insitu/internal/mergetree"
	"insitu/internal/render"
	"insitu/internal/sim"
	"insitu/internal/stats"
)

// testSimConfig returns a small lifted-jet proxy over px*py*pz ranks.
func testSimConfig(px, py, pz int) sim.Config {
	cfg := sim.DefaultConfig(grid.NewBox(20, 12, 8), px, py, pz)
	cfg.KernelRate = 0.6
	return cfg
}

// globalFields runs a serial reference simulation and returns the
// requested variables at the given step.
func globalFields(t *testing.T, cfg sim.Config, steps int, vars []string) map[string]*grid.Field {
	t.Helper()
	ref := cfg
	ref.Px, ref.Py, ref.Pz = 1, 1, 1
	s, err := sim.New(ref)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*grid.Field)
	comm.Run(1, func(r *comm.Rank) {
		rk, err := s.NewRank(r)
		if err != nil {
			t.Error(err)
			return
		}
		rk.RunSteps(steps)
		for _, v := range vars {
			out[v] = rk.Field(v)
		}
	})
	return out
}

func TestPipelineValidation(t *testing.T) {
	cfg := DefaultConfig(testSimConfig(2, 2, 1))
	cfg.DSServers = 0
	if _, err := NewPipeline(cfg); err == nil {
		t.Fatal("zero servers must error")
	}
	cfg = DefaultConfig(testSimConfig(2, 2, 1))
	cfg.Buckets = 0
	if _, err := NewPipeline(cfg); err == nil {
		t.Fatal("zero buckets must error")
	}
	cfg = DefaultConfig(testSimConfig(2, 2, 1))
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(0); err == nil {
		t.Fatal("zero steps must error")
	}
}

// TestPipelineEndToEnd runs all five of the paper's analysis variants
// plus the auto-correlation extension through the full pipeline.
func TestPipelineEndToEnd(t *testing.T) {
	const steps = 4
	simCfg := testSimConfig(2, 2, 1)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	topo := NewTopologyHybrid()
	topo.SimplifyEps = 0.05
	topo.FeatureThreshold = 1.0
	p.Register(&StatsInSitu{})
	p.Register(&StatsHybrid{})
	p.Register(NewVizInSitu(16, 12))
	p.Register(NewVizHybrid(16, 12, 2))
	p.Register(topo)
	p.Register(&AutoCorrHybrid{Lags: []int{1, 2}})

	rep, err := p.Run(steps)
	if err != nil {
		t.Fatalf("pipeline run failed: %v (all errs: %v)", err, rep.Errs)
	}

	// Every analysis must have produced a result at every step.
	for _, name := range []string{
		"in-situ descriptive statistics",
		"hybrid descriptive statistics",
		"in-situ visualization",
		"hybrid visualization",
		"hybrid topology",
		"hybrid auto-correlation",
	} {
		for s := 1; s <= steps; s++ {
			if rep.Result(name, s) == nil {
				t.Fatalf("%s: missing result at step %d", name, s)
			}
		}
	}

	// Hybrid and in-situ statistics must agree.
	for s := 1; s <= steps; s++ {
		a := rep.Result("in-situ descriptive statistics", s).(map[string]stats.Derived)
		b := rep.Result("hybrid descriptive statistics", s).(map[string]stats.Derived)
		for _, v := range sim.VarNames {
			da, db := a[v], b[v]
			if da.N != db.N || math.Abs(da.Mean-db.Mean) > 1e-9 ||
				math.Abs(da.Variance-db.Variance) > 1e-9 {
				t.Fatalf("step %d var %s: in-situ %+v != hybrid %+v", s, v, da, db)
			}
		}
	}

	// The topology result carries the global tree and features.
	tr := rep.Result("hybrid topology", steps).(*TopologyResult)
	if tr.Tree == nil || len(tr.Tree.Nodes) == 0 {
		t.Fatal("topology returned an empty tree")
	}
	if tr.Stream.Declared == 0 {
		t.Fatal("streaming stats missing")
	}

	// Autocorrelation: adjacent steps of a smooth field correlate
	// strongly.
	ac := rep.Result("hybrid auto-correlation", steps).(*AutoCorrResult)
	if len(ac.Corr) != 2 {
		t.Fatalf("want 2 lags, got %+v", ac)
	}
	if ac.Corr[0] < 0.5 {
		t.Fatalf("lag-1 autocorrelation of a slowly evolving field should be high, got %g", ac.Corr[0])
	}
	if ac.Corr[0] <= ac.Corr[1] {
		t.Fatalf("autocorrelation should decay with lag: %v", ac.Corr)
	}

	// Data actually moved through the fabric.
	if rep.Net.BytesMoved == 0 {
		t.Fatal("no bytes moved through the network")
	}
	// Metrics captured all analyses plus sim time.
	if total, _, n := rep.Metrics.SimTime(); total <= 0 || n != steps {
		t.Fatalf("sim time not recorded: %v over %d steps", total, n)
	}
	if got := len(rep.Metrics.Analyses()); got != 6 {
		t.Fatalf("want metrics for 6 analyses, got %d: %v", got, rep.Metrics.Analyses())
	}
	if rep.Metrics.TableII() == "" {
		t.Fatal("empty Table II")
	}
}

// TestPipelineTopologyMatchesSerial: the tree produced through the
// full pipeline (simulation -> in-situ subtrees -> DART -> staging ->
// streaming glue) equals the serial merge tree of the global field.
func TestPipelineTopologyMatchesSerial(t *testing.T) {
	const steps = 3
	simCfg := testSimConfig(2, 2, 2)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Register(NewTopologyHybrid())
	rep, err := p.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	want := globalFields(t, simCfg, steps, []string{"T"})["T"]
	serial := mergetree.FromField(want, simCfg.Global)
	reduce := func(tr *mergetree.Tree) *mergetree.Tree {
		return mergetree.Reduce(tr, func(n *mergetree.Node) bool { return false })
	}
	got := rep.Result("hybrid topology", steps).(*TopologyResult)
	if !mergetree.Equal(reduce(serial), reduce(got.Tree)) {
		t.Fatal("pipeline tree differs from serial merge tree of the global field")
	}
}

// TestPipelineVizMatchesSerial: the in-situ composited frame equals a
// serial render of the global field.
func TestPipelineVizMatchesSerial(t *testing.T) {
	const steps = 2
	simCfg := testSimConfig(2, 2, 1)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	viz := NewVizInSitu(20, 16)
	p.Register(viz)
	rep, err := p.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	img := rep.Result("in-situ visualization", steps).(*render.Image)

	want := globalFields(t, simCfg, steps, []string{"T"})["T"]
	r, err := render.NewRenderer(viz.Width, viz.Height, render.HotMetal(0.2, 2.0),
		viz.Dir, [3]float64{0, 1, 0}, viz.StepSize, simCfg.Global)
	if err != nil {
		t.Fatal(err)
	}
	ref := r.RenderSerial(want)
	diff, err := render.MeanAbsDiff(ref, img)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-9 {
		t.Fatalf("pipeline in-situ render differs from serial by %g", diff)
	}
}

func TestPipelineCadence(t *testing.T) {
	simCfg := testSimConfig(2, 1, 1)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Register(&StatsHybrid{EveryN: 3})
	rep, err := p.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 7; s++ {
		got := rep.Result("hybrid descriptive statistics", s) != nil
		want := s%3 == 0
		if got != want {
			t.Fatalf("step %d: result presence %v, want %v", s, got, want)
		}
	}
}

// failingAnalysis exercises the error path without deadlocking.
type failingAnalysis struct{}

func (failingAnalysis) Name() string { return "failing" }
func (failingAnalysis) Every() int   { return 1 }
func (failingAnalysis) InSituStage(ctx *Ctx) ([]byte, error) {
	return nil, errors.New("boom")
}
func (failingAnalysis) InTransit(step int, payloads [][]byte) (any, error) {
	return len(payloads), nil
}

func TestPipelineAnalysisErrorDoesNotHang(t *testing.T) {
	simCfg := testSimConfig(2, 2, 1)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Register(failingAnalysis{})
	rep, err := p.Run(2)
	if err == nil {
		t.Fatal("failing analysis must surface an error")
	}
	if len(rep.Errs) == 0 {
		t.Fatal("errors must be collected in the report")
	}
}

// badAnalysis implements neither interface.
type badAnalysis struct{}

func (badAnalysis) Name() string { return "bad" }
func (badAnalysis) Every() int   { return 1 }

func TestPipelineRejectsUnknownAnalysisKind(t *testing.T) {
	p, err := NewPipeline(DefaultConfig(testSimConfig(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	p.Register(badAnalysis{})
	if _, err := p.Run(1); err == nil {
		t.Fatal("unknown analysis kind must error")
	}
}

// TestHybridStagesReduceData verifies the central premise: every
// hybrid intermediate payload is much smaller than the rank's raw
// block data.
func TestHybridStagesReduceData(t *testing.T) {
	simCfg := testSimConfig(2, 2, 1)
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Register(&StatsHybrid{})
	p.Register(NewVizHybrid(16, 12, 4))
	rep, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	rawPerStep := int64(simCfg.Global.Size() * 8 * len(sim.VarNames))
	for _, name := range []string{"hybrid descriptive statistics", "hybrid visualization"} {
		b := rep.Metrics.Total(name)
		if b.MoveBytes == 0 {
			t.Fatalf("%s: no movement recorded", name)
		}
		if b.MoveBytes*20 > rawPerStep {
			t.Fatalf("%s moved %d bytes of %d raw — not a significant reduction", name, b.MoveBytes, rawPerStep)
		}
	}
}
