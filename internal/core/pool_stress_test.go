package core

import (
	"reflect"
	"sync"
	"testing"
)

// poolStressAnalyses are the hybrid analyses exercised by the pooled
// stress runs: every one ships intermediates through DART into pooled
// bucket buffers, so all three payload shapes (stats models,
// contingency tables, downsampled viz blocks) cross the recycled path.
func poolStressAnalyses() []Analysis {
	return []Analysis{
		&StatsHybrid{},
		&ContingencyHybrid{},
		NewVizHybrid(16, 12, 2),
	}
}

func runPooledPipeline(t *testing.T, steps int) *Report {
	t.Helper()
	cfg := DefaultConfig(testSimConfig(2, 2, 1))
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range poolStressAnalyses() {
		p.Register(a)
	}
	rep, err := p.Run(steps)
	if err != nil {
		t.Fatalf("pooled pipeline run failed: %v (all errs: %v)", err, rep.Errs)
	}
	if n := p.PinnedRegions(); n != 0 {
		t.Fatalf("pooled pipeline leaked %d pinned regions", n)
	}
	return rep
}

// TestPooledPipelineStress runs several identical full pipelines
// concurrently. All of them share the process-global byte-buffer pool,
// so producer marshal buffers, DART transfer destinations, and bucket
// input payloads are constantly recycled across the racing pipelines.
// The simulation is deterministic, so every run must reproduce the
// reference results exactly: any use-after-recycle would surface as a
// result mismatch here and as a data race under `go test -race`.
func TestPooledPipelineStress(t *testing.T) {
	const steps = 3
	const concurrent = 3
	ref := runPooledPipeline(t, steps)

	reps := make([]*Report, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i] = runPooledPipeline(t, steps)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	names := []string{}
	for _, a := range poolStressAnalyses() {
		names = append(names, a.Name())
	}
	for i, rep := range reps {
		for _, name := range names {
			for s := 1; s <= steps; s++ {
				want := ref.Result(name, s)
				got := rep.Result(name, s)
				if want == nil || got == nil {
					t.Fatalf("run %d: %s step %d: missing result", i, name, s)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("run %d: %s step %d: result differs from reference (pool corruption?)", i, name, s)
				}
			}
		}
	}
}
