package core

import (
	"fmt"
	"hash/crc64"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/bp"
	"insitu/internal/dataspaces"
	"insitu/internal/grid"
	"insitu/internal/recovery"
)

// RecoveryConfig enables durable run recovery: every step passes
// through a write-ahead journal (admitted → submitted → committed),
// simulation state is checkpointed to bp files every Every steps, and
// a crashed run can be continued with Resume from the last committed
// step, bit-identically to the uninterrupted run.
type RecoveryConfig struct {
	// Dir holds the journal, the checkpoint manifest, and the per-rank
	// checkpoint files.
	Dir string
	// Every is the checkpoint cadence in steps (default 5).
	Every int
	// Kill, when non-nil, is consulted at every journal phase boundary
	// on rank 0; returning true freezes all durable writes from that
	// point on, simulating a process crash for the chaos matrix. The
	// in-memory run drains normally (its unjournaled work is discarded
	// by Resume), and Run returns recovery.ErrKilled.
	Kill recovery.KillFunc
}

// RecoveryReport summarizes the recovery plane's work during one run.
type RecoveryReport struct {
	ResumedFrom    int     // last committed step the run continued from (0 = fresh)
	CheckpointStep int     // checkpoint the simulation state was restored at
	ReplayedTasks  int64   // resubmissions of journaled-but-uncommitted tasks
	Commits        int64   // commit records appended this run
	Checkpoints    int64   // checkpoint records appended this run
	JournalFsyncs  int64   // fsync calls issued by the journal
	ResumeSeconds  float64 // wall time from Resume to first live step
}

// recState is the pipeline's recovery plane: the journal, the
// in-order committer's cursor, and resume bookkeeping.
type recState struct {
	j     *recovery.Journal
	every int
	kill  recovery.KillFunc

	// Resume plan, fixed before the SPMD loop starts.
	resume     bool
	resumeFrom int                   // last contiguously committed step (≤ steps)
	ckptStep   int                   // checkpoint the ranks restore at (0 = from scratch)
	ckptFields map[int][]*grid.Field // rank -> restored fields
	// prevSubmitted holds (step, analysis) pairs the dead process
	// journaled a submit for beyond resumeFrom; resubmitting one counts
	// as a replayed task.
	prevSubmitted map[int]map[string]bool
	t0            time.Time

	mu            sync.Mutex
	nextCommit    int // lowest uncommitted step
	maxStepped    int // highest step whose submissions are all in
	lastCkpt      int // newest durably journaled checkpoint step
	resumeSeconds float64
	resumeOnce    sync.Once

	// commitMu makes the commit loop single-flight: the step loop and
	// the drain goroutine may both observe a step become commit-ready,
	// and without it both would journal a commit record for it.
	commitMu sync.Mutex

	replayed atomic.Int64
	commits  atomic.Int64
	ckpts    atomic.Int64
}

func (rec *recState) isKilled() bool { return rec.j.Killed() }

// recKill consults the injected kill function at one phase boundary
// and, on a hit, freezes the journal — everything before this call is
// durable, everything after is lost, exactly like a crash between the
// two writes.
func (p *Pipeline) recKill(phase recovery.Phase, step int) {
	rec := p.rec
	if rec.kill == nil || rec.j.Killed() {
		return
	}
	if rec.kill(phase, step) {
		rec.j.Kill()
		if p.tl != nil {
			p.tl.Mark("recovery", fmt.Sprintf("killed %s@%d", phase, step), time.Now())
		}
	}
}

// planResume reads the journal back and fixes the resume plan: the
// last contiguously committed step, the newest checkpoint at or below
// it whose every rank file passes its CRCs (corrupt or missing files
// fall back to the next older checkpoint), the dedup seed for already
// committed tasks, and the set of journaled-but-uncommitted submits
// whose resubmission is counted as a replay.
func (p *Pipeline) planResume(steps int) error {
	rec := p.rec
	st := recovery.Analyze(rec.j.Records())
	rec.resumeFrom = st.LastCommit
	if rec.resumeFrom > steps {
		rec.resumeFrom = steps
	}
	for _, cand := range st.CheckpointsFor(rec.resumeFrom) {
		if len(cand.Files) != p.sim.Ranks() {
			continue
		}
		fields := make(map[int][]*grid.Field, len(cand.Files))
		ok := true
		for rank, name := range cand.Files {
			fl, err := bp.ReadFile(filepath.Join(rec.j.Dir(), name))
			if err != nil {
				p.recordWarn(fmt.Errorf("core: resume: checkpoint %d rank %d unusable, falling back: %w", cand.Step, rank, err))
				ok = false
				break
			}
			fields[rank] = fl
		}
		if ok {
			rec.ckptStep = cand.Step
			rec.ckptFields = fields
			break
		}
	}
	rec.lastCkpt = rec.ckptStep
	rec.nextCommit = rec.resumeFrom + 1
	rec.prevSubmitted = make(map[int]map[string]bool)
	for step, names := range st.Submitted {
		if step > rec.resumeFrom {
			rec.prevSubmitted[step] = names
		}
	}
	var seed []dataspaces.TaskKey
	for _, a := range p.analyses {
		if _, ok := a.(hybridStage); !ok {
			continue
		}
		for s := 1; s <= rec.resumeFrom; s++ {
			if due(a, s) {
				seed = append(seed, dataspaces.TaskKey{Analysis: a.Name(), Step: s})
			}
		}
	}
	p.ds.EnableDedup(seed)
	return nil
}

// recordWarn files a non-fatal condition the report should surface.
// Resume-time checkpoint fallbacks land here: the run still succeeds
// off an older checkpoint, but the corruption is never silent.
func (p *Pipeline) recordWarn(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.warns = append(p.warns, err)
}

// noteStepped tells the committer every submission for step is in, and
// tries to advance the commit cursor.
func (p *Pipeline) noteStepped(step int) {
	rec := p.rec
	rec.mu.Lock()
	if step > rec.maxStepped {
		rec.maxStepped = step
	}
	rec.mu.Unlock()
	p.maybeCommitSteps()
}

// maybeCommitSteps advances the in-order commit cursor: a step commits
// once it has fully stepped and every due hybrid analysis has a stored
// result. The commit record carries a digest of each result, so a
// resumed run can be checked for bit-identical convergence against the
// original. Called from rank 0's step loop and from the drain
// goroutine; rec.mu is never held across p.mu or a journal append.
func (p *Pipeline) maybeCommitSteps() {
	rec := p.rec
	if rec == nil {
		return
	}
	rec.commitMu.Lock()
	defer rec.commitMu.Unlock()
	for {
		rec.mu.Lock()
		s := rec.nextCommit
		stepped := s <= rec.maxStepped
		lastCkpt := rec.lastCkpt
		rec.mu.Unlock()
		if !stepped {
			return
		}
		digests, ready := p.commitDigests(s)
		if !ready {
			return
		}
		r := recovery.Record{Kind: recovery.KindCommit, Step: s, CkptStep: lastCkpt, Digests: digests}
		if err := rec.j.Append(r); err != nil {
			return // journal dead: nothing after this point is durable
		}
		rec.commits.Add(1)
		rec.mu.Lock()
		if s >= rec.nextCommit {
			rec.nextCommit = s + 1
		}
		rec.mu.Unlock()
		p.recKill(recovery.PhasePostCommit, s)
	}
}

// commitDigests reports whether step s is commit-ready — every due
// hybrid analysis has drained to a stored result — and digests every
// due analysis result present at s.
func (p *Pipeline) commitDigests(s int) (map[string]string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	digests := make(map[string]string)
	for _, a := range p.analyses {
		if !due(a, s) {
			continue
		}
		out, ok := p.results[a.Name()][s]
		if _, hybrid := a.(hybridStage); hybrid && !ok {
			return nil, false
		}
		if ok {
			digests[a.Name()] = resultDigest(out)
		}
	}
	return digests, true
}

// ResultDigest hashes an analysis result into the short stable token
// the recovery journal commits — exported so equivalence tests (e.g.
// legacy-flag path vs config path) can compare whole runs result by
// result without depending on the journal.
func ResultDigest(v any) string { return resultDigest(v) }

// resultDigest hashes a stored analysis result into a short stable
// token. %v formatting is deterministic for the value shapes analyses
// store (fmt sorts map keys); top-level pointers are dereferenced so
// the digest covers the pointee, not the address.
func resultDigest(v any) string {
	rv := reflect.ValueOf(v)
	if rv.Kind() == reflect.Pointer && !rv.IsNil() {
		v = rv.Elem().Interface()
	}
	h := crc64.New(crc64.MakeTable(crc64.ECMA))
	fmt.Fprintf(h, "%v", v)
	return fmt.Sprintf("%016x", h.Sum64())
}

// writeCheckpoint writes this rank's bp checkpoint file for step and,
// on rank 0 after the barrier, journals the checkpoint record (which
// also refreshes the manifest). A dead journal writes nothing: a crash
// earlier in the step must not leave newer durable state behind it.
func (p *Pipeline) writeCheckpoint(r rankish, rk checkpointer, step int) {
	rec := p.rec
	if !rec.j.Killed() {
		path := filepath.Join(rec.j.Dir(), recovery.CheckpointFile(step, r.ID()))
		if _, err := bp.WriteFile(path, rk.CheckpointFields()); err != nil {
			p.recordErr(fmt.Errorf("core: checkpoint step %d rank %d: %w", step, r.ID(), err))
		}
	}
	r.Barrier()
	if r.ID() != 0 {
		return
	}
	p.recKill(recovery.PhaseMidCheckpoint, step)
	files := make([]string, r.Size())
	for i := range files {
		files[i] = recovery.CheckpointFile(step, i)
	}
	rec2 := recovery.Record{Kind: recovery.KindCheckpoint, Step: step, CkptStep: step, Epoch: step, Files: files}
	if err := rec.j.Append(rec2); err != nil {
		return
	}
	rec.ckpts.Add(1)
	rec.mu.Lock()
	if step > rec.lastCkpt {
		rec.lastCkpt = step
	}
	rec.mu.Unlock()
}

// rankish and checkpointer are the slices of comm.Rank and sim.Rank
// writeCheckpoint needs; narrowing them keeps it unit-testable.
type rankish interface {
	ID() int
	Size() int
	Barrier()
}

type checkpointer interface {
	CheckpointFields() []*grid.Field
}

// skipDuplicate disposes of a step whose task the journal proves was
// already submitted and committed: the freshly produced payloads are
// unpinned and recycled, the admission credit is returned, and no
// result is stored (the committed digest already covers it).
func (p *Pipeline) skipDuplicate(name string, inputs []dataspaces.Descriptor, dec admitDecision) {
	for _, in := range inputs {
		p.releaseHandle(in)
	}
	if dec.Credited {
		if c := p.ds.Credits(); c != nil {
			c.Release(name)
		}
	}
}

// countReplay reports whether a live submission of (analysis, step)
// replays a submit the dead process had journaled but never committed.
func (rec *recState) countReplay(analysis string, step int) bool {
	return rec.prevSubmitted[step][analysis]
}

// recoveryReport snapshots the plane for the run report.
func (rec *recState) report() *RecoveryReport {
	rec.mu.Lock()
	rs := rec.resumeSeconds
	rec.mu.Unlock()
	return &RecoveryReport{
		ResumedFrom:    rec.resumeFrom,
		CheckpointStep: rec.ckptStep,
		ReplayedTasks:  rec.replayed.Load(),
		Commits:        rec.commits.Load(),
		Checkpoints:    rec.ckpts.Load(),
		JournalFsyncs:  rec.j.Fsyncs(),
		ResumeSeconds:  rs,
	}
}

// markResumed records the resume latency exactly once, when rank 0
// reaches its first live step.
func (rec *recState) markResumed() {
	rec.resumeOnce.Do(func() {
		d := time.Since(rec.t0).Seconds()
		rec.mu.Lock()
		rec.resumeSeconds = d
		rec.mu.Unlock()
	})
}
