package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"insitu/internal/codec"
	"insitu/internal/recovery"
)

// recoveryTestPipeline builds a small recovery-enabled hybrid pipeline
// (stats route, delta codec everywhere) journaling into dir. With
// dir == "" recovery is disabled — the plain twin the recovery runs
// are compared against.
func recoveryTestPipeline(t *testing.T, dir string, kill recovery.KillFunc) (*Pipeline, *StatsHybrid) {
	t.Helper()
	cfg := DefaultConfig(testSimConfig(2, 1, 1))
	cfg.DSServers = 2
	cfg.Buckets = 2
	cfg.Codecs = map[string]codec.Spec{"*": {ID: codec.Delta}}
	if dir != "" {
		cfg.Recovery = &RecoveryConfig{Dir: dir, Every: 2, Kill: kill}
	}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sa := &StatsHybrid{Vars: []string{"T", "P"}}
	p.Register(sa)
	return p, sa
}

// TestBucketRespawnDeltaCodec: a bucket crash requeues its task onto
// the respawned bucket, which re-pulls the task's delta-framed
// payloads; the decode must land on the correct base epoch — identical
// results to the crash-free run, zero checksum failures.
func TestBucketRespawnDeltaCodec(t *testing.T) {
	const steps = 8

	run := func(crash bool) *Report {
		p, sa := recoveryTestPipeline(t, "", nil)
		if crash {
			p.Staging().CrashBucket(0)
		}
		rep, err := p.Run(steps)
		if err != nil {
			t.Fatalf("run (crash=%v): %v", crash, err)
		}
		if n := p.PinnedRegions(); n != 0 {
			t.Fatalf("run (crash=%v): %d pinned regions leaked", crash, n)
		}
		for s := 1; s <= steps; s++ {
			if rep.Result(sa.Name(), s) == nil {
				t.Fatalf("run (crash=%v): step %d result missing", crash, s)
			}
		}
		return rep
	}

	golden := run(false)
	crashed := run(true)

	if crashed.Resilience.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", crashed.Resilience.Crashes)
	}
	if crashed.Resilience.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1", crashed.Resilience.Requeues)
	}
	if crashed.Resilience.ChecksumFailures != 0 {
		t.Errorf("checksum failures = %d on a fault-free fabric: delta decode hit a wrong base epoch",
			crashed.Resilience.ChecksumFailures)
	}
	if !reflect.DeepEqual(golden.Results, crashed.Results) {
		t.Error("results diverge after bucket respawn with delta framing")
	}
}

// TestObsLedgerAcrossRestart: a killed journaled run and its resumed
// successor each keep their own observability plane; the resumed
// plane's task ledger must reconcile on its own — the dead process's
// orphan submits never leak into the new plane's accounting — and the
// recovery metric families must report the resume.
func TestObsLedgerAcrossRestart(t *testing.T) {
	const steps = 8
	dir := t.TempDir()

	p1, _ := recoveryTestPipeline(t, dir, recovery.KillAt(recovery.PhaseMidSubmit, 4))
	p1.EnableObs()
	_, err := p1.Run(steps)
	if !errors.Is(err, recovery.ErrKilled) {
		t.Fatalf("crashed run: err = %v, want ErrKilled", err)
	}

	p2, _ := recoveryTestPipeline(t, dir, nil)
	pl := p2.EnableObs()
	rep, err := p2.Resume(steps)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rep.Recovery == nil || rep.Recovery.ReplayedTasks < 1 {
		t.Fatalf("recovery report = %+v, want >= 1 replayed task", rep.Recovery)
	}

	var sb strings.Builder
	if err := pl.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, fam := range []string{
		"recovery_replayed_tasks_total",
		"recovery_commits_total",
		"recovery_checkpoints_total",
		"recovery_journal_fsyncs_total",
		"recovery_resume_seconds",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("metric family %s missing from resumed plane", fam)
		}
	}

	// Ledger reconciliation: every task the resumed process submitted
	// drained to a final result in the same process. The dead process's
	// journaled submits were replayed, not adopted.
	sub := metricValue(t, text, "pipeline_tasks_submitted_total")
	com := metricValue(t, text, "pipeline_tasks_completed_total")
	if sub == "" || sub == "0" || sub != com {
		t.Errorf("resumed ledger does not reconcile: submitted %v, completed %v", sub, com)
	}
}

// metricValue extracts one unlabeled sample value from a Prometheus
// text exposition.
func metricValue(t *testing.T, text, name string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimSpace(strings.TrimPrefix(line, name))
		}
	}
	t.Errorf("metric %s missing", name)
	return ""
}

// TestRunRefusesDirtyJournal: Run on a journal with records must point
// the caller at Resume instead of silently double-running.
func TestRunRefusesDirtyJournal(t *testing.T) {
	const steps = 4
	dir := t.TempDir()
	p1, _ := recoveryTestPipeline(t, dir, nil)
	if _, err := p1.Run(steps); err != nil {
		t.Fatal(err)
	}
	p2, _ := recoveryTestPipeline(t, dir, nil)
	if _, err := p2.Run(steps); err == nil || !strings.Contains(err.Error(), "Resume") {
		t.Fatalf("Run on dirty journal: err = %v, want a use-Resume error", err)
	}
}

// TestResumeEquivalence: a fresh journaled run and a killed+resumed
// pair produce identical stored results for the live steps and commit
// every step with matching digests.
func TestResumeEquivalence(t *testing.T) {
	const steps = 8
	goldenDir := t.TempDir()
	pg, sa := recoveryTestPipeline(t, goldenDir, nil)
	grep, err := pg.Run(steps)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	p1, _ := recoveryTestPipeline(t, dir, recovery.KillAt(recovery.PhasePreAdmit, 5))
	if _, err := p1.Run(steps); !errors.Is(err, recovery.ErrKilled) {
		t.Fatalf("crashed run: err = %v, want ErrKilled", err)
	}
	p2, _ := recoveryTestPipeline(t, dir, nil)
	rrep, err := p2.Resume(steps)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	for s := rrep.Recovery.ResumedFrom + 1; s <= steps; s++ {
		if !reflect.DeepEqual(rrep.Result(sa.Name(), s), grep.Result(sa.Name(), s)) {
			t.Errorf("step %d: resumed result diverges from fresh run", s)
		}
	}
	jg, err := recovery.Open(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	jr, err := recovery.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sg, sr := recovery.Analyze(jg.Records()), recovery.Analyze(jr.Records())
	if sg.LastCommit != steps || sr.LastCommit != steps {
		t.Fatalf("last commits: golden %d, resumed %d, want %d", sg.LastCommit, sr.LastCommit, steps)
	}
	for s := 1; s <= steps; s++ {
		if !reflect.DeepEqual(sg.Commits[s].Digests, sr.Commits[s].Digests) {
			t.Errorf("step %d: digests diverge: %v vs %v", s, sr.Commits[s].Digests, sg.Commits[s].Digests)
		}
	}
}
