package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"insitu/internal/bufpool"
	"insitu/internal/codec"
	"insitu/internal/comm"
	"insitu/internal/dart"
	"insitu/internal/dataspaces"
	"insitu/internal/metrics"
	"insitu/internal/netsim"
	"insitu/internal/obs"
	"insitu/internal/overload"
	"insitu/internal/sim"
	"insitu/internal/staging"
	"insitu/internal/trace"
)

// SchedulerConfig sizes the shared staging fabric a Scheduler owns:
// one DataSpaces service, one bucket pool, and one interconnect, time-
// multiplexed across tenants.
type SchedulerConfig struct {
	DSServers int // DataSpaces service shards, shared by all tenants
	Buckets   int // initial in-transit staging buckets
	// MaxBuckets caps the pool when the autoscaler grows it
	// (0 = Buckets: a fixed pool).
	MaxBuckets int
	Net        netsim.Config
	// Credits is the shared transit credit total. 0 derives
	// MaxBuckets + tenants×QueueBound, mirroring the single-tenant
	// sizing rule per tenant queue.
	Credits int
	// TenantReserve is each tenant's guaranteed credit floor — the
	// bulkhead. Like the per-analysis Reserve, reservations degrade to
	// one shared pool when the floors would consume the whole account.
	TenantReserve int
	// QueueBound bounds each tenant's task queue independently
	// (0 = unbounded).
	QueueBound      int
	MaxTaskAttempts int
	// Autoscale, when non-nil, lets the scheduler grow and shrink the
	// bucket pool between Buckets-ish floors and MaxBuckets from live
	// queue/ladder pressure. Nil keeps the pool fixed.
	Autoscale *overload.AutoscaleConfig
	// Quarantine tunes the poison-route quarantine (zero value =
	// defaults: 3 strikes, probe after 4 denials).
	Quarantine overload.QuarantineConfig
}

// TenantConfig is one tenant's slice of the shared fabric: its own
// simulation, admission plane, and codecs; everything downstream of
// submission is shared. Recovery is deliberately absent — the journal
// assumes it owns the task queue, which is no longer true here.
type TenantConfig struct {
	Sim sim.Config
	// Overload tunes the tenant's admission plane (breaker, ladder,
	// estimator). Nil uses defaults: under a scheduler every tenant has
	// an admission plane, because the scheduler's bulkheads are built
	// from credits the plane acquires.
	Overload   *overload.Config
	Codecs     map[string]codec.Spec
	StepBudget time.Duration
	// Weight is the tenant's deficit-round-robin share (default 1): a
	// weight-2 tenant is served twice per ring turn.
	Weight int
}

// Scheduler owns a staging fabric shared by multiple tenant pipelines:
// per-tenant credit bulkheads over one account, deficit-round-robin
// dequeue across tenant queues, a shared poison-route quarantine, and
// an optional bucket-pool autoscaler. Build with NewScheduler, add
// tenants with AddTenant, register analyses on the returned pipelines,
// then Run once.
type Scheduler struct {
	cfg    SchedulerConfig
	net    *netsim.Network
	fabric *dart.Fabric
	ds     *dataspaces.Service
	area   *staging.Area
	codecs *codec.Registry
	quar   *overload.Quarantine
	scaler *overload.Autoscaler

	mu      sync.Mutex
	tenants []*Pipeline
	byName  map[string]*Pipeline
	eps     map[int]*dart.Endpoint // all pre-registered rank endpoints
	plane   *obs.Plane
	ran     bool
	closed  bool
}

// NewScheduler validates the configuration and builds the shared
// subsystems. Tenants are added afterwards with AddTenant.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	if cfg.DSServers < 1 {
		return nil, fmt.Errorf("core: need at least one DataSpaces server")
	}
	if cfg.Buckets < 1 {
		return nil, fmt.Errorf("core: need at least one staging bucket")
	}
	if cfg.MaxBuckets != 0 && cfg.MaxBuckets < cfg.Buckets {
		return nil, fmt.Errorf("core: MaxBuckets %d below initial Buckets %d", cfg.MaxBuckets, cfg.Buckets)
	}
	net := netsim.New(cfg.Net)
	fabric := dart.NewFabric(net)
	ds, err := dataspaces.New(fabric, cfg.DSServers)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:    cfg,
		net:    net,
		fabric: fabric,
		ds:     ds,
		codecs: codec.NewRegistry(),
		quar:   overload.NewQuarantine(cfg.Quarantine),
		byName: make(map[string]*Pipeline),
		eps:    make(map[int]*dart.Endpoint),
	}
	ds.SetCodecs(s.codecs)
	if cfg.Autoscale != nil {
		asc := *cfg.Autoscale
		if asc.Max == 0 {
			asc.Max = s.maxBuckets()
		}
		s.scaler = overload.NewAutoscaler(asc)
	}
	opts := []staging.Option{staging.WithRelease(s.releaseHandle), staging.WithPooledBuffers()}
	if cfg.MaxTaskAttempts > 0 {
		opts = append(opts, staging.WithMaxAttempts(cfg.MaxTaskAttempts))
	}
	area, err := staging.New(fabric, ds, cfg.Buckets, opts...)
	if err != nil {
		return nil, err
	}
	s.area = area
	return s, nil
}

func (s *Scheduler) maxBuckets() int {
	if s.cfg.MaxBuckets > s.cfg.Buckets {
		return s.cfg.MaxBuckets
	}
	return s.cfg.Buckets
}

// AddTenant builds a tenant pipeline over the shared fabric and
// pre-registers its rank endpoints (named "<tenant>/sim-<rank>" and
// tagged with the tenant, so transfer noise is attributed to it).
// Register analyses on the returned pipeline before Run.
func (s *Scheduler) AddTenant(name string, cfg TenantConfig) (*Pipeline, error) {
	if name == "" {
		return nil, fmt.Errorf("core: tenant name must be non-empty")
	}
	sm, err := sim.New(cfg.Sim)
	if err != nil {
		return nil, err
	}
	ovCfg := overload.Config{}
	if cfg.Overload != nil {
		ovCfg = *cfg.Overload
	}
	ov := ovCfg.WithDefaults()
	weight := cfg.Weight
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ran {
		return nil, fmt.Errorf("core: scheduler already ran; tenants must be added before Run")
	}
	if _, dup := s.byName[name]; dup {
		return nil, fmt.Errorf("core: tenant %q already added", name)
	}
	p := &Pipeline{
		cfg: Config{
			Sim: cfg.Sim, DSServers: s.cfg.DSServers, Buckets: s.cfg.Buckets,
			Net: s.cfg.Net, StepBudget: cfg.StepBudget,
			MaxTaskAttempts: s.cfg.MaxTaskAttempts,
			Codecs:          cfg.Codecs, Overload: &ov,
		},
		sim: sm, net: s.net, fabric: s.fabric, ds: s.ds, area: s.area,
		col: metrics.NewCollector(), codecs: s.codecs,
		results:   make(map[string]map[int]any),
		eps:       make(map[int]*dart.Endpoint),
		frameVars: make(map[string]string),
		ov:        &ov, est: overload.NewEstimator(ov.LatencyAlpha, ov.QueueAlpha),
		routes: make(map[string]*routeState),
		tenant: name, sched: s, quar: s.quar, weight: weight,
		preEps: make(map[int]*dart.Endpoint),
	}
	for r := 0; r < sm.Ranks(); r++ {
		ep := s.fabric.RegisterT(fmt.Sprintf("%s/sim-%d", name, r), name)
		p.preEps[r] = ep
		s.eps[ep.ID()] = ep
	}
	s.tenants = append(s.tenants, p)
	s.byName[name] = p
	if s.plane != nil {
		s.publishTenant(s.plane.Registry(), p)
	}
	return p, nil
}

// Tenant returns a tenant's pipeline, or nil if the name is unknown.
func (s *Scheduler) Tenant(name string) *Pipeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byName[name]
}

// TenantEndpoints returns a tenant's pre-registered rank endpoints in
// rank order — the handles chaos tests scope fault injection to.
func (s *Scheduler) TenantEndpoints(name string) []*dart.Endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.byName[name]
	if p == nil {
		return nil
	}
	out := make([]*dart.Endpoint, len(p.preEps))
	for r := range out {
		out[r] = p.preEps[r]
	}
	return out
}

// Network returns the shared simulated interconnect.
func (s *Scheduler) Network() *netsim.Network { return s.net }

// Staging returns the shared staging area.
func (s *Scheduler) Staging() *staging.Area { return s.area }

// Credits returns the shared transit credit account (nil before Run).
func (s *Scheduler) Credits() *dataspaces.Credits { return s.ds.Credits() }

// Quarantine returns the shared poison-route quarantine.
func (s *Scheduler) Quarantine() *overload.Quarantine { return s.quar }

// Autoscaler returns the bucket-pool autoscaler (nil unless
// SchedulerConfig.Autoscale was set).
func (s *Scheduler) Autoscaler() *overload.Autoscaler { return s.scaler }

// releaseHandle frees a pinned intermediate region once a bucket has
// pulled it — the scheduler-wide twin of Pipeline.releaseHandle, since
// the shared area sees descriptors from every tenant.
func (s *Scheduler) releaseHandle(d dataspaces.Descriptor) {
	s.mu.Lock()
	ep := s.eps[d.Handle.Endpoint]
	s.mu.Unlock()
	if ep != nil {
		if buf, err := ep.Reclaim(d.Handle); err == nil {
			bufpool.Put(buf)
		}
	}
}

// EnableObs attaches one observability plane to the shared subsystems
// and publishes each tenant's families under a tenant label. Tenants
// added later are published as they arrive. Idempotent; call before
// Run.
func (s *Scheduler) EnableObs() *obs.Plane {
	s.mu.Lock()
	if s.plane != nil {
		pl := s.plane
		s.mu.Unlock()
		return pl
	}
	pl := obs.NewPlane()
	s.plane = pl
	tenants := append([]*Pipeline(nil), s.tenants...)
	s.mu.Unlock()

	s.fabric.SetPlane(pl)
	s.ds.SetPlane(pl)
	s.area.SetPlane(pl)
	reg := pl.Registry()
	reg.CounterFunc("net_transfers_total", "transfers accounted on the simulated interconnect",
		func() float64 { return float64(s.net.Stats().Transfers) })
	reg.CounterFunc("net_bytes_moved_total", "bytes moved over the simulated interconnect",
		func() float64 { return float64(s.net.Stats().BytesMoved) })
	reg.CounterFunc("net_faults_total", "transfer attempts perturbed by the fault injector",
		func() float64 { return float64(s.net.Stats().Faulted) })
	reg.GaugeFunc("staging_active_buckets", "staging buckets currently serving the shared pool",
		func() float64 { return float64(s.area.ActiveBuckets()) })
	reg.CounterFunc("scheduler_bucket_grows_total", "bucket-pool grow decisions applied by the autoscaler",
		func() float64 {
			if s.scaler == nil {
				return 0
			}
			return float64(s.scaler.Grows())
		})
	reg.CounterFunc("scheduler_bucket_shrinks_total", "bucket-pool shrink decisions applied by the autoscaler",
		func() float64 {
			if s.scaler == nil {
				return 0
			}
			return float64(s.scaler.Shrinks())
		})
	reg.CounterFunc("quarantine_opens_total", "poison-route quarantine trips across all tenants",
		func() float64 { return float64(s.quar.Opens()) })
	reg.CounterFunc("quarantine_releases_total", "quarantined routes released by a successful probe",
		func() float64 { return float64(s.quar.Releases()) })
	for _, p := range tenants {
		s.publishTenant(reg, p)
	}
	return pl
}

// publishTenant registers one tenant's metric families under its
// tenant label and hands the tenant the plane for admission events and
// trace spans (all tenants share the recorder).
func (s *Scheduler) publishTenant(reg *obs.Registry, p *Pipeline) {
	label := obs.Str("tenant", p.tenant)
	p.col.PublishToLabeled(reg, label)
	admitCtr := make(map[overload.Level]*obs.Counter, 6)
	for _, lv := range []overload.Level{
		overload.LevelFull, overload.LevelDelta, overload.LevelQuantized,
		overload.LevelShaped, overload.LevelInSitu, overload.LevelShed,
	} {
		admitCtr[lv] = reg.Counter("admission_decisions_total",
			"admission ladder verdicts by level", obs.Str("level", lv.String()), label)
	}
	reg.CounterFunc("breaker_opens_total", "circuit-breaker trips across hybrid routes",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			var n int64
			for _, rs := range p.routes {
				n += rs.breaker.Opens()
			}
			return float64(n)
		}, label)
	reg.CounterFunc("pipeline_tasks_submitted_total", "in-transit tasks successfully submitted",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(p.submitted)
		}, label)
	reg.CounterFunc("pipeline_tasks_completed_total", "in-transit tasks drained to a final result",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(p.completed)
		}, label)
	p.mu.Lock()
	p.plane = s.plane
	p.tl = trace.Over(s.plane.Recorder())
	p.admitCtr = admitCtr
	p.mu.Unlock()
}

// Obs returns the shared observability plane, or nil before EnableObs.
func (s *Scheduler) Obs() *obs.Plane {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plane
}

// Run executes every tenant's simulation concurrently over the shared
// staging fabric for the given number of steps and blocks until all
// simulations have finished and every in-transit task has drained.
// Returns one Report per tenant.
func (s *Scheduler) Run(steps int) (map[string]*Report, error) {
	if steps < 1 {
		return nil, fmt.Errorf("core: steps must be >= 1")
	}
	s.mu.Lock()
	if s.ran {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: a scheduler runs once; build a new one to run again")
	}
	s.ran = true
	tenants := append([]*Pipeline(nil), s.tenants...)
	byName := make(map[string]*Pipeline, len(s.byName))
	for n, p := range s.byName {
		byName[n] = p
	}
	s.mu.Unlock()
	if len(tenants) == 0 {
		return nil, fmt.Errorf("core: scheduler has no tenants")
	}

	// Shared admission plane: per-tenant queue bounds, DRR weights, one
	// credit account with per-tenant bulkhead floors, and the
	// quarantine's submit-time guard (a half-open probe always passes).
	s.ds.SetQueueBound(s.cfg.QueueBound)
	weights := make(map[string]int, len(tenants))
	reservations := make(map[string]int, len(tenants))
	for _, p := range tenants {
		weights[p.tenant] = p.weight
		reservations[p.tenant] = s.cfg.TenantReserve
		p.buildRoutes()
		p.installHandlers()
	}
	total := s.cfg.Credits
	if total <= 0 {
		qb := s.cfg.QueueBound
		if qb <= 0 {
			qb = 2
		}
		total = s.maxBuckets() + len(tenants)*qb
	}
	if s.cfg.TenantReserve*len(tenants) >= total {
		reservations = nil
	}
	if err := s.ds.EnableCredits(total, reservations); err != nil {
		return nil, err
	}
	s.ds.EnableFairDequeue(weights)
	quar := s.quar
	s.ds.SetAdmissionGuard(func(tenant, analysis string, probe bool) error {
		if probe || !quar.Barred(tenant, analysis) {
			return nil
		}
		return fmt.Errorf("dataspaces: submit %s/%s: %w", tenant, analysis, overload.ErrQuarantined)
	})
	s.area.Start()

	// One shared drain: dispatch each final result to its tenant, then
	// let the autoscaler act on the post-result pressure signals. The
	// drain goroutine is the only pool mutator, so grow/shrink need no
	// extra synchronization.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for res := range s.area.Results() {
			if p := byName[res.Task.Tenant]; p != nil {
				p.handleResult(res)
			}
			s.autoscaleTick(tenants)
		}
	}()

	var wg sync.WaitGroup
	for _, p := range tenants {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			comm.Run(p.sim.Ranks(), func(r *comm.Rank) {
				if err := p.rankLoop(r, steps); err != nil {
					p.recordErr(err)
				}
			})
			p.mu.Lock()
			p.simDone = true
			p.mu.Unlock()
			s.maybeClose()
		}()
	}
	wg.Wait()
	s.maybeClose()
	s.area.Wait()
	<-drained

	reports := make(map[string]*Report, len(tenants))
	var errs []error
	for _, p := range tenants {
		rep, err := p.finishReport(steps)
		reports[p.tenant] = rep
		if err != nil {
			errs = append(errs, fmt.Errorf("tenant %s: %w", p.tenant, err))
		}
	}
	return reports, errors.Join(errs...)
}

// maybeClose closes the shared task queue once every tenant's
// simulation has finished and every submitted task (summed across
// tenants) has drained to its final Result.
func (s *Scheduler) maybeClose() {
	s.mu.Lock()
	if !s.ran || s.closed {
		s.mu.Unlock()
		return
	}
	allDone := true
	var sub, comp int64
	for _, p := range s.tenants {
		p.mu.Lock()
		if !p.simDone {
			allDone = false
		}
		sub += p.submitted
		comp += p.completed
		p.mu.Unlock()
	}
	if !allDone || sub != comp {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.ds.Close()
}

// autoscaleTick folds the current pressure signals into the autoscaler
// and applies its verdict to the bucket pool. Only the drain goroutine
// calls it.
func (s *Scheduler) autoscaleTick(tenants []*Pipeline) {
	if s.scaler == nil {
		return
	}
	ml := overload.LevelFull
	for _, p := range tenants {
		if l := overload.Level(p.curLevel.Load()); l > ml {
			ml = l
		}
	}
	sig := overload.AutoscaleSignals{
		QueueDepth:  s.ds.QueueDepth(),
		FreeBuckets: s.ds.FreeBuckets(),
		Active:      s.area.ActiveBuckets(),
		MaxLevel:    ml,
	}
	switch s.scaler.Observe(sig) {
	case 1:
		s.area.AddBucket()
	case -1:
		s.area.RetireBucket()
	}
}
