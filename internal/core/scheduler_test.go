package core

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"insitu/internal/netsim"
	"insitu/internal/overload"
	"insitu/internal/sim"
	"insitu/internal/stats"
)

func testSchedCfg() SchedulerConfig {
	return SchedulerConfig{DSServers: 2, Buckets: 2, Net: netsim.Gemini(), QueueBound: 8, TenantReserve: 1}
}

func TestSchedulerValidation(t *testing.T) {
	bad := testSchedCfg()
	bad.DSServers = 0
	if _, err := NewScheduler(bad); err == nil {
		t.Fatal("zero servers must error")
	}
	bad = testSchedCfg()
	bad.Buckets = 0
	if _, err := NewScheduler(bad); err == nil {
		t.Fatal("zero buckets must error")
	}
	bad = testSchedCfg()
	bad.MaxBuckets = 1
	if _, err := NewScheduler(bad); err == nil {
		t.Fatal("MaxBuckets below Buckets must error")
	}

	s, err := NewScheduler(testSchedCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(4); err == nil {
		t.Fatal("running with no tenants must error")
	}

	s, err = NewScheduler(testSchedCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddTenant("", TenantConfig{Sim: testSimConfig(2, 1, 1)}); err == nil {
		t.Fatal("empty tenant name must error")
	}
	if _, err := s.AddTenant("a", TenantConfig{Sim: testSimConfig(2, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddTenant("a", TenantConfig{Sim: testSimConfig(2, 1, 1)}); err == nil {
		t.Fatal("duplicate tenant must error")
	}
	// A scheduler-owned pipeline refuses a standalone Run.
	if _, err := s.Tenant("a").Run(2); err == nil {
		t.Fatal("tenant pipeline must refuse standalone Run")
	}
}

// TestSchedulerMultiTenantEndToEnd: two tenants running the same
// analysis names over one shared fabric stay fully isolated — each
// tenant's hybrid statistics agree with its own in-situ reference, the
// shared credit account settles to full, and no regions leak.
func TestSchedulerMultiTenantEndToEnd(t *testing.T) {
	const steps = 4
	s, err := NewScheduler(testSchedCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately different decompositions (and therefore different
	// fields) per tenant, same analysis names: results must not bleed.
	simCfgs := map[string]sim.Config{
		"alpha": testSimConfig(2, 1, 1),
		"beta":  testSimConfig(1, 2, 1),
	}
	for name, sc := range simCfgs {
		p, err := s.AddTenant(name, TenantConfig{Sim: sc})
		if err != nil {
			t.Fatal(err)
		}
		p.Register(&StatsInSitu{})
		p.Register(&StatsHybrid{})
	}
	reps, err := s.Run(steps)
	if err != nil {
		t.Fatalf("scheduler run failed: %v", err)
	}
	if len(reps) != 2 {
		t.Fatalf("want 2 reports, got %d", len(reps))
	}
	for name := range simCfgs {
		rep := reps[name]
		for step := 1; step <= steps; step++ {
			a, ok := rep.Result("in-situ descriptive statistics", step).(map[string]stats.Derived)
			if !ok {
				t.Fatalf("tenant %s: missing in-situ stats at step %d", name, step)
			}
			b, ok := rep.Result("hybrid descriptive statistics", step).(map[string]stats.Derived)
			if !ok {
				t.Fatalf("tenant %s: missing hybrid stats at step %d", name, step)
			}
			for _, v := range sim.VarNames {
				da, db := a[v], b[v]
				if da.N != db.N || math.Abs(da.Mean-db.Mean) > 1e-9 {
					t.Fatalf("tenant %s step %d var %s: in-situ %+v != hybrid %+v", name, step, v, da, db)
				}
			}
		}
		if got := s.Tenant(name).PinnedRegions(); got != 0 {
			t.Fatalf("tenant %s leaked %d pinned regions", name, got)
		}
	}
	// The two tenants saw different fields (different decompositions
	// evolve identically, so compare alpha/beta means — they SHOULD be
	// equal here since the global problem is the same; what must differ
	// is nothing, but each must have drained through its own route).
	c := s.Credits()
	if c == nil {
		t.Fatal("scheduler must enable the shared credit account")
	}
	if out, avail, total := c.Snapshot(); out != 0 || avail != total {
		t.Fatalf("credits leaked: outstanding=%d avail=%d total=%d", out, avail, total)
	}
	if s.Quarantine().Opens() != 0 {
		t.Fatal("healthy tenants must not trip the quarantine")
	}
}

// TestSchedulerSingleTenantMatchesPipeline: one tenant under a
// scheduler computes the same analysis results as the standalone
// pipeline over the same simulation.
func TestSchedulerSingleTenantMatchesPipeline(t *testing.T) {
	const steps = 3
	simCfg := testSimConfig(2, 1, 1)

	p1, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	p1.Register(&StatsHybrid{})
	repA, err := p1.Run(steps)
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewScheduler(testSchedCfg())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.AddTenant("solo", TenantConfig{Sim: simCfg})
	if err != nil {
		t.Fatal(err)
	}
	p2.Register(&StatsHybrid{})
	reps, err := s.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	repB := reps["solo"]
	for step := 1; step <= steps; step++ {
		a := repA.Result("hybrid descriptive statistics", step).(map[string]stats.Derived)
		b := repB.Result("hybrid descriptive statistics", step).(map[string]stats.Derived)
		for _, v := range sim.VarNames {
			if a[v] != b[v] {
				t.Fatalf("step %d var %s: standalone %+v != scheduled %+v", step, v, a[v], b[v])
			}
		}
	}
}

// poisonHybrid fails its first FailAttempts in-transit executions and
// succeeds afterwards. Counting attempts (not steps) keeps the
// open → probe → release sequence deterministic: with FailAttempts ==
// Strikes the route opens on exactly the strike budget and the very
// first half-open probe heals it, independent of how long each result
// takes to drain back.
type poisonHybrid struct {
	FailAttempts int64
	attempts     atomic.Int64
}

func (p *poisonHybrid) Name() string { return "poison" }
func (p *poisonHybrid) Every() int   { return 1 }

func (p *poisonHybrid) InSituStage(ctx *Ctx) ([]byte, error) {
	return []byte{byte(ctx.Step), byte(ctx.Comm.ID())}, nil
}

func (p *poisonHybrid) InTransit(step int, payloads [][]byte) (any, error) {
	if p.attempts.Add(1) <= p.FailAttempts {
		return nil, errors.New("poison: handler crash")
	}
	return step, nil
}

// TestSchedulerQuarantineOpensAndReleases: a route whose handler fails
// repeatedly is quarantined after Strikes failures, fails fast (no
// transit submission) while open, and is released by a successful
// half-open probe once the handler heals — after which full-fidelity
// results flow again.
func TestSchedulerQuarantineOpensAndReleases(t *testing.T) {
	const steps = 30
	cfg := testSchedCfg()
	cfg.Quarantine = overload.QuarantineConfig{Strikes: 2, ProbeAfter: 2}
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.AddTenant("noisy", TenantConfig{Sim: testSimConfig(2, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	p.Register(&poisonHybrid{FailAttempts: 2})
	reps, _ := s.Run(steps) // poison-step errors are expected in Errs
	rep := reps["noisy"]
	if rep == nil {
		t.Fatal("missing report")
	}
	q := s.Quarantine()
	if q.Opens() == 0 {
		t.Fatal("repeated handler failures must trip the quarantine")
	}
	if q.Releases() == 0 {
		t.Fatal("a healed route must be released by a half-open probe")
	}
	if got := q.State("noisy", "poison"); got != overload.QClosed {
		t.Fatalf("route must end closed, got %v", got)
	}
	// The tail of the run flows at full fidelity again.
	if out, ok := rep.Result("poison", steps).(int); !ok || out != steps {
		t.Fatalf("final step result = %v, want full-transit %d", rep.Result("poison", steps), steps)
	}
	// While quarantined, steps store explicit fail-fast markers (the
	// admission pass floors them in-situ) rather than vanishing.
	sawMarker := false
	for step := 1; step <= steps; step++ {
		if d, ok := rep.Result("poison", step).(Degraded); ok && strings.Contains(d.Reason, "quarantined") {
			sawMarker = true
			break
		}
	}
	if !sawMarker {
		t.Fatal("no step carries a quarantine fail-fast marker")
	}
	if out, avail, total := s.Credits().Snapshot(); out != 0 || avail != total {
		t.Fatalf("credits leaked: outstanding=%d avail=%d total=%d", out, avail, total)
	}
	if got := p.PinnedRegions(); got != 0 {
		t.Fatalf("%d pinned regions leaked", got)
	}
}
