package core

import (
	"fmt"

	"insitu/internal/stats"
)

// StatsInSitu is the fully in-situ descriptive-statistics variant:
// learn and derive both run on the shared compute resources, with an
// all-to-all (allreduce) guaranteeing a consistent model on every
// rank. The derived per-variable statistics are the result.
type StatsInSitu struct {
	// Vars lists the variables to summarize (default: all 14).
	Vars []string
	// EveryN is the cadence in steps (default 1).
	EveryN int
}

// Name implements Analysis.
func (s *StatsInSitu) Name() string { return "in-situ descriptive statistics" }

// Every implements Analysis.
func (s *StatsInSitu) Every() int { return s.EveryN }

// RunInSitu implements InSituAnalysis.
func (s *StatsInSitu) RunInSitu(ctx *Ctx) (any, error) {
	local := stats.NewModel()
	for _, v := range s.vars(ctx) {
		f := ctx.Sim.Field(v)
		if f == nil {
			return nil, fmt.Errorf("stats: unknown variable %q", v)
		}
		local.LearnFieldParallel(f)
	}
	global := stats.ParallelLearn(ctx.Comm, local)
	return global.DeriveAll(), nil
}

func (s *StatsInSitu) vars(ctx *Ctx) []string {
	if len(s.Vars) > 0 {
		return s.Vars
	}
	return allVarNames()
}

// StatsHybrid is the hybrid variant: learn runs in-situ per rank with
// no communication at all; the partial models (a few hundred bytes
// each) move to the staging area where a single serial process
// aggregates them and derives the detailed statistics.
type StatsHybrid struct {
	Vars   []string
	EveryN int
}

// Name implements Analysis.
func (s *StatsHybrid) Name() string { return "hybrid descriptive statistics" }

// Every implements Analysis.
func (s *StatsHybrid) Every() int { return s.EveryN }

// InSituStage implements HybridAnalysis: the learn stage.
func (s *StatsHybrid) InSituStage(ctx *Ctx) ([]byte, error) {
	local := stats.NewModel()
	vars := s.Vars
	if len(vars) == 0 {
		vars = allVarNames()
	}
	for _, v := range vars {
		f := ctx.Sim.Field(v)
		if f == nil {
			return nil, fmt.Errorf("stats: unknown variable %q", v)
		}
		local.LearnFieldParallel(f)
	}
	return local.Marshal(), nil
}

// RunFallback implements InSituFallback: when the transit path is
// degraded the statistics complete fully in-situ — learn with an
// allreduce instead of staging the partial models.
func (s *StatsHybrid) RunFallback(ctx *Ctx) (any, error) {
	in := &StatsInSitu{Vars: s.Vars, EveryN: s.EveryN}
	return in.RunInSitu(ctx)
}

// InTransit implements HybridAnalysis: the derive stage — aggregate
// all partial models and derive, serially.
func (s *StatsHybrid) InTransit(step int, payloads [][]byte) (any, error) {
	global, err := stats.AggregateSerial(payloads)
	if err != nil {
		return nil, err
	}
	return global.DeriveAll(), nil
}

// AssessTestResult is the output of the assess and test stages.
type AssessTestResult struct {
	Var      string
	Model    stats.Derived
	Assessed int64 // observations assessed
	Extremes int64 // beyond Sigma standard deviations
	Test     stats.TestResult
}

// AssessTestInSitu completes the four-stage pattern of the paper's
// Fig. 4 inside the pipeline: learn (allreduce to a consistent global
// model), derive, then assess every local observation against the
// model (flagging |z| > Sigma outliers — candidate ignition kernels
// when applied to temperature) and run the Jarque–Bera normality test.
// Assess and test require no further communication beyond one count
// reduction for reporting.
type AssessTestInSitu struct {
	// Var is the assessed variable (default "T").
	Var string
	// Sigma is the outlier threshold in standard deviations
	// (default 3).
	Sigma  float64
	EveryN int
}

// Name implements Analysis.
func (a *AssessTestInSitu) Name() string { return "in-situ assess & test" }

// Every implements Analysis.
func (a *AssessTestInSitu) Every() int { return a.EveryN }

// RunInSitu implements InSituAnalysis.
func (a *AssessTestInSitu) RunInSitu(ctx *Ctx) (any, error) {
	name := a.Var
	if name == "" {
		name = "T"
	}
	sigma := a.Sigma
	if sigma <= 0 {
		sigma = 3
	}
	f := ctx.Sim.Field(name)
	if f == nil {
		return nil, fmt.Errorf("assess: unknown variable %q", name)
	}
	// Learn + derive.
	local := stats.NewModel()
	local.LearnFieldParallel(f)
	global := stats.ParallelLearn(ctx.Comm, local)
	derived := stats.Derive(global.Var(name))
	// Assess locally; reduce the outlier count for the report.
	extremes := int64(0)
	for _, as := range stats.Assess(f.Data, derived, sigma) {
		if as.Extreme {
			extremes++
		}
	}
	total := ctx.Comm.Allreduce(extremes, func(x, y any) any { return x.(int64) + y.(int64) }).(int64)
	if ctx.Comm.ID() != 0 {
		return nil, nil
	}
	return &AssessTestResult{
		Var:      name,
		Model:    derived,
		Assessed: derived.N,
		Extremes: total,
		Test:     stats.JarqueBera(derived),
	}, nil
}
