package core

import (
	"fmt"

	"insitu/internal/mergetree"
)

// TopologyStreaming is the streaming variant of the hybrid merge-tree
// analysis: the in-transit stage starts building the global tree as
// soon as the first subtree arrives instead of buffering all of them —
// the improvement the paper's conclusion proposes to "hide much of the
// in-transit computational costs". Subtrees are incorporated in
// arrival order, which the arbitrary-order streaming construction
// supports directly (eviction requires the sorted-edge protocol and is
// therefore only available in the buffered TopologyHybrid).
type TopologyStreaming struct {
	TopologyHybrid
}

// NewTopologyStreaming returns the streaming variant with the
// defaults of NewTopologyHybrid.
func NewTopologyStreaming() *TopologyStreaming {
	return &TopologyStreaming{TopologyHybrid: *NewTopologyHybrid()}
}

// Name implements Analysis.
func (t *TopologyStreaming) Name() string { return "hybrid topology (streaming)" }

// InTransitStream implements StreamingHybridAnalysis: incorporate each
// subtree the moment it arrives.
func (t *TopologyStreaming) InTransitStream(step int, inputs <-chan StreamInput) (any, error) {
	b := mergetree.NewBuilder()
	for in := range inputs {
		st, err := mergetree.UnmarshalSubtree(in.Data)
		if err != nil {
			return nil, fmt.Errorf("topology: streamed payload %d: %w", in.Index, err)
		}
		for _, v := range st.Verts {
			if err := b.DeclareVertex(v.ID, v.Value, v.Degree); err != nil {
				return nil, err
			}
		}
		for _, e := range st.Edges {
			if err := b.AddEdge(e.Hi, e.Lo); err != nil {
				return nil, err
			}
		}
	}
	tree, stream, err := b.Finish()
	if err != nil {
		return nil, err
	}
	res := &TopologyResult{Tree: tree, Stream: stream}
	work := tree
	if t.SimplifyEps > 0 {
		work = mergetree.Simplify(tree, t.SimplifyEps)
		res.Tree = work
	}
	if t.FeatureThreshold > 0 {
		seg := mergetree.Segment(work, t.FeatureThreshold)
		res.Features = seg.Features(work)
	}
	return res, nil
}
