package core

import (
	"fmt"

	"insitu/internal/grid"
	"insitu/internal/mergetree"
	"insitu/internal/sim"
)

// TopologyResult is the in-transit output of the hybrid merge-tree
// analysis: the global tree plus the streaming statistics and, when a
// threshold is configured, the extracted features.
type TopologyResult struct {
	Tree     *mergetree.Tree
	Stream   mergetree.StreamStats
	Features []mergetree.Feature
}

// TopologyHybrid is the hybrid merge-tree analysis: each rank computes
// the reduced subtree of its extended block in-situ (boundary-
// augmented so subtrees glue exactly), and a serial in-transit stage
// aggregates them with the streaming, memory-bounded algorithm.
type TopologyHybrid struct {
	// Var is the scalar to analyze (default "T").
	Var    string
	EveryN int
	// Policy selects the boundary augmentation (default
	// KeepSharedBoundary, the provably sufficient set).
	Policy mergetree.BoundaryPolicy
	// SimplifyEps prunes branches below this persistence in-transit
	// (0 keeps everything).
	SimplifyEps float64
	// FeatureThreshold, when > 0, extracts superlevel-set features at
	// this threshold from the simplified tree.
	FeatureThreshold float64
	// Evict enables the memory-bounded streaming aggregation
	// (default true via NewTopologyHybrid).
	Evict bool
	// Workers > 1 switches the in-transit stage to the parallel
	// hierarchical glue (pairwise region merges) with that many
	// concurrent merges — the parallel in-transit variant the paper
	// notes "can easily be made" from the serial one.
	Workers int
}

// NewTopologyHybrid returns the analysis with the paper's defaults:
// temperature field, streaming eviction on.
func NewTopologyHybrid() *TopologyHybrid {
	return &TopologyHybrid{Var: "T", Evict: true}
}

// Name implements Analysis.
func (t *TopologyHybrid) Name() string { return "hybrid topology" }

// Every implements Analysis.
func (t *TopologyHybrid) Every() int { return t.EveryN }

func (t *TopologyHybrid) varName() string {
	if t.Var == "" {
		return "T"
	}
	return t.Var
}

// InSituStage implements HybridAnalysis: compute the local subtree of
// the rank's extended block and pack it for transfer.
func (t *TopologyHybrid) InSituStage(ctx *Ctx) ([]byte, error) {
	f := ctx.Sim.GhostedField(t.varName())
	if f == nil {
		return nil, fmt.Errorf("topology: unknown variable %q", t.varName())
	}
	st, err := mergetree.LocalSubtree(f, ctx.Global, ctx.Owned, ctx.Comm.ID(), t.Policy)
	if err != nil {
		return nil, err
	}
	return st.Marshal(), nil
}

// InTransit implements HybridAnalysis: glue the subtrees into the
// global merge tree with the streaming algorithm, then optionally
// simplify and extract features.
func (t *TopologyHybrid) InTransit(step int, payloads [][]byte) (any, error) {
	subtrees := make([]*mergetree.Subtree, 0, len(payloads))
	var globalBox grid.Box
	for i, p := range payloads {
		st, err := mergetree.UnmarshalSubtree(p)
		if err != nil {
			return nil, fmt.Errorf("topology: payload %d: %w", i, err)
		}
		globalBox = globalBox.Union(st.Block)
		subtrees = append(subtrees, st)
	}
	var tree *mergetree.Tree
	var stream mergetree.StreamStats
	var err error
	if t.Workers > 1 {
		tree, err = mergetree.GlueHierarchical(subtrees, globalBox, t.Workers)
	} else {
		tree, stream, err = mergetree.Glue(subtrees, mergetree.GlueOptions{Evict: t.Evict})
	}
	if err != nil {
		return nil, err
	}
	res := &TopologyResult{Tree: tree, Stream: stream}
	work := tree
	if t.SimplifyEps > 0 {
		work = mergetree.Simplify(tree, t.SimplifyEps)
		res.Tree = work
	}
	if t.FeatureThreshold > 0 {
		seg := mergetree.Segment(work, t.FeatureThreshold)
		res.Features = seg.Features(work)
	}
	return res, nil
}

// allVarNames returns the full simulation variable list.
func allVarNames() []string { return sim.VarNames }
