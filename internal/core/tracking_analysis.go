package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"insitu/internal/grid"
	"insitu/internal/mergetree"
)

// TrackingHybrid performs concurrent feature tracking — the capability
// the paper's case study motivates: following ignition kernels whose
// lifetime (~10 steps) is far shorter than any feasible I/O cadence.
//
// In-situ, each rank segments its block at the threshold, labels each
// local component by its sweep-highest member (a local maximum, hence
// retained in the reduced subtree), and counts voxel overlaps between
// the previous and current step's local components. In-transit, the
// glued global tree resolves every local representative to its global
// feature. Because successive steps are temporally multiplexed across
// buckets and may complete out of order, each step's result carries
// its own representative→feature resolution; JoinTracking combines two
// consecutive results into exact global overlap matches (equal to
// what serial whole-field tracking would report).
type TrackingHybrid struct {
	// Var is the tracked variable (default "Y_OH", the ignition
	// marker).
	Var string
	// Threshold defines the features.
	Threshold float64
	EveryN    int
}

// Name implements Analysis.
func (tr *TrackingHybrid) Name() string { return "hybrid feature tracking" }

// Every implements Analysis.
func (tr *TrackingHybrid) Every() int { return tr.EveryN }

func (tr *TrackingHybrid) varName() string {
	if tr.Var == "" {
		return "Y_OH"
	}
	return tr.Var
}

// RawMatch is one rank's voxel-overlap count between a previous-step
// local component and a current-step local component, identified by
// their representative (sweep-highest) vertices.
type RawMatch struct {
	PrevRep int64
	CurRep  int64
	Overlap int64
}

const trackingStateKey = "tracking-prev-labels"

// localLabels segments the rank's extended block and returns
// owned-voxel labels keyed by voxel id, labeled by the component's
// sweep-highest member, plus the sorted list of representatives.
func (tr *TrackingHybrid) localLabels(ctx *Ctx) (map[int64]int64, []int64, error) {
	f := ctx.Sim.GhostedField(tr.varName())
	if f == nil {
		return nil, nil, fmt.Errorf("tracking: unknown variable %q", tr.varName())
	}
	ext := ctx.Owned.Grow(1).Intersect(ctx.Global)
	block := f.Extract(ext)
	seg := mergetree.SegmentField(block, ctx.Global, tr.Threshold)

	// Sweep-highest member per component.
	rep := make(map[int64]int64)
	repVal := make(map[int64]float64)
	for id, label := range seg.Labels {
		i, j, k := grid.GlobalPoint(ctx.Global, id)
		v := block.At(i, j, k)
		if cur, ok := rep[label]; !ok || mergetree.Above(v, id, repVal[label], cur) {
			rep[label] = id
			repVal[label] = v
		}
	}
	out := make(map[int64]int64)
	repSet := make(map[int64]bool)
	for id, label := range seg.Labels {
		i, j, k := grid.GlobalPoint(ctx.Global, id)
		if !ctx.Owned.Contains(i, j, k) {
			continue
		}
		r := rep[label]
		out[id] = r
		repSet[r] = true
	}
	reps := make([]int64, 0, len(repSet))
	for r := range repSet {
		reps = append(reps, r)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
	return out, reps, nil
}

// InSituStage implements HybridAnalysis.
func (tr *TrackingHybrid) InSituStage(ctx *Ctx) ([]byte, error) {
	cur, reps, err := tr.localLabels(ctx)
	if err != nil {
		return nil, err
	}
	// Voxel overlaps against the previous invocation's labels.
	var matches []RawMatch
	if prev, ok := ctx.State[trackingStateKey].(map[int64]int64); ok {
		counts := make(map[[2]int64]int64)
		for id, pl := range prev {
			if cl, ok := cur[id]; ok {
				counts[[2]int64{pl, cl}]++
			}
		}
		for k, n := range counts {
			matches = append(matches, RawMatch{PrevRep: k[0], CurRep: k[1], Overlap: n})
		}
		sort.Slice(matches, func(i, j int) bool {
			if matches[i].PrevRep != matches[j].PrevRep {
				return matches[i].PrevRep < matches[j].PrevRep
			}
			return matches[i].CurRep < matches[j].CurRep
		})
	}
	ctx.State[trackingStateKey] = cur

	// The subtree rides along so the in-transit stage can resolve
	// representatives against the global tree.
	f := ctx.Sim.GhostedField(tr.varName())
	st, err := mergetree.LocalSubtree(f, ctx.Global, ctx.Owned, ctx.Comm.ID(), mergetree.KeepSharedBoundary)
	if err != nil {
		return nil, err
	}
	return packTracking(st, reps, matches), nil
}

// packTracking serializes subtree + reps + matches.
func packTracking(st *mergetree.Subtree, reps []int64, matches []RawMatch) []byte {
	sub := st.Marshal()
	var buf bytes.Buffer
	var b8 [8]byte
	putU := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		buf.Write(b8[:])
	}
	putU(uint64(len(sub)))
	buf.Write(sub)
	putU(uint64(len(reps)))
	for _, r := range reps {
		putU(uint64(r))
	}
	putU(uint64(len(matches)))
	for _, m := range matches {
		putU(uint64(m.PrevRep))
		putU(uint64(m.CurRep))
		putU(uint64(m.Overlap))
	}
	return buf.Bytes()
}

func unpackTracking(p []byte) (*mergetree.Subtree, []int64, []RawMatch, error) {
	rd := func(n int) ([]byte, error) {
		if len(p) < n {
			return nil, fmt.Errorf("tracking: truncated payload")
		}
		out := p[:n]
		p = p[n:]
		return out, nil
	}
	u64 := func() (uint64, error) {
		b, err := rd(8)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b), nil
	}
	subLen, err := u64()
	if err != nil {
		return nil, nil, nil, err
	}
	subBytes, err := rd(int(subLen))
	if err != nil {
		return nil, nil, nil, err
	}
	st, err := mergetree.UnmarshalSubtree(subBytes)
	if err != nil {
		return nil, nil, nil, err
	}
	nreps, err := u64()
	if err != nil {
		return nil, nil, nil, err
	}
	reps := make([]int64, nreps)
	for i := range reps {
		v, err := u64()
		if err != nil {
			return nil, nil, nil, err
		}
		reps[i] = int64(v)
	}
	nm, err := u64()
	if err != nil {
		return nil, nil, nil, err
	}
	matches := make([]RawMatch, nm)
	for i := range matches {
		a, err := u64()
		if err != nil {
			return nil, nil, nil, err
		}
		b, err := u64()
		if err != nil {
			return nil, nil, nil, err
		}
		c, err := u64()
		if err != nil {
			return nil, nil, nil, err
		}
		matches[i] = RawMatch{PrevRep: int64(a), CurRep: int64(b), Overlap: int64(c)}
	}
	return st, reps, matches, nil
}

// TrackingStepResult is one step's in-transit output: the global
// feature set, the representative→feature resolution for this step,
// and the raw (unresolved on the previous side) matches.
type TrackingStepResult struct {
	Step       int
	Features   []mergetree.Feature
	Resolution map[int64]int64 // representative vertex -> global feature label
	Raw        []RawMatch
}

// InTransit implements HybridAnalysis.
func (tr *TrackingHybrid) InTransit(step int, payloads [][]byte) (any, error) {
	var subtrees []*mergetree.Subtree
	var reps []int64
	var raw []RawMatch
	for i, p := range payloads {
		st, rs, ms, err := unpackTracking(p)
		if err != nil {
			return nil, fmt.Errorf("tracking: payload %d: %w", i, err)
		}
		subtrees = append(subtrees, st)
		reps = append(reps, rs...)
		raw = append(raw, ms...)
	}
	tree, _, err := mergetree.Glue(subtrees, mergetree.GlueOptions{Evict: true})
	if err != nil {
		return nil, err
	}
	seg := mergetree.Segment(tree, tr.Threshold)
	res := &TrackingStepResult{
		Step:       step,
		Features:   seg.Features(tree),
		Resolution: make(map[int64]int64, len(reps)),
		Raw:        raw,
	}
	for _, r := range reps {
		label, ok := seg.Labels[r]
		if !ok {
			return nil, fmt.Errorf("tracking: representative %d missing from global segmentation", r)
		}
		res.Resolution[r] = label
	}
	return res, nil
}

// BuildTrackGraph assembles a whole run's tracking results into the
// feature-lineage graph: births (kernel inception), deaths
// (dissipation), merges, splits and whole tracks with lifetimes — the
// analysis of intermittent phenomena the paper's case study motivates.
// Results must exist for every due step in [1, steps].
func BuildTrackGraph(rep *Report, track *TrackingHybrid, steps int) (*mergetree.TrackGraph, error) {
	g := mergetree.NewTrackGraph()
	every := track.Every()
	if every < 1 {
		every = 1
	}
	var prev *TrackingStepResult
	for s := every; s <= steps; s += every {
		res, ok := rep.Result(track.Name(), s).(*TrackingStepResult)
		if !ok || res == nil {
			return nil, fmt.Errorf("tracking: missing result for step %d", s)
		}
		feats := make([]int64, 0, len(res.Features))
		for _, f := range res.Features {
			feats = append(feats, f.Label)
		}
		if err := g.AddStep(s, feats); err != nil {
			return nil, err
		}
		if prev != nil {
			matches, err := JoinTracking(prev, res)
			if err != nil {
				return nil, err
			}
			if err := g.AddMatches(prev.Step, s, matches); err != nil {
				return nil, err
			}
		}
		prev = res
	}
	return g, nil
}

// JoinTracking combines two consecutive steps' results into global
// overlap matches: each raw match's previous-side representative is
// resolved against the earlier step, its current side against the
// later one, and counts aggregate per global feature pair. The result
// equals serial whole-field tracking (mergetree.Track) exactly.
func JoinTracking(prev, cur *TrackingStepResult) ([]mergetree.Match, error) {
	counts := make(map[[2]int64]int64)
	for _, m := range cur.Raw {
		pl, ok := prev.Resolution[m.PrevRep]
		if !ok {
			return nil, fmt.Errorf("tracking: previous representative %d not resolved by step %d", m.PrevRep, prev.Step)
		}
		cl, ok := cur.Resolution[m.CurRep]
		if !ok {
			return nil, fmt.Errorf("tracking: current representative %d not resolved by step %d", m.CurRep, cur.Step)
		}
		counts[[2]int64{pl, cl}] += m.Overlap
	}
	out := make([]mergetree.Match, 0, len(counts))
	for k, n := range counts {
		out = append(out, mergetree.Match{PrevLabel: k[0], NextLabel: k[1], Overlap: int(n)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Overlap != out[j].Overlap {
			return out[i].Overlap > out[j].Overlap
		}
		if out[i].PrevLabel != out[j].PrevLabel {
			return out[i].PrevLabel < out[j].PrevLabel
		}
		return out[i].NextLabel < out[j].NextLabel
	})
	return out, nil
}
