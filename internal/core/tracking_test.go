package core

import (
	"testing"

	"insitu/internal/grid"
	"insitu/internal/mergetree"
)

// TestTrackingHybridMatchesSerial drives the concurrent feature
// tracking through the full pipeline and verifies the joined matches
// equal serial whole-field tracking, compared in the label-independent
// space of each feature's maximum vertex.
func TestTrackingHybridMatchesSerial(t *testing.T) {
	const steps = 5
	const threshold = 0.02
	simCfg := testSimConfig(2, 2, 1)
	simCfg.KernelRate = 1.0

	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	track := &TrackingHybrid{Threshold: threshold}
	p.Register(track)
	rep, err := p.Run(steps)
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference: segment the global OH field at every step.
	var serialSegs []*mergetree.Segmentation
	for s := 1; s <= steps; s++ {
		gf := globalFields(t, simCfg, s, []string{"Y_OH"})
		serialSegs = append(serialSegs, mergetree.SegmentField(gf["Y_OH"], simCfg.Global, threshold))
	}

	// maxOf maps a segmentation's labels to each component's highest
	// vertex, giving construction-independent feature identities.
	maxOf := func(seg *mergetree.Segmentation, field map[int64]float64) map[int64]int64 {
		out := make(map[int64]int64)
		best := make(map[int64]float64)
		for id, label := range seg.Labels {
			v := field[id]
			if cur, ok := out[label]; !ok || mergetree.Above(v, id, best[label], cur) {
				out[label] = id
				best[label] = v
			}
		}
		return out
	}

	for s := 2; s <= steps; s++ {
		prev := rep.Result(track.Name(), s-1).(*TrackingStepResult)
		cur := rep.Result(track.Name(), s).(*TrackingStepResult)
		joined, err := JoinTracking(prev, cur)
		if err != nil {
			t.Fatal(err)
		}

		// Serial matches, canonicalized to (prevMaxID, curMaxID).
		gfPrev := globalFields(t, simCfg, s-1, []string{"Y_OH"})["Y_OH"]
		gfCur := globalFields(t, simCfg, s, []string{"Y_OH"})["Y_OH"]
		valsPrev := make(map[int64]float64)
		for id := range serialSegs[s-2].Labels {
			i, j, k := grid.GlobalPoint(simCfg.Global, id)
			valsPrev[id] = gfPrev.At(i, j, k)
		}
		valsCur := make(map[int64]float64)
		for id := range serialSegs[s-1].Labels {
			i, j, k := grid.GlobalPoint(simCfg.Global, id)
			valsCur[id] = gfCur.At(i, j, k)
		}
		prevMax := maxOf(serialSegs[s-2], valsPrev)
		curMax := maxOf(serialSegs[s-1], valsCur)
		want := make(map[[2]int64]int)
		for _, m := range mergetree.Track(serialSegs[s-2], serialSegs[s-1]) {
			want[[2]int64{prevMax[m.PrevLabel], curMax[m.NextLabel]}] = m.Overlap
		}

		// Pipeline matches, canonicalized via each step's feature list.
		featMax := func(r *TrackingStepResult) map[int64]int64 {
			out := make(map[int64]int64, len(r.Features))
			for _, f := range r.Features {
				out[f.Label] = f.MaxID
			}
			return out
		}
		pm, cm := featMax(prev), featMax(cur)
		got := make(map[[2]int64]int)
		for _, m := range joined {
			got[[2]int64{pm[m.PrevLabel], cm[m.NextLabel]}] = m.Overlap
		}

		if len(got) != len(want) {
			t.Fatalf("step %d: %d pipeline matches vs %d serial", s, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("step %d: match %v overlap %d vs serial %d", s, k, got[k], n)
			}
		}
		if s == steps && len(want) == 0 {
			t.Fatal("test produced no matches; threshold too high to be meaningful")
		}
	}
}

// TestBuildTrackGraph assembles the lineage over a pipeline run.
func TestBuildTrackGraph(t *testing.T) {
	const steps = 6
	simCfg := testSimConfig(2, 2, 1)
	simCfg.KernelRate = 1.2
	p, err := NewPipeline(DefaultConfig(simCfg))
	if err != nil {
		t.Fatal(err)
	}
	track := &TrackingHybrid{Threshold: 0.02}
	p.Register(track)
	rep, err := p.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildTrackGraph(rep, track, steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Steps()) != steps {
		t.Fatalf("graph covers %d steps, want %d", len(g.Steps()), steps)
	}
	s := g.Summarize(true)
	if s.Tracks == 0 || s.LongestTrack < 2 {
		t.Fatalf("expected at least one multi-step track: %+v", s)
	}
	// Missing-step error path.
	if _, err := BuildTrackGraph(rep, track, steps+5); err == nil {
		t.Fatal("missing step must error")
	}
}
