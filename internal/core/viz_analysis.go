package core

import (
	"fmt"

	"insitu/internal/grid"
	"insitu/internal/render"
)

// VizInSitu is the fully in-situ volume renderer: every rank
// ray-casts its full-resolution block on the shared compute resources,
// partial images are gathered to rank 0 and composited in visibility
// order. The result (on rank 0) is the full-quality frame.
type VizInSitu struct {
	Var      string // scalar to render (default "T")
	EveryN   int
	Width    int
	Height   int
	Dir      [3]float64
	TF       *render.TransferFunc
	StepSize float64
	// Tag distinguishes multiple simultaneous instances ("multiple
	// instances of each visualization mode can be dynamically created
	// ... enabling scientists to explore different aspects ... in
	// linked-views"); it is appended to the analysis name.
	Tag string
}

// NewVizInSitu returns an in-situ renderer with sensible defaults for
// the temperature field.
func NewVizInSitu(w, h int) *VizInSitu {
	return &VizInSitu{
		Var: "T", Width: w, Height: h,
		Dir: [3]float64{0.45, 0.3, 1}, StepSize: 0.5,
	}
}

// Name implements Analysis.
func (v *VizInSitu) Name() string {
	if v.Tag != "" {
		return "in-situ visualization [" + v.Tag + "]"
	}
	return "in-situ visualization"
}

// Every implements Analysis.
func (v *VizInSitu) Every() int { return v.EveryN }

func (v *VizInSitu) renderer(global grid.Box, f *grid.Field) (*render.Renderer, error) {
	tf := v.TF
	if tf == nil {
		// The default must be identical on every rank (a per-rank
		// range would break compositing), so use a fixed window
		// covering the proxy's temperature range.
		tf = render.HotMetal(0.2, 2.0)
	}
	return render.NewRenderer(v.Width, v.Height, tf, v.Dir, [3]float64{0, 1, 0}, v.StepSize, global)
}

// RunInSitu implements InSituAnalysis: render the local block, gather,
// composite on rank 0.
func (v *VizInSitu) RunInSitu(ctx *Ctx) (any, error) {
	name := v.Var
	if name == "" {
		name = "T"
	}
	f := ctx.Sim.GhostedField(name)
	if f == nil {
		return nil, fmt.Errorf("viz: unknown variable %q", name)
	}
	r, err := v.renderer(ctx.Global, f)
	if err != nil {
		return nil, err
	}
	part := r.RenderBlock(f, ctx.Owned)
	images := ctx.Comm.Gather(0, part)
	if ctx.Comm.ID() != 0 {
		return nil, nil
	}
	// Composite in visibility order of the blocks.
	order := r.BlockOrder(ctx.Decomp)
	ordered := make([]*render.Image, 0, len(images))
	for _, rank := range order {
		ordered = append(ordered, images[rank].(*render.Image))
	}
	return render.CompositeFrontToBack(ordered)
}

// VizHybrid is the hybrid renderer: each rank down-samples its block
// in-situ (at every Factor-th grid point); the single serial
// in-transit stage builds the block lookup table and ray-casts the
// down-sampled volume.
type VizHybrid struct {
	Var      string
	EveryN   int
	Factor   int // down-sampling factor (the paper uses 8)
	Width    int
	Height   int
	Dir      [3]float64
	TF       *render.TransferFunc
	StepSize float64 // in down-sampled index space
	// Tag distinguishes multiple simultaneous instances (linked
	// views); it is appended to the analysis name.
	Tag string
	// AutoRange steers the transfer function per step: the in-transit
	// stage frames HotMetal over the received blocks' global value
	// range, so the rendering adapts as the flame evolves — the
	// on-the-fly visualization-parameter steering a concurrent
	// approach enables. Ignored when TF is set explicitly.
	AutoRange bool
}

// NewVizHybrid returns the hybrid renderer with the paper's 8x
// down-sampling.
func NewVizHybrid(w, h int, factor int) *VizHybrid {
	return &VizHybrid{
		Var: "T", Width: w, Height: h, Factor: factor,
		Dir: [3]float64{0.45, 0.3, 1}, StepSize: 0.5,
	}
}

// Name implements Analysis.
func (v *VizHybrid) Name() string {
	if v.Tag != "" {
		return "hybrid visualization [" + v.Tag + "]"
	}
	return "hybrid visualization"
}

// Every implements Analysis.
func (v *VizHybrid) Every() int { return v.EveryN }

// InSituStage implements HybridAnalysis: down-sample and marshal.
func (v *VizHybrid) InSituStage(ctx *Ctx) ([]byte, error) {
	return v.stage(ctx, 0)
}

// InSituStageShaped implements ShapedStage: under overload the ladder's
// shaped rung doubles the down-sampling factor per shaping level, so a
// browned-out staging tier receives an eighth of the bytes per level of
// pressure instead of nothing.
func (v *VizHybrid) InSituStageShaped(ctx *Ctx, level int) ([]byte, error) {
	return v.stage(ctx, level)
}

func (v *VizHybrid) stage(ctx *Ctx, level int) ([]byte, error) {
	name := v.Var
	if name == "" {
		name = "T"
	}
	f := ctx.Sim.GhostedField(name)
	if f == nil {
		return nil, fmt.Errorf("viz: unknown variable %q", name)
	}
	factor := v.Factor
	if factor < 1 {
		factor = 8
	}
	for i := 0; i < level; i++ {
		factor *= 2
	}
	payload, _ := render.DownsampleForTransit(f, ctx.Owned, factor)
	return payload, nil
}

// PayloadFloatTail implements QuantizableStage: the staged payload is
// one field marshal (name, box, count, then the float64 tail), so the
// lossy transfer-path codecs can transform the sample data while the
// header travels verbatim.
func (v *VizHybrid) PayloadFloatTail(payload []byte) (int, bool) {
	return grid.FloatTailOffset(payload)
}

// RunFallback implements InSituFallback: when the transit path is
// degraded the frame renders fully in-situ — full-resolution
// ray-casting plus gather/composite — instead of staging down-sampled
// blocks.
func (v *VizHybrid) RunFallback(ctx *Ctx) (any, error) {
	in := &VizInSitu{
		Var: v.Var, Width: v.Width, Height: v.Height,
		Dir: v.Dir, TF: v.TF, StepSize: v.StepSize, Tag: v.Tag,
	}
	return in.RunInSitu(ctx)
}

// InTransit implements HybridAnalysis: assemble the lookup table and
// render serially.
func (v *VizHybrid) InTransit(step int, payloads [][]byte) (any, error) {
	bt := render.NewBlockTable()
	for i, p := range payloads {
		if err := bt.AddMarshalled(p); err != nil {
			return nil, fmt.Errorf("viz: payload %d: %w", i, err)
		}
	}
	tf := v.TF
	if tf == nil {
		if v.AutoRange {
			lo, hi := bt.ValueRange()
			if hi <= lo {
				hi = lo + 1
			}
			tf = render.HotMetal(lo, hi)
		} else {
			tf = render.HotMetal(0.2, 2.0)
		}
	}
	r, err := render.NewRenderer(v.Width, v.Height, tf, v.Dir, [3]float64{0, 1, 0}, v.StepSize, bt.Bounds())
	if err != nil {
		return nil, err
	}
	return r.RenderTable(bt)
}
