package core

import (
	"fmt"

	"insitu/internal/grid"
	"insitu/internal/render"
)

// VizInSitu is the fully in-situ volume renderer: every rank
// ray-casts its full-resolution block on the shared compute resources,
// partial images are gathered to rank 0 and composited in visibility
// order. The result (on rank 0) is the full-quality frame.
type VizInSitu struct {
	Var      string // scalar to render (default "T")
	EveryN   int
	Width    int
	Height   int
	Dir      [3]float64
	TF       *render.TransferFunc
	StepSize float64
	// Tag distinguishes multiple simultaneous instances ("multiple
	// instances of each visualization mode can be dynamically created
	// ... enabling scientists to explore different aspects ... in
	// linked-views"); it is appended to the analysis name.
	Tag string
	// Cameras renders the step from an orbit of view directions
	// (render.OrbitDirs) instead of the single Dir, producing a
	// *render.FrameSet — the Cinema-style image database's camera axis.
	// 0 or 1 keeps the single-Dir path byte for byte.
	Cameras int
}

// NewVizInSitu returns an in-situ renderer with sensible defaults for
// the temperature field.
func NewVizInSitu(w, h int) *VizInSitu {
	return &VizInSitu{
		Var: "T", Width: w, Height: h,
		Dir: [3]float64{0.45, 0.3, 1}, StepSize: 0.5,
	}
}

// Name implements Analysis.
func (v *VizInSitu) Name() string {
	if v.Tag != "" {
		return "in-situ visualization [" + v.Tag + "]"
	}
	return "in-situ visualization"
}

// Every implements Analysis.
func (v *VizInSitu) Every() int { return v.EveryN }

func (v *VizInSitu) renderer(global grid.Box, dir [3]float64) (*render.Renderer, error) {
	tf := v.TF
	if tf == nil {
		// The default must be identical on every rank (a per-rank
		// range would break compositing), so use a fixed window
		// covering the proxy's temperature range.
		tf = render.HotMetal(0.2, 2.0)
	}
	return render.NewRenderer(v.Width, v.Height, tf, dir, [3]float64{0, 1, 0}, v.StepSize, global)
}

// FrameVar implements FrameAnalysis: the store variable in-situ frames
// are filed under.
func (v *VizInSitu) FrameVar() string {
	name := v.Var
	if name == "" {
		name = "T"
	}
	name += ".insitu"
	if v.Tag != "" {
		name += "." + v.Tag
	}
	return name
}

// RunInSitu implements InSituAnalysis: render the local block, gather,
// composite on rank 0. With Cameras > 1 the step renders once per orbit
// direction and rank 0 returns the full *render.FrameSet.
func (v *VizInSitu) RunInSitu(ctx *Ctx) (any, error) {
	name := v.Var
	if name == "" {
		name = "T"
	}
	f := ctx.Sim.GhostedField(name)
	if f == nil {
		return nil, fmt.Errorf("viz: unknown variable %q", name)
	}
	if v.Cameras <= 1 {
		img, err := v.renderOne(ctx, f, v.Dir)
		if err != nil || ctx.Comm.ID() != 0 {
			return nil, err
		}
		return img, nil
	}
	fs := &render.FrameSet{}
	for i, dir := range render.OrbitDirs(v.Cameras) {
		img, err := v.renderOne(ctx, f, dir)
		if err != nil {
			for _, fr := range fs.Frames {
				render.PutImage(fr.Img)
			}
			return nil, err
		}
		if ctx.Comm.ID() == 0 {
			fs.Frames = append(fs.Frames, render.Frame{Cam: render.CameraName(i), Img: img})
		}
	}
	if ctx.Comm.ID() != 0 {
		return nil, nil
	}
	return fs, nil
}

// renderOne renders the step from one view direction: local block
// ray-cast, gather, front-to-back composite on rank 0. The gathered
// partial images are recycled once composited — Gather shares pointers
// in-process and no producer touches its partial after the gather, so
// rank 0 owns all of them here.
func (v *VizInSitu) renderOne(ctx *Ctx, f *grid.Field, dir [3]float64) (*render.Image, error) {
	r, err := v.renderer(ctx.Global, dir)
	if err != nil {
		return nil, err
	}
	part := r.RenderBlock(f, ctx.Owned)
	images := ctx.Comm.Gather(0, part)
	if ctx.Comm.ID() != 0 {
		return nil, nil
	}
	// Composite in visibility order of the blocks.
	order := r.BlockOrder(ctx.Decomp)
	ordered := make([]*render.Image, 0, len(images))
	for _, rank := range order {
		ordered = append(ordered, images[rank].(*render.Image))
	}
	out, err := render.CompositeFrontToBack(ordered)
	for _, p := range ordered {
		render.PutImage(p)
	}
	return out, err
}

// VizHybrid is the hybrid renderer: each rank down-samples its block
// in-situ (at every Factor-th grid point); the single serial
// in-transit stage builds the block lookup table and ray-casts the
// down-sampled volume.
type VizHybrid struct {
	Var      string
	EveryN   int
	Factor   int // down-sampling factor (the paper uses 8)
	Width    int
	Height   int
	Dir      [3]float64
	TF       *render.TransferFunc
	StepSize float64 // in down-sampled index space
	// Tag distinguishes multiple simultaneous instances (linked
	// views); it is appended to the analysis name.
	Tag string
	// Cameras ray-casts the down-sampled volume once per orbit
	// direction (render.OrbitDirs) in the in-transit stage, producing a
	// *render.FrameSet. The staged payload is unchanged — the extra
	// views cost only in-transit compute, which is the hybrid
	// placement's whole point. 0 or 1 keeps the single-Dir path.
	Cameras int
	// AutoRange steers the transfer function per step: the in-transit
	// stage frames HotMetal over the received blocks' global value
	// range, so the rendering adapts as the flame evolves — the
	// on-the-fly visualization-parameter steering a concurrent
	// approach enables. Ignored when TF is set explicitly.
	AutoRange bool
}

// NewVizHybrid returns the hybrid renderer with the paper's 8x
// down-sampling.
func NewVizHybrid(w, h int, factor int) *VizHybrid {
	return &VizHybrid{
		Var: "T", Width: w, Height: h, Factor: factor,
		Dir: [3]float64{0.45, 0.3, 1}, StepSize: 0.5,
	}
}

// Name implements Analysis.
func (v *VizHybrid) Name() string {
	if v.Tag != "" {
		return "hybrid visualization [" + v.Tag + "]"
	}
	return "hybrid visualization"
}

// Every implements Analysis.
func (v *VizHybrid) Every() int { return v.EveryN }

// InSituStage implements HybridAnalysis: down-sample and marshal.
func (v *VizHybrid) InSituStage(ctx *Ctx) ([]byte, error) {
	return v.stage(ctx, 0)
}

// InSituStageShaped implements ShapedStage: under overload the ladder's
// shaped rung doubles the down-sampling factor per shaping level, so a
// browned-out staging tier receives an eighth of the bytes per level of
// pressure instead of nothing.
func (v *VizHybrid) InSituStageShaped(ctx *Ctx, level int) ([]byte, error) {
	return v.stage(ctx, level)
}

func (v *VizHybrid) stage(ctx *Ctx, level int) ([]byte, error) {
	name := v.Var
	if name == "" {
		name = "T"
	}
	f := ctx.Sim.GhostedField(name)
	if f == nil {
		return nil, fmt.Errorf("viz: unknown variable %q", name)
	}
	factor := v.Factor
	if factor < 1 {
		factor = 8
	}
	for i := 0; i < level; i++ {
		factor *= 2
	}
	payload, _ := render.DownsampleForTransit(f, ctx.Owned, factor)
	return payload, nil
}

// PayloadFloatTail implements QuantizableStage: the staged payload is
// one field marshal (name, box, count, then the float64 tail), so the
// lossy transfer-path codecs can transform the sample data while the
// header travels verbatim.
func (v *VizHybrid) PayloadFloatTail(payload []byte) (int, bool) {
	return grid.FloatTailOffset(payload)
}

// FrameVar implements FrameAnalysis: the store variable hybrid frames
// are filed under.
func (v *VizHybrid) FrameVar() string {
	name := v.Var
	if name == "" {
		name = "T"
	}
	name += ".hybrid"
	if v.Tag != "" {
		name += "." + v.Tag
	}
	return name
}

// RunFallback implements InSituFallback: when the transit path is
// degraded the frame renders fully in-situ — full-resolution
// ray-casting plus gather/composite — instead of staging down-sampled
// blocks. The camera count carries over so a degraded step still fills
// every cell of its image-database row.
func (v *VizHybrid) RunFallback(ctx *Ctx) (any, error) {
	in := &VizInSitu{
		Var: v.Var, Width: v.Width, Height: v.Height,
		Dir: v.Dir, TF: v.TF, StepSize: v.StepSize, Tag: v.Tag,
		Cameras: v.Cameras,
	}
	return in.RunInSitu(ctx)
}

// InTransit implements HybridAnalysis: assemble the lookup table and
// render serially.
func (v *VizHybrid) InTransit(step int, payloads [][]byte) (any, error) {
	bt := render.NewBlockTable()
	for i, p := range payloads {
		if err := bt.AddMarshalled(p); err != nil {
			return nil, fmt.Errorf("viz: payload %d: %w", i, err)
		}
	}
	tf := v.TF
	if tf == nil {
		if v.AutoRange {
			lo, hi := bt.ValueRange()
			if hi <= lo {
				hi = lo + 1
			}
			tf = render.HotMetal(lo, hi)
		} else {
			tf = render.HotMetal(0.2, 2.0)
		}
	}
	if v.Cameras <= 1 {
		r, err := render.NewRenderer(v.Width, v.Height, tf, v.Dir, [3]float64{0, 1, 0}, v.StepSize, bt.Bounds())
		if err != nil {
			return nil, err
		}
		return r.RenderTable(bt)
	}
	fs := &render.FrameSet{}
	for i, dir := range render.OrbitDirs(v.Cameras) {
		r, err := render.NewRenderer(v.Width, v.Height, tf, dir, [3]float64{0, 1, 0}, v.StepSize, bt.Bounds())
		if err == nil {
			var img *render.Image
			img, err = r.RenderTable(bt)
			if err == nil {
				fs.Frames = append(fs.Frames, render.Frame{Cam: render.CameraName(i), Img: img})
				continue
			}
		}
		for _, fr := range fs.Frames {
			render.PutImage(fr.Img)
		}
		return nil, err
	}
	return fs, nil
}
