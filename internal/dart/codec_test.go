package dart

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"insitu/internal/bufpool"
	"insitu/internal/codec"
	"insitu/internal/faults"
	"insitu/internal/netsim"
)

// codecFabric returns a clean fabric with a codec registry attached.
func codecFabric() *Fabric {
	f := NewFabric(netsim.New(netsim.Gemini()))
	f.SetCodecs(codec.NewRegistry())
	return f
}

// floatPayload builds a header + float64-tail payload.
func floatPayload(rng *rand.Rand, header, count int) []byte {
	p := make([]byte, header+8*count)
	rng.Read(p[:header])
	for i := 0; i < count; i++ {
		binary.LittleEndian.PutUint64(p[header+8*i:], math.Float64bits(math.Sin(float64(i)/40)))
	}
	return p
}

// TestRegisterMemEncodedRoundTrip: an encoded registration pulls back
// the original payload transparently, the pinned region is smaller
// than raw, and the fabric's byte economy records the saving.
func TestRegisterMemEncodedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := codecFabric()
	p := f.Register("producer")
	c := f.Register("consumer")
	payload := floatPayload(rng, 76, 4096)

	// Two versions so delta gets a base; version 2 must shrink.
	er1, err := p.RegisterMemEncoded(codec.Spec{ID: codec.Delta}, "viz/0", 1, payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	er2, err := p.RegisterMemEncoded(codec.Spec{ID: codec.Delta}, "viz/0", 2, payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	if er2.WireSize >= er2.RawSize {
		t.Fatalf("identical-payload delta pinned %d bytes for %d raw", er2.WireSize, er2.RawSize)
	}
	if er2.Handle.Size != er2.WireSize {
		t.Fatalf("handle size %d, wire size %d — modeled latency must scale with encoded bytes", er2.Handle.Size, er2.WireSize)
	}
	for _, er := range []EncodedRegion{er1, er2} {
		got, _, err := c.Get(er.Handle)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("framed Get did not reconstruct the raw payload")
		}
		bufpool.Put(got)
	}
	cs := f.CodecStats()
	if cs.RawBytes != int64(2*len(payload)) || cs.EncodedBytes != int64(er1.WireSize+er2.WireSize) {
		t.Fatalf("codec stats %+v inconsistent with registrations", cs)
	}
	if cs.Ratio() <= 1 {
		t.Fatalf("compression ratio %.2f, want > 1", cs.Ratio())
	}
	if cs.MaxError != 0 {
		t.Fatalf("delta is exact, recorded max error %g", cs.MaxError)
	}
}

// TestRegisterMemEncodedQuantize records the bounded error and keeps
// the handle pointing at the packed frame.
func TestRegisterMemEncodedQuantize(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := codecFabric()
	p := f.Register("producer")
	c := f.Register("consumer")
	payload := floatPayload(rng, 76, 2048)
	er, err := p.RegisterMemEncoded(codec.Spec{ID: codec.Quantize}, "viz/0", 1, payload, 76)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(er.RawSize) / float64(er.WireSize); ratio < 3 {
		t.Fatalf("quantize wire ratio %.2fx, want >= 3x", ratio)
	}
	if er.MaxError <= 0 {
		t.Fatal("quantize must report a nonzero bounded error on a varying field")
	}
	got, _, err := c.Get(er.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer bufpool.Put(got)
	for i := 0; i < 2048; i++ {
		a := math.Float64frombits(binary.LittleEndian.Uint64(payload[76+8*i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(got[76+8*i:]))
		if math.Abs(a-b) > er.MaxError {
			t.Fatalf("value %d off by %g, reported bound %g", i, math.Abs(a-b), er.MaxError)
		}
	}
	if cs := f.CodecStats(); cs.MaxError != er.MaxError {
		t.Fatalf("fabric max error %g, registration reported %g", cs.MaxError, er.MaxError)
	}
}

// TestRegisterMemEncodedIdentity: an identity spec pins raw unframed
// and behaves byte-for-byte like RegisterMem.
func TestRegisterMemEncodedIdentity(t *testing.T) {
	f := codecFabric()
	p := f.Register("producer")
	c := f.Register("consumer")
	payload := []byte("plain bytes, no frame")
	er, err := p.RegisterMemEncoded(codec.Spec{}, "k", 1, payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	if er.Codec != codec.Identity || er.WireSize != len(payload) {
		t.Fatalf("identity registration = %+v", er)
	}
	got, _, err := c.Get(er.Handle)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("identity round trip broken")
	}
	bufpool.Put(got)
}

// TestRegisterMemEncodedNoRegistry returns the typed sentinel.
func TestRegisterMemEncodedNoRegistry(t *testing.T) {
	f := NewFabric(netsim.New(netsim.Gemini()))
	p := f.Register("producer")
	_, err := p.RegisterMemEncoded(codec.Spec{ID: codec.Delta}, "k", 1, []byte{1, 2}, 0)
	if !errors.Is(err, ErrNoCodecs) {
		t.Fatalf("got %v, want ErrNoCodecs", err)
	}
}

// TestPutIntoFramedRegionRejected: frames are immutable; Put returns
// the typed non-retriable error.
func TestPutIntoFramedRegionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := codecFabric()
	p := f.Register("producer")
	w := f.Register("writer")
	payload := floatPayload(rng, 8, 256)
	er, err := p.RegisterMemEncoded(codec.Spec{ID: codec.Quantize}, "k", 1, payload, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Put(er.Handle, []byte{1}); !errors.Is(err, ErrFramedRegion) {
		t.Fatalf("put into framed region: %v, want ErrFramedRegion", err)
	}
	if Retriable(err) {
		t.Fatal("ErrFramedRegion must not be retriable")
	}
}

// TestCorruptedFramesCaughtBeforeDecode is the chaos-interaction
// property: with injected wire corruption on encoded frames, CRC32
// catches every corrupt transfer before the decoder runs, retries pull
// clean bytes, and the decoded payload is always exact.
func TestCorruptedFramesCaughtBeforeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	net := netsim.New(netsim.Gemini())
	net.SetFaults(faults.New(faults.Config{Seed: 7, Default: faults.Rates{Corrupt: 0.5}}))
	f := NewFabric(net)
	f.SetRetryPolicy(RetryPolicy{MaxAttempts: 64, BaseBackoff: 5e3, MaxBackoff: 5e4, Jitter: 0.25})
	f.SetCodecs(codec.NewRegistry())
	p := f.Register("producer")
	c := f.Register("consumer")

	payload := floatPayload(rng, 76, 2048)
	var handles []MemHandle
	for v := 1; v <= 8; v++ {
		er, err := p.RegisterMemEncoded(codec.Spec{ID: codec.Delta}, "chaos/0", v, payload, 0)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, er.Handle)
	}
	for i, h := range handles {
		got, _, err := c.Get(h)
		if err != nil {
			t.Fatalf("pull %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("pull %d delivered a corrupted decode", i)
		}
		bufpool.Put(got)
	}
	injected := f.Network().Faults().Counters().ByKind[faults.Corrupt]
	if injected == 0 {
		t.Fatal("schedule injected no corruption — test is vacuous")
	}
	if caught := f.Stats().ChecksumFailures; caught != injected {
		t.Fatalf("checksum caught %d of %d corrupted encoded frames", caught, injected)
	}
}
