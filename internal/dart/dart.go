// Package dart implements an asynchronous communication and data
// transport substrate modeled on DART (Docan et al., HPDC'08), the
// layer DataSpaces builds on. It provides the services the paper lists:
// node registration/unregistration, one-sided data transfer (RDMA Get
// and Put over registered memory regions), small-message passing, and
// event notification at both the source and destination of a completed
// transaction.
//
// Transfers move real bytes through a netsim.Network, which selects the
// SMSG/FMA/BTE mechanism by message size and accounts modeled cost, so
// the scheduling layers above observe the same asynchrony and cost
// shape as DART on Gemini.
//
// The transport is resilient: every registered region carries a CRC32
// checksum, every Get/Put verifies the payload after the wire copy,
// and transient fabric faults (drops, timeouts, corruption, partition
// windows — see internal/faults) are absorbed by capped exponential
// backoff with jitter under an optional caller deadline. Errors are
// typed so the layers above can distinguish a dead peer from a slow
// link.
package dart

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/bufpool"
	"insitu/internal/codec"
	"insitu/internal/netsim"
	"insitu/internal/obs"
)

// Typed transport errors. Transfer-layer faults from netsim
// (ErrDropped, ErrTimeout, ErrPartitioned) pass through wrapped and
// are matchable with errors.Is.
var (
	// ErrUnregistered is returned when the local or remote endpoint of
	// a transaction has been detached from the fabric.
	ErrUnregistered = errors.New("dart: endpoint unregistered")
	// ErrRegionNotFound is returned when a handle names a region that
	// is not (or no longer) pinned on its endpoint.
	ErrRegionNotFound = errors.New("dart: region not registered")
	// ErrForeignHandle is returned when a handle is released on an
	// endpoint that does not own it.
	ErrForeignHandle = errors.New("dart: foreign handle")
	// ErrChecksum is returned when a pulled or pushed payload fails
	// CRC32 verification — an in-flight corruption was caught.
	ErrChecksum = errors.New("dart: payload checksum mismatch")
	// ErrDeadline is returned when retries could not complete a
	// transaction before the caller's deadline.
	ErrDeadline = errors.New("dart: deadline exceeded")
	// ErrRegionOverflow is returned by Put when the payload exceeds
	// the destination region.
	ErrRegionOverflow = errors.New("dart: payload exceeds region size")
	// ErrFramedRegion is returned by Put against a codec-framed region:
	// frames are immutable once registered (a write would desynchronize
	// the frame from the codec state it references).
	ErrFramedRegion = errors.New("dart: region holds an encoded frame")
	// ErrNoCodecs is returned when a codec operation is needed but no
	// codec registry is attached to the fabric.
	ErrNoCodecs = errors.New("dart: no codec registry attached")
)

// Retriable reports whether an error is a transient transport fault
// worth retrying: wire drops, timeouts, partition windows (which may
// close), and checksum mismatches (a clean retransmit usually
// succeeds). Lifecycle errors — unregistered endpoints, missing
// regions, overflows — are permanent.
func Retriable(err error) bool {
	return errors.Is(err, netsim.ErrDropped) ||
		errors.Is(err, netsim.ErrTimeout) ||
		errors.Is(err, netsim.ErrPartitioned) ||
		errors.Is(err, ErrChecksum)
}

// RetryPolicy is the capped-exponential-backoff schedule applied to
// retriable Get/Put failures.
type RetryPolicy struct {
	// MaxAttempts bounds the attempts per operation (including the
	// first). Values < 1 mean a single attempt.
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further
	// retry doubles it up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry sleep.
	MaxBackoff time.Duration
	// Jitter is the fraction of the backoff randomized away
	// (0 <= Jitter <= 1), decorrelating concurrent retriers.
	Jitter float64
}

// DefaultRetryPolicy mirrors the shape of uGNI-level retransmit
// tuning: a handful of attempts with microsecond-scale backoff, so
// transient faults cost little and persistent ones surface quickly.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
		Jitter:      0.25,
	}
}

// backoff returns the sleep before retry `attempt` (1-based).
func (p RetryPolicy) backoff(attempt int, rng func() float64) time.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	d := p.BaseBackoff << uint(attempt-1)
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		f := 1 - p.Jitter*rng()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// MemHandle names a registered memory region on some endpoint. Handles
// are the descriptors DataSpaces stores in its task queue: holding a
// handle is sufficient for any endpoint to pull the data.
type MemHandle struct {
	Endpoint int // owning endpoint id
	Region   int // region id within the endpoint
	Size     int // region size in bytes
}

// EventType classifies completion events.
type EventType int

const (
	// EventGetDone fires at both ends when a Get transaction completes.
	EventGetDone EventType = iota
	// EventPutDone fires at both ends when a Put transaction completes.
	EventPutDone
	// EventUnregistered fires at the owner when a region is released.
	EventUnregistered
)

// Event is a transaction completion notification.
type Event struct {
	Type     EventType
	Handle   MemHandle
	Peer     int // the other endpoint of the transaction
	Bytes    int
	Duration time.Duration // modeled transfer duration
	Path     netsim.Path
}

// Stats counts the fabric's resilience activity.
type Stats struct {
	// Retries is the number of retried Get/Put attempts.
	Retries int64
	// ChecksumFailures is the number of corrupted payloads caught by
	// CRC32 verification.
	ChecksumFailures int64
	// DeadlineExceeded counts operations abandoned at their deadline.
	DeadlineExceeded int64
}

// Fabric is the shared transport instance: a set of endpoints attached
// to one simulated network.
type Fabric struct {
	net *netsim.Network

	mu     sync.Mutex
	next   int
	eps    map[int]*Endpoint
	policy RetryPolicy

	jmu sync.Mutex
	jit *rand.Rand

	retries   atomic.Int64
	crcFails  atomic.Int64
	deadlines atomic.Int64

	codecs     atomic.Pointer[codec.Registry]
	rawBytes   atomic.Int64
	encBytes   atomic.Int64
	maxErrBits atomic.Uint64

	obs atomic.Pointer[fabricObs]
}

// fabricObs holds the fabric's observability wiring: the plane plus
// pre-resolved instrument handles, so the per-operation hot path does
// one atomic load and no registry lookups.
type fabricObs struct {
	plane   *obs.Plane
	getOK   *obs.Counter
	getErr  *obs.Counter
	putOK   *obs.Counter
	putErr  *obs.Counter
	getByte *obs.Counter
	putByte *obs.Counter
	modeled *obs.Histogram
	encSec  [codec.NumIDs]*obs.Histogram
	decSec  [codec.NumIDs]*obs.Histogram
}

// SetPlane attaches the observability plane: every Get/Put records a
// span in the transport category (attrs: region, bytes, attempts,
// modeled duration, error), every retry records an event, and the
// fabric's counters are published as live metric series. Call before
// traffic starts; a nil plane is ignored.
func (f *Fabric) SetPlane(pl *obs.Plane) {
	if pl == nil {
		return
	}
	reg := pl.Registry()
	fo := &fabricObs{
		plane:   pl,
		getOK:   reg.Counter("dart_gets_total", "completed one-sided reads by result", obs.Str("result", "ok")),
		getErr:  reg.Counter("dart_gets_total", "completed one-sided reads by result", obs.Str("result", "error")),
		putOK:   reg.Counter("dart_puts_total", "completed one-sided writes by result", obs.Str("result", "ok")),
		putErr:  reg.Counter("dart_puts_total", "completed one-sided writes by result", obs.Str("result", "error")),
		getByte: reg.Counter("dart_transfer_bytes_total", "payload bytes moved by one-sided transfers", obs.Str("op", "get")),
		putByte: reg.Counter("dart_transfer_bytes_total", "payload bytes moved by one-sided transfers", obs.Str("op", "put")),
		modeled: reg.Histogram("dart_transfer_modeled_seconds",
			"modeled transfer duration of successful Get/Put operations", obs.LatencyBuckets),
	}
	reg.CounterFunc("dart_retries_total", "retried Get/Put attempts",
		func() float64 { return float64(f.retries.Load()) })
	reg.CounterFunc("dart_checksum_failures_total", "corrupted payloads caught by CRC32 verification",
		func() float64 { return float64(f.crcFails.Load()) })
	reg.CounterFunc("dart_deadline_exceeded_total", "operations abandoned at their caller deadline",
		func() float64 { return float64(f.deadlines.Load()) })
	for i := 0; i < codec.NumIDs; i++ {
		id := codec.ID(i)
		fo.encSec[i] = reg.Histogram("dart_codec_encode_seconds",
			"transfer-path codec encode latency by codec", obs.LatencyBuckets, obs.Str("codec", id.String()))
		fo.decSec[i] = reg.Histogram("dart_codec_decode_seconds",
			"transfer-path codec decode latency by codec", obs.LatencyBuckets, obs.Str("codec", id.String()))
	}
	reg.CounterFunc("dart_codec_raw_bytes_total", "pre-encode payload bytes offered to the transfer-path codecs",
		func() float64 { return float64(f.rawBytes.Load()) })
	reg.CounterFunc("dart_codec_encoded_bytes_total", "bytes pinned for the wire after codec encode",
		func() float64 { return float64(f.encBytes.Load()) })
	reg.GaugeFunc("dart_codec_compression_ratio", "raw/encoded byte ratio across codec registrations",
		func() float64 {
			enc := f.encBytes.Load()
			if enc == 0 {
				return 1
			}
			return float64(f.rawBytes.Load()) / float64(enc)
		})
	reg.GaugeFunc("dart_codec_max_reconstruction_error", "worst bounded reconstruction error introduced by a lossy encode",
		func() float64 { return math.Float64frombits(f.maxErrBits.Load()) })
	f.obs.Store(fo)
	// Endpoints registered before the plane attached get their
	// owner-attributed series now; later registrations add their own.
	f.mu.Lock()
	eps := make([]*Endpoint, 0, len(f.eps))
	for _, ep := range f.eps {
		eps = append(eps, ep)
	}
	f.mu.Unlock()
	for _, ep := range eps {
		registerEndpointMetrics(reg, ep)
	}
}

// observeOp records one finished Get/Put: a span on the calling
// endpoint's lane plus the operation counters.
func (f *Fabric) observeOp(op string, ep *Endpoint, h MemHandle, start time.Time, modeled time.Duration, attempts, bytes int, err error) {
	fo := f.obs.Load()
	if fo == nil {
		return
	}
	fo.plane.Recorder().Record(0, obs.CatDart, ep.name, "dart."+op, start, time.Now(),
		obs.Str("region", fmt.Sprintf("%d/%d", h.Endpoint, h.Region)),
		obs.Int("bytes", bytes),
		obs.Int("attempts", attempts),
		obs.Dur("modeled", modeled),
		obs.Error(err))
	var okC, errC, byteC *obs.Counter
	if op == "get" {
		okC, errC, byteC = fo.getOK, fo.getErr, fo.getByte
	} else {
		okC, errC, byteC = fo.putOK, fo.putErr, fo.putByte
	}
	if err != nil {
		errC.Inc()
		return
	}
	okC.Inc()
	byteC.Add(int64(bytes))
	fo.modeled.Observe(modeled.Seconds())
}

// observeRetry records one retry as an instantaneous event on the
// calling endpoint's lane.
func (f *Fabric) observeRetry(op string, ep *Endpoint, attempt int, cause error) {
	fo := f.obs.Load()
	if fo == nil {
		return
	}
	fo.plane.Recorder().Event(0, obs.CatDart, ep.name, "dart.retry", time.Now(),
		obs.Str("op", op), obs.Int("attempt", attempt), obs.Error(cause))
}

// NewFabric creates a transport fabric over the given network with the
// default retry policy.
func NewFabric(net *netsim.Network) *Fabric {
	return &Fabric{
		net:    net,
		eps:    make(map[int]*Endpoint),
		policy: DefaultRetryPolicy(),
		jit:    rand.New(rand.NewSource(1)),
	}
}

// Network returns the underlying simulated network.
func (f *Fabric) Network() *netsim.Network { return f.net }

// SetRetryPolicy replaces the fabric-wide retry policy. Call before
// traffic starts.
func (f *Fabric) SetRetryPolicy(p RetryPolicy) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.policy = p
}

// RetryPolicy returns the fabric-wide retry policy.
func (f *Fabric) RetryPolicy() RetryPolicy {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.policy
}

// Stats returns a snapshot of the fabric's resilience counters.
func (f *Fabric) Stats() Stats {
	return Stats{
		Retries:          f.retries.Load(),
		ChecksumFailures: f.crcFails.Load(),
		DeadlineExceeded: f.deadlines.Load(),
	}
}

// SetCodecs attaches the codec registry used by RegisterMemEncoded and
// by Get when it pulls a framed region. Producers and consumers of the
// same fabric share one registry (it holds the delta base store). Call
// before traffic starts; a nil registry detaches codecs.
func (f *Fabric) SetCodecs(r *codec.Registry) { f.codecs.Store(r) }

// Codecs returns the attached codec registry, or nil.
func (f *Fabric) Codecs() *codec.Registry { return f.codecs.Load() }

// CodecStats is a snapshot of the fabric's transfer-path codec
// economy.
type CodecStats struct {
	// RawBytes is the total pre-encode payload size offered to
	// RegisterMemEncoded.
	RawBytes int64
	// EncodedBytes is the total size actually pinned for the wire.
	EncodedBytes int64
	// MaxError is the worst bounded reconstruction error any lossy
	// encode introduced (0 when only exact codecs ran).
	MaxError float64
}

// Ratio returns the raw/encoded compression ratio (1 when nothing has
// been encoded).
func (cs CodecStats) Ratio() float64 {
	if cs.EncodedBytes == 0 {
		return 1
	}
	return float64(cs.RawBytes) / float64(cs.EncodedBytes)
}

// CodecStats returns a snapshot of the codec byte economy.
func (f *Fabric) CodecStats() CodecStats {
	return CodecStats{
		RawBytes:     f.rawBytes.Load(),
		EncodedBytes: f.encBytes.Load(),
		MaxError:     math.Float64frombits(f.maxErrBits.Load()),
	}
}

// noteMaxError folds one encode's reconstruction error into the
// fabric-wide maximum.
func (f *Fabric) noteMaxError(e float64) {
	if e <= 0 {
		return
	}
	for {
		old := f.maxErrBits.Load()
		if e <= math.Float64frombits(old) {
			return
		}
		if f.maxErrBits.CompareAndSwap(old, math.Float64bits(e)) {
			return
		}
	}
}

// jitter returns a uniform draw in [0,1) for backoff decorrelation.
func (f *Fabric) jitter() float64 {
	f.jmu.Lock()
	defer f.jmu.Unlock()
	return f.jit.Float64()
}

// region is one pinned memory area plus its integrity checksum. framed
// regions hold a codec frame that Get decodes transparently after CRC
// verification; the checksum always covers the pinned (encoded) bytes.
type region struct {
	data   []byte
	crc    uint32
	framed bool
}

// Endpoint is one attached node: a simulation rank, a DataSpaces
// server, or a staging bucket.
type Endpoint struct {
	f      *Fabric
	id     int
	name   string
	tenant string

	mu      sync.Mutex
	nextReg int
	regions map[int]*region
	closed  bool

	// Per-endpoint resilience counters, charged to the *region owner*
	// of each transaction: a retry against tenant X's data counts
	// against X's series no matter which bucket issued the pull, so
	// per-tenant dashboards do not alias into one global line.
	retries   atomic.Int64
	crcFails  atomic.Int64
	deadlines atomic.Int64
	bytes     atomic.Int64

	events chan Event
	msgs   chan Message
}

// Tenant returns the tenant label the endpoint was registered under
// (empty for single-tenant fabrics).
func (ep *Endpoint) Tenant() string { return ep.tenant }

// Stats returns the endpoint's owner-attributed resilience counters:
// retries, checksum failures, and deadline abandons charged against
// regions this endpoint owns.
func (ep *Endpoint) Stats() Stats {
	return Stats{
		Retries:          ep.retries.Load(),
		ChecksumFailures: ep.crcFails.Load(),
		DeadlineExceeded: ep.deadlines.Load(),
	}
}

// TransferBytes returns the payload bytes successfully moved out of or
// into regions this endpoint owns.
func (ep *Endpoint) TransferBytes() int64 { return ep.bytes.Load() }

// Message is a small control message delivered over the SMSG path.
type Message struct {
	From    int
	Kind    string
	Payload []byte
}

// Register attaches a new endpoint to the fabric. The returned
// endpoint buffers up to 1024 pending events and messages.
func (f *Fabric) Register(name string) *Endpoint {
	return f.RegisterT(name, "")
}

// RegisterT is Register with a tenant label: the endpoint's
// owner-attributed counters are exported under that tenant so each
// tenant's transport activity is its own metric series.
func (f *Fabric) RegisterT(name, tenant string) *Endpoint {
	f.mu.Lock()
	ep := &Endpoint{
		f:       f,
		id:      f.next,
		name:    name,
		tenant:  tenant,
		regions: make(map[int]*region),
		events:  make(chan Event, 1024),
		msgs:    make(chan Message, 1024),
	}
	f.next++
	f.eps[ep.id] = ep
	f.mu.Unlock()
	if fo := f.obs.Load(); fo != nil {
		registerEndpointMetrics(fo.plane.Registry(), ep)
	}
	return ep
}

// registerEndpointMetrics publishes one endpoint's owner-attributed
// counters as endpoint+tenant labeled series (scrape-time funcs over
// the endpoint's atomics). The registry is idempotent by name+labels,
// so re-registration after a plane swap is harmless.
func registerEndpointMetrics(reg *obs.Registry, ep *Endpoint) {
	tenant := ep.tenant
	if tenant == "" {
		tenant = "default"
	}
	labels := []obs.Attr{obs.Str("endpoint", ep.name), obs.Str("tenant", tenant)}
	reg.CounterFunc("dart_endpoint_retries_total",
		"retried Get/Put attempts charged to the region-owning endpoint",
		func() float64 { return float64(ep.retries.Load()) }, labels...)
	reg.CounterFunc("dart_endpoint_checksum_failures_total",
		"corrupted payloads caught by CRC32, charged to the region-owning endpoint",
		func() float64 { return float64(ep.crcFails.Load()) }, labels...)
	reg.CounterFunc("dart_endpoint_deadline_exceeded_total",
		"operations abandoned at their deadline, charged to the region-owning endpoint",
		func() float64 { return float64(ep.deadlines.Load()) }, labels...)
	reg.CounterFunc("dart_endpoint_transfer_bytes_total",
		"payload bytes moved out of or into regions the endpoint owns",
		func() float64 { return float64(ep.bytes.Load()) }, labels...)
}

// ownerOf resolves the endpoint owning a handle's region, or nil if it
// has unregistered — used by the retry loops to charge failures to the
// region owner.
func (f *Fabric) ownerOf(id int) *Endpoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eps[id]
}

// Unregister detaches the endpoint and releases its regions. In-flight
// transactions against the endpoint fail with ErrUnregistered (or
// ErrRegionNotFound when they lose the race to a final pull) instead
// of panicking or hanging.
func (f *Fabric) Unregister(ep *Endpoint) {
	f.mu.Lock()
	delete(f.eps, ep.id)
	f.mu.Unlock()
	ep.mu.Lock()
	ep.closed = true
	ep.regions = nil
	ep.mu.Unlock()
}

func (f *Fabric) lookup(id int) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ep, ok := f.eps[id]
	if !ok {
		return nil, fmt.Errorf("dart: endpoint %d: %w", id, ErrUnregistered)
	}
	return ep, nil
}

// ID returns the endpoint's fabric-unique id.
func (ep *Endpoint) ID() int { return ep.id }

// Name returns the human-readable endpoint name.
func (ep *Endpoint) Name() string { return ep.name }

// Events returns the endpoint's completion-event stream.
func (ep *Endpoint) Events() <-chan Event { return ep.events }

// Messages returns the endpoint's incoming small-message stream.
func (ep *Endpoint) Messages() <-chan Message { return ep.msgs }

// RegisterMem pins data for remote one-sided access and returns its
// handle. No private copy is taken: the caller must keep the buffer
// stable until Release, exactly as with RDMA-pinned memory. The
// region's CRC32 is computed here, so mutating the buffer while pinned
// makes subsequent pulls fail checksum verification — by design.
func (ep *Endpoint) RegisterMem(data []byte) MemHandle {
	return ep.registerMem(data, false)
}

func (ep *Endpoint) registerMem(data []byte, framed bool) MemHandle {
	sum := crc32.ChecksumIEEE(data)
	ep.mu.Lock()
	defer ep.mu.Unlock()
	id := ep.nextReg
	ep.nextReg++
	ep.regions[id] = &region{data: data, crc: sum, framed: framed}
	return MemHandle{Endpoint: ep.id, Region: id, Size: len(data)}
}

// EncodedRegion describes one codec-framed registration.
type EncodedRegion struct {
	Handle MemHandle
	// Codec is the codec that actually ran. Identity means the raw
	// payload was pinned unframed (the spec asked for identity, or the
	// codec chose to ship raw).
	Codec codec.ID
	// RawSize and WireSize are the payload's decoded and pinned sizes;
	// modeled transfer latency scales with WireSize.
	RawSize, WireSize int
	// MaxError bounds the reconstruction error this encoding introduced
	// (0 for exact codecs and literal fallbacks).
	MaxError float64
}

// RegisterMemEncoded encodes raw under spec (via the fabric's codec
// registry) and pins the result for remote pull; the consumer-side Get
// decodes transparently. key/version name the producer stream for the
// delta base store; floatOff locates the payload's float64 tail for
// the lossy codecs (pass 0 when the payload has no known tail and use
// an exact codec).
//
// Ownership: when the returned Codec is Identity, raw itself is pinned
// and must stay stable until Release, exactly as with RegisterMem.
// Otherwise the pinned bytes are a pooled frame owned by the fabric
// (reclaimed on Release/Reclaim) and raw may be reused or recycled by
// the caller immediately.
func (ep *Endpoint) RegisterMemEncoded(spec codec.Spec, key string, version int, raw []byte, floatOff int) (EncodedRegion, error) {
	cs := ep.f.codecs.Load()
	if cs == nil {
		return EncodedRegion{}, fmt.Errorf("dart: register encoded on endpoint %d: %w", ep.id, ErrNoCodecs)
	}
	start := time.Now()
	res, err := cs.Encode(spec, key, version, raw, floatOff)
	if err != nil {
		return EncodedRegion{}, fmt.Errorf("dart: encode %s for %s@%d: %w", spec.ID, key, version, err)
	}
	if res.Frame == nil {
		h := ep.registerMem(raw, false)
		ep.f.rawBytes.Add(int64(len(raw)))
		ep.f.encBytes.Add(int64(len(raw)))
		if fo := ep.f.obs.Load(); fo != nil {
			fo.encSec[codec.Identity].Observe(time.Since(start).Seconds())
		}
		return EncodedRegion{Handle: h, Codec: codec.Identity, RawSize: len(raw), WireSize: len(raw)}, nil
	}
	h := ep.registerMem(res.Frame, true)
	ep.f.rawBytes.Add(int64(len(raw)))
	ep.f.encBytes.Add(int64(len(res.Frame)))
	ep.f.noteMaxError(res.MaxError)
	if fo := ep.f.obs.Load(); fo != nil {
		fo.encSec[spec.ID].Observe(time.Since(start).Seconds())
	}
	return EncodedRegion{Handle: h, Codec: spec.ID, RawSize: len(raw), WireSize: len(res.Frame), MaxError: res.MaxError}, nil
}

// Regions returns the number of currently pinned regions, used by
// leak checks: a well-behaved pipeline releases every intermediate
// after its consumer has pulled it.
func (ep *Endpoint) Regions() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.regions)
}

// Release unpins a region previously registered on this endpoint.
func (ep *Endpoint) Release(h MemHandle) error {
	_, err := ep.Reclaim(h)
	return err
}

// Reclaim unpins a region and returns its backing buffer, so the
// owner can recycle it (typically into bufpool) once the consumer has
// pulled the data. After Reclaim the buffer is no longer reachable
// through the fabric; the caller owns it exclusively.
func (ep *Endpoint) Reclaim(h MemHandle) ([]byte, error) {
	if h.Endpoint != ep.id {
		return nil, fmt.Errorf("dart: release of %+v on endpoint %d: %w", h, ep.id, ErrForeignHandle)
	}
	ep.mu.Lock()
	r, ok := ep.regions[h.Region]
	delete(ep.regions, h.Region)
	ep.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dart: region %d on endpoint %d: %w", h.Region, ep.id, ErrRegionNotFound)
	}
	ep.post(Event{Type: EventUnregistered, Handle: h, Peer: ep.id})
	return r.data, nil
}

// region returns the pinned data, checksum, and framing flag for a
// region id.
func (ep *Endpoint) region(id int) ([]byte, uint32, bool, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return nil, 0, false, fmt.Errorf("dart: endpoint %d: %w", ep.id, ErrUnregistered)
	}
	r, ok := ep.regions[id]
	if !ok {
		return nil, 0, false, fmt.Errorf("dart: region %d on endpoint %d: %w", id, ep.id, ErrRegionNotFound)
	}
	return r.data, r.crc, r.framed, nil
}

// post delivers an event without ever blocking the transport: if the
// consumer is too slow the oldest event is dropped, mirroring
// fixed-depth hardware completion queues.
func (ep *Endpoint) post(ev Event) {
	select {
	case ep.events <- ev:
	default:
		select {
		case <-ep.events:
		default:
		}
		select {
		case ep.events <- ev:
		default:
		}
	}
}

// Get performs a blocking one-sided read of the remote region named by
// h into a pool-recycled buffer, posting completion events at both
// endpoints. It returns the data and the total modeled transfer
// duration across attempts. Transient fabric faults are retried under
// the fabric's retry policy; the pulled payload is CRC32-verified
// against the region's registration checksum, so a corrupted transfer
// is never returned to the caller.
//
// The returned buffer comes from bufpool: once the consumer is done
// with it (and has not retained it), handing it to bufpool.Put makes
// the steady-state transfer path allocation-free. On error no buffer
// is returned and every internally staged buffer has been recycled
// exactly once — callers must not (and cannot) recycle anything.
func (ep *Endpoint) Get(h MemHandle) ([]byte, time.Duration, error) {
	return ep.GetDeadline(h, time.Time{})
}

// GetDeadline is Get under a caller deadline: retries stop, with
// ErrDeadline, once the deadline has passed or would be overshot by
// the next backoff. A zero deadline means no deadline.
func (ep *Endpoint) GetDeadline(h MemHandle, deadline time.Time) ([]byte, time.Duration, error) {
	start := time.Now()
	data, total, attempts, err := ep.getDeadline(h, deadline)
	ep.f.observeOp("get", ep, h, start, total, attempts, len(data), err)
	return data, total, err
}

// getDeadline is the retry loop behind GetDeadline; it additionally
// reports how many attempts ran, for the observability span.
func (ep *Endpoint) getDeadline(h MemHandle, deadline time.Time) ([]byte, time.Duration, int, error) {
	pol := ep.f.RetryPolicy()
	var total time.Duration
	var lastErr error
	for attempt := 1; ; attempt++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			ep.f.chargeDeadline(h)
			return nil, total, attempt, deadlineErr("get", h, lastErr)
		}
		data, d, err := ep.getOnce(h)
		total += d
		if err == nil {
			return data, total, attempt, nil
		}
		lastErr = err
		if !Retriable(err) {
			return nil, total, attempt, err
		}
		if attempt >= max(pol.MaxAttempts, 1) {
			return nil, total, attempt, fmt.Errorf("dart: get %+v failed after %d attempts: %w", h, attempt, err)
		}
		ep.f.chargeRetry(h)
		ep.f.observeRetry("get", ep, attempt, err)
		back := pol.backoff(attempt, ep.f.jitter)
		if !deadline.IsZero() && time.Now().Add(back).After(deadline) {
			ep.f.chargeDeadline(h)
			return nil, total, attempt, deadlineErr("get", h, lastErr)
		}
		time.Sleep(back)
	}
}

// chargeRetry and chargeDeadline tally a transfer failure both
// fabric-wide (Fabric.Stats, unchanged) and against the endpoint that
// owns the region in flight, so per-endpoint/tenant series attribute
// the noise to the tenant whose data was being moved rather than to
// whichever bucket happened to issue the RPC.
func (f *Fabric) chargeRetry(h MemHandle) {
	f.retries.Add(1)
	if o := f.ownerOf(h.Endpoint); o != nil {
		o.retries.Add(1)
	}
}

func (f *Fabric) chargeDeadline(h MemHandle) {
	f.deadlines.Add(1)
	if o := f.ownerOf(h.Endpoint); o != nil {
		o.deadlines.Add(1)
	}
}

func deadlineErr(op string, h MemHandle, last error) error {
	if last != nil {
		return fmt.Errorf("dart: %s %+v: %w (last attempt: %v)", op, h, ErrDeadline, last)
	}
	return fmt.Errorf("dart: %s %+v: %w", op, h, ErrDeadline)
}

// getOnce is a single pull attempt. Ownership: the destination buffer
// is drawn from bufpool and either returned to the caller (success) or
// recycled here (failure) — never both, and the owner's pinned source
// region is never recycled.
func (ep *Endpoint) getOnce(h MemHandle) ([]byte, time.Duration, error) {
	owner, err := ep.f.lookup(h.Endpoint)
	if err != nil {
		return nil, 0, err
	}
	src, sum, framed, err := owner.region(h.Region)
	if err != nil {
		return nil, 0, err
	}
	data := bufpool.Get(len(src))
	d, terr := ep.f.net.TransferBetween(data, src, h.Endpoint, ep.id)
	if terr != nil {
		bufpool.Put(data)
		return nil, d, fmt.Errorf("dart: get %+v: %w", h, terr)
	}
	if crc32.ChecksumIEEE(data) != sum {
		bufpool.Put(data)
		ep.f.crcFails.Add(1)
		owner.crcFails.Add(1)
		return nil, d, fmt.Errorf("dart: get %+v: %w", h, ErrChecksum)
	}
	if framed {
		// The CRC above covered the encoded bytes, so the decoder only
		// ever sees verified frames; corruption cannot masquerade as a
		// decode problem. The wire buffer is recycled either way.
		cs := ep.f.codecs.Load()
		if cs == nil {
			bufpool.Put(data)
			return nil, d, fmt.Errorf("dart: get %+v: %w", h, ErrNoCodecs)
		}
		t0 := time.Now()
		raw, id, derr := cs.Decode(data)
		bufpool.Put(data)
		if derr != nil {
			return nil, d, fmt.Errorf("dart: get %+v: %w", h, derr)
		}
		if fo := ep.f.obs.Load(); fo != nil {
			fo.decSec[id].Observe(time.Since(t0).Seconds())
		}
		data = raw
	}
	owner.bytes.Add(int64(len(src)))
	ev := Event{Type: EventGetDone, Handle: h, Bytes: len(src), Duration: d, Path: ep.f.net.Select(len(src))}
	evSrc := ev
	evSrc.Peer = ep.id
	owner.post(evSrc)
	evDst := ev
	evDst.Peer = owner.id
	ep.post(evDst)
	return data, d, nil
}

// GetResult is the outcome of an asynchronous Get.
type GetResult struct {
	Data     []byte
	Duration time.Duration
	Err      error
}

// GetAsync launches a one-sided read and returns a channel that yields
// the result when the transaction completes. This is the primitive the
// staging buckets use to pull in-transit data while the simulation
// proceeds.
func (ep *Endpoint) GetAsync(h MemHandle) <-chan GetResult {
	return ep.GetAsyncDeadline(h, time.Time{})
}

// GetAsyncDeadline is GetAsync under a caller deadline.
func (ep *Endpoint) GetAsyncDeadline(h MemHandle, deadline time.Time) <-chan GetResult {
	ch := make(chan GetResult, 1)
	go func() {
		data, d, err := ep.GetDeadline(h, deadline)
		ch <- GetResult{Data: data, Duration: d, Err: err}
	}()
	return ch
}

// Put performs a blocking one-sided write into the remote region named
// by h. len(data) must not exceed the region size. Like Get, transient
// faults are retried and the payload is CRC32-verified after the wire
// copy, before it is committed into the destination region.
func (ep *Endpoint) Put(h MemHandle, data []byte) (time.Duration, error) {
	return ep.PutDeadline(h, data, time.Time{})
}

// PutDeadline is Put under a caller deadline.
func (ep *Endpoint) PutDeadline(h MemHandle, data []byte, deadline time.Time) (time.Duration, error) {
	start := time.Now()
	total, attempts, err := ep.putDeadline(h, data, deadline)
	ep.f.observeOp("put", ep, h, start, total, attempts, len(data), err)
	return total, err
}

// putDeadline is the retry loop behind PutDeadline; it additionally
// reports how many attempts ran, for the observability span.
func (ep *Endpoint) putDeadline(h MemHandle, data []byte, deadline time.Time) (time.Duration, int, error) {
	pol := ep.f.RetryPolicy()
	var total time.Duration
	var lastErr error
	for attempt := 1; ; attempt++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			ep.f.chargeDeadline(h)
			return total, attempt, deadlineErr("put", h, lastErr)
		}
		d, err := ep.putOnce(h, data)
		total += d
		if err == nil {
			return total, attempt, nil
		}
		lastErr = err
		if !Retriable(err) {
			return total, attempt, err
		}
		if attempt >= max(pol.MaxAttempts, 1) {
			return total, attempt, fmt.Errorf("dart: put %+v failed after %d attempts: %w", h, attempt, err)
		}
		ep.f.chargeRetry(h)
		ep.f.observeRetry("put", ep, attempt, err)
		back := pol.backoff(attempt, ep.f.jitter)
		if !deadline.IsZero() && time.Now().Add(back).After(deadline) {
			ep.f.chargeDeadline(h)
			return total, attempt, deadlineErr("put", h, lastErr)
		}
		time.Sleep(back)
	}
}

// putOnce is a single push attempt. The pooled scratch buffer is
// recycled here on every path; the caller's payload is never adopted
// into the pool.
func (ep *Endpoint) putOnce(h MemHandle, data []byte) (time.Duration, error) {
	owner, err := ep.f.lookup(h.Endpoint)
	if err != nil {
		return 0, err
	}
	dst, _, framed, err := owner.region(h.Region)
	if err != nil {
		return 0, err
	}
	if framed {
		return 0, fmt.Errorf("dart: put into region %d on endpoint %d: %w", h.Region, h.Endpoint, ErrFramedRegion)
	}
	if len(data) > len(dst) {
		return 0, fmt.Errorf("dart: put of %d bytes into region of %d bytes: %w", len(data), len(dst), ErrRegionOverflow)
	}
	sum := crc32.ChecksumIEEE(data)
	// Stage through pooled scratch so the wire copy (and any modeled
	// sleep inside the transfer) happens outside the owner's lock, then
	// recycle the scratch: the put path allocates nothing.
	scratch := bufpool.Get(len(data))
	d, terr := ep.f.net.TransferBetween(scratch, data, ep.id, h.Endpoint)
	if terr != nil {
		bufpool.Put(scratch)
		return d, fmt.Errorf("dart: put %+v: %w", h, terr)
	}
	if crc32.ChecksumIEEE(scratch) != sum {
		bufpool.Put(scratch)
		ep.f.crcFails.Add(1)
		owner.crcFails.Add(1)
		return d, fmt.Errorf("dart: put %+v: %w", h, ErrChecksum)
	}
	owner.mu.Lock()
	if owner.closed {
		owner.mu.Unlock()
		bufpool.Put(scratch)
		return d, fmt.Errorf("dart: endpoint %d: %w", owner.id, ErrUnregistered)
	}
	r, ok := owner.regions[h.Region]
	if !ok {
		owner.mu.Unlock()
		bufpool.Put(scratch)
		return d, fmt.Errorf("dart: region %d on endpoint %d: %w", h.Region, owner.id, ErrRegionNotFound)
	}
	copy(r.data, scratch)
	r.crc = crc32.ChecksumIEEE(r.data)
	owner.mu.Unlock()
	bufpool.Put(scratch)
	owner.bytes.Add(int64(len(data)))
	path := ep.f.net.Select(len(data))
	ev := Event{Type: EventPutDone, Handle: h, Bytes: len(data), Duration: d, Path: path}
	evSrc := ev
	evSrc.Peer = owner.id
	ep.post(evSrc)
	evDst := ev
	evDst.Peer = ep.id
	owner.post(evDst)
	return d, nil
}

// SendMsg delivers a small control message to the endpoint with id
// `to` over the SMSG path. It blocks if the receiver's message queue
// is full, providing natural backpressure for RPC traffic.
func (ep *Endpoint) SendMsg(to int, kind string, payload []byte) error {
	peer, err := ep.f.lookup(to)
	if err != nil {
		return err
	}
	moved, _ := ep.f.net.Transfer(payload)
	peer.msgs <- Message{From: ep.id, Kind: kind, Payload: moved}
	return nil
}
