// Package dart implements an asynchronous communication and data
// transport substrate modeled on DART (Docan et al., HPDC'08), the
// layer DataSpaces builds on. It provides the services the paper lists:
// node registration/unregistration, one-sided data transfer (RDMA Get
// and Put over registered memory regions), small-message passing, and
// event notification at both the source and destination of a completed
// transaction.
//
// Transfers move real bytes through a netsim.Network, which selects the
// SMSG/FMA/BTE mechanism by message size and accounts modeled cost, so
// the scheduling layers above observe the same asynchrony and cost
// shape as DART on Gemini.
package dart

import (
	"fmt"
	"sync"
	"time"

	"insitu/internal/bufpool"
	"insitu/internal/netsim"
)

// MemHandle names a registered memory region on some endpoint. Handles
// are the descriptors DataSpaces stores in its task queue: holding a
// handle is sufficient for any endpoint to pull the data.
type MemHandle struct {
	Endpoint int // owning endpoint id
	Region   int // region id within the endpoint
	Size     int // region size in bytes
}

// EventType classifies completion events.
type EventType int

const (
	// EventGetDone fires at both ends when a Get transaction completes.
	EventGetDone EventType = iota
	// EventPutDone fires at both ends when a Put transaction completes.
	EventPutDone
	// EventUnregistered fires at the owner when a region is released.
	EventUnregistered
)

// Event is a transaction completion notification.
type Event struct {
	Type     EventType
	Handle   MemHandle
	Peer     int // the other endpoint of the transaction
	Bytes    int
	Duration time.Duration // modeled transfer duration
	Path     netsim.Path
}

// Fabric is the shared transport instance: a set of endpoints attached
// to one simulated network.
type Fabric struct {
	net *netsim.Network

	mu   sync.Mutex
	next int
	eps  map[int]*Endpoint
}

// NewFabric creates a transport fabric over the given network.
func NewFabric(net *netsim.Network) *Fabric {
	return &Fabric{net: net, eps: make(map[int]*Endpoint)}
}

// Network returns the underlying simulated network.
func (f *Fabric) Network() *netsim.Network { return f.net }

// Endpoint is one attached node: a simulation rank, a DataSpaces
// server, or a staging bucket.
type Endpoint struct {
	f    *Fabric
	id   int
	name string

	mu      sync.Mutex
	nextReg int
	regions map[int][]byte
	closed  bool

	events chan Event
	msgs   chan Message
}

// Message is a small control message delivered over the SMSG path.
type Message struct {
	From    int
	Kind    string
	Payload []byte
}

// Register attaches a new endpoint to the fabric. The returned
// endpoint buffers up to 1024 pending events and messages.
func (f *Fabric) Register(name string) *Endpoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	ep := &Endpoint{
		f:       f,
		id:      f.next,
		name:    name,
		regions: make(map[int][]byte),
		events:  make(chan Event, 1024),
		msgs:    make(chan Message, 1024),
	}
	f.next++
	f.eps[ep.id] = ep
	return ep
}

// Unregister detaches the endpoint and releases its regions.
func (f *Fabric) Unregister(ep *Endpoint) {
	f.mu.Lock()
	delete(f.eps, ep.id)
	f.mu.Unlock()
	ep.mu.Lock()
	ep.closed = true
	ep.regions = nil
	ep.mu.Unlock()
}

func (f *Fabric) lookup(id int) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ep, ok := f.eps[id]
	if !ok {
		return nil, fmt.Errorf("dart: endpoint %d not registered", id)
	}
	return ep, nil
}

// ID returns the endpoint's fabric-unique id.
func (ep *Endpoint) ID() int { return ep.id }

// Name returns the human-readable endpoint name.
func (ep *Endpoint) Name() string { return ep.name }

// Events returns the endpoint's completion-event stream.
func (ep *Endpoint) Events() <-chan Event { return ep.events }

// Messages returns the endpoint's incoming small-message stream.
func (ep *Endpoint) Messages() <-chan Message { return ep.msgs }

// RegisterMem pins data for remote one-sided access and returns its
// handle. No private copy is taken: the caller must keep the buffer
// stable until Release, exactly as with RDMA-pinned memory.
func (ep *Endpoint) RegisterMem(data []byte) MemHandle {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	id := ep.nextReg
	ep.nextReg++
	ep.regions[id] = data
	return MemHandle{Endpoint: ep.id, Region: id, Size: len(data)}
}

// Regions returns the number of currently pinned regions, used by
// leak checks: a well-behaved pipeline releases every intermediate
// after its consumer has pulled it.
func (ep *Endpoint) Regions() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.regions)
}

// Release unpins a region previously registered on this endpoint.
func (ep *Endpoint) Release(h MemHandle) error {
	_, err := ep.Reclaim(h)
	return err
}

// Reclaim unpins a region and returns its backing buffer, so the
// owner can recycle it (typically into bufpool) once the consumer has
// pulled the data. After Reclaim the buffer is no longer reachable
// through the fabric; the caller owns it exclusively.
func (ep *Endpoint) Reclaim(h MemHandle) ([]byte, error) {
	if h.Endpoint != ep.id {
		return nil, fmt.Errorf("dart: release of foreign handle %+v on endpoint %d", h, ep.id)
	}
	ep.mu.Lock()
	data, ok := ep.regions[h.Region]
	delete(ep.regions, h.Region)
	ep.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dart: region %d not registered on endpoint %d", h.Region, ep.id)
	}
	ep.post(Event{Type: EventUnregistered, Handle: h, Peer: ep.id})
	return data, nil
}

func (ep *Endpoint) region(id int) ([]byte, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return nil, fmt.Errorf("dart: endpoint %d is unregistered", ep.id)
	}
	data, ok := ep.regions[id]
	if !ok {
		return nil, fmt.Errorf("dart: region %d not found on endpoint %d", id, ep.id)
	}
	return data, nil
}

// post delivers an event without ever blocking the transport: if the
// consumer is too slow the oldest event is dropped, mirroring
// fixed-depth hardware completion queues.
func (ep *Endpoint) post(ev Event) {
	select {
	case ep.events <- ev:
	default:
		select {
		case <-ep.events:
		default:
		}
		select {
		case ep.events <- ev:
		default:
		}
	}
}

// Get performs a blocking one-sided read of the remote region named by
// h into a pool-recycled buffer, posting completion events at both
// endpoints. It returns the data and the modeled transfer duration.
// The returned buffer comes from bufpool: once the consumer is done
// with it (and has not retained it), handing it to bufpool.Put makes
// the steady-state transfer path allocation-free.
func (ep *Endpoint) Get(h MemHandle) ([]byte, time.Duration, error) {
	owner, err := ep.f.lookup(h.Endpoint)
	if err != nil {
		return nil, 0, err
	}
	src, err := owner.region(h.Region)
	if err != nil {
		return nil, 0, err
	}
	data := bufpool.Get(len(src))
	d := ep.f.net.TransferInto(data, src)
	path := ep.f.net.Select(len(src))
	ev := Event{Type: EventGetDone, Handle: h, Bytes: len(src), Duration: d, Path: path}
	evSrc := ev
	evSrc.Peer = ep.id
	owner.post(evSrc)
	evDst := ev
	evDst.Peer = owner.id
	ep.post(evDst)
	return data, d, nil
}

// GetResult is the outcome of an asynchronous Get.
type GetResult struct {
	Data     []byte
	Duration time.Duration
	Err      error
}

// GetAsync launches a one-sided read and returns a channel that yields
// the result when the transaction completes. This is the primitive the
// staging buckets use to pull in-transit data while the simulation
// proceeds.
func (ep *Endpoint) GetAsync(h MemHandle) <-chan GetResult {
	ch := make(chan GetResult, 1)
	go func() {
		data, d, err := ep.Get(h)
		ch <- GetResult{Data: data, Duration: d, Err: err}
	}()
	return ch
}

// Put performs a blocking one-sided write into the remote region named
// by h. len(data) must not exceed the region size.
func (ep *Endpoint) Put(h MemHandle, data []byte) (time.Duration, error) {
	owner, err := ep.f.lookup(h.Endpoint)
	if err != nil {
		return 0, err
	}
	dst, err := owner.region(h.Region)
	if err != nil {
		return 0, err
	}
	if len(data) > len(dst) {
		return 0, fmt.Errorf("dart: put of %d bytes into region of %d bytes", len(data), len(dst))
	}
	// Stage through pooled scratch so the wire copy (and any modeled
	// sleep inside TransferInto) happens outside the owner's lock, then
	// recycle the scratch: the put path allocates nothing.
	scratch := bufpool.Get(len(data))
	d := ep.f.net.TransferInto(scratch, data)
	owner.mu.Lock()
	copy(dst, scratch)
	owner.mu.Unlock()
	bufpool.Put(scratch)
	path := ep.f.net.Select(len(data))
	ev := Event{Type: EventPutDone, Handle: h, Bytes: len(data), Duration: d, Path: path}
	evSrc := ev
	evSrc.Peer = owner.id
	ep.post(evSrc)
	evDst := ev
	evDst.Peer = ep.id
	owner.post(evDst)
	return d, nil
}

// SendMsg delivers a small control message to the endpoint with id
// `to` over the SMSG path. It blocks if the receiver's message queue
// is full, providing natural backpressure for RPC traffic.
func (ep *Endpoint) SendMsg(to int, kind string, payload []byte) error {
	peer, err := ep.f.lookup(to)
	if err != nil {
		return err
	}
	moved, _ := ep.f.net.Transfer(payload)
	peer.msgs <- Message{From: ep.id, Kind: kind, Payload: moved}
	return nil
}
