package dart

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"insitu/internal/netsim"
)

func newFabric() *Fabric {
	return NewFabric(netsim.New(netsim.Gemini()))
}

func TestRegisterGet(t *testing.T) {
	f := newFabric()
	prod := f.Register("sim-0")
	cons := f.Register("bucket-0")
	data := []byte("intermediate analysis data")
	h := prod.RegisterMem(data)
	if h.Size != len(data) || h.Endpoint != prod.ID() {
		t.Fatalf("handle wrong: %+v", h)
	}
	got, d, err := cons.Get(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("get returned wrong data")
	}
	if d <= 0 {
		t.Fatal("get must report modeled duration")
	}
	// One-sided: producer did nothing actively, but both sides get a
	// completion event.
	evP := <-prod.Events()
	evC := <-cons.Events()
	if evP.Type != EventGetDone || evC.Type != EventGetDone {
		t.Fatalf("event types wrong: %v %v", evP.Type, evC.Type)
	}
	if evP.Peer != cons.ID() || evC.Peer != prod.ID() {
		t.Fatalf("event peers wrong: %d %d", evP.Peer, evC.Peer)
	}
	if evP.Bytes != len(data) {
		t.Fatalf("event byte count wrong: %d", evP.Bytes)
	}
}

func TestGetAliasesPinnedRegion(t *testing.T) {
	f := newFabric()
	prod := f.Register("sim")
	cons := f.Register("bkt")
	data := []byte{1, 2, 3}
	h := prod.RegisterMem(data)
	// RegisterMem pins the live buffer, not a copy: Reclaim hands the
	// very same backing array back.
	got, err := prod.Reclaim(h)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &data[0] {
		t.Fatal("RegisterMem must pin the live buffer, not a copy")
	}
	// Mutating a pinned buffer violates the RDMA pin contract; the
	// CRC32 framing turns that into a typed checksum error at the
	// consumer instead of silently delivering torn data.
	h = prod.RegisterMem(data)
	data[0] = 42
	if _, _, err := cons.Get(h); !errors.Is(err, ErrChecksum) {
		t.Fatalf("pull of a mutated pinned region must fail checksum verification, got %v", err)
	}
}

func TestPut(t *testing.T) {
	f := newFabric()
	a := f.Register("a")
	b := f.Register("b")
	dst := make([]byte, 8)
	h := b.RegisterMem(dst)
	if _, err := a.Put(h, []byte{9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 9 || dst[2] != 7 {
		t.Fatal("put did not land in the registered region")
	}
	if _, err := a.Put(h, make([]byte, 100)); err == nil {
		t.Fatal("oversized put must error")
	}
}

func TestRelease(t *testing.T) {
	f := newFabric()
	p := f.Register("p")
	c := f.Register("c")
	h := p.RegisterMem([]byte{1})
	if err := p.Release(h); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(h); err == nil {
		t.Fatal("get after release must error")
	}
	if err := p.Release(h); err == nil {
		t.Fatal("double release must error")
	}
	if err := c.Release(h); err == nil {
		t.Fatal("releasing a foreign handle must error")
	}
}

func TestGetErrors(t *testing.T) {
	f := newFabric()
	c := f.Register("c")
	if _, _, err := c.Get(MemHandle{Endpoint: 99, Region: 0}); err == nil {
		t.Fatal("get from unknown endpoint must error")
	}
	p := f.Register("p")
	if _, _, err := c.Get(MemHandle{Endpoint: p.ID(), Region: 42}); err == nil {
		t.Fatal("get of unknown region must error")
	}
}

func TestUnregisterEndpoint(t *testing.T) {
	f := newFabric()
	p := f.Register("p")
	c := f.Register("c")
	h := p.RegisterMem([]byte{1})
	f.Unregister(p)
	if _, _, err := c.Get(h); err == nil {
		t.Fatal("get from unregistered endpoint must error")
	}
}

func TestGetAsync(t *testing.T) {
	f := newFabric()
	p := f.Register("p")
	c := f.Register("c")
	h := p.RegisterMem([]byte("async"))
	res := <-c.GetAsync(h)
	if res.Err != nil || string(res.Data) != "async" {
		t.Fatalf("async get failed: %+v", res)
	}
}

func TestConcurrentPulls(t *testing.T) {
	f := newFabric()
	prod := f.Register("sim")
	// Many consumers pulling the same region concurrently, as staging
	// buckets do.
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i)
	}
	h := prod.RegisterMem(data)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := f.Register("bucket")
			got, _, err := c.Get(h)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- errMismatch
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := f.Network().Stats(); st.BytesMoved < int64(16*len(data)) {
		t.Fatalf("network accounting too small: %d", st.BytesMoved)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "data mismatch" }

func TestSendMsg(t *testing.T) {
	f := newFabric()
	a := f.Register("a")
	b := f.Register("b")
	if err := a.SendMsg(b.ID(), "data-ready", []byte("step-7")); err != nil {
		t.Fatal(err)
	}
	m := <-b.Messages()
	if m.From != a.ID() || m.Kind != "data-ready" || string(m.Payload) != "step-7" {
		t.Fatalf("message wrong: %+v", m)
	}
	if err := a.SendMsg(123, "x", nil); err == nil {
		t.Fatal("message to unknown endpoint must error")
	}
}

func TestEventOverflowDropsOldest(t *testing.T) {
	f := newFabric()
	p := f.Register("p")
	c := f.Register("c")
	h := p.RegisterMem([]byte{1})
	// Overflow the producer's 1024-deep event queue; transport must
	// never block.
	for i := 0; i < 1100; i++ {
		if _, _, err := c.Get(h); err != nil {
			t.Fatal(err)
		}
		// Drain the consumer side so only the producer overflows.
		<-c.Events()
	}
	drained := 0
	for {
		select {
		case <-p.Events():
			drained++
			continue
		default:
		}
		break
	}
	if drained == 0 || drained > 1024 {
		t.Fatalf("producer queue should hold up to 1024 events, drained %d", drained)
	}
}
