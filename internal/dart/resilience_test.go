package dart

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"insitu/internal/bufpool"
	"insitu/internal/faults"
	"insitu/internal/netsim"
)

// faultyFabric returns a fabric whose network injects the given
// schedule, with a fast retry policy so tests stay quick.
func faultyFabric(cfg faults.Config, attempts int) *Fabric {
	net := netsim.New(netsim.Gemini())
	net.SetFaults(faults.New(cfg))
	f := NewFabric(net)
	f.SetRetryPolicy(RetryPolicy{
		MaxAttempts: attempts,
		BaseBackoff: 5 * time.Microsecond,
		MaxBackoff:  50 * time.Microsecond,
		Jitter:      0.25,
	})
	return f
}

// TestGetRetriesTransientDrops: with a 50% drop rate and a deep retry
// budget, Get still delivers intact data and the retry counter moves.
func TestGetRetriesTransientDrops(t *testing.T) {
	f := faultyFabric(faults.Config{Seed: 9, Default: faults.Rates{Drop: 0.5}}, 64)
	p := f.Register("p")
	c := f.Register("c")
	data := []byte("survives a lossy fabric")
	h := p.RegisterMem(data)
	sawRetry := false
	for i := 0; i < 50; i++ {
		got, _, err := c.Get(h)
		if err != nil {
			t.Fatalf("pull %d failed despite retry budget: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pull %d returned wrong data", i)
		}
		bufpool.Put(got)
	}
	if f.Stats().Retries > 0 {
		sawRetry = true
	}
	if !sawRetry {
		t.Fatal("a 50% drop rate over 50 pulls must have caused at least one retry")
	}
}

// TestGetExhaustsRetriesTyped: a fully lossy link surfaces the typed
// netsim.ErrDropped after MaxAttempts.
func TestGetExhaustsRetriesTyped(t *testing.T) {
	f := faultyFabric(faults.Config{Seed: 1, Default: faults.Rates{Drop: 1}}, 3)
	p := f.Register("p")
	c := f.Register("c")
	h := p.RegisterMem([]byte{1, 2, 3, 4})
	_, _, err := c.Get(h)
	if !errors.Is(err, netsim.ErrDropped) {
		t.Fatalf("want wrapped ErrDropped, got %v", err)
	}
	if got := f.Stats().Retries; got != 2 {
		t.Fatalf("3 attempts mean 2 retries, counted %d", got)
	}
}

// TestChecksumCatchesEveryCorruption: every corrupted attempt is
// caught by CRC32 verification — none reaches the caller — and clean
// retries eventually succeed.
func TestChecksumCatchesEveryCorruption(t *testing.T) {
	f := faultyFabric(faults.Config{Seed: 3, Default: faults.Rates{Corrupt: 0.5}}, 64)
	p := f.Register("p")
	c := f.Register("c")
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 13)
	}
	h := p.RegisterMem(data)
	for i := 0; i < 40; i++ {
		got, _, err := c.Get(h)
		if err != nil {
			t.Fatalf("pull %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pull %d delivered corrupted data past the checksum", i)
		}
		bufpool.Put(got)
	}
	inj := f.Network().Faults().Counters()
	injected := inj.ByKind[faults.Corrupt]
	caught := f.Stats().ChecksumFailures
	if injected == 0 {
		t.Fatal("schedule injected no corruption — test is vacuous")
	}
	if caught != injected {
		t.Fatalf("checksum caught %d of %d injected corruptions", caught, injected)
	}
}

// TestPutChecksumAndRetry: the push path verifies payloads before
// committing them into the destination region.
func TestPutChecksumAndRetry(t *testing.T) {
	f := faultyFabric(faults.Config{Seed: 5, Default: faults.Rates{Corrupt: 0.5, Drop: 0.2}}, 64)
	a := f.Register("a")
	b := f.Register("b")
	dst := make([]byte, 512)
	h := b.RegisterMem(dst)
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(255 - i)
	}
	for i := 0; i < 30; i++ {
		if _, err := a.Put(h, payload); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if !bytes.Equal(dst, payload) {
			t.Fatalf("put %d committed corrupted data", i)
		}
	}
	inj := f.Network().Faults().Counters()
	if caught := f.Stats().ChecksumFailures; caught != inj.ByKind[faults.Corrupt] {
		t.Fatalf("checksum caught %d of %d injected corruptions", caught, inj.ByKind[faults.Corrupt])
	}
	// After a successful Put the region's stored checksum matches the
	// new contents, so a follow-up Get verifies cleanly.
	f.Network().SetFaults(nil)
	got, _, err := a.Get(h)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("get after put: %v", err)
	}
}

// TestDeadlineExceededTyped: a permanently faulty link under a tight
// deadline yields ErrDeadline instead of spinning.
func TestDeadlineExceededTyped(t *testing.T) {
	f := faultyFabric(faults.Config{Seed: 1, Default: faults.Rates{Drop: 1}}, 1<<20)
	p := f.Register("p")
	c := f.Register("c")
	h := p.RegisterMem(make([]byte, 64))
	_, _, err := c.GetDeadline(h, time.Now().Add(2*time.Millisecond))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if _, err := c.PutDeadline(h, make([]byte, 64), time.Now().Add(2*time.Millisecond)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("put: want ErrDeadline, got %v", err)
	}
	if f.Stats().DeadlineExceeded < 2 {
		t.Fatalf("deadline counter %d, want >= 2", f.Stats().DeadlineExceeded)
	}
}

// TestPartitionWindowHealsAfterClose: pulls fail with ErrPartitioned
// inside the window and succeed once it closes.
func TestPartitionWindowHealsAfterClose(t *testing.T) {
	f := faultyFabric(faults.Config{
		Seed:       1,
		Partitions: []faults.Window{{From: 0, Until: 4, Endpoints: []int{1}}},
	}, 2)
	p := f.Register("p") // endpoint 0
	c := f.Register("c") // endpoint 1 — partitioned for 4 decisions
	h := p.RegisterMem([]byte("heals"))
	_, _, err := c.Get(h)
	if !errors.Is(err, netsim.ErrPartitioned) {
		t.Fatalf("want ErrPartitioned inside the window, got %v", err)
	}
	// Attempts 1+2 consumed decisions 0,1; two more retries pass the
	// window's edge and the link heals.
	got, _, err := c.Get(h)
	if err != nil {
		got, _, err = c.Get(h)
	}
	if err != nil || string(got) != "heals" {
		t.Fatalf("link must heal after the window closes: %v", err)
	}
}

// --- Satellite: pooled-buffer ownership on error paths ---

// TestGetErrorDoesNotLeakPeerBufferIntoPool: after failed pulls, the
// producer's pinned region must not have been recycled into bufpool —
// a poisoned pool would let an unrelated Get scribble over pinned
// memory.
func TestGetErrorDoesNotLeakPeerBufferIntoPool(t *testing.T) {
	f := faultyFabric(faults.Config{Seed: 2, Default: faults.Rates{Drop: 1}}, 3)
	p := f.Register("p")
	c := f.Register("c")
	data := make([]byte, 1024)
	for i := range data {
		data[i] = 0xA5
	}
	h := p.RegisterMem(data)
	for i := 0; i < 8; i++ {
		if _, _, err := c.Get(h); err == nil {
			t.Fatal("fully lossy link must fail")
		}
	}
	// Drain same-class pool buffers and scribble on them; the pinned
	// region must stay untouched.
	var bufs [][]byte
	for i := 0; i < 16; i++ {
		b := bufpool.Get(len(data))
		for j := range b {
			b[j] = 0x5A
		}
		bufs = append(bufs, b)
	}
	for _, b := range data {
		if b != 0xA5 {
			t.Fatal("pinned region was recycled into the pool on a failed Get")
		}
	}
	for _, b := range bufs {
		bufpool.Put(b)
	}
}

// TestGetErrorNoDoubleRecycle: a failed Get recycles its staging
// buffer exactly once — two fresh pool buffers of that class must
// never alias each other.
func TestGetErrorNoDoubleRecycle(t *testing.T) {
	f := faultyFabric(faults.Config{Seed: 4, Default: faults.Rates{Drop: 1}}, 2)
	p := f.Register("p")
	c := f.Register("c")
	h := p.RegisterMem(make([]byte, 2048))
	if _, _, err := c.Get(h); err == nil {
		t.Fatal("expected failure")
	}
	b1 := bufpool.Get(2048)
	b2 := bufpool.Get(2048)
	if &b1[0] == &b2[0] {
		t.Fatal("double recycle: pool handed the same buffer out twice")
	}
	bufpool.Put(b1)
	bufpool.Put(b2)
}

// TestPutErrorKeepsCallerBuffer: a failed Put must not adopt the
// caller's payload into the pool nor corrupt it.
func TestPutErrorKeepsCallerBuffer(t *testing.T) {
	f := faultyFabric(faults.Config{Seed: 6, Default: faults.Rates{Drop: 1}}, 3)
	a := f.Register("a")
	b := f.Register("b")
	h := b.RegisterMem(make([]byte, 512))
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = 0xC3
	}
	for i := 0; i < 4; i++ {
		if _, err := a.Put(h, payload); err == nil {
			t.Fatal("fully lossy link must fail")
		}
	}
	var bufs [][]byte
	for i := 0; i < 16; i++ {
		buf := bufpool.Get(len(payload))
		for j := range buf {
			buf[j] = 0x3C
		}
		bufs = append(bufs, buf)
	}
	for _, v := range payload {
		if v != 0xC3 {
			t.Fatal("caller payload was adopted into the pool on a failed Put")
		}
	}
	for _, buf := range bufs {
		bufpool.Put(buf)
	}
}

// --- Satellite: endpoint lifecycle races ---

// TestUnregisterDuringGetTyped hammers register/pull/unregister
// concurrently: every outcome must be success or a typed error — no
// panic, no hang, no garbage data.
func TestUnregisterDuringGetTyped(t *testing.T) {
	f := NewFabric(netsim.New(netsim.Gemini()))
	f.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond})
	c := f.Register("consumer")
	const rounds = 200
	var wg sync.WaitGroup
	errCh := make(chan error, rounds*4)
	for r := 0; r < rounds; r++ {
		p := f.Register("victim")
		data := []byte("lifecycle")
		h := p.RegisterMem(data)
		wg.Add(2)
		go func() {
			defer wg.Done()
			got, _, err := c.Get(h)
			if err == nil {
				if !bytes.Equal(got, data) {
					errCh <- errors.New("garbage data returned")
				}
				bufpool.Put(got)
				return
			}
			if !errors.Is(err, ErrUnregistered) && !errors.Is(err, ErrRegionNotFound) {
				errCh <- err
			}
		}()
		go func() {
			defer wg.Done()
			f.Unregister(p)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("register/unregister hammer hung")
	}
	close(errCh)
	for err := range errCh {
		t.Fatalf("untyped error escaped the lifecycle race: %v", err)
	}
}

// TestUnregisterDuringPutTyped: a Put racing the destination's
// Unregister returns a typed error and never commits into freed
// regions.
func TestUnregisterDuringPutTyped(t *testing.T) {
	f := NewFabric(netsim.New(netsim.Gemini()))
	f.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond})
	a := f.Register("src")
	const rounds = 200
	var wg sync.WaitGroup
	errCh := make(chan error, rounds)
	for r := 0; r < rounds; r++ {
		b := f.Register("dst")
		h := b.RegisterMem(make([]byte, 64))
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, err := a.Put(h, []byte("payload"))
			if err != nil && !errors.Is(err, ErrUnregistered) && !errors.Is(err, ErrRegionNotFound) {
				errCh <- err
			}
		}()
		go func() {
			defer wg.Done()
			f.Unregister(b)
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("untyped error escaped the put lifecycle race: %v", err)
	}
}
