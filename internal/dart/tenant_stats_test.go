package dart

import (
	"bytes"
	"strings"
	"testing"

	"insitu/internal/bufpool"
	"insitu/internal/faults"
	"insitu/internal/obs"
)

// TestEndpointStatsAttributeToOwner: transfer noise (retries) and moved
// bytes are charged to the endpoint owning the region in flight, not to
// the bucket issuing the RPC, and the per-endpoint series carry the
// owner's tenant label — including for endpoints registered before the
// plane attached.
func TestEndpointStatsAttributeToOwner(t *testing.T) {
	f := faultyFabric(faults.Config{Seed: 7, Default: faults.Rates{Drop: 0.5}}, 64)
	alpha := f.RegisterT("alpha/sim-0", "alpha")
	beta := f.RegisterT("beta/sim-0", "beta")
	pl := obs.NewPlane()
	f.SetPlane(pl)
	bucket := f.Register("bucket-0")

	data := []byte("noisy tenant payload")
	h := alpha.RegisterMem(data)
	for i := 0; i < 30; i++ {
		got, _, err := bucket.Get(h)
		if err != nil {
			t.Fatalf("pull %d: %v", i, err)
		}
		bufpool.Put(got)
	}

	if alpha.Tenant() != "alpha" || bucket.Tenant() != "" {
		t.Fatalf("tenant tags wrong: %q %q", alpha.Tenant(), bucket.Tenant())
	}
	as := alpha.Stats()
	if as.Retries == 0 {
		t.Fatal("a 50% drop rate over 30 pulls must charge retries to the owner")
	}
	if got := alpha.TransferBytes(); got != int64(30*len(data)) {
		t.Fatalf("owner transfer bytes = %d, want %d", got, 30*len(data))
	}
	if bs := beta.Stats(); bs.Retries != 0 || bs.ChecksumFailures != 0 || beta.TransferBytes() != 0 {
		t.Fatalf("idle tenant charged for neighbour noise: %+v", bs)
	}
	// The fabric-wide tallies are untouched by attribution.
	if f.Stats().Retries < as.Retries {
		t.Fatal("fabric-wide retry count must cover the owner's share")
	}

	var buf bytes.Buffer
	if err := pl.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`dart_endpoint_retries_total{endpoint="alpha/sim-0",tenant="alpha"}`,
		`dart_endpoint_transfer_bytes_total{endpoint="alpha/sim-0",tenant="alpha"}`,
		`dart_endpoint_retries_total{endpoint="bucket-0",tenant="default"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus export missing series %s", want)
		}
	}
}
