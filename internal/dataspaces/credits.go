package dataspaces

import (
	"fmt"
	"sync"
)

// Credits is the transit tier's explicit credit account: the
// free-bucket list plus the bounded task-queue depth expressed as a
// fixed supply of credits. A producer acquires one credit per
// in-transit task *before* registering producer regions and keeps it
// until the task's final Result (success, handler error, or
// dead-letter) settles it — so the simulation never submits work the
// transit tier cannot absorb, and backpressure surfaces as an instant,
// non-blocking denial instead of unbounded queue growth.
//
// Per-analysis reservations carve a guaranteed minimum out of the
// supply so one slow analysis cannot starve the others; the remainder
// is a shared pool. Acquire draws from the caller's reservation first,
// then the shared pool; Release refills in the same order. The
// invariant Outstanding() + Available() == Total() holds at all times,
// which is what the drain-time leak check asserts.
type Credits struct {
	mu          sync.Mutex
	total       int
	shared      int
	reserved    map[string]*reservation
	outstanding int
	denied      int64
}

type reservation struct {
	cap   int
	avail int
}

// NewCredits creates an account of `total` credits with the given
// per-analysis reservations (which must sum to at most total).
func NewCredits(total int, reservations map[string]int) (*Credits, error) {
	if total < 1 {
		return nil, fmt.Errorf("dataspaces: need at least one credit, got %d", total)
	}
	c := &Credits{total: total, shared: total, reserved: make(map[string]*reservation)}
	for name, n := range reservations {
		if n < 0 {
			return nil, fmt.Errorf("dataspaces: negative reservation %d for %q", n, name)
		}
		if n > c.shared {
			return nil, fmt.Errorf("dataspaces: reservations exceed the credit supply (%d)", total)
		}
		c.shared -= n
		c.reserved[name] = &reservation{cap: n, avail: n}
	}
	return c, nil
}

// Acquire takes one credit for the named analysis, reservation first,
// shared pool second. It never blocks: false means the transit tier is
// saturated and the caller must degrade instead of submitting.
func (c *Credits) Acquire(analysis string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r := c.reserved[analysis]; r != nil && r.avail > 0 {
		r.avail--
		c.outstanding++
		return true
	}
	if c.shared > 0 {
		c.shared--
		c.outstanding++
		return true
	}
	c.denied++
	return false
}

// Release returns one credit for the named analysis, refilling its
// reservation before the shared pool. Releasing more than was acquired
// panics: that is a double-settle bug, the credit analogue of a
// double-recycled buffer.
func (c *Credits) Release(analysis string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.outstanding == 0 {
		panic("dataspaces: credit released but none outstanding")
	}
	c.outstanding--
	if r := c.reserved[analysis]; r != nil && r.avail < r.cap {
		r.avail++
		return
	}
	c.shared++
}

// Exhausted reports whether an Acquire for the analysis would be
// denied right now. It does not count as a denial.
func (c *Credits) Exhausted(analysis string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r := c.reserved[analysis]; r != nil && r.avail > 0 {
		return false
	}
	return c.shared == 0
}

// Outstanding returns the credits currently held by producers.
func (c *Credits) Outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outstanding
}

// Available returns the credits currently grantable (shared pool plus
// all reservation remainders).
func (c *Credits) Available() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.shared
	for _, r := range c.reserved {
		n += r.avail
	}
	return n
}

// Total returns the fixed credit supply.
func (c *Credits) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Snapshot returns (outstanding, available, total) read under one
// lock, so the invariant outstanding + available == total can be
// asserted atomically while other goroutines churn the account.
func (c *Credits) Snapshot() (outstanding, available, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	available = c.shared
	for _, r := range c.reserved {
		available += r.avail
	}
	return c.outstanding, available, c.total
}

// Denied returns how many Acquire calls were refused.
func (c *Credits) Denied() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.denied
}
