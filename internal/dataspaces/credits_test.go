package dataspaces

import (
	"sync"
	"testing"
)

func TestCreditsReservationThenShared(t *testing.T) {
	c, err := NewCredits(4, map[string]int{"viz": 1, "stats": 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 4 || c.Available() != 4 || c.Outstanding() != 0 {
		t.Fatalf("fresh account: total=%d avail=%d out=%d", c.Total(), c.Available(), c.Outstanding())
	}
	// viz drains its reservation, then the 2-credit shared pool.
	for i := 0; i < 3; i++ {
		if !c.Acquire("viz") {
			t.Fatalf("acquire %d must succeed", i)
		}
	}
	// The shared pool is gone, but stats still holds its reservation.
	if c.Exhausted("stats") {
		t.Fatal("stats reservation must survive viz draining the shared pool")
	}
	if !c.Acquire("stats") {
		t.Fatal("stats must get its reserved credit")
	}
	// Now everyone is dry.
	if !c.Exhausted("viz") || !c.Exhausted("stats") {
		t.Fatal("account must be exhausted")
	}
	if c.Acquire("viz") {
		t.Fatal("acquire on an empty account must fail")
	}
	if c.Denied() != 1 {
		t.Fatalf("denied = %d, want 1", c.Denied())
	}
	if c.Outstanding()+c.Available() != c.Total() {
		t.Fatalf("invariant broken: out=%d avail=%d total=%d", c.Outstanding(), c.Available(), c.Total())
	}
	// Release refills the reservation before the shared pool: after one
	// stats release, a viz acquire must NOT be able to take it.
	c.Release("stats")
	if c.Acquire("viz") {
		t.Fatal("released reserved credit must refill the reservation, not the shared pool")
	}
	if !c.Acquire("stats") {
		t.Fatal("stats must re-acquire its refilled reservation")
	}
	// Drain everything back and check the invariant closes.
	c.Release("viz")
	c.Release("viz")
	c.Release("viz")
	c.Release("stats")
	if c.Outstanding() != 0 || c.Available() != c.Total() {
		t.Fatalf("after full release: out=%d avail=%d total=%d", c.Outstanding(), c.Available(), c.Total())
	}
}

func TestCreditsOverReleasePanics(t *testing.T) {
	c, err := NewCredits(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("releasing an un-acquired credit must panic")
		}
	}()
	c.Release("viz")
}

func TestCreditsBadConfig(t *testing.T) {
	if _, err := NewCredits(0, nil); err == nil {
		t.Fatal("zero total must error")
	}
	if _, err := NewCredits(2, map[string]int{"a": 3}); err == nil {
		t.Fatal("reservations beyond the supply must error")
	}
	if _, err := NewCredits(2, map[string]int{"a": -1}); err == nil {
		t.Fatal("negative reservation must error")
	}
}

func TestCreditsConcurrentInvariant(t *testing.T) {
	c, err := NewCredits(8, map[string]int{"viz": 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		name := "stats"
		if w%2 == 0 {
			name = "viz"
		}
		go func(name string) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if c.Acquire(name) {
					c.Release(name)
				}
			}
		}(name)
	}
	wg.Wait()
	if c.Outstanding() != 0 || c.Available() != c.Total() {
		t.Fatalf("invariant broken after churn: out=%d avail=%d total=%d",
			c.Outstanding(), c.Available(), c.Total())
	}
}

func TestQueueBoundRejectsSubmissions(t *testing.T) {
	s := newService(t, 1)
	s.SetQueueBound(2)
	for i := 0; i < 2; i++ {
		if _, err := s.SubmitTask("a", i, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.SubmitSpec(TaskSpec{Analysis: "a", Step: 2}); err != ErrQueueFull {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	// A waiting bucket bypasses the bound: hand-off does not queue.
	if _, err := s.BucketReady(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitSpec(TaskSpec{Analysis: "a", Step: 3}); err != nil {
		t.Fatalf("submit after drain must succeed, got %v", err)
	}
	// Requeue is exempt from the bound.
	full, err := s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitSpec(TaskSpec{Analysis: "a", Step: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Requeue(full); err != nil {
		t.Fatalf("requeue must bypass the queue bound, got %v", err)
	}
	if s.QueueDepth() != 3 {
		t.Fatalf("queue depth %d, want 3", s.QueueDepth())
	}
}

func TestSubmitSpecThreadsShapedAndCredited(t *testing.T) {
	s := newService(t, 1)
	if err := s.EnableCredits(2, nil); err != nil {
		t.Fatal(err)
	}
	if !s.Credits().Acquire("a") {
		t.Fatal("acquire must succeed")
	}
	if _, err := s.SubmitSpec(TaskSpec{Analysis: "a", Step: 1, Shaped: 2, Credited: true}); err != nil {
		t.Fatal(err)
	}
	task, err := s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if task.Shaped != 2 || !task.Credited {
		t.Fatalf("spec fields lost: %+v", task)
	}
	s.FinishTask(task)
	if got := s.Credits().Outstanding(); got != 0 {
		t.Fatalf("FinishTask must settle the credit, outstanding=%d", got)
	}
	// FinishTask on an uncredited task is a no-op.
	s.FinishTask(Task{Analysis: "a"})
	if s.Credits().Available() != s.Credits().Total() {
		t.Fatal("uncredited FinishTask must not mint credits")
	}
}
