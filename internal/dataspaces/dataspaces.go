// Package dataspaces implements the scheduling and coordination layer
// of the hybrid framework, modeled on DataSpaces (Docan et al.,
// HPDC'10): a semantically specialized shared-space abstraction in
// which in-situ producers insert descriptors for RDMA-enabled data
// blocks, consumers query them by name, version (timestep), and
// n-dimensional bounding box, and an in-transit task queue matches
// data-ready events against bucket-ready requests in first-come
// first-served order.
//
// The descriptor index is sharded over a configurable number of
// servers by hashing, as in the paper ("the hashing used to balance
// the RPC messages ... over multiple DataSpaces servers"); per-server
// RPC counters expose that balance to tests and benchmarks.
package dataspaces

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/codec"
	"insitu/internal/dart"
	"insitu/internal/grid"
	"insitu/internal/obs"
)

// Descriptor names one RDMA-enabled data block produced by an in-situ
// stage: which analysis produced it, for which timestep, covering which
// region, and the DART handle a bucket can pull it with.
type Descriptor struct {
	Name    string         // variable or intermediate-product name
	Version int            // simulation timestep
	Box     grid.Box       // spatial region covered
	Rank    int            // producing simulation rank
	Handle  dart.MemHandle // where the bytes live
	// Tenant scopes the descriptor to one pipeline in a multi-tenant
	// fabric; empty for single-tenant runs (whose index keys and shard
	// hashes are unchanged).
	Tenant string
}

// key is the index key descriptors are sharded and grouped by.
type key struct {
	tenant  string
	name    string
	version int
}

// server is one shard of the descriptor index.
type server struct {
	mu    sync.Mutex
	index map[key][]Descriptor
	rpcs  int64
}

// Task describes one unit of in-transit work: run the named analysis
// for one timestep over the given input blocks. Tasks are created by
// data-ready events and drained by bucket-ready requests.
type Task struct {
	ID       int64
	Analysis string
	Step     int
	Inputs   []Descriptor
	// Attempts counts how many times the task has been handed to a
	// bucket and failed (bucket crash or transfer failure); it starts
	// at 0 and is incremented by Requeue.
	Attempts int
	// Deadline, when non-zero, bounds the task's data movement: pulls
	// past it fail and the task is eventually dead-lettered. It is set
	// from the submitting step's deadline budget.
	Deadline time.Time
	// Shaped is the admission ladder's payload-shaping level the task
	// was produced at (0 = full payload). The transit tier carries it
	// through so results can be marked as reduced-fidelity.
	Shaped int
	// Credited records that the producer holds a flow-control credit
	// for this task; FinishTask releases it exactly once when the
	// task's final result settles. It survives requeues.
	Credited bool
	// Tenant names the submitting pipeline in a multi-tenant fabric;
	// empty for single-tenant runs. It selects the credit account the
	// task settles against and the per-tenant queue it is scheduled
	// from.
	Tenant string
	// Probe marks a quarantine half-open probe: the one task a
	// quarantined (tenant, analysis) route is allowed to submit so its
	// disposition can decide between release and re-open. Probes pass
	// the admission guard.
	Probe bool
	// History accumulates one line per failed attempt (cause summaries)
	// so a dead-letter report can show how the task died, not just that
	// it did. It survives requeues.
	History []string
}

// CreditAccount returns the account the task's credit settles against:
// the tenant in a multi-tenant fabric, the analysis (the legacy
// per-analysis reservation key) otherwise.
func (t Task) CreditAccount() string {
	if t.Tenant != "" {
		return t.Tenant
	}
	return t.Analysis
}

// TaskSpec describes a task submission.
type TaskSpec struct {
	Analysis string
	Step     int
	Inputs   []Descriptor
	Deadline time.Time
	Shaped   int
	Credited bool
	Tenant   string
	Probe    bool
}

// Service is the coordination service: a sharded descriptor index plus
// the in-transit task queue.
type Service struct {
	servers []*server
	fabric  *dart.Fabric

	mu      sync.Mutex
	nextID  int64
	queue   []Task    // pending tasks, FIFO (single-tenant FCFS mode)
	waiting []*waiter // free buckets, FIFO
	closed  bool
	bound   int // max queued (unassigned) tasks; 0 = unbounded

	// Fair-dequeue (deficit round robin) state; nil/false = FCFS.
	fair    bool
	tq      map[string][]Task // per-tenant FIFO queues
	order   []string          // sorted tenant names, the DRR ring
	weights map[string]int    // DRR quantum per tenant (default 1)
	deficit map[string]int
	rr      int    // ring position
	newTurn bool   // quantum not yet granted at the current position
	head    []Task // requeued tasks, served before any tenant queue

	guard func(tenant, analysis string, probe bool) error

	credits *Credits
	dedup   map[TaskKey]bool // accepted (analysis, step) pairs; nil = dedup off

	assigned int64 // tasks handed to buckets
	requeues int64 // failed tasks pushed back for another attempt

	plane atomic.Pointer[obs.Plane]
}

// waiter is one blocked bucket-ready request. The channel is buffered
// so an assigning submitter never blocks on a receiver that is
// concurrently cancelling.
type waiter struct {
	ch chan Task
}

// New creates a service with the given number of index servers
// attached to fabric. The paper's runs used 160 and 256
// DataSpaces-service cores; here each server is a shard.
func New(fabric *dart.Fabric, servers int) (*Service, error) {
	if servers < 1 {
		return nil, fmt.Errorf("dataspaces: need at least one server, got %d", servers)
	}
	s := &Service{fabric: fabric, servers: make([]*server, servers)}
	for i := range s.servers {
		s.servers[i] = &server{index: make(map[key][]Descriptor)}
	}
	return s, nil
}

// SetCodecs attaches a transfer-path codec registry to the service's
// fabric, enabling encoded registrations (dart.RegisterMemEncoded) and
// transparent decode on Get for every endpoint. The registry holds the
// previous-version base store the delta codec encodes against; one
// registry serves both sides of every route. Call before traffic
// starts.
func (s *Service) SetCodecs(r *codec.Registry) { s.fabric.SetCodecs(r) }

// Codecs returns the fabric's attached codec registry, or nil.
func (s *Service) Codecs() *codec.Registry { return s.fabric.Codecs() }

// SetPlane attaches the observability plane: task submissions and
// requeues record lifecycle events on the "queue" lane, and the
// service's live state — queue depth, free buckets, assignment and
// requeue totals, and the credit account — is published as metric
// series sampled at scrape time. The credit series are registered even
// when credits are disabled (they read zero), so every run exposes the
// same metric families. A nil plane is ignored.
func (s *Service) SetPlane(pl *obs.Plane) {
	if pl == nil {
		return
	}
	reg := pl.Registry()
	reg.GaugeFunc("dataspaces_queue_depth", "tasks waiting for a bucket",
		func() float64 { return float64(s.QueueDepth()) })
	reg.GaugeFunc("dataspaces_free_buckets", "buckets waiting for a task",
		func() float64 { return float64(s.FreeBuckets()) })
	reg.CounterFunc("dataspaces_assigned_total", "tasks handed to buckets",
		func() float64 { return float64(s.Assigned()) })
	reg.CounterFunc("dataspaces_requeues_total", "failed tasks pushed back for another attempt",
		func() float64 { return float64(s.Requeues()) })
	reg.GaugeFunc("credits_total", "fixed flow-control credit supply (0 when credits are disabled)",
		func() float64 {
			if c := s.Credits(); c != nil {
				return float64(c.Total())
			}
			return 0
		})
	reg.GaugeFunc("credits_available", "flow-control credits currently grantable",
		func() float64 {
			if c := s.Credits(); c != nil {
				return float64(c.Available())
			}
			return 0
		})
	reg.GaugeFunc("credits_outstanding", "flow-control credits held by producers",
		func() float64 {
			if c := s.Credits(); c != nil {
				return float64(c.Outstanding())
			}
			return 0
		})
	reg.CounterFunc("credits_denied_total", "credit acquisitions refused at saturation",
		func() float64 {
			if c := s.Credits(); c != nil {
				return float64(c.Denied())
			}
			return 0
		})
	s.plane.Store(pl)
}

// observeSubmit records a task.submit lifecycle event; the JSONL
// reconciliation invariant pairs it with exactly one task.done from the
// staging tier.
func (s *Service) observeSubmit(t Task) {
	pl := s.plane.Load()
	if pl == nil {
		return
	}
	attrs := []obs.Attr{
		obs.Int64("task", t.ID),
		obs.Str("analysis", t.Analysis),
		obs.Int("step", t.Step),
		obs.Int("shaped", t.Shaped),
		obs.Bool("credited", t.Credited),
	}
	if t.Tenant != "" {
		attrs = append(attrs, obs.Str("tenant", t.Tenant))
	}
	pl.Recorder().Event(0, obs.CatTask, "queue", "task.submit", time.Now(), attrs...)
}

// observeRequeue records a task.requeue lifecycle event.
func (s *Service) observeRequeue(t Task) {
	pl := s.plane.Load()
	if pl == nil {
		return
	}
	pl.Recorder().Event(0, obs.CatTask, "queue", "task.requeue", time.Now(),
		obs.Int64("task", t.ID),
		obs.Int("attempt", t.Attempts))
}

// ErrClosed is returned by blocking operations after Close.
var ErrClosed = errors.New("dataspaces: service closed")

// ErrCancelled is returned by BucketReadyCancel when the caller's
// cancel channel fires before a task is assigned — the graceful path a
// retiring bucket takes out of its blocking wait.
var ErrCancelled = errors.New("dataspaces: bucket wait cancelled")

// ErrQueueFull is returned by SubmitSpec when the bounded task queue is
// at capacity and no bucket is waiting — the backpressure signal the
// admission ladder reacts to instead of letting the queue grow.
var ErrQueueFull = errors.New("dataspaces: task queue full")

// ErrDuplicateTask is returned by SubmitSpec, with dedup enabled, for
// a second submission of an (analysis, step) pair — the idempotency
// guard of journal replay: a resumed run re-submitting work the dead
// process already ran (or that was seeded as committed) must not run
// it twice or double-settle its credit.
var ErrDuplicateTask = errors.New("dataspaces: duplicate task submission")

// TaskKey identifies one logical in-transit task for replay dedup.
type TaskKey struct {
	Analysis string
	Step     int
}

// EnableDedup turns on (analysis, step) submission dedup: SubmitSpec
// refuses a key it has already accepted with ErrDuplicateTask. seed
// pre-marks keys as already done — the resume path seeds it with every
// pair the journal shows committed, so a replayed step can never
// re-enter the transit tier. Call before traffic starts.
func (s *Service) EnableDedup(seed []TaskKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dedup = make(map[TaskKey]bool, len(seed))
	for _, k := range seed {
		s.dedup[k] = true
	}
}

// SetQueueBound bounds the number of *queued* (submitted but not yet
// assigned) tasks; submissions beyond it fail with ErrQueueFull. Zero
// removes the bound. Tasks handed directly to a waiting bucket never
// count against it, and Requeue is exempt: a requeued task already
// held queue occupancy once and must not be lost to backpressure.
func (s *Service) SetQueueBound(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bound = n
}

// EnableFairDequeue replaces the global FCFS task queue with
// deficit-round-robin fair scheduling over per-tenant queues: each
// tenant earns `weight` dequeue credits per ring turn (default 1), so
// a tenant flooding the queue cannot starve the others. Head-requeues
// stay exempt — a requeued task already held queue occupancy once and
// is served before any tenant queue, preserving the at-most-once
// in-flight guarantee of the crash path. With a queue bound set, the
// bound applies per tenant (each tenant owns its bulkhead's depth)
// instead of globally. Call before traffic starts.
func (s *Service) EnableFairDequeue(weights map[string]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fair = true
	s.tq = make(map[string][]Task)
	s.weights = make(map[string]int, len(weights))
	s.deficit = make(map[string]int)
	s.order = s.order[:0]
	for name, w := range weights {
		s.weights[name] = w
		s.ensureTenantLocked(name)
	}
	s.rr = 0
	s.newTurn = true
}

// ensureTenantLocked adds a tenant to the DRR ring, keeping the ring
// sorted so scheduling order is deterministic regardless of submission
// interleaving.
func (s *Service) ensureTenantLocked(name string) {
	i := sort.SearchStrings(s.order, name)
	if i < len(s.order) && s.order[i] == name {
		return
	}
	s.order = append(s.order, "")
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = name
	if _, ok := s.tq[name]; !ok {
		s.tq[name] = nil
	}
	// Keep the ring position pointing at the same tenant across the
	// insertion.
	if i <= s.rr && len(s.order) > 1 {
		s.rr++
	}
}

func (s *Service) weightLocked(name string) int {
	if w := s.weights[name]; w > 0 {
		return w
	}
	return 1
}

func (s *Service) advanceLocked() {
	s.rr = (s.rr + 1) % len(s.order)
	s.newTurn = true
}

// nextTaskLocked pops the next task to assign, honouring head-requeues
// first, then FCFS or DRR order depending on mode.
func (s *Service) nextTaskLocked() (Task, bool) {
	if len(s.head) > 0 {
		t := s.head[0]
		s.head = s.head[1:]
		return t, true
	}
	if !s.fair {
		if len(s.queue) == 0 {
			return Task{}, false
		}
		t := s.queue[0]
		s.queue = s.queue[1:]
		return t, true
	}
	total := 0
	for _, q := range s.tq {
		total += len(q)
	}
	if total == 0 {
		return Task{}, false
	}
	for {
		name := s.order[s.rr]
		q := s.tq[name]
		if len(q) == 0 {
			// An empty queue forfeits its unused deficit: DRR credit
			// must not accumulate while a tenant is idle.
			s.deficit[name] = 0
			s.advanceLocked()
			continue
		}
		if s.newTurn {
			s.deficit[name] += s.weightLocked(name)
			s.newTurn = false
		}
		if s.deficit[name] <= 0 {
			s.advanceLocked()
			continue
		}
		s.deficit[name]--
		t := q[0]
		s.tq[name] = q[1:]
		if len(s.tq[name]) == 0 {
			s.deficit[name] = 0
			s.advanceLocked()
		} else if s.deficit[name] == 0 {
			s.advanceLocked()
		}
		return t, true
	}
}

// SetAdmissionGuard installs a submission-time guard consulted by
// SubmitSpec before a task enters the queue; a non-nil return rejects
// the submission with that error. The scheduler wires the poison-route
// quarantine through this hook (probe-marked submissions are the
// quarantine's own half-open probes and must pass), keeping dataspaces
// free of a policy-package dependency. Call before traffic starts.
func (s *Service) SetAdmissionGuard(fn func(tenant, analysis string, probe bool) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.guard = fn
}

// EnableCredits attaches a credit account to the service, sized to
// `total` credits with the given per-analysis reservations. Producers
// acquire credits before submitting; the staging tier settles them via
// FinishTask as final results drain.
func (s *Service) EnableCredits(total int, reservations map[string]int) error {
	c, err := NewCredits(total, reservations)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.credits = c
	return nil
}

// Credits returns the service's credit account, or nil if credits are
// not enabled.
func (s *Service) Credits() *Credits {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.credits
}

// FinishTask settles a task whose final result (success, handler
// error, or dead-letter) has been produced, releasing its flow-control
// credit if it holds one. It is idempotent per task only in the sense
// that callers must invoke it exactly once per final result — the
// staging tier does so at its single result-emission point.
func (s *Service) FinishTask(t Task) {
	if !t.Credited {
		return
	}
	s.mu.Lock()
	c := s.credits
	s.mu.Unlock()
	if c != nil {
		c.Release(t.CreditAccount())
	}
}

// shard returns the server responsible for a key. Tenant-less keys
// hash exactly as before multi-tenancy, so single-tenant shard
// placement (and the RPC balance tests riding on it) is unchanged.
func (s *Service) shard(k key) *server {
	h := fnv.New32a()
	if k.tenant != "" {
		fmt.Fprintf(h, "%s/", k.tenant)
	}
	fmt.Fprintf(h, "%s/%d", k.name, k.version)
	return s.servers[int(h.Sum32())%len(s.servers)]
}

// rpcCost accounts one control RPC on the simulated network. The
// descriptor payload is small, so it always rides the SMSG path.
func (s *Service) rpcCost(d Descriptor) {
	if s.fabric == nil {
		return
	}
	// tenant + name + version + box (6 ints) + handle (3 ints) + rank.
	size := len(d.Tenant) + len(d.Name) + 8 + 6*8 + 3*8 + 8
	s.fabric.Network().Transfer(make([]byte, size))
}

// Put inserts a descriptor into the shared space. Producers call this
// after registering their intermediate data with DART. A descriptor
// with the same (Name, Version, Rank) as an existing one replaces it —
// re-registration during journal replay is idempotent instead of
// doubling a task's inputs.
func (s *Service) Put(d Descriptor) {
	k := key{d.Tenant, d.Name, d.Version}
	sv := s.shard(k)
	s.rpcCost(d)
	sv.mu.Lock()
	replaced := false
	for i, old := range sv.index[k] {
		if old.Rank == d.Rank {
			sv.index[k][i] = d
			replaced = true
			break
		}
	}
	if !replaced {
		sv.index[k] = append(sv.index[k], d)
	}
	sv.rpcs++
	sv.mu.Unlock()
}

// Query returns all descriptors registered under (name, version) in
// the tenant-less namespace.
func (s *Service) Query(name string, version int) []Descriptor {
	return s.QueryT("", name, version)
}

// QueryT returns all descriptors registered under (tenant, name,
// version).
func (s *Service) QueryT(tenant, name string, version int) []Descriptor {
	k := key{tenant, name, version}
	sv := s.shard(k)
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.rpcs++
	out := make([]Descriptor, len(sv.index[k]))
	copy(out, sv.index[k])
	return out
}

// QueryBox returns the descriptors under (name, version) whose boxes
// intersect the query box — DataSpaces' flexible spatial query.
func (s *Service) QueryBox(name string, version int, box grid.Box) []Descriptor {
	all := s.Query(name, version)
	out := all[:0]
	for _, d := range all {
		if d.Box.Overlaps(box) {
			out = append(out, d)
		}
	}
	return out
}

// Remove deletes all descriptors under (name, version) in the
// tenant-less namespace, typically after the consuming in-transit task
// has pulled the data and released the regions.
func (s *Service) Remove(name string, version int) {
	s.RemoveT("", name, version)
}

// RemoveT deletes all descriptors under (tenant, name, version).
func (s *Service) RemoveT(tenant, name string, version int) {
	k := key{tenant, name, version}
	sv := s.shard(k)
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.rpcs++
	delete(sv.index, k)
}

// SubmitTask records a data-ready event: the in-transit task and its
// data descriptors are pushed into the task queue. If a bucket is
// already waiting, the task is handed over immediately (FCFS on both
// sides). The assigned task id is returned.
func (s *Service) SubmitTask(analysis string, step int, inputs []Descriptor) (int64, error) {
	return s.SubmitTaskDeadline(analysis, step, inputs, time.Time{})
}

// SubmitTaskDeadline is SubmitTask with a data-movement deadline
// attached to the task (zero means none).
func (s *Service) SubmitTaskDeadline(analysis string, step int, inputs []Descriptor, deadline time.Time) (int64, error) {
	return s.SubmitSpec(TaskSpec{Analysis: analysis, Step: step, Inputs: inputs, Deadline: deadline})
}

// SubmitSpec records a data-ready event from a full task spec. If a
// bucket is already waiting, the task is handed over immediately;
// otherwise it joins the queue, failing with ErrQueueFull when a
// queue bound is set and reached.
func (s *Service) SubmitSpec(spec TaskSpec) (int64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if s.guard != nil {
		if err := s.guard(spec.Tenant, spec.Analysis, spec.Probe); err != nil {
			s.mu.Unlock()
			return 0, err
		}
	}
	dk := TaskKey{Analysis: spec.Analysis, Step: spec.Step}
	if s.dedup != nil && s.dedup[dk] {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %s@%d", ErrDuplicateTask, spec.Analysis, spec.Step)
	}
	if len(s.waiting) == 0 && s.bound > 0 && s.boundDepthLocked(spec.Tenant) >= s.bound {
		s.mu.Unlock()
		return 0, ErrQueueFull
	}
	if s.dedup != nil {
		s.dedup[dk] = true
	}
	s.nextID++
	t := Task{
		ID:       s.nextID,
		Analysis: spec.Analysis,
		Step:     spec.Step,
		Inputs:   spec.Inputs,
		Deadline: spec.Deadline,
		Shaped:   spec.Shaped,
		Credited: spec.Credited,
		Tenant:   spec.Tenant,
		Probe:    spec.Probe,
	}
	if len(s.waiting) > 0 {
		w := s.waiting[0]
		s.waiting = s.waiting[1:]
		s.assigned++
		s.mu.Unlock()
		s.observeSubmit(t)
		w.ch <- t
		return t.ID, nil
	}
	if s.fair {
		s.ensureTenantLocked(t.Tenant)
		s.tq[t.Tenant] = append(s.tq[t.Tenant], t)
	} else {
		s.queue = append(s.queue, t)
	}
	s.mu.Unlock()
	s.observeSubmit(t)
	return t.ID, nil
}

// boundDepthLocked is the queue depth the bound applies to: the
// submitting tenant's own queue in fair mode (per-tenant bulkhead),
// the global queue otherwise.
func (s *Service) boundDepthLocked(tenant string) int {
	if s.fair {
		return len(s.tq[tenant])
	}
	return len(s.queue)
}

// Requeue puts a failed task back at the head of the queue — it was
// the oldest outstanding work, so FCFS order is preserved and the next
// free bucket picks it up — incrementing its attempt count. If a
// bucket is already waiting the task is handed over immediately.
// Requeueing on a closed service fails with ErrClosed, in which case
// the caller must dead-letter the task itself.
func (s *Service) Requeue(t Task) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	t.Attempts++
	s.requeues++
	if len(s.waiting) > 0 {
		w := s.waiting[0]
		s.waiting = s.waiting[1:]
		s.assigned++
		s.mu.Unlock()
		s.observeRequeue(t)
		w.ch <- t
		return nil
	}
	if s.fair {
		// Fair mode keeps a dedicated head lane so a requeue neither
		// jumps another tenant's DRR turn nor waits behind it.
		s.head = append(s.head, t)
	} else {
		s.queue = append([]Task{t}, s.queue...)
	}
	s.mu.Unlock()
	s.observeRequeue(t)
	return nil
}

// Requeues returns the total number of task requeues.
func (s *Service) Requeues() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requeues
}

// BucketReady records a bucket-ready event and blocks until a task is
// assigned or the service closes. Buckets are served strictly in the
// order their requests arrived.
func (s *Service) BucketReady() (Task, error) {
	return s.BucketReadyCancel(nil)
}

// BucketReadyCancel is BucketReady with a cancellation channel: when
// `cancel` fires before a task is assigned the wait unwinds with
// ErrCancelled, the path a retiring bucket takes out of the pool. If
// an assignment races the cancel, the task wins — it was already
// committed to this bucket and must not be lost. A nil cancel channel
// behaves exactly like BucketReady.
func (s *Service) BucketReadyCancel(cancel <-chan struct{}) (Task, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Task{}, ErrClosed
	}
	if t, ok := s.nextTaskLocked(); ok {
		s.assigned++
		s.mu.Unlock()
		return t, nil
	}
	w := &waiter{ch: make(chan Task, 1)}
	s.waiting = append(s.waiting, w)
	s.mu.Unlock()
	if cancel == nil {
		t, ok := <-w.ch
		if !ok {
			return Task{}, ErrClosed
		}
		return t, nil
	}
	select {
	case t, ok := <-w.ch:
		if !ok {
			return Task{}, ErrClosed
		}
		return t, nil
	case <-cancel:
		s.mu.Lock()
		for i, o := range s.waiting {
			if o == w {
				s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
				s.mu.Unlock()
				return Task{}, ErrCancelled
			}
		}
		s.mu.Unlock()
		// Not on the list: an assignment or Close raced the cancel and
		// already owns this waiter — honour whichever arrives.
		t, ok := <-w.ch
		if !ok {
			return Task{}, ErrClosed
		}
		return t, nil
	}
}

// QueueDepth returns the number of tasks waiting for a bucket.
func (s *Service) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fair {
		n := len(s.head)
		for _, q := range s.tq {
			n += len(q)
		}
		return n
	}
	return len(s.queue)
}

// QueueDepthT returns one tenant's queued (unassigned, non-requeue)
// task count — the per-bulkhead pressure signal each tenant's
// admission ladder consumes so one tenant's backlog does not degrade
// the others. In FCFS mode it falls back to the global depth.
func (s *Service) QueueDepthT(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fair {
		return len(s.tq[tenant])
	}
	return len(s.queue)
}

// FreeBuckets returns the number of buckets currently waiting for work.
func (s *Service) FreeBuckets() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiting)
}

// Assigned returns the total number of tasks handed to buckets.
func (s *Service) Assigned() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.assigned
}

// Close shuts the task queue down: waiting buckets receive ErrClosed
// and future submissions fail. Descriptor queries remain usable.
func (s *Service) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, w := range s.waiting {
		close(w.ch)
	}
	s.waiting = nil
}

// ServerRPCs returns the per-shard RPC counts, exposing the hash
// balance across servers.
func (s *Service) ServerRPCs() []int64 {
	out := make([]int64, len(s.servers))
	for i, sv := range s.servers {
		sv.mu.Lock()
		out[i] = sv.rpcs
		sv.mu.Unlock()
	}
	return out
}
