package dataspaces

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"insitu/internal/dart"
	"insitu/internal/grid"
	"insitu/internal/netsim"
)

func newService(t *testing.T, servers int) *Service {
	t.Helper()
	f := dart.NewFabric(netsim.New(netsim.Gemini()))
	s, err := New(f, servers)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutQuery(t *testing.T) {
	s := newService(t, 4)
	d1 := Descriptor{Name: "subtree", Version: 3, Rank: 0,
		Box: grid.NewBox(4, 4, 4)}
	d2 := Descriptor{Name: "subtree", Version: 3, Rank: 1,
		Box: grid.Box{Lo: [3]int{4, 0, 0}, Hi: [3]int{8, 4, 4}}}
	s.Put(d1)
	s.Put(d2)
	got := s.Query("subtree", 3)
	if len(got) != 2 {
		t.Fatalf("want 2 descriptors, got %d", len(got))
	}
	if len(s.Query("subtree", 4)) != 0 {
		t.Fatal("wrong version must return nothing")
	}
	if len(s.Query("other", 3)) != 0 {
		t.Fatal("wrong name must return nothing")
	}
}

func TestQueryBox(t *testing.T) {
	s := newService(t, 2)
	for i := 0; i < 4; i++ {
		s.Put(Descriptor{Name: "T", Version: 1, Rank: i,
			Box: grid.Box{Lo: [3]int{4 * i, 0, 0}, Hi: [3]int{4 * (i + 1), 4, 4}}})
	}
	hits := s.QueryBox("T", 1, grid.Box{Lo: [3]int{6, 0, 0}, Hi: [3]int{10, 4, 4}})
	if len(hits) != 2 {
		t.Fatalf("spatial query: want 2 hits, got %d", len(hits))
	}
}

func TestRemove(t *testing.T) {
	s := newService(t, 2)
	s.Put(Descriptor{Name: "T", Version: 1})
	s.Remove("T", 1)
	if len(s.Query("T", 1)) != 0 {
		t.Fatal("descriptors must be gone after remove")
	}
}

func TestTaskQueueFCFS(t *testing.T) {
	s := newService(t, 1)
	// Submit three tasks with no buckets waiting.
	for step := 1; step <= 3; step++ {
		if _, err := s.SubmitTask("topology", step, nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.QueueDepth() != 3 {
		t.Fatalf("queue depth: want 3, got %d", s.QueueDepth())
	}
	// Tasks come out in submission order.
	for step := 1; step <= 3; step++ {
		task, err := s.BucketReady()
		if err != nil {
			t.Fatal(err)
		}
		if task.Step != step {
			t.Fatalf("FCFS violated: want step %d, got %d", step, task.Step)
		}
	}
	if s.Assigned() != 3 {
		t.Fatalf("assigned count: want 3, got %d", s.Assigned())
	}
}

func TestBucketReadyBlocksUntilTask(t *testing.T) {
	s := newService(t, 1)
	got := make(chan Task, 1)
	go func() {
		task, err := s.BucketReady()
		if err == nil {
			got <- task
		}
	}()
	// Give the bucket time to register as free.
	for i := 0; i < 100 && s.FreeBuckets() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.FreeBuckets() != 1 {
		t.Fatal("bucket should be on the free list")
	}
	if _, err := s.SubmitTask("stats", 9, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case task := <-got:
		if task.Step != 9 {
			t.Fatalf("wrong task delivered: %+v", task)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiting bucket never received the task")
	}
}

func TestCloseUnblocksBuckets(t *testing.T) {
	s := newService(t, 1)
	errs := make(chan error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.BucketReady()
			errs <- err
		}()
	}
	for i := 0; i < 100 && s.FreeBuckets() < 3; i++ {
		time.Sleep(time.Millisecond)
	}
	s.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != ErrClosed {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	}
	if _, err := s.SubmitTask("x", 1, nil); err != ErrClosed {
		t.Fatalf("submit after close: want ErrClosed, got %v", err)
	}
	if _, err := s.BucketReady(); err != ErrClosed {
		t.Fatalf("bucket-ready after close: want ErrClosed, got %v", err)
	}
	s.Close() // idempotent
}

func TestServerSharding(t *testing.T) {
	s := newService(t, 8)
	// Many distinct keys should spread across shards.
	for v := 0; v < 400; v++ {
		s.Put(Descriptor{Name: fmt.Sprintf("var-%d", v%10), Version: v})
	}
	rpcs := s.ServerRPCs()
	nonEmpty := 0
	var total int64
	for _, c := range rpcs {
		if c > 0 {
			nonEmpty++
		}
		total += c
	}
	if total != 400 {
		t.Fatalf("rpc total: want 400, got %d", total)
	}
	if nonEmpty < 6 {
		t.Fatalf("hashing should spread load over most of 8 servers, hit %d", nonEmpty)
	}
	// Balance: no server should hold more than half the traffic.
	for i, c := range rpcs {
		if c > 200 {
			t.Fatalf("server %d is a hotspot with %d of 400 rpcs", i, c)
		}
	}
}

func TestSameKeySameShard(t *testing.T) {
	s := newService(t, 8)
	s.Put(Descriptor{Name: "T", Version: 5, Rank: 0})
	s.Put(Descriptor{Name: "T", Version: 5, Rank: 1})
	// Both descriptors must be retrievable together (same shard).
	if got := s.Query("T", 5); len(got) != 2 {
		t.Fatalf("want 2, got %d", len(got))
	}
}

func TestNewValidation(t *testing.T) {
	f := dart.NewFabric(netsim.New(netsim.Gemini()))
	if _, err := New(f, 0); err == nil {
		t.Fatal("zero servers must error")
	}
}

func TestNilFabricAllowed(t *testing.T) {
	s, err := New(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(Descriptor{Name: "x", Version: 1}) // must not panic on rpcCost
	if len(s.Query("x", 1)) != 1 {
		t.Fatal("query failed without fabric")
	}
}

func TestConcurrentSubmitAndPull(t *testing.T) {
	s := newService(t, 4)
	const tasks = 200
	var wg sync.WaitGroup
	seen := make(chan int64, tasks)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				task, err := s.BucketReady()
				if err != nil {
					return
				}
				seen <- task.ID
			}
		}()
	}
	for i := 0; i < tasks; i++ {
		if _, err := s.SubmitTask("a", i, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[int64]bool)
	for i := 0; i < tasks; i++ {
		select {
		case id := <-seen:
			if got[id] {
				t.Fatalf("task %d delivered twice", id)
			}
			got[id] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled after %d tasks", i)
		}
	}
	s.Close()
	wg.Wait()
}
