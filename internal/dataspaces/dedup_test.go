package dataspaces

import (
	"errors"
	"testing"

	"insitu/internal/grid"
)

// TestPutReplacesSameRank: re-registering a (Name, Version, Rank)
// descriptor — the journal-replay case — replaces the stale handle
// instead of doubling the task's inputs.
func TestPutReplacesSameRank(t *testing.T) {
	s := newService(t, 2)
	s.Put(Descriptor{Name: "viz", Version: 7, Rank: 0, Box: grid.NewBox(4, 4, 4)})
	s.Put(Descriptor{Name: "viz", Version: 7, Rank: 1, Box: grid.NewBox(4, 4, 4)})
	// Replay of rank 0's registration with a new handle.
	s.Put(Descriptor{Name: "viz", Version: 7, Rank: 0, Box: grid.NewBox(8, 4, 4)})
	got := s.Query("viz", 7)
	if len(got) != 2 {
		t.Fatalf("want 2 descriptors after replayed Put, got %d", len(got))
	}
	for _, d := range got {
		if d.Rank == 0 && d.Box != grid.NewBox(8, 4, 4) {
			t.Fatalf("rank 0 descriptor not replaced: %+v", d)
		}
	}
}

// TestSubmitDedup: with dedup enabled, a second submission of the same
// (analysis, step) — or one seeded as already committed — fails with
// the typed ErrDuplicateTask, and other keys are unaffected.
func TestSubmitDedup(t *testing.T) {
	s := newService(t, 1)
	s.EnableDedup([]TaskKey{{Analysis: "stats", Step: 2}})

	if _, err := s.SubmitTask("stats", 3, nil); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if _, err := s.SubmitTask("stats", 3, nil); !errors.Is(err, ErrDuplicateTask) {
		t.Fatalf("duplicate submit: err = %v, want ErrDuplicateTask", err)
	}
	if _, err := s.SubmitTask("stats", 2, nil); !errors.Is(err, ErrDuplicateTask) {
		t.Fatalf("seeded-committed submit: err = %v, want ErrDuplicateTask", err)
	}
	if _, err := s.SubmitTask("viz", 3, nil); err != nil {
		t.Fatalf("different analysis, same step: %v", err)
	}
	if d := s.QueueDepth(); d != 2 {
		t.Fatalf("queue depth = %d, want 2", d)
	}
}

// TestSubmitDedupQueueFull: a key rejected by the queue bound is not
// marked done — backpressure shedding must not poison the dedup set.
func TestSubmitDedupQueueFull(t *testing.T) {
	s := newService(t, 1)
	s.EnableDedup(nil)
	s.SetQueueBound(1)
	if _, err := s.SubmitTask("stats", 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitTask("stats", 2, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("bounded submit: err = %v, want ErrQueueFull", err)
	}
	s.SetQueueBound(0)
	if _, err := s.SubmitTask("stats", 2, nil); err != nil {
		t.Fatalf("resubmit after backpressure: %v", err)
	}
}
