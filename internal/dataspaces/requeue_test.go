package dataspaces

import (
	"testing"
	"time"
)

// TestRequeuePreservesFCFS: a requeued task goes to the head of the
// queue — it is the oldest outstanding work — with its attempt count
// incremented.
func TestRequeuePreservesFCFS(t *testing.T) {
	s := newService(t, 1)
	if _, err := s.SubmitTask("a", 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitTask("a", 2, nil); err != nil {
		t.Fatal(err)
	}
	first, err := s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if first.Step != 1 || first.Attempts != 0 {
		t.Fatalf("unexpected first task %+v", first)
	}
	// The bucket "crashes": its task goes back to the front.
	if err := s.Requeue(first); err != nil {
		t.Fatal(err)
	}
	again, err := s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if again.Step != 1 {
		t.Fatalf("requeued task must be served before younger work, got step %d", again.Step)
	}
	if again.Attempts != 1 {
		t.Fatalf("requeue must increment attempts, got %d", again.Attempts)
	}
	next, err := s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if next.Step != 2 {
		t.Fatalf("younger task must follow, got step %d", next.Step)
	}
	if s.Requeues() != 1 {
		t.Fatalf("requeue counter %d, want 1", s.Requeues())
	}
}

// TestRequeueHandsToWaitingBucket: a free bucket waiting on
// BucketReady receives the requeued task immediately.
func TestRequeueHandsToWaitingBucket(t *testing.T) {
	s := newService(t, 1)
	got := make(chan Task, 1)
	go func() {
		task, err := s.BucketReady()
		if err == nil {
			got <- task
		}
	}()
	// Let the bucket park itself, then requeue into it.
	for i := 0; i < 100 && s.FreeBuckets() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if err := s.Requeue(Task{ID: 7, Analysis: "a", Step: 3, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case task := <-got:
		if task.ID != 7 || task.Attempts != 2 {
			t.Fatalf("waiting bucket got %+v", task)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("requeue never reached the waiting bucket")
	}
	s.Close()
}

// TestRequeueAfterCloseErrors: the caller must dead-letter when the
// service is gone.
func TestRequeueAfterCloseErrors(t *testing.T) {
	s := newService(t, 1)
	s.Close()
	if err := s.Requeue(Task{ID: 1}); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

// TestSubmitTaskDeadline threads the deadline through to the bucket.
func TestSubmitTaskDeadline(t *testing.T) {
	s := newService(t, 1)
	dl := time.Now().Add(time.Hour)
	if _, err := s.SubmitTaskDeadline("a", 1, nil, dl); err != nil {
		t.Fatal(err)
	}
	task, err := s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if !task.Deadline.Equal(dl) {
		t.Fatalf("deadline lost: %v", task.Deadline)
	}
}
