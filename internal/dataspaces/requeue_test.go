package dataspaces

import (
	"sync"
	"testing"
	"time"
)

// TestRequeuePreservesFCFS: a requeued task goes to the head of the
// queue — it is the oldest outstanding work — with its attempt count
// incremented.
func TestRequeuePreservesFCFS(t *testing.T) {
	s := newService(t, 1)
	if _, err := s.SubmitTask("a", 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitTask("a", 2, nil); err != nil {
		t.Fatal(err)
	}
	first, err := s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if first.Step != 1 || first.Attempts != 0 {
		t.Fatalf("unexpected first task %+v", first)
	}
	// The bucket "crashes": its task goes back to the front.
	if err := s.Requeue(first); err != nil {
		t.Fatal(err)
	}
	again, err := s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if again.Step != 1 {
		t.Fatalf("requeued task must be served before younger work, got step %d", again.Step)
	}
	if again.Attempts != 1 {
		t.Fatalf("requeue must increment attempts, got %d", again.Attempts)
	}
	next, err := s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if next.Step != 2 {
		t.Fatalf("younger task must follow, got step %d", next.Step)
	}
	if s.Requeues() != 1 {
		t.Fatalf("requeue counter %d, want 1", s.Requeues())
	}
}

// TestRequeueHandsToWaitingBucket: a free bucket waiting on
// BucketReady receives the requeued task immediately.
func TestRequeueHandsToWaitingBucket(t *testing.T) {
	s := newService(t, 1)
	got := make(chan Task, 1)
	go func() {
		task, err := s.BucketReady()
		if err == nil {
			got <- task
		}
	}()
	// Let the bucket park itself, then requeue into it.
	for i := 0; i < 100 && s.FreeBuckets() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if err := s.Requeue(Task{ID: 7, Analysis: "a", Step: 3, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case task := <-got:
		if task.ID != 7 || task.Attempts != 2 {
			t.Fatalf("waiting bucket got %+v", task)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("requeue never reached the waiting bucket")
	}
	s.Close()
}

// TestRequeueAfterCloseErrors: the caller must dead-letter when the
// service is gone.
func TestRequeueAfterCloseErrors(t *testing.T) {
	s := newService(t, 1)
	s.Close()
	if err := s.Requeue(Task{ID: 1}); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

// TestConcurrentRequeueOrdering: several buckets failing at once all
// push their tasks back to the head of the queue. The relative order
// among the racing requeues is scheduler-dependent, but every requeued
// (older) task must still be served before any younger queued work,
// each with its attempt count bumped exactly once.
func TestConcurrentRequeueOrdering(t *testing.T) {
	const old, young = 4, 3
	s := newService(t, 1)
	for i := 0; i < old; i++ {
		if _, err := s.SubmitTask("a", i, nil); err != nil {
			t.Fatal(err)
		}
	}
	assigned := make([]Task, old)
	for i := range assigned {
		task, err := s.BucketReady()
		if err != nil {
			t.Fatal(err)
		}
		assigned[i] = task
	}
	// Younger work arrives while the old tasks are in flight.
	for i := 0; i < young; i++ {
		if _, err := s.SubmitTask("a", 100+i, nil); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, task := range assigned {
		wg.Add(1)
		go func(task Task) {
			defer wg.Done()
			if err := s.Requeue(task); err != nil {
				t.Error(err)
			}
		}(task)
	}
	wg.Wait()
	if s.Requeues() != old {
		t.Fatalf("requeue counter %d, want %d", s.Requeues(), old)
	}
	seen := make(map[int]bool)
	for i := 0; i < old; i++ {
		task, err := s.BucketReady()
		if err != nil {
			t.Fatal(err)
		}
		if task.Step >= 100 {
			t.Fatalf("younger task (step %d) served before a requeued one", task.Step)
		}
		if task.Attempts != 1 {
			t.Fatalf("step %d: attempts = %d, want 1", task.Step, task.Attempts)
		}
		if seen[task.Step] {
			t.Fatalf("step %d served twice", task.Step)
		}
		seen[task.Step] = true
	}
	for i := 0; i < young; i++ {
		task, err := s.BucketReady()
		if err != nil {
			t.Fatal(err)
		}
		if task.Step != 100+i {
			t.Fatalf("younger work out of order: got step %d, want %d", task.Step, 100+i)
		}
	}
}

// TestRequeueKeepsCredit: the flow-control credit rides the task across
// requeues — a requeue must NOT release it (the work is still in the
// transit tier) and the eventual FinishTask settles it exactly once.
func TestRequeueKeepsCredit(t *testing.T) {
	s := newService(t, 1)
	if err := s.EnableCredits(2, nil); err != nil {
		t.Fatal(err)
	}
	if !s.Credits().Acquire("a") {
		t.Fatal("acquire must succeed")
	}
	if _, err := s.SubmitSpec(TaskSpec{Analysis: "a", Step: 1, Credited: true}); err != nil {
		t.Fatal(err)
	}
	task, err := s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Requeue(task); err != nil {
		t.Fatal(err)
	}
	if got := s.Credits().Outstanding(); got != 1 {
		t.Fatalf("requeue must not settle the credit, outstanding=%d", got)
	}
	task, err = s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if !task.Credited {
		t.Fatal("Credited flag lost across requeue")
	}
	s.FinishTask(task)
	if got := s.Credits().Outstanding(); got != 0 {
		t.Fatalf("outstanding=%d after FinishTask, want 0", got)
	}
}

// TestSubmitTaskDeadline threads the deadline through to the bucket.
func TestSubmitTaskDeadline(t *testing.T) {
	s := newService(t, 1)
	dl := time.Now().Add(time.Hour)
	if _, err := s.SubmitTaskDeadline("a", 1, nil, dl); err != nil {
		t.Fatal(err)
	}
	task, err := s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if !task.Deadline.Equal(dl) {
		t.Fatalf("deadline lost: %v", task.Deadline)
	}
}
