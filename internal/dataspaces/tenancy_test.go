package dataspaces

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"insitu/internal/dart"
	"insitu/internal/netsim"
)

func newTestService(t *testing.T, servers int) *Service {
	t.Helper()
	f := dart.NewFabric(netsim.New(netsim.Gemini()))
	s, err := New(f, servers)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func submitT(t *testing.T, s *Service, tenant, analysis string, step int) {
	t.Helper()
	if _, err := s.SubmitSpec(TaskSpec{Tenant: tenant, Analysis: analysis, Step: step}); err != nil {
		t.Fatalf("submit %s/%s@%d: %v", tenant, analysis, step, err)
	}
}

// drainOrder pops n tasks and returns their tenants in dequeue order.
func drainOrder(t *testing.T, s *Service, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		task, err := s.BucketReady()
		if err != nil {
			t.Fatalf("bucket ready %d: %v", i, err)
		}
		out = append(out, task.Tenant)
	}
	return out
}

func TestFairDequeueRoundRobin(t *testing.T) {
	s := newTestService(t, 1)
	s.EnableFairDequeue(map[string]int{"a": 1, "b": 1, "c": 1})

	// Tenant a floods; b and c each submit two.
	for i := 0; i < 6; i++ {
		submitT(t, s, "a", "viz", i)
	}
	for i := 0; i < 2; i++ {
		submitT(t, s, "b", "viz", i)
		submitT(t, s, "c", "viz", i)
	}

	got := drainOrder(t, s, 10)
	// Interleaved while all three have work; once b and c drain, the
	// flooder gets the leftover capacity instead of it idling.
	want := []string{"a", "b", "c", "a", "b", "c", "a", "a", "a", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order = %v, want %v", got, want)
		}
	}
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", d)
	}
}

func TestFairDequeueWeights(t *testing.T) {
	s := newTestService(t, 1)
	s.EnableFairDequeue(map[string]int{"heavy": 2, "light": 1})
	for i := 0; i < 6; i++ {
		submitT(t, s, "heavy", "viz", i)
	}
	for i := 0; i < 3; i++ {
		submitT(t, s, "light", "viz", i)
	}
	got := drainOrder(t, s, 9)
	want := []string{"heavy", "heavy", "light", "heavy", "heavy", "light", "heavy", "heavy", "light"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order = %v, want %v", got, want)
		}
	}
}

func TestFairDequeueHeadRequeueJumpsRing(t *testing.T) {
	s := newTestService(t, 1)
	s.EnableFairDequeue(map[string]int{"a": 1, "b": 1})
	for i := 0; i < 3; i++ {
		submitT(t, s, "a", "viz", i)
		submitT(t, s, "b", "viz", i)
	}
	first, err := s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if first.Tenant != "a" {
		t.Fatalf("first dequeue tenant = %q, want a", first.Tenant)
	}
	// Requeue it: it must come back before any tenant queue is served,
	// with its attempt counted.
	if err := s.Requeue(first); err != nil {
		t.Fatal(err)
	}
	back, err := s.BucketReady()
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != first.ID || back.Attempts != 1 {
		t.Fatalf("requeued task = id %d attempts %d, want id %d attempts 1", back.ID, back.Attempts, first.ID)
	}
}

func TestFairDequeuePerTenantBound(t *testing.T) {
	s := newTestService(t, 1)
	s.EnableFairDequeue(map[string]int{"a": 1, "b": 1})
	s.SetQueueBound(2)
	// Tenant a fills its own bulkhead...
	submitT(t, s, "a", "viz", 0)
	submitT(t, s, "a", "viz", 1)
	if _, err := s.SubmitSpec(TaskSpec{Tenant: "a", Analysis: "viz", Step: 2}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-bound submit err = %v, want ErrQueueFull", err)
	}
	// ...but b's bulkhead is unaffected.
	submitT(t, s, "b", "viz", 0)
	submitT(t, s, "b", "viz", 1)
	if got := s.QueueDepthT("a"); got != 2 {
		t.Fatalf("QueueDepthT(a) = %d, want 2", got)
	}
	if got := s.QueueDepthT("b"); got != 2 {
		t.Fatalf("QueueDepthT(b) = %d, want 2", got)
	}
	if got := s.QueueDepth(); got != 4 {
		t.Fatalf("QueueDepth = %d, want 4", got)
	}
}

func TestFairDequeueUnknownTenantJoinsRing(t *testing.T) {
	s := newTestService(t, 1)
	s.EnableFairDequeue(map[string]int{"b": 1})
	submitT(t, s, "b", "viz", 0)
	// A tenant never named in the weights map sorts into the ring with
	// weight 1 instead of being dropped.
	submitT(t, s, "a", "viz", 0)
	got := drainOrder(t, s, 2)
	if len(got) != 2 || (got[0] == got[1]) {
		t.Fatalf("dequeue order = %v, want one task from each tenant", got)
	}
}

func TestBucketReadyCancel(t *testing.T) {
	s := newTestService(t, 1)
	cancel := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := s.BucketReadyCancel(cancel)
		errc <- err
	}()
	// Let the waiter park, then cancel.
	for i := 0; i < 100 && s.FreeBuckets() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.FreeBuckets() != 1 {
		t.Fatal("waiter never parked")
	}
	close(cancel)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("cancelled wait err = %v, want ErrCancelled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled wait never returned")
	}
	if s.FreeBuckets() != 0 {
		t.Fatalf("free buckets after cancel = %d, want 0 (waiter removed)", s.FreeBuckets())
	}
	// The service still assigns normally afterwards.
	submitT(t, s, "", "viz", 0)
	if task, err := s.BucketReady(); err != nil || task.Analysis != "viz" {
		t.Fatalf("post-cancel assignment = %v task %+v", err, task)
	}
}

func TestBucketReadyCancelAssignmentWins(t *testing.T) {
	// Hammer the race between cancel and assignment: every submitted
	// task must be either delivered or still queued — never lost.
	s := newTestService(t, 1)
	for round := 0; round < 200; round++ {
		cancel := make(chan struct{})
		got := make(chan error, 1)
		go func() {
			_, err := s.BucketReadyCancel(cancel)
			got <- err
		}()
		go close(cancel)
		_, serr := s.SubmitSpec(TaskSpec{Analysis: "viz", Step: round})
		if serr != nil {
			t.Fatalf("submit: %v", serr)
		}
		err := <-got
		switch {
		case err == nil:
			// Task delivered to the cancelled waiter: nothing queued.
		case errors.Is(err, ErrCancelled):
			// Waiter unwound first: the task must be in the queue.
			task, rerr := s.BucketReady()
			if rerr != nil || task.Step != round {
				t.Fatalf("round %d: task lost after cancel (err %v, task %+v)", round, rerr, task)
			}
		default:
			t.Fatalf("round %d: unexpected err %v", round, err)
		}
		if d := s.QueueDepth(); d != 0 {
			t.Fatalf("round %d: queue depth %d, want 0", round, d)
		}
	}
}

func TestAdmissionGuard(t *testing.T) {
	s := newTestService(t, 1)
	guardErr := errors.New("quarantined")
	s.SetAdmissionGuard(func(tenant, analysis string, probe bool) error {
		if tenant == "noisy" && analysis == "poison" && !probe {
			return guardErr
		}
		return nil
	})
	if _, err := s.SubmitSpec(TaskSpec{Tenant: "noisy", Analysis: "poison"}); !errors.Is(err, guardErr) {
		t.Fatalf("guarded submit err = %v, want guard error", err)
	}
	// Probes and other routes pass.
	if _, err := s.SubmitSpec(TaskSpec{Tenant: "noisy", Analysis: "poison", Probe: true}); err != nil {
		t.Fatalf("probe submit err = %v", err)
	}
	if _, err := s.SubmitSpec(TaskSpec{Tenant: "noisy", Analysis: "viz"}); err != nil {
		t.Fatalf("other-analysis submit err = %v", err)
	}
}

func TestTenantDescriptorNamespaces(t *testing.T) {
	s := newTestService(t, 4)
	for _, tn := range []string{"a", "b"} {
		s.Put(Descriptor{Tenant: tn, Name: "viz", Version: 3, Rank: 0})
	}
	if got := len(s.QueryT("a", "viz", 3)); got != 1 {
		t.Fatalf("QueryT(a) = %d descriptors, want 1", got)
	}
	// Tenant-less namespace is untouched by tenant puts.
	if got := len(s.Query("viz", 3)); got != 0 {
		t.Fatalf("Query(tenantless) = %d descriptors, want 0", got)
	}
	s.RemoveT("a", "viz", 3)
	if got := len(s.QueryT("a", "viz", 3)); got != 0 {
		t.Fatalf("after RemoveT(a): %d descriptors", got)
	}
	if got := len(s.QueryT("b", "viz", 3)); got != 1 {
		t.Fatalf("RemoveT(a) touched tenant b: %d descriptors, want 1", got)
	}
}

func TestTenantCreditAccountSettlement(t *testing.T) {
	s := newTestService(t, 1)
	if err := s.EnableCredits(4, map[string]int{"a": 1, "b": 1}); err != nil {
		t.Fatal(err)
	}
	c := s.Credits()
	if !c.Acquire("a") {
		t.Fatal("acquire a")
	}
	// A credited tenant task settles against the tenant account, not
	// the analysis name.
	s.FinishTask(Task{Tenant: "a", Analysis: "viz", Credited: true})
	out, avail, total := c.Snapshot()
	if out != 0 || avail != total {
		t.Fatalf("after settle: outstanding %d available %d total %d", out, avail, total)
	}
}

// TestCreditsInvariantConcurrent is the race-enabled multi-account
// invariant check: Outstanding + Available == Total must hold at every
// instant while many goroutines acquire, settle, and snapshot across
// tenant accounts.
func TestCreditsInvariantConcurrent(t *testing.T) {
	c, err := NewCredits(12, map[string]int{"a": 2, "b": 2, "c": 2})
	if err != nil {
		t.Fatal(err)
	}
	accounts := []string{"a", "b", "c", "d"} // d has no reservation
	var wg sync.WaitGroup
	stop := make(chan struct{})
	violation := make(chan string, 1)

	// Churners: acquire then release on their own account.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			acct := accounts[g%len(accounts)]
			for i := 0; i < 2000; i++ {
				if c.Acquire(acct) {
					c.Release(acct)
				}
			}
		}(g)
	}
	// Invariant watcher: atomic snapshots while the churn runs.
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			out, avail, total := c.Snapshot()
			if out+avail != total {
				select {
				case violation <- fmt.Sprintf("%d + %d != %d", out, avail, total):
				default:
				}
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-watcherDone
	select {
	case v := <-violation:
		t.Fatalf("credits invariant broken mid-churn: %s", v)
	default:
	}

	out, avail, total := c.Snapshot()
	if out != 0 || avail != total || total != 12 {
		t.Fatalf("final state: outstanding %d available %d total %d", out, avail, total)
	}
	if c.Acquire("d") && c.Acquire("a") {
		c.Release("a")
		c.Release("d")
	}
	out, avail, total = c.Snapshot()
	if out+avail != total {
		t.Fatalf("invariant broken after mixed settle: %d + %d != %d", out, avail, total)
	}
}
