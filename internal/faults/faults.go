// Package faults is the deterministic, seed-driven fault-injection
// layer of the chaos fabric. It decides, per transfer attempt, whether
// the simulated interconnect misbehaves and how: a dropped transfer, a
// stalled transfer that times out, payload corruption (bit flips on the
// wire), a transient bandwidth collapse, or a link partition window
// cutting a set of endpoints off from the rest of the fabric.
//
// Decisions are drawn from a single seeded PRNG under a mutex, so for
// a fixed seed the i-th decision of a run is always the same — the
// fault *sequence* is reproducible even though, under concurrency,
// which transfer receives which decision depends on scheduling.
// Schedules can be refined per path class (SMSG/FMA/BTE) and per
// endpoint, and partition windows are expressed in decision-index
// space so they open and close at reproducible points of the run.
//
// The package is a leaf: netsim consults an Injector at its transfer
// choke point, dart maps the resulting faults to typed errors and
// retries, and the layers above degrade gracefully.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Kind classifies an injected fault.
type Kind int

const (
	// None means the transfer proceeds unperturbed.
	None Kind = iota
	// Drop loses the transfer: no bytes arrive.
	Drop
	// Timeout stalls the transfer and then fails it.
	Timeout
	// Corrupt delivers the transfer with FlipBits bit positions
	// inverted, to be caught by checksum verification downstream.
	Corrupt
	// Slowdown delivers the transfer at collapsed bandwidth: the
	// modeled duration is multiplied by Factor.
	Slowdown
	// Partition fails the transfer because one of its endpoints is
	// inside an active partition window.
	Partition

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Timeout:
		return "timeout"
	case Corrupt:
		return "corrupt"
	case Slowdown:
		return "slowdown"
	case Partition:
		return "partition"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rates are per-attempt fault probabilities. They are evaluated in
// order drop, timeout, corrupt, slowdown against one uniform draw, so
// their sum must not exceed 1.
type Rates struct {
	Drop     float64
	Timeout  float64
	Corrupt  float64
	Slowdown float64
}

func (r Rates) zero() bool {
	return r.Drop == 0 && r.Timeout == 0 && r.Corrupt == 0 && r.Slowdown == 0
}

// Window is a link-partition interval in decision-index space: while
// the injector's global decision counter is in [From, Until), any
// transfer with a source or destination endpoint listed in Endpoints
// fails with a Partition fault.
type Window struct {
	From, Until int
	Endpoints   []int
}

func (w Window) covers(idx, from, to int) bool {
	if idx < w.From || idx >= w.Until {
		return false
	}
	for _, e := range w.Endpoints {
		if e == from || e == to {
			return true
		}
	}
	return false
}

// SlowdownWindow schedules a sustained bandwidth collapse — a staging
// brownout — in decision-index space: while the injector's global
// decision counter is in [From, Until), any transfer touching one of
// Endpoints (an empty list matches every transfer) is delivered intact
// but at collapsed bandwidth, its modeled duration multiplied by
// Factor. Unlike the probabilistic Slowdown rate, a window perturbs
// every covered attempt, which is what a slow consumer looks like: not
// occasional hiccups but a sustained drop in drain rate.
type SlowdownWindow struct {
	From, Until int
	Endpoints   []int
	// Factor multiplies the modeled duration (0 means
	// Config.SlowdownFactor).
	Factor float64
}

func (w SlowdownWindow) covers(idx, from, to int) bool {
	if idx < w.From || idx >= w.Until {
		return false
	}
	if len(w.Endpoints) == 0 {
		return true
	}
	for _, e := range w.Endpoints {
		if e == from || e == to {
			return true
		}
	}
	return false
}

// Config describes a fault schedule.
type Config struct {
	// Seed drives the PRNG; the same seed reproduces the same
	// decision sequence for the same sequence of Decide calls.
	Seed int64
	// Default rates apply to every transfer attempt.
	Default Rates
	// PerPath overrides the rates for a path class (int(netsim.Path)).
	PerPath map[int]Rates
	// PerEndpoint overrides the rates for transfers whose source or
	// destination is the given endpoint id. Endpoint overrides take
	// precedence over path overrides.
	PerEndpoint map[int]Rates
	// Partitions are the scheduled link-partition windows.
	Partitions []Window
	// Slowdowns are the scheduled bandwidth-collapse (brownout)
	// windows. Partitions take precedence when both cover an attempt.
	Slowdowns []SlowdownWindow
	// CorruptBits is the number of bit flips per corruption
	// (default 3).
	CorruptBits int
	// SlowdownFactor multiplies the modeled duration of a
	// bandwidth-collapsed transfer (default 10).
	SlowdownFactor float64
	// TimeoutDelay is the modeled stall before a timed-out transfer
	// fails (default 500µs).
	TimeoutDelay time.Duration
}

// Decision is the injector's verdict for one transfer attempt.
type Decision struct {
	Kind Kind
	// FlipBits are bit offsets into the payload to invert (Corrupt).
	FlipBits []int
	// Factor is the duration multiplier (Slowdown).
	Factor float64
	// Delay is the modeled stall before failure (Timeout).
	Delay time.Duration
}

// Counters is a snapshot of injected-fault counts.
type Counters struct {
	Decisions int64
	ByKind    map[Kind]int64
}

// Injected returns the total number of non-None faults injected.
func (c Counters) Injected() int64 {
	var n int64
	for k, v := range c.ByKind {
		if k != None {
			n += v
		}
	}
	return n
}

// Injector draws fault decisions from a seeded PRNG.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	cfg    Config
	n      int
	counts [numKinds]int64
}

// New creates an injector for the given schedule.
func New(cfg Config) *Injector {
	if cfg.CorruptBits <= 0 {
		cfg.CorruptBits = 3
	}
	if cfg.SlowdownFactor <= 1 {
		cfg.SlowdownFactor = 10
	}
	if cfg.TimeoutDelay <= 0 {
		cfg.TimeoutDelay = 500 * time.Microsecond
	}
	return &Injector{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// rates resolves the schedule for one transfer: endpoint override
// first (source, then destination), then path override, then default.
func (inj *Injector) rates(from, to, path int) Rates {
	if r, ok := inj.cfg.PerEndpoint[from]; ok {
		return r
	}
	if r, ok := inj.cfg.PerEndpoint[to]; ok {
		return r
	}
	if r, ok := inj.cfg.PerPath[path]; ok {
		return r
	}
	return inj.cfg.Default
}

// Decide returns the fault decision for one transfer attempt of `size`
// bytes from endpoint `from` to endpoint `to` over path class `path`.
// Negative endpoint ids mean "unattributed" and only match default and
// per-path schedules.
func (inj *Injector) Decide(from, to, path, size int) Decision {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	idx := inj.n
	inj.n++
	dec := inj.decideLocked(idx, from, to, path, size)
	inj.counts[dec.Kind]++
	return dec
}

func (inj *Injector) decideLocked(idx, from, to, path, size int) Decision {
	for _, w := range inj.cfg.Partitions {
		if w.covers(idx, from, to) {
			return Decision{Kind: Partition}
		}
	}
	for _, w := range inj.cfg.Slowdowns {
		if w.covers(idx, from, to) {
			f := w.Factor
			if f <= 1 {
				f = inj.cfg.SlowdownFactor
			}
			return Decision{Kind: Slowdown, Factor: f}
		}
	}
	r := inj.rates(from, to, path)
	if r.zero() {
		return Decision{Kind: None}
	}
	u := inj.rng.Float64()
	switch {
	case u < r.Drop:
		return Decision{Kind: Drop}
	case u < r.Drop+r.Timeout:
		return Decision{Kind: Timeout, Delay: inj.cfg.TimeoutDelay}
	case u < r.Drop+r.Timeout+r.Corrupt:
		if size <= 0 {
			return Decision{Kind: None}
		}
		bits := make([]int, inj.cfg.CorruptBits)
		for i := range bits {
			bits[i] = inj.rng.Intn(size * 8)
		}
		return Decision{Kind: Corrupt, FlipBits: bits}
	case u < r.Drop+r.Timeout+r.Corrupt+r.Slowdown:
		return Decision{Kind: Slowdown, Factor: inj.cfg.SlowdownFactor}
	}
	return Decision{Kind: None}
}

// Counters returns a snapshot of decision counts by kind.
func (inj *Injector) Counters() Counters {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := Counters{Decisions: int64(inj.n), ByKind: make(map[Kind]int64)}
	for k := Kind(0); k < numKinds; k++ {
		if inj.counts[k] != 0 {
			out.ByKind[k] = inj.counts[k]
		}
	}
	return out
}

// CounterMap returns the non-None injected-fault counts keyed by kind
// name, for metrics reporting without a package dependency.
func (inj *Injector) CounterMap() map[string]int64 {
	c := inj.Counters()
	out := make(map[string]int64, len(c.ByKind))
	for k, v := range c.ByKind {
		if k != None {
			out[k.String()] = v
		}
	}
	return out
}
