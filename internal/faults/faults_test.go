package faults

import (
	"testing"
)

// drain queries the injector with a fixed call sequence and returns
// the decision kinds.
func drain(inj *Injector, n int) []Kind {
	out := make([]Kind, n)
	for i := 0; i < n; i++ {
		out[i] = inj.Decide(i%4, 10+i%3, i%3, 4096).Kind
	}
	return out
}

// TestDeterministicSequence: the same seed and call sequence must
// reproduce the same fault sequence; a different seed must not.
func TestDeterministicSequence(t *testing.T) {
	cfg := Config{
		Seed:    42,
		Default: Rates{Drop: 0.1, Timeout: 0.1, Corrupt: 0.1, Slowdown: 0.1},
	}
	a := drain(New(cfg), 500)
	b := drain(New(cfg), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs under the same seed: %v vs %v", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c := drain(New(cfg), 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical fault sequence")
	}
}

// TestRatesRoughlyHonored: with a 50% drop rate, roughly half of the
// decisions must be drops.
func TestRatesRoughlyHonored(t *testing.T) {
	inj := New(Config{Seed: 7, Default: Rates{Drop: 0.5}})
	ks := drain(inj, 2000)
	drops := 0
	for _, k := range ks {
		if k == Drop {
			drops++
		}
	}
	if drops < 800 || drops > 1200 {
		t.Fatalf("50%% drop rate produced %d/2000 drops", drops)
	}
	c := inj.Counters()
	if c.ByKind[Drop] != int64(drops) || c.Decisions != 2000 {
		t.Fatalf("counters %+v inconsistent with observed %d drops", c, drops)
	}
}

// TestPartitionWindow: inside the window, transfers touching a listed
// endpoint fail with Partition; others and out-of-window transfers do
// not.
func TestPartitionWindow(t *testing.T) {
	inj := New(Config{
		Seed:       1,
		Partitions: []Window{{From: 10, Until: 20, Endpoints: []int{5}}},
	})
	for i := 0; i < 30; i++ {
		var d Decision
		if i%2 == 0 {
			d = inj.Decide(5, 1, 0, 64) // touches partitioned endpoint
		} else {
			d = inj.Decide(2, 1, 0, 64)
		}
		inWindow := i >= 10 && i < 20 && i%2 == 0
		if (d.Kind == Partition) != inWindow {
			t.Fatalf("decision %d: kind %v, want partition=%v", i, d.Kind, inWindow)
		}
	}
}

// TestPerEndpointAndPerPathOverrides: endpoint schedules beat path
// schedules beat the default.
func TestPerEndpointAndPerPathOverrides(t *testing.T) {
	inj := New(Config{
		Seed:        3,
		Default:     Rates{},
		PerPath:     map[int]Rates{2: {Drop: 1}},
		PerEndpoint: map[int]Rates{9: {Timeout: 1}},
	})
	if d := inj.Decide(0, 1, 0, 64); d.Kind != None {
		t.Fatalf("default schedule must be clean, got %v", d.Kind)
	}
	if d := inj.Decide(0, 1, 2, 64); d.Kind != Drop {
		t.Fatalf("path-2 schedule must drop, got %v", d.Kind)
	}
	if d := inj.Decide(9, 1, 2, 64); d.Kind != Timeout {
		t.Fatalf("endpoint-9 schedule must time out (beating path), got %v", d.Kind)
	}
	if d := inj.Decide(1, 9, 0, 64); d.Kind != Timeout {
		t.Fatalf("destination endpoint-9 schedule must time out, got %v", d.Kind)
	}
}

// TestCorruptDecisionShape: corruption decisions carry in-range bit
// offsets and a timeout carries a positive delay.
func TestCorruptDecisionShape(t *testing.T) {
	inj := New(Config{Seed: 11, Default: Rates{Corrupt: 1}, CorruptBits: 5})
	d := inj.Decide(0, 1, 1, 128)
	if d.Kind != Corrupt || len(d.FlipBits) != 5 {
		t.Fatalf("want 5-bit corruption, got %+v", d)
	}
	for _, b := range d.FlipBits {
		if b < 0 || b >= 128*8 {
			t.Fatalf("bit offset %d out of payload range", b)
		}
	}
	// Zero-size payloads cannot be corrupted.
	if d := inj.Decide(0, 1, 1, 0); d.Kind != None {
		t.Fatalf("zero-size corruption must downgrade to none, got %v", d.Kind)
	}
	inj2 := New(Config{Seed: 11, Default: Rates{Timeout: 1}})
	if d := inj2.Decide(0, 1, 1, 64); d.Kind != Timeout || d.Delay <= 0 {
		t.Fatalf("timeout must carry a positive delay, got %+v", d)
	}
	inj3 := New(Config{Seed: 11, Default: Rates{Slowdown: 1}})
	if d := inj3.Decide(0, 1, 1, 64); d.Kind != Slowdown || d.Factor <= 1 {
		t.Fatalf("slowdown must carry a factor > 1, got %+v", d)
	}
}

// TestCounterMap: only injected (non-None) kinds appear.
func TestCounterMap(t *testing.T) {
	inj := New(Config{Seed: 5, Default: Rates{Drop: 1}})
	inj.Decide(0, 1, 0, 64)
	m := inj.CounterMap()
	if m["drop"] != 1 || len(m) != 1 {
		t.Fatalf("counter map %v, want {drop:1}", m)
	}
	if inj.Counters().Injected() != 1 {
		t.Fatalf("injected count %d, want 1", inj.Counters().Injected())
	}
}

// TestSlowdownWindow: inside the window every covered attempt is
// slowed with the window's factor (falling back to SlowdownFactor);
// an empty endpoint list covers every transfer; outside the window
// transfers pass untouched.
func TestSlowdownWindow(t *testing.T) {
	inj := New(Config{
		Seed:           1,
		SlowdownFactor: 25,
		Slowdowns: []SlowdownWindow{
			{From: 0, Until: 2, Endpoints: []int{7}, Factor: 100},
			{From: 2, Until: 4}, // all endpoints, default factor
		},
	})
	// idx 0: endpoint 7 covered, explicit factor.
	if d := inj.Decide(7, 1, 0, 64); d.Kind != Slowdown || d.Factor != 100 {
		t.Fatalf("idx 0: %+v, want slowdown factor 100", d)
	}
	// idx 1: endpoint not listed -> unperturbed.
	if d := inj.Decide(3, 4, 0, 64); d.Kind != None {
		t.Fatalf("idx 1: %+v, want none", d)
	}
	// idx 2,3: the match-all window with the config default factor.
	for i := 0; i < 2; i++ {
		if d := inj.Decide(3, 4, 0, 64); d.Kind != Slowdown || d.Factor != 25 {
			t.Fatalf("idx %d: %+v, want slowdown factor 25", 2+i, d)
		}
	}
	// idx 4: window closed.
	if d := inj.Decide(7, 1, 0, 64); d.Kind != None {
		t.Fatalf("idx 4: %+v, want none", d)
	}
}

// TestPartitionBeatsSlowdown: when both windows cover an attempt the
// partition wins — a cut link cannot also be merely slow.
func TestPartitionBeatsSlowdown(t *testing.T) {
	inj := New(Config{
		Seed:       1,
		Partitions: []Window{{From: 0, Until: 1, Endpoints: []int{2}}},
		Slowdowns:  []SlowdownWindow{{From: 0, Until: 1}},
	})
	if d := inj.Decide(2, 5, 0, 64); d.Kind != Partition {
		t.Fatalf("got %+v, want partition", d)
	}
}
