// Package grid provides structured-grid primitives shared by the
// simulation proxy and the analysis algorithms: integer index boxes,
// regular domain decompositions, and scalar fields defined on boxes.
//
// Conventions: a Box is a half-open interval [Lo, Hi) in each of the
// three dimensions. Linearization is x-fastest (Fortran-like), matching
// the layout S3D uses for its solution vectors.
package grid

import "fmt"

// Box is an axis-aligned half-open index box [Lo, Hi) in 3-D.
// 2-D domains are represented with Lo[2]=0, Hi[2]=1.
type Box struct {
	Lo [3]int
	Hi [3]int
}

// NewBox returns the box [0,nx) x [0,ny) x [0,nz).
func NewBox(nx, ny, nz int) Box {
	return Box{Hi: [3]int{nx, ny, nz}}
}

// Dims returns the extent of the box in each dimension.
func (b Box) Dims() [3]int {
	return [3]int{b.Hi[0] - b.Lo[0], b.Hi[1] - b.Lo[1], b.Hi[2] - b.Lo[2]}
}

// Size returns the number of grid points contained in the box.
// Degenerate (inverted) boxes have size zero.
func (b Box) Size() int {
	n := 1
	for d := 0; d < 3; d++ {
		e := b.Hi[d] - b.Lo[d]
		if e <= 0 {
			return 0
		}
		n *= e
	}
	return n
}

// Empty reports whether the box contains no points.
func (b Box) Empty() bool { return b.Size() == 0 }

// Contains reports whether the point (i,j,k) lies inside the box.
func (b Box) Contains(i, j, k int) bool {
	return i >= b.Lo[0] && i < b.Hi[0] &&
		j >= b.Lo[1] && j < b.Hi[1] &&
		k >= b.Lo[2] && k < b.Hi[2]
}

// ContainsBox reports whether o is entirely inside b.
func (b Box) ContainsBox(o Box) bool {
	if o.Empty() {
		return true
	}
	for d := 0; d < 3; d++ {
		if o.Lo[d] < b.Lo[d] || o.Hi[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of two boxes. The result may be
// empty; use Empty to test.
func (b Box) Intersect(o Box) Box {
	var r Box
	for d := 0; d < 3; d++ {
		r.Lo[d] = max(b.Lo[d], o.Lo[d])
		r.Hi[d] = min(b.Hi[d], o.Hi[d])
		if r.Hi[d] < r.Lo[d] {
			r.Hi[d] = r.Lo[d]
		}
	}
	return r
}

// Union returns the smallest box containing both b and o.
func (b Box) Union(o Box) Box {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	var r Box
	for d := 0; d < 3; d++ {
		r.Lo[d] = min(b.Lo[d], o.Lo[d])
		r.Hi[d] = max(b.Hi[d], o.Hi[d])
	}
	return r
}

// Overlaps reports whether the two boxes share at least one point.
func (b Box) Overlaps(o Box) bool { return !b.Intersect(o).Empty() }

// Grow expands the box by g points in every direction (negative g
// shrinks it).
func (b Box) Grow(g int) Box {
	for d := 0; d < 3; d++ {
		b.Lo[d] -= g
		b.Hi[d] += g
	}
	return b
}

// Translate shifts the box by (di,dj,dk).
func (b Box) Translate(di, dj, dk int) Box {
	b.Lo[0] += di
	b.Hi[0] += di
	b.Lo[1] += dj
	b.Hi[1] += dj
	b.Lo[2] += dk
	b.Hi[2] += dk
	return b
}

// Index returns the linear offset of global point (i,j,k) within the
// box, x-fastest. The point must be inside the box.
func (b Box) Index(i, j, k int) int {
	d := b.Dims()
	return (i - b.Lo[0]) + d[0]*((j-b.Lo[1])+d[1]*(k-b.Lo[2]))
}

// Point returns the global coordinates of the linear offset idx.
func (b Box) Point(idx int) (i, j, k int) {
	d := b.Dims()
	i = b.Lo[0] + idx%d[0]
	idx /= d[0]
	j = b.Lo[1] + idx%d[1]
	k = b.Lo[2] + idx/d[1]
	return
}

// GlobalIndex returns a unique int64 id for point (i,j,k) within the
// global domain g. Analysis stages use these ids to identify shared
// boundary vertices across blocks.
func GlobalIndex(g Box, i, j, k int) int64 {
	d := g.Dims()
	return int64(i-g.Lo[0]) + int64(d[0])*(int64(j-g.Lo[1])+int64(d[1])*int64(k-g.Lo[2]))
}

// GlobalPoint inverts GlobalIndex.
func GlobalPoint(g Box, id int64) (i, j, k int) {
	d := g.Dims()
	i = g.Lo[0] + int(id%int64(d[0]))
	id /= int64(d[0])
	j = g.Lo[1] + int(id%int64(d[1]))
	k = g.Lo[2] + int(id/int64(d[1]))
	return
}

// OnBoundary reports whether (i,j,k) lies on the boundary of the box,
// that is, inside b but touching at least one face.
func (b Box) OnBoundary(i, j, k int) bool {
	if !b.Contains(i, j, k) {
		return false
	}
	return i == b.Lo[0] || i == b.Hi[0]-1 ||
		j == b.Lo[1] || j == b.Hi[1]-1 ||
		k == b.Lo[2] || k == b.Hi[2]-1
}

// Corners returns the up-to-8 corner points of the box (4 in 2-D,
// where the z extent is 1). The paper's boundary augmentation requires
// the sub-domain corners to be retained in every subtree.
func (b Box) Corners() [][3]int {
	if b.Empty() {
		return nil
	}
	xs := []int{b.Lo[0], b.Hi[0] - 1}
	ys := []int{b.Lo[1], b.Hi[1] - 1}
	zs := []int{b.Lo[2], b.Hi[2] - 1}
	var out [][3]int
	seen := map[[3]int]bool{}
	for _, k := range zs {
		for _, j := range ys {
			for _, i := range xs {
				p := [3]int{i, j, k}
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	return out
}

// String implements fmt.Stringer.
func (b Box) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)x[%d,%d)",
		b.Lo[0], b.Hi[0], b.Lo[1], b.Hi[1], b.Lo[2], b.Hi[2])
}
