package grid

import "fmt"

// Decomp is a regular Cartesian decomposition of a global box into
// Px x Py x Pz blocks, one per rank. Ranks are numbered x-fastest,
// matching the paper's core layouts (e.g. 16x28x10 = 4480 simulation
// cores each owning a 100x49x43 region).
type Decomp struct {
	Global Box
	P      [3]int // number of blocks per dimension
}

// NewDecomp validates and constructs a decomposition. Every dimension
// must split evenly or nearly evenly; blocks are balanced to within one
// grid plane.
func NewDecomp(global Box, px, py, pz int) (*Decomp, error) {
	if px < 1 || py < 1 || pz < 1 {
		return nil, fmt.Errorf("grid: invalid decomposition %dx%dx%d", px, py, pz)
	}
	d := global.Dims()
	if px > d[0] || py > d[1] || pz > d[2] {
		return nil, fmt.Errorf("grid: decomposition %dx%dx%d exceeds global dims %v", px, py, pz, d)
	}
	return &Decomp{Global: global, P: [3]int{px, py, pz}}, nil
}

// Ranks returns the total number of blocks.
func (dc *Decomp) Ranks() int { return dc.P[0] * dc.P[1] * dc.P[2] }

// Coords maps a rank to its block coordinates.
func (dc *Decomp) Coords(rank int) [3]int {
	return [3]int{rank % dc.P[0], (rank / dc.P[0]) % dc.P[1], rank / (dc.P[0] * dc.P[1])}
}

// Rank maps block coordinates to a rank, or -1 if out of range.
func (dc *Decomp) Rank(cx, cy, cz int) int {
	if cx < 0 || cx >= dc.P[0] || cy < 0 || cy >= dc.P[1] || cz < 0 || cz >= dc.P[2] {
		return -1
	}
	return cx + dc.P[0]*(cy+dc.P[1]*cz)
}

// Block returns the sub-box owned by rank. Remainder points are
// distributed to the leading blocks so sizes differ by at most one
// plane per dimension.
func (dc *Decomp) Block(rank int) Box {
	c := dc.Coords(rank)
	var b Box
	for d := 0; d < 3; d++ {
		n := dc.Global.Hi[d] - dc.Global.Lo[d]
		q, r := n/dc.P[d], n%dc.P[d]
		lo := c[d]*q + min(c[d], r)
		sz := q
		if c[d] < r {
			sz++
		}
		b.Lo[d] = dc.Global.Lo[d] + lo
		b.Hi[d] = b.Lo[d] + sz
	}
	return b
}

// Owner returns the rank owning global point (i,j,k), or -1 when the
// point is outside the global box.
func (dc *Decomp) Owner(i, j, k int) int {
	if !dc.Global.Contains(i, j, k) {
		return -1
	}
	p := [3]int{i, j, k}
	var c [3]int
	for d := 0; d < 3; d++ {
		n := dc.Global.Hi[d] - dc.Global.Lo[d]
		q, r := n/dc.P[d], n%dc.P[d]
		x := p[d] - dc.Global.Lo[d]
		// First r blocks have size q+1.
		if x < r*(q+1) {
			c[d] = x / (q + 1)
		} else {
			c[d] = r + (x-r*(q+1))/q
		}
	}
	return dc.Rank(c[0], c[1], c[2])
}

// Neighbors returns the ranks of the up-to-26 face/edge/corner
// neighbors of rank (6 in each axis direction plus diagonals),
// excluding out-of-range blocks.
func (dc *Decomp) Neighbors(rank int) []int {
	c := dc.Coords(rank)
	var out []int
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				if n := dc.Rank(c[0]+dx, c[1]+dy, c[2]+dz); n >= 0 {
					out = append(out, n)
				}
			}
		}
	}
	return out
}

// FaceNeighbor returns the rank adjacent across the given axis
// (0,1,2) in direction dir (-1 or +1), or -1 at the domain boundary.
func (dc *Decomp) FaceNeighbor(rank, axis, dir int) int {
	c := dc.Coords(rank)
	c[axis] += dir
	return dc.Rank(c[0], c[1], c[2])
}
