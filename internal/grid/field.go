package grid

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Field is a named scalar field sampled on the points of a Box.
// Data is linearized x-fastest. All simulation variables are float64,
// matching the paper's 8-byte doubles.
type Field struct {
	Name string
	Box  Box
	Data []float64
}

// NewField allocates a zero-initialized field covering box.
func NewField(name string, box Box) *Field {
	return &Field{Name: name, Box: box, Data: make([]float64, box.Size())}
}

// At returns the value at global point (i,j,k), which must lie inside
// the field's box.
func (f *Field) At(i, j, k int) float64 { return f.Data[f.Box.Index(i, j, k)] }

// Set stores v at global point (i,j,k).
func (f *Field) Set(i, j, k int, v float64) { f.Data[f.Box.Index(i, j, k)] = v }

// Fill sets every point to v.
func (f *Field) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// Clone returns a deep copy of the field.
func (f *Field) Clone() *Field {
	g := &Field{Name: f.Name, Box: f.Box, Data: make([]float64, len(f.Data))}
	copy(g.Data, f.Data)
	return g
}

// Extract copies the sub-box sub (which must be contained in f.Box)
// into a newly allocated field.
func (f *Field) Extract(sub Box) *Field {
	return f.ExtractInto(sub, nil)
}

// ExtractInto copies the sub-box sub (which must be contained in
// f.Box) into dst, reusing dst's Data slice when its capacity
// suffices — the allocation-free fast path of the per-timestep
// transfer pipeline. dst may be nil or empty, in which case a fresh
// field is allocated. The (possibly re-sliced) destination is
// returned. The row loop carries running source/destination offsets
// instead of recomputing Box.Index per row.
func (f *Field) ExtractInto(sub Box, dst *Field) *Field {
	if !f.Box.ContainsBox(sub) {
		panic(fmt.Sprintf("grid: extract %v outside field box %v", sub, f.Box))
	}
	if dst == nil {
		dst = &Field{}
	}
	n := sub.Size()
	if cap(dst.Data) >= n {
		dst.Data = dst.Data[:n]
	} else {
		dst.Data = make([]float64, n)
	}
	dst.Name = f.Name
	dst.Box = sub
	sd := f.Box.Dims()
	rowLen := sub.Hi[0] - sub.Lo[0]
	srcYStride := sd[0]
	srcZStride := sd[0] * sd[1]
	srcPlane := f.Box.Index(sub.Lo[0], sub.Lo[1], sub.Lo[2])
	dstOff := 0
	for k := sub.Lo[2]; k < sub.Hi[2]; k++ {
		srcOff := srcPlane
		for j := sub.Lo[1]; j < sub.Hi[1]; j++ {
			copy(dst.Data[dstOff:dstOff+rowLen], f.Data[srcOff:srcOff+rowLen])
			srcOff += srcYStride
			dstOff += rowLen
		}
		srcPlane += srcZStride
	}
	return dst
}

// Paste copies the overlap of src into f. As in ExtractInto, the row
// loop carries running offsets rather than calling Box.Index per row.
func (f *Field) Paste(src *Field) {
	ov := f.Box.Intersect(src.Box)
	if ov.Empty() {
		return
	}
	sd := src.Box.Dims()
	dd := f.Box.Dims()
	rowLen := ov.Hi[0] - ov.Lo[0]
	srcYStride, srcZStride := sd[0], sd[0]*sd[1]
	dstYStride, dstZStride := dd[0], dd[0]*dd[1]
	srcPlane := src.Box.Index(ov.Lo[0], ov.Lo[1], ov.Lo[2])
	dstPlane := f.Box.Index(ov.Lo[0], ov.Lo[1], ov.Lo[2])
	for k := ov.Lo[2]; k < ov.Hi[2]; k++ {
		srcOff, dstOff := srcPlane, dstPlane
		for j := ov.Lo[1]; j < ov.Hi[1]; j++ {
			copy(f.Data[dstOff:dstOff+rowLen], src.Data[srcOff:srcOff+rowLen])
			srcOff += srcYStride
			dstOff += dstYStride
		}
		srcPlane += srcZStride
		dstPlane += dstZStride
	}
}

// MinMax returns the extrema of the field. An empty field returns
// (+Inf, -Inf).
func (f *Field) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range f.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return
}

// Downsample returns the field restricted to every factor-th grid point
// in each dimension (the paper's hybrid visualization down-samples at
// every 8th grid point in-situ). The resulting box has coordinates in
// the down-sampled index space: point (i,j,k) of the result corresponds
// to point (i*factor, j*factor, k*factor) of the original global grid.
func (f *Field) Downsample(factor int) *Field {
	if factor < 1 {
		panic("grid: downsample factor must be >= 1")
	}
	var sub Box
	for d := 0; d < 3; d++ {
		sub.Lo[d] = ceilDiv(f.Box.Lo[d], factor)
		sub.Hi[d] = ceilDiv(f.Box.Hi[d], factor)
	}
	g := NewField(f.Name, sub)
	for k := sub.Lo[2]; k < sub.Hi[2]; k++ {
		for j := sub.Lo[1]; j < sub.Hi[1]; j++ {
			for i := sub.Lo[0]; i < sub.Hi[0]; i++ {
				g.Set(i, j, k, f.At(i*factor, j*factor, k*factor))
			}
		}
	}
	return g
}

// DownsampleBox returns region (which must be contained in f.Box)
// restricted to every factor-th global grid point, without
// materializing the intermediate Extract — the single-pass form of
// Extract(region).Downsample(factor) on the per-timestep hybrid
// visualization path. The inner loop walks running source offsets
// instead of calling Box.Index per point.
func (f *Field) DownsampleBox(region Box, factor int) *Field {
	if factor < 1 {
		panic("grid: downsample factor must be >= 1")
	}
	if !f.Box.ContainsBox(region) {
		panic(fmt.Sprintf("grid: downsample region %v outside field box %v", region, f.Box))
	}
	var sub Box
	for d := 0; d < 3; d++ {
		sub.Lo[d] = ceilDiv(region.Lo[d], factor)
		sub.Hi[d] = ceilDiv(region.Hi[d], factor)
	}
	g := NewField(f.Name, sub)
	sd := f.Box.Dims()
	xStride := factor
	yStride := factor * sd[0]
	zStride := factor * sd[0] * sd[1]
	dstOff := 0
	if sub.Empty() {
		return g
	}
	srcPlane := f.Box.Index(sub.Lo[0]*factor, sub.Lo[1]*factor, sub.Lo[2]*factor)
	for k := sub.Lo[2]; k < sub.Hi[2]; k++ {
		srcRow := srcPlane
		for j := sub.Lo[1]; j < sub.Hi[1]; j++ {
			srcOff := srcRow
			for i := sub.Lo[0]; i < sub.Hi[0]; i++ {
				g.Data[dstOff] = f.Data[srcOff]
				dstOff++
				srcOff += xStride
			}
			srcRow += yStride
		}
		srcPlane += zStride
	}
	return g
}

// Sample returns the trilinearly interpolated value at the continuous
// position (x,y,z) in the field's global index space. Positions outside
// the box are clamped to it.
func (f *Field) Sample(x, y, z float64) float64 {
	b := f.Box
	x = clampF(x, float64(b.Lo[0]), float64(b.Hi[0]-1))
	y = clampF(y, float64(b.Lo[1]), float64(b.Hi[1]-1))
	z = clampF(z, float64(b.Lo[2]), float64(b.Hi[2]-1))
	i0, j0, k0 := int(x), int(y), int(z)
	i1, j1, k1 := min(i0+1, b.Hi[0]-1), min(j0+1, b.Hi[1]-1), min(k0+1, b.Hi[2]-1)
	fx, fy, fz := x-float64(i0), y-float64(j0), z-float64(k0)
	c000 := f.At(i0, j0, k0)
	c100 := f.At(i1, j0, k0)
	c010 := f.At(i0, j1, k0)
	c110 := f.At(i1, j1, k0)
	c001 := f.At(i0, j0, k1)
	c101 := f.At(i1, j0, k1)
	c011 := f.At(i0, j1, k1)
	c111 := f.At(i1, j1, k1)
	c00 := c000 + fx*(c100-c000)
	c10 := c010 + fx*(c110-c010)
	c01 := c001 + fx*(c101-c001)
	c11 := c011 + fx*(c111-c011)
	c0 := c00 + fy*(c10-c00)
	c1 := c01 + fy*(c11-c01)
	return c0 + fz*(c1-c0)
}

// Bytes returns the in-memory size of the field payload in bytes
// (8 bytes per point), used for data-movement accounting.
func (f *Field) Bytes() int { return 8 * len(f.Data) }

// MarshalSize returns the exact encoded size of the field, so callers
// can size destination buffers (typically from bufpool) up front.
func (f *Field) MarshalSize() int {
	return 4 + len(f.Name) + 7*8 + 8*len(f.Data)
}

// AppendMarshal appends the field's encoding (name, box, data) to dst
// and returns the extended slice. The float64 payload is encoded by
// writing math.Float64bits words straight into the destination — no
// intermediate bytes.Buffer, no per-value staging array — so a
// preallocated dst makes the pack a single pass with zero allocations.
func (f *Field) AppendMarshal(dst []byte) []byte {
	off := len(dst)
	need := f.MarshalSize()
	if cap(dst)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(f.Name)))
	off += 4
	copy(dst[off:], f.Name)
	off += len(f.Name)
	for d := 0; d < 3; d++ {
		binary.LittleEndian.PutUint64(dst[off:], uint64(int64(f.Box.Lo[d])))
		off += 8
	}
	for d := 0; d < 3; d++ {
		binary.LittleEndian.PutUint64(dst[off:], uint64(int64(f.Box.Hi[d])))
		off += 8
	}
	binary.LittleEndian.PutUint64(dst[off:], uint64(len(f.Data)))
	off += 8
	for _, v := range f.Data {
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
		off += 8
	}
	return dst
}

// Marshal serializes the field (name, box, data) into a compact binary
// form suitable for DART transfers and BP files.
func (f *Field) Marshal() []byte {
	return f.AppendMarshal(make([]byte, 0, f.MarshalSize()))
}

// FloatTailOffset returns the byte offset of the float64 data tail
// within a marshalled field payload, for transfer-path codecs that
// transform the tail and carry the header verbatim. It reports ok
// false when p is not a plausible field marshal (too short, or the
// declared count does not fill the remaining bytes exactly).
func FloatTailOffset(p []byte) (int, bool) {
	if len(p) < 4 {
		return 0, false
	}
	nameLen := int(binary.LittleEndian.Uint32(p[:4]))
	off := 4 + nameLen + 7*8
	if nameLen < 0 || off > len(p) {
		return 0, false
	}
	n := int(binary.LittleEndian.Uint64(p[off-8:]))
	if n < 0 || len(p)-off != 8*n {
		return 0, false
	}
	return off, true
}

// UnmarshalField reconstructs a field from Marshal's output.
func UnmarshalField(p []byte) (*Field, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("grid: field payload too short (%d bytes)", len(p))
	}
	nameLen := int(binary.LittleEndian.Uint32(p[:4]))
	p = p[4:]
	if len(p) < nameLen+7*8 {
		return nil, fmt.Errorf("grid: truncated field header")
	}
	name := string(p[:nameLen])
	p = p[nameLen:]
	var box Box
	for d := 0; d < 3; d++ {
		box.Lo[d] = int(int64(binary.LittleEndian.Uint64(p[:8])))
		p = p[8:]
	}
	for d := 0; d < 3; d++ {
		box.Hi[d] = int(int64(binary.LittleEndian.Uint64(p[:8])))
		p = p[8:]
	}
	n := int(binary.LittleEndian.Uint64(p[:8]))
	p = p[8:]
	if n != box.Size() {
		return nil, fmt.Errorf("grid: field payload count %d does not match box %v", n, box)
	}
	if len(p) < 8*n {
		return nil, fmt.Errorf("grid: truncated field data: want %d bytes, have %d", 8*n, len(p))
	}
	f := &Field{Name: name, Box: box, Data: make([]float64, n)}
	for i := 0; i < n; i++ {
		f.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return f, nil
}

func ceilDiv(a, b int) int {
	if a >= 0 {
		return (a + b - 1) / b
	}
	return -((-a) / b)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
