package grid

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestExtractIntoReusesDestination(t *testing.T) {
	b := NewBox(8, 6, 5)
	f := NewField("T", b)
	for idx := range f.Data {
		f.Data[idx] = float64(idx)
	}
	sub := Box{Lo: [3]int{1, 2, 1}, Hi: [3]int{6, 5, 4}}
	want := f.Extract(sub)

	dst := NewField("scratch", NewBox(10, 10, 10)) // larger capacity
	backing := &dst.Data[0]
	got := f.ExtractInto(sub, dst)
	if got != dst {
		t.Fatal("ExtractInto must return the destination field")
	}
	if &got.Data[0] != backing {
		t.Fatal("ExtractInto must reuse the destination's backing array when it fits")
	}
	if got.Name != f.Name || got.Box != sub {
		t.Fatalf("header wrong: %q %v", got.Name, got.Box)
	}
	if len(got.Data) != len(want.Data) {
		t.Fatalf("length %d, want %d", len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}

	// A too-small destination must still work (fresh allocation).
	small := &Field{Name: "s", Data: make([]float64, 1)}
	got2 := f.ExtractInto(sub, small)
	for i := range want.Data {
		if got2.Data[i] != want.Data[i] {
			t.Fatalf("grown-destination mismatch at %d", i)
		}
	}
}

func TestDownsampleBoxMatchesExtractThenDownsample(t *testing.T) {
	b := NewBox(16, 12, 9)
	f := NewField("T", b)
	rng := rand.New(rand.NewSource(7))
	for idx := range f.Data {
		f.Data[idx] = rng.NormFloat64()
	}
	for _, factor := range []int{1, 2, 3} {
		region := Box{Lo: [3]int{3, 1, 2}, Hi: [3]int{14, 11, 8}}
		want := f.Extract(region).Downsample(factor)
		got := f.DownsampleBox(region, factor)
		if got.Box != want.Box {
			t.Fatalf("factor %d: box %v, want %v", factor, got.Box, want.Box)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("factor %d: data mismatch at %d", factor, i)
			}
		}
	}
}

func TestAppendMarshalExactSizeAndPrefix(t *testing.T) {
	b := Box{Lo: [3]int{1, 2, 3}, Hi: [3]int{5, 6, 7}}
	f := NewField("pressure", b)
	rng := rand.New(rand.NewSource(3))
	for idx := range f.Data {
		f.Data[idx] = rng.NormFloat64()
	}
	plain := f.Marshal()
	if len(plain) != f.MarshalSize() {
		t.Fatalf("MarshalSize %d but Marshal produced %d bytes", f.MarshalSize(), len(plain))
	}
	// Appending after a prefix must leave the prefix intact and encode
	// identically.
	prefix := []byte("HDR!")
	out := f.AppendMarshal(append([]byte{}, prefix...))
	if !bytes.Equal(out[:4], prefix) {
		t.Fatal("AppendMarshal clobbered the prefix")
	}
	if !bytes.Equal(out[4:], plain) {
		t.Fatal("AppendMarshal encoding differs from Marshal")
	}
	// Into a presized buffer no growth may occur.
	dst := make([]byte, 0, f.MarshalSize())
	out2 := f.AppendMarshal(dst)
	if &out2[0] != &dst[:1][0] {
		t.Fatal("AppendMarshal must not reallocate a sufficient buffer")
	}
	g, err := UnmarshalField(out2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != f.Name || g.Box != f.Box {
		t.Fatalf("round trip header mismatch: %q %v", g.Name, g.Box)
	}
	for i := range f.Data {
		if g.Data[i] != f.Data[i] {
			t.Fatalf("round trip data mismatch at %d", i)
		}
	}
}
