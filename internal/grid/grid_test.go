package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoxBasics(t *testing.T) {
	b := NewBox(4, 5, 6)
	if b.Size() != 120 {
		t.Fatalf("size: want 120, got %d", b.Size())
	}
	if b.Dims() != [3]int{4, 5, 6} {
		t.Fatalf("dims wrong: %v", b.Dims())
	}
	if !b.Contains(0, 0, 0) || !b.Contains(3, 4, 5) {
		t.Fatal("corners must be contained")
	}
	if b.Contains(4, 0, 0) || b.Contains(-1, 0, 0) {
		t.Fatal("out-of-range points must not be contained")
	}
	if b.Empty() {
		t.Fatal("non-degenerate box is not empty")
	}
	if !(Box{}).Empty() {
		t.Fatal("zero box is empty")
	}
}

func TestBoxIntersectUnion(t *testing.T) {
	a := Box{Lo: [3]int{0, 0, 0}, Hi: [3]int{4, 4, 4}}
	b := Box{Lo: [3]int{2, 2, 2}, Hi: [3]int{6, 6, 6}}
	iv := a.Intersect(b)
	if iv.Lo != [3]int{2, 2, 2} || iv.Hi != [3]int{4, 4, 4} {
		t.Fatalf("intersection wrong: %v", iv)
	}
	u := a.Union(b)
	if u.Lo != [3]int{0, 0, 0} || u.Hi != [3]int{6, 6, 6} {
		t.Fatalf("union wrong: %v", u)
	}
	far := Box{Lo: [3]int{10, 10, 10}, Hi: [3]int{12, 12, 12}}
	if !a.Intersect(far).Empty() {
		t.Fatal("disjoint boxes must intersect empty")
	}
	if a.Overlaps(far) {
		t.Fatal("disjoint boxes must not overlap")
	}
	if !a.Overlaps(b) {
		t.Fatal("overlapping boxes must overlap")
	}
}

func TestBoxGrowTranslate(t *testing.T) {
	b := Box{Lo: [3]int{2, 2, 2}, Hi: [3]int{4, 4, 4}}
	g := b.Grow(1)
	if g.Lo != [3]int{1, 1, 1} || g.Hi != [3]int{5, 5, 5} {
		t.Fatalf("grow wrong: %v", g)
	}
	if s := b.Grow(-1); s.Size() != 0 {
		t.Fatalf("shrinking a 2-wide box should empty it, got %v", s)
	}
	tr := b.Translate(1, -1, 0)
	if tr.Lo != [3]int{3, 1, 2} {
		t.Fatalf("translate wrong: %v", tr)
	}
}

func TestIndexPointRoundTrip(t *testing.T) {
	b := Box{Lo: [3]int{3, -2, 1}, Hi: [3]int{8, 4, 5}}
	for idx := 0; idx < b.Size(); idx++ {
		i, j, k := b.Point(idx)
		if !b.Contains(i, j, k) {
			t.Fatalf("point %d -> (%d,%d,%d) outside box", idx, i, j, k)
		}
		if got := b.Index(i, j, k); got != idx {
			t.Fatalf("index round trip: %d -> %d", idx, got)
		}
	}
}

func TestGlobalIndexRoundTrip(t *testing.T) {
	g := Box{Lo: [3]int{0, 0, 0}, Hi: [3]int{100, 37, 19}}
	prop := func(i, j, k uint16) bool {
		x, y, z := int(i)%100, int(j)%37, int(k)%19
		id := GlobalIndex(g, x, y, z)
		rx, ry, rz := GlobalPoint(g, id)
		return rx == x && ry == y && rz == z
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorners(t *testing.T) {
	b := NewBox(4, 4, 4)
	if got := len(b.Corners()); got != 8 {
		t.Fatalf("3-D box must have 8 corners, got %d", got)
	}
	b2 := NewBox(4, 4, 1)
	if got := len(b2.Corners()); got != 4 {
		t.Fatalf("2-D box must have 4 corners, got %d", got)
	}
	for _, c := range b.Corners() {
		if !b.OnBoundary(c[0], c[1], c[2]) {
			t.Fatalf("corner %v not on boundary", c)
		}
	}
}

func TestFieldExtractPaste(t *testing.T) {
	b := NewBox(6, 5, 4)
	f := NewField("T", b)
	for idx := range f.Data {
		f.Data[idx] = float64(idx)
	}
	sub := Box{Lo: [3]int{1, 1, 1}, Hi: [3]int{4, 4, 3}}
	e := f.Extract(sub)
	for k := sub.Lo[2]; k < sub.Hi[2]; k++ {
		for j := sub.Lo[1]; j < sub.Hi[1]; j++ {
			for i := sub.Lo[0]; i < sub.Hi[0]; i++ {
				if e.At(i, j, k) != f.At(i, j, k) {
					t.Fatalf("extract mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
	g := NewField("T", b)
	g.Paste(e)
	for k := sub.Lo[2]; k < sub.Hi[2]; k++ {
		for j := sub.Lo[1]; j < sub.Hi[1]; j++ {
			for i := sub.Lo[0]; i < sub.Hi[0]; i++ {
				if g.At(i, j, k) != f.At(i, j, k) {
					t.Fatalf("paste mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
	if g.At(0, 0, 0) != 0 {
		t.Fatal("paste must not write outside the source box")
	}
}

func TestExtractOutsidePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("extract outside field box must panic")
		}
	}()
	f := NewField("T", NewBox(2, 2, 2))
	f.Extract(NewBox(3, 3, 3))
}

func TestDownsample(t *testing.T) {
	b := NewBox(16, 8, 8)
	f := NewField("T", b)
	for idx := range f.Data {
		i, j, k := b.Point(idx)
		f.Data[idx] = float64(i + 100*j + 10000*k)
	}
	d := f.Downsample(8)
	if d.Box.Dims() != [3]int{2, 1, 1} {
		t.Fatalf("downsampled dims wrong: %v", d.Box.Dims())
	}
	if d.At(1, 0, 0) != f.At(8, 0, 0) {
		t.Fatal("downsample must pick every 8th point")
	}
	// Offset blocks: a block starting at 3 with factor 2 holds global
	// down-sampled indices ceil(3/2)=2 onward.
	sub := f.Extract(Box{Lo: [3]int{3, 0, 0}, Hi: [3]int{9, 8, 8}})
	d2 := sub.Downsample(2)
	if d2.Box.Lo[0] != 2 || d2.Box.Hi[0] != 5 {
		t.Fatalf("offset downsample box wrong: %v", d2.Box)
	}
	if d2.At(2, 0, 0) != f.At(4, 0, 0) {
		t.Fatal("offset downsample must map index 2 -> global 4")
	}
}

func TestDownsampleFactorOne(t *testing.T) {
	b := NewBox(3, 3, 1)
	f := NewField("T", b)
	f.Set(1, 2, 0, 7)
	d := f.Downsample(1)
	if d.Box != b || d.At(1, 2, 0) != 7 {
		t.Fatal("factor-1 downsample must be identity")
	}
}

func TestSampleTrilinear(t *testing.T) {
	b := NewBox(3, 3, 3)
	f := NewField("T", b)
	for idx := range f.Data {
		i, j, k := b.Point(idx)
		f.Data[idx] = float64(i) + 2*float64(j) + 4*float64(k) // linear
	}
	// Trilinear interpolation reproduces a linear function exactly.
	for _, p := range [][3]float64{{0.5, 0.5, 0.5}, {1.25, 0.75, 1.5}, {0, 2, 2}} {
		want := p[0] + 2*p[1] + 4*p[2]
		if got := f.Sample(p[0], p[1], p[2]); !close(got, want) {
			t.Fatalf("sample(%v): want %g, got %g", p, want, got)
		}
	}
	// Clamping.
	if got := f.Sample(-5, 0, 0); got != f.At(0, 0, 0) {
		t.Fatalf("sample must clamp below, got %g", got)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func TestFieldMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := Box{Lo: [3]int{2, 3, 4}, Hi: [3]int{7, 6, 6}}
	f := NewField("temperature", b)
	for idx := range f.Data {
		f.Data[idx] = rng.NormFloat64()
	}
	g, err := UnmarshalField(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != f.Name || g.Box != f.Box {
		t.Fatalf("header mismatch: %v %v", g.Name, g.Box)
	}
	for i := range f.Data {
		if g.Data[i] != f.Data[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
	if _, err := UnmarshalField(f.Marshal()[:10]); err == nil {
		t.Fatal("truncated payload must error")
	}
	if _, err := UnmarshalField(nil); err == nil {
		t.Fatal("empty payload must error")
	}
}

func TestDecompPartition(t *testing.T) {
	g := NewBox(17, 11, 7) // deliberately not divisible
	dc, err := NewDecomp(g, 4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Ranks() != 24 {
		t.Fatalf("ranks: want 24, got %d", dc.Ranks())
	}
	// Blocks tile the domain exactly.
	covered := make(map[[3]int]int)
	total := 0
	for r := 0; r < dc.Ranks(); r++ {
		b := dc.Block(r)
		total += b.Size()
		for k := b.Lo[2]; k < b.Hi[2]; k++ {
			for j := b.Lo[1]; j < b.Hi[1]; j++ {
				for i := b.Lo[0]; i < b.Hi[0]; i++ {
					covered[[3]int{i, j, k}]++
				}
			}
		}
	}
	if total != g.Size() {
		t.Fatalf("blocks cover %d points, domain has %d", total, g.Size())
	}
	for p, c := range covered {
		if c != 1 {
			t.Fatalf("point %v covered %d times", p, c)
		}
	}
}

func TestDecompOwner(t *testing.T) {
	g := NewBox(17, 11, 7)
	dc, _ := NewDecomp(g, 4, 3, 2)
	for r := 0; r < dc.Ranks(); r++ {
		b := dc.Block(r)
		for k := b.Lo[2]; k < b.Hi[2]; k++ {
			for j := b.Lo[1]; j < b.Hi[1]; j++ {
				for i := b.Lo[0]; i < b.Hi[0]; i++ {
					if got := dc.Owner(i, j, k); got != r {
						t.Fatalf("owner of (%d,%d,%d): want %d, got %d", i, j, k, r, got)
					}
				}
			}
		}
	}
	if dc.Owner(-1, 0, 0) != -1 || dc.Owner(17, 0, 0) != -1 {
		t.Fatal("outside points must have owner -1")
	}
}

func TestDecompNeighbors(t *testing.T) {
	g := NewBox(8, 8, 8)
	dc, _ := NewDecomp(g, 2, 2, 2)
	// Every rank in a 2x2x2 decomposition has all 7 others as
	// neighbors.
	for r := 0; r < 8; r++ {
		if got := len(dc.Neighbors(r)); got != 7 {
			t.Fatalf("rank %d: want 7 neighbors, got %d", r, got)
		}
	}
	if dc.FaceNeighbor(0, 0, -1) != -1 {
		t.Fatal("face neighbor off the domain must be -1")
	}
	if dc.FaceNeighbor(0, 0, 1) != 1 {
		t.Fatal("face neighbor +x of rank 0 must be rank 1")
	}
}

func TestDecompErrors(t *testing.T) {
	g := NewBox(4, 4, 4)
	if _, err := NewDecomp(g, 0, 1, 1); err == nil {
		t.Fatal("zero split must error")
	}
	if _, err := NewDecomp(g, 5, 1, 1); err == nil {
		t.Fatal("overdecomposition must error")
	}
}

func TestDecompPaperGeometry(t *testing.T) {
	// The paper's 4896-core run: 16x28x10 simulation cores over a
	// 1600x1372x430 grid, each owning 100x49x43 points.
	g := NewBox(1600, 1372, 430)
	dc, err := NewDecomp(g, 16, 28, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Ranks() != 4480 {
		t.Fatalf("want 4480 ranks, got %d", dc.Ranks())
	}
	if d := dc.Block(0).Dims(); d != [3]int{100, 49, 43} {
		t.Fatalf("per-core region: want 100x49x43, got %v", d)
	}
	// 9440-core run: 32x28x10 = 8960 cores, 50x49x43 each.
	dc2, err := NewDecomp(g, 32, 28, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dc2.Ranks() != 8960 {
		t.Fatalf("want 8960 ranks, got %d", dc2.Ranks())
	}
	if d := dc2.Block(0).Dims(); d != [3]int{50, 49, 43} {
		t.Fatalf("per-core region: want 50x49x43, got %v", d)
	}
}
