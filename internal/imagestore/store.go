// Package imagestore is the Cinema-style image database: a
// content-addressed, crash-safe store of rendered frames keyed by a
// (variable × timestep × camera) spec. In-situ rendering writes an
// indexed, interactively browsable image database instead of dropping
// frames after the step summary — the serving tier (internal/serve)
// exposes it to external viewers over HTTP.
//
// Layout on disk:
//
//	frames.seg   append-only blob segment (raw PNG bytes, framing in the index)
//	index.json   atomic JSON index: spec → digest, digest → (offset, length)
//
// Durability follows the recovery package's discipline: a blob is
// appended and fsynced to the segment before the index referencing it
// is rewritten via recovery.WriteFileAtomic, so a crash at any instant
// leaves a consistent store — at worst an orphan blob tail the index
// never mentions, which reopening skips over. Blobs are addressed by
// the SHA-256 of their bytes; identical frames (a steady-state field
// rendering identically two steps running) are stored once and indexed
// many times.
package imagestore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"insitu/internal/obs"
	"insitu/internal/recovery"
	"insitu/internal/render"
)

// Spec keys one frame Cinema-style: variable × timestep × camera.
type Spec struct {
	Var  string
	Step int
	Cam  string
}

// Key renders the spec as its canonical "var/step/cam" path form —
// the shape the serving tier's /db/<var>/<step>/<cam> URLs use.
func (sp Spec) Key() string {
	return sp.Var + "/" + strconv.Itoa(sp.Step) + "/" + sp.Cam
}

// ParseSpec parses a canonical "var/step/cam" key.
func ParseSpec(key string) (Spec, error) {
	parts := strings.Split(key, "/")
	if len(parts) != 3 {
		return Spec{}, fmt.Errorf("imagestore: spec %q is not var/step/cam", key)
	}
	step, err := strconv.Atoi(parts[1])
	if err != nil {
		return Spec{}, fmt.Errorf("imagestore: spec %q has a non-numeric step", key)
	}
	sp := Spec{Var: parts[0], Step: step, Cam: parts[2]}
	return sp, sp.validate()
}

func (sp Spec) validate() error {
	if sp.Var == "" || sp.Cam == "" {
		return fmt.Errorf("imagestore: spec %+v needs a variable and a camera", sp)
	}
	if strings.ContainsRune(sp.Var, '/') || strings.ContainsRune(sp.Cam, '/') {
		return fmt.Errorf("imagestore: spec %+v: '/' is reserved as the key separator", sp)
	}
	if sp.Step < 0 {
		return fmt.Errorf("imagestore: spec %+v has a negative step", sp)
	}
	return nil
}

// blobRef locates one content-addressed blob inside the segment.
type blobRef struct {
	Off int64 `json:"off"`
	Len int64 `json:"len"`
}

// indexFile is the on-disk index shape.
type indexFile struct {
	Version      int                `json:"version"`
	SegmentBytes int64              `json:"segment_bytes"`
	LatestStep   int                `json:"latest_step"`
	Frames       map[string]string  `json:"frames"` // spec key -> digest
	Blobs        map[string]blobRef `json:"blobs"`  // digest -> location
}

const (
	segmentFile = "frames.seg"
	indexName   = "index.json"
)

// Store is the image database. All methods are safe for concurrent
// use; reads proceed under a shared lock while appends serialize.
type Store struct {
	dir string

	mu      sync.RWMutex
	seg     *os.File
	segSize int64
	frames  map[Spec]string
	blobs   map[string]blobRef
	latest  int

	cache *lruCache

	puts      atomic.Int64 // frames indexed
	dedups    atomic.Int64 // puts resolved to an existing blob
	dropped   atomic.Int64 // index entries dropped at open (torn segment)
	cacheHits atomic.Int64
	cacheMiss atomic.Int64
}

// Open opens (or creates) the store rooted at dir, validating every
// index entry against the segment: entries pointing past the segment's
// end (an externally truncated file) are dropped rather than served
// torn.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("imagestore: %w", err)
	}
	seg, err := os.OpenFile(filepath.Join(dir, segmentFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("imagestore: %w", err)
	}
	fi, err := seg.Stat()
	if err != nil {
		seg.Close()
		return nil, fmt.Errorf("imagestore: %w", err)
	}
	s := &Store{
		dir:     dir,
		seg:     seg,
		segSize: fi.Size(),
		frames:  make(map[Spec]string),
		blobs:   make(map[string]blobRef),
		cache:   newLRUCache(64 << 20),
	}
	raw, err := os.ReadFile(filepath.Join(dir, indexName))
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		seg.Close()
		return nil, fmt.Errorf("imagestore: %w", err)
	}
	var idx indexFile
	if err := json.Unmarshal(raw, &idx); err != nil {
		seg.Close()
		return nil, fmt.Errorf("imagestore: corrupt %s: %w", indexName, err)
	}
	for digest, ref := range idx.Blobs {
		if ref.Off < 0 || ref.Len <= 0 || ref.Off+ref.Len > fi.Size() {
			s.dropped.Add(1)
			continue
		}
		s.blobs[digest] = ref
	}
	for key, digest := range idx.Frames {
		sp, err := ParseSpec(key)
		if err != nil {
			s.dropped.Add(1)
			continue
		}
		if _, ok := s.blobs[digest]; !ok {
			s.dropped.Add(1)
			continue
		}
		s.frames[sp] = digest
		if sp.Step > s.latest {
			s.latest = sp.Step
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetCacheBytes resizes the in-memory LRU read cache (default 64 MiB).
func (s *Store) SetCacheBytes(n int64) { s.cache.resize(n) }

// PutFrame encodes a rendered frame to PNG and stores it under
// (variable, step, camera), returning the content digest. The frame's
// pixels are read but not retained; the caller keeps ownership of img.
func (s *Store) PutFrame(variable string, step int, cam string, img *render.Image) (string, error) {
	var buf bytes.Buffer
	if err := img.EncodePNG(&buf); err != nil {
		return "", err
	}
	return s.Put(Spec{Var: variable, Step: step, Cam: cam}, buf.Bytes())
}

// Put stores png under sp and returns its content digest. The store
// takes ownership of png: the bytes may be retained by the read cache,
// so the caller must not modify them afterwards. A blob already
// present (same digest) is indexed without a second append; re-putting
// an identical frame under the same spec is an idempotent no-op.
func (s *Store) Put(sp Spec, png []byte) (string, error) {
	if err := sp.validate(); err != nil {
		return "", err
	}
	if len(png) == 0 {
		return "", fmt.Errorf("imagestore: empty frame for %s", sp.Key())
	}
	sum := sha256.Sum256(png)
	digest := hex.EncodeToString(sum[:])

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.frames[sp]; ok && prev == digest {
		s.dedups.Add(1)
		return digest, nil
	}
	if _, ok := s.blobs[digest]; !ok {
		// Durability order: blob bytes reach the segment (fsynced)
		// before any index references them.
		if _, err := s.seg.WriteAt(png, s.segSize); err != nil {
			return "", fmt.Errorf("imagestore: append %s: %w", sp.Key(), err)
		}
		if err := s.seg.Sync(); err != nil {
			return "", fmt.Errorf("imagestore: sync segment: %w", err)
		}
		s.blobs[digest] = blobRef{Off: s.segSize, Len: int64(len(png))}
		s.segSize += int64(len(png))
		s.cache.add(digest, png)
	} else {
		s.dedups.Add(1)
	}
	s.frames[sp] = digest
	if sp.Step > s.latest {
		s.latest = sp.Step
	}
	s.puts.Add(1)
	if err := s.writeIndexLocked(); err != nil {
		return "", err
	}
	return digest, nil
}

// writeIndexLocked lands the index atomically. Callers hold s.mu.
func (s *Store) writeIndexLocked() error {
	idx := indexFile{
		Version:      1,
		SegmentBytes: s.segSize,
		LatestStep:   s.latest,
		Frames:       make(map[string]string, len(s.frames)),
		Blobs:        s.blobs,
	}
	for sp, digest := range s.frames {
		idx.Frames[sp.Key()] = digest
	}
	raw, err := json.MarshalIndent(&idx, "", " ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := recovery.WriteFileAtomic(filepath.Join(s.dir, indexName), raw, 0o644); err != nil {
		return fmt.Errorf("imagestore: write index: %w", err)
	}
	return nil
}

// Frame returns the PNG bytes and content digest stored under sp. The
// returned slice is shared with the read cache and must be treated as
// read-only.
func (s *Store) Frame(sp Spec) ([]byte, string, error) {
	s.mu.RLock()
	digest, ok := s.frames[sp]
	s.mu.RUnlock()
	if !ok {
		return nil, "", fmt.Errorf("imagestore: no frame for %s", sp.Key())
	}
	data, err := s.Blob(digest)
	return data, digest, err
}

// Blob returns a blob's bytes by content digest, serving from the LRU
// read cache when possible. The returned slice must be treated as
// read-only.
func (s *Store) Blob(digest string) ([]byte, error) {
	if data, ok := s.cache.get(digest); ok {
		s.cacheHits.Add(1)
		return data, nil
	}
	s.cacheMiss.Add(1)
	s.mu.RLock()
	ref, ok := s.blobs[digest]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("imagestore: unknown blob %s", digest)
	}
	data := make([]byte, ref.Len)
	if _, err := s.seg.ReadAt(data, ref.Off); err != nil {
		return nil, fmt.Errorf("imagestore: read blob %s: %w", digest, err)
	}
	s.cache.add(digest, data)
	return data, nil
}

// Digest returns the content digest indexed under sp, if any.
func (s *Store) Digest(sp Spec) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.frames[sp]
	return d, ok
}

// Latest returns the highest step any frame is indexed under, and
// whether the store holds any frames at all.
func (s *Store) Latest() (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.latest, len(s.frames) > 0
}

// Info is the browsable shape of the store's index.
type Info struct {
	Vars       []string `json:"vars"`
	Cams       []string `json:"cams"`
	LatestStep int      `json:"latest_step"`
	Frames     int      `json:"frames"`
	Blobs      int      `json:"blobs"`
	Bytes      int64    `json:"bytes"`
	Specs      []string `json:"specs"`
}

// Info snapshots the index: the variable and camera axes, counts, and
// the full sorted spec list (every cell a viewer can fetch).
func (s *Store) Info() Info {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vars := map[string]bool{}
	cams := map[string]bool{}
	specs := make([]string, 0, len(s.frames))
	for sp := range s.frames {
		vars[sp.Var] = true
		cams[sp.Cam] = true
		specs = append(specs, sp.Key())
	}
	info := Info{
		LatestStep: s.latest,
		Frames:     len(s.frames),
		Blobs:      len(s.blobs),
		Bytes:      s.segSize,
		Specs:      specs,
	}
	for v := range vars {
		info.Vars = append(info.Vars, v)
	}
	for c := range cams {
		info.Cams = append(info.Cams, c)
	}
	sort.Strings(info.Vars)
	sort.Strings(info.Cams)
	sort.Strings(info.Specs)
	return info
}

// StepFrames returns the frames indexed at a step as spec key →
// digest, sorted iteration left to the caller.
func (s *Store) StepFrames(step int) map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]string)
	for sp, digest := range s.frames {
		if sp.Step == step {
			out[sp.Var+"/"+sp.Cam] = digest
		}
	}
	return out
}

// Stats are the store's lifetime counters.
type Stats struct {
	Puts         int64 // frames indexed
	Dedups       int64 // puts served by an existing blob
	Dropped      int64 // index entries dropped at open (torn segment)
	CacheHits    int64
	CacheMisses  int64
	SegmentBytes int64
	Frames       int
	BlobsStored  int
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	frames, blobs, segSize := len(s.frames), len(s.blobs), s.segSize
	s.mu.RUnlock()
	return Stats{
		Puts:         s.puts.Load(),
		Dedups:       s.dedups.Load(),
		Dropped:      s.dropped.Load(),
		CacheHits:    s.cacheHits.Load(),
		CacheMisses:  s.cacheMiss.Load(),
		SegmentBytes: segSize,
		Frames:       frames,
		BlobsStored:  blobs,
	}
}

// PublishTo registers the store's metric families on an observability
// registry. Scrape-time functions read live counters; nil is a no-op.
func (s *Store) PublishTo(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("imagestore_puts_total", "frames indexed into the image store",
		func() float64 { return float64(s.puts.Load()) })
	reg.CounterFunc("imagestore_dedup_hits_total", "puts resolved to an already-stored blob",
		func() float64 { return float64(s.dedups.Load()) })
	reg.CounterFunc("imagestore_cache_hits_total", "blob reads served from the LRU cache",
		func() float64 { return float64(s.cacheHits.Load()) })
	reg.CounterFunc("imagestore_cache_misses_total", "blob reads that went to the segment",
		func() float64 { return float64(s.cacheMiss.Load()) })
	reg.GaugeFunc("imagestore_segment_bytes", "bytes in the append-only blob segment",
		func() float64 { s.mu.RLock(); defer s.mu.RUnlock(); return float64(s.segSize) })
	reg.GaugeFunc("imagestore_frames", "frames currently indexed",
		func() float64 { s.mu.RLock(); defer s.mu.RUnlock(); return float64(len(s.frames)) })
	reg.GaugeFunc("imagestore_blobs", "distinct content-addressed blobs stored",
		func() float64 { s.mu.RLock(); defer s.mu.RUnlock(); return float64(len(s.blobs)) })
}

// Close syncs and closes the segment. The index is already durable
// (rewritten atomically on every Put).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	err := s.seg.Sync()
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	s.seg = nil
	return err
}

// lruCache is a byte-bounded LRU of decoded blobs keyed by digest.
type lruCache struct {
	mu    sync.Mutex
	cap   int64
	size  int64
	items map[string]*lruItem
	head  *lruItem // most recent
	tail  *lruItem // least recent
}

type lruItem struct {
	key        string
	data       []byte
	prev, next *lruItem
}

func newLRUCache(capBytes int64) *lruCache {
	return &lruCache{cap: capBytes, items: make(map[string]*lruItem)}
}

func (c *lruCache) resize(capBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capBytes
	c.evictLocked()
}

func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	it, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.unlinkLocked(it)
	c.pushFrontLocked(it)
	return it.data, true
}

func (c *lruCache) add(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int64(len(data)) > c.cap {
		return
	}
	if it, ok := c.items[key]; ok {
		c.unlinkLocked(it)
		c.pushFrontLocked(it)
		return
	}
	it := &lruItem{key: key, data: data}
	c.items[key] = it
	c.size += int64(len(data))
	c.pushFrontLocked(it)
	c.evictLocked()
}

func (c *lruCache) evictLocked() {
	for c.size > c.cap && c.tail != nil {
		it := c.tail
		c.unlinkLocked(it)
		delete(c.items, it.key)
		c.size -= int64(len(it.data))
	}
}

func (c *lruCache) unlinkLocked(it *lruItem) {
	if it.prev != nil {
		it.prev.next = it.next
	} else if c.head == it {
		c.head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else if c.tail == it {
		c.tail = it.prev
	}
	it.prev, it.next = nil, nil
}

func (c *lruCache) pushFrontLocked(it *lruItem) {
	it.next = c.head
	if c.head != nil {
		c.head.prev = it
	}
	c.head = it
	if c.tail == nil {
		c.tail = it
	}
}
