package imagestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"insitu/internal/render"
)

func frame(seed int) *render.Image {
	im := render.NewImage(16, 12)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := float64((x*7+y*3+seed)%16) / 16
			im.Set(x, y, v, v/2, 1-v, v)
		}
	}
	return im
}

func TestPutGetRoundtrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sp := Spec{Var: "T", Step: 3, Cam: "cam00"}
	digest, err := s.PutFrame(sp.Var, sp.Step, sp.Cam, frame(1))
	if err != nil {
		t.Fatal(err)
	}
	data, got, err := s.Frame(sp)
	if err != nil {
		t.Fatal(err)
	}
	if got != digest {
		t.Fatalf("digest %s != %s", got, digest)
	}
	want, _ := frame(1).PNG()
	if !bytes.Equal(data, want) {
		t.Fatal("stored bytes differ from a fresh encode")
	}
	blob, err := s.Blob(digest)
	if err != nil || !bytes.Equal(blob, want) {
		t.Fatalf("blob fetch by digest: %v", err)
	}
	if step, ok := s.Latest(); !ok || step != 3 {
		t.Fatalf("latest = %d,%v", step, ok)
	}
}

func TestDigestStableAcrossReencode(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d1, err := s.PutFrame("T", 1, "cam00", frame(7))
	if err != nil {
		t.Fatal(err)
	}
	// The same pixels re-encoded (a re-run of a deterministic
	// pipeline) must address the same blob.
	d2, err := s.PutFrame("T", 2, "cam00", frame(7))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("re-encode changed the digest: %s vs %s", d1, d2)
	}
	st := s.Stats()
	if st.BlobsStored != 1 || st.Dedups != 1 || st.Frames != 2 {
		t.Fatalf("dedup accounting: %+v", st)
	}
}

func TestIdempotentPut(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	png, _ := frame(2).PNG()
	sp := Spec{Var: "OH", Step: 5, Cam: "cam01"}
	if _, err := s.Put(sp, png); err != nil {
		t.Fatal(err)
	}
	size1 := s.Stats().SegmentBytes
	if _, err := s.Put(sp, append([]byte(nil), png...)); err != nil {
		t.Fatal(err)
	}
	if s.Stats().SegmentBytes != size1 {
		t.Fatal("idempotent put appended bytes")
	}
}

func TestReopenRestoresIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for step := 1; step <= 3; step++ {
		for _, cam := range []string{"cam00", "cam01"} {
			d, err := s.PutFrame("T", step, cam, frame(step*2+len(cam)))
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, d)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info := r.Info()
	if info.Frames != 6 || info.LatestStep != 3 {
		t.Fatalf("reopened info: %+v", info)
	}
	for i, key := range []string{"T/1/cam00", "T/1/cam01", "T/2/cam00", "T/2/cam01", "T/3/cam00", "T/3/cam01"} {
		sp, err := ParseSpec(key)
		if err != nil {
			t.Fatal(err)
		}
		if _, d, err := r.Frame(sp); err != nil || d != want[i] {
			t.Fatalf("%s after reopen: digest %s want %s, err %v", key, d, want[i], err)
		}
	}
}

// TestTornSegmentDropped: an index entry pointing past the segment's
// end (external truncation) must be dropped at open, never served
// torn; intact entries survive.
func TestTornSegmentDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := s.PutFrame("T", 1, "cam00", frame(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutFrame("T", 2, "cam00", frame(2)); err != nil {
		t.Fatal(err)
	}
	firstLen := int64(0)
	{
		b, _ := s.Blob(d1)
		firstLen = int64(len(b))
	}
	s.Close()

	seg := filepath.Join(dir, segmentFile)
	if err := os.Truncate(seg, firstLen+10); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.Frame(Spec{Var: "T", Step: 1, Cam: "cam00"}); err != nil {
		t.Fatalf("intact frame lost: %v", err)
	}
	if _, _, err := r.Frame(Spec{Var: "T", Step: 2, Cam: "cam00"}); err == nil {
		t.Fatal("torn frame served")
	}
	if r.Stats().Dropped == 0 {
		t.Fatal("dropped counter did not move")
	}
}

// TestOrphanTailHarmless: bytes appended to the segment after the last
// indexed blob (a crash between segment append and index write) are
// skipped over — the store reopens and keeps appending safely.
func TestOrphanTailHarmless(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutFrame("T", 1, "cam00", frame(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	f, err := os.OpenFile(filepath.Join(dir, segmentFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("orphan blob bytes the index never saw"))
	f.Close()

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.Frame(Spec{Var: "T", Step: 1, Cam: "cam00"}); err != nil {
		t.Fatal(err)
	}
	d2, err := r.PutFrame("T", 2, "cam00", frame(2))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := frame(2).PNG()
	if got, err := r.Blob(d2); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("post-orphan append unreadable: %v", err)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	png1, _ := frame(1).PNG()
	s.SetCacheBytes(int64(len(png1)) + 16) // room for roughly one frame
	d1, _ := s.Put(Spec{Var: "T", Step: 1, Cam: "cam00"}, png1)
	png2, _ := frame(2).PNG()
	d2, _ := s.Put(Spec{Var: "T", Step: 2, Cam: "cam00"}, png2)
	if _, err := s.Blob(d2); err != nil {
		t.Fatal(err)
	}
	h0 := s.Stats().CacheHits
	if _, err := s.Blob(d2); err != nil {
		t.Fatal(err)
	}
	if s.Stats().CacheHits != h0+1 {
		t.Fatal("expected a cache hit on the resident blob")
	}
	m0 := s.Stats().CacheMisses
	if _, err := s.Blob(d1); err != nil {
		t.Fatal(err)
	}
	if s.Stats().CacheMisses != m0+1 {
		t.Fatal("expected a cache miss on the evicted blob")
	}
}

func TestSpecValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	png, _ := frame(0).PNG()
	for _, sp := range []Spec{
		{Var: "", Step: 1, Cam: "cam00"},
		{Var: "T", Step: 1, Cam: ""},
		{Var: "a/b", Step: 1, Cam: "cam00"},
		{Var: "T", Step: -1, Cam: "cam00"},
	} {
		if _, err := s.Put(sp, png); err == nil {
			t.Fatalf("spec %+v accepted", sp)
		}
	}
	if _, err := s.Put(Spec{Var: "T", Step: 1, Cam: "cam00"}, nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	if _, err := ParseSpec("T/notanumber/cam00"); err == nil {
		t.Fatal("bad step parsed")
	}
	if _, err := ParseSpec("toofew/parts"); err == nil {
		t.Fatal("two-part key parsed")
	}
}

// TestConcurrentReadWrite hammers readers against a writer — run under
// -race this is the store's concurrency gate.
func TestConcurrentReadWrite(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.PutFrame("T", 0, "cam00", frame(0)); err != nil {
		t.Fatal(err)
	}
	const steps = 20
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: a run appending frames
		defer wg.Done()
		for step := 1; step <= steps; step++ {
			for _, cam := range []string{"cam00", "cam01"} {
				if _, err := s.PutFrame("T", step, cam, frame(step)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for v := 0; v < 8; v++ { // readers: viewers polling a live run
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				latest, ok := s.Latest()
				if !ok {
					continue
				}
				sp := Spec{Var: "T", Step: (i + v) % (latest + 1), Cam: "cam00"}
				if _, ok := s.Digest(sp); !ok {
					continue
				}
				if _, _, err := s.Frame(sp); err != nil {
					t.Errorf("viewer %d: %v", v, err)
					return
				}
				s.Info()
				s.StepFrames(latest)
			}
		}(v)
	}
	wg.Wait()
	if got := s.Stats().Frames; got != 2*steps+1 {
		t.Fatalf("frames %d, want %d", got, 2*steps+1)
	}
}

func TestInfoShape(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for step := 1; step <= 2; step++ {
		for _, v := range []string{"T.hybrid", "T.insitu"} {
			if _, err := s.PutFrame(v, step, "cam00", frame(step)); err != nil {
				t.Fatal(err)
			}
		}
	}
	info := s.Info()
	if fmt.Sprint(info.Vars) != "[T.hybrid T.insitu]" {
		t.Fatalf("vars %v", info.Vars)
	}
	if len(info.Specs) != 4 || info.Specs[0] != "T.hybrid/1/cam00" {
		t.Fatalf("specs %v", info.Specs)
	}
	if got := s.StepFrames(2); len(got) != 2 {
		t.Fatalf("step frames %v", got)
	}
}
