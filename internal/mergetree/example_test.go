package mergetree_test

import (
	"fmt"

	"insitu/internal/grid"
	"insitu/internal/mergetree"
)

// A 1-D profile with two peaks: the merge tree has two maxima joined
// at a saddle, and persistence simplification removes the weaker peak.
func ExampleFromField() {
	b := grid.NewBox(5, 1, 1)
	f := grid.NewField("f", b)
	for i, v := range []float64{1, 5, 2, 4, 1} {
		f.Set(i, 0, 0, v)
	}
	tree := mergetree.FromField(f, b)
	fmt.Printf("maxima=%d saddles=%d\n", len(tree.Maxima()), len(tree.Saddles()))
	simplified := mergetree.Simplify(tree, 2.5) // peak 4 has persistence 2
	fmt.Printf("after eps=2.5: maxima=%d\n", len(simplified.Maxima()))
	// Output:
	// maxima=2 saddles=1
	// after eps=2.5: maxima=1
}

// The hybrid decomposition: per-block boundary-augmented subtrees glue
// into exactly the serial tree.
func ExampleGlue() {
	b := grid.NewBox(8, 4, 1)
	f := grid.NewField("f", b)
	for idx := range f.Data {
		i, j, _ := b.Point(idx)
		f.Data[idx] = float64((i*3+j*7)%11) / 11
	}
	dc, _ := grid.NewDecomp(b, 2, 2, 1)
	var subtrees []*mergetree.Subtree
	for r := 0; r < dc.Ranks(); r++ {
		owned := dc.Block(r)
		ext := owned.Grow(1).Intersect(b)
		st, _ := mergetree.LocalSubtree(f.Extract(ext), b, owned, r, mergetree.KeepSharedBoundary)
		subtrees = append(subtrees, st)
	}
	glued, _, _ := mergetree.Glue(subtrees, mergetree.GlueOptions{Evict: true})
	serial := mergetree.FromField(f, b)
	reduce := func(t *mergetree.Tree) *mergetree.Tree {
		return mergetree.Reduce(t, func(n *mergetree.Node) bool { return false })
	}
	fmt.Println("distributed == serial:", mergetree.Equal(reduce(glued), reduce(serial)))
	// Output:
	// distributed == serial: true
}

// Threshold segmentation and overlap tracking between two steps.
func ExampleTrack() {
	b := grid.NewBox(8, 1, 1)
	mk := func(center int) *mergetree.Segmentation {
		f := grid.NewField("f", b)
		for i := 0; i < 8; i++ {
			d := i - center
			if d < 0 {
				d = -d
			}
			f.Set(i, 0, 0, 1-float64(d)/4)
		}
		return mergetree.SegmentField(f, b, 0.7)
	}
	matches := mergetree.Track(mk(3), mk(4)) // feature moved one cell
	fmt.Printf("matches=%d overlap=%d\n", len(matches), matches[0].Overlap)
	// Output:
	// matches=1 overlap=2
}
