package mergetree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"insitu/internal/grid"
	"insitu/internal/stats"
)

// Feature-based statistics combine the merge-tree segmentation with
// the single-pass statistics engine: descriptive statistics of one
// variable conditioned on the superlevel-set features of another (for
// example, heat-release statistics per burning region). The paper's
// conclusion proposes exactly this combination; this file implements
// it in the same hybrid decomposition as the other analyses.
//
// In-situ, each rank segments its extended block, picks each local
// component's sweep-highest member as its representative (always a
// local maximum of the block, hence always retained in the reduced
// subtree), and accumulates the conditioned variable's moments over
// the component's *owned* voxels. In-transit, the representative is
// mapped to its global feature through the glued tree's segmentation,
// and partial moments with the same global feature combine.

// FeaturePartial is one rank's contribution to one feature's
// statistics.
type FeaturePartial struct {
	Rep     int64 // id of the local component's highest vertex
	Moments stats.Moments
}

// LocalFeatureStats runs the in-situ side for one rank: segment the
// extended block of `seg` at the threshold and accumulate `cond` over
// each component's voxels inside the owned box. Both fields must cover
// the extended block.
func LocalFeatureStats(segVar, cond *grid.Field, global, owned grid.Box, threshold float64) ([]FeaturePartial, error) {
	ext := owned.Grow(1).Intersect(global)
	if !segVar.Box.ContainsBox(ext) || !cond.Box.ContainsBox(ext) {
		return nil, fmt.Errorf("mergetree: fields do not cover extended block %v", ext)
	}
	block := segVar
	if segVar.Box != ext {
		block = segVar.Extract(ext)
	}
	s := SegmentField(block, global, threshold)

	// Highest member per component.
	rep := make(map[int64]int64)
	repVal := make(map[int64]float64)
	for id, label := range s.Labels {
		i, j, k := grid.GlobalPoint(global, id)
		v := block.At(i, j, k)
		if cur, ok := rep[label]; !ok || Above(v, id, repVal[label], cur) {
			rep[label] = id
			repVal[label] = v
		}
	}
	// Owned-voxel moments per component.
	acc := make(map[int64]*stats.Moments)
	for id, label := range s.Labels {
		i, j, k := grid.GlobalPoint(global, id)
		if !owned.Contains(i, j, k) {
			continue
		}
		m, ok := acc[label]
		if !ok {
			m = stats.NewMoments()
			acc[label] = m
		}
		m.Update(cond.At(i, j, k))
	}
	out := make([]FeaturePartial, 0, len(acc))
	for label, m := range acc {
		out = append(out, FeaturePartial{Rep: rep[label], Moments: *m})
	}
	return out, nil
}

// FeatureStat is one global feature's conditioned statistics.
type FeatureStat struct {
	Feature int64 // global segmentation label
	MaxID   int64 // the feature's highest vertex
	Stats   stats.Derived
}

// GlobalFeatureStats runs the in-transit side: given the glued global
// tree and every rank's partials, map each representative to its
// global feature and combine.
func GlobalFeatureStats(tree *Tree, threshold float64, partials [][]FeaturePartial) ([]FeatureStat, error) {
	seg := Segment(tree, threshold)
	feats := seg.Features(tree)
	maxOf := make(map[int64]int64, len(feats))
	for _, f := range feats {
		maxOf[f.Label] = f.MaxID
	}
	acc := make(map[int64]*stats.Moments)
	for _, ps := range partials {
		for _, p := range ps {
			label, ok := seg.Labels[p.Rep]
			if !ok {
				return nil, fmt.Errorf("mergetree: representative %d not in global segmentation (threshold mismatch or missing boundary augmentation?)", p.Rep)
			}
			m, ok2 := acc[label]
			if !ok2 {
				m = stats.NewMoments()
				acc[label] = m
			}
			mm := p.Moments
			m.Combine(&mm)
		}
	}
	out := make([]FeatureStat, 0, len(acc))
	for label, m := range acc {
		out = append(out, FeatureStat{Feature: label, MaxID: maxOf[label], Stats: stats.Derive(m)})
	}
	sortFeatureStats(out)
	return out, nil
}

func sortFeatureStats(fs []FeatureStat) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && less(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func less(a, b FeatureStat) bool {
	if a.Stats.N != b.Stats.N {
		return a.Stats.N > b.Stats.N
	}
	return a.Feature < b.Feature
}

// Wire format for a slice of FeaturePartial: u32 count, then per item
// (i64 rep, i64 n, 6 x f64 moments fields).

// MarshalFeaturePartials serializes the in-situ result.
func MarshalFeaturePartials(ps []FeaturePartial) []byte {
	var buf bytes.Buffer
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(ps)))
	buf.Write(b4[:])
	var b8 [8]byte
	putU := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		buf.Write(b8[:])
	}
	for _, p := range ps {
		putU(uint64(p.Rep))
		putU(uint64(p.Moments.N))
		for _, f := range []float64{p.Moments.Min, p.Moments.Max, p.Moments.Mean,
			p.Moments.M2, p.Moments.M3, p.Moments.M4} {
			putU(math.Float64bits(f))
		}
	}
	return buf.Bytes()
}

// UnmarshalFeaturePartials reverses MarshalFeaturePartials.
func UnmarshalFeaturePartials(p []byte) ([]FeaturePartial, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("mergetree: feature partials payload too short")
	}
	n := int(binary.LittleEndian.Uint32(p[:4]))
	p = p[4:]
	const rec = 8 * 8
	if len(p) < n*rec {
		return nil, fmt.Errorf("mergetree: truncated feature partials")
	}
	out := make([]FeaturePartial, n)
	for i := 0; i < n; i++ {
		out[i].Rep = int64(binary.LittleEndian.Uint64(p[:8]))
		out[i].Moments.N = int64(binary.LittleEndian.Uint64(p[8:16]))
		fs := make([]float64, 6)
		for j := 0; j < 6; j++ {
			fs[j] = math.Float64frombits(binary.LittleEndian.Uint64(p[16+8*j:]))
		}
		out[i].Moments.Min = fs[0]
		out[i].Moments.Max = fs[1]
		out[i].Moments.Mean = fs[2]
		out[i].Moments.M2 = fs[3]
		out[i].Moments.M3 = fs[4]
		out[i].Moments.M4 = fs[5]
		p = p[rec:]
	}
	return out, nil
}
