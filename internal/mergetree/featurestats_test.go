package mergetree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"insitu/internal/grid"
	"insitu/internal/stats"
)

// serialFeatureStats computes the reference: segment the global field,
// accumulate cond per component, keyed by the component's highest
// vertex.
func serialFeatureStats(segVar, cond *grid.Field, global grid.Box, threshold float64) map[int64]stats.Derived {
	s := SegmentField(segVar, global, threshold)
	rep := make(map[int64]int64)
	repVal := make(map[int64]float64)
	acc := make(map[int64]*stats.Moments)
	for id, label := range s.Labels {
		i, j, k := grid.GlobalPoint(global, id)
		v := segVar.At(i, j, k)
		if cur, ok := rep[label]; !ok || Above(v, id, repVal[label], cur) {
			rep[label] = id
			repVal[label] = v
		}
		m, ok := acc[label]
		if !ok {
			m = stats.NewMoments()
			acc[label] = m
		}
		m.Update(cond.At(i, j, k))
	}
	out := make(map[int64]stats.Derived)
	for label, m := range acc {
		out[rep[label]] = stats.Derive(m)
	}
	return out
}

func TestFeatureStatsHybridMatchesSerial(t *testing.T) {
	b := grid.NewBox(20, 14, 8)
	segVar := smoothField(b, 0.7)
	rng := rand.New(rand.NewSource(33))
	cond := grid.NewField("w", b)
	for i := range cond.Data {
		cond.Data[i] = rng.NormFloat64()
	}
	threshold := 0.4

	want := serialFeatureStats(segVar, cond, b, threshold)
	if len(want) < 2 {
		t.Fatalf("test field should have several features, got %d", len(want))
	}

	dc, err := grid.NewDecomp(b, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var subtrees []*Subtree
	var partials [][]FeaturePartial
	for r := 0; r < dc.Ranks(); r++ {
		owned := dc.Block(r)
		ext := owned.Grow(1).Intersect(b)
		st, err := LocalSubtree(segVar.Extract(ext), b, owned, r, KeepSharedBoundary)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := LocalFeatureStats(segVar.Extract(ext), cond.Extract(ext), b, owned, threshold)
		if err != nil {
			t.Fatal(err)
		}
		// Exercise the wire format too.
		ps2, err := UnmarshalFeaturePartials(MarshalFeaturePartials(ps))
		if err != nil {
			t.Fatal(err)
		}
		subtrees = append(subtrees, st)
		partials = append(partials, ps2)
	}
	tree, _, err := Glue(subtrees, GlueOptions{Evict: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := GlobalFeatureStats(tree, threshold, partials)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("feature count: want %d, got %d", len(want), len(got))
	}
	for _, fs := range got {
		ref, ok := want[fs.MaxID]
		if !ok {
			t.Fatalf("feature with max %d not in serial reference", fs.MaxID)
		}
		if fs.Stats.N != ref.N {
			t.Fatalf("feature %d: count %d vs serial %d", fs.MaxID, fs.Stats.N, ref.N)
		}
		if math.Abs(fs.Stats.Mean-ref.Mean) > 1e-9 || math.Abs(fs.Stats.Variance-ref.Variance) > 1e-9 {
			t.Fatalf("feature %d: stats diverge: %+v vs %+v", fs.MaxID, fs.Stats, ref)
		}
		if fs.Stats.Min != ref.Min || fs.Stats.Max != ref.Max {
			t.Fatalf("feature %d: extrema diverge", fs.MaxID)
		}
	}
	// Output must be sorted by descending size.
	if !sort.SliceIsSorted(got, func(i, j int) bool {
		if got[i].Stats.N != got[j].Stats.N {
			return got[i].Stats.N > got[j].Stats.N
		}
		return got[i].Feature < got[j].Feature
	}) {
		t.Fatal("feature stats not sorted")
	}
}

func TestLocalFeatureStatsValidation(t *testing.T) {
	b := grid.NewBox(8, 8, 1)
	f := smoothField(b, 0)
	small := f.Extract(grid.NewBox(2, 2, 1))
	if _, err := LocalFeatureStats(small, small, b, grid.NewBox(8, 8, 1), 0.5); err == nil {
		t.Fatal("field not covering extended block must error")
	}
}

func TestFeaturePartialsMarshalErrors(t *testing.T) {
	if _, err := UnmarshalFeaturePartials(nil); err == nil {
		t.Fatal("empty payload must error")
	}
	ps := []FeaturePartial{{Rep: 3}}
	p := MarshalFeaturePartials(ps)
	if _, err := UnmarshalFeaturePartials(p[:len(p)-4]); err == nil {
		t.Fatal("truncated payload must error")
	}
	got, err := UnmarshalFeaturePartials(p)
	if err != nil || len(got) != 1 || got[0].Rep != 3 {
		t.Fatalf("round trip failed: %v %v", got, err)
	}
}

func TestGlobalFeatureStatsUnknownRep(t *testing.T) {
	values := map[int64]float64{0: 5, 1: 4, 2: 3}
	edges := [][2]int64{{0, 1}, {1, 2}}
	tree, err := FromGraph(values, edges)
	if err != nil {
		t.Fatal(err)
	}
	m := stats.NewMoments()
	m.Update(1)
	_, err = GlobalFeatureStats(tree, 3.5, [][]FeaturePartial{{{Rep: 99, Moments: *m}}})
	if err == nil {
		t.Fatal("unknown representative must error")
	}
}
