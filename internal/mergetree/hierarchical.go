package mergetree

import (
	"fmt"
	"sort"
	"sync"

	"insitu/internal/grid"
)

// Hierarchical gluing parallelizes the in-transit stage: the paper
// notes that "although in-transit computations for a given analysis
// and timestep are serial, ... this can easily be made parallel as
// well", and the related work it builds on (Pascucci &
// Cole-McLaughlin) glues by k-nary merging of regions of the domain.
//
// Subtrees merge pairwise along the x, then y, then z axis of the
// block lattice; each merge glues the pair's graphs, reduces the
// result to the critical points plus the vertices still shared with
// blocks outside the merged region (the region's one-cell shell and
// ghost layer), and repacks it as a subtree over the union box.
// Independent merges at the same level run concurrently.

// regionSubtree pairs a subtree with the region it summarizes.
type regionSubtree struct {
	region grid.Box
	st     *Subtree
}

// GlueHierarchical merges the per-rank subtrees into the global merge
// tree using parallel pairwise region merges, with up to `workers`
// concurrent merges. Intermediate reductions drop interior regular
// vertices, so the result carries fewer augmented nodes than Glue's,
// but its critical structure (maxima, saddles, arcs) is identical.
// Subtree Block boxes must tile a box lattice (as produced by
// grid.Decomp); global is the full domain.
func GlueHierarchical(subtrees []*Subtree, global grid.Box, workers int) (*Tree, error) {
	if len(subtrees) == 0 {
		return nil, fmt.Errorf("mergetree: no subtrees to glue")
	}
	if workers < 1 {
		workers = 1
	}
	cur := make([]regionSubtree, len(subtrees))
	for i, st := range subtrees {
		cur[i] = regionSubtree{region: st.Block, st: st}
	}
	sem := make(chan struct{}, workers)

	for axis := 0; axis < 3 && len(cur) > 1; axis++ {
		for {
			pairs, rest := pairAlong(cur, axis)
			if len(pairs) == 0 {
				break
			}
			next := make([]regionSubtree, len(pairs))
			errs := make([]error, len(pairs))
			var wg sync.WaitGroup
			for i, p := range pairs {
				wg.Add(1)
				sem <- struct{}{}
				go func(i int, a, b regionSubtree) {
					defer wg.Done()
					defer func() { <-sem }()
					merged, err := mergePair(a, b, global, len(rest) == 0 && len(pairs) == 1)
					next[i] = merged
					errs[i] = err
				}(i, p[0], p[1])
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			cur = append(rest, next...)
		}
	}
	if len(cur) != 1 {
		return nil, fmt.Errorf("mergetree: hierarchical glue did not converge: %d regions left (non-lattice blocks?)", len(cur))
	}
	// The final product may still be a reduced subtree (when the last
	// merge was not flagged final, e.g. a single input); glue it to a
	// tree.
	return GlueSerial([]*Subtree{cur[0].st})
}

// pairAlong finds disjoint pairs of regions adjacent along the axis
// whose union is a box; rest holds everything unpaired this round.
func pairAlong(cur []regionSubtree, axis int) (pairs [][2]regionSubtree, rest []regionSubtree) {
	order := append([]regionSubtree{}, cur...)
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i].region, order[j].region
		// Sort by the off-axis coordinates first, then along the axis,
		// so mergeable neighbors become adjacent in the order.
		for d := 2; d >= 0; d-- {
			if d == axis {
				continue
			}
			if a.Lo[d] != b.Lo[d] {
				return a.Lo[d] < b.Lo[d]
			}
		}
		return a.Lo[axis] < b.Lo[axis]
	})
	used := make([]bool, len(order))
	for i := 0; i < len(order); i++ {
		if used[i] {
			continue
		}
		paired := false
		if i+1 < len(order) && !used[i+1] && unionIsBox(order[i].region, order[i+1].region, axis) {
			pairs = append(pairs, [2]regionSubtree{order[i], order[i+1]})
			used[i], used[i+1] = true, true
			paired = true
		}
		if !paired {
			rest = append(rest, order[i])
			used[i] = true
		}
	}
	return
}

// unionIsBox reports whether two boxes abut exactly along the axis
// with identical cross sections.
func unionIsBox(a, b grid.Box, axis int) bool {
	for d := 0; d < 3; d++ {
		if d == axis {
			continue
		}
		if a.Lo[d] != b.Lo[d] || a.Hi[d] != b.Hi[d] {
			return false
		}
	}
	return a.Hi[axis] == b.Lo[axis]
}

// mergePair glues two region subtrees. For the final merge the full
// tree is packed without reduction so no information is lost.
func mergePair(a, b regionSubtree, global grid.Box, final bool) (regionSubtree, error) {
	union := a.region.Union(b.region)
	tree, _, err := Glue([]*Subtree{a.st, b.st}, GlueOptions{})
	if err != nil {
		return regionSubtree{}, err
	}
	var keep func(n *Node) bool
	if final {
		keep = func(n *Node) bool { return true }
	} else {
		interior := union.Grow(-1)
		keep = func(n *Node) bool {
			i, j, k := grid.GlobalPoint(global, n.ID)
			return !interior.Contains(i, j, k)
		}
	}
	red := Reduce(tree, keep)
	return regionSubtree{region: union, st: packSubtree(red, a.st.Rank, union)}, nil
}
