package mergetree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"insitu/internal/grid"
)

// hierSubtrees builds the per-rank subtrees for a field/decomposition.
func hierSubtrees(t *testing.T, f *grid.Field, px, py, pz int) []*Subtree {
	t.Helper()
	dc, err := grid.NewDecomp(f.Box, px, py, pz)
	if err != nil {
		t.Fatal(err)
	}
	var subtrees []*Subtree
	for r := 0; r < dc.Ranks(); r++ {
		owned := dc.Block(r)
		ext := owned.Grow(1).Intersect(f.Box)
		st, err := LocalSubtree(f.Extract(ext), f.Box, owned, r, KeepSharedBoundary)
		if err != nil {
			t.Fatal(err)
		}
		subtrees = append(subtrees, st)
	}
	return subtrees
}

func TestGlueHierarchicalMatchesSerial(t *testing.T) {
	cases := []struct {
		nx, ny, nz, px, py, pz, workers int
	}{
		{16, 12, 8, 2, 2, 2, 1},
		{16, 12, 8, 2, 2, 2, 4},
		{20, 15, 6, 4, 3, 2, 4},
		{13, 9, 5, 3, 2, 1, 2}, // uneven blocks, odd counts
		{10, 10, 1, 5, 2, 1, 3},
	}
	for ci, c := range cases {
		b := grid.NewBox(c.nx, c.ny, c.nz)
		f := smoothField(b, float64(ci)*0.7)
		serial := criticalReduce(FromField(f, b))
		subtrees := hierSubtrees(t, f, c.px, c.py, c.pz)
		got, err := GlueHierarchical(subtrees, b, c.workers)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if !Equal(serial, criticalReduce(got)) {
			t.Fatalf("case %d: hierarchical glue differs from serial", ci)
		}
	}
}

func TestGlueHierarchicalProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny, nz := 4+rng.Intn(10), 4+rng.Intn(8), 1+rng.Intn(4)
		b := grid.NewBox(nx, ny, nz)
		f := randomField(rng, b)
		px := 1 + rng.Intn(min(3, nx))
		py := 1 + rng.Intn(min(3, ny))
		pz := 1 + rng.Intn(min(2, nz))
		dc, err := grid.NewDecomp(b, px, py, pz)
		if err != nil {
			return false
		}
		var subtrees []*Subtree
		for r := 0; r < dc.Ranks(); r++ {
			owned := dc.Block(r)
			ext := owned.Grow(1).Intersect(b)
			st, err := LocalSubtree(f.Extract(ext), b, owned, r, KeepSharedBoundary)
			if err != nil {
				return false
			}
			subtrees = append(subtrees, st)
		}
		got, err := GlueHierarchical(subtrees, b, 1+int(seed%4))
		if err != nil {
			return false
		}
		serial := criticalReduce(FromField(f, b))
		return Equal(serial, criticalReduce(got))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGlueHierarchicalSingleBlock(t *testing.T) {
	b := grid.NewBox(8, 6, 4)
	f := smoothField(b, 0.3)
	subtrees := hierSubtrees(t, f, 1, 1, 1)
	got, err := GlueHierarchical(subtrees, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	serial := criticalReduce(FromField(f, b))
	if !Equal(serial, criticalReduce(got)) {
		t.Fatal("single-block hierarchical glue differs from serial")
	}
}

func TestGlueHierarchicalErrors(t *testing.T) {
	if _, err := GlueHierarchical(nil, grid.NewBox(4, 4, 4), 2); err == nil {
		t.Fatal("empty input must error")
	}
	// Non-lattice regions cannot converge.
	b := grid.NewBox(8, 8, 1)
	f := smoothField(b, 0)
	stA, err := LocalSubtree(f.Extract(grid.NewBox(5, 8, 1)), b, grid.NewBox(4, 8, 1), 0, KeepSharedBoundary)
	if err != nil {
		t.Fatal(err)
	}
	// A second region that overlaps rather than abuts.
	ext := grid.Box{Lo: [3]int{2, 0, 0}, Hi: [3]int{8, 8, 1}}
	stB, err := LocalSubtree(f.Extract(ext), b, grid.Box{Lo: [3]int{3, 0, 0}, Hi: [3]int{8, 8, 1}}, 1, KeepSharedBoundary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GlueHierarchical([]*Subtree{stA, stB}, b, 1); err == nil {
		t.Fatal("non-lattice regions must error")
	}
}

func TestUnionIsBox(t *testing.T) {
	a := grid.NewBox(4, 4, 4)
	bx := grid.Box{Lo: [3]int{4, 0, 0}, Hi: [3]int{8, 4, 4}}
	if !unionIsBox(a, bx, 0) {
		t.Fatal("abutting x-neighbors must union to a box")
	}
	if unionIsBox(a, bx, 1) {
		t.Fatal("wrong axis must not match")
	}
	off := grid.Box{Lo: [3]int{4, 1, 0}, Hi: [3]int{8, 5, 4}}
	if unionIsBox(a, off, 0) {
		t.Fatal("mismatched cross sections must not pair")
	}
}
