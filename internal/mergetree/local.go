package mergetree

import (
	"fmt"
	"sort"

	"insitu/internal/grid"
	"insitu/internal/parallel"
)

// FromField computes the augmented merge tree of a scalar field over
// its box using 6-neighbor (face) adjacency. Vertex ids are global
// indices within the `global` box, so trees from different blocks of
// one domain share ids on shared vertices. This is the low-overhead
// in-core sweep run in-situ on each block.
func FromField(f *grid.Field, global grid.Box) *Tree {
	b := f.Box
	d := b.Dims()
	n := b.Size()
	verts := make([]vertexRef, n)
	for idx := 0; idx < n; idx++ {
		i, j, k := b.Point(idx)
		verts[idx] = vertexRef{id: grid.GlobalIndex(global, i, j, k), val: f.Data[idx]}
	}
	// Face adjacency expressed in local linear offsets.
	var nbuf [6]int
	neighbors := func(idx int) []int {
		i, j, k := b.Point(idx)
		out := nbuf[:0]
		if i > b.Lo[0] {
			out = append(out, idx-1)
		}
		if i < b.Hi[0]-1 {
			out = append(out, idx+1)
		}
		if j > b.Lo[1] {
			out = append(out, idx-d[0])
		}
		if j < b.Hi[1]-1 {
			out = append(out, idx+d[0])
		}
		if k > b.Lo[2] {
			out = append(out, idx-d[0]*d[1])
		}
		if k < b.Hi[2]-1 {
			out = append(out, idx+d[0]*d[1])
		}
		return out
	}
	return build(verts, neighbors)
}

// BoundaryPolicy selects which vertices, besides critical points, a
// reduced subtree retains so neighboring subtrees can be glued.
type BoundaryPolicy int

const (
	// KeepSharedBoundary retains every vertex the block shares with a
	// neighboring extended block (the one-point shell inside the block
	// plus the ghost layer). This is the provably sufficient
	// augmentation: gluing reduced subtrees reproduces the exact
	// global merge tree.
	KeepSharedBoundary BoundaryPolicy = iota
	// KeepCornersAndBoundaryMaxima retains only the sub-domain corners
	// and the maxima restricted to boundary components, the minimal
	// set the paper describes. Under this library's graph-gluing
	// scheme it is insufficient on some inputs, which the ablation
	// tests demonstrate; it is provided for that comparison.
	KeepCornersAndBoundaryMaxima
	// KeepNone performs no boundary augmentation. Gluing fails on any
	// feature spanning a block boundary; provided for ablation.
	KeepNone
)

// Subtree is the intermediate product of the in-situ stage: the
// reduced merge tree of one extended block, ready to be shipped to the
// staging area.
type Subtree struct {
	Rank  int      // producing rank
	Block grid.Box // the rank's owned block (without ghost layer)
	// Verts holds (id, value) pairs sorted in descending sweep order.
	Verts []SubtreeVert
	// Edges holds (hi, lo) id pairs sorted by descending sweep order
	// of the lower endpoint, the order the streaming aggregation
	// protocol requires for memory-bounded eviction.
	Edges []Arc
}

// SubtreeVert is one retained vertex of a reduced subtree. Degree is
// the number of subtree edges incident to the vertex within this
// block's stream; the in-transit stage uses it to detect when a vertex
// is finalized.
type SubtreeVert struct {
	ID     int64
	Value  float64
	Degree int
}

// LocalSubtrees runs the in-situ stage for every rank's ghosted block
// concurrently on the shared worker pool: fields[i] must cover
// blocks[i] grown by one ghost layer (clipped to global). Each block's
// sweep is independent, so the returned subtrees are bitwise identical
// to rank-by-rank LocalSubtree calls at any pool width; the slice is
// ordered by rank. This is the driver used when one OS process hosts
// many ranks (benches, offline tools, post-hoc reconstruction).
func LocalSubtrees(fields []*grid.Field, global grid.Box, blocks []grid.Box, policy BoundaryPolicy) ([]*Subtree, error) {
	if len(fields) != len(blocks) {
		return nil, fmt.Errorf("mergetree: %d fields for %d blocks", len(fields), len(blocks))
	}
	subtrees := make([]*Subtree, len(fields))
	errs := make([]error, len(fields))
	parallel.For(len(fields), func(r int) {
		subtrees[r], errs[r] = LocalSubtree(fields[r], global, blocks[r], r, policy)
	})
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mergetree: rank %d: %w", r, err)
		}
	}
	return subtrees, nil
}

// LocalSubtree runs the full in-situ stage for one rank: extract the
// extended block (owned block grown by one ghost layer, clipped to the
// global domain) from the rank's field, sweep it, reduce it under the
// policy, and package the result. The field must cover the extended
// block; typically it is the rank's ghosted field.
func LocalSubtree(f *grid.Field, global, owned grid.Box, rank int, policy BoundaryPolicy) (*Subtree, error) {
	ext := owned.Grow(1).Intersect(global)
	if !f.Box.ContainsBox(ext) {
		return nil, fmt.Errorf("mergetree: field box %v does not cover extended block %v", f.Box, ext)
	}
	blockField := f
	if f.Box != ext {
		blockField = f.Extract(ext)
	}
	t := FromField(blockField, global)

	keep := keepFunc(t, global, owned, ext, policy)
	red := Reduce(t, keep)
	return packSubtree(red, rank, owned), nil
}

// keepFunc returns the vertex-retention predicate for a policy.
func keepFunc(t *Tree, global, owned, ext grid.Box, policy BoundaryPolicy) func(n *Node) bool {
	switch policy {
	case KeepNone:
		return func(n *Node) bool { return false }
	case KeepCornersAndBoundaryMaxima:
		corners := map[int64]bool{}
		for _, c := range owned.Corners() {
			corners[grid.GlobalIndex(global, c[0], c[1], c[2])] = true
		}
		return func(n *Node) bool {
			if corners[n.ID] {
				return true
			}
			// Maxima restricted to boundary components: boundary
			// vertices all of whose boundary neighbors are lower.
			i, j, k := grid.GlobalPoint(global, n.ID)
			if !ext.OnBoundary(i, j, k) {
				return false
			}
			return boundaryRestrictedMax(t, global, ext, n)
		}
	default: // KeepSharedBoundary
		interior := owned.Grow(-1)
		return func(n *Node) bool {
			i, j, k := grid.GlobalPoint(global, n.ID)
			return !interior.Contains(i, j, k)
		}
	}
}

// boundaryRestrictedMax reports whether node n, lying on the boundary
// of box ext, is a local maximum of the field restricted to that
// boundary.
func boundaryRestrictedMax(t *Tree, global, ext grid.Box, n *Node) bool {
	i, j, k := grid.GlobalPoint(global, n.ID)
	for _, d := range [][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
		ni, nj, nk := i+d[0], j+d[1], k+d[2]
		if !ext.Contains(ni, nj, nk) || !ext.OnBoundary(ni, nj, nk) {
			continue
		}
		u := t.Nodes[grid.GlobalIndex(global, ni, nj, nk)]
		if u != nil && Above(u.Value, u.ID, n.Value, n.ID) {
			return false
		}
	}
	return true
}

// Reduce contracts every regular node for which keep returns false,
// yielding the reduced tree over critical points plus retained
// vertices. Roots, maxima and saddles are always kept.
func Reduce(t *Tree, keep func(n *Node) bool) *Tree {
	retained := func(n *Node) bool {
		return !n.IsRegular() || keep(n)
	}
	out := &Tree{Nodes: make(map[int64]*Node)}
	get := func(n *Node) *Node {
		m, ok := out.Nodes[n.ID]
		if !ok {
			m = &Node{ID: n.ID, Value: n.Value}
			out.Nodes[n.ID] = m
		}
		return m
	}
	for _, n := range t.Nodes {
		if !retained(n) {
			continue
		}
		m := get(n)
		// Walk down to the next retained node.
		d := n.Down
		for d != nil && !retained(d) {
			d = d.Down
		}
		if d != nil {
			dm := get(d)
			m.Down = dm
			dm.Ups = append(dm.Ups, m)
		} else if n.Down == nil {
			out.Roots = append(out.Roots, m)
		}
	}
	sortNodes(out.Roots)
	return out
}

// packSubtree converts a reduced tree into the wire-ordered Subtree.
func packSubtree(t *Tree, rank int, block grid.Box) *Subtree {
	st := &Subtree{Rank: rank, Block: block}
	deg := make(map[int64]int, len(t.Nodes))
	vals := make(map[int64]float64, len(t.Nodes))
	for _, n := range t.Nodes {
		vals[n.ID] = n.Value
		if n.Down != nil {
			st.Edges = append(st.Edges, Arc{Hi: n.ID, Lo: n.Down.ID})
			deg[n.ID]++
			deg[n.Down.ID]++
		}
	}
	for _, n := range t.Nodes {
		st.Verts = append(st.Verts, SubtreeVert{ID: n.ID, Value: n.Value, Degree: deg[n.ID]})
	}
	sort.Slice(st.Verts, func(i, j int) bool {
		return Above(st.Verts[i].Value, st.Verts[i].ID, st.Verts[j].Value, st.Verts[j].ID)
	})
	sort.Slice(st.Edges, func(i, j int) bool {
		a, b := st.Edges[i], st.Edges[j]
		return Above(vals[a.Lo], a.Lo, vals[b.Lo], b.Lo)
	})
	return st
}
