package mergetree

import (
	"encoding/binary"
	"fmt"
	"math"

	"insitu/internal/grid"
)

// Wire format of a reduced subtree, the intermediate data the hybrid
// topology algorithm ships from the in-situ to the in-transit stage.
// Layout (little endian):
//
//	u32 rank
//	6 x i64 block box (lo, hi)
//	u64 vertex count, then (i64 id, f64 value, u32 degree) per vertex
//	u64 edge count, then (i64 hi, i64 lo) per edge
//
// At 16 bytes per vertex and edge, a reduced subtree is orders of
// magnitude smaller than the block's raw field — the data reduction
// the hybrid formulation relies on (87 MB total vs 98.5 GB raw in the
// paper's run).

// MarshalSize returns the exact encoded size of the subtree.
func (st *Subtree) MarshalSize() int {
	return 4 + 6*8 + 8 + 20*len(st.Verts) + 8 + 16*len(st.Edges)
}

// AppendMarshal appends the subtree's encoding to dst and returns the
// extended slice; with a preallocated dst the pack is allocation-free.
func (st *Subtree) AppendMarshal(dst []byte) []byte {
	off := len(dst)
	need := st.MarshalSize()
	if cap(dst)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	binary.LittleEndian.PutUint32(dst[off:], uint32(st.Rank))
	off += 4
	for d := 0; d < 3; d++ {
		binary.LittleEndian.PutUint64(dst[off:], uint64(int64(st.Block.Lo[d])))
		off += 8
	}
	for d := 0; d < 3; d++ {
		binary.LittleEndian.PutUint64(dst[off:], uint64(int64(st.Block.Hi[d])))
		off += 8
	}
	binary.LittleEndian.PutUint64(dst[off:], uint64(len(st.Verts)))
	off += 8
	for _, v := range st.Verts {
		binary.LittleEndian.PutUint64(dst[off:], uint64(v.ID))
		binary.LittleEndian.PutUint64(dst[off+8:], math.Float64bits(v.Value))
		binary.LittleEndian.PutUint32(dst[off+16:], uint32(v.Degree))
		off += 20
	}
	binary.LittleEndian.PutUint64(dst[off:], uint64(len(st.Edges)))
	off += 8
	for _, e := range st.Edges {
		binary.LittleEndian.PutUint64(dst[off:], uint64(e.Hi))
		binary.LittleEndian.PutUint64(dst[off+8:], uint64(e.Lo))
		off += 16
	}
	return dst
}

// Marshal serializes the subtree.
func (st *Subtree) Marshal() []byte {
	return st.AppendMarshal(make([]byte, 0, st.MarshalSize()))
}

// UnmarshalSubtree reconstructs a subtree from Marshal's output.
func UnmarshalSubtree(p []byte) (*Subtree, error) {
	if len(p) < 4+7*8 {
		return nil, fmt.Errorf("mergetree: subtree payload too short (%d bytes)", len(p))
	}
	st := &Subtree{}
	st.Rank = int(binary.LittleEndian.Uint32(p[:4]))
	p = p[4:]
	var box grid.Box
	for d := 0; d < 3; d++ {
		box.Lo[d] = int(int64(binary.LittleEndian.Uint64(p[:8])))
		p = p[8:]
	}
	for d := 0; d < 3; d++ {
		box.Hi[d] = int(int64(binary.LittleEndian.Uint64(p[:8])))
		p = p[8:]
	}
	st.Block = box
	nv := int(binary.LittleEndian.Uint64(p[:8]))
	p = p[8:]
	if len(p) < 20*nv+8 {
		return nil, fmt.Errorf("mergetree: truncated subtree vertices")
	}
	st.Verts = make([]SubtreeVert, nv)
	for i := 0; i < nv; i++ {
		st.Verts[i].ID = int64(binary.LittleEndian.Uint64(p[:8]))
		st.Verts[i].Value = math.Float64frombits(binary.LittleEndian.Uint64(p[8:16]))
		st.Verts[i].Degree = int(binary.LittleEndian.Uint32(p[16:20]))
		p = p[20:]
	}
	ne := int(binary.LittleEndian.Uint64(p[:8]))
	p = p[8:]
	if len(p) < 16*ne {
		return nil, fmt.Errorf("mergetree: truncated subtree edges")
	}
	st.Edges = make([]Arc, ne)
	for i := 0; i < ne; i++ {
		st.Edges[i].Hi = int64(binary.LittleEndian.Uint64(p[:8]))
		st.Edges[i].Lo = int64(binary.LittleEndian.Uint64(p[8:16]))
		p = p[16:]
	}
	return st, nil
}
