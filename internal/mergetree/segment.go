package mergetree

import (
	"sort"

	"insitu/internal/grid"
	"insitu/internal/stats"
)

// Segmentation labels each vertex of an augmented merge tree with the
// feature (superlevel-set component) it belongs to at a threshold.
// Labels are the node id of the component's lowest vertex above the
// threshold, so they are stable across equivalent constructions.
type Segmentation struct {
	Threshold float64
	// Labels maps vertex id -> component label. Vertices below the
	// threshold are absent.
	Labels map[int64]int64
}

// Segment computes the threshold segmentation encoded by the merge
// tree: every vertex with value >= threshold is assigned to the
// component root reached by walking down while staying at or above the
// threshold. This is the "ensemble of threshold-based segmentations"
// use of merge trees.
func Segment(t *Tree, threshold float64) *Segmentation {
	seg := &Segmentation{Threshold: threshold, Labels: make(map[int64]int64)}
	memo := make(map[*Node]int64)
	var root func(n *Node) int64
	root = func(n *Node) int64 {
		if l, ok := memo[n]; ok {
			return l
		}
		var l int64
		if n.Down == nil || n.Down.Value < threshold {
			l = n.ID
		} else {
			l = root(n.Down)
		}
		memo[n] = l
		return l
	}
	for id, n := range t.Nodes {
		if n.Value >= threshold {
			seg.Labels[id] = root(n)
		}
	}
	return seg
}

// Feature summarizes one connected superlevel-set component.
type Feature struct {
	Label    int64
	Size     int     // number of member vertices
	MaxID    int64   // highest vertex
	MaxValue float64 // value at the highest vertex
}

// Features summarizes the segmentation's components, sorted by
// decreasing size then label.
func (s *Segmentation) Features(t *Tree) []Feature {
	agg := make(map[int64]*Feature)
	for id, label := range s.Labels {
		f, ok := agg[label]
		if !ok {
			f = &Feature{Label: label, MaxID: id, MaxValue: t.Nodes[id].Value}
			agg[label] = f
		}
		f.Size++
		v := t.Nodes[id].Value
		if Above(v, id, f.MaxValue, f.MaxID) {
			f.MaxID, f.MaxValue = id, v
		}
	}
	out := make([]Feature, 0, len(agg))
	for _, f := range agg {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// SegmentField computes the same threshold segmentation directly from
// a field with union-find, without building a tree. It is the cheap
// in-situ path used for feature tracking, and the reference the
// tree-based segmentation is validated against. Labels use the same
// convention (id of the component's lowest... highest-priority vertex
// is not needed: the lowest vertex at or above the threshold).
func SegmentField(f *grid.Field, global grid.Box, threshold float64) *Segmentation {
	b := f.Box
	d := b.Dims()
	n := b.Size()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	in := func(idx int) bool { return f.Data[idx] >= threshold }
	for idx := 0; idx < n; idx++ {
		if !in(idx) {
			continue
		}
		parent[idx] = int32(idx)
		i, j, k := b.Point(idx)
		// Union with already-initialized lower-index neighbors.
		if i > b.Lo[0] && parent[idx-1] >= 0 {
			union(parent, find, int32(idx), int32(idx-1))
		}
		if j > b.Lo[1] && parent[idx-d[0]] >= 0 {
			union(parent, find, int32(idx), int32(idx-d[0]))
		}
		if k > b.Lo[2] && parent[idx-d[0]*d[1]] >= 0 {
			union(parent, find, int32(idx), int32(idx-d[0]*d[1]))
		}
	}
	// Component label: the sweep-lowest member (matching Segment's
	// "lowest vertex above threshold" convention).
	lowest := make(map[int32]int64)
	lowVal := make(map[int32]float64)
	for idx := 0; idx < n; idx++ {
		if parent[idx] < 0 {
			continue
		}
		r := find(int32(idx))
		i, j, k := b.Point(idx)
		id := grid.GlobalIndex(global, i, j, k)
		v := f.Data[idx]
		if cur, ok := lowest[r]; !ok || Above(lowVal[r], cur, v, id) {
			lowest[r] = id
			lowVal[r] = v
		}
	}
	seg := &Segmentation{Threshold: threshold, Labels: make(map[int64]int64)}
	for idx := 0; idx < n; idx++ {
		if parent[idx] < 0 {
			continue
		}
		r := find(int32(idx))
		i, j, k := b.Point(idx)
		seg.Labels[grid.GlobalIndex(global, i, j, k)] = lowest[r]
	}
	return seg
}

func union(parent []int32, find func(int32) int32, a, b int32) {
	ra, rb := find(a), find(b)
	if ra != rb {
		parent[ra] = rb
	}
}

// Match records the voxel overlap between a feature at one timestep
// and a feature at the next — the connectivity indicator of Fig. 1
// that is lost when the output cadence exceeds the feature lifetime.
type Match struct {
	PrevLabel int64
	NextLabel int64
	Overlap   int
}

// Track computes all overlap matches between two segmentations of the
// same domain, sorted by decreasing overlap.
func Track(prev, next *Segmentation) []Match {
	type key struct{ p, n int64 }
	counts := make(map[key]int)
	for id, pl := range prev.Labels {
		if nl, ok := next.Labels[id]; ok {
			counts[key{pl, nl}]++
		}
	}
	out := make([]Match, 0, len(counts))
	for k, c := range counts {
		out = append(out, Match{PrevLabel: k.p, NextLabel: k.n, Overlap: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Overlap != out[j].Overlap {
			return out[i].Overlap > out[j].Overlap
		}
		if out[i].PrevLabel != out[j].PrevLabel {
			return out[i].PrevLabel < out[j].PrevLabel
		}
		return out[i].NextLabel < out[j].NextLabel
	})
	return out
}

// TrackChain follows one feature across a sequence of segmentations by
// greatest overlap, returning the label at each step; the chain stops
// (returning what it has) when the feature vanishes. It reproduces the
// Fig. 1 experiment of tracking a structure across consecutive
// analysis outputs.
func TrackChain(segs []*Segmentation, start int64) []int64 {
	chain := []int64{start}
	cur := start
	for i := 1; i < len(segs); i++ {
		matches := Track(segs[i-1], segs[i])
		next := int64(-1)
		best := 0
		for _, m := range matches {
			if m.PrevLabel == cur && m.Overlap > best {
				best = m.Overlap
				next = m.NextLabel
			}
		}
		if next < 0 {
			break
		}
		chain = append(chain, next)
		cur = next
	}
	return chain
}

// FeatureMoments computes per-feature descriptive statistics of a
// second variable over each segmented component — the feature-based
// statistics the paper's conclusion proposes combining with the merge
// tree computation. The field must cover the segmented region; ids are
// global indices within `global`.
func FeatureMoments(seg *Segmentation, f *grid.Field, global grid.Box) map[int64]*stats.Moments {
	out := make(map[int64]*stats.Moments)
	for id, label := range seg.Labels {
		i, j, k := grid.GlobalPoint(global, id)
		if !f.Box.Contains(i, j, k) {
			continue
		}
		m, ok := out[label]
		if !ok {
			m = stats.NewMoments()
			out[label] = m
		}
		m.Update(f.At(i, j, k))
	}
	return out
}
