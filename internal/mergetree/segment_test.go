package mergetree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"insitu/internal/grid"
)

func TestSegmentTiny(t *testing.T) {
	f, b := threePeakField() // 1 5 2 4 1 1.5 1 0
	tr := FromField(f, b)
	seg := Segment(tr, 3)
	// Above threshold 3: vertices 1 (val 5) and 3 (val 4), separate
	// components.
	if len(seg.Labels) != 2 {
		t.Fatalf("want 2 labeled vertices, got %d", len(seg.Labels))
	}
	if seg.Labels[1] == seg.Labels[3] {
		t.Fatal("the two peaks must be distinct components at threshold 3")
	}
	// At threshold 1.5 the first two peaks join (saddle at 2 >= 1.5).
	seg2 := Segment(tr, 1.5)
	if seg2.Labels[1] != seg2.Labels[3] {
		t.Fatal("peaks must merge at threshold 1.5")
	}
	if seg2.Labels[5] == seg2.Labels[1] {
		t.Fatal("third peak is separated by the val-1 valley at threshold 1.5")
	}
}

func TestSegmentMatchesSegmentField(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		b := grid.NewBox(3+rng.Intn(10), 3+rng.Intn(8), 1+rng.Intn(4))
		f := randomField(rng, b)
		tr := FromField(f, b)
		threshold := 0.2 + 0.6*rng.Float64()
		a := Segment(tr, threshold)
		c := SegmentField(f, b, threshold)
		if len(a.Labels) != len(c.Labels) {
			t.Fatalf("trial %d: label counts differ: %d vs %d", trial, len(a.Labels), len(c.Labels))
		}
		for id, la := range a.Labels {
			if lc, ok := c.Labels[id]; !ok || lc != la {
				t.Fatalf("trial %d: vertex %d labeled %d vs %d", trial, id, la, lc)
			}
		}
	}
}

func TestSegmentationFeatures(t *testing.T) {
	f, b := threePeakField()
	tr := FromField(f, b)
	seg := Segment(tr, 3)
	feats := seg.Features(tr)
	if len(feats) != 2 {
		t.Fatalf("want 2 features, got %d", len(feats))
	}
	// Both components are single vertices here.
	for _, ft := range feats {
		if ft.Size != 1 {
			t.Fatalf("feature %d should have size 1, got %d", ft.Label, ft.Size)
		}
	}
	if feats[0].MaxValue != 5 && feats[1].MaxValue != 5 {
		t.Fatal("one feature must peak at 5")
	}
}

// blobField places a Gaussian blob at the given center.
func blobField(b grid.Box, cx, cy float64) *grid.Field {
	f := grid.NewField("blob", b)
	for idx := range f.Data {
		i, j, _ := b.Point(idx)
		dx, dy := float64(i)-cx, float64(j)-cy
		f.Data[idx] = math.Exp(-(dx*dx + dy*dy) / 8)
	}
	return f
}

// TestTrackMovingBlob reproduces the Fig. 1 scenario in miniature: a
// feature moving one grid point per step is trackable via overlap at
// cadence 1, and lost at a cadence larger than its footprint.
func TestTrackMovingBlob(t *testing.T) {
	b := grid.NewBox(40, 12, 1)
	var segs []*Segmentation
	for s := 0; s < 12; s++ {
		f := blobField(b, 4+float64(s)*2, 6)
		segs = append(segs, SegmentField(f, b, 0.5))
	}
	// Consecutive steps overlap.
	for s := 1; s < len(segs); s++ {
		if len(Track(segs[s-1], segs[s])) == 0 {
			t.Fatalf("step %d: lost the blob at cadence 1", s)
		}
	}
	chain := TrackChain(segs, firstLabel(segs[0]))
	if len(chain) != len(segs) {
		t.Fatalf("chain should span all %d steps, got %d", len(segs), len(chain))
	}
	// At cadence 4 (blob moves 8 points, footprint ~ +/-3), overlap is
	// lost: connectivity indicators vanish, as the paper's Fig. 1
	// caption describes for coarse output cadences.
	if ms := Track(segs[0], segs[4]); len(ms) != 0 {
		t.Fatalf("expected no overlap at cadence 4, got %d matches", len(ms))
	}
}

func firstLabel(s *Segmentation) int64 {
	for _, l := range s.Labels {
		return l
	}
	return -1
}

func TestFeatureMoments(t *testing.T) {
	f, b := threePeakField()
	tr := FromField(f, b)
	seg := Segment(tr, 1.5) // two components: {0..5-ish} and peak 5
	// Second variable: value = 10 * index.
	g := grid.NewField("w", b)
	for i := 0; i < 8; i++ {
		g.Set(i, 0, 0, float64(10*i))
	}
	fm := FeatureMoments(seg, g, b)
	if len(fm) != 2 {
		t.Fatalf("want stats for 2 features, got %d", len(fm))
	}
	total := int64(0)
	for _, m := range fm {
		total += m.N
	}
	if total != int64(len(seg.Labels)) {
		t.Fatalf("feature stats cover %d points, segmentation has %d", total, len(seg.Labels))
	}
}

// TestSegmentationPartitionProperty checks with testing/quick that the
// tree segmentation always partitions exactly the vertices at or above
// the threshold.
func TestSegmentationPartitionProperty(t *testing.T) {
	prop := func(seed int64, t8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := grid.NewBox(2+rng.Intn(8), 2+rng.Intn(8), 1+rng.Intn(3))
		f := randomField(rng, b)
		threshold := float64(t8) / 255
		tr := FromField(f, b)
		seg := Segment(tr, threshold)
		want := 0
		for _, v := range f.Data {
			if v >= threshold {
				want++
			}
		}
		if len(seg.Labels) != want {
			return false
		}
		// Every label must name a member vertex of its own component
		// whose value is >= threshold.
		for _, l := range seg.Labels {
			n := tr.Node(l)
			if n == nil || n.Value < threshold {
				return false
			}
			if seg.Labels[l] != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDistributedProperty is the flagship property test: for random
// fields, decompositions and thresholds, the hybrid in-situ/in-transit
// pipeline reproduces the serial merge tree exactly.
func TestDistributedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny, nz := 4+rng.Intn(10), 4+rng.Intn(8), 1+rng.Intn(5)
		b := grid.NewBox(nx, ny, nz)
		f := randomField(rng, b)
		px := 1 + rng.Intn(min(3, nx))
		py := 1 + rng.Intn(min(3, ny))
		pz := 1 + rng.Intn(min(2, nz))
		dc, err := grid.NewDecomp(b, px, py, pz)
		if err != nil {
			return false
		}
		var subtrees []*Subtree
		for r := 0; r < dc.Ranks(); r++ {
			owned := dc.Block(r)
			ext := owned.Grow(1).Intersect(b)
			st, err := LocalSubtree(f.Extract(ext), b, owned, r, KeepSharedBoundary)
			if err != nil {
				return false
			}
			subtrees = append(subtrees, st)
		}
		glued, _, err := Glue(subtrees, GlueOptions{Evict: seed%2 == 0, SweepEvery: 32})
		if err != nil {
			return false
		}
		serial := criticalReduce(FromField(f, b))
		return Equal(serial, criticalReduce(glued))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
