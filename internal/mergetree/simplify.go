package mergetree

import (
	"math"
	"sort"
)

// Branch describes one branch of the branch decomposition: a maximum,
// the saddle at which its contour merges into a contour with a higher
// maximum, and the resulting persistence. The globally highest maximum
// of each component is unpaired (infinite persistence, Saddle == nil).
type Branch struct {
	Max         *Node
	Saddle      *Node // nil for the root branch
	Persistence float64
}

// BranchDecomposition pairs every maximum with its death saddle.
// Branches are returned in decreasing persistence order.
func BranchDecomposition(t *Tree) []Branch {
	// branchMax[n] = the highest maximum above n (inclusive).
	branchMax := make(map[*Node]*Node, len(t.Nodes))
	order := make([]*Node, 0, len(t.Nodes))
	for _, n := range t.Nodes {
		order = append(order, n)
	}
	sortNodes(order) // descending sweep order: ups before downs
	for _, n := range order {
		if n.IsMax() {
			branchMax[n] = n
			continue
		}
		var best *Node
		for _, u := range n.Ups {
			um := branchMax[u]
			if best == nil || Above(um.Value, um.ID, best.Value, best.ID) {
				best = um
			}
		}
		branchMax[n] = best
	}

	var out []Branch
	for _, n := range order {
		if !n.IsSaddle() {
			continue
		}
		winner := branchMax[n]
		for _, u := range n.Ups {
			um := branchMax[u]
			if um == winner {
				continue
			}
			out = append(out, Branch{Max: um, Saddle: n, Persistence: um.Value - n.Value})
		}
		// If several ups carry the winner (possible only with
		// duplicate branchMax pointers), the first keeps it; the sweep
		// order tie-break makes branchMax pointers unique per max, so
		// each non-winning up dies exactly once.
	}
	// Root branches: unpaired maxima.
	paired := make(map[*Node]bool, len(out))
	for _, br := range out {
		paired[br.Max] = true
	}
	for _, n := range order {
		if n.IsMax() && !paired[n] {
			out = append(out, Branch{Max: n, Persistence: math.Inf(1)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Persistence != out[j].Persistence {
			return out[i].Persistence > out[j].Persistence
		}
		return Above(out[i].Max.Value, out[i].Max.ID, out[j].Max.Value, out[j].Max.ID)
	})
	return out
}

// Persistence returns the persistence of every maximum, keyed by node
// id.
func Persistence(t *Tree) map[int64]float64 {
	out := make(map[int64]float64)
	for _, br := range BranchDecomposition(t) {
		out[br.Max.ID] = br.Persistence
	}
	return out
}

// Simplify removes every branch with persistence below eps, returning
// a new tree over the surviving nodes. Saddles that become regular are
// retained; apply Reduce to contract them. The input tree is not
// modified.
func Simplify(t *Tree, eps float64) *Tree {
	pers := Persistence(t)

	// A node survives iff the highest maximum above it survives.
	branchMax := make(map[*Node]*Node, len(t.Nodes))
	order := make([]*Node, 0, len(t.Nodes))
	for _, n := range t.Nodes {
		order = append(order, n)
	}
	sortNodes(order)
	alive := make(map[*Node]bool, len(t.Nodes))
	for _, n := range order {
		if n.IsMax() {
			branchMax[n] = n
			alive[n] = pers[n.ID] >= eps
			continue
		}
		var best *Node
		for _, u := range n.Ups {
			um := branchMax[u]
			if best == nil || Above(um.Value, um.ID, best.Value, best.ID) {
				best = um
			}
		}
		branchMax[n] = best
		alive[n] = alive[best]
	}

	out := &Tree{Nodes: make(map[int64]*Node)}
	for _, n := range order {
		if !alive[n] {
			continue
		}
		m := &Node{ID: n.ID, Value: n.Value}
		out.Nodes[n.ID] = m
	}
	for _, n := range order {
		if !alive[n] {
			continue
		}
		m := out.Nodes[n.ID]
		if n.Down != nil {
			// A live node's down is always live: its branch continues
			// through or merges below.
			dm := out.Nodes[n.Down.ID]
			m.Down = dm
			dm.Ups = append(dm.Ups, m)
		} else {
			out.Roots = append(out.Roots, m)
		}
	}
	sortNodes(out.Roots)
	return out
}
