package mergetree

import (
	"math"
	"math/rand"
	"testing"

	"insitu/internal/grid"
)

// threePeakField builds a 1-D profile with peaks of persistence 4, 2
// and 0.5:
//
//	value: 1 5 2 4 1 1.5 1 0
//	index: 0 1 2 3 4  5  6 7
//
// peak 1 (val 5) is the global max (infinite persistence), peak 3
// (val 4) dies at the saddle val 2 (persistence 2), peak 5 (val 1.5)
// dies at a saddle val 1 (persistence 0.5).
func threePeakField() (*grid.Field, grid.Box) {
	b := grid.NewBox(8, 1, 1)
	f := grid.NewField("f", b)
	for i, v := range []float64{1, 5, 2, 4, 1, 1.5, 1, 0} {
		f.Set(i, 0, 0, v)
	}
	return f, b
}

func TestBranchDecomposition(t *testing.T) {
	f, b := threePeakField()
	tr := FromField(f, b)
	branches := BranchDecomposition(tr)
	if len(branches) != 3 {
		t.Fatalf("want 3 branches, got %d", len(branches))
	}
	if !math.IsInf(branches[0].Persistence, 1) || branches[0].Max.Value != 5 {
		t.Fatalf("first branch should be the infinite one at value 5: %+v", branches[0])
	}
	if branches[1].Persistence != 2 || branches[1].Max.Value != 4 {
		t.Fatalf("second branch should be (max 4, pers 2): %+v", branches[1])
	}
	if branches[2].Persistence != 0.5 || branches[2].Max.Value != 1.5 {
		t.Fatalf("third branch should be (max 1.5, pers 0.5): %+v", branches[2])
	}
	if branches[1].Saddle.Value != 2 {
		t.Fatalf("pers-2 branch should die at saddle value 2, got %g", branches[1].Saddle.Value)
	}
}

func TestSimplifyThresholds(t *testing.T) {
	f, b := threePeakField()
	tr := FromField(f, b)

	// eps=1 prunes only the pers-0.5 branch.
	s1 := Simplify(tr, 1)
	if got := len(s1.Maxima()); got != 2 {
		t.Fatalf("eps=1: want 2 maxima, got %d", got)
	}
	// eps=3 prunes both finite branches.
	s3 := Simplify(tr, 3)
	if got := len(s3.Maxima()); got != 1 {
		t.Fatalf("eps=3: want 1 maximum, got %d", got)
	}
	if s3.Maxima()[0].Value != 5 {
		t.Fatalf("surviving maximum should be the global max")
	}
	// eps=0 keeps everything.
	s0 := Simplify(tr, 0)
	if len(s0.Nodes) != len(tr.Nodes) {
		t.Fatalf("eps=0 must not remove nodes")
	}
}

func TestSimplifyPreservesTreeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	b := grid.NewBox(12, 12, 4)
	f := randomField(rng, b)
	tr := FromField(f, b)
	for _, eps := range []float64{0.1, 0.3, 0.7} {
		s := Simplify(tr, eps)
		if len(s.Roots) != 1 {
			t.Fatalf("eps=%g: simplified tree lost its root", eps)
		}
		for _, n := range s.Nodes {
			if n.Down != nil && !Above(n.Value, n.ID, n.Down.Value, n.Down.ID) {
				t.Fatalf("eps=%g: non-descending arc after simplification", eps)
			}
		}
		// Persistence of every surviving maximum must be >= eps.
		pers := Persistence(tr)
		for _, m := range s.Maxima() {
			if p, ok := pers[m.ID]; ok && p < eps {
				t.Fatalf("eps=%g: maximum %d with persistence %g survived", eps, m.ID, p)
			}
		}
	}
}

func TestSimplifyMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := grid.NewBox(10, 10, 3)
	f := randomField(rng, b)
	tr := FromField(f, b)
	prev := len(tr.Maxima())
	for _, eps := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
		n := len(Simplify(tr, eps).Maxima())
		if n > prev {
			t.Fatalf("maxima count must be monotone non-increasing in eps")
		}
		prev = n
	}
}
