package mergetree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The paper's in-transit algorithm "writes those vertices and edges to
// disk that have been finalized, removing them from memory". RecordSink
// implements that disk path: eviction records stream to an io.Writer
// in a compact binary form, and ReadRecords restores them, so the full
// augmented tree can be reconstituted offline from the sink file plus
// the resident remainder (see Builder.Finish and MergeSunk).

// recordWireSize is the encoded size of one eviction record.
const recordWireSize = 3 * 8

// RecordSink streams eviction records to a writer. Close flushes; the
// caller owns the underlying writer.
type RecordSink struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewRecordSink wraps w.
func NewRecordSink(w io.Writer) *RecordSink {
	return &RecordSink{w: bufio.NewWriter(w)}
}

// Write appends one record; errors are sticky and reported by Close.
func (s *RecordSink) Write(rec EvictRecord) {
	if s.err != nil {
		return
	}
	var b [recordWireSize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(rec.ID))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(rec.Value))
	binary.LittleEndian.PutUint64(b[16:], uint64(rec.Down))
	if _, err := s.w.Write(b[:]); err != nil {
		s.err = err
		return
	}
	s.n++
}

// Count returns the number of records written so far.
func (s *RecordSink) Count() int { return s.n }

// Close flushes and returns the first error encountered.
func (s *RecordSink) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// ReadRecords parses a sink stream back into records.
func ReadRecords(r io.Reader) ([]EvictRecord, error) {
	br := bufio.NewReader(r)
	var out []EvictRecord
	var b [recordWireSize]byte
	for {
		_, err := io.ReadFull(br, b[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("mergetree: corrupt record stream after %d records: %w", len(out), err)
		}
		out = append(out, EvictRecord{
			ID:    int64(binary.LittleEndian.Uint64(b[0:])),
			Value: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
			Down:  int64(binary.LittleEndian.Uint64(b[16:])),
		})
	}
}

// DrainToSink writes every still-resident vertex to the sink as a
// final record (Down = -1 for roots), so the sink stream alone carries
// the complete augmented tree. Call after all edges are processed,
// instead of Finish, when evictions are being diverted with WithSink.
func (b *Builder) DrainToSink() error {
	if b.sink == nil {
		return fmt.Errorf("mergetree: DrainToSink requires a WithSink builder")
	}
	for id, n := range b.nodes {
		if n.pending != 0 {
			return fmt.Errorf("mergetree: vertex %d still has %d unprocessed edges", id, n.pending)
		}
	}
	for _, n := range b.nodes {
		rec := EvictRecord{ID: n.id, Value: n.val, Down: -1}
		if n.down != nil {
			rec.Down = n.down.id
		}
		b.sink(rec)
	}
	return nil
}

// TreeFromRecords reconstitutes the full augmented tree from a
// complete record stream (evictions plus the DrainToSink remainder) —
// the offline post-processing path for trees the in-transit stage
// wrote to disk.
func TreeFromRecords(records []EvictRecord) (*Tree, error) {
	t := &Tree{Nodes: make(map[int64]*Node, len(records))}
	for _, r := range records {
		if _, dup := t.Nodes[r.ID]; dup {
			return nil, fmt.Errorf("mergetree: duplicate record for vertex %d", r.ID)
		}
		t.Nodes[r.ID] = &Node{ID: r.ID, Value: r.Value}
	}
	for _, r := range records {
		if r.Down < 0 {
			continue
		}
		lo, ok := t.Nodes[r.Down]
		if !ok {
			return nil, fmt.Errorf("mergetree: record stream references missing vertex %d", r.Down)
		}
		hi := t.Nodes[r.ID]
		hi.Down = lo
		lo.Ups = append(lo.Ups, hi)
	}
	for _, n := range t.Nodes {
		if n.Down == nil {
			t.Roots = append(t.Roots, n)
		}
	}
	sortNodes(t.Roots)
	return t, nil
}
