package mergetree

import (
	"bytes"
	"strings"
	"testing"

	"insitu/internal/grid"
)

// TestSinkRoundTrip: eviction records written to a sink stream and
// read back must be identical.
func TestSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewRecordSink(&buf)
	want := []EvictRecord{
		{ID: 1, Value: 3.5, Down: 2},
		{ID: 2, Value: 1.25, Down: -1},
		{ID: 99, Value: -7, Down: 1},
	}
	for _, r := range want {
		s.Write(r)
	}
	if s.Count() != 3 {
		t.Fatalf("count: want 3, got %d", s.Count())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("want %d records, got %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReadRecordsCorrupt(t *testing.T) {
	if _, err := ReadRecords(strings.NewReader("short")); err == nil {
		t.Fatal("truncated stream must error")
	}
}

// TestDiskBackedStreamingGlue runs the paper's full in-transit disk
// path: glue with eviction records streaming to a "file", drain the
// residue, and reconstruct the exact global merge tree offline from
// the record stream alone.
func TestDiskBackedStreamingGlue(t *testing.T) {
	b := grid.NewBox(18, 12, 6)
	f := smoothField(b, 0.9)
	subtrees := hierSubtrees(t, f, 3, 2, 1)

	var disk bytes.Buffer
	sink := NewRecordSink(&disk)
	builder := NewBuilder(WithEviction(), WithSink(sink.Write))

	// Drive the sorted-edge protocol by hand (as Glue does), with
	// interleaved lazy declarations per block.
	type cursor struct {
		st   *Subtree
		vals map[int64]float64
		pos  int
		vpos int
	}
	var cursors []*cursor
	for _, st := range subtrees {
		vals := make(map[int64]float64, len(st.Verts))
		for _, v := range st.Verts {
			vals[v.ID] = v.Value
		}
		cursors = append(cursors, &cursor{st: st, vals: vals})
	}
	live := 0
	for _, c := range cursors {
		if len(c.st.Edges) > 0 {
			live++
		}
	}
	for live > 0 {
		var best *cursor
		var bv float64
		var bi int64
		for _, c := range cursors {
			if c.pos >= len(c.st.Edges) {
				continue
			}
			e := c.st.Edges[c.pos]
			v, id := c.vals[e.Lo], e.Lo
			if best == nil || Above(v, id, bv, bi) {
				best, bv, bi = c, v, id
			}
		}
		for _, c := range cursors {
			for c.vpos < len(c.st.Verts) {
				v := c.st.Verts[c.vpos]
				if Above(bv, bi, v.Value, v.ID) {
					break
				}
				if err := builder.DeclareVertex(v.ID, v.Value, v.Degree); err != nil {
					t.Fatal(err)
				}
				c.vpos++
			}
		}
		e := best.st.Edges[best.pos]
		if err := builder.AddEdge(e.Hi, e.Lo); err != nil {
			t.Fatal(err)
		}
		best.pos++
		if best.pos == len(best.st.Edges) {
			live--
		}
		builder.SetWatermark(bv, bi)
	}
	for _, c := range cursors {
		for ; c.vpos < len(c.st.Verts); c.vpos++ {
			v := c.st.Verts[c.vpos]
			if err := builder.DeclareVertex(v.ID, v.Value, v.Degree); err != nil {
				t.Fatal(err)
			}
		}
	}
	if builder.Stats().Evicted == 0 {
		t.Fatal("expected evictions to flow to the sink")
	}
	if err := builder.DrainToSink(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	// Offline reconstruction from "disk".
	records, err := ReadRecords(&disk)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := TreeFromRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	serial := criticalReduce(FromField(f, b))
	if !Equal(serial, criticalReduce(tree)) {
		t.Fatal("disk-reconstructed tree differs from serial merge tree")
	}
}

func TestDrainToSinkValidation(t *testing.T) {
	b := NewBuilder()
	if err := b.DrainToSink(); err == nil {
		t.Fatal("DrainToSink without a sink must error")
	}
	sunk := NewBuilder(WithSink(func(EvictRecord) {}))
	if err := sunk.DeclareVertex(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := sunk.DrainToSink(); err == nil {
		t.Fatal("unprocessed edges must block the drain")
	}
}

func TestTreeFromRecordsErrors(t *testing.T) {
	if _, err := TreeFromRecords([]EvictRecord{{ID: 1, Down: 9}}); err == nil {
		t.Fatal("missing down target must error")
	}
	if _, err := TreeFromRecords([]EvictRecord{{ID: 1, Down: -1}, {ID: 1, Down: -1}}); err == nil {
		t.Fatal("duplicate records must error")
	}
	tr, err := TreeFromRecords([]EvictRecord{{ID: 2, Value: 5, Down: 1}, {ID: 1, Value: 3, Down: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].ID != 1 || !tr.Nodes[2].IsMax() {
		t.Fatal("two-record tree malformed")
	}
}
