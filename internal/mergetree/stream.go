package mergetree

import (
	"fmt"
	"sort"
)

// The streaming builder implements the in-transit stage: it aggregates
// subtrees into the global merge tree while processing vertices and
// edges in arbitrary order, subject to two rules from the paper:
// a vertex must be declared before any edge that contains it, and a
// vertex is *finalized* once its last incident edge has been
// processed. Finalized vertices whose tree-position can no longer
// change are evicted from memory and written to an output log, keeping
// the in-memory footprint far below the total tree size.

// bnode is the builder's working vertex record.
type bnode struct {
	id      int64
	val     float64
	down    *bnode
	pending int // declared incident edges not yet processed
	evicted bool
}

// EvictRecord is one finalized vertex written to the output log:
// its identity, value, and final downward arc (-1 for none known at
// eviction, which only happens for isolated vertices).
type EvictRecord struct {
	ID    int64
	Value float64
	Down  int64
}

// StreamStats reports the memory behaviour of a streaming aggregation.
type StreamStats struct {
	Declared  int // total vertices declared
	Edges     int // total edges processed
	Evicted   int // vertices evicted before Finish
	PeakLive  int // maximum simultaneously resident vertices
	SpliceOps int // chain-walk steps, the algorithm's work measure
}

// Builder incrementally constructs a merge tree from streamed
// vertices and edges.
type Builder struct {
	nodes map[int64]*bnode
	log   []EvictRecord
	sink  func(EvictRecord) // optional external log consumer

	// watermark is the sweep position at or below which all future
	// edge lower-endpoints are guaranteed to lie. It advances via
	// SetWatermark (or automatically under sorted feeding in Glue).
	wmVal   float64
	wmID    int64
	wmSet   bool
	evictOn bool

	stats StreamStats
}

// BuilderOption configures a Builder.
type BuilderOption func(*Builder)

// WithEviction enables eviction of finalized vertices. The caller must
// then advance the watermark truthfully via SetWatermark.
func WithEviction() BuilderOption {
	return func(b *Builder) { b.evictOn = true }
}

// WithSink streams eviction records to fn instead of the internal log;
// Finish then cannot reconstruct the full augmented tree, only the
// resident part (matching the paper's write-to-disk behaviour).
func WithSink(fn func(EvictRecord)) BuilderOption {
	return func(b *Builder) { b.sink = fn }
}

// NewBuilder creates an empty streaming builder.
func NewBuilder(opts ...BuilderOption) *Builder {
	b := &Builder{nodes: make(map[int64]*bnode)}
	for _, o := range opts {
		o(b)
	}
	return b
}

// DeclareVertex announces a vertex with `degree` incident edges in
// this producer's stream. The same vertex may be declared by several
// producers (shared boundary vertices); degrees accumulate and values
// must agree.
func (b *Builder) DeclareVertex(id int64, val float64, degree int) error {
	if n, ok := b.nodes[id]; ok {
		if n.val != val {
			return fmt.Errorf("mergetree: vertex %d declared with conflicting values %g and %g", id, n.val, val)
		}
		n.pending += degree
		return nil
	}
	b.nodes[id] = &bnode{id: id, val: val, pending: degree}
	b.stats.Declared++
	if live := len(b.nodes); live > b.stats.PeakLive {
		b.stats.PeakLive = live
	}
	return nil
}

// Evicted vertices stay linked into the chains (their downward arcs
// are frozen by the watermark invariant, and no future splice can land
// adjacent to them), so walks simply traverse them. Rewriting pointers
// past evicted vertices would destroy true augmented-tree arcs.

// AddEdge merges the chains of two declared vertices, maintaining the
// invariant that descending down-pointer chains order all vertices
// known to share a superlevel component.
func (b *Builder) AddEdge(hi, lo int64) error {
	u, ok := b.nodes[hi]
	if !ok {
		return fmt.Errorf("mergetree: edge references undeclared or evicted vertex %d", hi)
	}
	v, ok := b.nodes[lo]
	if !ok {
		return fmt.Errorf("mergetree: edge references undeclared or evicted vertex %d", lo)
	}
	u.pending--
	v.pending--
	if u.pending < 0 || v.pending < 0 {
		return fmt.Errorf("mergetree: vertex finalized before its last edge (%d,%d)", hi, lo)
	}
	if u == v {
		return nil
	}
	if !Above(u.val, u.id, v.val, v.id) {
		u, v = v, u
	}
	// Splice v into u's chain: walk down from u until v's slot.
	for {
		b.stats.SpliceOps++
		if u == v {
			return nil
		}
		d := u.down
		if d == nil {
			u.down = v
			return nil
		}
		if d == v {
			return nil
		}
		if Above(d.val, d.id, v.val, v.id) {
			u = d
			continue
		}
		// v belongs between u and d; splice and continue merging the
		// old tail below v.
		u.down = v
		u = v
		v = d
	}
}

// SetWatermark promises that every edge processed from now on has a
// lower endpoint at or below sweep position (val, id). It triggers an
// eviction sweep when eviction is enabled.
func (b *Builder) SetWatermark(val float64, id int64) {
	b.wmVal, b.wmID, b.wmSet = val, id, true
	if b.evictOn {
		b.sweep()
	}
}

// evictable reports whether vertex n can no longer change: all its
// edges are processed, and its downward arc ends at or above the
// watermark, so no future edge can splice between them.
func (b *Builder) evictable(n *bnode) bool {
	if n.pending != 0 || n.evicted {
		return false
	}
	d := n.down
	if d == nil {
		return false // roots stay resident until Finish
	}
	return !Above(b.wmVal, b.wmID, d.val, d.id)
}

// sweep evicts every currently evictable vertex.
func (b *Builder) sweep() {
	if !b.wmSet {
		return
	}
	for id, n := range b.nodes {
		if !b.evictable(n) {
			continue
		}
		rec := EvictRecord{ID: n.id, Value: n.val, Down: n.down.id}
		if b.sink != nil {
			b.sink(rec)
		} else {
			b.log = append(b.log, rec)
		}
		n.evicted = true
		delete(b.nodes, id)
		b.stats.Evicted++
	}
}

// Live returns the number of currently resident vertices.
func (b *Builder) Live() int { return len(b.nodes) }

// Stats returns a snapshot of the builder's counters.
func (b *Builder) Stats() StreamStats { return b.stats }

// Finish assembles the final merge tree from the resident vertices
// plus the eviction log. If a WithSink option diverted the log, only
// the resident part is returned.
func (b *Builder) Finish() (*Tree, StreamStats, error) {
	for id, n := range b.nodes {
		if n.pending != 0 {
			return nil, b.stats, fmt.Errorf("mergetree: vertex %d still has %d unprocessed edges", id, n.pending)
		}
	}
	t := &Tree{Nodes: make(map[int64]*Node, len(b.nodes)+len(b.log))}
	get := func(id int64, val float64) *Node {
		n, ok := t.Nodes[id]
		if !ok {
			n = &Node{ID: id, Value: val}
			t.Nodes[id] = n
		}
		return n
	}
	type link struct{ hi, lo int64 }
	var links []link
	for _, n := range b.nodes {
		get(n.id, n.val)
		if n.down != nil {
			links = append(links, link{n.id, n.down.id})
		}
	}
	for _, r := range b.log {
		get(r.ID, r.Value)
		if r.Down >= 0 {
			links = append(links, link{r.ID, r.Down})
		}
	}
	for _, l := range links {
		hi := t.Nodes[l.hi]
		lo, ok := t.Nodes[l.lo]
		if !ok {
			if b.sink != nil {
				// The target was evicted to the external sink; the
				// arc is restored by MergeSunk with the sink records.
				continue
			}
			return nil, b.stats, fmt.Errorf("mergetree: eviction log references missing vertex %d", l.lo)
		}
		hi.Down = lo
		lo.Ups = append(lo.Ups, hi)
	}
	for _, n := range t.Nodes {
		if n.Down == nil {
			t.Roots = append(t.Roots, n)
		}
	}
	sortNodes(t.Roots)
	return t, b.stats, nil
}

// GlueOptions configures the in-transit aggregation driver.
type GlueOptions struct {
	// Evict enables memory-bounded streaming with the sorted-edge
	// protocol. With eviction off, edges may be processed in any order.
	Evict bool
	// SweepEvery triggers an eviction sweep after this many edges
	// (default 4096) in addition to watermark advances.
	SweepEvery int
}

// Glue aggregates the reduced subtrees of all blocks into the global
// merge tree — the serial in-transit stage of the hybrid topology
// algorithm. With opts.Evict it feeds edges in globally descending
// order of their lower endpoints (a k-way merge over the per-block
// sorted edge lists) and advances the watermark as it goes, so the
// builder can evict finalized vertices and keep its resident set
// small.
func Glue(subtrees []*Subtree, opts GlueOptions) (*Tree, StreamStats, error) {
	var bopts []BuilderOption
	if opts.Evict {
		bopts = append(bopts, WithEviction())
	}
	b := NewBuilder(bopts...)

	if !opts.Evict {
		// Arbitrary-order mode: declare everything, then feed edges in
		// whatever order the subtrees carry them.
		for _, st := range subtrees {
			for _, v := range st.Verts {
				if err := b.DeclareVertex(v.ID, v.Value, v.Degree); err != nil {
					return nil, b.stats, err
				}
			}
		}
		for _, st := range subtrees {
			for _, e := range st.Edges {
				if err := b.AddEdge(e.Hi, e.Lo); err != nil {
					return nil, b.stats, err
				}
			}
		}
		return b.Finish()
	}

	// Streaming mode: interleave per-block vertex declarations with a
	// k-way merge of the per-block edge lists by descending lower
	// endpoint (packSubtree sorts both lists that way). Before an edge
	// at sweep position L is processed, every block declares its
	// vertices down to L, so shared vertices accumulate their full
	// degree before their first edge and the resident set tracks the
	// sweep front instead of the whole tree.
	sweepEvery := opts.SweepEvery
	if sweepEvery <= 0 {
		sweepEvery = 4096
	}
	type cursor struct {
		st   *Subtree
		vals map[int64]float64
		pos  int // next edge
		vpos int // next undeclared vertex
	}
	cursors := make([]*cursor, 0, len(subtrees))
	for _, st := range subtrees {
		vals := make(map[int64]float64, len(st.Verts))
		for _, v := range st.Verts {
			vals[v.ID] = v.Value
		}
		cursors = append(cursors, &cursor{st: st, vals: vals})
	}
	// declareDown declares all of c's vertices at or above sweep
	// position (val, id).
	declareDown := func(c *cursor, val float64, id int64) error {
		for c.vpos < len(c.st.Verts) {
			v := c.st.Verts[c.vpos]
			if Above(val, id, v.Value, v.ID) {
				break
			}
			if err := b.DeclareVertex(v.ID, v.Value, v.Degree); err != nil {
				return err
			}
			c.vpos++
		}
		return nil
	}
	loPos := func(c *cursor) (float64, int64) {
		e := c.st.Edges[c.pos]
		return c.vals[e.Lo], e.Lo
	}
	live := make([]*cursor, 0, len(cursors))
	for _, c := range cursors {
		if len(c.st.Edges) > 0 {
			live = append(live, c)
		}
	}
	processed := 0
	for len(live) > 0 {
		// Pick the cursor with the highest next lower endpoint.
		best := 0
		bv, bi := loPos(live[0])
		for i := 1; i < len(live); i++ {
			v, id := loPos(live[i])
			if Above(v, id, bv, bi) {
				best, bv, bi = i, v, id
			}
		}
		// All blocks declare down to the new watermark first.
		for _, c := range cursors {
			if err := declareDown(c, bv, bi); err != nil {
				return nil, b.stats, err
			}
		}
		c := live[best]
		e := c.st.Edges[c.pos]
		if err := b.AddEdge(e.Hi, e.Lo); err != nil {
			return nil, b.stats, err
		}
		c.pos++
		if c.pos == len(c.st.Edges) {
			live = append(live[:best], live[best+1:]...)
		}
		processed++
		b.wmVal, b.wmID, b.wmSet = bv, bi, true
		if processed%sweepEvery == 0 {
			b.sweep()
		}
	}
	// Declare any remaining (isolated) vertices and finish.
	for _, c := range cursors {
		for ; c.vpos < len(c.st.Verts); c.vpos++ {
			v := c.st.Verts[c.vpos]
			if err := b.DeclareVertex(v.ID, v.Value, v.Degree); err != nil {
				return nil, b.stats, err
			}
		}
	}
	b.sweep()
	return b.Finish()
}

// GlueSerial aggregates subtrees by collecting all vertices and edges
// and running the reference graph sweep — the non-streaming baseline
// the streaming aggregation is validated against.
func GlueSerial(subtrees []*Subtree) (*Tree, error) {
	values := make(map[int64]float64)
	var edges [][2]int64
	for _, st := range subtrees {
		for _, v := range st.Verts {
			if old, ok := values[v.ID]; ok && old != v.Value {
				return nil, fmt.Errorf("mergetree: vertex %d has conflicting values %g and %g", v.ID, old, v.Value)
			}
			values[v.ID] = v.Value
		}
		for _, e := range st.Edges {
			edges = append(edges, [2]int64{e.Hi, e.Lo})
		}
	}
	// Deterministic edge order.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return FromGraph(values, edges)
}
