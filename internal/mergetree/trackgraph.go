package mergetree

import (
	"fmt"
	"sort"
	"strings"
)

// The paper's case study calls for "tracking the inception, advection,
// and dissipation of the ignition kernels". A TrackGraph assembles the
// per-step overlap matches into that lineage: nodes are (step,
// feature) pairs, edges are overlap matches, and the graph classifies
// each feature's fate — birth, death, continuation, merge, split —
// and extracts whole tracks with their lifetimes.

// TrackNode identifies one feature at one step.
type TrackNode struct {
	Step    int
	Feature int64
}

// TrackEvent classifies what happened to a feature between steps.
type TrackEvent int

const (
	// EventBirth marks a feature with no predecessor (an inception,
	// e.g. a new ignition kernel).
	EventBirth TrackEvent = iota
	// EventDeath marks a feature with no successor (dissipation).
	EventDeath
	// EventContinue marks 1-to-1 overlap with the next step.
	EventContinue
	// EventMerge marks a feature formed from several predecessors.
	EventMerge
	// EventSplit marks a feature with several successors.
	EventSplit
)

// String implements fmt.Stringer.
func (e TrackEvent) String() string {
	switch e {
	case EventBirth:
		return "birth"
	case EventDeath:
		return "death"
	case EventContinue:
		return "continue"
	case EventMerge:
		return "merge"
	case EventSplit:
		return "split"
	}
	return fmt.Sprintf("TrackEvent(%d)", int(e))
}

// TrackGraph is the lineage over a run.
type TrackGraph struct {
	steps []int // analysis steps in order
	// features per step.
	features map[int][]int64
	// forward[node] lists successor features, backward predecessors.
	forward  map[TrackNode][]TrackNode
	backward map[TrackNode][]TrackNode
}

// NewTrackGraph creates an empty graph.
func NewTrackGraph() *TrackGraph {
	return &TrackGraph{
		features: make(map[int][]int64),
		forward:  make(map[TrackNode][]TrackNode),
		backward: make(map[TrackNode][]TrackNode),
	}
}

// AddStep records one analysis step's features, in step order.
func (g *TrackGraph) AddStep(step int, features []int64) error {
	if n := len(g.steps); n > 0 && g.steps[n-1] >= step {
		return fmt.Errorf("mergetree: steps must be added in increasing order (%d after %d)", step, g.steps[n-1])
	}
	g.steps = append(g.steps, step)
	fs := append([]int64{}, features...)
	sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	g.features[step] = fs
	return nil
}

// AddMatches records the overlap matches between the two most recently
// added steps (prev, cur).
func (g *TrackGraph) AddMatches(prev, cur int, matches []Match) error {
	if _, ok := g.features[prev]; !ok {
		return fmt.Errorf("mergetree: unknown step %d", prev)
	}
	if _, ok := g.features[cur]; !ok {
		return fmt.Errorf("mergetree: unknown step %d", cur)
	}
	for _, m := range matches {
		a := TrackNode{Step: prev, Feature: m.PrevLabel}
		b := TrackNode{Step: cur, Feature: m.NextLabel}
		g.forward[a] = append(g.forward[a], b)
		g.backward[b] = append(g.backward[b], a)
	}
	return nil
}

// Steps returns the recorded analysis steps.
func (g *TrackGraph) Steps() []int { return append([]int{}, g.steps...) }

// Events classifies every node. A node can carry several events (for
// example a merge that also splits); births/deaths at the run's first
// and last steps are suppressed for interior-only analyses when
// trimEnds is set.
func (g *TrackGraph) Events(trimEnds bool) map[TrackNode][]TrackEvent {
	out := make(map[TrackNode][]TrackEvent)
	if len(g.steps) == 0 {
		return out
	}
	first, last := g.steps[0], g.steps[len(g.steps)-1]
	for _, step := range g.steps {
		for _, f := range g.features[step] {
			n := TrackNode{Step: step, Feature: f}
			var evs []TrackEvent
			preds := len(g.backward[n])
			succs := len(g.forward[n])
			if preds == 0 && !(trimEnds && step == first) {
				evs = append(evs, EventBirth)
			}
			if preds > 1 {
				evs = append(evs, EventMerge)
			}
			if succs == 0 && !(trimEnds && step == last) {
				evs = append(evs, EventDeath)
			}
			if succs > 1 {
				evs = append(evs, EventSplit)
			}
			if preds == 1 && succs == 1 {
				evs = append(evs, EventContinue)
			}
			out[n] = evs
		}
	}
	return out
}

// FeatureTrack is one feature's path through time, following the
// greatest overlap at each hop.
type FeatureTrack struct {
	Nodes []TrackNode
}

// Lifetime returns the number of steps the track spans.
func (t FeatureTrack) Lifetime() int { return len(t.Nodes) }

// Tracks extracts maximal tracks: starting from every birth (or
// first-step feature), follow forward links; at splits follow the
// first successor; a node already claimed by an earlier track starts
// no new one but may terminate others. Tracks are returned longest
// first.
func (g *TrackGraph) Tracks() []FeatureTrack {
	claimed := make(map[TrackNode]bool)
	var tracks []FeatureTrack
	for _, step := range g.steps {
		for _, f := range g.features[step] {
			n := TrackNode{Step: step, Feature: f}
			if claimed[n] || len(g.backward[n]) > 0 {
				continue // not a track head
			}
			var tr FeatureTrack
			cur := n
			for {
				tr.Nodes = append(tr.Nodes, cur)
				claimed[cur] = true
				next, ok := g.firstSuccessor(cur, claimed)
				if !ok {
					break
				}
				cur = next
			}
			tracks = append(tracks, tr)
		}
	}
	sort.Slice(tracks, func(i, j int) bool {
		if len(tracks[i].Nodes) != len(tracks[j].Nodes) {
			return len(tracks[i].Nodes) > len(tracks[j].Nodes)
		}
		return tracks[i].Nodes[0].Step < tracks[j].Nodes[0].Step
	})
	return tracks
}

func (g *TrackGraph) firstSuccessor(n TrackNode, claimed map[TrackNode]bool) (TrackNode, bool) {
	succs := append([]TrackNode{}, g.forward[n]...)
	sort.Slice(succs, func(i, j int) bool { return succs[i].Feature < succs[j].Feature })
	for _, s := range succs {
		if !claimed[s] {
			return s, true
		}
	}
	return TrackNode{}, false
}

// Summary counts events over the run.
type TrackSummary struct {
	Births, Deaths, Merges, Splits int
	Tracks                         int
	LongestTrack                   int
	MeanLifetime                   float64
}

// Summarize aggregates the lineage into the quantities a kernel-
// tracking study reports.
func (g *TrackGraph) Summarize(trimEnds bool) TrackSummary {
	var s TrackSummary
	for _, evs := range g.Events(trimEnds) {
		for _, e := range evs {
			switch e {
			case EventBirth:
				s.Births++
			case EventDeath:
				s.Deaths++
			case EventMerge:
				s.Merges++
			case EventSplit:
				s.Splits++
			}
		}
	}
	tracks := g.Tracks()
	s.Tracks = len(tracks)
	total := 0
	for _, t := range tracks {
		total += t.Lifetime()
		if t.Lifetime() > s.LongestTrack {
			s.LongestTrack = t.Lifetime()
		}
	}
	if len(tracks) > 0 {
		s.MeanLifetime = float64(total) / float64(len(tracks))
	}
	return s
}

// Format renders the summary.
func (s TrackSummary) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tracks=%d longest=%d mean-lifetime=%.1f births=%d deaths=%d merges=%d splits=%d",
		s.Tracks, s.LongestTrack, s.MeanLifetime, s.Births, s.Deaths, s.Merges, s.Splits)
	return sb.String()
}
