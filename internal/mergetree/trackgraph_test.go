package mergetree

import (
	"testing"

	"insitu/internal/grid"
)

// buildGraph assembles a graph from a compact description:
// features[i] lists step i's features, matches[i] links step i to i+1.
func buildGraph(t *testing.T, features [][]int64, matches [][]Match) *TrackGraph {
	t.Helper()
	g := NewTrackGraph()
	for i, fs := range features {
		if err := g.AddStep(i+1, fs); err != nil {
			t.Fatal(err)
		}
	}
	for i, ms := range matches {
		if err := g.AddMatches(i+1, i+2, ms); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestTrackGraphBirthDeathContinue(t *testing.T) {
	// Feature 10 lives steps 1-3; feature 20 is born at step 2 and
	// dies at step 2 (one-step kernel).
	g := buildGraph(t,
		[][]int64{{10}, {10, 20}, {10}},
		[][]Match{
			{{PrevLabel: 10, NextLabel: 10, Overlap: 5}},
			{{PrevLabel: 10, NextLabel: 10, Overlap: 5}},
		})
	evs := g.Events(true) // trim run-boundary births/deaths
	n20 := TrackNode{Step: 2, Feature: 20}
	if len(evs[n20]) != 2 || evs[n20][0] != EventBirth || evs[n20][1] != EventDeath {
		t.Fatalf("one-step kernel should be birth+death: %v", evs[n20])
	}
	mid := TrackNode{Step: 2, Feature: 10}
	if len(evs[mid]) != 1 || evs[mid][0] != EventContinue {
		t.Fatalf("persistent feature should continue: %v", evs[mid])
	}
	// Without trimming, step-1 and step-3 endpoints also count.
	evsAll := g.Events(false)
	if len(evsAll[TrackNode{Step: 1, Feature: 10}]) == 0 {
		t.Fatal("untrimmed events missing run-boundary birth")
	}
}

func TestTrackGraphMergeSplit(t *testing.T) {
	// Two features merge at step 2, then split again at step 3.
	g := buildGraph(t,
		[][]int64{{1, 2}, {5}, {7, 8}},
		[][]Match{
			{{PrevLabel: 1, NextLabel: 5, Overlap: 3}, {PrevLabel: 2, NextLabel: 5, Overlap: 2}},
			{{PrevLabel: 5, NextLabel: 7, Overlap: 3}, {PrevLabel: 5, NextLabel: 8, Overlap: 2}},
		})
	evs := g.Events(true)
	n5 := TrackNode{Step: 2, Feature: 5}
	hasMerge, hasSplit := false, false
	for _, e := range evs[n5] {
		if e == EventMerge {
			hasMerge = true
		}
		if e == EventSplit {
			hasSplit = true
		}
	}
	if !hasMerge || !hasSplit {
		t.Fatalf("node 5 should merge and split: %v", evs[n5])
	}
	s := g.Summarize(true)
	if s.Merges != 1 || s.Splits != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
}

func TestTrackGraphTracks(t *testing.T) {
	// A long track (1->1->1) and a short one born at step 2.
	g := buildGraph(t,
		[][]int64{{1}, {1, 9}, {1, 9}},
		[][]Match{
			{{PrevLabel: 1, NextLabel: 1, Overlap: 4}},
			{{PrevLabel: 1, NextLabel: 1, Overlap: 4}, {PrevLabel: 9, NextLabel: 9, Overlap: 2}},
		})
	tracks := g.Tracks()
	if len(tracks) != 2 {
		t.Fatalf("want 2 tracks, got %d", len(tracks))
	}
	if tracks[0].Lifetime() != 3 || tracks[1].Lifetime() != 2 {
		t.Fatalf("lifetimes wrong: %d, %d", tracks[0].Lifetime(), tracks[1].Lifetime())
	}
	s := g.Summarize(true)
	if s.LongestTrack != 3 || s.Tracks != 2 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if s.Format() == "" {
		t.Fatal("summary format empty")
	}
}

func TestTrackGraphValidation(t *testing.T) {
	g := NewTrackGraph()
	if err := g.AddStep(2, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddStep(1, nil); err == nil {
		t.Fatal("out-of-order step must error")
	}
	if err := g.AddMatches(1, 2, nil); err == nil {
		t.Fatal("unknown step must error")
	}
	if len(g.Steps()) != 1 {
		t.Fatal("steps accessor wrong")
	}
	if s := NewTrackGraph().Summarize(true); s.Tracks != 0 {
		t.Fatal("empty graph summary must be zero")
	}
}

// TestTrackGraphFromSegmentations runs the whole lineage flow on
// synthetic moving/appearing blobs and checks the expected events.
func TestTrackGraphFromSegmentations(t *testing.T) {
	b := grid.NewBox(40, 12, 1)
	// Blob A moves right for 6 steps; blob B exists only steps 3-4.
	segAt := func(step int) *Segmentation {
		f := grid.NewField("f", b)
		add := func(cx, cy float64) {
			for idx := range f.Data {
				i, j, _ := b.Point(idx)
				dx, dy := float64(i)-cx, float64(j)-cy
				v := 0.0
				if dx*dx+dy*dy < 9 {
					v = 1
				}
				if v > f.Data[idx] {
					f.Data[idx] = v
				}
			}
		}
		add(5+float64(step), 6)
		if step == 3 || step == 4 {
			add(30, 6)
		}
		return SegmentField(f, b, 0.5)
	}
	g := NewTrackGraph()
	var prev *Segmentation
	for step := 1; step <= 6; step++ {
		seg := segAt(step)
		var feats []int64
		seen := map[int64]bool{}
		for _, l := range seg.Labels {
			if !seen[l] {
				seen[l] = true
				feats = append(feats, l)
			}
		}
		if err := g.AddStep(step, feats); err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if err := g.AddMatches(step-1, step, Track(prev, seg)); err != nil {
				t.Fatal(err)
			}
		}
		prev = seg
	}
	s := g.Summarize(true)
	if s.Births != 1 || s.Deaths != 1 {
		t.Fatalf("expected exactly the transient blob's birth and death: %+v", s)
	}
	if s.LongestTrack != 6 {
		t.Fatalf("moving blob should be tracked across all 6 steps: %+v", s)
	}
}
