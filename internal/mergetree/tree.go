// Package mergetree implements merge trees (join trees of superlevel
// sets) and the paper's hybrid decomposition of their construction: a
// low-overhead in-core sweep per block in-situ (after Carr, Snoeyink &
// Axen), boundary augmentation so neighboring subtrees can be glued,
// and a streaming in-transit aggregation that processes subtree
// vertices and edges in arbitrary order, finalizes vertices whose last
// incident edge has been seen, and evicts finalized regular vertices
// from memory (Bremer et al.'s streaming construction).
//
// The merge tree here sweeps the isovalue from +inf downward: nodes
// appear at local maxima, arcs lengthen as contours grow, and arcs
// merge at saddles — the convention used for burning-region and
// ignition-kernel analysis of combustion data.
package mergetree

import (
	"fmt"
	"sort"
)

// Above reports whether vertex a=(ida,va) precedes b in the descending
// sweep order. Ties in value are broken by id (simulation of
// simplicity), so the order is total and identical on every rank.
func Above(va float64, ida int64, vb float64, idb int64) bool {
	if va != vb {
		return va > vb
	}
	return ida < idb
}

// Node is one vertex of an augmented merge tree.
type Node struct {
	ID    int64
	Value float64
	// Down points to the next lower node this vertex's contour merges
	// into; nil at the root (global minimum of the swept region).
	Down *Node
	// Ups lists the nodes directly above this one. len(Ups) == 0 marks
	// a maximum, >= 2 a merge saddle.
	Ups []*Node
}

// IsMax reports whether the node is a leaf (local maximum).
func (n *Node) IsMax() bool { return len(n.Ups) == 0 }

// IsSaddle reports whether two or more contours merge at this node.
func (n *Node) IsSaddle() bool { return len(n.Ups) >= 2 }

// IsRegular reports whether the node lies in the interior of an arc.
func (n *Node) IsRegular() bool { return len(n.Ups) == 1 && n.Down != nil }

// Tree is an augmented merge tree: every swept vertex is a node.
type Tree struct {
	Nodes map[int64]*Node
	// Roots are nodes with no Down pointer. A connected domain yields
	// exactly one root (its global minimum); a forest arises when the
	// swept region is disconnected.
	Roots []*Node
}

// Node returns the node with the given id, or nil.
func (t *Tree) Node(id int64) *Node { return t.Nodes[id] }

// Maxima returns all leaves in descending sweep order.
func (t *Tree) Maxima() []*Node {
	var out []*Node
	for _, n := range t.Nodes {
		if n.IsMax() {
			out = append(out, n)
		}
	}
	sortNodes(out)
	return out
}

// Saddles returns all merge saddles in descending sweep order.
func (t *Tree) Saddles() []*Node {
	var out []*Node
	for _, n := range t.Nodes {
		if n.IsSaddle() {
			out = append(out, n)
		}
	}
	sortNodes(out)
	return out
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool {
		return Above(ns[i].Value, ns[i].ID, ns[j].Value, ns[j].ID)
	})
}

// Arc is one edge of a (reduced) merge tree, directed downward.
type Arc struct {
	Hi, Lo int64
}

// Arcs returns every (up, down) node pair, sorted for deterministic
// comparison.
func (t *Tree) Arcs() []Arc {
	var out []Arc
	for _, n := range t.Nodes {
		if n.Down != nil {
			out = append(out, Arc{Hi: n.ID, Lo: n.Down.ID})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hi != out[j].Hi {
			return out[i].Hi < out[j].Hi
		}
		return out[i].Lo < out[j].Lo
	})
	return out
}

// vertexRef is an input vertex for the sweep constructors.
type vertexRef struct {
	id  int64
	val float64
}

// build runs the descending sweep over the given vertices, where
// neighbors(i) yields indices (into verts) of vertices adjacent to
// verts[i]. It returns the fully augmented merge tree.
func build(verts []vertexRef, neighbors func(i int) []int) *Tree {
	n := len(verts)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := verts[order[a]], verts[order[b]]
		return Above(va.val, va.id, vb.val, vb.id)
	})

	// Union-find over vertex indices; lowest[root] is the current
	// lowest tree node of that superlevel component.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1 // unprocessed
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	lowest := make([]*Node, n)

	t := &Tree{Nodes: make(map[int64]*Node, n)}
	nodes := make([]*Node, n)

	var roots []int // component representatives, refreshed at the end
	for _, vi := range order {
		v := verts[vi]
		node := &Node{ID: v.id, Value: v.val}
		t.Nodes[v.id] = node
		nodes[vi] = node

		// Distinct components among already-processed neighbors.
		var comps []int
		for _, ui := range neighbors(vi) {
			if parent[ui] < 0 {
				continue // not yet swept (below v)
			}
			r := find(ui)
			dup := false
			for _, c := range comps {
				if c == r {
					dup = true
					break
				}
			}
			if !dup {
				comps = append(comps, r)
			}
		}
		// Deterministic merge order.
		sort.Ints(comps)

		parent[vi] = vi
		if len(comps) == 0 {
			// Local maximum: new component.
			lowest[vi] = node
			roots = append(roots, vi)
			continue
		}
		// Attach each component's current lowest node to v, then merge.
		for _, c := range comps {
			lo := lowest[c]
			lo.Down = node
			node.Ups = append(node.Ups, lo)
			parent[c] = vi
		}
		lowest[vi] = node
	}

	// Collect the surviving roots.
	seen := map[int]bool{}
	for _, r := range roots {
		rr := find(r)
		if !seen[rr] {
			seen[rr] = true
			t.Roots = append(t.Roots, lowest[rr])
		}
	}
	sortNodes(t.Roots)
	return t
}

// FromGraph computes the augmented merge tree of an arbitrary graph
// given vertex values and undirected edges. It is the reference
// construction the distributed pipeline is validated against.
func FromGraph(values map[int64]float64, edges [][2]int64) (*Tree, error) {
	verts := make([]vertexRef, 0, len(values))
	index := make(map[int64]int, len(values))
	ids := make([]int64, 0, len(values))
	for id := range values {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		index[id] = len(verts)
		verts = append(verts, vertexRef{id: id, val: values[id]})
	}
	adj := make([][]int, len(verts))
	for _, e := range edges {
		a, oka := index[e[0]]
		b, okb := index[e[1]]
		if !oka || !okb {
			return nil, fmt.Errorf("mergetree: edge (%d,%d) references undeclared vertex", e[0], e[1])
		}
		if a == b {
			continue
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	return build(verts, func(i int) []int { return adj[i] }), nil
}

// Equal reports whether two trees have identical node sets, values and
// arcs. It is used by tests to check distributed == serial.
func Equal(a, b *Tree) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for id, na := range a.Nodes {
		nb, ok := b.Nodes[id]
		if !ok || na.Value != nb.Value {
			return false
		}
		da, db := int64(-1), int64(-1)
		if na.Down != nil {
			da = na.Down.ID
		}
		if nb.Down != nil {
			db = nb.Down.ID
		}
		if da != db {
			return false
		}
	}
	return true
}
