package mergetree

import (
	"math"
	"math/rand"
	"testing"

	"insitu/internal/grid"
)

// tinyGraph builds the 4-vertex example: maxima a(id0,val5) and
// b(id1,val4) merge at c(id2,val3), root d(id3,val2).
func tinyGraph() (map[int64]float64, [][2]int64) {
	values := map[int64]float64{0: 5, 1: 4, 2: 3, 3: 2}
	edges := [][2]int64{{0, 2}, {1, 2}, {2, 3}}
	return values, edges
}

func TestFromGraphTiny(t *testing.T) {
	values, edges := tinyGraph()
	tr, err := FromGraph(values, edges)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 4 {
		t.Fatalf("want 4 nodes, got %d", len(tr.Nodes))
	}
	if len(tr.Roots) != 1 || tr.Roots[0].ID != 3 {
		t.Fatalf("want root id 3, got %+v", tr.Roots)
	}
	c := tr.Node(2)
	if !c.IsSaddle() || len(c.Ups) != 2 {
		t.Fatalf("vertex 2 should be a saddle with 2 ups, got %d ups", len(c.Ups))
	}
	for _, id := range []int64{0, 1} {
		n := tr.Node(id)
		if !n.IsMax() {
			t.Errorf("vertex %d should be a maximum", id)
		}
		if n.Down != c {
			t.Errorf("vertex %d should point down to 2", id)
		}
	}
	if c.Down != tr.Node(3) {
		t.Errorf("saddle should point down to root")
	}
}

func TestFromGraphDisconnected(t *testing.T) {
	values := map[int64]float64{0: 5, 1: 4, 2: 3, 3: 2}
	edges := [][2]int64{{0, 1}, {2, 3}}
	tr, err := FromGraph(values, edges)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Roots) != 2 {
		t.Fatalf("want 2 roots for disconnected graph, got %d", len(tr.Roots))
	}
}

func TestFromGraphUndeclaredVertex(t *testing.T) {
	if _, err := FromGraph(map[int64]float64{0: 1}, [][2]int64{{0, 9}}); err == nil {
		t.Fatal("want error for edge referencing undeclared vertex")
	}
}

// TestFromField2D checks the Fig. 3 style 2-D example: two hills
// merging at a saddle.
func TestFromField2D(t *testing.T) {
	g := grid.NewBox(5, 1, 1)
	f := grid.NewField("f", g)
	// Profile: 1 5 2 4 1  -> maxima at x=1 (5) and x=3 (4), saddle at
	// x=2 (2), minima at the ends.
	for i, v := range []float64{1, 5, 2, 4, 1} {
		f.Set(i, 0, 0, v)
	}
	tr := FromField(f, g)
	maxima := tr.Maxima()
	if len(maxima) != 2 {
		t.Fatalf("want 2 maxima, got %d", len(maxima))
	}
	if maxima[0].Value != 5 || maxima[1].Value != 4 {
		t.Fatalf("maxima values wrong: %v %v", maxima[0].Value, maxima[1].Value)
	}
	saddles := tr.Saddles()
	if len(saddles) != 1 || saddles[0].Value != 2 {
		t.Fatalf("want single saddle at value 2, got %+v", saddles)
	}
	if len(tr.Roots) != 1 {
		t.Fatalf("want single root, got %d", len(tr.Roots))
	}
	// Root is the global minimum: value 1, and by the id tie-break the
	// later of the two 1s processed... both have value 1; the sweep
	// order puts the smaller id first, so the root (last processed) is
	// the larger id.
	if tr.Roots[0].Value != 1 {
		t.Fatalf("root value should be 1, got %g", tr.Roots[0].Value)
	}
}

// randomField builds a deterministic pseudo-random field over the box.
func randomField(rng *rand.Rand, b grid.Box) *grid.Field {
	f := grid.NewField("r", b)
	for i := range f.Data {
		f.Data[i] = rng.Float64()
	}
	return f
}

// smoothField builds a field with large-scale structure so features
// span block boundaries.
func smoothField(b grid.Box, phase float64) *grid.Field {
	f := grid.NewField("s", b)
	d := b.Dims()
	for idx := range f.Data {
		i, j, k := b.Point(idx)
		x := float64(i) / float64(d[0])
		y := float64(j) / float64(max(d[1], 2))
		z := float64(k) / float64(max(d[2], 2))
		f.Data[idx] = math.Sin(6*x+phase)*math.Cos(5*y) + 0.5*math.Sin(4*z+2*phase) + 0.3*math.Sin(13*x*y+phase)
	}
	return f
}

func TestAugmentedTreeBasicInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := grid.NewBox(9, 7, 5)
	f := randomField(rng, b)
	tr := FromField(f, b)
	if len(tr.Nodes) != b.Size() {
		t.Fatalf("augmented tree must contain every vertex: %d vs %d", len(tr.Nodes), b.Size())
	}
	if len(tr.Roots) != 1 {
		t.Fatalf("connected domain must give one root, got %d", len(tr.Roots))
	}
	// Down pointers strictly descend in sweep order; up/down links are
	// mutually consistent.
	for _, n := range tr.Nodes {
		if n.Down != nil {
			if !Above(n.Value, n.ID, n.Down.Value, n.Down.ID) {
				t.Fatalf("down pointer does not descend: %v -> %v", n.ID, n.Down.ID)
			}
			found := false
			for _, u := range n.Down.Ups {
				if u == n {
					found = true
				}
			}
			if !found {
				t.Fatalf("down/ups inconsistency at %d", n.ID)
			}
		}
	}
	// Node count identity: every non-root node has exactly one down
	// edge, so edges == nodes-1 for a single tree.
	arcs := tr.Arcs()
	if len(arcs) != len(tr.Nodes)-1 {
		t.Fatalf("tree must have n-1 arcs: %d vs %d nodes", len(arcs), len(tr.Nodes))
	}
}

// TestReduceKeepsCriticals verifies reduction drops exactly the
// regular vertices.
func TestReduceKeepsCriticals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := grid.NewBox(8, 8, 3)
	f := randomField(rng, b)
	tr := FromField(f, b)
	red := Reduce(tr, func(n *Node) bool { return false })
	for _, n := range red.Nodes {
		full := tr.Node(n.ID)
		if full.IsRegular() {
			t.Fatalf("regular vertex %d survived reduction", n.ID)
		}
	}
	// Maxima and saddles must be preserved with identical structure.
	if len(red.Maxima()) != len(tr.Maxima()) {
		t.Fatalf("maxima count changed: %d vs %d", len(red.Maxima()), len(tr.Maxima()))
	}
	if len(red.Saddles()) != len(tr.Saddles()) {
		t.Fatalf("saddle count changed: %d vs %d", len(red.Saddles()), len(tr.Saddles()))
	}
	if len(red.Roots) != len(tr.Roots) {
		t.Fatalf("root count changed")
	}
}

// criticalReduce reduces a tree to critical points only.
func criticalReduce(t *Tree) *Tree {
	return Reduce(t, func(n *Node) bool { return false })
}

// glueFromDecomp runs the full hybrid pipeline in-process: local
// subtrees per block, then gluing; policy selects the boundary
// augmentation.
func glueFromDecomp(t *testing.T, f *grid.Field, px, py, pz int, policy BoundaryPolicy, evict bool) *Tree {
	t.Helper()
	dc, err := grid.NewDecomp(f.Box, px, py, pz)
	if err != nil {
		t.Fatal(err)
	}
	var subtrees []*Subtree
	for r := 0; r < dc.Ranks(); r++ {
		owned := dc.Block(r)
		ext := owned.Grow(1).Intersect(f.Box)
		local := f.Extract(ext)
		st, err := LocalSubtree(local, f.Box, owned, r, policy)
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip the wire format while we are at it.
		st2, err := UnmarshalSubtree(st.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		subtrees = append(subtrees, st2)
	}
	glued, _, err := Glue(subtrees, GlueOptions{Evict: evict, SweepEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	return glued
}

func TestDistributedEqualsSerial(t *testing.T) {
	cases := []struct {
		nx, ny, nz int
		px, py, pz int
	}{
		{12, 10, 8, 2, 2, 2},
		{16, 9, 1, 4, 3, 1},
		{20, 20, 6, 3, 2, 2},
		{7, 7, 7, 2, 2, 2},
	}
	for ci, c := range cases {
		b := grid.NewBox(c.nx, c.ny, c.nz)
		for _, mk := range []func() *grid.Field{
			func() *grid.Field { return randomField(rand.New(rand.NewSource(int64(ci)+11)), b) },
			func() *grid.Field { return smoothField(b, float64(ci)) },
		} {
			f := mk()
			serial := criticalReduce(FromField(f, b))
			glued := criticalReduce(glueFromDecomp(t, f, c.px, c.py, c.pz, KeepSharedBoundary, false))
			if !Equal(serial, glued) {
				t.Fatalf("case %d: distributed tree differs from serial (%d vs %d nodes)",
					ci, len(glued.Nodes), len(serial.Nodes))
			}
		}
	}
}

func TestStreamingEvictionEqualsSerial(t *testing.T) {
	b := grid.NewBox(18, 14, 10)
	f := smoothField(b, 0.4)
	serial := criticalReduce(FromField(f, b))
	glued := glueFromDecomp(t, f, 3, 2, 2, KeepSharedBoundary, true)
	if !Equal(serial, criticalReduce(glued)) {
		t.Fatal("streaming eviction changed the tree")
	}
}

// TestStreamingEvictionBoundsMemory verifies the in-transit stage's
// low-memory property: with eviction, the peak resident vertex count
// stays well below the total number of streamed vertices.
func TestStreamingEvictionBoundsMemory(t *testing.T) {
	b := grid.NewBox(24, 24, 12)
	f := smoothField(b, 1.3)
	dc, err := grid.NewDecomp(b, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var subtrees []*Subtree
	for r := 0; r < dc.Ranks(); r++ {
		owned := dc.Block(r)
		ext := owned.Grow(1).Intersect(b)
		st, err := LocalSubtree(f.Extract(ext), b, owned, r, KeepSharedBoundary)
		if err != nil {
			t.Fatal(err)
		}
		subtrees = append(subtrees, st)
	}
	_, stats, err := Glue(subtrees, GlueOptions{Evict: true, SweepEvery: 128})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evicted == 0 {
		t.Fatal("eviction never triggered")
	}
	if stats.PeakLive >= stats.Declared {
		t.Fatalf("no memory reduction: peak %d of %d declared", stats.PeakLive, stats.Declared)
	}
	t.Logf("declared=%d peak=%d evicted=%d", stats.Declared, stats.PeakLive, stats.Evicted)
}

// TestBoundaryAblation shows that dropping the boundary augmentation
// breaks gluing for features spanning blocks (the design choice the
// paper's §III discusses).
func TestBoundaryAblation(t *testing.T) {
	b := grid.NewBox(16, 8, 4)
	f := smoothField(b, 0.9)
	serial := criticalReduce(FromField(f, b))
	broken := criticalReduce(glueFromDecomp(t, f, 4, 2, 1, KeepNone, false))
	if Equal(serial, broken) {
		t.Fatal("KeepNone unexpectedly produced the correct tree; ablation field too simple")
	}
}

func TestSubtreeMarshalRoundTrip(t *testing.T) {
	st := &Subtree{
		Rank:  7,
		Block: grid.Box{Lo: [3]int{1, 2, 3}, Hi: [3]int{4, 5, 6}},
		Verts: []SubtreeVert{{ID: 10, Value: 3.5}, {ID: 4, Value: -1.25}},
		Edges: []Arc{{Hi: 10, Lo: 4}},
	}
	got, err := UnmarshalSubtree(st.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != st.Rank || got.Block != st.Block ||
		len(got.Verts) != 2 || got.Verts[0] != st.Verts[0] || got.Verts[1] != st.Verts[1] ||
		len(got.Edges) != 1 || got.Edges[0] != st.Edges[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestUnmarshalSubtreeErrors(t *testing.T) {
	if _, err := UnmarshalSubtree(nil); err == nil {
		t.Fatal("want error for empty payload")
	}
	st := &Subtree{Verts: []SubtreeVert{{ID: 1, Value: 2}}}
	p := st.Marshal()
	if _, err := UnmarshalSubtree(p[:len(p)-4]); err == nil {
		t.Fatal("want error for truncated payload")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if err := b.DeclareVertex(1, 2.0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 99); err == nil {
		t.Fatal("want error for undeclared endpoint")
	}
	if err := b.DeclareVertex(1, 3.0, 1); err == nil {
		t.Fatal("want error for conflicting redeclaration")
	}
	if err := b.DeclareVertex(2, 1.0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err == nil {
		t.Fatal("want error for exceeding declared degree")
	}
}

func TestBuilderUnfinishedEdges(t *testing.T) {
	b := NewBuilder()
	if err := b.DeclareVertex(1, 2.0, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareVertex(2, 1.0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Finish(); err == nil {
		t.Fatal("want error when declared edges remain unprocessed")
	}
}

// TestGlueArbitraryEdgeOrder verifies the arbitrary-order property the
// paper requires of the in-transit algorithm: without eviction, any
// permutation of edge processing yields the same tree.
func TestGlueArbitraryEdgeOrder(t *testing.T) {
	b := grid.NewBox(10, 10, 4)
	f := smoothField(b, 2.2)
	tr := FromField(f, b)
	red := Reduce(tr, func(n *Node) bool { return false })
	st := packSubtree(red, 0, b)

	want, err := GlueSerial([]*Subtree{st})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		shuffled := &Subtree{Rank: st.Rank, Block: st.Block, Verts: st.Verts,
			Edges: append([]Arc{}, st.Edges...)}
		rng.Shuffle(len(shuffled.Edges), func(i, j int) {
			shuffled.Edges[i], shuffled.Edges[j] = shuffled.Edges[j], shuffled.Edges[i]
		})
		got, _, err := Glue([]*Subtree{shuffled}, GlueOptions{Evict: false})
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(want, got) {
			t.Fatalf("trial %d: edge order changed the result", trial)
		}
	}
}
