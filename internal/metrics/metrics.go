// Package metrics collects a pipeline run's quantitative story: the
// per-step timing breakdown the paper's evaluation reports (simulation
// time, per-analysis in-situ time, data movement time and size, and
// in-transit time — Table II and Fig. 6), plus the resilience counters
// the chaos fabric leaves behind (retries, requeues, crashes,
// dead-letters, degraded steps) and the overload-control counters
// (shaped/shed/fallback steps, credit denials, breaker transitions).
// Collection is thread-safe; simulation ranks and staging buckets
// record concurrently.
//
// The Collector can publish its aggregates into an obs.Registry
// (PublishTo) so the same run is scrapeable in Prometheus text form;
// TableII remains the human-facing view and its output is unchanged.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"insitu/internal/obs"
)

// Breakdown aggregates the cost of one analysis over a run.
type Breakdown struct {
	Steps       int           // number of analysis invocations
	InSitu      time.Duration // total of per-step maxima across ranks
	MoveModeled time.Duration // total modeled data-movement time
	MoveWall    time.Duration // total measured pull wall time
	MoveBytes   int64         // total intermediate bytes moved
	InTransit   time.Duration // total in-transit compute wall time
}

// PerStep returns the breakdown averaged per invocation.
func (b Breakdown) PerStep() Breakdown {
	if b.Steps == 0 {
		return b
	}
	n := time.Duration(b.Steps)
	return Breakdown{
		Steps:       1,
		InSitu:      b.InSitu / n,
		MoveModeled: b.MoveModeled / n,
		MoveWall:    b.MoveWall / n,
		MoveBytes:   b.MoveBytes / int64(b.Steps),
		InTransit:   b.InTransit / n,
	}
}

// Resilience aggregates the run's fault-handling counters: what the
// injector perturbed and how the stack absorbed it.
type Resilience struct {
	Faults           int64 // transfer attempts perturbed by the injector
	Retries          int64 // transfers retried by the DART layer
	ChecksumFailures int64 // corrupted payloads caught by CRC framing
	Requeues         int64 // staging task attempts pushed back FCFS
	Crashes          int64 // bucket crashes (each respawned)
	DeadLetters      int64 // tasks that exhausted their attempt budget
	DegradedSteps    int64 // analysis steps that fell back fully in-situ
}

// Overload aggregates the overload-control plane's counters: how often
// backpressure denied admission, how the admission ladder shaped or
// shed work, and how the per-route circuit breakers moved.
type Overload struct {
	CreditsDenied      int64 // credit acquisitions refused (account dry)
	StepsDelta         int64 // analysis steps admitted with delta encoding
	StepsQuantized     int64 // analysis steps admitted with quantized payload
	StepsShaped        int64 // analysis steps admitted at reduced payload
	StepsShed          int64 // analysis steps dropped with a shed marker
	StepsFallback      int64 // analysis steps forced in-situ by the ladder
	BreakerOpens       int64 // closed->open trips across all routes
	BreakerTransitions int64 // all breaker state transitions
}

// Collector gathers samples during a pipeline run.
type Collector struct {
	mu sync.Mutex

	simSteps []time.Duration // per-step simulation time (max over ranks)
	simMax   map[int]time.Duration

	inSituMax map[string]map[int]time.Duration // analysis -> step -> max over ranks
	move      map[string]*Breakdown            // movement + in-transit accumulation

	stepWall map[int]time.Duration // step -> max simulation-side wall time over ranks

	// stepWallHist mirrors RecordStepWall samples into the published
	// per-step wall-latency histogram (nil until PublishTo).
	stepWallHist *obs.Histogram

	res  Resilience
	over Overload
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		simMax:    make(map[int]time.Duration),
		inSituMax: make(map[string]map[int]time.Duration),
		move:      make(map[string]*Breakdown),
		stepWall:  make(map[int]time.Duration),
	}
}

// RecordSimStep records one rank's simulation time for a step; the
// per-step maximum across ranks is kept (the step completes when the
// slowest rank does).
func (c *Collector) RecordSimStep(step int, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > c.simMax[step] {
		c.simMax[step] = d
	}
}

// RecordInSitu records one rank's in-situ time for an analysis at a
// step, keeping the per-step maximum.
func (c *Collector) RecordInSitu(analysis string, step int, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.inSituMax[analysis]
	if !ok {
		m = make(map[int]time.Duration)
		c.inSituMax[analysis] = m
	}
	if d > m[step] {
		m[step] = d
	}
}

// RecordTransit records the staging-side costs of one in-transit task.
func (c *Collector) RecordTransit(analysis string, moveModeled, moveWall time.Duration, bytes int64, inTransit time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.move[analysis]
	if !ok {
		b = &Breakdown{}
		c.move[analysis] = b
	}
	b.MoveModeled += moveModeled
	b.MoveWall += moveWall
	b.MoveBytes += bytes
	b.InTransit += inTransit
}

// AddDegradedStep counts one analysis step that degraded to its
// in-situ fallback (or was dead-lettered).
func (c *Collector) AddDegradedStep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.res.DegradedSteps++
}

// AddDeltaStep counts one analysis step admitted with its payload
// delta-encoded by the ladder (exact, fewer bytes on the wire).
func (c *Collector) AddDeltaStep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.over.StepsDelta++
}

// AddQuantizedStep counts one analysis step admitted with its payload
// quantized under a bounded error by the ladder.
func (c *Collector) AddQuantizedStep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.over.StepsQuantized++
}

// AddShapedStep counts one analysis step admitted at a reduced
// (shaped) payload level.
func (c *Collector) AddShapedStep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.over.StepsShaped++
}

// AddShedStep counts one analysis step dropped outright by the
// admission ladder or submit-time backpressure.
func (c *Collector) AddShedStep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.over.StepsShed++
}

// AddOverloadFallback counts one analysis step the admission ladder
// forced fully in-situ.
func (c *Collector) AddOverloadFallback() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.over.StepsFallback++
}

// RecordOverload installs the end-of-run overload counters (credit
// denials, breaker transitions), preserving the shaped/shed/fallback
// step counts accumulated during the run.
func (c *Collector) RecordOverload(o Overload) {
	c.mu.Lock()
	defer c.mu.Unlock()
	o.StepsDelta = c.over.StepsDelta
	o.StepsQuantized = c.over.StepsQuantized
	o.StepsShaped = c.over.StepsShaped
	o.StepsShed = c.over.StepsShed
	o.StepsFallback = c.over.StepsFallback
	c.over = o
}

// Overload returns the run's overload-control counters.
func (c *Collector) Overload() Overload {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.over
}

// RecordStepWall records one rank's total simulation-side wall time
// for a step (solver + in-situ stages + admission + submission),
// keeping the per-step maximum across ranks. The brownout soak bounds
// this against an unloaded baseline.
func (c *Collector) RecordStepWall(step int, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > c.stepWall[step] {
		c.stepWall[step] = d
	}
	if c.stepWallHist != nil {
		c.stepWallHist.Observe(d.Seconds())
	}
}

// StepWalls returns the per-step maximum simulation-side wall times,
// indexed by step, for every recorded step.
func (c *Collector) StepWalls() map[int]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]time.Duration, len(c.stepWall))
	for s, d := range c.stepWall {
		out[s] = d
	}
	return out
}

// MaxStepWall returns the largest per-step simulation-side wall time.
func (c *Collector) MaxStepWall() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var max time.Duration
	for _, d := range c.stepWall {
		if d > max {
			max = d
		}
	}
	return max
}

// RecordResilience installs the transport- and staging-layer failure
// counters snapshotted at the end of a run, preserving the degraded
// step count accumulated during it.
func (c *Collector) RecordResilience(r Resilience) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r.DegradedSteps = c.res.DegradedSteps
	c.res = r
}

// Resilience returns the run's fault-handling counters.
func (c *Collector) Resilience() Resilience {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.res
}

// SimTime returns the total and per-step average simulation time.
func (c *Collector) SimTime() (total, perStep time.Duration, steps int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.simMax {
		total += d
	}
	steps = len(c.simMax)
	if steps > 0 {
		perStep = total / time.Duration(steps)
	}
	return
}

// Analyses returns the recorded analysis names, sorted.
func (c *Collector) Analyses() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[string]bool{}
	for name := range c.inSituMax {
		seen[name] = true
	}
	for name := range c.move {
		seen[name] = true
	}
	var out []string
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Total returns the accumulated breakdown for one analysis.
func (c *Collector) Total(analysis string) Breakdown {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b Breakdown
	if m, ok := c.inSituMax[analysis]; ok {
		b.Steps = len(m)
		for _, d := range m {
			b.InSitu += d
		}
	}
	if mv, ok := c.move[analysis]; ok {
		b.MoveModeled = mv.MoveModeled
		b.MoveWall = mv.MoveWall
		b.MoveBytes = mv.MoveBytes
		b.InTransit = mv.InTransit
		if b.Steps == 0 {
			b.Steps = mv.Steps
		}
	}
	return b
}

// TableII renders the collected data in the layout of the paper's
// Table II: per-step in-situ time, data movement time and size, and
// in-transit time per analysis.
func (c *Collector) TableII() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-42s %14s %14s %14s %14s\n",
		"analysis", "in-situ", "movement", "moved (MB)", "in-transit")
	for _, name := range c.Analyses() {
		b := c.Total(name).PerStep()
		mb := float64(b.MoveBytes) / 1e6
		fmt.Fprintf(&sb, "%-42s %14s %14s %14.2f %14s\n",
			name, fmtDur(b.InSitu), fmtDur(b.MoveModeled), mb, fmtDur(b.InTransit))
	}
	return sb.String()
}

// PublishTo registers the collector's aggregates as live instruments
// in an obs.Registry: monotonic totals as counter funcs sampled at
// export time, and the per-step simulation-side wall latency as a
// fixed-bucket histogram fed by RecordStepWall. Call once, before the
// run records samples.
func (c *Collector) PublishTo(reg *obs.Registry) { c.PublishToLabeled(reg) }

// PublishToLabeled is PublishTo with a fixed label set stamped onto
// every family, so multiple collectors (one per tenant) can publish
// into one registry without their series aliasing each other.
func (c *Collector) PublishToLabeled(reg *obs.Registry, labels ...obs.Attr) {
	reg.CounterFunc("pipeline_sim_seconds_total",
		"total simulation time, summed over per-step maxima across ranks",
		func() float64 { total, _, _ := c.SimTime(); return total.Seconds() }, labels...)
	reg.CounterFunc("pipeline_degraded_steps_total",
		"analysis steps that fell back fully in-situ or dead-lettered",
		func() float64 { return float64(c.Resilience().DegradedSteps) }, labels...)
	reg.CounterFunc("pipeline_delta_steps_total",
		"analysis steps admitted with delta-encoded payloads",
		func() float64 { return float64(c.Overload().StepsDelta) }, labels...)
	reg.CounterFunc("pipeline_quantized_steps_total",
		"analysis steps admitted with quantized payloads",
		func() float64 { return float64(c.Overload().StepsQuantized) }, labels...)
	reg.CounterFunc("pipeline_shaped_steps_total",
		"analysis steps admitted at a reduced (shaped) payload level",
		func() float64 { return float64(c.Overload().StepsShaped) }, labels...)
	reg.CounterFunc("pipeline_shed_steps_total",
		"analysis steps dropped with an explicit shed marker",
		func() float64 { return float64(c.Overload().StepsShed) }, labels...)
	reg.CounterFunc("pipeline_fallback_steps_total",
		"analysis steps the admission ladder forced in-situ",
		func() float64 { return float64(c.Overload().StepsFallback) }, labels...)
	reg.CounterFunc("pipeline_transit_bytes_total",
		"intermediate bytes moved to the staging tier, all analyses",
		func() float64 {
			var n int64
			for _, name := range c.Analyses() {
				n += c.Total(name).MoveBytes
			}
			return float64(n)
		}, labels...)
	reg.CounterFunc("pipeline_transit_seconds_total",
		"in-transit compute wall time, all analyses",
		func() float64 {
			var d time.Duration
			for _, name := range c.Analyses() {
				d += c.Total(name).InTransit
			}
			return d.Seconds()
		}, labels...)
	h := reg.Histogram("pipeline_step_wall_seconds",
		"per-step simulation-side wall time (max over ranks per sample)",
		obs.LatencyBuckets, labels...)
	c.mu.Lock()
	c.stepWallHist = h
	c.mu.Unlock()
}

// fmtDur renders a duration for a fixed-width table column. Precision
// steps down as magnitude grows so the rendered string never exceeds
// the 14-character column: sub-minute durations keep microsecond
// precision, sub-hour durations millisecond, anything longer second —
// without this, an hour-scale duration ("1h23m45.678901s") overflows
// its column and drifts every column after it.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "—"
	case d < time.Minute:
		return d.Round(time.Microsecond).String()
	case d < time.Hour:
		return d.Round(time.Millisecond).String()
	default:
		return d.Round(time.Second).String()
	}
}
