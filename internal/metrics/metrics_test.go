package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSimTimeKeepsMaxPerStep(t *testing.T) {
	c := NewCollector()
	c.RecordSimStep(1, 10*time.Millisecond)
	c.RecordSimStep(1, 30*time.Millisecond) // slower rank
	c.RecordSimStep(1, 20*time.Millisecond)
	c.RecordSimStep(2, 40*time.Millisecond)
	total, per, steps := c.SimTime()
	if steps != 2 {
		t.Fatalf("steps: want 2, got %d", steps)
	}
	if total != 70*time.Millisecond {
		t.Fatalf("total: want 70ms, got %v", total)
	}
	if per != 35*time.Millisecond {
		t.Fatalf("per-step: want 35ms, got %v", per)
	}
}

func TestInSituMaxAcrossRanks(t *testing.T) {
	c := NewCollector()
	c.RecordInSitu("topology", 1, 5*time.Millisecond)
	c.RecordInSitu("topology", 1, 9*time.Millisecond)
	c.RecordInSitu("topology", 2, 7*time.Millisecond)
	b := c.Total("topology")
	if b.Steps != 2 || b.InSitu != 16*time.Millisecond {
		t.Fatalf("breakdown wrong: %+v", b)
	}
	per := b.PerStep()
	if per.InSitu != 8*time.Millisecond {
		t.Fatalf("per-step in-situ: want 8ms, got %v", per.InSitu)
	}
}

func TestRecordTransitAccumulates(t *testing.T) {
	c := NewCollector()
	c.RecordTransit("viz", 2*time.Millisecond, 3*time.Millisecond, 1000, 50*time.Millisecond)
	c.RecordTransit("viz", 4*time.Millisecond, 5*time.Millisecond, 2000, 70*time.Millisecond)
	b := c.Total("viz")
	if b.MoveModeled != 6*time.Millisecond || b.MoveWall != 8*time.Millisecond ||
		b.MoveBytes != 3000 || b.InTransit != 120*time.Millisecond {
		t.Fatalf("transit accumulation wrong: %+v", b)
	}
}

func TestAnalysesSorted(t *testing.T) {
	c := NewCollector()
	c.RecordInSitu("zeta", 1, time.Millisecond)
	c.RecordTransit("alpha", 0, 0, 1, 0)
	got := c.Analyses()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("analyses order wrong: %v", got)
	}
}

func TestPerStepZeroSteps(t *testing.T) {
	var b Breakdown
	if b.PerStep() != b {
		t.Fatal("zero-step per-step must be identity")
	}
}

func TestTableIIFormat(t *testing.T) {
	c := NewCollector()
	c.RecordInSitu("hybrid topology", 1, 2720*time.Millisecond)
	c.RecordTransit("hybrid topology", 2060*time.Millisecond, time.Second, 87_020_000, 119_810*time.Millisecond)
	out := c.TableII()
	if !strings.Contains(out, "hybrid topology") {
		t.Fatalf("missing analysis row:\n%s", out)
	}
	if !strings.Contains(out, "87.02") {
		t.Fatalf("MB column wrong:\n%s", out)
	}
	// Header present.
	if !strings.Contains(out, "in-transit") {
		t.Fatalf("missing header:\n%s", out)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for s := 1; s <= 100; s++ {
				c.RecordSimStep(s, time.Duration(id+1)*time.Millisecond)
				c.RecordInSitu("a", s, time.Millisecond)
				c.RecordTransit("a", time.Microsecond, time.Microsecond, 10, time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	_, per, steps := c.SimTime()
	if steps != 100 || per != 8*time.Millisecond {
		t.Fatalf("concurrent collection wrong: steps=%d per=%v", steps, per)
	}
	if b := c.Total("a"); b.MoveBytes != 8000 {
		t.Fatalf("concurrent transit bytes: %d", b.MoveBytes)
	}
}

func TestOverloadCountersMergePreservesIncrementals(t *testing.T) {
	c := NewCollector()
	c.AddShapedStep()
	c.AddShapedStep()
	c.AddShedStep()
	c.AddOverloadFallback()
	c.RecordOverload(Overload{CreditsDenied: 5, BreakerOpens: 2, BreakerTransitions: 7})
	o := c.Overload()
	if o.StepsShaped != 2 || o.StepsShed != 1 || o.StepsFallback != 1 {
		t.Fatalf("incremental counts clobbered by merge: %+v", o)
	}
	if o.CreditsDenied != 5 || o.BreakerOpens != 2 || o.BreakerTransitions != 7 {
		t.Fatalf("snapshot counts lost: %+v", o)
	}
}

func TestStepWallKeepsMaxAcrossRanks(t *testing.T) {
	c := NewCollector()
	c.RecordStepWall(1, 10*time.Millisecond)
	c.RecordStepWall(1, 30*time.Millisecond) // slower rank wins
	c.RecordStepWall(1, 20*time.Millisecond)
	c.RecordStepWall(2, 5*time.Millisecond)
	walls := c.StepWalls()
	if walls[1] != 30*time.Millisecond || walls[2] != 5*time.Millisecond {
		t.Fatalf("step walls %v", walls)
	}
	if c.MaxStepWall() != 30*time.Millisecond {
		t.Fatalf("max step wall %v, want 30ms", c.MaxStepWall())
	}
}
