package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
	"unicode/utf8"
)

func TestSimTimeKeepsMaxPerStep(t *testing.T) {
	c := NewCollector()
	c.RecordSimStep(1, 10*time.Millisecond)
	c.RecordSimStep(1, 30*time.Millisecond) // slower rank
	c.RecordSimStep(1, 20*time.Millisecond)
	c.RecordSimStep(2, 40*time.Millisecond)
	total, per, steps := c.SimTime()
	if steps != 2 {
		t.Fatalf("steps: want 2, got %d", steps)
	}
	if total != 70*time.Millisecond {
		t.Fatalf("total: want 70ms, got %v", total)
	}
	if per != 35*time.Millisecond {
		t.Fatalf("per-step: want 35ms, got %v", per)
	}
}

func TestInSituMaxAcrossRanks(t *testing.T) {
	c := NewCollector()
	c.RecordInSitu("topology", 1, 5*time.Millisecond)
	c.RecordInSitu("topology", 1, 9*time.Millisecond)
	c.RecordInSitu("topology", 2, 7*time.Millisecond)
	b := c.Total("topology")
	if b.Steps != 2 || b.InSitu != 16*time.Millisecond {
		t.Fatalf("breakdown wrong: %+v", b)
	}
	per := b.PerStep()
	if per.InSitu != 8*time.Millisecond {
		t.Fatalf("per-step in-situ: want 8ms, got %v", per.InSitu)
	}
}

func TestRecordTransitAccumulates(t *testing.T) {
	c := NewCollector()
	c.RecordTransit("viz", 2*time.Millisecond, 3*time.Millisecond, 1000, 50*time.Millisecond)
	c.RecordTransit("viz", 4*time.Millisecond, 5*time.Millisecond, 2000, 70*time.Millisecond)
	b := c.Total("viz")
	if b.MoveModeled != 6*time.Millisecond || b.MoveWall != 8*time.Millisecond ||
		b.MoveBytes != 3000 || b.InTransit != 120*time.Millisecond {
		t.Fatalf("transit accumulation wrong: %+v", b)
	}
}

func TestAnalysesSorted(t *testing.T) {
	c := NewCollector()
	c.RecordInSitu("zeta", 1, time.Millisecond)
	c.RecordTransit("alpha", 0, 0, 1, 0)
	got := c.Analyses()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("analyses order wrong: %v", got)
	}
}

func TestPerStepZeroSteps(t *testing.T) {
	var b Breakdown
	if b.PerStep() != b {
		t.Fatal("zero-step per-step must be identity")
	}
}

func TestTableIIFormat(t *testing.T) {
	c := NewCollector()
	c.RecordInSitu("hybrid topology", 1, 2720*time.Millisecond)
	c.RecordTransit("hybrid topology", 2060*time.Millisecond, time.Second, 87_020_000, 119_810*time.Millisecond)
	out := c.TableII()
	if !strings.Contains(out, "hybrid topology") {
		t.Fatalf("missing analysis row:\n%s", out)
	}
	if !strings.Contains(out, "87.02") {
		t.Fatalf("MB column wrong:\n%s", out)
	}
	// Header present.
	if !strings.Contains(out, "in-transit") {
		t.Fatalf("missing header:\n%s", out)
	}
}

func TestFmtDurAdaptivePrecision(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "—"},
		{1500 * time.Nanosecond, "2µs"}, // sub-minute: µs rounding
		{59*time.Second + 999*time.Millisecond, "59.999s"},       // still µs precision band
		{61*time.Second + 123456789*time.Nanosecond, "1m1.123s"}, // sub-hour: ms rounding
		{59*time.Minute + 59*time.Second + 700*time.Millisecond, "59m59.7s"},
		{3*time.Hour + 25*time.Minute + 45*time.Second + 600*time.Millisecond, "3h25m46s"}, // hours: s rounding
	}
	for _, tc := range cases {
		if got := fmtDur(tc.d); got != tc.want {
			t.Errorf("fmtDur(%v) = %q, want %q", tc.d, got, tc.want)
		}
		if len(fmtDur(tc.d)) > 14 {
			t.Errorf("fmtDur(%v) = %q overflows the 14-char column", tc.d, fmtDur(tc.d))
		}
	}
}

// TestTableIIGoldenLongDurations pins the exact rendering — column
// alignment included — of a table whose durations exceed one minute,
// the case where the old fixed-precision fmtDur overflowed its column
// and pushed every later column out of alignment.
func TestTableIIGoldenLongDurations(t *testing.T) {
	c := NewCollector()
	c.RecordInSitu("hybrid topology", 1, 83*time.Minute+20*time.Second)
	c.RecordTransit("hybrid topology", 2*time.Minute+3456*time.Millisecond,
		time.Minute, 87_020_000, 4*time.Hour+1500*time.Millisecond)
	c.RecordInSitu("in-situ statistics", 1, 250*time.Microsecond)
	want := "" +
		"analysis                                          in-situ       movement     moved (MB)     in-transit\n" +
		"hybrid topology                                  1h23m20s       2m3.456s          87.02         4h0m2s\n" +
		"in-situ statistics                                  250µs              —           0.00              —\n"
	if got := c.TableII(); got != want {
		t.Fatalf("TableII drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	for i, line := range strings.Split(strings.TrimRight(c.TableII(), "\n"), "\n") {
		if n := utf8.RuneCountInString(line); n != 102 {
			t.Fatalf("line %d is %d chars, want 102 (columns drifted): %q", i+1, n, line)
		}
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for s := 1; s <= 100; s++ {
				c.RecordSimStep(s, time.Duration(id+1)*time.Millisecond)
				c.RecordInSitu("a", s, time.Millisecond)
				c.RecordTransit("a", time.Microsecond, time.Microsecond, 10, time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	_, per, steps := c.SimTime()
	if steps != 100 || per != 8*time.Millisecond {
		t.Fatalf("concurrent collection wrong: steps=%d per=%v", steps, per)
	}
	if b := c.Total("a"); b.MoveBytes != 8000 {
		t.Fatalf("concurrent transit bytes: %d", b.MoveBytes)
	}
}

func TestOverloadCountersMergePreservesIncrementals(t *testing.T) {
	c := NewCollector()
	c.AddShapedStep()
	c.AddShapedStep()
	c.AddShedStep()
	c.AddOverloadFallback()
	c.RecordOverload(Overload{CreditsDenied: 5, BreakerOpens: 2, BreakerTransitions: 7})
	o := c.Overload()
	if o.StepsShaped != 2 || o.StepsShed != 1 || o.StepsFallback != 1 {
		t.Fatalf("incremental counts clobbered by merge: %+v", o)
	}
	if o.CreditsDenied != 5 || o.BreakerOpens != 2 || o.BreakerTransitions != 7 {
		t.Fatalf("snapshot counts lost: %+v", o)
	}
}

func TestStepWallKeepsMaxAcrossRanks(t *testing.T) {
	c := NewCollector()
	c.RecordStepWall(1, 10*time.Millisecond)
	c.RecordStepWall(1, 30*time.Millisecond) // slower rank wins
	c.RecordStepWall(1, 20*time.Millisecond)
	c.RecordStepWall(2, 5*time.Millisecond)
	walls := c.StepWalls()
	if walls[1] != 30*time.Millisecond || walls[2] != 5*time.Millisecond {
		t.Fatalf("step walls %v", walls)
	}
	if c.MaxStepWall() != 30*time.Millisecond {
		t.Fatalf("max step wall %v, want 30ms", c.MaxStepWall())
	}
}
