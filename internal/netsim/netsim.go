// Package netsim models the interconnect between the primary compute
// resource and the staging area. It stands in for the Cray Gemini
// fabric used by DART in the paper: transfers are real in-process byte
// copies, but each transfer is also assigned a modeled duration
// computed from configurable per-path latency and bandwidth, with the
// transfer mechanism selected by message size exactly as DART does on
// Gemini (SMSG for small messages, FMA for medium, BTE RDMA for bulk).
//
// The model serves two purposes: (1) the scheduler and pipeline observe
// realistic asynchrony (optionally enforced by scaled real sleeps), and
// (2) the experiment harness can report modeled data-movement times at
// paper scale alongside measured wall-clock times.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/faults"
)

// Typed transfer faults, surfaced by TransferBetween when a fault
// injector is attached. dart maps these onto its retry policy.
var (
	// ErrDropped means the transfer was lost on the wire; no bytes
	// arrived. Retriable.
	ErrDropped = errors.New("netsim: transfer dropped")
	// ErrTimeout means the transfer stalled past its modeled delay
	// and was aborted. Retriable.
	ErrTimeout = errors.New("netsim: transfer timed out")
	// ErrPartitioned means a link-partition window currently cuts one
	// of the transfer's endpoints off the fabric. Retriable, but only
	// succeeds once the window closes.
	ErrPartitioned = errors.New("netsim: link partitioned")
)

// Path identifies the transfer mechanism chosen for a message.
type Path int

const (
	// SMSG is the GNI short-message path: FMA with OS bypass, lowest
	// latency, used for control messages and tiny payloads.
	SMSG Path = iota
	// FMA is the fast-memory-access path for medium payloads.
	FMA
	// BTE is the block-transfer-engine RDMA path for bulk data,
	// highest bandwidth, higher startup cost.
	BTE
)

// String implements fmt.Stringer.
func (p Path) String() string {
	switch p {
	case SMSG:
		return "SMSG"
	case FMA:
		return "FMA"
	case BTE:
		return "BTE"
	}
	return fmt.Sprintf("Path(%d)", int(p))
}

// Params describes one transfer mechanism: a fixed startup latency and
// a sustained bandwidth.
type Params struct {
	Latency   time.Duration
	Bandwidth float64 // bytes per second
}

// Config holds the full network model.
type Config struct {
	// SMSGMax and FMAMax are the inclusive upper size bounds (bytes)
	// for choosing the SMSG and FMA paths; larger messages use BTE.
	SMSGMax int
	FMAMax  int
	// Per-path parameters.
	SMSG Params
	FMA  Params
	BTE  Params
	// TimeScale optionally converts modeled durations into real sleeps
	// so pipelining is exercised in wall-clock time: a transfer whose
	// modeled duration is d sleeps d/TimeScale. Zero disables sleeping.
	TimeScale float64
	// SharedLink additionally serializes the sleeps, modeling a single
	// shared link (for example one staging bucket's ingress NIC):
	// concurrent transfers then complete one after another instead of
	// overlapping. Only meaningful with TimeScale > 0.
	SharedLink bool
}

// Gemini returns parameters approximating the Cray XK6 Gemini
// interconnect the paper deployed on: ~1.5 us small-message latency,
// several GB/s sustained RDMA bandwidth.
func Gemini() Config {
	return Config{
		SMSGMax: 1024,
		FMAMax:  64 * 1024,
		SMSG:    Params{Latency: 1500 * time.Nanosecond, Bandwidth: 1.0e9},
		FMA:     Params{Latency: 2500 * time.Nanosecond, Bandwidth: 3.0e9},
		BTE:     Params{Latency: 10 * time.Microsecond, Bandwidth: 6.0e9},
	}
}

// Network is a shared fabric instance. It accounts transferred bytes
// and modeled busy time; many endpoints may use it concurrently.
type Network struct {
	cfg Config

	bytesMoved atomic.Int64
	transfers  atomic.Int64

	mu          sync.Mutex
	modeledBusy time.Duration
	perPath     map[Path]int64 // bytes per path

	linkMu sync.Mutex // serializes sleeps under SharedLink

	faulted atomic.Int64 // transfers that failed or were perturbed
	inj     atomic.Pointer[faults.Injector]
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	return &Network{cfg: cfg, perPath: make(map[Path]int64)}
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// SetFaults attaches (or, with nil, detaches) a fault injector. Every
// endpoint-attributed transfer then consults the injector; plain
// Transfer/TransferInto control traffic stays fault-free so the
// coordination RPC path cannot wedge the scheduler.
func (n *Network) SetFaults(inj *faults.Injector) { n.inj.Store(inj) }

// Faults returns the attached fault injector, or nil.
func (n *Network) Faults() *faults.Injector { return n.inj.Load() }

// Select returns the mechanism DART would choose for a message of the
// given size.
func (n *Network) Select(size int) Path {
	switch {
	case size <= n.cfg.SMSGMax:
		return SMSG
	case size <= n.cfg.FMAMax:
		return FMA
	default:
		return BTE
	}
}

// Cost returns the modeled duration of transferring size bytes along
// with the chosen path.
func (n *Network) Cost(size int) (time.Duration, Path) {
	p := n.Select(size)
	var par Params
	switch p {
	case SMSG:
		par = n.cfg.SMSG
	case FMA:
		par = n.cfg.FMA
	default:
		par = n.cfg.BTE
	}
	d := par.Latency
	if par.Bandwidth > 0 {
		d += time.Duration(float64(size) / par.Bandwidth * float64(time.Second))
	}
	return d, p
}

// Transfer copies src into a freshly allocated buffer, accounts the
// modeled cost, optionally sleeps the scaled duration, and returns the
// copy together with the modeled duration. It is the single choke
// point all simulated RDMA traffic flows through.
func (n *Network) Transfer(src []byte) ([]byte, time.Duration) {
	dst := make([]byte, len(src))
	return dst, n.TransferInto(dst, src)
}

// TransferInto copies src into the caller-provided dst (whose length
// must be at least len(src)), accounts the modeled cost, optionally
// sleeps the scaled duration, and returns the modeled duration. This
// is the zero-allocation variant DART's pooled Get/Put path uses: the
// destination comes from the byte-buffer pool instead of a fresh
// allocation per transfer.
func (n *Network) TransferInto(dst, src []byte) time.Duration {
	copy(dst, src)
	d, p := n.Cost(len(src))
	n.account(d, p, len(src))
	n.sleepScaled(d)
	return d
}

// TransferBetween is the endpoint-attributed, fault-injectable variant
// of TransferInto: it copies src into dst and accounts cost exactly as
// TransferInto does, but when a fault injector is attached the attempt
// may instead be dropped, timed out, partitioned, delivered corrupted
// (bit flips in dst — left for checksum verification upstream), or
// delivered at collapsed bandwidth. The returned duration is the
// modeled time the attempt occupied the fabric, whether or not it
// succeeded.
func (n *Network) TransferBetween(dst, src []byte, from, to int) (time.Duration, error) {
	inj := n.inj.Load()
	if inj == nil {
		return n.TransferInto(dst, src), nil
	}
	d, p := n.Cost(len(src))
	dec := inj.Decide(from, to, int(p), len(src))
	switch dec.Kind {
	case faults.Drop:
		// The attempt occupied the wire for its full modeled duration
		// before the loss was noticed.
		n.faulted.Add(1)
		n.sleepScaled(d)
		return d, ErrDropped
	case faults.Timeout:
		n.faulted.Add(1)
		n.sleepScaled(dec.Delay)
		return dec.Delay, ErrTimeout
	case faults.Partition:
		// Fail fast at SMSG latency: the uGNI layer reports an
		// unreachable peer without moving payload bytes.
		n.faulted.Add(1)
		return n.cfg.SMSG.Latency, ErrPartitioned
	case faults.Corrupt:
		copy(dst, src)
		for _, b := range dec.FlipBits {
			dst[b/8] ^= 1 << (b % 8)
		}
		n.faulted.Add(1)
		n.account(d, p, len(src))
		n.sleepScaled(d)
		return d, nil
	case faults.Slowdown:
		copy(dst, src)
		d = time.Duration(float64(d) * dec.Factor)
		n.faulted.Add(1)
		n.account(d, p, len(src))
		n.sleepScaled(d)
		return d, nil
	}
	copy(dst, src)
	n.account(d, p, len(src))
	n.sleepScaled(d)
	return d, nil
}

// account records a completed transfer's cost against the counters.
func (n *Network) account(d time.Duration, p Path, size int) {
	n.bytesMoved.Add(int64(size))
	n.transfers.Add(1)
	n.mu.Lock()
	n.modeledBusy += d
	n.perPath[p] += int64(size)
	n.mu.Unlock()
}

// sleepScaled optionally converts a modeled duration into a real sleep.
func (n *Network) sleepScaled(d time.Duration) {
	if n.cfg.TimeScale <= 0 {
		return
	}
	if n.cfg.SharedLink {
		n.linkMu.Lock()
		time.Sleep(time.Duration(float64(d) / n.cfg.TimeScale))
		n.linkMu.Unlock()
	} else {
		time.Sleep(time.Duration(float64(d) / n.cfg.TimeScale))
	}
}

// Stats is a snapshot of fabric counters.
type Stats struct {
	BytesMoved  int64
	Transfers   int64
	ModeledBusy time.Duration
	PerPath     map[Path]int64
	// Faulted counts transfer attempts the injector perturbed
	// (dropped, timed out, partitioned, corrupted, or slowed).
	Faulted int64
}

// Stats returns a snapshot of the accounting counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	pp := make(map[Path]int64, len(n.perPath))
	for k, v := range n.perPath {
		pp[k] = v
	}
	return Stats{
		BytesMoved:  n.bytesMoved.Load(),
		Transfers:   n.transfers.Load(),
		ModeledBusy: n.modeledBusy,
		PerPath:     pp,
		Faulted:     n.faulted.Load(),
	}
}

// Reset clears all counters.
func (n *Network) Reset() {
	n.bytesMoved.Store(0)
	n.transfers.Store(0)
	n.faulted.Store(0)
	n.mu.Lock()
	n.modeledBusy = 0
	n.perPath = make(map[Path]int64)
	n.mu.Unlock()
}
