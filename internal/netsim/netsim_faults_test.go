package netsim

import (
	"bytes"
	"errors"
	"testing"

	"insitu/internal/faults"
)

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

// TestTransferBetweenNoInjector behaves exactly like TransferInto.
func TestTransferBetweenNoInjector(t *testing.T) {
	n := New(Gemini())
	src := payload(2000)
	dst := make([]byte, len(src))
	d, err := n.TransferBetween(dst, src, 0, 1)
	if err != nil || d <= 0 || !bytes.Equal(dst, src) {
		t.Fatalf("clean transfer failed: d=%v err=%v equal=%v", d, err, bytes.Equal(dst, src))
	}
	if n.Stats().Faulted != 0 {
		t.Fatal("no injector, but faults counted")
	}
}

// TestTransferBetweenDrop: a dropped transfer moves no bytes and
// returns ErrDropped.
func TestTransferBetweenDrop(t *testing.T) {
	n := New(Gemini())
	n.SetFaults(faults.New(faults.Config{Seed: 1, Default: faults.Rates{Drop: 1}}))
	src := payload(2000)
	dst := make([]byte, len(src))
	_, err := n.TransferBetween(dst, src, 0, 1)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	if bytes.Equal(dst, src) {
		t.Fatal("dropped transfer delivered bytes")
	}
	st := n.Stats()
	if st.Faulted != 1 || st.Transfers != 0 {
		t.Fatalf("drop accounting wrong: %+v", st)
	}
}

// TestTransferBetweenTimeoutAndPartition map to their typed errors.
func TestTransferBetweenTimeoutAndPartition(t *testing.T) {
	n := New(Gemini())
	n.SetFaults(faults.New(faults.Config{Seed: 1, Default: faults.Rates{Timeout: 1}}))
	if _, err := n.TransferBetween(make([]byte, 64), payload(64), 0, 1); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	n2 := New(Gemini())
	n2.SetFaults(faults.New(faults.Config{
		Seed:       1,
		Partitions: []faults.Window{{From: 0, Until: 1 << 30, Endpoints: []int{3}}},
	}))
	if _, err := n2.TransferBetween(make([]byte, 64), payload(64), 3, 1); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
	// An unpartitioned pair sails through.
	if _, err := n2.TransferBetween(make([]byte, 64), payload(64), 0, 1); err != nil {
		t.Fatalf("unpartitioned pair failed: %v", err)
	}
}

// TestTransferBetweenCorrupt: corruption delivers successfully but
// flips bits — detection is the upper layer's job.
func TestTransferBetweenCorrupt(t *testing.T) {
	n := New(Gemini())
	n.SetFaults(faults.New(faults.Config{Seed: 1, Default: faults.Rates{Corrupt: 1}, CorruptBits: 1}))
	src := payload(512)
	dst := make([]byte, len(src))
	if _, err := n.TransferBetween(dst, src, 0, 1); err != nil {
		t.Fatalf("corrupt transfer must not error at the netsim layer: %v", err)
	}
	diff := 0
	for i := range src {
		if src[i] != dst[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("want exactly one corrupted byte (1 bit flip), got %d", diff)
	}
}

// TestTransferBetweenSlowdown: delivered intact but with an inflated
// modeled duration.
func TestTransferBetweenSlowdown(t *testing.T) {
	n := New(Gemini())
	base, _ := n.Cost(1 << 16)
	n.SetFaults(faults.New(faults.Config{Seed: 1, Default: faults.Rates{Slowdown: 1}, SlowdownFactor: 10}))
	src := payload(1 << 16)
	dst := make([]byte, len(src))
	d, err := n.TransferBetween(dst, src, 0, 1)
	if err != nil || !bytes.Equal(dst, src) {
		t.Fatalf("slowdown must deliver intact: %v", err)
	}
	if d < 9*base {
		t.Fatalf("slowdown duration %v not ~10x the base %v", d, base)
	}
}
