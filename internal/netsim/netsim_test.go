package netsim

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestPathSelection(t *testing.T) {
	n := New(Gemini())
	cases := []struct {
		size int
		want Path
	}{
		{0, SMSG},
		{1024, SMSG},
		{1025, FMA},
		{64 * 1024, FMA},
		{64*1024 + 1, BTE},
		{100 << 20, BTE},
	}
	for _, c := range cases {
		if got := n.Select(c.size); got != c.want {
			t.Errorf("select(%d): want %v, got %v", c.size, c.want, got)
		}
	}
}

func TestCostModel(t *testing.T) {
	n := New(Gemini())
	// Tiny message: latency dominated.
	d, p := n.Cost(8)
	if p != SMSG {
		t.Fatalf("8-byte message should ride SMSG, got %v", p)
	}
	if d < n.Config().SMSG.Latency {
		t.Fatalf("cost below latency floor: %v", d)
	}
	// Bulk message: bandwidth dominated; 60 MB at 6 GB/s ~ 10 ms.
	db, pb := n.Cost(60 << 20)
	if pb != BTE {
		t.Fatalf("bulk message should ride BTE, got %v", pb)
	}
	if db < 9*time.Millisecond || db > 12*time.Millisecond {
		t.Fatalf("bulk cost out of range: %v", db)
	}
	// Monotonicity in size (within one path).
	d1, _ := n.Cost(1 << 20)
	d2, _ := n.Cost(2 << 20)
	if d2 <= d1 {
		t.Fatal("cost must grow with size")
	}
}

func TestTransferCopiesAndAccounts(t *testing.T) {
	n := New(Gemini())
	src := []byte{1, 2, 3, 4, 5}
	dst, d := n.Transfer(src)
	if !bytes.Equal(src, dst) {
		t.Fatal("transfer must copy the payload")
	}
	dst[0] = 99
	if src[0] == 99 {
		t.Fatal("transfer must not alias the source")
	}
	if d <= 0 {
		t.Fatal("transfer must report a positive modeled duration")
	}
	st := n.Stats()
	if st.BytesMoved != 5 || st.Transfers != 1 || st.ModeledBusy != d {
		t.Fatalf("accounting wrong: %+v", st)
	}
	if st.PerPath[SMSG] != 5 {
		t.Fatalf("per-path accounting wrong: %+v", st.PerPath)
	}
	n.Reset()
	if st2 := n.Stats(); st2.BytesMoved != 0 || st2.Transfers != 0 {
		t.Fatal("reset must clear counters")
	}
}

func TestTransferConcurrentAccounting(t *testing.T) {
	n := New(Gemini())
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 100)
			for i := 0; i < each; i++ {
				n.Transfer(buf)
			}
		}()
	}
	wg.Wait()
	st := n.Stats()
	if st.BytesMoved != workers*each*100 || st.Transfers != workers*each {
		t.Fatalf("concurrent accounting lost updates: %+v", st)
	}
}

func TestTimeScaleSleep(t *testing.T) {
	cfg := Gemini()
	cfg.TimeScale = 0.001 // sleep 1000x the modeled duration
	n := New(cfg)
	start := time.Now()
	n.Transfer(make([]byte, 8)) // ~1.5us modeled -> ~1.5ms wall
	if time.Since(start) < time.Millisecond {
		t.Fatal("TimeScale should stretch the transfer into wall time")
	}
}

func TestPathString(t *testing.T) {
	if SMSG.String() != "SMSG" || FMA.String() != "FMA" || BTE.String() != "BTE" {
		t.Fatal("path names wrong")
	}
	if Path(9).String() == "" {
		t.Fatal("unknown path must still format")
	}
}

// TestSharedLinkSerializes: with a shared link, concurrent transfers
// complete one after another, so total wall time is ~the sum of the
// scaled durations rather than their max.
func TestSharedLinkSerializes(t *testing.T) {
	cfg := Gemini()
	cfg.TimeScale = 0.001 // 1.5us SMSG -> 1.5ms sleeps
	cfg.SharedLink = true
	n := New(cfg)
	const workers = 4
	buf := make([]byte, 8)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.Transfer(buf)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	per, _ := n.Cost(8)
	scaled := time.Duration(float64(per) / cfg.TimeScale)
	if elapsed < time.Duration(workers-1)*scaled {
		t.Fatalf("shared link did not serialize: %v for %d transfers of %v", elapsed, workers, scaled)
	}
}
