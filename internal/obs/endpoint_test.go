package obs_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"insitu/internal/core"
	"insitu/internal/grid"
	"insitu/internal/netsim"
	"insitu/internal/obs"
	"insitu/internal/sim"
)

// runInstrumented runs a small pipeline with the observability plane
// attached and returns the plane plus the pipeline for /status.
func runInstrumented(t *testing.T) (*obs.Plane, *core.Pipeline) {
	t.Helper()
	simCfg := sim.DefaultConfig(grid.NewBox(16, 8, 8), 2, 1, 1)
	cfg := core.Config{Sim: simCfg, DSServers: 2, Buckets: 2, Net: netsim.Gemini()}
	p, err := core.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Register(&core.StatsHybrid{EveryN: 1})
	pl := p.EnableObs()
	if _, err := p.Run(3); err != nil {
		t.Fatal(err)
	}
	return pl, p
}

func get(t *testing.T, srv *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestObsEndpoint(t *testing.T) {
	pl, p := runInstrumented(t)
	srv := httptest.NewServer(obs.Handler(pl, func() any { return p.Status() }))
	defer srv.Close()

	// /metrics carries the acceptance series even on an un-faulted,
	// credit-less run (funcs read zero).
	metrics := string(get(t, srv, "/metrics"))
	for _, want := range []string{
		"dart_transfer_bytes_total",
		"dart_retries_total",
		"credits_available",
		"admission_decisions_total",
		"dataspaces_queue_depth",
		"pipeline_tasks_submitted_total",
		"pipeline_step_wall_seconds_bucket",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(get(t, srv, "/trace.json"), &doc); err != nil {
		t.Fatalf("/trace.json does not parse: %v", err)
	}
	cats := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		cats[ev.Cat] = true
	}
	for _, want := range []string{obs.CatTimeline, obs.CatDart, obs.CatTask} {
		if !cats[want] {
			t.Errorf("/trace.json has no %q events", want)
		}
	}

	var st struct {
		Done      bool  `json:"done"`
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
	}
	if err := json.Unmarshal(get(t, srv, "/status"), &st); err != nil {
		t.Fatalf("/status does not parse: %v", err)
	}
	if !st.Done || st.Submitted == 0 || st.Submitted != st.Completed {
		t.Errorf("/status inconsistent after drain: %+v", st)
	}

	if body := string(get(t, srv, "/debug/pprof/")); !strings.Contains(body, "profile") {
		t.Error("/debug/pprof/ index looks wrong")
	}
}

// TestTaskLifecycleReconciles drives a run and checks the JSONL ledger
// invariant: every task.submit id pairs with exactly one task.done.
func TestTaskLifecycleReconciles(t *testing.T) {
	pl, _ := runInstrumented(t)
	var sb strings.Builder
	if err := obs.WriteJSONL(&sb, pl.Recorder()); err != nil {
		t.Fatal(err)
	}
	submits := map[string]int{}
	dones := map[string]int{}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec struct {
			Name  string            `json:"name"`
			Attrs map[string]string `json:"attrs"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("jsonl line does not parse: %v", err)
		}
		switch rec.Name {
		case "task.submit":
			submits[rec.Attrs["task"]]++
		case "task.done":
			dones[rec.Attrs["task"]]++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(submits) == 0 {
		t.Fatal("no task.submit events recorded")
	}
	for id, n := range submits {
		if n != 1 || dones[id] != 1 {
			t.Errorf("task %s: %d submits, %d terminal events; want 1 and 1", id, n, dones[id])
		}
	}
	for id := range dones {
		if submits[id] == 0 {
			t.Errorf("task %s finished but never submitted", id)
		}
	}
}

// TestLegacyViewsUnchanged checks that attaching the full plane does
// not perturb the legacy text renderings: the Gantt over a shared
// recorder renders exactly the timeline-category spans.
func TestLegacyViewsUnchanged(t *testing.T) {
	pl, p := runInstrumented(t)
	tl := p.EnableTrace() // idempotent; returns the plane's timeline
	if tl.Recorder() != pl.Recorder() {
		t.Fatal("timeline does not share the plane's recorder")
	}
	for _, s := range tl.Spans() {
		for _, lane := range []string{"queue"} {
			if s.Lane == lane {
				t.Fatalf("non-timeline lane %q leaked into the Gantt view", lane)
			}
		}
	}
	gantt := tl.Gantt(80)
	if !strings.Contains(gantt, "sim") {
		t.Fatalf("gantt missing sim lane:\n%s", gantt)
	}
	if strings.Contains(gantt, "queue") || strings.Contains(gantt, "overload") {
		t.Fatalf("gantt rendered non-timeline lanes:\n%s", gantt)
	}
}
