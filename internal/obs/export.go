package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format
// (docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Field order follows the spec's examples; args maps marshal with
// sorted keys, so output is deterministic.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders the recorder's spans as a Chrome trace-event
// JSON object loadable in chrome://tracing and ui.perfetto.dev. Lanes
// map to threads of one process ("sim" first, the rest sorted, matching
// the text Gantt's row order); timed spans become complete ("X")
// events, instantaneous ones thread-scoped instant ("i") events.
// Timestamps are microseconds since the recorder's anchor.
func WriteChromeTrace(w io.Writer, rec *Recorder) error {
	spans := rec.Spans()
	anchor := rec.Anchor()

	var lanes []string
	seen := map[string]int{}
	for _, s := range spans {
		if _, ok := seen[s.Lane]; !ok {
			seen[s.Lane] = 0
			lanes = append(lanes, s.Lane)
		}
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i] == "sim" {
			return true
		}
		if lanes[j] == "sim" {
			return false
		}
		return lanes[i] < lanes[j]
	})
	for i, lane := range lanes {
		seen[lane] = i
	}

	events := make([]chromeEvent, 0, len(spans)+len(lanes))
	for i, lane := range lanes {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i,
			Args: map[string]string{"name": lane},
		})
	}
	for _, s := range spans {
		args := make(map[string]string, len(s.Attrs)+2)
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		args["id"] = fmt.Sprintf("%d", s.ID)
		if s.Parent != 0 {
			args["parent"] = fmt.Sprintf("%d", s.Parent)
		}
		ev := chromeEvent{
			Name: s.Name, Cat: s.Cat, Pid: 1, Tid: seen[s.Lane],
			Ts:   float64(s.Start.Sub(anchor).Nanoseconds()) / 1e3,
			Args: args,
		}
		if s.Instant() {
			ev.Ph, ev.S = "i", "t"
		} else {
			d := float64(s.End.Sub(s.Start).Nanoseconds()) / 1e3
			ev.Ph, ev.Dur = "X", &d
		}
		events = append(events, ev)
	}

	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// jsonlRecord is one line of the JSONL event log.
type jsonlRecord struct {
	Type    string            `json:"type"` // "span" or "event"
	ID      int64             `json:"id"`
	Parent  int64             `json:"parent,omitempty"`
	Cat     string            `json:"cat"`
	Lane    string            `json:"lane"`
	Name    string            `json:"name"`
	StartNS int64             `json:"start_ns"`
	EndNS   int64             `json:"end_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// WriteJSONL renders the recorder's spans as a JSON-lines event log:
// one object per span/event, timestamps in nanoseconds since the
// anchor, ordered by start time. This is the format downstream tools
// reconcile the task lifecycle from (every task.submit id pairs with
// exactly one task.done).
func WriteJSONL(w io.Writer, rec *Recorder) error {
	anchor := rec.Anchor()
	enc := json.NewEncoder(w)
	for _, s := range rec.Spans() {
		r := jsonlRecord{
			Type: "span", ID: s.ID, Parent: s.Parent,
			Cat: s.Cat, Lane: s.Lane, Name: s.Name,
			StartNS: s.Start.Sub(anchor).Nanoseconds(),
			EndNS:   s.End.Sub(anchor).Nanoseconds(),
		}
		if s.Instant() {
			r.Type = "event"
		}
		if len(s.Attrs) > 0 {
			r.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				r.Attrs[a.Key] = a.Value
			}
		}
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
