package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the exporter golden files")

// fixturePlane builds the fixed synthetic timeline the exporter goldens
// render: a deterministic anchor, one span per category, a parent/child
// pair, an instant event, and one instrument of each kind.
func fixturePlane() *Plane {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	pl := NewPlaneAt(t0)
	rec := pl.Recorder()

	rec.Record(0, CatTimeline, "sim", "step 1", t0, t0.Add(2*time.Millisecond))
	get := rec.Record(0, CatDart, "sim-0", "dart.get",
		t0.Add(500*time.Microsecond), t0.Add(900*time.Microsecond),
		Str("region", "0/1"), Int("bytes", 4096), Int("attempts", 2),
		Dur("modeled", 250*time.Microsecond))
	rec.Event(get, CatDart, "sim-0", "dart.retry", t0.Add(700*time.Microsecond),
		Str("op", "get"), Int("attempt", 1))
	rec.Event(0, CatTask, "queue", "task.submit", t0.Add(time.Millisecond),
		Int64("task", 1), Str("analysis", "hybrid statistics"), Int("step", 1))
	rec.Record(0, CatTask, "bucket-0", "task.attempt",
		t0.Add(1200*time.Microsecond), t0.Add(1800*time.Microsecond),
		Int64("task", 1), Str("outcome", "ok"))
	rec.Event(0, CatAdmit, "overload", "admit", t0.Add(1100*time.Microsecond),
		Str("analysis", "hybrid statistics"), Str("level", "full"), Bool("credited", true))

	reg := pl.Registry()
	reg.Counter("dart_gets_total", "completed one-sided reads by result", Str("result", "ok")).Add(3)
	reg.Counter("dart_gets_total", "completed one-sided reads by result", Str("result", "error")).Inc()
	reg.Gauge("dataspaces_queue_depth", "tasks waiting for a bucket").Set(2)
	reg.GaugeFunc("credits_available", "flow-control credits currently grantable", func() float64 { return 7 })
	h := reg.Histogram("dart_transfer_modeled_seconds", "modeled transfer duration", []float64{1e-6, 1e-3, 1})
	h.Observe(5e-4)
	h.Observe(2)
	return pl
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with go test -run Golden -update): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenChromeTrace(t *testing.T) {
	pl := fixturePlane()
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, pl.Recorder()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The golden must stay loadable: Chrome trace JSON is a plain JSON
	// object with a traceEvents array.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	checkGolden(t, "chrome.json", []byte(out))
}

func TestGoldenJSONL(t *testing.T) {
	pl := fixturePlane()
	var sb strings.Builder
	if err := WriteJSONL(&sb, pl.Recorder()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("jsonl line %d does not parse: %v", i+1, err)
		}
	}
	checkGolden(t, "events.jsonl", []byte(out))
}

func TestGoldenPrometheus(t *testing.T) {
	pl := fixturePlane()
	var sb strings.Builder
	if err := pl.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom", []byte(sb.String()))
}

// TestExportDeterministic re-renders the same plane twice; the exports
// must be byte-identical (deterministic IDs, sorted families/labels).
func TestExportDeterministic(t *testing.T) {
	pl := fixturePlane()
	render := func() string {
		var sb strings.Builder
		if err := WriteChromeTrace(&sb, pl.Recorder()); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSONL(&sb, pl.Recorder()); err != nil {
			t.Fatal(err)
		}
		if err := pl.Registry().WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if render() != render() {
		t.Fatal("re-rendering the same plane produced different bytes")
	}
}
