package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler returns the live observability endpoint: a mux serving
//
//	/metrics      Prometheus text dump of the plane's registry
//	/trace.json   Chrome trace-event JSON of the plane's recorder
//	/events.jsonl JSONL event log of the plane's recorder
//	/status       JSON snapshot from the status callback (optional)
//	/debug/pprof  the standard net/http/pprof handlers
//
// All exports render live state at request time, so the endpoint can
// be scraped while a run is in flight. status may be nil, in which
// case /status serves an empty object.
func Handler(p *Plane, status func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("observability endpoints:\n" +
			"  /metrics       Prometheus text dump\n" +
			"  /trace.json    Chrome trace (open in chrome://tracing or ui.perfetto.dev)\n" +
			"  /events.jsonl  JSONL event log\n" +
			"  /status        pipeline status snapshot\n" +
			"  /debug/pprof/  live profiling\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		p.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		WriteChromeTrace(w, p.Recorder())
	})
	mux.HandleFunc("/events.jsonl", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		WriteJSONL(w, p.Recorder())
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var v any = map[string]any{}
		if status != nil {
			v = status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
