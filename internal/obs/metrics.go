package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a typed metrics registry: counters, gauges and
// fixed-bucket histograms, plus function-backed instruments that are
// sampled at export time (so live state — queue depth, credit balance,
// fabric counters — needs no mirroring). Registration is idempotent:
// asking for an existing (name, labels) series returns the same
// instrument. Registering the same series as a different kind panics —
// that is a programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one metric family: all series sharing a name, help text
// and type.
type family struct {
	name, help, typ string
	series          map[string]*series // keyed by rendered label string
}

// series is one labeled instrument inside a family. Exactly one of the
// value fields is set.
type series struct {
	labels string
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Families returns the number of registered metric families.
func (r *Registry) Families() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.families)
}

// renderLabels renders attrs as a deterministic Prometheus label
// string (`{k="v",...}`), or "" for no labels.
func renderLabels(labels []Attr) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Attr(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// register finds or creates a series; mk builds the instrument on
// first registration.
func (r *Registry) register(name, help, typ string, labels []Attr, mk func() *series) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	s, ok := f.series[key]
	if !ok {
		s = mk()
		s.labels = key
		f.series[key] = s
	}
	return s
}

// Counter registers (or finds) a monotonically increasing int64
// counter.
func (r *Registry) Counter(name, help string, labels ...Attr) *Counter {
	s := r.register(name, help, "counter", labels, func() *series { return &series{c: &Counter{}} })
	if s.c == nil {
		panic(fmt.Sprintf("obs: metric %q%s is not an owned counter", name, renderLabels(labels)))
	}
	return s.c
}

// CounterFunc registers a counter series whose value is read from fn
// at export time — for monotonic totals a subsystem already tracks.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Attr) {
	r.register(name, help, "counter", labels, func() *series { return &series{fn: fn} })
}

// Gauge registers (or finds) a float64 gauge.
func (r *Registry) Gauge(name, help string, labels ...Attr) *Gauge {
	s := r.register(name, help, "gauge", labels, func() *series { return &series{g: &Gauge{}} })
	if s.g == nil {
		panic(fmt.Sprintf("obs: metric %q%s is not an owned gauge", name, renderLabels(labels)))
	}
	return s.g
}

// GaugeFunc registers a gauge series whose value is read from fn at
// export time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Attr) {
	r.register(name, help, "gauge", labels, func() *series { return &series{fn: fn} })
}

// Histogram registers (or finds) a fixed-bucket histogram. The bucket
// slice holds ascending upper bounds; an implicit +Inf bucket is
// always appended.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Attr) *Histogram {
	s := r.register(name, help, "histogram", labels, func() *series {
		return &series{h: newHistogram(buckets)}
	})
	if s.h == nil {
		panic(fmt.Sprintf("obs: metric %q%s is not a histogram", name, renderLabels(labels)))
	}
	return s.h
}

// Counter is a monotonically increasing int64 counter, safe for
// concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which must be non-negative for the Prometheus contract,
// unchecked).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 gauge, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram, safe for concurrent use.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe folds one sample into the histogram.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n ascending bucket bounds starting at start,
// each factor times the previous — the standard exponential layout
// for latency and size histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default latency histogram layout: 1µs to ~4s
// in powers of 4.
var LatencyBuckets = ExpBuckets(1e-6, 4, 12)

// SizeBuckets is the default payload-size histogram layout: 256B to
// ~64MB in powers of 4.
var SizeBuckets = ExpBuckets(256, 4, 10)

// fmtFloat renders a sample value the way Prometheus text format does.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format, families sorted by name and series by label
// string, so the dump is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		srs := make([]*series, 0, len(keys))
		for _, k := range keys {
			srs = append(srs, f.series[k])
		}
		r.mu.Unlock()
		for _, s := range srs {
			switch {
			case s.c != nil:
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, s.labels, fmtFloat(s.g.Value()))
			case s.fn != nil:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, s.labels, fmtFloat(s.fn()))
			case s.h != nil:
				cum := int64(0)
				for i, b := range s.h.bounds {
					cum += s.h.counts[i].Load()
					fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, mergeLabels(s.labels, "le", fmtFloat(b)), cum)
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, mergeLabels(s.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name, s.labels, fmtFloat(s.h.Sum()))
				fmt.Fprintf(&sb, "%s_count%s %d\n", f.name, s.labels, s.h.Count())
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// mergeLabels inserts one extra label (e.g. le) into an already
// rendered label string.
func mergeLabels(rendered, key, val string) string {
	extra := key + `="` + escapeLabel(val) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}
