// Package obs is the pipeline's observability plane: a structured span
// recorder and a typed metrics registry, with exporters for the Chrome
// trace-event format (chrome://tracing, Perfetto), a JSONL event log,
// and a Prometheus-style text dump, plus a live HTTP endpoint serving
// all three alongside net/http/pprof.
//
// The plane is the system of record that the legacy views render from:
// trace.Timeline records its Gantt spans into a Recorder under the
// "timeline" category, and metrics.Collector publishes its counters
// into a Registry, so the paper-facing text outputs (the Gantt chart,
// TableII) are unchanged while the same run becomes machine-consumable.
//
// Span identity is deterministic per run: IDs are a sequence number
// assigned in recording order, never random or time-derived, so two
// exports of the same recorder are byte-identical.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Span categories used across the pipeline. Exporters carry the
// category through (Chrome "cat", JSONL "cat"), so consumers can
// filter one subsystem's events out of a full-run trace.
const (
	// CatTimeline holds the legacy Gantt spans: simulation steps,
	// per-bucket in-transit task occupancy, and trace marks.
	CatTimeline = "timeline"
	// CatDart holds transport-layer spans and events: one span per
	// Get/Put (attrs: bytes, attempts, modeled time) and one event per
	// retry.
	CatDart = "dart"
	// CatTask holds the in-transit task lifecycle: submit and requeue
	// events on the queue lane, and per-attempt pull/run spans plus the
	// terminal done event on the bucket lanes.
	CatTask = "task"
	// CatAdmit holds the overload-control plane: per-step admission
	// decisions and breaker transitions.
	CatAdmit = "admit"
)

// Attr is one key/value annotation on a span or event. Attrs with an
// empty key are dropped at recording time, so conditional helpers (see
// Error) can return a zero Attr to mean "nothing".
type Attr struct {
	Key   string
	Value string
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 builds an int64 attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Dur builds a duration attribute, rendered in Go duration syntax.
func Dur(k string, d time.Duration) Attr { return Attr{Key: k, Value: d.String()} }

// Error builds an "error" attribute from err, or a zero (dropped) Attr
// when err is nil.
func Error(err error) Attr {
	if err == nil {
		return Attr{}
	}
	return Attr{Key: "error", Value: err.Error()}
}

// Span is one recorded interval (or instantaneous event) on a lane.
type Span struct {
	// ID is the span's run-unique sequence number, assigned in
	// recording order starting at 1.
	ID int64
	// Parent is the enclosing span's ID, or 0 for a root span.
	Parent int64
	// Cat is the span's category (one of the Cat* constants).
	Cat string
	// Lane names the resource the span occupied: "sim", "bucket-N",
	// an endpoint name, "queue", or "overload".
	Lane string
	// Name is the span's display name, e.g. "step 3" or "dart.get".
	Name string
	// Start and End bound the interval; End == Start for events.
	Start, End time.Time
	// Attrs are the span's structured annotations.
	Attrs []Attr
}

// Instant reports whether the span is a zero-length event.
func (s Span) Instant() bool { return !s.End.After(s.Start) }

// Recorder collects spans concurrently. The zero value is not usable;
// construct with NewRecorder or NewRecorderAt.
type Recorder struct {
	mu    sync.Mutex
	t0    time.Time
	next  int64
	spans []Span
}

// NewRecorder returns an empty recorder anchored at the current time.
func NewRecorder() *Recorder { return NewRecorderAt(time.Now()) }

// NewRecorderAt returns an empty recorder anchored at t0. Exported
// timestamps are rendered relative to the anchor, so golden tests pin
// it to a fixed instant.
func NewRecorderAt(t0 time.Time) *Recorder { return &Recorder{t0: t0} }

// Anchor returns the recorder's time origin.
func (r *Recorder) Anchor() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t0
}

// Record appends one completed span under the given parent (0 = root)
// and returns its ID.
func (r *Recorder) Record(parent int64, cat, lane, name string, start, end time.Time, attrs ...Attr) int64 {
	kept := attrs[:0]
	for _, a := range attrs {
		if a.Key != "" {
			kept = append(kept, a)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	r.spans = append(r.spans, Span{
		ID: r.next, Parent: parent, Cat: cat, Lane: lane, Name: name,
		Start: start, End: end, Attrs: append([]Attr(nil), kept...),
	})
	return r.next
}

// Event records an instantaneous event (a zero-length span) and
// returns its ID.
func (r *Recorder) Event(parent int64, cat, lane, name string, at time.Time, attrs ...Attr) int64 {
	return r.Record(parent, cat, lane, name, at, at, attrs...)
}

// Begin opens an in-progress span, assigning its ID immediately so
// children recorded before the span closes can reference it.
func (r *Recorder) Begin(parent int64, cat, lane, name string, attrs ...Attr) *Active {
	r.mu.Lock()
	r.next++
	id := r.next
	r.mu.Unlock()
	return &Active{
		r: r, id: id, parent: parent, cat: cat, lane: lane, name: name,
		start: time.Now(), attrs: attrs,
	}
}

// Active is a span opened by Begin and not yet recorded.
type Active struct {
	r      *Recorder
	id     int64
	parent int64
	cat    string
	lane   string
	name   string
	start  time.Time
	attrs  []Attr
}

// ID returns the span's pre-assigned ID, usable as a parent for
// children recorded while the span is open.
func (a *Active) ID() int64 { return a.id }

// End records the span, closing it now. Extra attrs are appended to
// those given at Begin.
func (a *Active) End(attrs ...Attr) {
	all := append(append([]Attr(nil), a.attrs...), attrs...)
	kept := all[:0]
	for _, at := range all {
		if at.Key != "" {
			kept = append(kept, at)
		}
	}
	end := time.Now()
	a.r.mu.Lock()
	a.r.spans = append(a.r.spans, Span{
		ID: a.id, Parent: a.parent, Cat: a.cat, Lane: a.lane, Name: a.name,
		Start: a.start, End: end, Attrs: append([]Attr(nil), kept...),
	})
	a.r.mu.Unlock()
}

// Len returns the number of recorded (closed) spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans returns a copy of all recorded spans, sorted by start time
// with the recording sequence breaking ties, so the order is
// deterministic for a given run.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SpansCat returns the recorded spans in one category, sorted as in
// Spans.
func (r *Recorder) SpansCat(cat string) []Span {
	all := r.Spans()
	out := all[:0]
	for _, s := range all {
		if s.Cat == cat {
			out = append(out, s)
		}
	}
	return out
}

// Lanes returns the distinct lane names across all spans, sorted.
func (r *Recorder) Lanes() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range r.Spans() {
		if !seen[s.Lane] {
			seen[s.Lane] = true
			out = append(out, s.Lane)
		}
	}
	sort.Strings(out)
	return out
}

// Plane bundles the two halves of the observability plane: the span
// recorder and the metrics registry. One Plane instruments one
// pipeline run.
type Plane struct {
	rec *Recorder
	reg *Registry
}

// NewPlane returns a plane with a fresh recorder (anchored now) and an
// empty registry.
func NewPlane() *Plane { return &Plane{rec: NewRecorder(), reg: NewRegistry()} }

// NewPlaneAt returns a plane whose recorder is anchored at t0, for
// deterministic tests.
func NewPlaneAt(t0 time.Time) *Plane { return &Plane{rec: NewRecorderAt(t0), reg: NewRegistry()} }

// Recorder returns the plane's span recorder.
func (p *Plane) Recorder() *Recorder { return p.rec }

// Registry returns the plane's metrics registry.
func (p *Plane) Registry() *Registry { return p.reg }

// String implements fmt.Stringer with a one-line summary.
func (p *Plane) String() string {
	return fmt.Sprintf("obs.Plane{%d spans, %d metric families}", p.rec.Len(), p.reg.Families())
}
