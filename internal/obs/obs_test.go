package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderSequentialIDs(t *testing.T) {
	r := NewRecorder()
	t0 := r.Anchor()
	id1 := r.Record(0, CatTimeline, "sim", "step 1", t0, t0.Add(time.Millisecond))
	id2 := r.Event(0, CatTask, "queue", "task.submit", t0.Add(time.Millisecond))
	if id1 != 1 || id2 != 2 {
		t.Fatalf("ids not sequential: %d, %d", id1, id2)
	}
	if r.Len() != 2 {
		t.Fatalf("len: want 2, got %d", r.Len())
	}
}

func TestRecorderCategoryFilter(t *testing.T) {
	r := NewRecorder()
	t0 := r.Anchor()
	r.Record(0, CatTimeline, "sim", "step 1", t0, t0.Add(time.Millisecond))
	r.Record(0, CatDart, "sim-0", "dart.get", t0, t0.Add(time.Microsecond))
	r.Event(0, CatTask, "queue", "task.submit", t0)
	if got := len(r.SpansCat(CatTimeline)); got != 1 {
		t.Fatalf("timeline spans: want 1, got %d", got)
	}
	if got := len(r.SpansCat(CatDart)); got != 1 {
		t.Fatalf("dart spans: want 1, got %d", got)
	}
	if got := len(r.Spans()); got != 3 {
		t.Fatalf("all spans: want 3, got %d", got)
	}
}

func TestRecorderSpansSortedByStart(t *testing.T) {
	r := NewRecorder()
	t0 := r.Anchor()
	r.Record(0, CatTimeline, "a", "later", t0.Add(time.Second), t0.Add(2*time.Second))
	r.Record(0, CatTimeline, "b", "earlier", t0, t0.Add(time.Millisecond))
	spans := r.Spans()
	if spans[0].Name != "earlier" || spans[1].Name != "later" {
		t.Fatalf("spans not sorted by start: %q, %q", spans[0].Name, spans[1].Name)
	}
}

func TestBeginAssignsParentableID(t *testing.T) {
	r := NewRecorder()
	act := r.Begin(0, CatTask, "bucket-0", "task.attempt", Int("attempt", 1))
	if act.ID() != 1 {
		t.Fatalf("active id: want 1, got %d", act.ID())
	}
	child := r.Record(act.ID(), CatTask, "bucket-0", "task.pull", time.Now(), time.Now())
	act.End(Str("outcome", "ok"))
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
	var attempt, pull *Span
	for i := range spans {
		switch spans[i].Name {
		case "task.attempt":
			attempt = &spans[i]
		case "task.pull":
			pull = &spans[i]
		}
	}
	if attempt == nil || pull == nil {
		t.Fatalf("missing spans: %+v", spans)
	}
	if pull.Parent != attempt.ID || pull.ID != child {
		t.Fatalf("parent linkage wrong: pull.Parent=%d attempt.ID=%d", pull.Parent, attempt.ID)
	}
	// End-time attrs must be appended after the Begin-time ones.
	if len(attempt.Attrs) != 2 || attempt.Attrs[1].Key != "outcome" {
		t.Fatalf("attempt attrs wrong: %+v", attempt.Attrs)
	}
}

func TestEmptyAttrsDropped(t *testing.T) {
	r := NewRecorder()
	r.Event(0, CatDart, "sim-0", "dart.retry", time.Now(), Str("op", "get"), Error(nil))
	spans := r.Spans()
	if len(spans[0].Attrs) != 1 {
		t.Fatalf("nil-error attr not dropped: %+v", spans[0].Attrs)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help", Str("op", "get"))
	b := reg.Counter("x_total", "help", Str("op", "get"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := reg.Counter("x_total", "help", Str("op", "put"))
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	if reg.Families() != 1 {
		t.Fatalf("families: want 1, got %d", reg.Families())
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "help")
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count: want 4, got %d", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Fatalf("sum: want 555.5, got %g", h.Sum())
	}
	want := []int64{1, 1, 1, 1}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Fatalf("bucket %d: want %d, got %d", i, want[i], got)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: want %g, got %g", i, want[i], got[i])
		}
	}
}

// TestConcurrentRecordAndExport is the race hammer: goroutines record
// spans and bump every instrument kind while other goroutines export
// all three formats. Run with -race; correctness here is "no race, no
// panic, exports parse".
func TestConcurrentRecordAndExport(t *testing.T) {
	pl := NewPlane()
	rec := pl.Recorder()
	reg := pl.Registry()
	ctr := reg.Counter("hammer_ops_total", "ops", Str("op", "x"))
	g := reg.Gauge("hammer_depth", "depth")
	h := reg.Histogram("hammer_seconds", "latency", LatencyBuckets)
	reg.CounterFunc("hammer_fn_total", "sampled", func() float64 { return float64(rec.Len()) })

	const writers, rounds = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				act := rec.Begin(0, CatTask, "bucket-0", "task.attempt", Int("writer", w))
				rec.Record(act.ID(), CatDart, "bucket-0", "task.pull", time.Now(), time.Now())
				act.End(Str("outcome", "ok"))
				rec.Event(0, CatAdmit, "overload", "admit", time.Now(), Int("i", i))
				ctr.Inc()
				g.Set(float64(i))
				g.Add(1)
				h.Observe(float64(i) * 1e-6)
			}
		}(w)
	}
	var rg sync.WaitGroup
	for rdr := 0; rdr < 2; rdr++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := WriteChromeTrace(io.Discard, rec); err != nil {
					t.Error(err)
				}
				if err := WriteJSONL(io.Discard, rec); err != nil {
					t.Error(err)
				}
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
				}
				rec.Spans()
				rec.Lanes()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	if got := rec.Len(); got != writers*rounds*3 {
		t.Fatalf("spans: want %d, got %d", writers*rounds*3, got)
	}
	if ctr.Value() != writers*rounds {
		t.Fatalf("counter: want %d, got %d", writers*rounds, ctr.Value())
	}
	if h.Count() != writers*rounds {
		t.Fatalf("histogram count: want %d, got %d", writers*rounds, h.Count())
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hammer_ops_total") {
		t.Fatal("final export missing hammer_ops_total")
	}
}

func TestPlaneString(t *testing.T) {
	pl := NewPlane()
	pl.Recorder().Event(0, CatTimeline, "sim", "mark", time.Now())
	pl.Registry().Counter("a_total", "help")
	if got := pl.String(); got != "obs.Plane{1 spans, 1 metric families}" {
		t.Fatalf("String: %q", got)
	}
}
