package overload

import "sync"

// AutoscaleConfig tunes the staging-bucket autoscaler.
type AutoscaleConfig struct {
	// Min and Max bound the bucket-pool size (Min default 1; Max
	// default Min, i.e. scaling disabled until widened).
	Min, Max int
	// QueueHighPerBucket marks pressure when the task-queue depth
	// exceeds this many tasks per active bucket (default 2).
	QueueHighPerBucket int
	// GrowAfter is the consecutive pressured observations needed to
	// grow by one bucket (default 2).
	GrowAfter int
	// ShrinkAfter is the consecutive idle observations needed to shrink
	// by one bucket (default 4: shrink far more cautiously than grow).
	ShrinkAfter int
	// LadderHigh marks pressure when any tenant's worst admission-ladder
	// rung is at or past it (default LevelShaped).
	LadderHigh Level
}

func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.QueueHighPerBucket <= 0 {
		c.QueueHighPerBucket = 2
	}
	if c.GrowAfter <= 0 {
		c.GrowAfter = 2
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = 4
	}
	if c.LadderHigh <= 0 {
		c.LadderHigh = LevelShaped
	}
	return c
}

// AutoscaleSignals is one observation of the shared staging tier: the
// live obs signals (queue-depth gauge, free buckets, worst ladder
// rung) plus the current pool size.
type AutoscaleSignals struct {
	// QueueDepth is the shared task-queue depth.
	QueueDepth int
	// FreeBuckets is how many buckets are blocked waiting for work.
	FreeBuckets int
	// Active is the current bucket-pool size.
	Active int
	// MaxLevel is the worst admission-ladder rung across all tenants'
	// routes (LevelFull when every route is healthy).
	MaxLevel Level
}

// Autoscaler is the hysteretic grow/shrink policy for the shared
// bucket pool. Like the rest of this package it is pure policy: the
// scheduler feeds it observations and applies its verdicts to
// staging.Area.
type Autoscaler struct {
	cfg AutoscaleConfig

	mu   sync.Mutex
	hot  int
	cold int

	grows   int64
	shrinks int64
}

// NewAutoscaler returns an autoscaler with the given tuning.
func NewAutoscaler(cfg AutoscaleConfig) *Autoscaler {
	return &Autoscaler{cfg: cfg.withDefaults()}
}

// Observe folds one observation in and returns the pool delta to
// apply: +1 grow, -1 shrink, 0 hold. Pressure (deep queue per bucket,
// or a tenant pushed to LadderHigh) grows after GrowAfter consecutive
// observations; idleness (empty queue, spare buckets, all ladders at
// full) shrinks after ShrinkAfter; anything else holds and clears both
// streaks.
func (a *Autoscaler) Observe(sig AutoscaleSignals) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	pressured := sig.QueueDepth > a.cfg.QueueHighPerBucket*sig.Active ||
		sig.MaxLevel >= a.cfg.LadderHigh
	idle := sig.QueueDepth == 0 && sig.FreeBuckets > 1 && sig.MaxLevel == LevelFull
	switch {
	case pressured && sig.Active < a.cfg.Max:
		a.cold = 0
		a.hot++
		if a.hot >= a.cfg.GrowAfter {
			a.hot = 0
			a.grows++
			return +1
		}
	case idle && sig.Active > a.cfg.Min:
		a.hot = 0
		a.cold++
		if a.cold >= a.cfg.ShrinkAfter {
			a.cold = 0
			a.shrinks++
			return -1
		}
	default:
		a.hot, a.cold = 0, 0
	}
	return 0
}

// Grows returns the total grow verdicts issued.
func (a *Autoscaler) Grows() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.grows
}

// Shrinks returns the total shrink verdicts issued.
func (a *Autoscaler) Shrinks() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shrinks
}
