package overload

import "testing"

func TestAutoscalerGrowsUnderPressure(t *testing.T) {
	a := NewAutoscaler(AutoscaleConfig{Min: 2, Max: 4, QueueHighPerBucket: 2, GrowAfter: 2, ShrinkAfter: 3})
	pressured := AutoscaleSignals{QueueDepth: 10, FreeBuckets: 0, Active: 2, MaxLevel: LevelFull}

	if d := a.Observe(pressured); d != 0 {
		t.Fatalf("first pressured observe = %+d, want 0 (hysteresis)", d)
	}
	if d := a.Observe(pressured); d != +1 {
		t.Fatalf("second pressured observe = %+d, want +1", d)
	}
	if a.Grows() != 1 {
		t.Fatalf("grows = %d, want 1", a.Grows())
	}

	// At Max the autoscaler holds even under pressure.
	atMax := pressured
	atMax.Active = 4
	for i := 0; i < 5; i++ {
		if d := a.Observe(atMax); d != 0 {
			t.Fatalf("observe at max = %+d, want 0", d)
		}
	}
}

func TestAutoscalerLadderSignalGrows(t *testing.T) {
	a := NewAutoscaler(AutoscaleConfig{Min: 1, Max: 3, GrowAfter: 1})
	// Queue shallow but a tenant is browned out past the ladder
	// watermark: grow anyway.
	sig := AutoscaleSignals{QueueDepth: 0, FreeBuckets: 0, Active: 1, MaxLevel: LevelShaped}
	if d := a.Observe(sig); d != +1 {
		t.Fatalf("ladder-pressured observe = %+d, want +1", d)
	}
}

func TestAutoscalerShrinksWhenIdle(t *testing.T) {
	a := NewAutoscaler(AutoscaleConfig{Min: 1, Max: 4, GrowAfter: 1, ShrinkAfter: 2})
	idle := AutoscaleSignals{QueueDepth: 0, FreeBuckets: 3, Active: 3, MaxLevel: LevelFull}

	if d := a.Observe(idle); d != 0 {
		t.Fatalf("first idle observe = %+d, want 0", d)
	}
	if d := a.Observe(idle); d != -1 {
		t.Fatalf("second idle observe = %+d, want -1", d)
	}
	if a.Shrinks() != 1 {
		t.Fatalf("shrinks = %d, want 1", a.Shrinks())
	}

	// At Min the autoscaler holds even when idle.
	atMin := idle
	atMin.Active = 1
	for i := 0; i < 5; i++ {
		if d := a.Observe(atMin); d != 0 {
			t.Fatalf("observe at min = %+d, want 0", d)
		}
	}
}

func TestAutoscalerMixedSignalsClearStreaks(t *testing.T) {
	a := NewAutoscaler(AutoscaleConfig{Min: 1, Max: 4, QueueHighPerBucket: 2, GrowAfter: 2, ShrinkAfter: 2})
	pressured := AutoscaleSignals{QueueDepth: 10, Active: 2}
	band := AutoscaleSignals{QueueDepth: 1, FreeBuckets: 0, Active: 2, MaxLevel: LevelFull}

	a.Observe(pressured) // hot = 1
	a.Observe(band)      // clears the streak
	if d := a.Observe(pressured); d != 0 {
		t.Fatalf("pressured after band = %+d, want 0 (streak cleared)", d)
	}
	if d := a.Observe(pressured); d != +1 {
		t.Fatalf("second consecutive pressured = %+d, want +1", d)
	}
}
