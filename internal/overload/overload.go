// Package overload is the control-plane policy layer of the pipeline's
// overload protection: it decides, per step and per analysis route,
// how much of the hybrid in-situ/in-transit path the simulation may
// use when the staging tier falls behind simulation cadence.
//
// Three cooperating pieces implement the graded flow control that
// production in-situ stacks (ElasticBroker, Catalyst-ADIOS2) converge
// on instead of an on/off fallback switch:
//
//   - Estimator: exponentially weighted moving averages of in-transit
//     task latency and task-queue depth — the pressure signals.
//   - Breaker: a per-analysis-route circuit breaker (closed → open on
//     consecutive failures or a latency-EWMA threshold → half-open
//     probe → closed), gating whether the route may touch the transit
//     tier at all.
//   - Ladder: the admission ladder, a hysteretic policy that maps the
//     pressure signals onto graded degradation levels — full hybrid,
//     shaped (reduced payload), in-situ fallback, shed — dropping fast
//     under pressure and climbing back one rung at a time as pressure
//     drains, so recovery never oscillates.
//
// The package is pure policy: it holds no channels, spawns no
// goroutines and touches no transport. core.Pipeline feeds it
// observations and obeys its verdicts; dataspaces.Credits supplies the
// credit-availability signal.
package overload

import (
	"fmt"
	"sync"
	"time"
)

// EWMA is an exponentially weighted moving average over float64
// samples. The zero value (alpha 0) adopts the first sample and then
// never moves; callers should construct it with a real alpha.
type EWMA struct {
	alpha float64
	v     float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1];
// larger alpha weights recent samples more.
func NewEWMA(alpha float64) EWMA { return EWMA{alpha: alpha} }

// Observe folds one sample into the average.
func (e *EWMA) Observe(x float64) {
	if !e.init {
		e.v, e.init = x, true
		return
	}
	e.v += e.alpha * (x - e.v)
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.v }

// Reset discards the accumulated average.
func (e *EWMA) Reset() { e.v, e.init = 0, false }

// Estimator tracks the two pressure signals the admission ladder
// consumes: the latency EWMA of completed in-transit tasks and the
// depth EWMA of the DataSpaces task queue. It is thread-safe: the
// drain goroutine observes latencies while rank 0 observes queue
// depths and reads both.
type Estimator struct {
	mu    sync.Mutex
	lat   EWMA // seconds
	queue EWMA // tasks
}

// NewEstimator returns an estimator with the given smoothing factors.
func NewEstimator(latAlpha, queueAlpha float64) *Estimator {
	return &Estimator{lat: NewEWMA(latAlpha), queue: NewEWMA(queueAlpha)}
}

// ObserveLatency folds one completed task's wall latency in.
func (e *Estimator) ObserveLatency(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lat.Observe(d.Seconds())
}

// ObserveQueue folds one task-queue depth sample in.
func (e *Estimator) ObserveQueue(depth float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queue.Observe(depth)
}

// Latency returns the task-latency EWMA.
func (e *Estimator) Latency() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.lat.Value() * float64(time.Second))
}

// Queue returns the queue-depth EWMA.
func (e *Estimator) Queue() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queue.Value()
}

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// Closed admits traffic; failures and latency are being watched.
	Closed BreakerState = iota
	// Open rejects traffic until the cooldown elapses.
	Open
	// HalfOpen admits exactly one probe to test whether the route
	// recovered.
	HalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// Verdict is the breaker's answer to an admission request.
type Verdict int

const (
	// Admit lets the route submit normally.
	Admit Verdict = iota
	// Probe asks the caller to run one cheap health probe and report
	// the outcome via RecordProbe.
	Probe
	// Reject refuses the transit path for this step.
	Reject
)

// BreakerConfig tunes one route's circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 3).
	FailureThreshold int
	// LatencyThreshold opens the breaker when the success-latency EWMA
	// exceeds it (0 disables latency tripping).
	LatencyThreshold time.Duration
	// LatencyAlpha is the smoothing factor of the success-latency EWMA
	// (default 0.5).
	LatencyAlpha float64
	// Cooldown is how long an open breaker waits before allowing a
	// half-open probe (default 50ms).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.LatencyAlpha <= 0 || c.LatencyAlpha > 1 {
		c.LatencyAlpha = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 50 * time.Millisecond
	}
	return c
}

// Breaker is a per-analysis-route circuit breaker. Task outcomes move
// it out of Closed; only probe outcomes (RecordProbe) move it out of
// Open/HalfOpen, so stale in-flight results cannot flip a recovering
// route behind the prober's back.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int
	lat      EWMA
	openedAt time.Time

	transitions int64
	opens       int64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, lat: NewEWMA(cfg.LatencyAlpha)}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Transitions returns the total number of state changes.
func (b *Breaker) Transitions() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.transitions
}

// Opens returns how many times the breaker tripped open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Latency returns the success-latency EWMA.
func (b *Breaker) Latency() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(b.lat.Value() * float64(time.Second))
}

func (b *Breaker) toLocked(s BreakerState, now time.Time) {
	if b.state == s {
		return
	}
	b.state = s
	b.transitions++
	switch s {
	case Open:
		b.opens++
		b.openedAt = now
	case Closed:
		b.fails = 0
		// A fresh start: the latency EWMA accumulated during the
		// brownout must not instantly re-trip the breaker.
		b.lat.Reset()
	}
}

// Allow answers an admission request at `now`: Admit while closed,
// Reject while open inside the cooldown, Probe once the cooldown has
// elapsed (transitioning to half-open) and on every half-open step
// until a probe outcome arrives.
func (b *Breaker) Allow(now time.Time) Verdict {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return Admit
	case Open:
		if now.Sub(b.openedAt) >= b.cfg.Cooldown {
			b.toLocked(HalfOpen, now)
			return Probe
		}
		return Reject
	default: // HalfOpen
		return Probe
	}
}

// RecordSuccess folds one completed task's latency in. It only acts in
// the Closed state: consecutive-failure tracking resets, and the
// latency EWMA may trip the breaker open when it crosses the
// threshold.
func (b *Breaker) RecordSuccess(now time.Time, latency time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Closed {
		return
	}
	b.fails = 0
	b.lat.Observe(latency.Seconds())
	if b.cfg.LatencyThreshold > 0 && b.lat.Value() > b.cfg.LatencyThreshold.Seconds() {
		b.toLocked(Open, now)
	}
}

// RecordFailure counts one failed task. It only acts in the Closed
// state, opening the breaker at the consecutive-failure threshold.
func (b *Breaker) RecordFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Closed {
		return
	}
	b.fails++
	if b.fails >= b.cfg.FailureThreshold {
		b.toLocked(Open, now)
	}
}

// RecordProbe reports a half-open probe's outcome: success closes the
// breaker, failure re-opens it and restarts the cooldown.
func (b *Breaker) RecordProbe(now time.Time, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != HalfOpen {
		return
	}
	if ok {
		b.toLocked(Closed, now)
	} else {
		b.toLocked(Open, now)
	}
}

// Level is one rung of the admission ladder, ordered from full service
// to full shedding.
type Level int

const (
	// LevelFull runs the normal hybrid path with the route's configured
	// codec.
	LevelFull Level = iota
	// LevelDelta runs the hybrid path with the full-resolution payload
	// delta-encoded against the previous timestep — exact results,
	// fewer bytes on the wire.
	LevelDelta
	// LevelQuantized runs the hybrid path with the payload's float tail
	// quantized under a bounded error — full resolution, bounded
	// precision loss, for analyses whose payload exposes a float tail.
	LevelQuantized
	// LevelShaped runs the hybrid path with a reduced intermediate
	// payload (coarser downsample) for analyses that support shaping.
	LevelShaped
	// LevelInSitu abandons the transit tier for the step and runs the
	// analysis's in-situ fallback on the simulation ranks.
	LevelInSitu
	// LevelShed skips the analysis entirely for the step, storing only
	// an explicit shed marker.
	LevelShed
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelFull:
		return "full"
	case LevelDelta:
		return "delta"
	case LevelQuantized:
		return "quantized"
	case LevelShaped:
		return "shaped"
	case LevelInSitu:
		return "in-situ"
	case LevelShed:
		return "shed"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Signals is one step's pressure snapshot for a route.
type Signals struct {
	// BreakerOpen reports the route's breaker is not closed.
	BreakerOpen bool
	// CreditsExhausted reports the route could not acquire a transit
	// credit right now.
	CreditsExhausted bool
	// QueueDepth is the task-queue depth EWMA.
	QueueDepth float64
	// Latency is the in-transit task latency EWMA.
	Latency time.Duration
}

// LadderConfig tunes the admission ladder's watermarks and hysteresis.
// The high watermarks trigger degradation, the low watermarks permit
// recovery; the band between them is the hysteresis dead zone where
// the ladder holds its level.
type LadderConfig struct {
	// QueueHigh/QueueLow are the queue-depth EWMA watermarks
	// (defaults 3 / 1).
	QueueHigh, QueueLow float64
	// LatencyHigh/LatencyLow are the latency EWMA watermarks
	// (0 disables latency as a ladder signal).
	LatencyHigh, LatencyLow time.Duration
	// DegradeAfter is the consecutive overloaded observations needed
	// to drop one rung (default 1: degrade immediately).
	DegradeAfter int
	// RecoverAfter is the consecutive healthy observations needed to
	// climb one rung (default 2: recover cautiously).
	RecoverAfter int
}

func (c LadderConfig) withDefaults() LadderConfig {
	if c.QueueHigh <= 0 {
		c.QueueHigh = 3
	}
	if c.QueueLow <= 0 || c.QueueLow > c.QueueHigh {
		c.QueueLow = 1
	}
	if c.LatencyLow <= 0 || c.LatencyLow > c.LatencyHigh {
		c.LatencyLow = c.LatencyHigh / 2
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 1
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 2
	}
	return c
}

// Ladder is one route's hysteretic admission policy.
type Ladder struct {
	cfg LadderConfig

	mu    sync.Mutex
	level Level
	bad   int
	good  int

	drops  int64
	climbs int64
}

// NewLadder returns a ladder at LevelFull.
func NewLadder(cfg LadderConfig) *Ladder {
	return &Ladder{cfg: cfg.withDefaults()}
}

// Level returns the current rung without advancing the hysteresis.
func (l *Ladder) Level() Level {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.level
}

// Drops and Climbs return the total rung transitions in each
// direction.
func (l *Ladder) Drops() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.drops
}

// Climbs returns the total upward rung transitions.
func (l *Ladder) Climbs() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.climbs
}

// Observe folds one step's signals into the hysteresis and returns the
// rung to use for the step. Overloaded observations push the ladder
// down one rung per DegradeAfter streak; fully healthy observations
// (all signals below the low watermarks) pull it up one rung per
// RecoverAfter streak; observations inside the hysteresis band hold
// the level and clear both streaks.
func (l *Ladder) Observe(sig Signals) Level {
	l.mu.Lock()
	defer l.mu.Unlock()
	overloaded := sig.BreakerOpen || sig.CreditsExhausted ||
		sig.QueueDepth > l.cfg.QueueHigh ||
		(l.cfg.LatencyHigh > 0 && sig.Latency > l.cfg.LatencyHigh)
	healthy := !sig.BreakerOpen && !sig.CreditsExhausted &&
		sig.QueueDepth <= l.cfg.QueueLow &&
		(l.cfg.LatencyHigh <= 0 || sig.Latency <= l.cfg.LatencyLow)
	switch {
	case overloaded:
		l.good = 0
		l.bad++
		if l.bad >= l.cfg.DegradeAfter {
			l.bad = 0
			if l.level < LevelShed {
				l.level++
				l.drops++
			}
		}
	case healthy:
		l.bad = 0
		l.good++
		if l.good >= l.cfg.RecoverAfter {
			l.good = 0
			if l.level > LevelFull {
				l.level--
				l.climbs++
			}
		}
	default:
		// Hysteresis band: hold.
		l.bad, l.good = 0, 0
	}
	return l.level
}

// Config bundles the overload-control plane's tuning for core.Pipeline.
type Config struct {
	// Breaker tunes every route's circuit breaker.
	Breaker BreakerConfig
	// Ladder tunes every route's admission ladder.
	Ladder LadderConfig
	// QueueBound bounds the DataSpaces task-queue depth: submissions
	// past it fail with ErrQueueFull and the step sheds (default 8).
	QueueBound int
	// Reserve is the per-hybrid-analysis credit reservation, so one
	// slow analysis cannot starve the others (default 1).
	Reserve int
	// Credits overrides the total credit supply; 0 means
	// buckets + QueueBound, the most work the transit tier can hold.
	Credits int
	// ProbeLatencyMax fails a half-open probe that answers slower than
	// this even when it succeeds, so a browned-out (slow but alive)
	// staging tier does not close the breaker (default 5ms).
	ProbeLatencyMax time.Duration
	// LatencyAlpha and QueueAlpha smooth the shared estimator
	// (defaults 0.5 / 0.5).
	LatencyAlpha, QueueAlpha float64
}

// DefaultConfig returns conservative overload-control tuning.
func DefaultConfig() Config {
	return Config{
		Breaker: BreakerConfig{
			FailureThreshold: 3,
			LatencyThreshold: 50 * time.Millisecond,
			Cooldown:         50 * time.Millisecond,
		},
		Ladder: LadderConfig{
			QueueHigh: 3, QueueLow: 1,
			LatencyHigh:  25 * time.Millisecond,
			LatencyLow:   10 * time.Millisecond,
			RecoverAfter: 2,
		},
		QueueBound:      8,
		Reserve:         1,
		ProbeLatencyMax: 5 * time.Millisecond,
	}
}

// WithDefaults fills zero fields with the defaults used by
// core.Pipeline.
func (c Config) WithDefaults() Config {
	if c.QueueBound <= 0 {
		c.QueueBound = 8
	}
	if c.Reserve <= 0 {
		c.Reserve = 1
	}
	if c.ProbeLatencyMax <= 0 {
		c.ProbeLatencyMax = 5 * time.Millisecond
	}
	if c.LatencyAlpha <= 0 || c.LatencyAlpha > 1 {
		c.LatencyAlpha = 0.5
	}
	if c.QueueAlpha <= 0 || c.QueueAlpha > 1 {
		c.QueueAlpha = 0.5
	}
	return c
}
