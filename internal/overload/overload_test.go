package overload

import (
	"testing"
	"time"
)

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatalf("empty EWMA = %v, want 0", e.Value())
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first sample must be adopted, got %v", e.Value())
	}
	e.Observe(0)
	if e.Value() != 5 {
		t.Fatalf("alpha 0.5 after 10,0 = %v, want 5", e.Value())
	}
	for i := 0; i < 50; i++ {
		e.Observe(42)
	}
	if v := e.Value(); v < 41.9 || v > 42.1 {
		t.Fatalf("EWMA did not converge: %v", v)
	}
	e.Reset()
	e.Observe(7)
	if e.Value() != 7 {
		t.Fatalf("reset EWMA must re-adopt first sample, got %v", e.Value())
	}
}

func TestBreakerConsecutiveFailuresOpen(t *testing.T) {
	now := time.Now()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute})
	if b.State() != Closed || b.Allow(now) != Admit {
		t.Fatal("new breaker must be closed and admitting")
	}
	b.RecordFailure(now)
	b.RecordSuccess(now, time.Millisecond) // success resets the streak
	b.RecordFailure(now)
	b.RecordFailure(now)
	if b.State() != Closed {
		t.Fatal("streak was reset; breaker must still be closed")
	}
	b.RecordFailure(now)
	if b.State() != Open {
		t.Fatalf("3 consecutive failures must open, state %v", b.State())
	}
	if b.Allow(now) != Reject {
		t.Fatal("open breaker inside cooldown must reject")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
}

func TestBreakerLatencyEWMATrips(t *testing.T) {
	now := time.Now()
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 100,
		LatencyThreshold: 10 * time.Millisecond,
		LatencyAlpha:     0.5,
	})
	b.RecordSuccess(now, 2*time.Millisecond)
	if b.State() != Closed {
		t.Fatal("fast successes must not trip the breaker")
	}
	for i := 0; i < 5 && b.State() == Closed; i++ {
		b.RecordSuccess(now, 80*time.Millisecond)
	}
	if b.State() != Open {
		t.Fatal("sustained slow successes must trip the latency EWMA open")
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	now := time.Now()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 10 * time.Millisecond})
	b.RecordFailure(now)
	if b.State() != Open {
		t.Fatal("threshold 1 must open on first failure")
	}
	if v := b.Allow(now.Add(time.Millisecond)); v != Reject {
		t.Fatalf("inside cooldown: %v, want Reject", v)
	}
	if v := b.Allow(now.Add(20 * time.Millisecond)); v != Probe {
		t.Fatalf("after cooldown: %v, want Probe", v)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state %v, want HalfOpen", b.State())
	}
	// Stale task outcomes must not move a half-open breaker.
	b.RecordFailure(now.Add(21 * time.Millisecond))
	b.RecordSuccess(now.Add(21*time.Millisecond), time.Millisecond)
	if b.State() != HalfOpen {
		t.Fatal("task outcomes moved a half-open breaker")
	}
	// A failed probe re-opens and restarts the cooldown.
	b.RecordProbe(now.Add(22*time.Millisecond), false)
	if b.State() != Open {
		t.Fatal("failed probe must re-open")
	}
	if v := b.Allow(now.Add(25 * time.Millisecond)); v != Reject {
		t.Fatalf("cooldown must restart after failed probe, got %v", v)
	}
	// A successful probe closes.
	if v := b.Allow(now.Add(40 * time.Millisecond)); v != Probe {
		t.Fatalf("want Probe after restarted cooldown, got %v", v)
	}
	b.RecordProbe(now.Add(41*time.Millisecond), true)
	if b.State() != Closed {
		t.Fatal("successful probe must close")
	}
	// closed->open->half-open->open->half-open->closed = 5 transitions.
	if b.Transitions() != 5 {
		t.Fatalf("transitions = %d, want 5", b.Transitions())
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
}

func TestLadderDegradesAndRecoversWithHysteresis(t *testing.T) {
	l := NewLadder(LadderConfig{
		QueueHigh: 4, QueueLow: 1,
		DegradeAfter: 1, RecoverAfter: 2,
	})
	if l.Level() != LevelFull {
		t.Fatal("ladder must start at full")
	}
	over := Signals{QueueDepth: 10}
	// One rung per overloaded observation: full -> delta -> quantized
	// -> shaped -> in-situ -> shed.
	walk := []Level{LevelDelta, LevelQuantized, LevelShaped, LevelInSitu, LevelShed}
	for i, want := range walk {
		if got := l.Observe(over); got != want {
			t.Fatalf("overload %d: %v, want %v", i+1, got, want)
		}
	}
	if got := l.Observe(over); got != LevelShed {
		t.Fatalf("ladder must saturate at shed, got %v", got)
	}
	// Inside the hysteresis band: hold level, clear streaks.
	mid := Signals{QueueDepth: 2}
	if got := l.Observe(mid); got != LevelShed {
		t.Fatalf("hysteresis band must hold, got %v", got)
	}
	// Recovery takes RecoverAfter healthy observations per rung.
	ok := Signals{QueueDepth: 0}
	if got := l.Observe(ok); got != LevelShed {
		t.Fatalf("one healthy step must not climb yet, got %v", got)
	}
	if got := l.Observe(ok); got != LevelInSitu {
		t.Fatalf("second healthy step must climb one rung, got %v", got)
	}
	// The band resets the good streak too.
	l.Observe(ok)
	if got := l.Observe(mid); got != LevelInSitu {
		t.Fatalf("band must hold during recovery, got %v", got)
	}
	l.Observe(ok)
	if got := l.Observe(ok); got != LevelShaped {
		t.Fatalf("recovery must resume rung by rung, got %v", got)
	}
	for _, want := range []Level{LevelQuantized, LevelDelta, LevelFull} {
		l.Observe(ok)
		if got := l.Observe(ok); got != want {
			t.Fatalf("recovery must pass through %v, got %v", want, got)
		}
	}
	if l.Drops() != 5 || l.Climbs() != 5 {
		t.Fatalf("drops=%d climbs=%d, want 5/5", l.Drops(), l.Climbs())
	}
}

func TestLadderBreakerAndCreditSignals(t *testing.T) {
	l := NewLadder(LadderConfig{QueueHigh: 100, QueueLow: 50, DegradeAfter: 1, RecoverAfter: 1})
	if got := l.Observe(Signals{BreakerOpen: true}); got != LevelDelta {
		t.Fatalf("breaker-open must degrade, got %v", got)
	}
	if got := l.Observe(Signals{CreditsExhausted: true}); got != LevelQuantized {
		t.Fatalf("credit exhaustion must degrade, got %v", got)
	}
	if got := l.Observe(Signals{QueueDepth: 10}); got != LevelDelta {
		t.Fatalf("healthy signals must recover, got %v", got)
	}
}

func TestEstimatorSignals(t *testing.T) {
	e := NewEstimator(0.5, 0.5)
	e.ObserveLatency(40 * time.Millisecond)
	e.ObserveLatency(40 * time.Millisecond)
	if lat := e.Latency(); lat < 35*time.Millisecond || lat > 45*time.Millisecond {
		t.Fatalf("latency EWMA = %v", lat)
	}
	e.ObserveQueue(6)
	if q := e.Queue(); q != 6 {
		t.Fatalf("queue EWMA = %v, want 6", q)
	}
	e.ObserveQueue(0)
	if q := e.Queue(); q != 3 {
		t.Fatalf("queue EWMA = %v, want 3", q)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.QueueBound != 8 || c.Reserve != 1 || c.ProbeLatencyMax <= 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	d := DefaultConfig()
	if d.Breaker.FailureThreshold != 3 || d.Ladder.QueueHigh != 3 {
		t.Fatalf("DefaultConfig unexpected: %+v", d)
	}
}
