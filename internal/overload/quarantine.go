package overload

import (
	"errors"
	"fmt"
	"sync"
)

// ErrQuarantined is the typed fail-fast returned (wrapped) when a
// (tenant, analysis) route is quarantined: the route has produced
// poison tasks — tasks that crash their bucket or dead-letter — often
// enough that admitting more of them would burn shared staging
// capacity (bucket respawns, retries, credits) for every tenant.
var ErrQuarantined = errors.New("overload: route quarantined")

// QState is a quarantined route's position, mirroring BreakerState but
// driven by *task disposition* (dead-letter / handler error) rather
// than transit health, and advanced by deterministic denial counting
// rather than wall-clock cooldowns so chaos gates replay exactly.
type QState int

const (
	// QClosed admits the route; strikes are being counted.
	QClosed QState = iota
	// QOpen rejects the route until enough denials have accumulated to
	// justify a probe.
	QOpen
	// QProbing admits exactly one probe task at a time; its disposition
	// decides between release (QClosed) and re-open (QOpen).
	QProbing
)

// String implements fmt.Stringer.
func (s QState) String() string {
	switch s {
	case QClosed:
		return "closed"
	case QOpen:
		return "open"
	case QProbing:
		return "probing"
	}
	return fmt.Sprintf("QState(%d)", int(s))
}

// QVerdict is the quarantine's answer to an admission request.
type QVerdict int

const (
	// QAdmit lets the route submit normally.
	QAdmit QVerdict = iota
	// QProbe asks the caller to submit one probe-marked task and report
	// its disposition via RecordProbe.
	QProbe
	// QReject refuses the route for this step.
	QReject
)

// String implements fmt.Stringer.
func (v QVerdict) String() string {
	switch v {
	case QAdmit:
		return "admit"
	case QProbe:
		return "probe"
	case QReject:
		return "reject"
	}
	return fmt.Sprintf("QVerdict(%d)", int(v))
}

// QuarantineConfig tunes the poison-route quarantine.
type QuarantineConfig struct {
	// Strikes is the consecutive poison-disposition count (dead-letter
	// or errored final result) that quarantines a route (default 3).
	Strikes int
	// ProbeAfter is how many admission denials an open route absorbs
	// before it is allowed one half-open probe (default 4). Denials are
	// the deterministic stand-in for a cooldown clock: one denial per
	// step the route would have submitted.
	ProbeAfter int
}

func (c QuarantineConfig) withDefaults() QuarantineConfig {
	if c.Strikes <= 0 {
		c.Strikes = 3
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = 4
	}
	return c
}

type qroute struct {
	state    QState
	strikes  int
	denials  int
	inflight bool // QProbing: one probe task outstanding
}

type qkey struct{ tenant, analysis string }

// Quarantine tracks poison (tenant, analysis) routes across a shared
// staging fabric. It is pure policy — no clock, no goroutines — and is
// safe for concurrent use by the admission pass and the drain
// goroutine.
type Quarantine struct {
	cfg QuarantineConfig

	mu     sync.Mutex
	routes map[qkey]*qroute

	opens    int64
	releases int64
}

// NewQuarantine returns an empty quarantine ledger.
func NewQuarantine(cfg QuarantineConfig) *Quarantine {
	return &Quarantine{cfg: cfg.withDefaults(), routes: make(map[qkey]*qroute)}
}

func (q *Quarantine) route(tenant, analysis string) *qroute {
	k := qkey{tenant, analysis}
	r := q.routes[k]
	if r == nil {
		r = &qroute{}
		q.routes[k] = r
	}
	return r
}

// Allow answers an admission request for the route. QClosed admits;
// QOpen counts the denial and, once ProbeAfter denials have
// accumulated, transitions to QProbing and returns QProbe; QProbing
// returns QProbe while no probe is outstanding and QReject otherwise.
func (q *Quarantine) Allow(tenant, analysis string) QVerdict {
	q.mu.Lock()
	defer q.mu.Unlock()
	r := q.route(tenant, analysis)
	switch r.state {
	case QClosed:
		return QAdmit
	case QOpen:
		r.denials++
		if r.denials >= q.cfg.ProbeAfter {
			r.state = QProbing
			r.denials = 0
			r.inflight = true
			return QProbe
		}
		return QReject
	default: // QProbing
		if r.inflight {
			return QReject
		}
		r.inflight = true
		return QProbe
	}
}

// Settle reports a normally admitted task's final disposition: ok
// resets the strike streak, a poison disposition (dead-letter or
// errored final result) counts a strike and quarantines the route at
// the threshold. It only acts in QClosed — stale results from before a
// quarantine opened must not disturb the probe protocol.
func (q *Quarantine) Settle(tenant, analysis string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	r := q.route(tenant, analysis)
	if r.state != QClosed {
		return
	}
	if ok {
		r.strikes = 0
		return
	}
	r.strikes++
	if r.strikes >= q.cfg.Strikes {
		r.state = QOpen
		r.strikes = 0
		r.denials = 0
		q.opens++
	}
}

// RecordProbe reports a probe task's disposition: success releases the
// route back to QClosed, failure re-opens it and restarts the denial
// count. It only acts in QProbing.
func (q *Quarantine) RecordProbe(tenant, analysis string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	r := q.route(tenant, analysis)
	if r.state != QProbing {
		return
	}
	r.inflight = false
	if ok {
		r.state = QClosed
		r.strikes = 0
		q.releases++
	} else {
		r.state = QOpen
		r.denials = 0
	}
}

// Barred reports whether the route is currently quarantined (open or
// probing) — the cheap check dataspaces' admission guard uses to
// fail-fast submissions that bypassed the admission pass.
func (q *Quarantine) Barred(tenant, analysis string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	r := q.routes[qkey{tenant, analysis}]
	return r != nil && r.state != QClosed
}

// State returns the route's current position.
func (q *Quarantine) State(tenant, analysis string) QState {
	q.mu.Lock()
	defer q.mu.Unlock()
	r := q.routes[qkey{tenant, analysis}]
	if r == nil {
		return QClosed
	}
	return r.state
}

// Opens returns how many times any route entered quarantine.
func (q *Quarantine) Opens() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.opens
}

// Releases returns how many times a probe released a route.
func (q *Quarantine) Releases() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.releases
}
