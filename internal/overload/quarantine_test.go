package overload

import (
	"sync"
	"testing"
)

func TestQuarantineStrikesOpenAndProbeRelease(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{Strikes: 3, ProbeAfter: 2})

	// Healthy route admits forever.
	for i := 0; i < 5; i++ {
		if v := q.Allow("a", "viz"); v != QAdmit {
			t.Fatalf("healthy allow %d = %v, want admit", i, v)
		}
		q.Settle("a", "viz", true)
	}

	// Two strikes then a success: streak resets, still closed.
	q.Settle("a", "viz", false)
	q.Settle("a", "viz", false)
	q.Settle("a", "viz", true)
	if st := q.State("a", "viz"); st != QClosed {
		t.Fatalf("state after reset = %v, want closed", st)
	}

	// Three consecutive strikes open the quarantine.
	for i := 0; i < 3; i++ {
		q.Settle("a", "viz", false)
	}
	if st := q.State("a", "viz"); st != QOpen {
		t.Fatalf("state after 3 strikes = %v, want open", st)
	}
	if q.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", q.Opens())
	}
	if !q.Barred("a", "viz") {
		t.Fatal("open route not barred")
	}

	// Denials accumulate: first rejected, second converts to a probe.
	if v := q.Allow("a", "viz"); v != QReject {
		t.Fatalf("first open allow = %v, want reject", v)
	}
	if v := q.Allow("a", "viz"); v != QProbe {
		t.Fatalf("second open allow = %v, want probe", v)
	}
	// Only one probe in flight at a time.
	if v := q.Allow("a", "viz"); v != QReject {
		t.Fatalf("allow during in-flight probe = %v, want reject", v)
	}

	// Failed probe re-opens; the denial clock restarts.
	q.RecordProbe("a", "viz", false)
	if st := q.State("a", "viz"); st != QOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	if v := q.Allow("a", "viz"); v != QReject {
		t.Fatalf("allow after failed probe = %v, want reject", v)
	}
	if v := q.Allow("a", "viz"); v != QProbe {
		t.Fatalf("second allow after failed probe = %v, want probe", v)
	}

	// Successful probe releases the route.
	q.RecordProbe("a", "viz", true)
	if st := q.State("a", "viz"); st != QClosed {
		t.Fatalf("state after good probe = %v, want closed", st)
	}
	if q.Releases() != 1 {
		t.Fatalf("releases = %d, want 1", q.Releases())
	}
	if v := q.Allow("a", "viz"); v != QAdmit {
		t.Fatalf("allow after release = %v, want admit", v)
	}
}

func TestQuarantineRoutesAreIndependent(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{Strikes: 2, ProbeAfter: 3})
	for i := 0; i < 2; i++ {
		q.Settle("noisy", "poison", false)
	}
	if st := q.State("noisy", "poison"); st != QOpen {
		t.Fatalf("poison route = %v, want open", st)
	}
	// Same analysis under a different tenant, and a different analysis
	// under the same tenant, both stay closed.
	if q.Barred("victim", "poison") || q.Barred("noisy", "viz") {
		t.Fatal("quarantine leaked across routes")
	}
	if v := q.Allow("victim", "poison"); v != QAdmit {
		t.Fatalf("victim allow = %v, want admit", v)
	}
}

func TestQuarantineStaleResultsIgnoredWhileOpen(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{Strikes: 1, ProbeAfter: 2})
	q.Settle("t", "a", false)
	if st := q.State("t", "a"); st != QOpen {
		t.Fatalf("state = %v, want open", st)
	}
	// In-flight results from before the open must not move the state.
	q.Settle("t", "a", true)
	q.Settle("t", "a", false)
	if st := q.State("t", "a"); st != QOpen {
		t.Fatalf("state after stale settles = %v, want open", st)
	}
	// A probe outcome reported while not probing is ignored too.
	q.RecordProbe("t", "a", true)
	if st := q.State("t", "a"); st != QOpen {
		t.Fatalf("state after stray probe record = %v, want open", st)
	}
}

func TestQuarantineConcurrentAccess(t *testing.T) {
	q := NewQuarantine(QuarantineConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := []string{"a", "b"}[g%2]
			for i := 0; i < 200; i++ {
				switch q.Allow(tenant, "viz") {
				case QAdmit:
					q.Settle(tenant, "viz", i%7 != 0)
				case QProbe:
					q.RecordProbe(tenant, "viz", i%2 == 0)
				}
			}
		}(g)
	}
	wg.Wait()
}
