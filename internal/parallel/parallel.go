// Package parallel provides the bounded worker pool shared by the
// in-situ analysis kernels (ray casting, local merge-tree sweeps,
// statistics accumulation) and the data-movement helpers. The paper's
// premise is that the in-situ stage must cost a vanishing fraction of
// a simulation step; on a multi-core node that requires every kernel
// to exploit all cores, not one goroutine per rank.
//
// The pool is deliberately minimal: a fixed width (defaulting to
// GOMAXPROCS) and deterministic, contiguous index partitions. Work is
// split by *position*, never by arrival order, so a kernel's output is
// a pure function of its input and the partition — the property the
// compositing and reduction layers rely on for reproducibility.
package parallel

import (
	"runtime"
	"sync"
)

// Pool is a bounded fork-join executor of fixed width. The zero value
// is not usable; use New. Pools are stateless between calls and safe
// for concurrent use from multiple goroutines (each call runs its own
// fork-join).
type Pool struct {
	workers int
}

// New returns a pool of the given width. Width < 1 selects
// GOMAXPROCS, the number of OS threads Go will actually schedule.
func New(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Default is the shared pool sized to GOMAXPROCS at package
// initialization. Kernels that take no explicit pool use it.
var Default = New(0)

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Blocks returns the number of contiguous blocks ForBlocks will split
// n items into: min(workers, n), and 0 for n <= 0.
func (p *Pool) Blocks(n int) int {
	if n <= 0 {
		return 0
	}
	if n < p.workers {
		return n
	}
	return p.workers
}

// ForBlocks partitions [0, n) into Blocks(n) contiguous ranges of
// near-equal length and calls fn(b, lo, hi) for each, concurrently
// when the pool is wider than one. Block b always covers the same
// [lo, hi) for a given (n, width): the partition is deterministic, so
// callers can reduce per-block results in block order and obtain a
// machine-schedule-independent answer. The calling goroutine executes
// block 0 itself; at most Blocks(n)-1 goroutines are spawned.
func (p *Pool) ForBlocks(n int, fn func(b, lo, hi int)) {
	nb := p.Blocks(n)
	if nb == 0 {
		return
	}
	if nb == 1 {
		fn(0, 0, n)
		return
	}
	// Contiguous split: the first n%nb blocks get one extra item.
	q, r := n/nb, n%nb
	bounds := func(b int) (lo, hi int) {
		lo = b*q + min(b, r)
		hi = lo + q
		if b < r {
			hi++
		}
		return
	}
	var wg sync.WaitGroup
	for b := 1; b < nb; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			lo, hi := bounds(b)
			fn(b, lo, hi)
		}(b)
	}
	lo, hi := bounds(0)
	fn(0, lo, hi)
	wg.Wait()
}

// For calls fn(i) for every i in [0, n), partitioned across the pool
// as in ForBlocks. Iterations must be independent.
func (p *Pool) For(n int, fn func(i int)) {
	p.ForBlocks(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunks splits [0, n) into fixed-width chunks of the given size
// and calls fn(c, lo, hi) for each, running at most Workers() chunks
// concurrently. Unlike ForBlocks, the partition depends only on
// (n, chunk) — not on the pool width — so per-chunk partial results
// combined in chunk order are bitwise reproducible across machines
// with different core counts. This is the shape the statistics
// kernels use: the paper's in-situ reduction (per-chunk partial
// models, ordered pairwise Combine) made width-independent.
func (p *Pool) ForChunks(n, chunk int, fn func(c, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = n
	}
	nc := (n + chunk - 1) / chunk
	if nc == 1 || p.workers == 1 {
		for c := 0; c < nc; c++ {
			lo := c * chunk
			hi := min(lo+chunk, n)
			fn(c, lo, hi)
		}
		return
	}
	// Workers pull chunk indices from a shared counter; assignment of
	// chunk to worker is racy but the chunk boundaries are not.
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		c := int(next)
		next++
		mu.Unlock()
		return c
	}
	nw := p.workers
	if nw > nc {
		nw = nc
	}
	var wg sync.WaitGroup
	work := func() {
		for {
			c := take()
			if c >= nc {
				return
			}
			lo := c * chunk
			hi := min(lo+chunk, n)
			fn(c, lo, hi)
		}
	}
	for w := 1; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// ForBlocks runs Default.ForBlocks.
func ForBlocks(n int, fn func(b, lo, hi int)) { Default.ForBlocks(n, fn) }

// For runs Default.For.
func For(n int, fn func(i int)) { Default.For(n, fn) }

// ForChunks runs Default.ForChunks.
func ForChunks(n, chunk int, fn func(c, lo, hi int)) { Default.ForChunks(n, chunk, fn) }
