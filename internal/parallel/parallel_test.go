package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("pool width must be >= 1")
	}
	if got := New(3).Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
}

func TestForBlocksCoversExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 5, 100, 101} {
			seen := make([]int32, n)
			var calls int32
			p.ForBlocks(n, func(b, lo, hi int) {
				atomic.AddInt32(&calls, 1)
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
			if want := int32(p.Blocks(n)); calls != want {
				t.Fatalf("workers=%d n=%d: %d blocks, want %d", workers, n, calls, want)
			}
		}
	}
}

func TestForBlocksPartitionDeterministic(t *testing.T) {
	p := New(4)
	record := func() map[int][2]int {
		var mu sync.Mutex
		out := make(map[int][2]int)
		p.ForBlocks(103, func(b, lo, hi int) {
			mu.Lock()
			out[b] = [2]int{lo, hi}
			mu.Unlock()
		})
		return out
	}
	a, b := record(), record()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("block %d bounds changed between runs: %v vs %v", k, v, b[k])
		}
	}
}

func TestForVisitsAll(t *testing.T) {
	p := New(5)
	const n = 1000
	var sum int64
	p.For(n, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if want := int64(n * (n - 1) / 2); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestForChunksWidthIndependentPartition(t *testing.T) {
	const n, chunk = 1000, 64
	collect := func(workers int) map[int][2]int {
		var mu sync.Mutex
		out := make(map[int][2]int)
		New(workers).ForChunks(n, chunk, func(c, lo, hi int) {
			mu.Lock()
			out[c] = [2]int{lo, hi}
			mu.Unlock()
		})
		return out
	}
	one, eight := collect(1), collect(8)
	if len(one) != len(eight) {
		t.Fatalf("chunk count differs by width: %d vs %d", len(one), len(eight))
	}
	for c, v := range one {
		if eight[c] != v {
			t.Fatalf("chunk %d bounds differ by width: %v vs %v", c, v, eight[c])
		}
	}
	// Chunks tile [0, n).
	covered := 0
	for _, v := range one {
		covered += v[1] - v[0]
	}
	if covered != n {
		t.Fatalf("chunks cover %d of %d items", covered, n)
	}
}

func TestForChunksZeroAndDegenerate(t *testing.T) {
	called := false
	New(2).ForChunks(0, 16, func(c, lo, hi int) { called = true })
	if called {
		t.Fatal("ForChunks(0) must not call fn")
	}
	var calls int32
	New(2).ForChunks(10, 0, func(c, lo, hi int) {
		atomic.AddInt32(&calls, 1)
		if lo != 0 || hi != 10 {
			t.Fatalf("degenerate chunk size: got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("chunk<1 should mean one chunk, got %d", calls)
	}
}
