// Package recovery implements the durable run-recovery substrate: a
// CRC-framed write-ahead step journal plus a checkpoint manifest, both
// written with atomic temp-file+rename so a crash at any instant
// leaves either the old durable state or the new one, never a torn
// file. The journal records the step commit protocol — step admitted →
// tasks submitted → checkpoint bound → step committed — and a resumed
// pipeline replays it to find the last committed step, the checkpoint
// files that cover it, and the codec base-state epoch to re-seed.
//
// The package also hosts the crash-injection plumbing the crash-matrix
// soak drives: a KillFunc evaluated at every journal phase boundary
// and a Kill switch that freezes all durable writes, simulating the
// process dying at exactly that boundary. Everything here is
// standard-library only, so the checkpoint writer (internal/bp) and
// the pipeline (internal/core) can both build on it without cycles.
package recovery

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Phase names a journal phase boundary — the instants the crash matrix
// kills the pipeline at.
type Phase int

const (
	// PhasePreAdmit fires before the step's admit record is written:
	// the step leaves no durable trace at all.
	PhasePreAdmit Phase = iota
	// PhaseMidSubmit fires after the step's first submit record: the
	// journal shows a partially submitted step with no commit.
	PhaseMidSubmit
	// PhaseMidCheckpoint fires after the checkpoint files are written
	// but before the journal's ckpt record binds them: the files exist
	// on disk but are not trusted by resume.
	PhaseMidCheckpoint
	// PhasePostCommit fires immediately after a commit record lands:
	// the cleanest possible crash, everything up to the step durable.
	PhasePostCommit
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhasePreAdmit:
		return "pre-admit"
	case PhaseMidSubmit:
		return "mid-submit"
	case PhaseMidCheckpoint:
		return "mid-checkpoint"
	case PhasePostCommit:
		return "post-commit"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// ErrKilled is the outcome of a run aborted by an injected crash: the
// journal froze at a phase boundary and every rank stopped at the next
// step boundary.
var ErrKilled = errors.New("recovery: run killed at journal phase boundary")

// KillFunc decides, at each phase boundary of each step, whether the
// injected crash fires. Implementations must be safe for concurrent
// use: the post-commit boundary is evaluated on the drain goroutine.
type KillFunc func(phase Phase, step int) bool

// KillAt returns a KillFunc that fires exactly once, at the first
// evaluation of the given phase boundary with step >= the given step
// (a phase may not occur at the exact step, e.g. a checkpoint cadence
// skipping it).
func KillAt(phase Phase, step int) KillFunc {
	var fired atomic.Bool
	return func(p Phase, s int) bool {
		if p != phase || s < step {
			return false
		}
		return fired.CompareAndSwap(false, true)
	}
}

// Record kinds, in protocol order.
const (
	KindAdmit      = "admit"  // step entered the pipeline
	KindSubmit     = "submit" // one in-transit task submitted for the step
	KindCheckpoint = "ckpt"   // checkpoint files written and bound
	KindCommit     = "commit" // step's results all settled durably
)

// Record is one journal entry. Only the fields relevant to a kind are
// populated.
type Record struct {
	Kind string `json:"kind"`
	Step int    `json:"step"`
	// Analysis names the submitted route (KindSubmit).
	Analysis string `json:"analysis,omitempty"`
	// Files lists the per-rank checkpoint file names, relative to the
	// journal directory (KindCheckpoint).
	Files []string `json:"files,omitempty"`
	// Epoch is the codec base-state epoch the checkpoint corresponds
	// to: the version the delta base stores must be re-seeded at
	// (KindCheckpoint; equals Step for per-step payload streams).
	Epoch int `json:"epoch,omitempty"`
	// CkptStep is the latest checkpointed step at commit time
	// (KindCommit).
	CkptStep int `json:"ckpt_step,omitempty"`
	// Digests maps analysis name to the hex digest of its stored
	// result for the step (KindCommit), so two journals' views of a
	// step can be compared without the results themselves.
	Digests map[string]string `json:"digests,omitempty"`
}

// Manifest is the latest checkpoint binding, mirrored to
// MANIFEST.json in the journal directory whenever a ckpt record
// lands — a single-file summary external tools can read without
// parsing the journal.
type Manifest struct {
	Step  int      `json:"step"`
	Epoch int      `json:"epoch"`
	Files []string `json:"files"`
}

const (
	journalFile  = "journal.wal"
	manifestFile = "MANIFEST.json"
)

// CheckpointFile returns the canonical per-rank checkpoint file name
// for a step, relative to the journal directory.
func CheckpointFile(step, rank int) string {
	return fmt.Sprintf("ckpt-%05d-r%03d.bp", step, rank)
}

// Journal is the durable write-ahead step journal. Appends rewrite the
// whole journal to a temp file and rename it into place — the journal
// is a few small records per step, so atomicity is bought with a
// rewrite rather than append-ordering subtleties. Each record is
// framed [length | crc32 | payload] so disk corruption is detected on
// open; a torn or corrupt tail is tolerated by stopping at the first
// bad frame.
type Journal struct {
	dir string

	mu      sync.Mutex
	records []Record
	dead    bool

	fsyncs  atomic.Int64
	appends atomic.Int64
}

// Open creates the journal directory if needed and loads any existing
// journal, tolerating a torn tail.
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: open journal dir: %w", err)
	}
	j := &Journal{dir: dir}
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return j, nil
		}
		return nil, fmt.Errorf("recovery: read journal: %w", err)
	}
	j.records = decodeRecords(data)
	return j, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Records returns a copy of the journal's records in append order.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.records...)
}

// Kill freezes the journal: every subsequent durable write becomes a
// no-op returning ErrKilled, simulating the process dying at this
// instant. State already on disk stays exactly as it is.
func (j *Journal) Kill() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.dead = true
}

// Killed reports whether Kill has been called.
func (j *Journal) Killed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dead
}

// Fsyncs returns the number of fsync calls the journal has issued
// (file + directory syncs of its atomic writes).
func (j *Journal) Fsyncs() int64 { return j.fsyncs.Load() }

// Appends returns the number of records durably appended.
func (j *Journal) Appends() int64 { return j.appends.Load() }

// Append durably appends one record: the journal (plus the new
// record) is rewritten to a temp file, fsynced, and renamed into
// place. A ckpt record additionally refreshes MANIFEST.json. Returns
// ErrKilled without touching disk after Kill.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return ErrKilled
	}
	next := append(append([]Record(nil), j.records...), rec)
	data, err := encodeRecords(next)
	if err != nil {
		return err
	}
	if err := WriteFileAtomic(filepath.Join(j.dir, journalFile), data, 0o644); err != nil {
		return fmt.Errorf("recovery: append journal: %w", err)
	}
	j.fsyncs.Add(2) // WriteFileAtomic syncs the file and its directory
	if rec.Kind == KindCheckpoint {
		m, err := json.MarshalIndent(Manifest{Step: rec.Step, Epoch: rec.Epoch, Files: rec.Files}, "", "  ")
		if err == nil {
			m = append(m, '\n')
			if err := WriteFileAtomic(filepath.Join(j.dir, manifestFile), m, 0o644); err != nil {
				return fmt.Errorf("recovery: write manifest: %w", err)
			}
			j.fsyncs.Add(2)
		}
	}
	j.records = next
	j.appends.Add(1)
	return nil
}

// ReadManifest loads the latest checkpoint manifest from a journal
// directory.
func ReadManifest(dir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("recovery: parse manifest: %w", err)
	}
	return m, nil
}

// encodeRecords frames records as [uint32 length | uint32 crc32(IEEE)
// of payload | JSON payload]*.
func encodeRecords(recs []Record) ([]byte, error) {
	var out []byte
	var hdr [8]byte
	for _, r := range recs {
		payload, err := json.Marshal(r)
		if err != nil {
			return nil, fmt.Errorf("recovery: encode record: %w", err)
		}
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		out = append(out, hdr[:]...)
		out = append(out, payload...)
	}
	return out, nil
}

// decodeRecords parses framed records, stopping silently at the first
// truncated or CRC-failing frame: everything before a torn tail is
// trusted, nothing after it.
func decodeRecords(data []byte) []Record {
	var out []Record
	for len(data) >= 8 {
		n := int(binary.LittleEndian.Uint32(data[0:4]))
		sum := binary.LittleEndian.Uint32(data[4:8])
		if n < 0 || len(data)-8 < n {
			break
		}
		payload := data[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			break
		}
		out = append(out, r)
		data = data[8+n:]
	}
	return out
}

// State is the resume-relevant summary of a journal.
type State struct {
	// LastCommit is the highest step up to which every step 1..s has a
	// commit record (0 when nothing committed). Resume restarts the
	// live run at LastCommit+1.
	LastCommit int
	// Commits maps committed step -> its commit record.
	Commits map[int]Record
	// Checkpoints lists ckpt records in append order.
	Checkpoints []Record
	// Submitted maps step -> set of analyses with submit records —
	// work a dead process had in flight, which a resumed run counts as
	// replayed when it re-submits.
	Submitted map[int]map[string]bool
}

// Analyze folds a journal's records into a State.
func Analyze(records []Record) State {
	st := State{
		Commits:   make(map[int]Record),
		Submitted: make(map[int]map[string]bool),
	}
	for _, r := range records {
		switch r.Kind {
		case KindCommit:
			st.Commits[r.Step] = r
		case KindCheckpoint:
			st.Checkpoints = append(st.Checkpoints, r)
		case KindSubmit:
			m := st.Submitted[r.Step]
			if m == nil {
				m = make(map[string]bool)
				st.Submitted[r.Step] = m
			}
			m[r.Analysis] = true
		}
	}
	for s := 1; ; s++ {
		if _, ok := st.Commits[s]; !ok {
			break
		}
		st.LastCommit = s
	}
	return st
}

// CheckpointsFor returns the ckpt records usable to resume at
// LastCommit = step: those with Step <= step, newest first.
func (st State) CheckpointsFor(step int) []Record {
	var out []Record
	for _, r := range st.Checkpoints {
		if r.Step <= step {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, k int) bool { return out[i].Step > out[k].Step })
	return out
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory, fsyncs it, renames it into place, and fsyncs the
// directory — a crash at any instant leaves either the previous file
// or the complete new one, never a truncated mix. It is the shared
// crash-safe writer for the journal, the bp checkpoint files, and the
// artifact exporters.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(e error) error {
		tmp.Close()
		os.Remove(tmpName)
		return e
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
