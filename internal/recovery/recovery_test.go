package recovery

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindAdmit, Step: 1},
		{Kind: KindSubmit, Step: 1, Analysis: "hybrid visualization"},
		{Kind: KindCheckpoint, Step: 1, Epoch: 1, Files: []string{"ckpt-00001-r000.bp"}},
		{Kind: KindCommit, Step: 1, CkptStep: 1, Digests: map[string]string{"hybrid visualization": "aa"}},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if j.Appends() != int64(len(recs)) {
		t.Fatalf("appends = %d, want %d", j.Appends(), len(recs))
	}
	if j.Fsyncs() == 0 {
		t.Fatal("no fsyncs counted")
	}

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := j2.Records()
	if len(got) != len(recs) {
		t.Fatalf("reopened %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		if got[i].Kind != r.Kind || got[i].Step != r.Step || got[i].Analysis != r.Analysis {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], r)
		}
	}
	if got[3].Digests["hybrid visualization"] != "aa" {
		t.Fatalf("commit digests lost: %+v", got[3])
	}

	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Step != 1 || len(m.Files) != 1 {
		t.Fatalf("manifest = %+v", m)
	}
}

func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 3; s++ {
		if err := j.Append(Record{Kind: KindAdmit, Step: s}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "journal.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A truncated tail loses only the last record.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(j2.Records()); n != 2 {
		t.Fatalf("truncated journal yielded %d records, want 2", n)
	}

	// A bit flip in the middle stops parsing at the corrupt frame.
	bad := append([]byte(nil), data...)
	bad[12] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	j3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(j3.Records()); n != 0 {
		t.Fatalf("corrupt first frame yielded %d records, want 0", n)
	}
}

func TestJournalKill(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: KindAdmit, Step: 1}); err != nil {
		t.Fatal(err)
	}
	j.Kill()
	if !j.Killed() {
		t.Fatal("Killed() = false after Kill")
	}
	if err := j.Append(Record{Kind: KindAdmit, Step: 2}); !errors.Is(err, ErrKilled) {
		t.Fatalf("append after kill: err = %v, want ErrKilled", err)
	}
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(j2.Records()); n != 1 {
		t.Fatalf("killed journal has %d durable records, want 1", n)
	}
}

func TestAnalyze(t *testing.T) {
	recs := []Record{
		{Kind: KindAdmit, Step: 1},
		{Kind: KindCommit, Step: 1},
		{Kind: KindCheckpoint, Step: 2, Epoch: 2, Files: []string{"a"}},
		{Kind: KindCommit, Step: 2},
		{Kind: KindAdmit, Step: 3},
		{Kind: KindSubmit, Step: 3, Analysis: "stats"},
		{Kind: KindCheckpoint, Step: 4, Epoch: 4, Files: []string{"b"}},
		// Step 4 committed but 3 is not: LastCommit must stop at 2.
		{Kind: KindCommit, Step: 4},
	}
	st := Analyze(recs)
	if st.LastCommit != 2 {
		t.Fatalf("LastCommit = %d, want 2", st.LastCommit)
	}
	if !st.Submitted[3]["stats"] {
		t.Fatalf("submit record lost: %+v", st.Submitted)
	}
	cks := st.CheckpointsFor(2)
	if len(cks) != 1 || cks[0].Step != 2 {
		t.Fatalf("CheckpointsFor(2) = %+v", cks)
	}
}

func TestKillAt(t *testing.T) {
	k := KillAt(PhaseMidSubmit, 3)
	if k(PhaseMidSubmit, 2) || k(PhasePreAdmit, 3) {
		t.Fatal("fired early")
	}
	if !k(PhaseMidSubmit, 3) {
		t.Fatal("did not fire at target")
	}
	if k(PhaseMidSubmit, 3) || k(PhaseMidSubmit, 4) {
		t.Fatal("fired twice")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2-longer"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2-longer" {
		t.Fatalf("content = %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file litter: %s", e.Name())
		}
	}
}
