package registry

import (
	"fmt"
	"time"

	"insitu/internal/codec"
	"insitu/internal/core"
	"insitu/internal/faults"
	"insitu/internal/grid"
	"insitu/internal/imagestore"
	"insitu/internal/overload"
	"insitu/internal/sim"
)

// Built is one constructed, ready-to-Run pipeline topology. Exactly
// one of Pipeline and Scheduler is non-nil: single-tenant configs
// build a core.Pipeline, multi-tenant configs a core.Scheduler. The
// caller owns the lifecycle — Run once, then Close.
type Built struct {
	// Config is the validated config this topology was built from.
	Config *Config
	// Pipeline is the single-tenant pipeline (nil for multi-tenant).
	Pipeline *core.Pipeline
	// Scheduler is the multi-tenant scheduler (nil for single-tenant).
	Scheduler *core.Scheduler
	// Store is the opened image store, when the config declared one.
	Store *imagestore.Store
	// Tenants holds each tenant's pipeline and constructed analyses,
	// in config order.
	Tenants []BuiltTenant
}

// BuiltTenant is one tenant's constructed slice of a Built topology.
type BuiltTenant struct {
	// Name is the tenant name ("" for unnamed single-tenant configs).
	Name string
	// Pipeline is the tenant's pipeline (for single-tenant configs,
	// identical to Built.Pipeline).
	Pipeline *core.Pipeline
	// Analyses are the registered analyses, in config order.
	Analyses []core.Analysis
	// Routes names the hybrid routes among Analyses — the analyses
	// whose payloads cross the transit fabric.
	Routes []string
}

// Close releases the topology's resources (the image store; pipelines
// and schedulers release theirs when Run returns).
func (b *Built) Close() error {
	if b.Store != nil {
		return b.Store.Close()
	}
	return nil
}

// Steps resolves the run length: the explicit argument when > 0, else
// the config's steps, else def.
func (b *Built) Steps(explicit, def int) int {
	if explicit > 0 {
		return explicit
	}
	if b.Config.Steps > 0 {
		return b.Config.Steps
	}
	return def
}

// Build validates cfg and constructs the declared topology, routing
// every analysis through the registry. It is the single construction
// path for config-declared runs — the legacy flag path and the
// -config path both end here, which is what makes them byte-identical.
func Build(cfg *Config) (*Built, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Tenants) == 1 {
		return buildSingle(cfg)
	}
	return buildMulti(cfg)
}

// buildSingle constructs a single-tenant core.Pipeline.
func buildSingle(cfg *Config) (*Built, error) {
	t := &cfg.Tenants[0]
	analyses, routes, codecs, err := buildAnalyses(t)
	if err != nil {
		return nil, err
	}

	ccfg := core.Config{
		Sim:             simConfig(t.Sim),
		DSServers:       defaultInt(cfg.Fabric.DSServers, 2),
		Buckets:         maxInt(1, cfg.TransitBuckets()),
		Net:             netConfig(cfg.Fabric.Net),
		StepBudget:      time.Duration(t.StepBudgetMS) * time.Millisecond,
		MaxTaskAttempts: cfg.Fabric.MaxTaskAttempts,
		Overload:        overloadConfig(t.Overload),
		Codecs:          codecs,
	}
	if cfg.Recovery != nil {
		ccfg.Recovery = &core.RecoveryConfig{Dir: cfg.Recovery.Dir, Every: cfg.Recovery.EverySteps}
	}
	var store *imagestore.Store
	if cfg.Store != nil {
		store, err = imagestore.Open(cfg.Store.Dir)
		if err != nil {
			return nil, err
		}
		ccfg.Store = store
	}

	p, err := core.NewPipeline(ccfg)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	for _, a := range analyses {
		p.Register(a)
	}
	installFaults(cfg, p.Network().SetFaults, nil)

	return &Built{
		Config:   cfg,
		Pipeline: p,
		Store:    store,
		Tenants: []BuiltTenant{{
			Name: t.Name, Pipeline: p, Analyses: analyses, Routes: routes,
		}},
	}, nil
}

// buildMulti constructs a multi-tenant core.Scheduler with one
// AddTenant per config tenant, in order.
func buildMulti(cfg *Config) (*Built, error) {
	scfg := core.SchedulerConfig{
		DSServers:       defaultInt(cfg.Fabric.DSServers, 2),
		Buckets:         maxInt(1, cfg.TransitBuckets()),
		MaxBuckets:      cfg.Fabric.MaxBuckets,
		Net:             netConfig(cfg.Fabric.Net),
		Credits:         cfg.Fabric.Credits,
		TenantReserve:   cfg.Fabric.TenantReserve,
		QueueBound:      cfg.Fabric.QueueBound,
		MaxTaskAttempts: cfg.Fabric.MaxTaskAttempts,
	}
	if a := cfg.Fabric.Autoscale; a != nil {
		scfg.Autoscale = &overload.AutoscaleConfig{
			Min: a.Min, Max: a.Max,
			QueueHighPerBucket: a.QueueHighPerBucket,
			GrowAfter:          a.GrowAfter,
			ShrinkAfter:        a.ShrinkAfter,
		}
	}
	if q := cfg.Fabric.Quarantine; q != nil {
		scfg.Quarantine = overload.QuarantineConfig{Strikes: q.Strikes, ProbeAfter: q.ProbeAfter}
	}
	s, err := core.NewScheduler(scfg)
	if err != nil {
		return nil, err
	}

	built := &Built{Config: cfg, Scheduler: s}
	for ti := range cfg.Tenants {
		t := &cfg.Tenants[ti]
		analyses, routes, codecs, err := buildAnalyses(t)
		if err != nil {
			return nil, err
		}
		p, err := s.AddTenant(t.Name, core.TenantConfig{
			Sim:        simConfig(t.Sim),
			Overload:   overloadConfig(t.Overload),
			Codecs:     codecs,
			StepBudget: time.Duration(t.StepBudgetMS) * time.Millisecond,
			Weight:     t.Weight,
		})
		if err != nil {
			return nil, err
		}
		for _, a := range analyses {
			p.Register(a)
		}
		built.Tenants = append(built.Tenants, BuiltTenant{
			Name: t.Name, Pipeline: p, Analyses: analyses, Routes: routes,
		})
	}

	installFaults(cfg, s.Network().SetFaults, func(tenant string) []int {
		var ids []int
		for _, ep := range s.TenantEndpoints(tenant) {
			ids = append(ids, ep.ID())
		}
		return ids
	})
	return built, nil
}

// buildAnalyses constructs one tenant's analyses in config order and
// derives the hybrid route list and the per-route codec map.
func buildAnalyses(t *TenantConfig) ([]core.Analysis, []string, map[string]codec.Spec, error) {
	var (
		analyses []core.Analysis
		routes   []string
		codecs   map[string]codec.Spec
	)
	setCodec := func(route string, cc *CodecConfig) {
		if codecs == nil {
			codecs = make(map[string]codec.Spec)
		}
		codecs[route] = codecSpec(cc)
	}
	if t.Codec != nil {
		setCodec("*", t.Codec)
	}
	for ai := range t.Analyses {
		ac := &t.Analyses[ai]
		p := ac.Params
		if p.Placement == "" {
			p.Placement = t.Placement
		}
		if p.Placement == "" {
			p.Placement = DefaultPlacement(ac.Analysis)
		}
		a, err := New(ac.Analysis, p)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("analysis %q: %w", ac.Analysis, err)
		}
		analyses = append(analyses, a)
		if isHybridRoute(a) {
			routes = append(routes, a.Name())
		}
		if ac.Codec != nil {
			setCodec(a.Name(), ac.Codec)
		}
	}
	return analyses, routes, codecs, nil
}

// isHybridRoute reports whether the analysis stages payloads across
// the transit fabric (it carries an in-situ stage feeding an
// in-transit consumer).
func isHybridRoute(a core.Analysis) bool {
	_, ok := a.(interface {
		InSituStage(ctx *core.Ctx) ([]byte, error)
	})
	return ok
}

// installFaults converts the config's fault schedule and installs it
// on the modeled network. resolve maps a tenant name to its endpoint
// IDs (nil for single-tenant configs, whose windows are unscoped).
func installFaults(cfg *Config, set func(*faults.Injector), resolve func(string) []int) {
	if cfg.Faults == nil {
		return
	}
	fc := faults.Config{Seed: cfg.Faults.Seed}
	for _, s := range cfg.Faults.Slowdowns {
		w := faults.SlowdownWindow{From: s.From, Until: s.Until, Factor: s.Factor}
		if s.Tenant != "" && resolve != nil {
			w.Endpoints = resolve(s.Tenant)
		}
		fc.Slowdowns = append(fc.Slowdowns, w)
	}
	set(faults.New(fc))
}

// simConfig converts a validated SimConfig to the proxy simulation's
// config, starting from the repo defaults.
func simConfig(s SimConfig) sim.Config {
	c := sim.DefaultConfig(grid.NewBox(s.NX, s.NY, s.NZ), s.PX, s.PY, s.PZ)
	if s.SubSteps > 0 {
		c.SubSteps = s.SubSteps
	}
	if s.Seed != 0 {
		c.Seed = s.Seed
	}
	return c
}

// defaultInt returns v, or def when v is zero.
func defaultInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// maxInt is the two-arg integer max (avoids requiring go1.21 builtins
// in older toolchains).
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
