package registry_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"insitu/internal/core"
	"insitu/internal/registry"
)

// runDigests builds the config, runs it, and digests every stored
// analysis result keyed by "name@step" — a whole run reduced to a
// comparable map.
func runDigests(t *testing.T, cfg *registry.Config) map[string]string {
	t.Helper()
	b, err := registry.Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer b.Close()
	steps := b.Steps(0, 4)
	rep, err := b.Pipeline.Run(steps)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := make(map[string]string)
	for _, a := range b.Tenants[0].Analyses {
		every := a.Every()
		if every < 1 {
			every = 1
		}
		for s := every; s <= steps; s += every {
			if v := rep.Result(a.Name(), s); v != nil {
				out[fmt.Sprintf("%s@%d", a.Name(), s)] = core.ResultDigest(v)
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("run stored no results")
	}
	return out
}

// TestLegacyFlagAndConfigFileRunsMatch is the equivalence acceptance
// test: the legacy flag path (LegacyOptions → Config) and the -config
// file path (Marshal → LoadConfig) must build pipelines whose runs
// produce identical result digests for every analysis at every step.
//
// The analysis set is restricted to those whose results are value
// types (stats, viz, assess) — the same restriction the crash matrix
// applies — because ResultDigest formats nested pointers inside
// results (topology's *mergetree.Tree, contingency's
// *stats.Contingency) as addresses, which differ between any two
// runs regardless of construction path.
func TestLegacyFlagAndConfigFileRunsMatch(t *testing.T) {
	opts := registry.LegacyOptions{
		NX: 16, NY: 12, NZ: 8,
		PX: 2, PY: 1, PZ: 1,
		Steps: 4, Every: 1, SubSteps: 1,
		Buckets: 2, Servers: 2,
		StatsMode: "both", VizMode: "both",
		Assess: true,
		Factor: 4,
		Seed:   1,
	}
	fromFlags, err := opts.Config()
	if err != nil {
		t.Fatalf("LegacyOptions.Config: %v", err)
	}

	// Round-trip through the file format, exactly like -dump-config
	// followed by -config.
	data, err := fromFlags.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	path := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := registry.LoadConfig(path)
	if err != nil {
		t.Fatalf("LoadConfig: %v", err)
	}

	flagRun := runDigests(t, fromFlags)
	fileRun := runDigests(t, fromFile)

	if len(flagRun) != len(fileRun) {
		t.Fatalf("result counts differ: flags %d, file %d", len(flagRun), len(fileRun))
	}
	for key, want := range flagRun {
		got, ok := fileRun[key]
		if !ok {
			t.Errorf("config-file run missing result %s", key)
			continue
		}
		if got != want {
			t.Errorf("digest mismatch at %s: flags %s, file %s", key, want, got)
		}
	}
}

// TestBuildSingleTenantShape pins what Build wires up for one tenant:
// a Pipeline (no Scheduler), analyses in config order, and the hybrid
// route list.
func TestBuildSingleTenantShape(t *testing.T) {
	buckets := 2
	cfg := &registry.Config{
		Fabric: registry.FabricConfig{Buckets: &buckets},
		Tenants: []registry.TenantConfig{{
			Sim: registry.SimConfig{NX: 8, NY: 8, NZ: 8, PX: 1, PY: 1, PZ: 1},
			Analyses: []registry.AnalysisConfig{
				{Analysis: "assess", Params: registry.Params{Sigma: 3}},
				{Analysis: "stats", Params: registry.Params{Placement: registry.PlaceHybrid}},
				{Analysis: "viz", Params: registry.Params{
					Placement: registry.PlaceHybrid, Width: 20, Height: 16, Factor: 2,
				}},
			},
		}},
	}
	b, err := registry.Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer b.Close()

	if b.Pipeline == nil || b.Scheduler != nil {
		t.Fatalf("single-tenant build: Pipeline=%v Scheduler=%v", b.Pipeline, b.Scheduler)
	}
	if len(b.Tenants) != 1 {
		t.Fatalf("len(Tenants) = %d, want 1", len(b.Tenants))
	}
	tn := b.Tenants[0]
	if len(tn.Analyses) != 3 {
		t.Fatalf("len(Analyses) = %d, want 3", len(tn.Analyses))
	}
	// assess is in-situ-only: not a hybrid route. stats and viz hybrid
	// stage payloads across the fabric, in registration order.
	want := []string{tn.Analyses[1].Name(), tn.Analyses[2].Name()}
	if len(tn.Routes) != len(want) || tn.Routes[0] != want[0] || tn.Routes[1] != want[1] {
		t.Errorf("Routes = %v, want %v", tn.Routes, want)
	}
}

// TestBuildMultiTenantShape: several tenants build a Scheduler with
// one pipeline per tenant, and the built topology runs.
func TestBuildMultiTenantShape(t *testing.T) {
	buckets := 2
	tenant := func(name string) registry.TenantConfig {
		return registry.TenantConfig{
			Name: name,
			Sim:  registry.SimConfig{NX: 8, NY: 8, NZ: 8, PX: 1, PY: 1, PZ: 1},
			Analyses: []registry.AnalysisConfig{
				{Analysis: "stats", Params: registry.Params{Placement: registry.PlaceHybrid}},
			},
		}
	}
	cfg := &registry.Config{
		Steps: 2,
		Fabric: registry.FabricConfig{
			Buckets: &buckets,
			Net:     registry.NetConfig{Profile: "gemini", TimeScale: 0.1},
		},
		Tenants: []registry.TenantConfig{tenant("a"), tenant("b")},
	}
	b, err := registry.Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer b.Close()

	if b.Scheduler == nil || b.Pipeline != nil {
		t.Fatalf("multi-tenant build: Pipeline=%v Scheduler=%v", b.Pipeline, b.Scheduler)
	}
	if len(b.Tenants) != 2 || b.Tenants[0].Name != "a" || b.Tenants[1].Name != "b" {
		t.Fatalf("Tenants = %+v, want a then b", b.Tenants)
	}

	reps, err := b.Scheduler.Run(b.Steps(0, 2))
	if err != nil {
		t.Fatalf("Scheduler.Run: %v", err)
	}
	for _, name := range []string{"a", "b"} {
		rep := reps[name]
		if rep == nil {
			t.Fatalf("tenant %q produced no report", name)
		}
		if rep.Result(b.Tenants[0].Analyses[0].Name(), 2) == nil {
			t.Errorf("tenant %q has no stats result at step 2", name)
		}
	}
}

// TestBuildRejectsInvalidConfig: Build re-validates, so a config
// assembled in Go (never parsed) still cannot construct a bad
// topology.
func TestBuildRejectsInvalidConfig(t *testing.T) {
	cfg := &registry.Config{
		Tenants: []registry.TenantConfig{{
			Sim: registry.SimConfig{NX: 8, NY: 8, NZ: 8, PX: 1, PY: 1, PZ: 1},
			Analyses: []registry.AnalysisConfig{
				{Analysis: "no-such-analysis"},
			},
		}},
	}
	if _, err := registry.Build(cfg); !errors.Is(err, registry.ErrUnknownAnalysis) {
		t.Fatalf("Build = %v, want ErrUnknownAnalysis", err)
	}
}
