package registry

import (
	"fmt"

	"insitu/internal/core"
)

// Default frame geometry and shaping factor used when a viz config
// omits them. DefaultVizFactor is the paper's 8x down-sampling.
const (
	DefaultVizWidth  = 320
	DefaultVizHeight = 240
	DefaultVizFactor = 8
)

// builtins registers the core analysis catalog. Each entry is the
// config-facing name of one analysis family; placements select the
// concrete variant (the paper's point: the *same* analysis, placed
// differently per run).
func init() {
	Register("stats", Info{
		Doc:        "descriptive statistics over the listed variables (Welford moments, global merge for hybrid)",
		Placements: []Placement{PlaceInSitu, PlaceHybrid},
		Params: map[Placement][]string{
			PlaceInSitu: {"vars"},
			PlaceHybrid: {"vars"},
		},
		Build: func(p Params) (core.Analysis, error) {
			if p.Placement == PlaceInSitu {
				return &core.StatsInSitu{Vars: p.Vars, EveryN: p.Every}, nil
			}
			return &core.StatsHybrid{Vars: p.Vars, EveryN: p.Every}, nil
		},
	})

	Register("assess", Info{
		Doc:        "in-situ assess & test: flag outliers beyond sigma standard deviations",
		Placements: []Placement{PlaceInSitu},
		Params: map[Placement][]string{
			PlaceInSitu: {"var", "sigma"},
		},
		Check: func(p Params) error {
			if p.Sigma < 0 {
				return fmt.Errorf("%w: assess: negative sigma %v", ErrBadParam, p.Sigma)
			}
			return nil
		},
		Build: func(p Params) (core.Analysis, error) {
			return &core.AssessTestInSitu{Var: p.Var, Sigma: p.Sigma, EveryN: p.Every}, nil
		},
	})

	Register("viz", Info{
		Doc:        "volume rendering: full-resolution in-situ, or down-sampled hybrid with in-transit ray-casting",
		Placements: []Placement{PlaceInSitu, PlaceHybrid},
		Params: map[Placement][]string{
			PlaceInSitu: {"var", "tag", "width", "height", "cameras"},
			PlaceHybrid: {"var", "tag", "width", "height", "factor", "cameras", "auto_range"},
		},
		Check: checkViz,
		Build: buildViz,
	})

	Register("topology", Info{
		Doc:        "merge-tree topology: hybrid (reduced subtrees + streaming glue) or streaming in-transit",
		Placements: []Placement{PlaceHybrid, PlaceInTransit},
		Params: map[Placement][]string{
			PlaceHybrid:    {"var", "simplify_eps", "feature_threshold", "workers"},
			PlaceInTransit: {"var", "simplify_eps", "feature_threshold"},
		},
		Check: func(p Params) error {
			if p.SimplifyEps < 0 {
				return fmt.Errorf("%w: topology: negative simplify_eps %v", ErrBadParam, p.SimplifyEps)
			}
			if p.FeatureThreshold < 0 {
				return fmt.Errorf("%w: topology: negative feature_threshold %v", ErrBadParam, p.FeatureThreshold)
			}
			if p.Workers < 0 {
				return fmt.Errorf("%w: topology: negative workers %d", ErrBadParam, p.Workers)
			}
			return nil
		},
		Build: func(p Params) (core.Analysis, error) {
			if p.Placement == PlaceInTransit {
				t := core.NewTopologyStreaming()
				applyTopology(&t.TopologyHybrid, p)
				return t, nil
			}
			t := core.NewTopologyHybrid()
			applyTopology(t, p)
			t.Workers = p.Workers
			return t, nil
		},
	})

	Register("featurestats", Info{
		Doc:        "feature-based statistics: summarize var_y per superlevel-set feature of var",
		Placements: []Placement{PlaceHybrid},
		Params: map[Placement][]string{
			PlaceHybrid: {"var", "var_y", "threshold"},
		},
		Build: func(p Params) (core.Analysis, error) {
			return &core.FeatureStatsHybrid{
				SegVar: p.Var, CondVar: p.VarY,
				Threshold: p.Threshold, EveryN: p.Every,
			}, nil
		},
	})

	Register("autocorr", Info{
		Doc:        "temporal auto-correlation of var at the configured lags",
		Placements: []Placement{PlaceHybrid},
		Params: map[Placement][]string{
			PlaceHybrid: {"var", "lags"},
		},
		Check: func(p Params) error {
			for _, lag := range p.Lags {
				if lag <= 0 {
					return fmt.Errorf("%w: autocorr: non-positive lag %d", ErrBadParam, lag)
				}
			}
			return nil
		},
		Build: func(p Params) (core.Analysis, error) {
			return &core.AutoCorrHybrid{Var: p.Var, Lags: p.Lags, EveryN: p.Every}, nil
		},
	})

	Register("contingency", Info{
		Doc:        "joint contingency table of (var, var_y) over x_bins x y_bins cells",
		Placements: []Placement{PlaceHybrid},
		Params: map[Placement][]string{
			PlaceHybrid: {"var", "var_y", "x_bins", "y_bins"},
		},
		Check: func(p Params) error {
			if p.XBins < 0 || p.YBins < 0 {
				return fmt.Errorf("%w: contingency: negative bins %dx%d", ErrBadParam, p.XBins, p.YBins)
			}
			return nil
		},
		Build: func(p Params) (core.Analysis, error) {
			return &core.ContingencyHybrid{
				VarX: p.Var, VarY: p.VarY,
				XBins: p.XBins, YBins: p.YBins, EveryN: p.Every,
			}, nil
		},
	})

	Register("tracking", Info{
		Doc:        "feature tracking: follow superlevel-set features of var across steps",
		Placements: []Placement{PlaceHybrid},
		Params: map[Placement][]string{
			PlaceHybrid: {"var", "threshold"},
		},
		Build: func(p Params) (core.Analysis, error) {
			return &core.TrackingHybrid{Var: p.Var, Threshold: p.Threshold, EveryN: p.Every}, nil
		},
	})
}

// checkViz vets the shared viz value ranges for both placements.
func checkViz(p Params) error {
	if p.Width < 0 || p.Height < 0 {
		return fmt.Errorf("%w: viz: negative frame size %dx%d", ErrBadParam, p.Width, p.Height)
	}
	if p.Factor < 0 {
		return fmt.Errorf("%w: viz: negative shaping factor %d", ErrBadParam, p.Factor)
	}
	if p.Cameras < 0 {
		return fmt.Errorf("%w: viz: negative camera count %d", ErrBadParam, p.Cameras)
	}
	return nil
}

// buildViz constructs the in-situ or hybrid renderer, applying the
// default geometry and shaping factor where the config left zeros.
func buildViz(p Params) (core.Analysis, error) {
	w, h := p.Width, p.Height
	if w == 0 {
		w = DefaultVizWidth
	}
	if h == 0 {
		h = DefaultVizHeight
	}
	if p.Placement == PlaceInSitu {
		v := core.NewVizInSitu(w, h)
		if p.Var != "" {
			v.Var = p.Var
		}
		v.Tag = p.Tag
		v.Cameras = p.Cameras
		v.EveryN = p.Every
		return v, nil
	}
	factor := p.Factor
	if factor == 0 {
		factor = DefaultVizFactor
	}
	v := core.NewVizHybrid(w, h, factor)
	if p.Var != "" {
		v.Var = p.Var
	}
	v.Tag = p.Tag
	v.Cameras = p.Cameras
	v.AutoRange = p.AutoRange
	v.EveryN = p.Every
	return v, nil
}

// applyTopology copies the shared topology params onto a hybrid (or
// embedded streaming) merge-tree analysis.
func applyTopology(t *core.TopologyHybrid, p Params) {
	if p.Var != "" {
		t.Var = p.Var
	}
	t.SimplifyEps = p.SimplifyEps
	t.FeatureThreshold = p.FeatureThreshold
	t.EveryN = p.Every
}
