package registry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"insitu/internal/codec"
	"insitu/internal/netsim"
	"insitu/internal/overload"
)

// Config is one declarative pipeline run: a shared fabric, one or more
// tenants, and the optional recovery/store/fault planes. It is the
// JSON document LoadConfig reads and the value Build executes. A
// single tenant builds a core.Pipeline; several build a
// core.Scheduler. The zero value of every knob means "core default" —
// a config states only what it changes, and Validate never fills
// defaults in (purity lets the same Config be validated, diffed, and
// built without drift).
type Config struct {
	// Name labels the run in output and tooling (optional).
	Name string `json:"name,omitempty"`
	// Steps is the default step count when the launcher's -steps flag
	// is not given (0 = launcher default).
	Steps int `json:"steps,omitempty"`
	// Fabric configures the shared transit tier: DataSpaces shards,
	// staging buckets, the modeled interconnect, and the scheduler-
	// level knobs for multi-tenant runs.
	Fabric FabricConfig `json:"fabric"`
	// Tenants declares the pipelines sharing the fabric. Exactly one
	// tenant means a single-tenant core.Pipeline; names are required
	// (and must be unique) once there are several.
	Tenants []TenantConfig `json:"tenants"`
	// Recovery, when non-nil, enables the durable step journal and
	// checkpoint/restart plane (single-tenant only).
	Recovery *RecoveryConfig `json:"recovery,omitempty"`
	// Store, when non-nil, files rendered frames into the Cinema-style
	// image database (single-tenant only).
	Store *StoreConfig `json:"store,omitempty"`
	// Faults, when non-nil, installs a deterministic fault schedule on
	// the modeled network.
	Faults *FaultsConfig `json:"faults,omitempty"`
}

// FabricConfig declares the shared transit tier. The scheduler-only
// fields (MaxBuckets, Credits, TenantReserve, Autoscale, Quarantine)
// are rejected by Validate in single-tenant configs, where they have
// no carrier.
type FabricConfig struct {
	// DSServers is the DataSpaces service shard count (0 = 2).
	DSServers int `json:"ds_servers,omitempty"`
	// Buckets is the staging-bucket count. Omitted (null) = 4, the
	// repo's default transit tier; an explicit 0 declares a fabric
	// with no transit tier at all, so hybrid/in-transit analyses fail
	// validation with ErrNoTransitFabric.
	Buckets *int `json:"buckets,omitempty"`
	// MaxBuckets caps the autoscaled pool (multi-tenant only).
	MaxBuckets int `json:"max_buckets,omitempty"`
	// Net selects the modeled interconnect.
	Net NetConfig `json:"net,omitempty"`
	// QueueBound bounds each tenant's task queue (multi-tenant; the
	// single-tenant bound lives in the tenant's overload config).
	QueueBound int `json:"queue_bound,omitempty"`
	// Credits is the shared transit credit total (multi-tenant only).
	Credits int `json:"credits,omitempty"`
	// TenantReserve is each tenant's guaranteed credit floor — the
	// bulkhead (multi-tenant only).
	TenantReserve int `json:"tenant_reserve,omitempty"`
	// MaxTaskAttempts bounds per-task bucket handoffs before
	// dead-lettering (0 = staging default of 3).
	MaxTaskAttempts int `json:"max_task_attempts,omitempty"`
	// Autoscale, when non-nil, lets the scheduler grow/shrink the
	// bucket pool (multi-tenant only).
	Autoscale *AutoscaleConfig `json:"autoscale,omitempty"`
	// Quarantine tunes the poison-route quarantine (multi-tenant
	// only).
	Quarantine *QuarantineConfig `json:"quarantine,omitempty"`
}

// NetConfig selects and scales the modeled interconnect.
type NetConfig struct {
	// Profile names the hardware model: "" (uncontended defaults) or
	// "gemini" (the Cray XK6 Gemini profile from the paper's Titan
	// runs).
	Profile string `json:"profile,omitempty"`
	// TimeScale multiplies every modeled duration (0 = 1.0; the soak
	// scenarios use 0.1 to compress wall time).
	TimeScale float64 `json:"time_scale,omitempty"`
}

// AutoscaleConfig mirrors overload.AutoscaleConfig in JSON form.
type AutoscaleConfig struct {
	// Min and Max bound the bucket pool.
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
	// QueueHighPerBucket marks pressure at this queue depth per active
	// bucket.
	QueueHighPerBucket int `json:"queue_high_per_bucket,omitempty"`
	// GrowAfter / ShrinkAfter are the consecutive-observation
	// hystereses.
	GrowAfter   int `json:"grow_after,omitempty"`
	ShrinkAfter int `json:"shrink_after,omitempty"`
}

// QuarantineConfig mirrors overload.QuarantineConfig in JSON form.
type QuarantineConfig struct {
	// Strikes quarantines a route after this many consecutive poison
	// dispositions.
	Strikes int `json:"strikes,omitempty"`
	// ProbeAfter allows one half-open probe after this many denials.
	ProbeAfter int `json:"probe_after,omitempty"`
}

// RecoveryConfig mirrors core.RecoveryConfig in JSON form.
type RecoveryConfig struct {
	// Dir holds the journal and checkpoints.
	Dir string `json:"dir"`
	// EverySteps is the checkpoint cadence (0 = 5).
	EverySteps int `json:"every_steps,omitempty"`
}

// StoreConfig declares the Cinema-style image database sink.
type StoreConfig struct {
	// Dir is the store directory.
	Dir string `json:"dir"`
	// Serve, when non-empty, is the address the launcher serves the
	// database on over HTTP (e.g. ":8080"; the viewer page, /db, /img,
	// /latest.json).
	Serve string `json:"serve,omitempty"`
}

// FaultsConfig is the deterministic fault schedule in JSON form.
// Only the knobs the scenarios exercise are declared; richer
// schedules still go through faults.Config in Go.
type FaultsConfig struct {
	// Seed drives the injector's PRNG.
	Seed int64 `json:"seed,omitempty"`
	// Slowdowns are the scheduled bandwidth-collapse windows.
	Slowdowns []SlowdownConfig `json:"slowdowns,omitempty"`
}

// SlowdownConfig is one bandwidth-collapse (brownout) window.
type SlowdownConfig struct {
	// From/Until bound the window in transfer indices.
	From  int `json:"from"`
	Until int `json:"until"`
	// Tenant scopes the window to one tenant's rank endpoints
	// (multi-tenant configs; resolved to endpoint IDs at Build time).
	// Empty hits every transfer in the window.
	Tenant string `json:"tenant,omitempty"`
	// Factor multiplies the modeled duration of covered transfers.
	Factor float64 `json:"factor,omitempty"`
}

// TenantConfig declares one pipeline: its simulation, its analysis
// list, and its admission/codec tuning.
type TenantConfig struct {
	// Name identifies the tenant (required in multi-tenant configs).
	Name string `json:"name,omitempty"`
	// Sim sizes the proxy simulation.
	Sim SimConfig `json:"sim"`
	// Placement is the tenant-wide default placement for analyses that
	// omit their own.
	Placement Placement `json:"placement,omitempty"`
	// StepBudgetMS bounds each step's hybrid transit path in
	// milliseconds (0 = no budget).
	StepBudgetMS int `json:"step_budget_ms,omitempty"`
	// Weight is the deficit-round-robin share (multi-tenant only;
	// 0 = 1).
	Weight int `json:"weight,omitempty"`
	// Overload, when non-nil, enables (single-tenant) or tunes
	// (multi-tenant) the graded admission plane.
	Overload *OverloadConfig `json:"overload,omitempty"`
	// Codec is the default transfer-path codec for every hybrid route
	// ("*" in core terms); per-analysis codecs override it.
	Codec *CodecConfig `json:"codec,omitempty"`
	// Analyses is the tenant's analysis list, registered in order.
	Analyses []AnalysisConfig `json:"analyses"`
}

// SimConfig sizes one tenant's proxy simulation.
type SimConfig struct {
	// NX/NY/NZ are the global grid dimensions (all required).
	NX int `json:"nx"`
	NY int `json:"ny"`
	NZ int `json:"nz"`
	// PX/PY/PZ decompose the grid into ranks (all required).
	PX int `json:"px"`
	PY int `json:"py"`
	PZ int `json:"pz"`
	// SubSteps runs the solver N times per pipeline step (0 = 1).
	SubSteps int `json:"sub_steps,omitempty"`
	// Seed initializes the jet perturbations (0 = 1, the repo
	// default).
	Seed int64 `json:"seed,omitempty"`
}

// AnalysisConfig is one analysis entry: its registry name, its typed
// params, and an optional route-specific codec.
type AnalysisConfig struct {
	// Analysis is the registry name ("stats", "viz", "topology", ...).
	Analysis string `json:"analysis"`
	// Params is inlined: placement, every, var, width, ... appear as
	// sibling keys of "analysis" in the JSON document.
	Params
	// Codec overrides the tenant default codec for this route.
	Codec *CodecConfig `json:"codec,omitempty"`
}

// OverloadConfig mirrors overload.Config in JSON form, with durations
// in microseconds.
type OverloadConfig struct {
	// Breaker tunes the per-route circuit breaker.
	Breaker BreakerConfig `json:"breaker,omitempty"`
	// Ladder tunes the admission ladder.
	Ladder LadderConfig `json:"ladder,omitempty"`
	// QueueBound bounds the task-queue depth (0 = 8).
	QueueBound int `json:"queue_bound,omitempty"`
	// Reserve is the per-analysis credit floor (0 = 1).
	Reserve int `json:"reserve,omitempty"`
	// Credits overrides the credit supply (0 = buckets + QueueBound).
	Credits int `json:"credits,omitempty"`
	// ProbeLatencyMaxUS fails slow half-open probes (µs; 0 = 5000).
	ProbeLatencyMaxUS int `json:"probe_latency_max_us,omitempty"`
	// LatencyAlpha and QueueAlpha smooth the estimator (0 = 0.5).
	LatencyAlpha float64 `json:"latency_alpha,omitempty"`
	QueueAlpha   float64 `json:"queue_alpha,omitempty"`
}

// BreakerConfig mirrors overload.BreakerConfig in JSON form.
type BreakerConfig struct {
	// FailureThreshold opens the breaker after N consecutive failures.
	FailureThreshold int `json:"failure_threshold,omitempty"`
	// LatencyThresholdUS opens it when the latency EWMA passes this
	// (µs).
	LatencyThresholdUS int `json:"latency_threshold_us,omitempty"`
	// LatencyAlpha smooths the success-latency EWMA.
	LatencyAlpha float64 `json:"latency_alpha,omitempty"`
	// CooldownUS is the open→half-open wait (µs).
	CooldownUS int `json:"cooldown_us,omitempty"`
}

// LadderConfig mirrors overload.LadderConfig in JSON form.
type LadderConfig struct {
	// QueueHigh/QueueLow are the queue-depth EWMA watermarks.
	QueueHigh float64 `json:"queue_high,omitempty"`
	QueueLow  float64 `json:"queue_low,omitempty"`
	// LatencyHighUS/LatencyLowUS are the latency watermarks (µs).
	LatencyHighUS int `json:"latency_high_us,omitempty"`
	LatencyLowUS  int `json:"latency_low_us,omitempty"`
	// DegradeAfter/RecoverAfter are the rung hystereses.
	DegradeAfter int `json:"degrade_after,omitempty"`
	RecoverAfter int `json:"recover_after,omitempty"`
}

// CodecConfig selects a transfer-path codec.
type CodecConfig struct {
	// ID names the codec: "identity", "delta", "quantize", or
	// "subsample".
	ID string `json:"id"`
	// MaxError is quantize's absolute error bound (quantize only).
	MaxError float64 `json:"max_error,omitempty"`
	// Stride is subsample's keep-every-Nth stride (subsample only).
	Stride int `json:"stride,omitempty"`
}

// ValidationError ties a typed registry error to the config path that
// produced it ("tenants[1].analyses[0]", "fabric.autoscale", ...).
type ValidationError struct {
	// Path is the JSON-ish path of the failing element.
	Path string
	// Err is the underlying typed error (errors.Is-matchable).
	Err error
}

// Error implements error.
func (e *ValidationError) Error() string { return e.Path + ": " + e.Err.Error() }

// Unwrap exposes the typed error to errors.Is/As.
func (e *ValidationError) Unwrap() error { return e.Err }

// LoadConfig reads, strictly decodes (unknown keys are errors — a
// typo'd knob must not silently validate), and validates a pipeline
// config file.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := ParseConfig(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// ParseConfig strictly decodes and validates a pipeline config from
// JSON bytes.
func ParseConfig(data []byte) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Marshal renders the config as indented JSON (the exact bytes the
// example files pin in tests).
func (c *Config) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Validate checks the whole config without executing or mutating
// anything: every analysis resolves through the registry with its
// placement and params, tenant names are unique, scheduler-only knobs
// appear only in multi-tenant configs, and every cross-reference
// (slowdown tenant scopes, codec IDs) lands. Errors are
// *ValidationError values aggregated with errors.Join; match them
// with errors.Is against the Err* sentinels.
func (c *Config) Validate() error {
	var errs []error
	fail := func(path string, err error) { errs = append(errs, &ValidationError{Path: path, Err: err}) }

	if len(c.Tenants) == 0 {
		fail("tenants", ErrNoTenants)
		return errors.Join(errs...)
	}
	multi := len(c.Tenants) > 1

	if !multi {
		if c.Fabric.MaxBuckets != 0 {
			fail("fabric.max_buckets", fmt.Errorf("%w: scheduler knob in a single-tenant config", ErrConflictingParams))
		}
		if c.Fabric.Credits != 0 {
			fail("fabric.credits", fmt.Errorf("%w: scheduler knob in a single-tenant config", ErrConflictingParams))
		}
		if c.Fabric.TenantReserve != 0 {
			fail("fabric.tenant_reserve", fmt.Errorf("%w: scheduler knob in a single-tenant config", ErrConflictingParams))
		}
		if c.Fabric.QueueBound != 0 {
			fail("fabric.queue_bound", fmt.Errorf("%w: scheduler knob in a single-tenant config (use the tenant's overload.queue_bound)", ErrConflictingParams))
		}
		if c.Fabric.Autoscale != nil {
			fail("fabric.autoscale", fmt.Errorf("%w: scheduler knob in a single-tenant config", ErrConflictingParams))
		}
		if c.Fabric.Quarantine != nil {
			fail("fabric.quarantine", fmt.Errorf("%w: scheduler knob in a single-tenant config", ErrConflictingParams))
		}
	} else {
		if c.Recovery != nil {
			fail("recovery", fmt.Errorf("%w: recovery is single-tenant only (the journal must own the task queue)", ErrConflictingParams))
		}
		if c.Store != nil {
			fail("store", fmt.Errorf("%w: the image store is single-tenant only", ErrConflictingParams))
		}
	}

	if c.Fabric.DSServers < 0 {
		fail("fabric.ds_servers", fmt.Errorf("%w: negative shard count %d", ErrBadParam, c.Fabric.DSServers))
	}
	if c.Fabric.Buckets != nil && *c.Fabric.Buckets < 0 {
		fail("fabric.buckets", fmt.Errorf("%w: negative bucket count %d", ErrBadParam, *c.Fabric.Buckets))
	}
	switch c.Fabric.Net.Profile {
	case "", "gemini":
	default:
		fail("fabric.net.profile", fmt.Errorf("%w: unknown profile %q (known: gemini)", ErrBadParam, c.Fabric.Net.Profile))
	}
	if c.Fabric.Net.TimeScale < 0 {
		fail("fabric.net.time_scale", fmt.Errorf("%w: negative time scale %v", ErrBadParam, c.Fabric.Net.TimeScale))
	}

	if c.Recovery != nil && c.Recovery.Dir == "" {
		fail("recovery.dir", fmt.Errorf("%w: recovery requires a directory", ErrBadParam))
	}
	if c.Store != nil && c.Store.Dir == "" {
		fail("store.dir", fmt.Errorf("%w: the store requires a directory", ErrBadParam))
	}

	hasTransit := c.TransitBuckets() > 0
	seen := make(map[string]bool, len(c.Tenants))
	for ti := range c.Tenants {
		t := &c.Tenants[ti]
		path := fmt.Sprintf("tenants[%d]", ti)
		if multi && t.Name == "" {
			fail(path+".name", fmt.Errorf("%w: tenant name required in multi-tenant configs", ErrBadParam))
		}
		if t.Name != "" {
			if seen[t.Name] {
				fail(path+".name", fmt.Errorf("%w: %q", ErrDuplicateTenant, t.Name))
			}
			seen[t.Name] = true
		}
		if t.Placement != "" && !t.Placement.Valid() {
			fail(path+".placement", fmt.Errorf("%w: %q", ErrBadPlacement, t.Placement))
		}
		if t.StepBudgetMS < 0 {
			fail(path+".step_budget_ms", fmt.Errorf("%w: negative step budget", ErrBadParam))
		}
		if t.Weight != 0 && !multi {
			fail(path+".weight", fmt.Errorf("%w: weight is a scheduler knob", ErrConflictingParams))
		}
		validateSim(t.Sim, path+".sim", fail)
		if t.Codec != nil {
			validateCodec(t.Codec, path+".codec", fail)
		}
		if len(t.Analyses) == 0 {
			fail(path+".analyses", ErrNoAnalyses)
		}
		for ai := range t.Analyses {
			a := &t.Analyses[ai]
			apath := fmt.Sprintf("%s.analyses[%d]", path, ai)
			p := a.Params
			if p.Placement == "" {
				p.Placement = t.Placement
			}
			if p.Placement == "" {
				p.Placement = DefaultPlacement(a.Analysis)
			}
			if err := Check(a.Analysis, p); err != nil {
				fail(apath, err)
				continue
			}
			if !hasTransit && p.Placement != PlaceInSitu {
				fail(apath, fmt.Errorf("%w: %q placed %q but fabric.buckets is 0", ErrNoTransitFabric, a.Analysis, p.Placement))
			}
			if a.Codec != nil {
				validateCodec(a.Codec, apath+".codec", fail)
			}
		}
	}

	if c.Faults != nil {
		for si, s := range c.Faults.Slowdowns {
			spath := fmt.Sprintf("faults.slowdowns[%d]", si)
			if s.Until < s.From || s.From < 0 {
				fail(spath, fmt.Errorf("%w: bad window [%d, %d)", ErrBadParam, s.From, s.Until))
			}
			if s.Factor < 0 {
				fail(spath+".factor", fmt.Errorf("%w: negative factor %v", ErrBadParam, s.Factor))
			}
			if s.Tenant != "" {
				if !multi {
					fail(spath+".tenant", fmt.Errorf("%w: tenant-scoped slowdown in a single-tenant config", ErrConflictingParams))
				} else if !seen[s.Tenant] {
					fail(spath+".tenant", fmt.Errorf("%w: unknown tenant %q", ErrBadParam, s.Tenant))
				}
			}
		}
	}

	return errors.Join(errs...)
}

// TransitBuckets resolves the fabric's bucket count: omitted = the
// repo default of 4, explicit values (including 0) stand.
func (c *Config) TransitBuckets() int {
	if c.Fabric.Buckets == nil {
		return 4
	}
	return *c.Fabric.Buckets
}

// validateSim checks the required simulation dimensions.
func validateSim(s SimConfig, path string, fail func(string, error)) {
	dims := []struct {
		name string
		v    int
	}{
		{"nx", s.NX}, {"ny", s.NY}, {"nz", s.NZ},
		{"px", s.PX}, {"py", s.PY}, {"pz", s.PZ},
	}
	for _, d := range dims {
		if d.v < 1 {
			fail(path+"."+d.name, fmt.Errorf("%w: %s must be >= 1 (got %d)", ErrBadParam, d.name, d.v))
		}
	}
	if s.SubSteps < 0 {
		fail(path+".sub_steps", fmt.Errorf("%w: negative sub_steps", ErrBadParam))
	}
}

// validateCodec checks a codec selection and its knob pairing.
func validateCodec(cc *CodecConfig, path string, fail func(string, error)) {
	switch cc.ID {
	case "identity", "delta", "quantize", "subsample":
	default:
		fail(path+".id", fmt.Errorf("%w: unknown codec %q (known: identity, delta, quantize, subsample)", ErrBadParam, cc.ID))
		return
	}
	if cc.MaxError != 0 && cc.ID != "quantize" {
		fail(path+".max_error", fmt.Errorf("%w: max_error applies only to quantize", ErrConflictingParams))
	}
	if cc.MaxError < 0 {
		fail(path+".max_error", fmt.Errorf("%w: negative max_error %v", ErrBadParam, cc.MaxError))
	}
	if cc.Stride != 0 && cc.ID != "subsample" {
		fail(path+".stride", fmt.Errorf("%w: stride applies only to subsample", ErrConflictingParams))
	}
	if cc.Stride < 0 {
		fail(path+".stride", fmt.Errorf("%w: negative stride %d", ErrBadParam, cc.Stride))
	}
}

// codecSpec converts a validated CodecConfig to the core codec spec.
func codecSpec(cc *CodecConfig) codec.Spec {
	var id codec.ID
	switch cc.ID {
	case "identity":
		id = codec.Identity
	case "delta":
		id = codec.Delta
	case "quantize":
		id = codec.Quantize
	case "subsample":
		id = codec.Subsample
	}
	return codec.Spec{ID: id, MaxError: cc.MaxError, Stride: cc.Stride}
}

// netConfig converts a validated NetConfig to the netsim config.
func netConfig(nc NetConfig) netsim.Config {
	var n netsim.Config
	if nc.Profile == "gemini" {
		n = netsim.Gemini()
	}
	n.TimeScale = nc.TimeScale
	return n
}

// overloadConfig converts a validated OverloadConfig to the overload
// plane's config.
func overloadConfig(oc *OverloadConfig) *overload.Config {
	if oc == nil {
		return nil
	}
	us := func(v int) time.Duration { return time.Duration(v) * time.Microsecond }
	return &overload.Config{
		Breaker: overload.BreakerConfig{
			FailureThreshold: oc.Breaker.FailureThreshold,
			LatencyThreshold: us(oc.Breaker.LatencyThresholdUS),
			LatencyAlpha:     oc.Breaker.LatencyAlpha,
			Cooldown:         us(oc.Breaker.CooldownUS),
		},
		Ladder: overload.LadderConfig{
			QueueHigh:    oc.Ladder.QueueHigh,
			QueueLow:     oc.Ladder.QueueLow,
			LatencyHigh:  us(oc.Ladder.LatencyHighUS),
			LatencyLow:   us(oc.Ladder.LatencyLowUS),
			DegradeAfter: oc.Ladder.DegradeAfter,
			RecoverAfter: oc.Ladder.RecoverAfter,
		},
		QueueBound:      oc.QueueBound,
		Reserve:         oc.Reserve,
		Credits:         oc.Credits,
		ProbeLatencyMax: us(oc.ProbeLatencyMaxUS),
		LatencyAlpha:    oc.LatencyAlpha,
		QueueAlpha:      oc.QueueAlpha,
	}
}
