package registry_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"insitu/internal/registry"
)

// TestParseConfigMalformed is the malformed-config table: every way a
// declarative pipeline can be wrong maps to one typed sentinel error,
// matchable with errors.Is through the ValidationError wrapping.
func TestParseConfigMalformed(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want error
	}{
		{
			name: "unknown analysis",
			src: `{"tenants": [{"sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				"analyses": [{"analysis": "warp-drive", "placement": "hybrid"}]}]}`,
			want: registry.ErrUnknownAnalysis,
		},
		{
			name: "duplicate tenant",
			src: `{"tenants": [
				{"name": "alpha", "sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				 "analyses": [{"analysis": "stats", "placement": "hybrid"}]},
				{"name": "alpha", "sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				 "analyses": [{"analysis": "stats", "placement": "hybrid"}]}]}`,
			want: registry.ErrDuplicateTenant,
		},
		{
			name: "hybrid analysis without transit fabric",
			src: `{"fabric": {"buckets": 0},
				"tenants": [{"sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				"analyses": [{"analysis": "stats", "placement": "hybrid"}]}]}`,
			want: registry.ErrNoTransitFabric,
		},
		{
			name: "negative shaping factor",
			src: `{"tenants": [{"sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				"analyses": [{"analysis": "viz", "placement": "hybrid", "factor": -2}]}]}`,
			want: registry.ErrBadParam,
		},
		{
			name: "param the placement does not consume",
			src: `{"tenants": [{"sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				"analyses": [{"analysis": "viz", "placement": "in-situ", "factor": 2}]}]}`,
			want: registry.ErrConflictingParams,
		},
		{
			name: "bad placement",
			src: `{"tenants": [{"sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				"analyses": [{"analysis": "viz", "placement": "sideways"}]}]}`,
			want: registry.ErrBadPlacement,
		},
		{
			name: "omitted placement where the analysis supports several",
			src: `{"tenants": [{"sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				"analyses": [{"analysis": "viz"}]}]}`,
			want: registry.ErrBadPlacement,
		},
		{
			name: "scheduler knob in single-tenant config",
			src: `{"fabric": {"autoscale": {"min": 2, "max": 4}},
				"tenants": [{"sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				"analyses": [{"analysis": "stats", "placement": "hybrid"}]}]}`,
			want: registry.ErrConflictingParams,
		},
		{
			name: "weight in single-tenant config",
			src: `{"tenants": [{"weight": 2, "sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				"analyses": [{"analysis": "stats", "placement": "hybrid"}]}]}`,
			want: registry.ErrConflictingParams,
		},
		{
			name: "recovery in multi-tenant config",
			src: `{"recovery": {"dir": "out/j"},
				"tenants": [
				{"name": "a", "sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				 "analyses": [{"analysis": "stats", "placement": "hybrid"}]},
				{"name": "b", "sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				 "analyses": [{"analysis": "stats", "placement": "hybrid"}]}]}`,
			want: registry.ErrConflictingParams,
		},
		{
			name: "no tenants",
			src:  `{"tenants": []}`,
			want: registry.ErrNoTenants,
		},
		{
			name: "tenant with no analyses",
			src: `{"tenants": [{"sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				"analyses": []}]}`,
			want: registry.ErrNoAnalyses,
		},
		{
			name: "unknown codec",
			src: `{"tenants": [{"codec": {"id": "gzip"},
				"sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				"analyses": [{"analysis": "stats", "placement": "hybrid"}]}]}`,
			want: registry.ErrBadParam,
		},
		{
			name: "codec knob on the wrong codec",
			src: `{"tenants": [{"codec": {"id": "delta", "max_error": 0.5},
				"sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				"analyses": [{"analysis": "stats", "placement": "hybrid"}]}]}`,
			want: registry.ErrConflictingParams,
		},
		{
			name: "zero sim dimension",
			src: `{"tenants": [{"sim": {"nx": 8, "ny": 0, "nz": 8, "px": 1, "py": 1, "pz": 1},
				"analyses": [{"analysis": "stats", "placement": "hybrid"}]}]}`,
			want: registry.ErrBadParam,
		},
		{
			name: "slowdown scoped to unknown tenant",
			src: `{"faults": {"slowdowns": [{"from": 1, "until": 5, "tenant": "ghost", "factor": 10}]},
				"tenants": [
				{"name": "a", "sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				 "analyses": [{"analysis": "stats", "placement": "hybrid"}]},
				{"name": "b", "sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				 "analyses": [{"analysis": "stats", "placement": "hybrid"}]}]}`,
			want: registry.ErrBadParam,
		},
		{
			name: "tenant-scoped slowdown in single-tenant config",
			src: `{"faults": {"slowdowns": [{"from": 1, "until": 5, "tenant": "a", "factor": 10}]},
				"tenants": [{"name": "a", "sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
				"analyses": [{"analysis": "stats", "placement": "hybrid"}]}]}`,
			want: registry.ErrConflictingParams,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := registry.ParseConfig([]byte(tc.src))
			if err == nil {
				t.Fatalf("ParseConfig accepted a malformed config: %+v", cfg)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want errors.Is %v", err, tc.want)
			}
		})
	}
}

// TestParseConfigStrictKeys: a typo'd knob must fail decoding, never
// silently validate.
func TestParseConfigStrictKeys(t *testing.T) {
	_, err := registry.ParseConfig([]byte(
		`{"tenants": [{"sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
			"analyses": [{"analysis": "stats", "placement": "hybrid", "evrey": 2}]}]}`))
	if err == nil {
		t.Fatal("ParseConfig accepted an unknown key")
	}
	if !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("error = %v, want an unknown-field decode error", err)
	}
}

// TestValidationErrorPaths: every failure names the config path that
// produced it, and the wrapper exposes the typed error to errors.As.
func TestValidationErrorPaths(t *testing.T) {
	_, err := registry.ParseConfig([]byte(
		`{"tenants": [{"sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
			"analyses": [
				{"analysis": "stats", "placement": "hybrid"},
				{"analysis": "warp-drive", "placement": "hybrid"}]}]}`))
	if err == nil {
		t.Fatal("expected a validation error")
	}
	var verr *registry.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("error %v does not wrap a *ValidationError", err)
	}
	if !strings.Contains(verr.Path, "analyses[1]") {
		t.Errorf("ValidationError.Path = %q, want it to locate analyses[1]", verr.Path)
	}
	if !errors.Is(verr, registry.ErrUnknownAnalysis) {
		t.Errorf("ValidationError does not unwrap to ErrUnknownAnalysis: %v", verr)
	}
}

// TestValidateJoinsAllErrors: validation reports every problem at
// once, not just the first.
func TestValidateJoinsAllErrors(t *testing.T) {
	_, err := registry.ParseConfig([]byte(
		`{"fabric": {"credits": 8},
			"tenants": [{"sim": {"nx": 8, "ny": 8, "nz": 8, "px": 1, "py": 1, "pz": 1},
			"analyses": [
				{"analysis": "warp-drive", "placement": "hybrid"},
				{"analysis": "viz", "placement": "hybrid", "factor": -1}]}]}`))
	if err == nil {
		t.Fatal("expected validation errors")
	}
	for _, want := range []error{
		registry.ErrConflictingParams, // scheduler credits in a single-tenant config
		registry.ErrUnknownAnalysis,
		registry.ErrBadParam, // negative shaping factor
	} {
		if !errors.Is(err, want) {
			t.Errorf("joined error does not include %v:\n%v", want, err)
		}
	}
}

// validatePurityConfig is a config touching every validated subtree:
// fabric, autoscale, quarantine, codecs, analyses, faults.
func validatePurityConfig() *registry.Config {
	buckets := 2
	return &registry.Config{
		Name:  "purity",
		Steps: 10,
		Fabric: registry.FabricConfig{
			DSServers:     2,
			Buckets:       &buckets,
			MaxBuckets:    4,
			Net:           registry.NetConfig{Profile: "gemini", TimeScale: 0.1},
			QueueBound:    4,
			TenantReserve: 2,
			Autoscale:     &registry.AutoscaleConfig{Min: 2, Max: 4},
			Quarantine:    &registry.QuarantineConfig{Strikes: 2, ProbeAfter: 2},
		},
		Tenants: []registry.TenantConfig{
			{
				Name: "alpha",
				Sim:  registry.SimConfig{NX: 8, NY: 8, NZ: 8, PX: 1, PY: 1, PZ: 1},
				Codec: &registry.CodecConfig{
					ID: "quantize", MaxError: 0.01,
				},
				Analyses: []registry.AnalysisConfig{
					{Analysis: "viz", Params: registry.Params{
						Placement: registry.PlaceHybrid, Factor: 4,
					}},
				},
			},
			{
				Name:      "beta",
				Sim:       registry.SimConfig{NX: 8, NY: 8, NZ: 8, PX: 1, PY: 1, PZ: 1},
				Placement: registry.PlaceHybrid,
				Analyses: []registry.AnalysisConfig{
					{Analysis: "stats", Params: registry.Params{Vars: []string{"T"}}},
				},
			},
		},
		Faults: &registry.FaultsConfig{
			Seed: 7,
			Slowdowns: []registry.SlowdownConfig{
				{From: 2, Until: 6, Tenant: "beta", Factor: 100},
			},
		},
	}
}

// TestValidatePure: Validate fills no defaults and mutates nothing —
// the same Config marshals byte-identically before and after, for
// valid and invalid configs alike, and repeated validation is stable.
func TestValidatePure(t *testing.T) {
	check := func(name string, cfg *registry.Config, wantErr bool) {
		t.Helper()
		before, err := cfg.Marshal()
		if err != nil {
			t.Fatalf("%s: marshal before: %v", name, err)
		}
		err1 := cfg.Validate()
		err2 := cfg.Validate()
		if (err1 != nil) != wantErr {
			t.Fatalf("%s: Validate() = %v, wantErr %v", name, err1, wantErr)
		}
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: repeated Validate disagrees: %v vs %v", name, err1, err2)
		}
		after, err := cfg.Marshal()
		if err != nil {
			t.Fatalf("%s: marshal after: %v", name, err)
		}
		if !bytes.Equal(before, after) {
			t.Errorf("%s: Validate mutated the config:\nbefore:\n%s\nafter:\n%s",
				name, before, after)
		}
	}

	check("valid", validatePurityConfig(), false)

	bad := validatePurityConfig()
	bad.Tenants[0].Analyses[0].Factor = -1
	bad.Tenants[1].Name = "alpha"
	check("invalid", bad, true)
}
