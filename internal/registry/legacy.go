package registry

import "fmt"

// LegacyOptions mirrors s3dpipe's original ad-hoc scenario flags. The
// launcher folds its flag values into this struct and converts them to
// a declarative Config with Config(), so the legacy flag path and the
// -config path construct pipelines through the identical Build code —
// existing CI gates stay byte-identical by construction.
type LegacyOptions struct {
	// NX/NY/NZ and PX/PY/PZ size the grid and its decomposition.
	NX, NY, NZ int
	PX, PY, PZ int
	// Steps is the run length; Every the analysis cadence; SubSteps
	// the solver sub-iterations per step.
	Steps, Every, SubSteps int
	// Buckets and Servers size the transit tier.
	Buckets, Servers int
	// StatsMode and VizMode are off|insitu|hybrid|both.
	StatsMode, VizMode string
	// Topology enables the merge-tree analysis; TopologyStreaming
	// selects the streaming in-transit variant; TopologyWorkers > 1
	// the parallel glue.
	Topology          bool
	TopologyStreaming bool
	TopologyWorkers   int
	// FeatureStats/AutoCorr/Contingency/Assess/Tracking toggle the
	// remaining analyses.
	FeatureStats, AutoCorr, Contingency, Assess, Tracking bool
	// Factor is the hybrid viz down-sampling factor.
	Factor int
	// Cameras > 1 renders viz steps from an orbit of N directions.
	Cameras int
	// Seed is the simulation seed.
	Seed int64
	// Journal enables recovery under this directory, checkpointing
	// every CkptEvery steps.
	Journal   string
	CkptEvery int
	// StoreDir enables the Cinema-style image store.
	StoreDir string
}

// Config converts the legacy flag values into the equivalent
// declarative pipeline config, preserving the original registration
// order (stats in-situ, stats hybrid, viz in-situ, viz hybrid,
// topology, featurestats, autocorr, contingency, assess, tracking)
// and parameter values exactly.
func (o LegacyOptions) Config() (*Config, error) {
	t := TenantConfig{
		Sim: SimConfig{
			NX: o.NX, NY: o.NY, NZ: o.NZ,
			PX: o.PX, PY: o.PY, PZ: o.PZ,
			SubSteps: o.SubSteps,
			Seed:     o.Seed,
		},
	}
	add := func(name string, p Params) {
		p.Every = o.Every
		t.Analyses = append(t.Analyses, AnalysisConfig{Analysis: name, Params: p})
	}

	switch o.StatsMode {
	case "insitu":
		add("stats", Params{Placement: PlaceInSitu})
	case "hybrid":
		add("stats", Params{Placement: PlaceHybrid})
	case "both":
		add("stats", Params{Placement: PlaceInSitu})
		add("stats", Params{Placement: PlaceHybrid})
	case "off", "":
	default:
		return nil, fmt.Errorf("unknown -stats mode %q", o.StatsMode)
	}

	cams := 0
	if o.Cameras > 1 {
		cams = o.Cameras
	}
	switch o.VizMode {
	case "insitu":
		add("viz", Params{Placement: PlaceInSitu, Width: 320, Height: 240, Cameras: cams})
	case "hybrid":
		add("viz", Params{Placement: PlaceHybrid, Width: 320, Height: 240, Factor: o.Factor, Cameras: cams})
	case "both":
		add("viz", Params{Placement: PlaceInSitu, Width: 320, Height: 240, Cameras: cams})
		add("viz", Params{Placement: PlaceHybrid, Width: 320, Height: 240, Factor: o.Factor, Cameras: cams})
	case "off", "":
	default:
		return nil, fmt.Errorf("unknown -viz mode %q", o.VizMode)
	}

	if o.Topology {
		if o.TopologyStreaming {
			add("topology", Params{Placement: PlaceInTransit, SimplifyEps: 0.05, FeatureThreshold: 1.0})
		} else {
			add("topology", Params{Placement: PlaceHybrid, SimplifyEps: 0.05, FeatureThreshold: 1.0, Workers: o.TopologyWorkers})
		}
	}
	if o.FeatureStats {
		add("featurestats", Params{Placement: PlaceHybrid, Threshold: 1.0})
	}
	if o.AutoCorr {
		add("autocorr", Params{Placement: PlaceHybrid})
	}
	if o.Contingency {
		add("contingency", Params{Placement: PlaceHybrid})
	}
	if o.Assess {
		add("assess", Params{Placement: PlaceInSitu})
	}
	if o.Tracking {
		add("tracking", Params{Placement: PlaceHybrid, Threshold: 0.05})
	}

	buckets := o.Buckets
	cfg := &Config{
		Name:  "legacy",
		Steps: o.Steps,
		Fabric: FabricConfig{
			DSServers: o.Servers,
			Buckets:   &buckets,
			Net:       NetConfig{Profile: "gemini"},
		},
		Tenants: []TenantConfig{t},
	}
	if o.Journal != "" {
		cfg.Recovery = &RecoveryConfig{Dir: o.Journal, EverySteps: o.CkptEvery}
	}
	if o.StoreDir != "" {
		cfg.Store = &StoreConfig{Dir: o.StoreDir}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}
