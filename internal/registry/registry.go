// Package registry is the runtime-pluggable analysis registry and the
// declarative pipeline-configuration layer above internal/core.
//
// Analyses self-register by name at init() time (Register), each with
// a factory that takes a typed Params bag — placement, cadence,
// shaping factors, camera counts, thresholds — and returns a
// configured core.Analysis. Pipelines are then *declared* rather than
// hand-wired: a JSON config (LoadConfig) names one or more tenants,
// each with its analysis list, placement, codec/overload knobs, and
// store/recovery settings, and Build routes core.Pipeline and
// core.Scheduler construction through the registry. New workloads
// become new configs, not new Go code — the separation SENSEI draws
// between analysis adaptors, bridge code, and runtime backend
// selection from a config file.
//
// Ownership and lifecycle: the package-level registry is append-only
// and process-wide — Register is called from init() functions and
// never unregisters; Lookup/Names/Check/New are safe for concurrent
// use at any time. Built pipelines follow core's lifecycle (build,
// register, Run once); the registry itself holds no per-run state.
package registry

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"insitu/internal/core"
)

// Placement selects where an analysis runs, the paper's central axis:
// fully on the simulation ranks, split across ranks and staging
// buckets, or consumed on the transit tier as payloads stream in.
type Placement string

// The three placements a pipeline config can declare per analysis.
// PlaceHybrid is the paper's default decomposition (a massively
// parallel in-situ stage plus a small in-transit stage); PlaceInSitu
// completes on the primary resource; PlaceInTransit selects streaming
// in-transit variants that consume payloads as transfers complete.
const (
	PlaceInSitu    Placement = "in-situ"
	PlaceHybrid    Placement = "hybrid"
	PlaceInTransit Placement = "in-transit"
)

// Valid reports whether p is one of the three declared placements.
func (p Placement) Valid() bool {
	switch p {
	case PlaceInSitu, PlaceHybrid, PlaceInTransit:
		return true
	}
	return false
}

// Params is the typed parameter bag a factory receives. One struct
// serves every analysis; each factory declares (in its Info) which
// fields it consumes per placement, and any other non-zero field is a
// conflicting-params error — a config cannot silently set a knob the
// analysis ignores. Field semantics follow the core analysis structs;
// zero values mean "use the analysis default".
type Params struct {
	// Placement selects the analysis variant (resolved before the
	// factory runs; always valid and supported inside Build).
	Placement Placement `json:"placement,omitempty"`
	// Every is the cadence in steps (0 = every step).
	Every int `json:"every,omitempty"`
	// Var is the primary variable (renderered scalar, tracked field,
	// contingency X, ...).
	Var string `json:"var,omitempty"`
	// VarY is the secondary variable (conditioned variable, contingency
	// Y).
	VarY string `json:"var_y,omitempty"`
	// Vars lists the summarized variables for the statistics analyses.
	Vars []string `json:"vars,omitempty"`
	// Tag distinguishes multiple simultaneous instances (linked views);
	// it is appended to the analysis name.
	Tag string `json:"tag,omitempty"`
	// Width and Height size rendered frames.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// Factor is the hybrid visualization down-sampling factor (the
	// shaping factor; the paper uses 8).
	Factor int `json:"factor,omitempty"`
	// Cameras renders each due step from an orbit of N view directions
	// (the image database's camera axis; 0/1 = the single default
	// view).
	Cameras int `json:"cameras,omitempty"`
	// AutoRange lets the hybrid renderer steer its transfer function
	// per step from the received blocks' global value range.
	AutoRange bool `json:"auto_range,omitempty"`
	// Threshold defines superlevel-set features (feature statistics,
	// tracking) or the outlier sigma replacement (assess uses Sigma).
	Threshold float64 `json:"threshold,omitempty"`
	// Sigma is the assess & test outlier threshold in standard
	// deviations.
	Sigma float64 `json:"sigma,omitempty"`
	// SimplifyEps prunes topology branches below this persistence.
	SimplifyEps float64 `json:"simplify_eps,omitempty"`
	// FeatureThreshold extracts topology features at this level.
	FeatureThreshold float64 `json:"feature_threshold,omitempty"`
	// Workers > 1 switches the hybrid topology in-transit stage to the
	// parallel hierarchical glue.
	Workers int `json:"workers,omitempty"`
	// Lags are the auto-correlation lags in steps.
	Lags []int `json:"lags,omitempty"`
	// XBins and YBins size the contingency table.
	XBins int `json:"x_bins,omitempty"`
	YBins int `json:"y_bins,omitempty"`
	// FailAttempts is consumed by deliberately failing drill analyses
	// (the tenants scenario's poison route).
	FailAttempts int `json:"fail_attempts,omitempty"`
}

// Factory builds one configured analysis from a validated Params bag.
type Factory func(p Params) (core.Analysis, error)

// Info is everything an analysis registers: which placements it
// supports, which Params fields each placement consumes, an optional
// extra range check, and the factory. Registrations are process-wide
// and permanent; Info values must not be mutated after Register.
type Info struct {
	// Doc is a one-line description surfaced by tooling (pipecheck
	// -list, PIPELINES.md).
	Doc string
	// Placements lists the supported placements. When exactly one is
	// supported it is also the default for configs that omit placement.
	Placements []Placement
	// Params maps each supported placement to the JSON names of the
	// Params fields the factory consumes there. "placement" and
	// "every" are always allowed; any other non-zero field outside the
	// list fails Check with ErrConflictingParams.
	Params map[Placement][]string
	// Check, when non-nil, vets value ranges beyond the generic
	// stray-field check. It must be pure: no side effects, no state.
	Check func(p Params) error
	// Build constructs the analysis. It runs only after Check passed.
	Build Factory
}

// Typed registry errors. Validation wraps them (errors.Is-matchable)
// with the config path that failed.
var (
	// ErrUnknownAnalysis means the config names an analysis nothing
	// registered.
	ErrUnknownAnalysis = errors.New("registry: unknown analysis")
	// ErrBadPlacement means the placement is not one of the three
	// declared ones, is unsupported by the analysis, or was omitted
	// where the analysis supports more than one.
	ErrBadPlacement = errors.New("registry: bad placement")
	// ErrConflictingParams means a config sets a parameter the selected
	// analysis/placement does not consume, or two settings that cannot
	// hold together.
	ErrConflictingParams = errors.New("registry: conflicting params")
	// ErrBadParam means a parameter value is out of range (negative
	// shaping factor, negative cadence, ...).
	ErrBadParam = errors.New("registry: bad param")
	// ErrDuplicateTenant means two tenants share a name.
	ErrDuplicateTenant = errors.New("registry: duplicate tenant")
	// ErrNoTransitFabric means a hybrid or in-transit analysis is
	// declared in a config whose fabric has zero staging buckets.
	ErrNoTransitFabric = errors.New("registry: hybrid analysis without transit fabric")
	// ErrNoTenants means the config declares no tenants at all.
	ErrNoTenants = errors.New("registry: config declares no tenants")
	// ErrNoAnalyses means a tenant declares an empty analysis list.
	ErrNoAnalyses = errors.New("registry: tenant declares no analyses")
)

// registryMu guards the package-level name → Info table.
var (
	registryMu sync.RWMutex
	byName     = make(map[string]Info)
)

// Register adds an analysis to the process-wide registry. It is meant
// to be called from init() functions — each analysis package (or the
// built-in table in this package) self-registers by name. Register
// panics on an empty or duplicate name and on an Info without a Build
// factory or Placements: a broken registration is a programming error,
// not a runtime condition.
func Register(name string, info Info) {
	if name == "" {
		panic("registry: Register with empty name")
	}
	if info.Build == nil {
		panic(fmt.Sprintf("registry: Register(%q) without a Build factory", name))
	}
	if len(info.Placements) == 0 {
		panic(fmt.Sprintf("registry: Register(%q) without Placements", name))
	}
	for _, pl := range info.Placements {
		if !pl.Valid() {
			panic(fmt.Sprintf("registry: Register(%q) with invalid placement %q", name, pl))
		}
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := byName[name]; dup {
		panic(fmt.Sprintf("registry: duplicate Register(%q)", name))
	}
	byName[name] = info
}

// Lookup returns the registration for name.
func Lookup(name string) (Info, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	info, ok := byName[name]
	return info, ok
}

// Names returns every registered analysis name, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(byName))
	for name := range byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultPlacement returns the placement a config may omit for name:
// the single supported placement, or "" when the analysis supports
// several and the config must choose.
func DefaultPlacement(name string) Placement {
	info, ok := Lookup(name)
	if !ok || len(info.Placements) != 1 {
		return ""
	}
	return info.Placements[0]
}

// Check validates a (name, params) pair without building anything:
// the analysis must be registered, the placement supported, every
// non-zero parameter consumed by that placement, and the registered
// range check satisfied. It is pure — safe to run from Validate on a
// config that will never execute.
func Check(name string, p Params) error {
	info, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q (registered: %s)", ErrUnknownAnalysis, name, strings.Join(Names(), ", "))
	}
	if !p.Placement.Valid() {
		return fmt.Errorf("%w: %q for analysis %q", ErrBadPlacement, p.Placement, name)
	}
	supported := false
	for _, pl := range info.Placements {
		if pl == p.Placement {
			supported = true
			break
		}
	}
	if !supported {
		return fmt.Errorf("%w: analysis %q does not support placement %q (supported: %v)",
			ErrBadPlacement, name, p.Placement, info.Placements)
	}
	if stray := strayParams(p, info.Params[p.Placement]); len(stray) > 0 {
		return fmt.Errorf("%w: analysis %q placement %q does not consume %s",
			ErrConflictingParams, name, p.Placement, strings.Join(stray, ", "))
	}
	if p.Every < 0 {
		return fmt.Errorf("%w: analysis %q: negative cadence %d", ErrBadParam, name, p.Every)
	}
	if info.Check != nil {
		if err := info.Check(p); err != nil {
			return err
		}
	}
	return nil
}

// New checks the (name, params) pair and builds the configured
// analysis through the registered factory.
func New(name string, p Params) (core.Analysis, error) {
	if err := Check(name, p); err != nil {
		return nil, err
	}
	info, _ := Lookup(name)
	return info.Build(p)
}

// strayParams returns the JSON names of non-zero Params fields outside
// the allowed set. "placement" and "every" are consumed by the
// registry itself and always allowed.
func strayParams(p Params, allowed []string) []string {
	rv := reflect.ValueOf(p)
	rt := rv.Type()
	var stray []string
	for i := 0; i < rt.NumField(); i++ {
		name := jsonName(rt.Field(i))
		if name == "placement" || name == "every" {
			continue
		}
		if rv.Field(i).IsZero() {
			continue
		}
		ok := false
		for _, a := range allowed {
			if a == name {
				ok = true
				break
			}
		}
		if !ok {
			stray = append(stray, name)
		}
	}
	return stray
}

// jsonName extracts a struct field's JSON key.
func jsonName(f reflect.StructField) string {
	tag := f.Tag.Get("json")
	if tag == "" {
		return f.Name
	}
	if i := strings.IndexByte(tag, ','); i >= 0 {
		tag = tag[:i]
	}
	return tag
}
