package registry_test

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"insitu/internal/core"
	"insitu/internal/registry"
)

// mustPanic asserts fn panics; broken registrations are programming
// errors and Register is documented to refuse them loudly.
func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", name)
		}
	}()
	fn()
}

func TestRegisterRejectsBrokenRegistrations(t *testing.T) {
	okInfo := registry.Info{
		Placements: []registry.Placement{registry.PlaceInSitu},
		Build: func(registry.Params) (core.Analysis, error) {
			return &core.StatsInSitu{}, nil
		},
	}
	mustPanic(t, "empty name", func() { registry.Register("", okInfo) })
	mustPanic(t, "duplicate name", func() { registry.Register("stats", okInfo) })
	mustPanic(t, "nil factory", func() {
		registry.Register("t-nilbuild", registry.Info{Placements: okInfo.Placements})
	})
	mustPanic(t, "no placements", func() {
		registry.Register("t-noplace", registry.Info{Build: okInfo.Build})
	})
	mustPanic(t, "invalid placement", func() {
		registry.Register("t-badplace", registry.Info{
			Placements: []registry.Placement{"sideways"},
			Build:      okInfo.Build,
		})
	})
}

// TestOpenRegistration exercises the extension point the tenants
// scenario uses for its poison route: any package may register an
// analysis and configs resolve it like a built-in.
func TestOpenRegistration(t *testing.T) {
	registry.Register("t-custom", registry.Info{
		Doc:        "test-only analysis",
		Placements: []registry.Placement{registry.PlaceInSitu},
		Params: map[registry.Placement][]string{
			registry.PlaceInSitu: {"var"},
		},
		Build: func(p registry.Params) (core.Analysis, error) {
			return &core.AssessTestInSitu{Var: p.Var, EveryN: p.Every}, nil
		},
	})
	if _, ok := registry.Lookup("t-custom"); !ok {
		t.Fatal("registered analysis not found by Lookup")
	}
	a, err := registry.New("t-custom", registry.Params{
		Placement: registry.PlaceInSitu, Var: "T", Every: 3,
	})
	if err != nil {
		t.Fatalf("New(t-custom): %v", err)
	}
	if a.Every() != 3 {
		t.Fatalf("Every() = %d, want 3", a.Every())
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := registry.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, want := range []string{
		"stats", "viz", "topology", "featurestats",
		"autocorr", "contingency", "assess", "tracking",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("built-in %q missing from Names(): %v", want, names)
		}
	}
}

func TestDefaultPlacement(t *testing.T) {
	// assess supports exactly one placement: configs may omit it.
	if got := registry.DefaultPlacement("assess"); got != registry.PlaceInSitu {
		t.Errorf("DefaultPlacement(assess) = %q, want %q", got, registry.PlaceInSitu)
	}
	// viz supports two: the config must choose.
	if got := registry.DefaultPlacement("viz"); got != "" {
		t.Errorf("DefaultPlacement(viz) = %q, want \"\"", got)
	}
	if got := registry.DefaultPlacement("no-such-analysis"); got != "" {
		t.Errorf("DefaultPlacement(unknown) = %q, want \"\"", got)
	}
}

func TestCheckTypedErrors(t *testing.T) {
	cases := []struct {
		name     string
		analysis string
		params   registry.Params
		want     error
	}{
		{"unknown analysis", "warp-drive",
			registry.Params{Placement: registry.PlaceInSitu},
			registry.ErrUnknownAnalysis},
		{"invalid placement", "viz",
			registry.Params{Placement: "everywhere"},
			registry.ErrBadPlacement},
		{"unsupported placement", "topology",
			registry.Params{Placement: registry.PlaceInSitu},
			registry.ErrBadPlacement},
		{"omitted placement with several supported", "viz",
			registry.Params{},
			registry.ErrBadPlacement},
		{"stray param for placement", "viz",
			registry.Params{Placement: registry.PlaceInSitu, Factor: 2},
			registry.ErrConflictingParams},
		{"stray param for analysis", "stats",
			registry.Params{Placement: registry.PlaceHybrid, Width: 64},
			registry.ErrConflictingParams},
		{"negative cadence", "stats",
			registry.Params{Placement: registry.PlaceHybrid, Every: -1},
			registry.ErrBadParam},
		{"negative shaping factor", "viz",
			registry.Params{Placement: registry.PlaceHybrid, Factor: -4},
			registry.ErrBadParam},
		{"negative sigma", "assess",
			registry.Params{Placement: registry.PlaceInSitu, Sigma: -1},
			registry.ErrBadParam},
		{"non-positive lag", "autocorr",
			registry.Params{Placement: registry.PlaceHybrid, Lags: []int{2, 0}},
			registry.ErrBadParam},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := registry.Check(tc.analysis, tc.params)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Check(%q, %+v) = %v, want errors.Is %v",
					tc.analysis, tc.params, err, tc.want)
			}
		})
	}
}

func TestCheckAcceptsValidParams(t *testing.T) {
	cases := []struct {
		analysis string
		params   registry.Params
	}{
		{"stats", registry.Params{Placement: registry.PlaceInSitu, Vars: []string{"T"}}},
		{"viz", registry.Params{Placement: registry.PlaceHybrid, Factor: 8, AutoRange: true}},
		{"topology", registry.Params{Placement: registry.PlaceHybrid, Workers: 4, SimplifyEps: 0.05}},
		{"topology", registry.Params{Placement: registry.PlaceInTransit, FeatureThreshold: 1}},
		{"assess", registry.Params{Placement: registry.PlaceInSitu, Var: "T", Sigma: 3}},
		{"autocorr", registry.Params{Placement: registry.PlaceHybrid, Lags: []int{1, 2, 4}}},
		{"contingency", registry.Params{Placement: registry.PlaceHybrid, Var: "T", VarY: "P", XBins: 8, YBins: 8}},
	}
	for _, tc := range cases {
		if err := registry.Check(tc.analysis, tc.params); err != nil {
			t.Errorf("Check(%q, %+v): unexpected error %v", tc.analysis, tc.params, err)
		}
	}
}

// TestNewBuildsConfiguredVariants pins the placement → concrete-type
// mapping the factories implement, including the viz geometry defaults.
func TestNewBuildsConfiguredVariants(t *testing.T) {
	build := func(name string, p registry.Params) core.Analysis {
		t.Helper()
		a, err := registry.New(name, p)
		if err != nil {
			t.Fatalf("New(%q, %+v): %v", name, p, err)
		}
		return a
	}

	if _, ok := build("stats", registry.Params{Placement: registry.PlaceInSitu}).(*core.StatsInSitu); !ok {
		t.Error("stats in-situ did not build *core.StatsInSitu")
	}
	if _, ok := build("stats", registry.Params{Placement: registry.PlaceHybrid}).(*core.StatsHybrid); !ok {
		t.Error("stats hybrid did not build *core.StatsHybrid")
	}
	if _, ok := build("viz", registry.Params{Placement: registry.PlaceInSitu}).(*core.VizInSitu); !ok {
		t.Error("viz in-situ did not build *core.VizInSitu")
	}
	if _, ok := build("viz", registry.Params{Placement: registry.PlaceHybrid}).(*core.VizHybrid); !ok {
		t.Error("viz hybrid did not build *core.VizHybrid")
	}
	if _, ok := build("topology", registry.Params{Placement: registry.PlaceHybrid}).(*core.TopologyHybrid); !ok {
		t.Error("topology hybrid did not build *core.TopologyHybrid")
	}
	if _, ok := build("topology", registry.Params{Placement: registry.PlaceInTransit}).(*core.TopologyStreaming); !ok {
		t.Error("topology in-transit did not build *core.TopologyStreaming")
	}

	// The cadence threads through every factory.
	if got := build("tracking", registry.Params{Placement: registry.PlaceHybrid, Every: 5}).Every(); got != 5 {
		t.Errorf("tracking Every() = %d, want 5", got)
	}

	// Tags distinguish simultaneous instances by name.
	a := build("viz", registry.Params{Placement: registry.PlaceHybrid, Tag: "side"})
	b := build("viz", registry.Params{Placement: registry.PlaceHybrid})
	if a.Name() == b.Name() {
		t.Errorf("tagged viz shares name %q with untagged viz", a.Name())
	}
	if !strings.Contains(a.Name(), "side") {
		t.Errorf("tagged viz name %q does not carry the tag", a.Name())
	}
}
