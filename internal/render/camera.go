package render

import (
	"fmt"
	"math"
)

// DefaultDir is the framework's default view direction, shared by the
// viz analyses and the orbit's first camera so a one-camera orbit
// reproduces the single-view render exactly.
var DefaultDir = [3]float64{0.45, 0.3, 1}

// CameraName returns the canonical name of orbit camera i ("cam00",
// "cam01", ...), the camera axis of the image store's Cinema-style
// (variable × timestep × camera) spec.
func CameraName(i int) string { return fmt.Sprintf("cam%02d", i) }

// OrbitDirs returns n deterministic view directions orbiting the
// domain: the default direction rotated about the world Y axis in
// equal azimuth increments, elevation fixed. OrbitDirs(1) is the
// default direction alone, so single-camera runs are unchanged.
func OrbitDirs(n int) [][3]float64 {
	if n < 1 {
		n = 1
	}
	out := make([][3]float64, n)
	for i := range out {
		az := 2 * math.Pi * float64(i) / float64(n)
		s, c := math.Sin(az), math.Cos(az)
		out[i] = [3]float64{
			DefaultDir[0]*c + DefaultDir[2]*s,
			DefaultDir[1],
			DefaultDir[2]*c - DefaultDir[0]*s,
		}
	}
	return out
}

// Frame is one named camera view of a step's render.
type Frame struct {
	Cam string
	Img *Image
}

// FrameSet is a multi-camera render of one step — what the viz
// analyses return when an orbit (Cameras > 1) is configured. Frames
// are ordered by camera index.
type FrameSet struct {
	Frames []Frame
}
