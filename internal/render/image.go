// Package render implements the paper's two visualization algorithms:
// a fully in-situ parallel volume renderer (each rank ray-casts its
// full-resolution block; partial images composite in visibility order)
// and a hybrid in-situ/in-transit renderer (each rank down-samples its
// block in-situ; a single serial in-transit process assembles a block
// lookup table recording the upper and lower bounds of each block and
// ray-casts the down-sampled volume without any visibility sort or
// volume reconstruction).
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
)

// Image is a float RGBA framebuffer with premultiplied alpha, the
// intermediate form partial renders composite in.
type Image struct {
	W, H int
	Pix  []float64 // 4 floats per pixel: R, G, B, A (premultiplied)
}

// NewImage allocates a transparent framebuffer.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, 4*w*h)}
}

// At returns the premultiplied RGBA at (x, y).
func (im *Image) At(x, y int) (r, g, b, a float64) {
	o := 4 * (y*im.W + x)
	return im.Pix[o], im.Pix[o+1], im.Pix[o+2], im.Pix[o+3]
}

// Set stores premultiplied RGBA at (x, y).
func (im *Image) Set(x, y int, r, g, b, a float64) {
	o := 4 * (y*im.W + x)
	im.Pix[o], im.Pix[o+1], im.Pix[o+2], im.Pix[o+3] = r, g, b, a
}

// Under composites src behind im in place (both premultiplied, same
// dimensions): im = im OVER src. Folding images front-to-back with
// Under is the standard ordered compositing step.
func (im *Image) Under(src *Image) error {
	if src.W != im.W || src.H != im.H {
		return fmt.Errorf("render: composite dimension mismatch %dx%d vs %dx%d", src.W, src.H, im.W, im.H)
	}
	for i := 0; i < len(im.Pix); i += 4 {
		da := im.Pix[i+3]
		for c := 0; c < 4; c++ {
			im.Pix[i+c] += (1 - da) * src.Pix[i+c]
		}
	}
	return nil
}

// CompositeFrontToBack folds an ordered list of partial images
// (front-most first) into one: the paper's in-situ renderer composites
// per-block images in the visibility order of their blocks.
func CompositeFrontToBack(parts []*Image) (*Image, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("render: nothing to composite")
	}
	out := GetImage(parts[0].W, parts[0].H)
	for _, p := range parts {
		if err := out.Under(p); err != nil {
			PutImage(out)
			return nil, err
		}
	}
	return out, nil
}

// ToNRGBA converts to an 8-bit image over a background color.
func (im *Image) ToNRGBA(bg color.NRGBA) *image.NRGBA {
	out := image.NewNRGBA(image.Rect(0, 0, im.W, im.H))
	br := float64(bg.R) / 255
	bgc := float64(bg.G) / 255
	bb := float64(bg.B) / 255
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b, a := im.At(x, y)
			r += (1 - a) * br
			g += (1 - a) * bgc
			b += (1 - a) * bb
			out.SetNRGBA(x, y, color.NRGBA{R: to8(r), G: to8(g), B: to8(b), A: 255})
		}
	}
	return out
}

func to8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}

// SavePNG writes the image to path over a black background.
func (im *Image) SavePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: create %s: %w", path, err)
	}
	defer f.Close()
	if err := png.Encode(f, im.ToNRGBA(color.NRGBA{A: 255})); err != nil {
		return fmt.Errorf("render: encode %s: %w", path, err)
	}
	return nil
}

// MeanAbsDiff returns the mean absolute per-channel difference between
// two images, the fidelity metric the down-sampling ablation reports.
func MeanAbsDiff(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("render: image dimension mismatch")
	}
	sum := 0.0
	for i := range a.Pix {
		d := a.Pix[i] - b.Pix[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(a.Pix)), nil
}
