package render

import (
	"fmt"
	"math"

	"insitu/internal/bufpool"
	"insitu/internal/grid"
)

// BlockTable is the in-transit side of the hybrid visualization
// algorithm: "a single, serial in-transit node receives all blocks of
// down-sampled data and generates a look-up table that records the
// upper and lower bounds of each block to encode their spatial
// relationship", used to identify voxel positions during ray casting
// without a visibility sort or volume reconstruction.
type BlockTable struct {
	entries []tableEntry
	bounds  grid.Box
	last    int // cache of the most recently hit block (ray locality)
}

// tableEntry is one received down-sampled block: its spatial bounds
// (in down-sampled index space) plus a value range usable for
// empty-space skipping.
type tableEntry struct {
	box        grid.Box
	minV, maxV float64
	field      *grid.Field
}

// NewBlockTable creates an empty table.
func NewBlockTable() *BlockTable { return &BlockTable{last: -1} }

// Add registers one rank's down-sampled block.
func (bt *BlockTable) Add(f *grid.Field) {
	lo, hi := f.MinMax()
	bt.entries = append(bt.entries, tableEntry{box: f.Box, minV: lo, maxV: hi, field: f})
	bt.bounds = bt.bounds.Union(f.Box)
}

// AddMarshalled decodes and registers a block transported as bytes.
func (bt *BlockTable) AddMarshalled(p []byte) error {
	f, err := grid.UnmarshalField(p)
	if err != nil {
		return fmt.Errorf("render: block table: %w", err)
	}
	bt.Add(f)
	return nil
}

// Len returns the number of registered blocks.
func (bt *BlockTable) Len() int { return len(bt.entries) }

// Bounds returns the union box of all registered blocks.
func (bt *BlockTable) Bounds() grid.Box { return bt.bounds }

// ValueRange returns the global scalar extrema across all registered
// blocks, which the table records per block anyway for empty-space
// skipping. An empty table returns (+Inf, -Inf).
func (bt *BlockTable) ValueRange() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := range bt.entries {
		if bt.entries[i].minV < lo {
			lo = bt.entries[i].minV
		}
		if bt.entries[i].maxV > hi {
			hi = bt.entries[i].maxV
		}
	}
	return
}

// locate returns the index of the block containing continuous point p,
// or -1. The last-hit cache (per cursor, so concurrent row bands never
// share it) makes the common case O(1) because ray samples are
// spatially coherent.
func (bt *BlockTable) locate(last *int, x, y, z float64) int {
	p := [3]float64{x, y, z}
	if *last >= 0 && contains(bt.entries[*last].box, p) {
		return *last
	}
	for i := range bt.entries {
		if contains(bt.entries[i].box, p) {
			*last = i
			return i
		}
	}
	return -1
}

// Sample returns the scalar at a continuous position in down-sampled
// index space, interpolating within the containing block (clamped at
// block faces: the down-sampled blocks carry no ghost layers, which is
// part of the fidelity trade-off the hybrid algorithm accepts).
// Sample mutates the table's shared last-hit cache and is therefore
// not safe for concurrent use; the renderer obtains an independent
// tableCursor per row band instead.
func (bt *BlockTable) Sample(x, y, z float64) float64 {
	i := bt.locate(&bt.last, x, y, z)
	if i < 0 {
		return math.Inf(-1) // outside every block: transparent
	}
	return bt.entries[i].field.Sample(x, y, z)
}

// tableCursor is a per-band view of a BlockTable with a private
// last-hit cache, handed to each rendering worker.
type tableCursor struct {
	bt   *BlockTable
	last int
}

// Sample implements sampler over the cursor's private cache.
func (c *tableCursor) Sample(x, y, z float64) float64 {
	i := c.bt.locate(&c.last, x, y, z)
	if i < 0 {
		return math.Inf(-1)
	}
	return c.bt.entries[i].field.Sample(x, y, z)
}

// bandSampler hands each rendering row band an independent cursor.
func (bt *BlockTable) bandSampler() sampler { return &tableCursor{bt: bt, last: -1} }

// RenderTable runs the serial in-transit ray caster over the assembled
// table. The caller passes a Renderer framed for the *down-sampled*
// index space (Global = table bounds).
func (r *Renderer) RenderTable(bt *BlockTable) (*Image, error) {
	if bt.Len() == 0 {
		return nil, fmt.Errorf("render: empty block table")
	}
	return r.renderWith(bt, bt.bounds), nil
}

// DownsampleForTransit is the in-situ stage of the hybrid algorithm:
// restrict the rank's owned block to every factor-th grid point and
// marshal it for the staging transfer. It returns the payload and its
// size in bytes. The payload buffer comes from bufpool (the transfer
// path recycles it once the staging bucket has pulled the data) and
// the down-sample runs in one pass without the intermediate Extract.
func DownsampleForTransit(f *grid.Field, owned grid.Box, factor int) ([]byte, int) {
	ds := f.DownsampleBox(owned, factor)
	p := ds.AppendMarshal(bufpool.Get(ds.MarshalSize())[:0])
	return p, len(p)
}
