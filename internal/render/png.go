package render

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/adler32"
	"hash/crc32"
	"image/color"
	"io"
)

// EncodePNG writes the image as a PNG (8-bit RGBA over a black
// background, like SavePNG) with a fully deterministic byte layout:
// filter type None on every scanline and a zlib stream of stored
// (uncompressed) deflate blocks. Unlike image/png, whose compressed
// output may change between Go releases, this encoder's bytes depend
// only on the pixel values — so the content digests the image store
// derives from encoded frames are stable across builds, re-encodes,
// and machines, and a re-run of a deterministic pipeline reproduces
// them bit for bit.
func (im *Image) EncodePNG(w io.Writer) error {
	if im.W < 1 || im.H < 1 {
		return fmt.Errorf("render: cannot encode empty %dx%d image", im.W, im.H)
	}
	if _, err := w.Write([]byte{137, 'P', 'N', 'G', '\r', '\n', 26, '\n'}); err != nil {
		return err
	}
	var ihdr [13]byte
	binary.BigEndian.PutUint32(ihdr[0:], uint32(im.W))
	binary.BigEndian.PutUint32(ihdr[4:], uint32(im.H))
	ihdr[8] = 8 // bit depth
	ihdr[9] = 6 // color type RGBA
	// ihdr[10:13]: compression 0, filter 0, interlace 0
	if err := writeChunk(w, "IHDR", ihdr[:]); err != nil {
		return err
	}
	if err := writeChunk(w, "IDAT", im.idat()); err != nil {
		return err
	}
	return writeChunk(w, "IEND", nil)
}

// PNG returns the deterministic PNG encoding as a byte slice.
func (im *Image) PNG() ([]byte, error) {
	var buf bytes.Buffer
	if err := im.EncodePNG(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// idat builds the single IDAT payload: a zlib stream (header, stored
// deflate blocks, adler32 trailer) over the filtered scanlines.
func (im *Image) idat() []byte {
	nr := im.ToNRGBA(color.NRGBA{A: 255})
	stride := 1 + 4*im.W // filter byte + RGBA
	raw := make([]byte, im.H*stride)
	for y := 0; y < im.H; y++ {
		row := raw[y*stride:]
		row[0] = 0 // filter None
		copy(row[1:stride], nr.Pix[y*nr.Stride:y*nr.Stride+4*im.W])
	}
	// Stored deflate blocks hold at most 65535 bytes each.
	nBlocks := (len(raw) + 0xffff - 1) / 0xffff
	out := make([]byte, 0, 2+len(raw)+5*nBlocks+4)
	out = append(out, 0x78, 0x01) // zlib header: deflate, 32K window, no dict
	for off := 0; off < len(raw); off += 0xffff {
		end := off + 0xffff
		final := byte(0)
		if end >= len(raw) {
			end = len(raw)
			final = 1
		}
		n := end - off
		out = append(out, final, byte(n), byte(n>>8), byte(^n), byte(^n>>8))
		out = append(out, raw[off:end]...)
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], adler32.Checksum(raw))
	return append(out, sum[:]...)
}

// writeChunk writes one PNG chunk: length, type, data, CRC32 over
// type+data.
func writeChunk(w io.Writer, typ string, data []byte) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(data)))
	copy(hdr[4:], typ)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:])
	crc.Write(data)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}
