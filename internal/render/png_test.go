package render

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"image/color"
	"image/png"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testImage builds a deterministic gradient-with-alpha test frame.
func testImage(w, h int) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a := float64(x+y) / float64(w+h-2)
			im.Set(x, y, a*float64(x)/float64(w-1), a*float64(y)/float64(h-1), a*0.25, a)
		}
	}
	return im
}

// TestEncodePNGGolden pins the encoder's exact bytes: the store's
// content digests are derived from them, so any byte drift would
// invalidate every previously stored frame address.
func TestEncodePNGGolden(t *testing.T) {
	im := testImage(31, 17) // odd sizes exercise row stride edges
	got, err := im.PNG()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "gradient.png")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("PNG bytes drifted from golden: %d bytes vs %d, digest %s vs %s",
			len(got), len(want), digest(got), digest(want))
	}
}

func digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// TestEncodePNGDeterministic: re-encoding the same image must produce
// identical bytes (and so an identical content digest).
func TestEncodePNGDeterministic(t *testing.T) {
	im := testImage(64, 48)
	a, err := im.PNG()
	if err != nil {
		t.Fatal(err)
	}
	b, err := im.PNG()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodes of the same image differ")
	}
}

// TestEncodePNGDecodes: the hand-rolled stream must be a valid PNG
// whose pixels match ToNRGBA — decoded by the stdlib as a cross-check.
func TestEncodePNGDecodes(t *testing.T) {
	im := testImage(33, 9)
	raw, err := im.PNG()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := png.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("stdlib decode: %v", err)
	}
	b := dec.Bounds()
	if b.Dx() != im.W || b.Dy() != im.H {
		t.Fatalf("decoded size %dx%d, want %dx%d", b.Dx(), b.Dy(), im.W, im.H)
	}
	want := im.ToNRGBA(color.NRGBA{A: 255})
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r1, g1, b1, a1 := dec.At(x, y).RGBA()
			r2, g2, b2, a2 := want.At(x, y).RGBA()
			if r1 != r2 || g1 != g2 || b1 != b2 || a1 != a2 {
				t.Fatalf("pixel (%d,%d): got %v,%v,%v,%v want %v,%v,%v,%v",
					x, y, r1, g1, b1, a1, r2, g2, b2, a2)
			}
		}
	}
}

func TestEncodePNGEmpty(t *testing.T) {
	im := &Image{}
	if err := im.EncodePNG(&bytes.Buffer{}); err == nil {
		t.Fatal("expected error for empty image")
	}
}

func TestOrbitDirs(t *testing.T) {
	one := OrbitDirs(1)
	if len(one) != 1 || one[0] != DefaultDir {
		t.Fatalf("OrbitDirs(1) = %v, want the default direction %v", one, DefaultDir)
	}
	dirs := OrbitDirs(6)
	if len(dirs) != 6 {
		t.Fatalf("got %d dirs", len(dirs))
	}
	for i, d := range dirs {
		if math.Abs(norm(d)-norm(DefaultDir)) > 1e-12 {
			t.Fatalf("camera %d: orbit changed the direction's length", i)
		}
		if d[1] != DefaultDir[1] {
			t.Fatalf("camera %d: elevation drifted", i)
		}
	}
	if OrbitDirs(6)[3] != dirs[3] {
		t.Fatal("orbit not deterministic")
	}
	if CameraName(3) != "cam03" || CameraName(11) != "cam11" {
		t.Fatalf("unexpected camera names %q %q", CameraName(3), CameraName(11))
	}
}

func TestImagePoolReuseAndLedger(t *testing.T) {
	before := ImagesOutstanding()
	im := GetImage(8, 4)
	if len(im.Pix) != 8*4*4 {
		t.Fatalf("got %d floats", len(im.Pix))
	}
	for i := range im.Pix {
		if im.Pix[i] != 0 {
			t.Fatal("pooled image not zeroed")
		}
	}
	im.Set(1, 1, 1, 1, 1, 1)
	if ImagesOutstanding() != before+1 {
		t.Fatalf("outstanding %d, want %d", ImagesOutstanding(), before+1)
	}
	PutImage(im)
	if ImagesOutstanding() != before {
		t.Fatalf("outstanding %d after Put, want %d", ImagesOutstanding(), before)
	}
	// A recycled buffer must come back zeroed.
	im2 := GetImage(8, 4)
	for i := range im2.Pix {
		if im2.Pix[i] != 0 {
			t.Fatal("recycled image not zeroed")
		}
	}
	PutImage(im2)
	PutImage(nil) // must be a no-op
	if ImagesOutstanding() != before {
		t.Fatalf("outstanding %d after nil Put, want %d", ImagesOutstanding(), before)
	}
}
