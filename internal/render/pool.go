package render

import (
	"sync"
	"sync/atomic"
)

// Framebuffer pool: every render allocates its *Image here, so
// steady-state timesteps reuse the same float buffers instead of
// allocating W×H×4 float64s per partial frame per rank per step.
//
// Ownership rule (the same linear rule as bufpool): an image obtained
// from GetImage is owned by its holder until handed to PutImage, after
// which it must not be touched. Frames that escape to callers (run
// reports, returned composites) are simply never Put — the pool does
// not require it — but the frame lifecycle under an image store
// recycles every frame exactly once, and ImagesOutstanding lets leak
// gates assert that the Get/Put ledger balances.
var (
	imgPool        sync.Pool
	imgOutstanding atomic.Int64
)

// GetImage returns a transparent (zeroed) framebuffer, reusing a
// pooled buffer when one of sufficient capacity is available.
func GetImage(w, h int) *Image {
	imgOutstanding.Add(1)
	n := 4 * w * h
	if v := imgPool.Get(); v != nil {
		im := v.(*Image)
		if cap(im.Pix) >= n {
			im.W, im.H = w, h
			im.Pix = im.Pix[:n]
			clear(im.Pix)
			return im
		}
	}
	return &Image{W: w, H: h, Pix: make([]float64, n)}
}

// PutImage recycles a framebuffer. The caller must not use im
// afterwards, and must not Put the same image twice.
func PutImage(im *Image) {
	if im == nil {
		return
	}
	imgOutstanding.Add(-1)
	imgPool.Put(im)
}

// ImagesOutstanding returns GetImage calls minus PutImage calls — the
// number of pool-tracked frames currently alive. Leak regression tests
// snapshot it around a store-enabled run and require a zero delta.
func ImagesOutstanding() int64 { return imgOutstanding.Load() }
