package render

import (
	"fmt"
	"math"
	"sort"

	"insitu/internal/grid"
	"insitu/internal/parallel"
)

// Renderer holds the shared view parameters of one rendering
// configuration. Rays are orthographic and sample positions are
// anchored globally (per pixel, not per block), so per-block partial
// renders composited in visibility order reproduce the serial render.
type Renderer struct {
	Width, Height int
	TF            *TransferFunc
	Dir           [3]float64 // view direction (into the screen)
	Up            [3]float64 // up hint
	Step          float64    // sampling distance along the ray
	Global        grid.Box   // full domain, defines the camera framing
	// Workers bounds the ray-casting worker pool: 0 selects
	// GOMAXPROCS, 1 forces the serial path. Every pixel is an
	// independent ray, so the parallel render is bitwise identical to
	// the serial one at any width.
	Workers int
}

// NewRenderer validates and normalizes the configuration.
func NewRenderer(w, h int, tf *TransferFunc, dir, up [3]float64, step float64, global grid.Box) (*Renderer, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("render: invalid image size %dx%d", w, h)
	}
	if tf == nil {
		return nil, fmt.Errorf("render: transfer function required")
	}
	if step <= 0 {
		return nil, fmt.Errorf("render: step must be positive")
	}
	if norm(dir) == 0 {
		return nil, fmt.Errorf("render: view direction must be nonzero")
	}
	if global.Empty() {
		return nil, fmt.Errorf("render: empty global box")
	}
	r := &Renderer{Width: w, Height: h, TF: tf, Dir: normalize(dir), Up: up, Step: step, Global: global}
	if norm(cross(r.Dir, r.Up)) < 1e-9 {
		// Up parallel to dir: pick any perpendicular.
		r.Up = [3]float64{0, 1, 0}
		if norm(cross(r.Dir, r.Up)) < 1e-9 {
			r.Up = [3]float64{1, 0, 0}
		}
	}
	return r, nil
}

func norm(v [3]float64) float64 {
	return math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
}

func normalize(v [3]float64) [3]float64 {
	n := norm(v)
	return [3]float64{v[0] / n, v[1] / n, v[2] / n}
}

func cross(a, b [3]float64) [3]float64 {
	return [3]float64{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
}

func dot(a, b [3]float64) float64 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }

// camera returns the orthographic basis: image-plane axes, center and
// half-extent.
func (r *Renderer) camera() (right, up [3]float64, center [3]float64, radius float64) {
	right = normalize(cross(r.Dir, r.Up))
	up = cross(right, r.Dir)
	d := r.Global.Dims()
	center = [3]float64{
		float64(r.Global.Lo[0]) + float64(d[0]-1)/2,
		float64(r.Global.Lo[1]) + float64(d[1]-1)/2,
		float64(r.Global.Lo[2]) + float64(d[2]-1)/2,
	}
	radius = 0.5 * math.Sqrt(float64(d[0]*d[0]+d[1]*d[1]+d[2]*d[2]))
	return
}

// contains reports whether continuous point p lies in the half-open
// box (used to partition samples among blocks without double
// counting).
func contains(b grid.Box, p [3]float64) bool {
	for d := 0; d < 3; d++ {
		if p[d] < float64(b.Lo[d]) || p[d] >= float64(b.Hi[d]) {
			return false
		}
	}
	return true
}

// sampler abstracts the scalar source a render draws from (a single
// field, or the in-transit block table).
type sampler interface {
	Sample(x, y, z float64) float64
}

// bandSampler is implemented by samplers whose Sample carries mutable
// per-ray state (the block table's last-hit cache): renderWith asks
// for one independent view per row band so bands never share state.
type bandSampler interface {
	bandSampler() sampler
}

// pool returns the worker pool the renderer casts rays with.
func (r *Renderer) pool() *parallel.Pool {
	if r.Workers == 0 {
		return parallel.Default
	}
	return parallel.New(r.Workers)
}

// renderWith casts all rays, accumulating only samples whose position
// lies inside clip. Sample positions along a ray are t = k*Step from
// the globally anchored ray origin, identical regardless of clip, so
// partial block renders compose exactly. A slab test restricts each
// ray's march to the clip box's parametric interval; the exact
// half-open containment check still guards every sample, so clipping
// is purely an optimization.
//
// The image is split into contiguous row bands casted concurrently by
// the worker pool. Rays are mutually independent and each band writes
// a disjoint pixel range, so the result is bitwise identical to the
// serial render at any pool width; compositing order is untouched
// because parallelism never crosses an image boundary.
func (r *Renderer) renderWith(src sampler, clip grid.Box) *Image {
	img := GetImage(r.Width, r.Height)
	right, up, center, radius := r.camera()
	tMax := 2 * radius
	r.pool().ForBlocks(r.Height, func(_, loRow, hiRow int) {
		band := src
		if bs, ok := src.(bandSampler); ok {
			band = bs.bandSampler()
		}
		r.renderRows(band, clip, img, right, up, center, radius, tMax, loRow, hiRow)
	})
	return img
}

// renderRows casts the rays of rows [loRow, hiRow).
func (r *Renderer) renderRows(src sampler, clip grid.Box, img *Image, right, up, center [3]float64, radius, tMax float64, loRow, hiRow int) {
	for py := loRow; py < hiRow; py++ {
		for px := 0; px < r.Width; px++ {
			sx := (float64(px)+0.5)/float64(r.Width) - 0.5
			sy := 0.5 - (float64(py)+0.5)/float64(r.Height)
			var origin [3]float64
			for d := 0; d < 3; d++ {
				origin[d] = center[d] + 2*radius*(sx*right[d]+sy*up[d]) - radius*r.Dir[d]
			}
			tEnter, tExit, hit := raySlab(origin, r.Dir, clip, 0, tMax)
			if !hit {
				continue
			}
			// First global sample position at or after entry.
			k0 := math.Ceil(tEnter / r.Step)
			if k0 < 0 {
				k0 = 0
			}
			var cr, cg, cb, ca float64
			for t := k0 * r.Step; t <= tExit && t <= tMax; t += r.Step {
				if ca >= 0.999 {
					break // early ray termination
				}
				p := [3]float64{
					origin[0] + t*r.Dir[0],
					origin[1] + t*r.Dir[1],
					origin[2] + t*r.Dir[2],
				}
				if !contains(clip, p) {
					continue
				}
				v := src.Sample(p[0], p[1], p[2])
				sr, sg, sb, sa := r.TF.Lookup(v)
				if sa <= 0 {
					continue
				}
				alpha := 1 - math.Pow(1-sa, r.Step)
				w := (1 - ca) * alpha
				cr += w * sr
				cg += w * sg
				cb += w * sb
				ca += w
			}
			img.Set(px, py, cr, cg, cb, ca)
		}
	}
}

// raySlab intersects the ray origin + t*dir with the box over
// [tLo, tHi], returning the clipped interval. The interval is widened
// by one step of slack at each end; exact membership is decided per
// sample by contains.
func raySlab(origin, dir [3]float64, b grid.Box, tLo, tHi float64) (float64, float64, bool) {
	for d := 0; d < 3; d++ {
		lo, hi := float64(b.Lo[d]), float64(b.Hi[d])
		if dir[d] == 0 {
			if origin[d] < lo || origin[d] >= hi {
				return 0, 0, false
			}
			continue
		}
		t0 := (lo - origin[d]) / dir[d]
		t1 := (hi - origin[d]) / dir[d]
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > tLo {
			tLo = t0
		}
		if t1 < tHi {
			tHi = t1
		}
		if tLo > tHi {
			return 0, 0, false
		}
	}
	return tLo, tHi, true
}

// RenderSerial renders the full field in one pass — the reference
// image and the post-processing baseline.
func (r *Renderer) RenderSerial(f *grid.Field) *Image {
	return r.renderWith(f, f.Box)
}

// RenderBlock performs one rank's in-situ stage of the fully in-situ
// algorithm: ray-cast the rank's full-resolution block into a partial
// frame. The field must cover owned plus one ghost layer (clipped to
// the domain) so trilinear samples at block faces match the serial
// render.
func (r *Renderer) RenderBlock(f *grid.Field, owned grid.Box) *Image {
	return r.renderWith(f, owned)
}

// BlockOrder returns the rank visibility order (front-most first) for
// the decomposition under this renderer's view direction. For a
// regular grid of blocks and parallel rays, ordering each axis by the
// sign of the view direction yields a correct visibility order.
func (r *Renderer) BlockOrder(dc *grid.Decomp) []int {
	ranks := make([]int, dc.Ranks())
	for i := range ranks {
		ranks[i] = i
	}
	keys := make([]float64, dc.Ranks())
	for i := range ranks {
		b := dc.Block(i)
		c := [3]float64{
			(float64(b.Lo[0]) + float64(b.Hi[0])) / 2,
			(float64(b.Lo[1]) + float64(b.Hi[1])) / 2,
			(float64(b.Lo[2]) + float64(b.Hi[2])) / 2,
		}
		keys[i] = dot(c, r.Dir)
	}
	sort.SliceStable(ranks, func(a, b int) bool { return keys[ranks[a]] < keys[ranks[b]] })
	return ranks
}

// RenderInSitu runs the complete fully in-situ algorithm serially over
// the per-rank ghosted fields: each block renders its partial image,
// then the images composite in visibility order. fields[i] must cover
// dc.Block(i) plus a ghost layer.
func (r *Renderer) RenderInSitu(dc *grid.Decomp, fields []*grid.Field) (*Image, error) {
	if len(fields) != dc.Ranks() {
		return nil, fmt.Errorf("render: %d fields for %d ranks", len(fields), dc.Ranks())
	}
	parts := make([]*Image, dc.Ranks())
	for i, f := range fields {
		parts[i] = r.RenderBlock(f, dc.Block(i))
	}
	order := r.BlockOrder(dc)
	ordered := make([]*Image, 0, len(parts))
	for _, rank := range order {
		ordered = append(ordered, parts[rank])
	}
	return CompositeFrontToBack(ordered)
}
