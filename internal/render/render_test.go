package render

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"insitu/internal/grid"
)

func testField(b grid.Box, seed int64) *grid.Field {
	f := grid.NewField("T", b)
	rng := rand.New(rand.NewSource(seed))
	d := b.Dims()
	// Smooth structure plus noise.
	for idx := range f.Data {
		i, j, k := b.Point(idx)
		x := float64(i) / float64(d[0])
		y := float64(j) / float64(max(d[1], 2))
		z := float64(k) / float64(max(d[2], 2))
		f.Data[idx] = 0.5 + 0.4*math.Sin(5*x)*math.Cos(4*y)*math.Cos(3*z) + 0.05*rng.Float64()
	}
	return f
}

func testRenderer(t *testing.T, g grid.Box, w, h int) *Renderer {
	t.Helper()
	r, err := NewRenderer(w, h, HotMetal(0, 1), [3]float64{0.4, 0.25, 1}, [3]float64{0, 1, 0}, 0.5, g)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTransferFuncLookup(t *testing.T) {
	tf, err := NewTransferFunc(
		ControlPoint{Value: 0, R: 0, A: 0},
		ControlPoint{Value: 1, R: 1, A: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	r, _, _, a := tf.Lookup(0.5)
	if !approx(r, 0.5) || !approx(a, 0.5) {
		t.Fatalf("midpoint lookup wrong: r=%g a=%g", r, a)
	}
	// Clamping.
	r, _, _, _ = tf.Lookup(-5)
	if r != 0 {
		t.Fatal("below-range lookup must clamp")
	}
	r, _, _, _ = tf.Lookup(5)
	if r != 1 {
		t.Fatal("above-range lookup must clamp")
	}
	if _, err := NewTransferFunc(ControlPoint{}); err == nil {
		t.Fatal("single control point must error")
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestRendererValidation(t *testing.T) {
	g := grid.NewBox(4, 4, 4)
	tf := HotMetal(0, 1)
	if _, err := NewRenderer(0, 4, tf, [3]float64{1, 0, 0}, [3]float64{0, 1, 0}, 0.5, g); err == nil {
		t.Fatal("zero width must error")
	}
	if _, err := NewRenderer(4, 4, nil, [3]float64{1, 0, 0}, [3]float64{0, 1, 0}, 0.5, g); err == nil {
		t.Fatal("nil TF must error")
	}
	if _, err := NewRenderer(4, 4, tf, [3]float64{0, 0, 0}, [3]float64{0, 1, 0}, 0.5, g); err == nil {
		t.Fatal("zero direction must error")
	}
	if _, err := NewRenderer(4, 4, tf, [3]float64{1, 0, 0}, [3]float64{0, 1, 0}, 0, g); err == nil {
		t.Fatal("zero step must error")
	}
	if _, err := NewRenderer(4, 4, tf, [3]float64{1, 0, 0}, [3]float64{0, 1, 0}, 0.5, grid.Box{}); err == nil {
		t.Fatal("empty box must error")
	}
	// Up parallel to dir must be repaired, not fail.
	r, err := NewRenderer(4, 4, tf, [3]float64{0, 1, 0}, [3]float64{0, 1, 0}, 0.5, g)
	if err != nil {
		t.Fatal(err)
	}
	if norm(cross(r.Dir, r.Up)) < 1e-9 {
		t.Fatal("up not repaired")
	}
}

func TestSerialRenderProducesContent(t *testing.T) {
	g := grid.NewBox(16, 12, 10)
	f := testField(g, 1)
	r := testRenderer(t, g, 32, 24)
	img := r.RenderSerial(f)
	var sum float64
	for i := 3; i < len(img.Pix); i += 4 {
		sum += img.Pix[i]
	}
	if sum == 0 {
		t.Fatal("render produced a fully transparent image")
	}
	for _, v := range img.Pix {
		if math.IsNaN(v) || v < 0 || v > 1+1e-9 {
			t.Fatalf("pixel value out of range: %g", v)
		}
	}
}

// TestParallelMatchesSerial is the in-situ correctness property: per-
// block partial renders composited in visibility order reproduce the
// serial image (up to floating-point associativity).
func TestParallelMatchesSerial(t *testing.T) {
	g := grid.NewBox(18, 14, 10)
	f := testField(g, 2)
	for _, p := range [][3]int{{2, 1, 1}, {2, 2, 2}, {3, 2, 1}} {
		dc, err := grid.NewDecomp(g, p[0], p[1], p[2])
		if err != nil {
			t.Fatal(err)
		}
		// Build ghosted per-rank fields from the global field.
		fields := make([]*grid.Field, dc.Ranks())
		for i := range fields {
			fields[i] = f.Extract(dc.Block(i).Grow(1).Intersect(g))
		}
		for _, dir := range [][3]float64{{1, 0, 0}, {0, 0, -1}, {0.3, -0.5, 0.8}, {-1, -1, -1}} {
			r, err := NewRenderer(24, 20, HotMetal(0, 1), dir, [3]float64{0, 1, 0}, 0.4, g)
			if err != nil {
				t.Fatal(err)
			}
			want := r.RenderSerial(f)
			got, err := r.RenderInSitu(dc, fields)
			if err != nil {
				t.Fatal(err)
			}
			diff, err := MeanAbsDiff(want, got)
			if err != nil {
				t.Fatal(err)
			}
			if diff > 1e-9 {
				t.Fatalf("decomp %v dir %v: parallel render differs from serial by %g", p, dir, diff)
			}
		}
	}
}

// TestHybridApproximatesSerial: the down-sampled in-transit render
// must approximate the full-resolution image, with error shrinking as
// the down-sampling factor shrinks (Fig. 2's quality comparison).
func TestHybridApproximatesSerial(t *testing.T) {
	g := grid.NewBox(32, 24, 16)
	f := testField(g, 3)
	dc, err := grid.NewDecomp(g, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	full := testRenderer(t, g, 24, 20)
	want := full.RenderSerial(f)

	renderAt := func(factor int) *Image {
		bt := NewBlockTable()
		for i := 0; i < dc.Ranks(); i++ {
			payload, _ := DownsampleForTransit(f, dc.Block(i), factor)
			if err := bt.AddMarshalled(payload); err != nil {
				t.Fatal(err)
			}
		}
		// Frame the camera for the down-sampled index space.
		r, err := NewRenderer(24, 20, HotMetal(0, 1), full.Dir, full.Up,
			full.Step/float64(factor), bt.Bounds())
		if err != nil {
			t.Fatal(err)
		}
		img, err := r.RenderTable(bt)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}

	d2, _ := MeanAbsDiff(want, renderAt(2))
	d4, _ := MeanAbsDiff(want, renderAt(4))
	if d2 > 0.15 {
		t.Fatalf("2x down-sampled render too far from serial: %g", d2)
	}
	if d4 < d2 {
		t.Fatalf("coarser sampling should not be more accurate: d2=%g d4=%g", d2, d4)
	}
}

func TestDataReductionFromDownsampling(t *testing.T) {
	g := grid.NewBox(32, 32, 32)
	f := testField(g, 4)
	payload, n := DownsampleForTransit(f, g, 8)
	if n != len(payload) {
		t.Fatal("size mismatch")
	}
	raw := f.Bytes()
	// 8x downsampling in 3-D is a ~512x data reduction.
	if n*256 > raw {
		t.Fatalf("8x downsample moved %d of %d raw bytes; expected ~512x reduction", n, raw)
	}
}

func TestBlockTableSampleOutside(t *testing.T) {
	bt := NewBlockTable()
	f := grid.NewField("T", grid.NewBox(4, 4, 4))
	f.Fill(0.5)
	bt.Add(f)
	if v := bt.Sample(100, 0, 0); !math.IsInf(v, -1) {
		t.Fatalf("outside sample must be -Inf, got %g", v)
	}
	if v := bt.Sample(1.5, 1.5, 1.5); v != 0.5 {
		t.Fatalf("inside sample wrong: %g", v)
	}
	if _, err := (&Renderer{}).RenderTable(NewBlockTable()); err == nil {
		t.Fatal("empty table must error")
	}
	if err := bt.AddMarshalled([]byte{1, 2}); err == nil {
		t.Fatal("bad payload must error")
	}
}

func TestCompositeErrors(t *testing.T) {
	if _, err := CompositeFrontToBack(nil); err == nil {
		t.Fatal("empty composite must error")
	}
	a, b := NewImage(2, 2), NewImage(3, 3)
	if err := a.Under(b); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestCompositeOpaqueFrontWins(t *testing.T) {
	front := NewImage(1, 1)
	front.Set(0, 0, 1, 0, 0, 1) // opaque red
	back := NewImage(1, 1)
	back.Set(0, 0, 0, 1, 0, 1) // opaque green
	out, err := CompositeFrontToBack([]*Image{front, back})
	if err != nil {
		t.Fatal(err)
	}
	r, g, _, a := out.At(0, 0)
	if r != 1 || g != 0 || a != 1 {
		t.Fatalf("opaque front must win: r=%g g=%g a=%g", r, g, a)
	}
}

func TestSavePNG(t *testing.T) {
	dir := t.TempDir()
	g := grid.NewBox(8, 8, 8)
	img := testRenderer(t, g, 16, 16).RenderSerial(testField(g, 5))
	path := filepath.Join(dir, "out.png")
	if err := img.SavePNG(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatal("png not written")
	}
	if err := img.SavePNG(filepath.Join(dir, "missing", "out.png")); err == nil {
		t.Fatal("bad path must error")
	}
}

// TestBlockOrderFrontToBack: for an axis-aligned view, blocks nearer
// the camera (smaller coordinate along +dir) come first.
func TestBlockOrderFrontToBack(t *testing.T) {
	g := grid.NewBox(16, 16, 16)
	dc, err := grid.NewDecomp(g, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := testRenderer(t, g, 4, 4)
	r.Dir = [3]float64{1, 0, 0}
	order := r.BlockOrder(dc)
	for i := 0; i < 4; i++ {
		if order[i] != i {
			t.Fatalf("+x view: want rank order 0..3, got %v", order)
		}
	}
	r.Dir = [3]float64{-1, 0, 0}
	order = r.BlockOrder(dc)
	for i := 0; i < 4; i++ {
		if order[i] != 3-i {
			t.Fatalf("-x view: want rank order 3..0, got %v", order)
		}
	}
}

// TestRaySlab sanity-checks the clipping interval against brute-force
// containment.
func TestRaySlab(t *testing.T) {
	b := grid.Box{Lo: [3]int{2, 2, 2}, Hi: [3]int{6, 6, 6}}
	origin := [3]float64{0, 4, 4}
	dir := [3]float64{1, 0, 0}
	t0, t1, hit := raySlab(origin, dir, b, 0, 100)
	if !hit || t0 > 2.0001 || t1 < 5.9999 {
		t.Fatalf("slab interval wrong: [%g, %g] hit=%v", t0, t1, hit)
	}
	// Miss.
	if _, _, hit := raySlab([3]float64{0, 100, 4}, dir, b, 0, 100); hit {
		t.Fatal("ray far outside must miss")
	}
	// Zero direction component outside the slab.
	if _, _, hit := raySlab([3]float64{0, 0, 4}, dir, b, 0, 100); hit {
		t.Fatal("parallel ray outside the slab must miss")
	}
}
