package render

import (
	"fmt"
	"sort"
)

// ControlPoint anchors the transfer function at a scalar value.
type ControlPoint struct {
	Value      float64
	R, G, B, A float64 // straight (non-premultiplied) color and opacity
}

// TransferFunc maps scalar values to color and opacity by piecewise
// linear interpolation between control points.
type TransferFunc struct {
	points []ControlPoint
}

// NewTransferFunc builds a transfer function; points are sorted by
// value and at least two are required.
func NewTransferFunc(points ...ControlPoint) (*TransferFunc, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("render: transfer function needs >= 2 control points, got %d", len(points))
	}
	ps := append([]ControlPoint{}, points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Value < ps[j].Value })
	return &TransferFunc{points: ps}, nil
}

// HotMetal returns a black-body style map over [lo, hi]: transparent
// cold, glowing red through yellow to white hot — the conventional
// look for combustion temperature fields.
func HotMetal(lo, hi float64) *TransferFunc {
	span := hi - lo
	tf, _ := NewTransferFunc(
		ControlPoint{Value: lo, R: 0, G: 0, B: 0, A: 0},
		ControlPoint{Value: lo + 0.25*span, R: 0.4, G: 0, B: 0.05, A: 0.02},
		ControlPoint{Value: lo + 0.5*span, R: 0.9, G: 0.2, B: 0, A: 0.12},
		ControlPoint{Value: lo + 0.75*span, R: 1, G: 0.7, B: 0.1, A: 0.35},
		ControlPoint{Value: hi, R: 1, G: 1, B: 0.9, A: 0.8},
	)
	return tf
}

// Lookup returns the straight color and opacity for a scalar value,
// clamping outside the control range.
func (tf *TransferFunc) Lookup(v float64) (r, g, b, a float64) {
	ps := tf.points
	if v <= ps[0].Value {
		p := ps[0]
		return p.R, p.G, p.B, p.A
	}
	if v >= ps[len(ps)-1].Value {
		p := ps[len(ps)-1]
		return p.R, p.G, p.B, p.A
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Value > v }) - 1
	p, q := ps[i], ps[i+1]
	t := (v - p.Value) / (q.Value - p.Value)
	return p.R + t*(q.R-p.R), p.G + t*(q.G-p.G), p.B + t*(q.B-p.B), p.A + t*(q.A-p.A)
}
